# Empty compiler generated dependencies file for soft_faults.
# This may be replaced when dependencies are built.
