file(REMOVE_RECURSE
  "CMakeFiles/soft_faults.dir/bench_util.cpp.o"
  "CMakeFiles/soft_faults.dir/bench_util.cpp.o.d"
  "CMakeFiles/soft_faults.dir/soft_faults.cpp.o"
  "CMakeFiles/soft_faults.dir/soft_faults.cpp.o.d"
  "soft_faults"
  "soft_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
