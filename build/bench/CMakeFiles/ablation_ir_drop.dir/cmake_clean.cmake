file(REMOVE_RECURSE
  "CMakeFiles/ablation_ir_drop.dir/ablation_ir_drop.cpp.o"
  "CMakeFiles/ablation_ir_drop.dir/ablation_ir_drop.cpp.o.d"
  "CMakeFiles/ablation_ir_drop.dir/bench_util.cpp.o"
  "CMakeFiles/ablation_ir_drop.dir/bench_util.cpp.o.d"
  "ablation_ir_drop"
  "ablation_ir_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ir_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
