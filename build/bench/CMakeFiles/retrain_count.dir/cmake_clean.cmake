file(REMOVE_RECURSE
  "CMakeFiles/retrain_count.dir/bench_util.cpp.o"
  "CMakeFiles/retrain_count.dir/bench_util.cpp.o.d"
  "CMakeFiles/retrain_count.dir/retrain_count.cpp.o"
  "CMakeFiles/retrain_count.dir/retrain_count.cpp.o.d"
  "retrain_count"
  "retrain_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrain_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
