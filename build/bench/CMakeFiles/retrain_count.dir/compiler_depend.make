# Empty compiler generated dependencies file for retrain_count.
# This may be replaced when dependencies are built.
