file(REMOVE_RECURSE
  "CMakeFiles/selected_cells.dir/bench_util.cpp.o"
  "CMakeFiles/selected_cells.dir/bench_util.cpp.o.d"
  "CMakeFiles/selected_cells.dir/selected_cells.cpp.o"
  "CMakeFiles/selected_cells.dir/selected_cells.cpp.o.d"
  "selected_cells"
  "selected_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selected_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
