# Empty dependencies file for selected_cells.
# This may be replaced when dependencies are built.
