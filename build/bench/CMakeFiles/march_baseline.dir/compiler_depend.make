# Empty compiler generated dependencies file for march_baseline.
# This may be replaced when dependencies are built.
