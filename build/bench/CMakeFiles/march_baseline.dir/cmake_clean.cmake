file(REMOVE_RECURSE
  "CMakeFiles/march_baseline.dir/bench_util.cpp.o"
  "CMakeFiles/march_baseline.dir/bench_util.cpp.o.d"
  "CMakeFiles/march_baseline.dir/march_baseline.cpp.o"
  "CMakeFiles/march_baseline.dir/march_baseline.cpp.o.d"
  "march_baseline"
  "march_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/march_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
