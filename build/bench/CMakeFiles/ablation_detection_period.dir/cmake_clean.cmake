file(REMOVE_RECURSE
  "CMakeFiles/ablation_detection_period.dir/ablation_detection_period.cpp.o"
  "CMakeFiles/ablation_detection_period.dir/ablation_detection_period.cpp.o.d"
  "CMakeFiles/ablation_detection_period.dir/bench_util.cpp.o"
  "CMakeFiles/ablation_detection_period.dir/bench_util.cpp.o.d"
  "ablation_detection_period"
  "ablation_detection_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_detection_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
