# Empty dependencies file for ablation_detection_period.
# This may be replaced when dependencies are built.
