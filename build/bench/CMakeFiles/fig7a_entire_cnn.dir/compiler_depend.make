# Empty compiler generated dependencies file for fig7a_entire_cnn.
# This may be replaced when dependencies are built.
