file(REMOVE_RECURSE
  "CMakeFiles/fig7a_entire_cnn.dir/bench_util.cpp.o"
  "CMakeFiles/fig7a_entire_cnn.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig7a_entire_cnn.dir/fig7a_entire_cnn.cpp.o"
  "CMakeFiles/fig7a_entire_cnn.dir/fig7a_entire_cnn.cpp.o.d"
  "fig7a_entire_cnn"
  "fig7a_entire_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_entire_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
