file(REMOVE_RECURSE
  "CMakeFiles/threshold_stats.dir/bench_util.cpp.o"
  "CMakeFiles/threshold_stats.dir/bench_util.cpp.o.d"
  "CMakeFiles/threshold_stats.dir/threshold_stats.cpp.o"
  "CMakeFiles/threshold_stats.dir/threshold_stats.cpp.o.d"
  "threshold_stats"
  "threshold_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
