# Empty dependencies file for threshold_stats.
# This may be replaced when dependencies are built.
