# Empty compiler generated dependencies file for fig7b_fc_only.
# This may be replaced when dependencies are built.
