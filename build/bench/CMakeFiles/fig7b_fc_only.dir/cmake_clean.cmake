file(REMOVE_RECURSE
  "CMakeFiles/fig7b_fc_only.dir/bench_util.cpp.o"
  "CMakeFiles/fig7b_fc_only.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig7b_fc_only.dir/fig7b_fc_only.cpp.o"
  "CMakeFiles/fig7b_fc_only.dir/fig7b_fc_only.cpp.o.d"
  "fig7b_fc_only"
  "fig7b_fc_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_fc_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
