file(REMOVE_RECURSE
  "CMakeFiles/fault_sensitivity.dir/bench_util.cpp.o"
  "CMakeFiles/fault_sensitivity.dir/bench_util.cpp.o.d"
  "CMakeFiles/fault_sensitivity.dir/fault_sensitivity.cpp.o"
  "CMakeFiles/fault_sensitivity.dir/fault_sensitivity.cpp.o.d"
  "fault_sensitivity"
  "fault_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
