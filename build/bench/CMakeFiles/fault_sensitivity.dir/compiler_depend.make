# Empty compiler generated dependencies file for fault_sensitivity.
# This may be replaced when dependencies are built.
