
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_util.cpp" "bench/CMakeFiles/fig6_detection.dir/bench_util.cpp.o" "gcc" "bench/CMakeFiles/fig6_detection.dir/bench_util.cpp.o.d"
  "/root/repo/bench/fig6_detection.cpp" "bench/CMakeFiles/fig6_detection.dir/fig6_detection.cpp.o" "gcc" "bench/CMakeFiles/fig6_detection.dir/fig6_detection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/refit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/refit_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/rcs/CMakeFiles/refit_rcs.dir/DependInfo.cmake"
  "/root/repo/build/src/rram/CMakeFiles/refit_rram.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/refit_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/refit_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/refit_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/refit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
