file(REMOVE_RECURSE
  "CMakeFiles/fig6_detection.dir/bench_util.cpp.o"
  "CMakeFiles/fig6_detection.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig6_detection.dir/fig6_detection.cpp.o"
  "CMakeFiles/fig6_detection.dir/fig6_detection.cpp.o.d"
  "fig6_detection"
  "fig6_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
