# Empty compiler generated dependencies file for ablation_modulo.
# This may be replaced when dependencies are built.
