file(REMOVE_RECURSE
  "CMakeFiles/ablation_modulo.dir/ablation_modulo.cpp.o"
  "CMakeFiles/ablation_modulo.dir/ablation_modulo.cpp.o.d"
  "CMakeFiles/ablation_modulo.dir/bench_util.cpp.o"
  "CMakeFiles/ablation_modulo.dir/bench_util.cpp.o.d"
  "ablation_modulo"
  "ablation_modulo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_modulo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
