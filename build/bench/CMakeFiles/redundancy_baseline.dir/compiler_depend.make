# Empty compiler generated dependencies file for redundancy_baseline.
# This may be replaced when dependencies are built.
