file(REMOVE_RECURSE
  "CMakeFiles/redundancy_baseline.dir/bench_util.cpp.o"
  "CMakeFiles/redundancy_baseline.dir/bench_util.cpp.o.d"
  "CMakeFiles/redundancy_baseline.dir/redundancy_baseline.cpp.o"
  "CMakeFiles/redundancy_baseline.dir/redundancy_baseline.cpp.o.d"
  "redundancy_baseline"
  "redundancy_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redundancy_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
