file(REMOVE_RECURSE
  "CMakeFiles/ablation_remap.dir/ablation_remap.cpp.o"
  "CMakeFiles/ablation_remap.dir/ablation_remap.cpp.o.d"
  "CMakeFiles/ablation_remap.dir/bench_util.cpp.o"
  "CMakeFiles/ablation_remap.dir/bench_util.cpp.o.d"
  "ablation_remap"
  "ablation_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
