# Empty compiler generated dependencies file for cifar_fault_tolerant.
# This may be replaced when dependencies are built.
