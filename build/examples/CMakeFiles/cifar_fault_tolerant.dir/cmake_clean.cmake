file(REMOVE_RECURSE
  "CMakeFiles/cifar_fault_tolerant.dir/cifar_fault_tolerant.cpp.o"
  "CMakeFiles/cifar_fault_tolerant.dir/cifar_fault_tolerant.cpp.o.d"
  "cifar_fault_tolerant"
  "cifar_fault_tolerant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cifar_fault_tolerant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
