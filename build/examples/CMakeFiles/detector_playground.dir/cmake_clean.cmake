file(REMOVE_RECURSE
  "CMakeFiles/detector_playground.dir/detector_playground.cpp.o"
  "CMakeFiles/detector_playground.dir/detector_playground.cpp.o.d"
  "detector_playground"
  "detector_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
