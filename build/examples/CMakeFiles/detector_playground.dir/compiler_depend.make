# Empty compiler generated dependencies file for detector_playground.
# This may be replaced when dependencies are built.
