file(REMOVE_RECURSE
  "CMakeFiles/mnist_online_training.dir/mnist_online_training.cpp.o"
  "CMakeFiles/mnist_online_training.dir/mnist_online_training.cpp.o.d"
  "mnist_online_training"
  "mnist_online_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_online_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
