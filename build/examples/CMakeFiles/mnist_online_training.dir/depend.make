# Empty dependencies file for mnist_online_training.
# This may be replaced when dependencies are built.
