file(REMOVE_RECURSE
  "CMakeFiles/test_ft_trainer.dir/test_ft_trainer.cpp.o"
  "CMakeFiles/test_ft_trainer.dir/test_ft_trainer.cpp.o.d"
  "test_ft_trainer"
  "test_ft_trainer.pdb"
  "test_ft_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ft_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
