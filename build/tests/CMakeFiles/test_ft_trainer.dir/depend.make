# Empty dependencies file for test_ft_trainer.
# This may be replaced when dependencies are built.
