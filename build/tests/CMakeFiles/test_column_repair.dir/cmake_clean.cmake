file(REMOVE_RECURSE
  "CMakeFiles/test_column_repair.dir/test_column_repair.cpp.o"
  "CMakeFiles/test_column_repair.dir/test_column_repair.cpp.o.d"
  "test_column_repair"
  "test_column_repair.pdb"
  "test_column_repair[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_column_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
