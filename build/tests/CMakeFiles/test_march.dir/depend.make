# Empty dependencies file for test_march.
# This may be replaced when dependencies are built.
