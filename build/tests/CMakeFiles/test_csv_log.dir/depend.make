# Empty dependencies file for test_csv_log.
# This may be replaced when dependencies are built.
