file(REMOVE_RECURSE
  "CMakeFiles/test_csv_log.dir/test_csv_log.cpp.o"
  "CMakeFiles/test_csv_log.dir/test_csv_log.cpp.o.d"
  "test_csv_log"
  "test_csv_log.pdb"
  "test_csv_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csv_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
