file(REMOVE_RECURSE
  "CMakeFiles/test_remap.dir/test_remap.cpp.o"
  "CMakeFiles/test_remap.dir/test_remap.cpp.o.d"
  "test_remap"
  "test_remap.pdb"
  "test_remap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
