# Empty compiler generated dependencies file for test_crossbar_store.
# This may be replaced when dependencies are built.
