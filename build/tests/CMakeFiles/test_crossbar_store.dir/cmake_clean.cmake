file(REMOVE_RECURSE
  "CMakeFiles/test_crossbar_store.dir/test_crossbar_store.cpp.o"
  "CMakeFiles/test_crossbar_store.dir/test_crossbar_store.cpp.o.d"
  "test_crossbar_store"
  "test_crossbar_store.pdb"
  "test_crossbar_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossbar_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
