# Empty dependencies file for test_ir_drop.
# This may be replaced when dependencies are built.
