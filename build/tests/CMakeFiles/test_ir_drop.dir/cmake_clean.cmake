file(REMOVE_RECURSE
  "CMakeFiles/test_ir_drop.dir/test_ir_drop.cpp.o"
  "CMakeFiles/test_ir_drop.dir/test_ir_drop.cpp.o.d"
  "test_ir_drop"
  "test_ir_drop.pdb"
  "test_ir_drop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
