# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_layers[1]_include.cmake")
include("/root/repo/build/tests/test_loss[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_crossbar[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_crossbar_store[1]_include.cmake")
include("/root/repo/build/tests/test_decoder[1]_include.cmake")
include("/root/repo/build/tests/test_detector[1]_include.cmake")
include("/root/repo/build/tests/test_prune[1]_include.cmake")
include("/root/repo/build/tests/test_threshold[1]_include.cmake")
include("/root/repo/build/tests/test_remap[1]_include.cmake")
include("/root/repo/build/tests/test_ft_trainer[1]_include.cmake")
include("/root/repo/build/tests/test_march[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_csv_log[1]_include.cmake")
include("/root/repo/build/tests/test_ir_drop[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_column_repair[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
