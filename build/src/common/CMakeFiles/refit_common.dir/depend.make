# Empty dependencies file for refit_common.
# This may be replaced when dependencies are built.
