file(REMOVE_RECURSE
  "librefit_common.a"
)
