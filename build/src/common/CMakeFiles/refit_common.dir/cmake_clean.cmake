file(REMOVE_RECURSE
  "CMakeFiles/refit_common.dir/csv.cpp.o"
  "CMakeFiles/refit_common.dir/csv.cpp.o.d"
  "CMakeFiles/refit_common.dir/log.cpp.o"
  "CMakeFiles/refit_common.dir/log.cpp.o.d"
  "CMakeFiles/refit_common.dir/rng.cpp.o"
  "CMakeFiles/refit_common.dir/rng.cpp.o.d"
  "CMakeFiles/refit_common.dir/stats.cpp.o"
  "CMakeFiles/refit_common.dir/stats.cpp.o.d"
  "librefit_common.a"
  "librefit_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refit_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
