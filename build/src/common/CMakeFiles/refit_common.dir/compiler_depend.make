# Empty compiler generated dependencies file for refit_common.
# This may be replaced when dependencies are built.
