file(REMOVE_RECURSE
  "librefit_rram.a"
)
