file(REMOVE_RECURSE
  "CMakeFiles/refit_rram.dir/column_repair.cpp.o"
  "CMakeFiles/refit_rram.dir/column_repair.cpp.o.d"
  "CMakeFiles/refit_rram.dir/crossbar.cpp.o"
  "CMakeFiles/refit_rram.dir/crossbar.cpp.o.d"
  "CMakeFiles/refit_rram.dir/faults.cpp.o"
  "CMakeFiles/refit_rram.dir/faults.cpp.o.d"
  "librefit_rram.a"
  "librefit_rram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refit_rram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
