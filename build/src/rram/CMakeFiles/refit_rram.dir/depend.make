# Empty dependencies file for refit_rram.
# This may be replaced when dependencies are built.
