# Empty compiler generated dependencies file for refit_rram.
# This may be replaced when dependencies are built.
