file(REMOVE_RECURSE
  "librefit_tensor.a"
)
