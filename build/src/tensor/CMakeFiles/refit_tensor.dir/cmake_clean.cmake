file(REMOVE_RECURSE
  "CMakeFiles/refit_tensor.dir/ops.cpp.o"
  "CMakeFiles/refit_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/refit_tensor.dir/tensor.cpp.o"
  "CMakeFiles/refit_tensor.dir/tensor.cpp.o.d"
  "librefit_tensor.a"
  "librefit_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refit_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
