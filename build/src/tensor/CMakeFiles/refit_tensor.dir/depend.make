# Empty dependencies file for refit_tensor.
# This may be replaced when dependencies are built.
