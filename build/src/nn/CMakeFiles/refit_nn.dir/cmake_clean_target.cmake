file(REMOVE_RECURSE
  "librefit_nn.a"
)
