# Empty dependencies file for refit_nn.
# This may be replaced when dependencies are built.
