file(REMOVE_RECURSE
  "CMakeFiles/refit_nn.dir/activations.cpp.o"
  "CMakeFiles/refit_nn.dir/activations.cpp.o.d"
  "CMakeFiles/refit_nn.dir/conv2d.cpp.o"
  "CMakeFiles/refit_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/refit_nn.dir/dense.cpp.o"
  "CMakeFiles/refit_nn.dir/dense.cpp.o.d"
  "CMakeFiles/refit_nn.dir/layer.cpp.o"
  "CMakeFiles/refit_nn.dir/layer.cpp.o.d"
  "CMakeFiles/refit_nn.dir/loss.cpp.o"
  "CMakeFiles/refit_nn.dir/loss.cpp.o.d"
  "CMakeFiles/refit_nn.dir/models.cpp.o"
  "CMakeFiles/refit_nn.dir/models.cpp.o.d"
  "CMakeFiles/refit_nn.dir/network.cpp.o"
  "CMakeFiles/refit_nn.dir/network.cpp.o.d"
  "CMakeFiles/refit_nn.dir/network_io.cpp.o"
  "CMakeFiles/refit_nn.dir/network_io.cpp.o.d"
  "CMakeFiles/refit_nn.dir/optimizer.cpp.o"
  "CMakeFiles/refit_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/refit_nn.dir/weight_store.cpp.o"
  "CMakeFiles/refit_nn.dir/weight_store.cpp.o.d"
  "librefit_nn.a"
  "librefit_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refit_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
