
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/refit_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/refit_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/refit_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/refit_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/refit_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/refit_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/refit_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/refit_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/refit_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/refit_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/nn/CMakeFiles/refit_nn.dir/models.cpp.o" "gcc" "src/nn/CMakeFiles/refit_nn.dir/models.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/refit_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/refit_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/network_io.cpp" "src/nn/CMakeFiles/refit_nn.dir/network_io.cpp.o" "gcc" "src/nn/CMakeFiles/refit_nn.dir/network_io.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/refit_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/refit_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/weight_store.cpp" "src/nn/CMakeFiles/refit_nn.dir/weight_store.cpp.o" "gcc" "src/nn/CMakeFiles/refit_nn.dir/weight_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/refit_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/refit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
