# Empty dependencies file for refit_rcs.
# This may be replaced when dependencies are built.
