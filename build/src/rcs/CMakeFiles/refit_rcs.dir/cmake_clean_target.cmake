file(REMOVE_RECURSE
  "librefit_rcs.a"
)
