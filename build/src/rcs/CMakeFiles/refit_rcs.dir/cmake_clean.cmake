file(REMOVE_RECURSE
  "CMakeFiles/refit_rcs.dir/crossbar_store.cpp.o"
  "CMakeFiles/refit_rcs.dir/crossbar_store.cpp.o.d"
  "CMakeFiles/refit_rcs.dir/rcs_system.cpp.o"
  "CMakeFiles/refit_rcs.dir/rcs_system.cpp.o.d"
  "librefit_rcs.a"
  "librefit_rcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refit_rcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
