# Empty compiler generated dependencies file for refit_core.
# This may be replaced when dependencies are built.
