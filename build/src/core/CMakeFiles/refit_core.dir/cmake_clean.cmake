file(REMOVE_RECURSE
  "CMakeFiles/refit_core.dir/energy.cpp.o"
  "CMakeFiles/refit_core.dir/energy.cpp.o.d"
  "CMakeFiles/refit_core.dir/ft_trainer.cpp.o"
  "CMakeFiles/refit_core.dir/ft_trainer.cpp.o.d"
  "CMakeFiles/refit_core.dir/prune.cpp.o"
  "CMakeFiles/refit_core.dir/prune.cpp.o.d"
  "CMakeFiles/refit_core.dir/remap.cpp.o"
  "CMakeFiles/refit_core.dir/remap.cpp.o.d"
  "CMakeFiles/refit_core.dir/threshold_trainer.cpp.o"
  "CMakeFiles/refit_core.dir/threshold_trainer.cpp.o.d"
  "librefit_core.a"
  "librefit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
