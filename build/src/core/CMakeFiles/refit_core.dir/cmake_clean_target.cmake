file(REMOVE_RECURSE
  "librefit_core.a"
)
