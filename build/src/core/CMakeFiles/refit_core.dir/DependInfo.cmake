
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/energy.cpp" "src/core/CMakeFiles/refit_core.dir/energy.cpp.o" "gcc" "src/core/CMakeFiles/refit_core.dir/energy.cpp.o.d"
  "/root/repo/src/core/ft_trainer.cpp" "src/core/CMakeFiles/refit_core.dir/ft_trainer.cpp.o" "gcc" "src/core/CMakeFiles/refit_core.dir/ft_trainer.cpp.o.d"
  "/root/repo/src/core/prune.cpp" "src/core/CMakeFiles/refit_core.dir/prune.cpp.o" "gcc" "src/core/CMakeFiles/refit_core.dir/prune.cpp.o.d"
  "/root/repo/src/core/remap.cpp" "src/core/CMakeFiles/refit_core.dir/remap.cpp.o" "gcc" "src/core/CMakeFiles/refit_core.dir/remap.cpp.o.d"
  "/root/repo/src/core/threshold_trainer.cpp" "src/core/CMakeFiles/refit_core.dir/threshold_trainer.cpp.o" "gcc" "src/core/CMakeFiles/refit_core.dir/threshold_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/refit_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/rcs/CMakeFiles/refit_rcs.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/refit_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/refit_data.dir/DependInfo.cmake"
  "/root/repo/build/src/rram/CMakeFiles/refit_rram.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/refit_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/refit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
