file(REMOVE_RECURSE
  "librefit_data.a"
)
