file(REMOVE_RECURSE
  "CMakeFiles/refit_data.dir/dataset.cpp.o"
  "CMakeFiles/refit_data.dir/dataset.cpp.o.d"
  "CMakeFiles/refit_data.dir/synthetic.cpp.o"
  "CMakeFiles/refit_data.dir/synthetic.cpp.o.d"
  "librefit_data.a"
  "librefit_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refit_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
