# Empty dependencies file for refit_data.
# This may be replaced when dependencies are built.
