# Empty dependencies file for refit_detect.
# This may be replaced when dependencies are built.
