file(REMOVE_RECURSE
  "librefit_detect.a"
)
