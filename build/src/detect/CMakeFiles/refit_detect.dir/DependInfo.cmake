
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/decoder.cpp" "src/detect/CMakeFiles/refit_detect.dir/decoder.cpp.o" "gcc" "src/detect/CMakeFiles/refit_detect.dir/decoder.cpp.o.d"
  "/root/repo/src/detect/march_test.cpp" "src/detect/CMakeFiles/refit_detect.dir/march_test.cpp.o" "gcc" "src/detect/CMakeFiles/refit_detect.dir/march_test.cpp.o.d"
  "/root/repo/src/detect/quiescent_detector.cpp" "src/detect/CMakeFiles/refit_detect.dir/quiescent_detector.cpp.o" "gcc" "src/detect/CMakeFiles/refit_detect.dir/quiescent_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rram/CMakeFiles/refit_rram.dir/DependInfo.cmake"
  "/root/repo/build/src/rcs/CMakeFiles/refit_rcs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/refit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/refit_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/refit_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
