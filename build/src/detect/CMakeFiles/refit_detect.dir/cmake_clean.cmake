file(REMOVE_RECURSE
  "CMakeFiles/refit_detect.dir/decoder.cpp.o"
  "CMakeFiles/refit_detect.dir/decoder.cpp.o.d"
  "CMakeFiles/refit_detect.dir/march_test.cpp.o"
  "CMakeFiles/refit_detect.dir/march_test.cpp.o.d"
  "CMakeFiles/refit_detect.dir/quiescent_detector.cpp.o"
  "CMakeFiles/refit_detect.dir/quiescent_detector.cpp.o.d"
  "librefit_detect.a"
  "librefit_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refit_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
