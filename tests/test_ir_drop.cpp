// Tests for the IR-drop (wire resistance) extension.
#include <gtest/gtest.h>

#include "detect/quiescent_detector.hpp"
#include "rcs/crossbar_store.hpp"
#include "rram/faults.hpp"

namespace refit {
namespace {

CrossbarConfig with_ir(std::size_t n, double ratio) {
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.levels = 8;
  cfg.write_noise_sigma = 0.0;
  cfg.wire_resistance_ratio = ratio;
  return cfg;
}

TEST(IrDrop, DisabledIsIdentity) {
  Crossbar xb(with_ir(8, 0.0), EnduranceModel::unlimited(), Rng(1));
  xb.write(3, 4, 1.0);
  EXPECT_DOUBLE_EQ(xb.attenuation(3, 4), 1.0);
  EXPECT_DOUBLE_EQ(xb.effective_conductance(3, 4), xb.conductance(3, 4));
}

TEST(IrDrop, AttenuationGrowsWithDistance) {
  Crossbar xb(with_ir(32, 0.002), EnduranceModel::unlimited(), Rng(2));
  EXPECT_GT(xb.attenuation(0, 0), xb.attenuation(31, 31));
  EXPECT_GT(xb.attenuation(0, 0), 0.99);
  EXPECT_LT(xb.attenuation(31, 31), 1.0);
  // Monotone along both axes.
  for (std::size_t i = 1; i < 32; ++i) {
    EXPECT_LE(xb.attenuation(i, 0), xb.attenuation(i - 1, 0));
    EXPECT_LE(xb.attenuation(0, i), xb.attenuation(0, i - 1));
  }
}

TEST(IrDrop, AnalogSumsAreAttenuated) {
  Crossbar a(with_ir(16, 0.0), EnduranceModel::unlimited(), Rng(3));
  Crossbar b(with_ir(16, 0.01), EnduranceModel::unlimited(), Rng(3));
  for (std::size_t r = 0; r < 16; ++r) {
    a.write(r, 5, 1.0);
    b.write(r, 5, 1.0);
  }
  std::vector<std::size_t> all_rows(16);
  for (std::size_t r = 0; r < 16; ++r) all_rows[r] = r;
  EXPECT_LT(b.sum_conductance_rows(all_rows, 5),
            a.sum_conductance_rows(all_rows, 5));
}

TEST(IrDrop, EffectiveWeightsShrinkWithPosition) {
  RcsConfig cfg;
  cfg.tile_rows = cfg.tile_cols = 32;
  cfg.levels = 64;
  cfg.write_noise_sigma = 0.0;
  cfg.inject_fabrication = false;
  cfg.wire_resistance_ratio = 0.01;
  Tensor init({32, 32}, 0.05f);
  CrossbarWeightStore store(cfg, init, Rng(4));
  const Tensor& eff = store.effective();
  EXPECT_GT(eff.at(0, 0), eff.at(31, 31));
}

TEST(IrDrop, DetectorStaysCalibratedAtModerateRatios) {
  // The controller computes references with the same attenuation model, so
  // detection quality should survive a realistic wire resistance.
  Crossbar xb(with_ir(64, 0.001), EnduranceModel::unlimited(), Rng(5));
  Rng rng(6);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  FaultInjectionConfig fc;
  fc.fraction = 0.10;
  inject_fabrication_faults(xb, fc, rng);
  DetectorConfig dc;
  dc.test_rows_per_cycle = 8;
  const DetectionOutcome out = QuiescentVoltageDetector(dc).detect(xb);
  const ConfusionCounts cc = evaluate_detection(xb, out.predicted);
  EXPECT_GT(cc.recall(), 0.85);
  EXPECT_GT(cc.precision(), 0.5);
}

TEST(IrDrop, SevereRatioDegradesDetection) {
  auto run = [&](double ratio) {
    Crossbar xb(with_ir(64, ratio), EnduranceModel::unlimited(), Rng(7));
    Rng rng(8);
    randomize_crossbar_content(xb, 0.3, 0.2, rng);
    FaultInjectionConfig fc;
    fc.fraction = 0.10;
    inject_fabrication_faults(xb, fc, rng);
    DetectorConfig dc;
    dc.test_rows_per_cycle = 16;
    const DetectionOutcome out = QuiescentVoltageDetector(dc).detect(xb);
    return evaluate_detection(xb, out.predicted);
  };
  const ConfusionCounts clean = run(0.0);
  const ConfusionCounts severe = run(0.02);
  // Heavy IR drop shrinks the fault signature below the ADC's resolution
  // for far cells, costing recall.
  EXPECT_LT(severe.recall(), clean.recall());
}

}  // namespace
}  // namespace refit
