// Tests for the REFIT_CHECK / REFIT_DCHECK macro family (common/check.hpp):
// what() must carry the stringified expression, file:line, and (for the
// _MSG variants) the streamed message, and REFIT_DCHECK must evaluate its
// argument exactly once in debug builds / not at all under NDEBUG.
#include <cctype>
#include <string>

#include "common/check.hpp"
#include "gtest/gtest.h"

namespace refit {
namespace {

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(REFIT_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(REFIT_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailureThrowsCheckErrorWithExpressionAndLocation) {
  try {
    REFIT_CHECK(2 + 2 == 5);
    FAIL() << "REFIT_CHECK(false) did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    // The failing line is two lines above the catch — just require a
    // ":<digits>" location suffix after the file name.
    const auto file_pos = what.find("test_check.cpp:");
    ASSERT_NE(file_pos, std::string::npos) << what;
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(
        what[file_pos + std::string("test_check.cpp:").size()])))
        << what;
  }
}

TEST(Check, CheckErrorIsALogicError) {
  EXPECT_THROW(REFIT_CHECK(false), std::logic_error);
}

TEST(Check, MsgVariantAppendsStreamedMessage) {
  const int got = 3;
  try {
    REFIT_CHECK_MSG(got == 4, "expected 4, got " << got);
    FAIL() << "REFIT_CHECK_MSG(false, ...) did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("got == 4"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 4, got 3"), std::string::npos) << what;
  }
}

TEST(Check, MsgIsNotEvaluatedWhenCheckPasses) {
  int calls = 0;
  auto expensive = [&calls]() {
    ++calls;
    return std::string("expensive");
  };
  REFIT_CHECK_MSG(true, expensive());
  EXPECT_EQ(calls, 0);
}

int g_evaluations = 0;
// maybe_unused: in NDEBUG builds REFIT_DCHECK discards its argument, so
// nothing references this function.
[[maybe_unused]] bool count_and_pass() {
  ++g_evaluations;
  return true;
}

TEST(Check, DcheckEvaluatesArgumentExactlyOnceInDebugBuilds) {
  g_evaluations = 0;
  REFIT_DCHECK(count_and_pass());
#ifdef NDEBUG
  EXPECT_EQ(g_evaluations, 0) << "REFIT_DCHECK must compile away in NDEBUG";
#else
  EXPECT_EQ(g_evaluations, 1)
      << "REFIT_DCHECK must evaluate its argument exactly once";
#endif
}

TEST(Check, DcheckMsgMatchesDcheckSemantics) {
  g_evaluations = 0;
  REFIT_DCHECK_MSG(count_and_pass(), "context");
#ifdef NDEBUG
  EXPECT_EQ(g_evaluations, 0);
#else
  EXPECT_EQ(g_evaluations, 1);
#endif

#ifndef NDEBUG
  try {
    REFIT_DCHECK_MSG(false, "dcheck context " << 42);
    FAIL() << "REFIT_DCHECK_MSG(false, ...) did not throw in a debug build";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("dcheck context 42"),
              std::string::npos);
  }
#endif
}

}  // namespace
}  // namespace refit
