// Round-trip tests for the tile/mapping layer the phase engine sits on:
// LogicalMapping's permutation pairs must compose with their inverses to
// the identity at every tile shape, and TileGrid::for_each_tile must
// visit every tile exactly once regardless of thread count (the static
// partition's core guarantee).
#include <algorithm>
#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/thread_pool.hpp"
#include "gtest/gtest.h"
#include "rcs/logical_mapping.hpp"
#include "rcs/tile_grid.hpp"

namespace {

using refit::LogicalMapping;
using refit::ThreadPool;
using refit::TileGrid;
using refit::TileSpan;

/// Shrinks the global pool back to one lane on scope exit (the same
/// convention as test_backend/test_engine).
struct PoolGuard {
  ~PoolGuard() { ThreadPool::set_global_threads(1); }
};

/// A deterministic non-trivial permutation of [0, n): reversal composed
/// with a relatively-prime stride walk.
std::vector<std::size_t> scrambled(std::size_t n, std::size_t stride) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::reverse(perm.begin(), perm.end());
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = perm[(i * stride + 1) % n];
  std::sort(perm.begin(), perm.end());
  // `out` is only a permutation when stride ⊥ n; fall back to reversal.
  std::vector<std::size_t> check = out;
  std::sort(check.begin(), check.end());
  if (check != perm) {
    out.resize(n);
    std::iota(out.begin(), out.end(), std::size_t{0});
    std::reverse(out.begin(), out.end());
  }
  return out;
}

TEST(LogicalMapping, ComposeWithInverseIsIdentityAcrossShapes) {
  const std::size_t shapes[][2] = {{1, 1},  {1, 7},  {8, 8},
                                   {13, 5}, {64, 3}, {31, 33}};
  for (const auto& s : shapes) {
    const std::size_t rows = s[0], cols = s[1];
    LogicalMapping m(rows, cols);
    m.set(scrambled(rows, 7), scrambled(cols, 11));

    for (std::size_t i = 0; i < rows; ++i) {
      EXPECT_EQ(m.logical_row(m.physical_row(i)), i)
          << rows << "x" << cols << " row " << i;
      EXPECT_EQ(m.physical_row(m.logical_row(i)), i)
          << rows << "x" << cols << " row " << i;
    }
    for (std::size_t j = 0; j < cols; ++j) {
      EXPECT_EQ(m.logical_col(m.physical_col(j)), j)
          << rows << "x" << cols << " col " << j;
      EXPECT_EQ(m.physical_col(m.logical_col(j)), j)
          << rows << "x" << cols << " col " << j;
    }

    // The cached inverse tables agree with the accessors.
    for (std::size_t i = 0; i < rows; ++i)
      EXPECT_EQ(m.inv_row_perm()[m.row_perm()[i]], i);
    for (std::size_t j = 0; j < cols; ++j)
      EXPECT_EQ(m.inv_col_perm()[m.col_perm()[j]], j);
  }
}

TEST(LogicalMapping, IdentityByDefault) {
  const LogicalMapping m(5, 9);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(m.physical_row(i), i);
  for (std::size_t j = 0; j < 9; ++j) EXPECT_EQ(m.logical_col(j), j);
}

/// Runs for_each_tile at a given lane count and returns per-tile visit
/// counters (incremented with relaxed atomics so over-visits cannot hide
/// behind a data race).
std::vector<int> visit_counts(const TileGrid& grid, std::size_t threads) {
  ThreadPool::set_global_threads(threads);
  std::vector<std::atomic<int>> hits(grid.tile_count());
  grid.for_each_tile([&hits](const TileSpan& span) {
    hits[span.index].fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<int> out(hits.size());
  for (std::size_t i = 0; i < hits.size(); ++i)
    out[i] = hits[i].load(std::memory_order_relaxed);
  return out;
}

TEST(TileGrid, ForEachTileVisitsEveryTileExactlyOnceAtAnyThreadCount) {
  PoolGuard guard;
  // Shapes chosen so edge tiles shrink on both axes.
  const std::size_t shapes[][4] = {
      {1, 1, 4, 4}, {16, 16, 4, 4}, {17, 19, 4, 8}, {64, 48, 16, 16}};
  for (const auto& s : shapes) {
    const TileGrid grid(s[0], s[1], s[2], s[3]);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const std::vector<int> hits = visit_counts(grid, threads);
      ASSERT_EQ(hits.size(), grid.tile_count());
      for (std::size_t t = 0; t < hits.size(); ++t)
        EXPECT_EQ(hits[t], 1) << s[0] << "x" << s[1] << " tile " << t
                              << " at " << threads << " threads";
    }
  }
}

TEST(TileGrid, ForEachTileSpansTileTheWholeMatrix) {
  // The spans handed to the visitor partition the matrix: every cell is
  // covered exactly once.
  const TileGrid grid(17, 19, 4, 8);
  std::vector<std::atomic<int>> covered(17 * 19);
  grid.for_each_tile([&covered](const TileSpan& span) {
    for (std::size_t r = span.row0; r < span.row0 + span.rows; ++r)
      for (std::size_t c = span.col0; c < span.col0 + span.cols; ++c)
        covered[r * 19 + c].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < covered.size(); ++i)
    EXPECT_EQ(covered[i].load(), 1) << "cell " << i;
}

TEST(TileGrid, SubsetOverloadVisitsExactlyTheSubset) {
  PoolGuard guard;
  const TileGrid grid(32, 32, 8, 8);  // 4x4 = 16 tiles
  const std::vector<std::size_t> subset = {0, 5, 10, 15, 3};
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool::set_global_threads(threads);
    std::vector<std::atomic<int>> hits(grid.tile_count());
    grid.for_each_tile(subset, [&hits](const TileSpan& span) {
      hits[span.index].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t t = 0; t < hits.size(); ++t) {
      const bool wanted =
          std::find(subset.begin(), subset.end(), t) != subset.end();
      EXPECT_EQ(hits[t].load(), wanted ? 1 : 0)
          << "tile " << t << " at " << threads << " threads";
    }
  }
}

}  // namespace
