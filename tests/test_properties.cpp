// Parameterized property tests (TEST_P sweeps) over the simulator's
// invariants: device-model roundtrips, detector guarantees across sizes
// and distributions, GEMM algebra across shapes, assignment-solver
// ordering across random instances, and pruning exactness across
// sparsities.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "core/prune.hpp"
#include "core/remap.hpp"
#include "detect/quiescent_detector.hpp"
#include "nn/models.hpp"
#include "rram/faults.hpp"
#include "tensor/ops.hpp"

namespace refit {
namespace {

// ---------------------------------------------------------------------
// Crossbar write/read roundtrip across level counts and noise levels.
class CrossbarRoundtrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(CrossbarRoundtrip, EveryLevelReadsBackExactly) {
  const auto [levels, noise] = GetParam();
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 4;
  cfg.levels = levels;
  cfg.write_noise_sigma = noise;
  Crossbar xb(cfg, EnduranceModel::unlimited(), Rng(1));
  const double gap = cfg.level_gap();
  for (std::size_t lvl = 0; lvl < levels; ++lvl) {
    xb.write(0, 0, static_cast<double>(lvl) * gap);
    // Noise is well below half a level gap for all tested settings, so
    // the quantized read must recover the written level exactly.
    EXPECT_EQ(xb.read_level(0, 0), static_cast<int>(lvl))
        << "levels=" << levels << " noise=" << noise;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LevelNoiseSweep, CrossbarRoundtrip,
    ::testing::Combine(::testing::Values(2, 4, 8, 16, 32),
                       ::testing::Values(0.0, 0.002, 0.005)));

// ---------------------------------------------------------------------
// Fault injection hits its quota for every distribution and fraction.
class FaultQuota
    : public ::testing::TestWithParam<
          std::tuple<SpatialDistribution, double>> {};

TEST_P(FaultQuota, ExactCount) {
  const auto [dist, fraction] = GetParam();
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 48;
  Crossbar xb(cfg, EnduranceModel::unlimited(), Rng(2));
  FaultInjectionConfig fc;
  fc.fraction = fraction;
  fc.spatial = dist;
  Rng rng(3);
  inject_fabrication_faults(xb, fc, rng);
  const auto expected = static_cast<std::size_t>(
      std::llround(fraction * 48 * 48));
  EXPECT_EQ(xb.fault_count(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    DistributionSweep, FaultQuota,
    ::testing::Combine(::testing::Values(SpatialDistribution::kUniform,
                                         SpatialDistribution::kClustered,
                                         SpatialDistribution::kLineDefects),
                       ::testing::Values(0.05, 0.1, 0.3, 0.5)));

// ---------------------------------------------------------------------
// Detector guarantees across crossbar size, test size, and distribution:
// recall stays high, predictions stay inside the candidate universe, and
// the cycle count respects the ceil(Er/Tr)+ceil(Ec/Tc) bound per pass.
class DetectorSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, SpatialDistribution>> {};

TEST_P(DetectorSweep, RecallAndCycleBound) {
  const auto [n, tr, dist] = GetParam();
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.levels = 8;
  cfg.write_noise_sigma = 0.01;
  Crossbar xb(cfg, EnduranceModel::unlimited(), Rng(4 + n + tr));
  Rng rng(5 + n * 31 + tr);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  FaultInjectionConfig fc;
  fc.fraction = 0.10;
  fc.spatial = dist;
  inject_fabrication_faults(xb, fc, rng);

  DetectorConfig dc;
  dc.test_rows_per_cycle = tr;
  const DetectionOutcome out = QuiescentVoltageDetector(dc).detect(xb);
  const ConfusionCounts cc = evaluate_detection(xb, out.predicted);
  EXPECT_GT(cc.recall(), 0.85);
  EXPECT_GT(cc.precision(), 0.1);
  // Two passes, each at most ceil(n/tr) row cycles + ceil(n/tr) col cycles.
  const std::size_t bound = 2 * 2 * ((n + tr - 1) / tr);
  EXPECT_LE(out.cycles, bound);
  EXPECT_EQ(out.device_writes, 2 * out.cells_tested);
}

INSTANTIATE_TEST_SUITE_P(
    SizeTestsizeDistSweep, DetectorSweep,
    ::testing::Combine(::testing::Values(32, 64, 96),
                       ::testing::Values(4, 8, 16),
                       ::testing::Values(SpatialDistribution::kUniform,
                                         SpatialDistribution::kClustered)));

// ---------------------------------------------------------------------
// GEMM algebra across shapes: distributivity and transpose identities.
class GemmShapes
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmShapes, DistributesOverAddition) {
  const auto [m, k, n] = GetParam();
  Rng rng(6);
  const Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  const Tensor c = Tensor::randn({k, n}, rng);
  Tensor bc = b;
  bc += c;
  const Tensor lhs = matmul(a, bc);
  Tensor rhs = matmul(a, b);
  rhs += matmul(a, c);
  for (std::size_t i = 0; i < lhs.numel(); ++i)
    EXPECT_NEAR(lhs[i], rhs[i], 1e-3);
}

TEST_P(GemmShapes, TransposeIdentity) {
  // (A·B)ᵀ == Bᵀ·Aᵀ
  const auto [m, k, n] = GetParam();
  Rng rng(7);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  const Tensor lhs = transpose(matmul(a, b));
  const Tensor rhs = matmul(transpose(b), transpose(a));
  for (std::size_t i = 0; i < lhs.numel(); ++i)
    EXPECT_NEAR(lhs[i], rhs[i], 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmShapes,
    ::testing::Values(std::tuple<std::size_t, std::size_t, std::size_t>{1, 1, 1},
                      std::tuple<std::size_t, std::size_t, std::size_t>{3, 5, 7},
                      std::tuple<std::size_t, std::size_t, std::size_t>{8, 8, 8},
                      std::tuple<std::size_t, std::size_t, std::size_t>{17, 3, 29},
                      std::tuple<std::size_t, std::size_t, std::size_t>{2, 64, 2}));

// ---------------------------------------------------------------------
// Assignment solvers across random instances: every solver returns a valid
// permutation, never beats the exact optimum, and never loses to identity
// (greedy/GA start from it or are checked against it by the caller).
class SolverOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverOrdering, HungarianIsLowerBound) {
  const std::uint64_t seed = GetParam();
  Rng crng(seed);
  const std::size_t m = 12 + seed % 9;
  InterfaceCost cost(m);
  for (std::size_t j = 0; j < m; ++j)
    for (std::size_t p = 0; p < m; ++p)
      cost.add(j, p, crng.uniform(0.0, 5.0));

  Rng rng(seed + 1000);
  RemapConfig cfg;
  cfg.algorithm = RemapAlgorithm::kHungarian;
  const auto exact = optimize_assignment(cost, cfg, rng);
  cfg.algorithm = RemapAlgorithm::kGreedySwap;
  const auto greedy = optimize_assignment(cost, cfg, rng);
  cfg.algorithm = RemapAlgorithm::kGenetic;
  const auto ga = optimize_assignment(cost, cfg, rng);

  for (const auto& perm : {exact, greedy, ga}) {
    std::vector<bool> seen(m, false);
    for (const std::size_t p : perm) {
      ASSERT_LT(p, m);
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
  }
  std::vector<std::size_t> ident(m);
  std::iota(ident.begin(), ident.end(), 0);
  EXPECT_LE(cost.total(exact), cost.total(greedy) + 1e-9);
  EXPECT_LE(cost.total(exact), cost.total(ga) + 1e-9);
  EXPECT_LE(cost.total(greedy), cost.total(ident) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SolverOrdering,
                         ::testing::Range<std::uint64_t>(0, 12));

// ---------------------------------------------------------------------
// Pruning exactness across sparsities.
class PruneSweep : public ::testing::TestWithParam<double> {};

TEST_P(PruneSweep, ExactFractionAndIdempotentApply) {
  const double sparsity = GetParam();
  Rng rng(8);
  Network net = make_mlp({40, 25}, software_store_factory(), rng);
  PruneConfig cfg;
  cfg.fc_sparsity = sparsity;
  const PruneState st = PruneState::compute(net, cfg);
  MatrixLayer* ml = net.matrix_layers()[0];
  const PruneMask* mask = st.mask_for(&ml->weights());
  ASSERT_NE(mask, nullptr);
  const auto expected =
      static_cast<std::size_t>(sparsity * 40 * 25);
  EXPECT_EQ(mask->count_pruned(), expected);

  st.apply_to(net);
  const Tensor after_once = ml->weights().target();
  st.apply_to(net);  // idempotent
  const Tensor after_twice = ml->weights().target();
  for (std::size_t i = 0; i < after_once.numel(); ++i)
    EXPECT_EQ(after_once[i], after_twice[i]);
}

INSTANTIATE_TEST_SUITE_P(SparsitySweep, PruneSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

// ---------------------------------------------------------------------
// CrossbarWeightStore invariant across permutation round trips: applying
// a permutation and its inverse restores the logical effective weights
// (up to requantization of the rewritten cells).
class PermutationRoundtrip : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PermutationRoundtrip, InverseRestoresEffective) {
  const std::uint64_t seed = GetParam();
  RcsConfig cfg;
  cfg.tile_rows = cfg.tile_cols = 16;
  cfg.levels = 64;
  cfg.write_noise_sigma = 0.0;
  cfg.inject_fabrication = false;
  Rng wrng(seed);
  CrossbarWeightStore store(cfg, Tensor::randn({12, 12}, wrng, 0.05f),
                            Rng(seed + 1));
  const Tensor before = store.effective();

  std::vector<std::size_t> rp(12), cp(12);
  std::iota(rp.begin(), rp.end(), 0);
  std::iota(cp.begin(), cp.end(), 0);
  Rng prng(seed + 2);
  prng.shuffle(rp);
  prng.shuffle(cp);
  store.set_permutations(rp, cp);
  std::vector<std::size_t> id(12);
  std::iota(id.begin(), id.end(), 0);
  store.set_permutations(id, id);

  const Tensor after = store.effective();
  for (std::size_t i = 0; i < before.numel(); ++i)
    EXPECT_NEAR(before[i], after[i], store.weight_max() / 60.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationRoundtrip,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace refit
