// Layer tests, including numerical gradient checks for Dense and Conv2D —
// the correctness backbone of the whole training framework.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"

namespace refit {
namespace {

/// Scalar loss used by the gradient checks: sum of squared outputs / 2,
/// whose gradient w.r.t. the output is the output itself.
double half_sq(const Tensor& y) {
  double s = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i)
    s += 0.5 * static_cast<double>(y[i]) * y[i];
  return s;
}

/// Central-difference derivative of half_sq(layer(x)) w.r.t. element `i`
/// of a tensor accessed through `get`/`set`.
double numeric_grad(const std::function<double()>& eval,
                    float* slot, float eps = 1e-3f) {
  const float orig = *slot;
  *slot = orig + eps;
  const double up = eval();
  *slot = orig - eps;
  const double down = eval();
  *slot = orig;
  return (up - down) / (2.0 * static_cast<double>(eps));
}

TEST(Dense, ForwardMatchesManualGemm) {
  Rng rng(1);
  Dense d("fc", 3, 2, software_store_factory(), rng);
  d.bias()[0] = 0.5f;
  Tensor x({1, 3}, std::vector<float>{1, 2, 3});
  Tensor y = d.forward(x, false);
  const Tensor& w = d.weights().target();
  const double expect0 = w.at(0, 0) + 2 * w.at(1, 0) + 3 * w.at(2, 0) + 0.5;
  EXPECT_NEAR(y.at(0, 0), expect0, 1e-5);
}

TEST(Dense, InputGradientNumerical) {
  Rng rng(2);
  Dense d("fc", 4, 3, software_store_factory(), rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  auto eval = [&] { return half_sq(d.forward(x, false)); };

  Tensor y = d.forward(x, true);
  Tensor gx = d.backward(y);  // dL/dy = y for half_sq
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(gx[i], numeric_grad(eval, &x.vec()[i]), 2e-2)
        << "input grad " << i;
  }
}

TEST(Dense, WeightGradientNumerical) {
  Rng rng(3);
  Dense d("fc", 3, 2, software_store_factory(), rng);
  Tensor x = Tensor::randn({2, 3}, rng);
  auto eval = [&] { return half_sq(d.forward(x, false)); };

  d.zero_grad();
  Tensor y = d.forward(x, true);
  d.backward(y);
  std::vector<Param> params;
  d.collect_params(params);
  ASSERT_EQ(params.size(), 2u);
  Tensor& wgrad = *params[0].grad;
  // Mutate weights through the store to probe the numerical gradient.
  auto* store = dynamic_cast<SoftwareWeightStore*>(params[0].store);
  ASSERT_NE(store, nullptr);
  Tensor w = store->target();
  for (std::size_t i = 0; i < w.numel(); ++i) {
    auto eval_w = [&] {
      Tensor probe = w;
      store->assign(probe);
      return half_sq(d.forward(x, false));
    };
    EXPECT_NEAR(wgrad[i], numeric_grad(eval_w, &w.vec()[i]), 2e-2)
        << "weight grad " << i;
  }
  store->assign(w);
  (void)eval;
}

TEST(Dense, BiasGradientIsColumnSum) {
  Rng rng(4);
  Dense d("fc", 2, 3, software_store_factory(), rng);
  Tensor x = Tensor::randn({4, 2}, rng);
  d.forward(x, true);
  Tensor gy({4, 3}, 1.0f);
  d.backward(gy);
  std::vector<Param> params;
  d.collect_params(params);
  const Tensor& bgrad = *params[1].grad;
  for (std::size_t j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(bgrad[j], 4.0f);
}

TEST(Dense, GradAccumulatesAcrossBackwards) {
  Rng rng(5);
  Dense d("fc", 2, 2, software_store_factory(), rng);
  Tensor x = Tensor::randn({1, 2}, rng);
  Tensor gy({1, 2}, 1.0f);
  d.forward(x, true);
  d.backward(gy);
  std::vector<Param> params;
  d.collect_params(params);
  const float once = (*params[0].grad)[0];
  d.forward(x, true);
  d.backward(gy);
  EXPECT_FLOAT_EQ((*params[0].grad)[0], 2.0f * once);
  d.zero_grad();
  EXPECT_FLOAT_EQ((*params[0].grad)[0], 0.0f);
}

TEST(Dense, BackwardBeforeForwardThrows) {
  Rng rng(6);
  Dense d("fc", 2, 2, software_store_factory(), rng);
  Tensor gy({1, 2});
  EXPECT_THROW(d.backward(gy), CheckError);
}

TEST(Conv2D, ForwardShape) {
  Rng rng(7);
  Conv2D conv("c", 3, 8, 8, 5, 3, 1, 1, software_store_factory(), rng);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8, 8}));
}

TEST(Conv2D, StridedShape) {
  Rng rng(8);
  Conv2D conv("c", 1, 8, 8, 2, 2, 2, 0, software_store_factory(), rng);
  Tensor x = Tensor::randn({1, 1, 8, 8}, rng);
  EXPECT_EQ(conv.forward(x, false).shape(), (Shape{1, 2, 4, 4}));
}

TEST(Conv2D, InputGradientNumerical) {
  Rng rng(9);
  Conv2D conv("c", 2, 4, 4, 3, 3, 1, 1, software_store_factory(), rng);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  auto eval = [&] { return half_sq(conv.forward(x, false)); };
  Tensor y = conv.forward(x, true);
  Tensor gx = conv.backward(y);
  for (std::size_t i = 0; i < x.numel(); i += 3) {  // sample every 3rd
    EXPECT_NEAR(gx[i], numeric_grad(eval, &x.vec()[i]), 5e-2)
        << "conv input grad " << i;
  }
}

TEST(Conv2D, WeightGradientNumerical) {
  Rng rng(10);
  Conv2D conv("c", 1, 3, 3, 2, 3, 1, 1, software_store_factory(), rng);
  Tensor x = Tensor::randn({2, 1, 3, 3}, rng);
  conv.zero_grad();
  conv.forward(x, true);
  Tensor y = conv.forward(x, true);
  conv.zero_grad();
  conv.backward(y);
  std::vector<Param> params;
  conv.collect_params(params);
  auto* store = dynamic_cast<SoftwareWeightStore*>(params[0].store);
  ASSERT_NE(store, nullptr);
  Tensor w = store->target();
  const Tensor& wgrad = *params[0].grad;
  for (std::size_t i = 0; i < w.numel(); i += 2) {
    auto eval_w = [&] {
      store->assign(w);
      return half_sq(conv.forward(x, false));
    };
    EXPECT_NEAR(wgrad[i], numeric_grad(eval_w, &w.vec()[i]), 5e-2)
        << "conv weight grad " << i;
  }
  store->assign(w);
}

TEST(Conv2D, NeuronGeometry) {
  Rng rng(11);
  Conv2D conv("c", 4, 8, 8, 6, 3, 1, 1, software_store_factory(), rng);
  EXPECT_EQ(conv.in_neurons(), 4u);
  EXPECT_EQ(conv.out_neurons(), 6u);
  EXPECT_EQ(conv.rows_per_in_neuron(), 9u);
  EXPECT_EQ(conv.weights().shape(), (Shape{36, 6}));
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU r("relu");
  Tensor x({4}, std::vector<float>{-1, 0, 2, -3});
  Tensor y = r.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLU, BackwardMasksByForwardSign) {
  ReLU r("relu");
  Tensor x({4}, std::vector<float>{-1, 0.5f, 2, -3});
  r.forward(x, true);
  Tensor gy({4}, 1.0f);
  Tensor gx = r.backward(gy);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[2], 1.0f);
  EXPECT_FLOAT_EQ(gx[3], 0.0f);
}

TEST(Flatten, RoundTrip) {
  Flatten f("flat");
  Rng rng(12);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  Tensor y = f.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  Tensor gx = f.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(gx[i], x[i]);
}

TEST(MaxPoolLayer, ForwardBackward) {
  MaxPool2D p("pool", 2, 2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 9, 3, 2});
  Tensor y = p.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 9.0f);
  Tensor gy({1, 1, 1, 1}, 2.0f);
  Tensor gx = p.backward(gy);
  EXPECT_FLOAT_EQ(gx[1], 2.0f);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
}

}  // namespace
}  // namespace refit
