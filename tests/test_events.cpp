// Tests for the structured event log (src/obs/events.hpp):
//
//   * emission order, sequence numbers, payload fidelity, JSONL shape,
//   * ring wraparound keeping the newest kCapacity events,
//   * engine integration — detection/remap/checkpoint events appear with
//     the documented details and fields, identically at 1 and 4 threads,
//   * the flight recorder — enabling the log installs a hook that dumps
//     the event tail to stderr when a REFIT_CHECK fails.
#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "core/ft_trainer.hpp"
#include "core/obs_observer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "obs/clock.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace refit {
namespace {

using obs::EventKind;
using obs::EventLog;
using obs::EventSeverity;

class EventsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EventLog::global().reset_for_tests();
    EventLog::global().set_enabled(true);
  }
  void TearDown() override {
    EventLog::global().set_enabled(false);
    EventLog::global().reset_for_tests();
    obs::set_clock(nullptr);
    ThreadPool::set_global_threads(1);
  }
};

TEST_F(EventsTest, EmitPreservesOrderPayloadAndNames) {
  obs::ManualClock clock(1000);
  obs::set_clock(&clock);
  EventLog::global().emit(EventKind::kFaultDetected, EventSeverity::kInfo,
                          "detection", {{"iteration", 3}, {"precision", 0.9}});
  EventLog::global().emit(EventKind::kRemap, EventSeverity::kWarn, "remap",
                          {{"cost_after", 12}});
  EventLog::global().emit(EventKind::kPhaseError, EventSeverity::kError,
                          "train", {});

  const auto events = EventLog::global().collect();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_LT(events[0].t_ns, events[1].t_ns);  // manual clock ticks forward
  EXPECT_EQ(events[0].kind, EventKind::kFaultDetected);
  EXPECT_EQ(events[0].detail, "detection");
  ASSERT_EQ(events[0].fields.size(), 2u);
  EXPECT_EQ(events[0].fields[0].first, "iteration");
  EXPECT_DOUBLE_EQ(events[0].fields[1].second, 0.9);
  EXPECT_EQ(events[1].severity, EventSeverity::kWarn);
  EXPECT_EQ(events[2].severity, EventSeverity::kError);

  std::ostringstream os;
  EventLog::global().write_jsonl(os);
  const std::string jsonl = os.str();
  EXPECT_NE(jsonl.find("\"kind\":\"fault-detected\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"severity\":\"warn\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"detail\":\"remap\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"fields\":{\"iteration\":3,\"precision\":0.9}"),
            std::string::npos);
  // One line per event.
  std::size_t lines = 0;
  for (const char c : jsonl) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);
}

TEST_F(EventsTest, KindAndSeverityNamesAreStable) {
  EXPECT_STREQ(obs::event_kind_name(EventKind::kFaultDetected),
               "fault-detected");
  EXPECT_STREQ(obs::event_kind_name(EventKind::kSoftClassified),
               "soft-classified");
  EXPECT_STREQ(obs::event_kind_name(EventKind::kRemap), "remap");
  EXPECT_STREQ(obs::event_kind_name(EventKind::kCheckpoint), "checkpoint");
  EXPECT_STREQ(obs::event_kind_name(EventKind::kPhaseError), "phase-error");
  EXPECT_STREQ(obs::event_severity_name(EventSeverity::kInfo), "info");
  EXPECT_STREQ(obs::event_severity_name(EventSeverity::kWarn), "warn");
  EXPECT_STREQ(obs::event_severity_name(EventSeverity::kError), "error");
}

TEST_F(EventsTest, DisabledLogRecordsNothing) {
  EventLog::global().set_enabled(false);
  EventLog::global().emit(EventKind::kRemap, EventSeverity::kInfo, {});
  EXPECT_EQ(EventLog::global().emitted(), 0u);
  EXPECT_TRUE(EventLog::global().collect().empty());
}

TEST_F(EventsTest, RingKeepsTheNewestEventsAfterWraparound) {
  const std::size_t n = EventLog::kCapacity + 100;
  for (std::size_t i = 0; i < n; ++i) {
    EventLog::global().emit(EventKind::kCheckpoint, EventSeverity::kInfo,
                            "wrap", {{"i", static_cast<double>(i)}});
  }
  EXPECT_EQ(EventLog::global().emitted(), n);
  const auto events = EventLog::global().collect();
  ASSERT_EQ(events.size(), EventLog::kCapacity);
  EXPECT_EQ(events.front().seq, 100u);  // the 100 oldest were overwritten
  EXPECT_EQ(events.back().seq, n - 1);
  EXPECT_DOUBLE_EQ(events.back().fields[0].second,
                   static_cast<double>(n - 1));
}

TEST_F(EventsTest, DumpTailPrintsTheLastEvents) {
  for (int i = 0; i < 50; ++i) {
    EventLog::global().emit(EventKind::kFaultDetected, EventSeverity::kInfo,
                            "detection", {{"iteration", static_cast<double>(i)}});
  }
  std::ostringstream os;
  EventLog::global().dump_tail(os, 8);
  const std::string tail = os.str();
  EXPECT_EQ(tail.find("iteration=41"), std::string::npos) << "before window";
  EXPECT_NE(tail.find("iteration=42"), std::string::npos) << "window start";
  EXPECT_NE(tail.find("iteration=49"), std::string::npos) << "window end";
  EXPECT_NE(tail.find("fault-detected"), std::string::npos);
}

TEST_F(EventsTest, FlightRecorderDumpsTailOnCheckFailure) {
  EventLog::global().emit(EventKind::kRemap, EventSeverity::kWarn, "remap",
                          {{"cost_after", 7}});
  // Capture stderr around the failing check; the hook installed by
  // set_enabled(true) must print the ring tail before the throw.
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  EXPECT_THROW(REFIT_CHECK_MSG(1 == 2, "forced"), CheckError);
  std::cerr.rdbuf(old);
  const std::string err = captured.str();
  EXPECT_NE(err.find("flight recorder"), std::string::npos);
  EXPECT_NE(err.find("remap"), std::string::npos);
  EXPECT_NE(err.find("cost_after=7"), std::string::npos);
}

TEST_F(EventsTest, NoFlightRecorderDumpWhenLogDisabled) {
  EventLog::global().set_enabled(false);
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  EXPECT_THROW(REFIT_CHECK(false), CheckError);
  std::cerr.rdbuf(old);
  EXPECT_EQ(captured.str().find("flight recorder"), std::string::npos);
}

/// The same small full-flow run as the other obs tests: detection + remap
/// + checkpoints over 6 iterations, returning the event JSONL.
std::string run_and_dump(std::size_t threads) {
  ThreadPool::set_global_threads(threads);

  SyntheticConfig dc;
  dc.train_size = 64;
  dc.test_size = 32;
  Rng drng(1);
  const Dataset data = make_synthetic_mnist(dc, drng);

  RcsConfig rc;
  rc.tile_rows = 64;
  rc.tile_cols = 64;
  rc.inject_fabrication = true;
  rc.fabrication.fraction = 0.1;
  RcsSystem rcs(rc, Rng(42));

  Rng nrng(2);
  Network net = make_mlp({784, 16, 10}, rcs.factory(), nrng);

  FtFlowConfig flow;
  flow.iterations = 6;
  flow.batch_size = 4;
  flow.eval_period = 3;
  flow.eval_samples = 32;
  flow.threshold_training = true;
  flow.detection_enabled = true;
  flow.detection_period = 3;
  flow.remap_enabled = true;

  FtTrainer trainer(flow);
  ObsObserver observer;
  trainer.add_observer(&observer);
  (void)trainer.train(net, &rcs, data, Rng(3));

  std::ostringstream os;
  EventLog::global().write_jsonl(os);
  return os.str();
}

TEST_F(EventsTest, EngineEmitsDetectionEventsByteStablyAcrossThreadCounts) {
  obs::ManualClock c1(1000);
  obs::set_clock(&c1);
  const std::string d1 = run_and_dump(1);

  EventLog::global().reset_for_tests();
  obs::ManualClock c4(1000);
  obs::set_clock(&c4);
  const std::string d4 = run_and_dump(4);

  EXPECT_FALSE(d1.empty());
  EXPECT_NE(d1.find("\"kind\":\"fault-detected\""), std::string::npos);
  EXPECT_EQ(d1, d4) << "event log must not depend on the pool size";
}

}  // namespace
}  // namespace refit
