// Tests for the CSV series printer and the logger — including the
// logger's thread-safety contract: concurrent REFIT_LOG calls from pool
// workers must emit whole lines (no interleaving mid-line).
#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace refit {
namespace {

TEST(SeriesPrinterTest, EmitsExperimentHeader) {
  std::ostringstream os;
  SeriesPrinter p(os, "TEST exp");
  EXPECT_EQ(os.str(), "# experiment: TEST exp\n");
}

TEST(SeriesPrinterTest, PaperReferenceAndComment) {
  std::ostringstream os;
  SeriesPrinter p(os, "X");
  p.paper_reference("reports 42%");
  p.comment("note");
  EXPECT_NE(os.str().find("# paper: reports 42%\n"), std::string::npos);
  EXPECT_NE(os.str().find("# note\n"), std::string::npos);
}

TEST(SeriesPrinterTest, HeaderAndRows) {
  std::ostringstream os;
  SeriesPrinter p(os, "X");
  p.header({"a", "b"});
  p.row({1.0, 2.5});
  p.row("label", {0.125});
  const std::string s = os.str();
  EXPECT_NE(s.find("# columns: a,b\n"), std::string::npos);
  EXPECT_NE(s.find("1.0,2.5\n"), std::string::npos);
  EXPECT_NE(s.find("label,0.125\n"), std::string::npos);
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.0), "1.0");
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(0.12345), "0.1235");  // 4 decimals default
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-2.5), "-2.5");
}

TEST(Log, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(saved);
}

TEST(Log, MacroCompilesAndRespectsLevel) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  // These must be filtered (no crash, no output assertion needed).
  REFIT_DEBUG("debug " << 1);
  REFIT_INFO("info " << 2);
  REFIT_WARN("warn " << 3);
  set_log_level(saved);
}

TEST(Log, ConcurrentLogLinesNeverInterleave) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  // Capture stderr, hammer the logger from 8 pool workers, and require
  // that every captured line is one whole log message.
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  ThreadPool::set_global_threads(8);
  constexpr std::size_t kLines = 256;
  ThreadPool::global().parallel_for(
      kLines, [](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          REFIT_INFO("line-" << i << "-end");
        }
      });
  std::cerr.rdbuf(old);
  ThreadPool::set_global_threads(1);
  set_log_level(saved);

  std::istringstream in(captured.str());
  std::string line;
  std::size_t seen = 0;
  std::vector<bool> hit(kLines, false);
  while (std::getline(in, line)) {
    ++seen;
    // Exactly "[INFO] line-<i>-end" — any torn write breaks the shape.
    ASSERT_EQ(line.rfind("[INFO] line-", 0), 0u) << "torn line: " << line;
    const std::string tail = "-end";
    ASSERT_EQ(line.compare(line.size() - tail.size(), tail.size(), tail), 0)
        << "torn line: " << line;
    const std::string num =
        line.substr(12, line.size() - 12 - tail.size());
    const std::size_t i = std::stoul(num);
    ASSERT_LT(i, kLines);
    EXPECT_FALSE(hit[i]) << "line " << i << " logged twice";
    hit[i] = true;
  }
  EXPECT_EQ(seen, kLines);
}

}  // namespace
}  // namespace refit
