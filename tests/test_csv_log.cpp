// Tests for the CSV series printer and the logger.
#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"
#include "common/log.hpp"

namespace refit {
namespace {

TEST(SeriesPrinterTest, EmitsExperimentHeader) {
  std::ostringstream os;
  SeriesPrinter p(os, "TEST exp");
  EXPECT_EQ(os.str(), "# experiment: TEST exp\n");
}

TEST(SeriesPrinterTest, PaperReferenceAndComment) {
  std::ostringstream os;
  SeriesPrinter p(os, "X");
  p.paper_reference("reports 42%");
  p.comment("note");
  EXPECT_NE(os.str().find("# paper: reports 42%\n"), std::string::npos);
  EXPECT_NE(os.str().find("# note\n"), std::string::npos);
}

TEST(SeriesPrinterTest, HeaderAndRows) {
  std::ostringstream os;
  SeriesPrinter p(os, "X");
  p.header({"a", "b"});
  p.row({1.0, 2.5});
  p.row("label", {0.125});
  const std::string s = os.str();
  EXPECT_NE(s.find("# columns: a,b\n"), std::string::npos);
  EXPECT_NE(s.find("1.0,2.5\n"), std::string::npos);
  EXPECT_NE(s.find("label,0.125\n"), std::string::npos);
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.0), "1.0");
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(0.12345), "0.1235");  // 4 decimals default
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-2.5), "-2.5");
}

TEST(Log, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(saved);
}

TEST(Log, MacroCompilesAndRespectsLevel) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  // These must be filtered (no crash, no output assertion needed).
  REFIT_DEBUG("debug " << 1);
  REFIT_INFO("info " << 2);
  REFIT_WARN("warn " << 3);
  set_log_level(saved);
}

}  // namespace
}  // namespace refit
