// Tests for threshold training (src/core/threshold_trainer.hpp, Alg. 1).
#include "core/threshold_trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/remap.hpp"
#include "nn/dense.hpp"
#include "rcs/crossbar_store.hpp"
#include "rcs/rcs_system.hpp"

namespace refit {
namespace {

/// A dense layer with a controllable gradient.
struct Fixture {
  Rng rng{1};
  Dense layer{"fc", 4, 4, software_store_factory(), rng};
  std::vector<Param> params;

  Fixture() { layer.collect_params(params); }

  void set_grad(const Tensor& g) { *params[0].grad = g; }
};

TEST(Threshold, ZeroRatioAppliesEverything) {
  Fixture f;
  Tensor g({4, 4}, 0.001f);
  f.set_grad(g);
  const ThresholdTrainer t({0.0, 0.0, true}, LrSchedule{1.0, 1.0, 0, 1e-4});
  const auto st = t.step(f.params, 0);
  EXPECT_EQ(st.writes_issued, 16u);
  EXPECT_EQ(st.writes_suppressed, 0u);
}

TEST(Threshold, SuppressesSmallUpdates) {
  Fixture f;
  Tensor g({4, 4}, 0.0001f);
  g.at(0, 0) = 1.0f;  // one dominant update
  f.set_grad(g);
  const Tensor before = f.params[0].store->target();
  const ThresholdTrainer t({0.01, 0.0, true}, LrSchedule{1.0, 1.0, 0, 1e-4});
  const auto st = t.step(f.params, 0);
  EXPECT_EQ(st.writes_issued, 1u);
  EXPECT_EQ(st.writes_suppressed, 15u);
  EXPECT_NEAR(st.dw_max, 1.0, 1e-6);
  const Tensor& after = f.params[0].store->target();
  EXPECT_NEAR(after.at(0, 0), before.at(0, 0) - 1.0f, 1e-5);
  EXPECT_EQ(after.at(1, 1), before.at(1, 1));  // suppressed
}

TEST(Threshold, ThresholdIsRelativeToDwMax) {
  Fixture f;
  Tensor g({4, 4}, 0.0f);
  g.at(0, 0) = 1.0f;
  g.at(0, 1) = 0.02f;   // 2 % of max → kept at θ=0.01
  g.at(0, 2) = 0.005f;  // 0.5 % of max → suppressed
  f.set_grad(g);
  const ThresholdTrainer t({0.01, 0.0, true}, LrSchedule{1.0, 1.0, 0, 1e-4});
  const auto st = t.step(f.params, 0);
  EXPECT_EQ(st.writes_issued, 2u);
  EXPECT_EQ(st.writes_suppressed, 1u);
}

TEST(Threshold, BiasAlwaysUpdated) {
  Fixture f;
  Tensor g({4, 4}, 0.0f);
  f.set_grad(g);
  (*f.params[1].grad)[0] = 1.0f;  // bias gradient
  const float b0 = (*f.params[1].value)[0];
  const ThresholdTrainer t({0.01, 0.0, true}, LrSchedule{0.5, 1.0, 0, 1e-4});
  t.step(f.params, 0);
  EXPECT_NEAR((*f.params[1].value)[0], b0 - 0.5f, 1e-6);
}

TEST(Threshold, PruneMaskBlocksUpdates) {
  Rng rng(2);
  Network net;  // minimal network wrapper to get a PruneState
  net.add(std::make_unique<Dense>("fc", 4, 4, software_store_factory(), rng));
  PruneConfig pcfg;
  pcfg.fc_sparsity = 0.5;
  const PruneState prune = PruneState::compute(net, pcfg);
  std::vector<Param> params = net.params();
  Tensor g({4, 4}, 1.0f);
  *params[0].grad = g;
  // Tiny nonzero ratio: threshold mode (zero-delta cells are skipped, not
  // refresh-written as in the original full-array scheme).
  const ThresholdTrainer t({1e-9, 0.0, true}, LrSchedule{1.0, 1.0, 0, 1e-4});
  const auto st = t.step(params, 0, &prune);
  EXPECT_EQ(st.writes_issued, 8u);  // half masked away
}

TEST(Threshold, OriginalSchemeWritesWholeArray) {
  // With threshold_ratio == 0 (the paper's original on-line scheme) every
  // cell receives a programming pulse each step, zero deltas included.
  Fixture f;
  Tensor g({4, 4}, 0.0f);
  g.at(0, 0) = 1.0f;
  f.set_grad(g);
  const ThresholdTrainer t({0.0, 0.0, true}, LrSchedule{1.0, 1.0, 0, 1e-4});
  const auto st = t.step(f.params, 0);
  EXPECT_EQ(st.writes_issued, 16u);
  EXPECT_EQ(st.updates_zero, 0u);
}

TEST(Threshold, DetectedFaultyCellsSkipWrites) {
  RcsConfig cfg;
  cfg.tile_rows = 8;
  cfg.tile_cols = 8;
  cfg.write_noise_sigma = 0.0;
  cfg.inject_fabrication = false;
  Rng rng(3);
  Network net;
  RcsSystem sys(cfg, Rng(4));
  net.add(std::make_unique<Dense>("fc", 4, 4, sys.factory(), rng));
  std::vector<Param> params = net.params();
  auto* store = dynamic_cast<CrossbarWeightStore*>(params[0].store);
  ASSERT_NE(store, nullptr);

  DetectedFaults detected;
  FaultMatrix fm(4, 4);
  fm.set(1, 1, FaultKind::kStuckAt0);
  detected.emplace(params[0].store, fm);

  Tensor g({4, 4}, 1.0f);
  *params[0].grad = g;
  const ThresholdTrainer t({0.0, 0.0, true}, LrSchedule{1.0, 1.0, 0, 1e-4});
  const auto st = t.step(params, 0, nullptr, &detected);
  EXPECT_EQ(st.writes_issued, 15u);
  EXPECT_EQ(st.writes_suppressed, 1u);
}

TEST(Threshold, WearLevelingRaisesThresholdForHotCells) {
  RcsConfig cfg;
  cfg.tile_rows = 8;
  cfg.tile_cols = 8;
  cfg.write_noise_sigma = 0.0;
  cfg.inject_fabrication = false;
  Rng rng(5);
  Network net;
  RcsSystem sys(cfg, Rng(6));
  net.add(std::make_unique<Dense>("fc", 2, 2, sys.factory(), rng));
  std::vector<Param> params = net.params();
  auto* store = dynamic_cast<CrossbarWeightStore*>(params[0].store);
  // Make cell (0,0) much hotter than the rest.
  Tensor hot({2, 2});
  hot.at(0, 0) = 0.001f;
  for (int i = 0; i < 50; ++i) store->apply_delta(hot);

  // Gradient just above the flat threshold for every cell.
  Tensor g({2, 2}, 0.02f);
  g.at(1, 1) = 1.0f;
  *params[0].grad = g;
  const ThresholdTrainer flat({0.01, 0.0, true},
                              LrSchedule{1.0, 1.0, 0, 1e-4});
  const ThresholdTrainer leveled({0.01, 50.0, true},
                                 LrSchedule{1.0, 1.0, 0, 1e-4});
  auto p2 = params;
  const auto st_flat = flat.step(params, 0);
  EXPECT_EQ(st_flat.writes_issued, 4u);
  // Re-prime the gradient (step cleared nothing, grads persist, but the
  // weights moved; that is fine for counting).
  *p2[0].grad = g;
  const auto st_lvl = leveled.step(p2, 0);
  EXPECT_LT(st_lvl.writes_issued, 4u);  // the hot cell got filtered
}

TEST(Threshold, PerLayerMaxMode) {
  Rng rng(7);
  Network net;
  net.add(std::make_unique<Dense>("a", 2, 2, software_store_factory(), rng));
  net.add(std::make_unique<Dense>("b", 2, 2, software_store_factory(), rng));
  std::vector<Param> params = net.params();
  Tensor big({2, 2}, 1.0f);
  Tensor small({2, 2}, 0.005f);
  *params[0].grad = big;    // layer a
  *params[2].grad = small;  // layer b
  // Global max: layer b's 0.005 < 0.01·1.0 → all suppressed.
  const ThresholdTrainer global_t({0.01, 0.0, true},
                                  LrSchedule{1.0, 1.0, 0, 1e-4});
  auto pg = net.params();
  *pg[0].grad = big;
  *pg[2].grad = small;
  const auto st_g = global_t.step(pg, 0);
  EXPECT_EQ(st_g.writes_issued, 4u);
  // Per-layer max: layer b's max is 0.005, so its own threshold is tiny →
  // all 8 written.
  net.zero_grad();
  auto pl = net.params();
  *pl[0].grad = big;
  *pl[2].grad = small;
  const ThresholdTrainer local_t({0.01, 0.0, false},
                                 LrSchedule{1.0, 1.0, 0, 1e-4});
  const auto st_l = local_t.step(pl, 0);
  EXPECT_EQ(st_l.writes_issued, 8u);
}

}  // namespace
}  // namespace refit
