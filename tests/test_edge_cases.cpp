// Edge-case coverage: non-square crossbars, single-row/column detection,
// tiny networks, odd conv geometries, and store boundary conditions.
#include <gtest/gtest.h>

#include "detect/quiescent_detector.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "rcs/crossbar_store.hpp"
#include "rram/faults.hpp"

namespace refit {
namespace {

TEST(EdgeCases, NonSquareCrossbarDetection) {
  CrossbarConfig cfg;
  cfg.rows = 40;
  cfg.cols = 12;
  cfg.write_noise_sigma = 0.0;
  Crossbar xb(cfg, EnduranceModel::unlimited(), Rng(1));
  Rng rng(2);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  FaultInjectionConfig fc;
  fc.fraction = 0.1;
  inject_fabrication_faults(xb, fc, rng);
  DetectorConfig dc;
  dc.test_rows_per_cycle = 8;
  const DetectionOutcome out = QuiescentVoltageDetector(dc).detect(xb);
  const ConfusionCounts cc = evaluate_detection(xb, out.predicted);
  EXPECT_DOUBLE_EQ(cc.recall(), 1.0);  // noiseless → no misses
}

TEST(EdgeCases, SingleRowCrossbar) {
  CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = 16;
  cfg.write_noise_sigma = 0.0;
  Crossbar xb(cfg, EnduranceModel::unlimited(), Rng(3));
  Rng rng(4);
  randomize_crossbar_content(xb, 0.5, 0.2, rng);
  xb.force_fault(0, 3, FaultKind::kStuckAt0);
  DetectorConfig dc;
  dc.test_rows_per_cycle = 4;
  const DetectionOutcome out = QuiescentVoltageDetector(dc).detect(xb);
  EXPECT_TRUE(out.predicted.faulty(0, 3));
}

TEST(EdgeCases, FullyFaultyCrossbarStillTerminates) {
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 8;
  Crossbar xb(cfg, EnduranceModel::unlimited(), Rng(5));
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      xb.force_fault(r, c, FaultKind::kStuckAt0);
  DetectorConfig dc;
  dc.test_rows_per_cycle = 4;
  const DetectionOutcome out = QuiescentVoltageDetector(dc).detect(xb);
  const ConfusionCounts cc = evaluate_detection(xb, out.predicted);
  EXPECT_GT(cc.recall(), 0.9);
}

TEST(EdgeCases, OneByOneWeightMatrix) {
  RcsConfig cfg;
  cfg.tile_rows = cfg.tile_cols = 4;
  cfg.inject_fabrication = false;
  cfg.write_noise_sigma = 0.0;
  cfg.levels = 256;
  Tensor init({1, 1}, std::vector<float>{0.1f});
  CrossbarWeightStore store(cfg, init, Rng(6));
  EXPECT_NEAR(store.effective().at(0, 0), 0.1f, 0.01f);
  store.set_permutations({0}, {0});  // identity on a 1×1 is valid
  Tensor d({1, 1}, std::vector<float>{-0.05f});
  store.apply_delta(d);
  EXPECT_NEAR(store.target().at(0, 0), 0.05f, 1e-6f);
}

TEST(EdgeCases, ConvWithStrideAndNoPadding) {
  Rng rng(7);
  Conv2D conv("c", 2, 7, 7, 3, 3, 2, 0, software_store_factory(), rng);
  EXPECT_EQ(conv.out_h(), 3u);
  Tensor x = Tensor::randn({2, 2, 7, 7}, rng);
  Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 3, 3}));
  Tensor gx = conv.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(EdgeCases, DenseBatchOfOne) {
  Rng rng(8);
  Dense d("fc", 5, 3, software_store_factory(), rng);
  Tensor x = Tensor::randn({1, 5}, rng);
  Tensor y = d.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 3}));
  d.backward(y);
}

TEST(EdgeCases, SoftmaxSingleClassBatch) {
  Tensor logits({4, 1}, 2.0f);
  const LossResult r = softmax_cross_entropy(logits, {0, 0, 0, 0});
  EXPECT_NEAR(r.loss, 0.0, 1e-6);
  EXPECT_EQ(r.correct, 4u);
}

TEST(EdgeCases, DetectorOnAllZeroContent) {
  // A freshly erased crossbar: every cell is an SA0 candidate; the SA1
  // pass has no candidates at all.
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 16;
  cfg.write_noise_sigma = 0.0;
  Crossbar xb(cfg, EnduranceModel::unlimited(), Rng(9));
  DetectorConfig dc;
  dc.test_rows_per_cycle = 4;
  const DetectionOutcome out = QuiescentVoltageDetector(dc).detect(xb);
  const ConfusionCounts cc = evaluate_detection(xb, out.predicted);
  EXPECT_EQ(cc.fp, 0u);
  EXPECT_EQ(out.cells_tested, 256u);  // SA0 pass only
}

TEST(EdgeCases, StoreWiderThanTall) {
  RcsConfig cfg;
  cfg.tile_rows = cfg.tile_cols = 8;
  cfg.inject_fabrication = false;
  Rng wrng(10);
  CrossbarWeightStore store(cfg, Tensor::randn({3, 30}, wrng, 0.1f),
                            Rng(11));
  EXPECT_EQ(store.tile_grid_rows(), 1u);
  EXPECT_EQ(store.tile_grid_cols(), 4u);
  EXPECT_EQ(store.tile(0, 3).cols(), 6u);
  EXPECT_EQ(store.effective().shape(), (Shape{3, 30}));
}

}  // namespace
}  // namespace refit
