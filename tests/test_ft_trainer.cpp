// Integration tests for the full fault-tolerant training flow (Fig. 2).
// These train small MLPs on a small synthetic task, so they are the
// slowest tests in the suite (still only a few seconds).
#include "core/ft_trainer.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

namespace refit {
namespace {

Dataset small_mnist(std::uint64_t seed = 1) {
  SyntheticConfig cfg;
  cfg.train_size = 768;
  cfg.test_size = 256;
  cfg.noise_stddev = 0.3f;
  cfg.background_clip = 0.4f;
  Rng rng(seed);
  return make_synthetic_mnist(cfg, rng);
}

FtFlowConfig fast_flow(std::size_t iterations = 300) {
  FtFlowConfig cfg;
  cfg.iterations = iterations;
  cfg.batch_size = 32;
  cfg.lr = LrSchedule{0.05, 0.5, 150, 1e-4};
  cfg.eval_period = 100;
  cfg.eval_samples = 256;
  return cfg;
}

RcsConfig rcs_base() {
  RcsConfig cfg;
  cfg.tile_rows = 64;
  cfg.tile_cols = 64;
  cfg.levels = 8;
  cfg.write_noise_sigma = 0.01;
  cfg.inject_fabrication = false;
  return cfg;
}

TEST(FtTrainer, IdealSoftwareTrainingLearns) {
  const Dataset data = small_mnist();
  Rng rng(2);
  Network net = make_mlp({784, 32, 10}, software_store_factory(), rng);
  FtTrainer trainer(fast_flow());
  const TrainingResult res = trainer.train(net, nullptr, data, Rng(3));
  EXPECT_GT(res.peak_accuracy, 0.8);
  EXPECT_EQ(res.device_writes, 0u);
  EXPECT_FALSE(res.eval_accuracy.empty());
  EXPECT_EQ(res.eval_iterations.front(), 0u);
  EXPECT_EQ(res.eval_iterations.back(), 300u);
}

TEST(FtTrainer, RcsTrainingWithoutFaultsAlsoLearns) {
  const Dataset data = small_mnist();
  Rng rng(4);
  RcsSystem sys(rcs_base(), Rng(5));
  Network net = make_mlp({784, 32, 10}, sys.factory(), rng);
  FtFlowConfig cfg = fast_flow();
  cfg.threshold_training = false;
  FtTrainer trainer(cfg);
  const TrainingResult res = trainer.train(net, &sys, data, Rng(6));
  EXPECT_GT(res.peak_accuracy, 0.7);  // 8-level quantization costs a bit
  EXPECT_GT(res.device_writes, 0u);
}

TEST(FtTrainer, ThresholdTrainingSuppressesMostWrites) {
  const Dataset data = small_mnist();
  Rng rng(7);
  RcsSystem sys(rcs_base(), Rng(8));
  Network net = make_mlp({784, 32, 10}, sys.factory(), rng);
  FtFlowConfig cfg = fast_flow();
  cfg.batch_size = 8;  // small batches keep per-iteration δw heavy-tailed
  cfg.threshold_training = true;
  FtTrainer trainer(cfg);
  const TrainingResult res = trainer.train(net, &sys, data, Rng(9));
  // The paper reports ~90 % of δw below the threshold.
  EXPECT_GT(res.suppression_ratio(), 0.5);
  EXPECT_GT(res.peak_accuracy, 0.6);
}

TEST(FtTrainer, EnduranceLimitedTrainingDegradesWithoutFt) {
  const Dataset data = small_mnist();
  Rng rng(10);
  RcsConfig rc = rcs_base();
  // Endurance so low that plain SGD (1 write/cell/iteration) kills most
  // cells mid-run.
  rc.endurance = EnduranceModel::gaussian(150.0, 45.0);
  RcsSystem sys(rc, Rng(11));
  Network net = make_mlp({784, 32, 10}, sys.factory(), rng);
  FtFlowConfig cfg = fast_flow();
  cfg.threshold_training = false;
  FtTrainer trainer(cfg);
  const TrainingResult res = trainer.train(net, &sys, data, Rng(12));
  EXPECT_GT(res.wearout_faults, 0u);
  EXPECT_GT(res.final_fault_fraction, 0.3);
  // Accuracy degrades as the array dies (Fig. 1's collapse).
  EXPECT_LT(res.final_accuracy, res.peak_accuracy - 0.02);
}

TEST(FtTrainer, ThresholdTrainingExtendsLifetime) {
  const Dataset data = small_mnist();
  auto run = [&](bool threshold) {
    Rng rng(13);
    RcsConfig rc = rcs_base();
    rc.endurance = EnduranceModel::gaussian(150.0, 45.0);
    RcsSystem sys(rc, Rng(14));
    Network net = make_mlp({784, 32, 10}, sys.factory(), rng);
    FtFlowConfig cfg = fast_flow();
    cfg.batch_size = 8;  // heavy-tailed δw, as in the paper's setting
    cfg.threshold_training = threshold;
    FtTrainer trainer(cfg);
    return trainer.train(net, &sys, data, Rng(15));
  };
  const TrainingResult without = run(false);
  const TrainingResult with = run(true);
  EXPECT_LT(with.final_fault_fraction, without.final_fault_fraction);
  // Per-weight update writes requested by the trainer drop substantially
  // (raw device_writes would be confounded by the baseline's dead cells
  // silently swallowing writes). The paper's ~94 % reduction needs the
  // cross-layer gradient-magnitude spread of a deep CNN; a 2-layer MLP's
  // δw distribution is flatter, so the bound here is conservative — the
  // CNN-scale number is measured by bench/threshold_stats.
  EXPECT_LT(with.updates_written,
            static_cast<std::uint64_t>(0.8 * without.updates_written));
}

TEST(FtTrainer, DetectionPhasesRunAndReportMetrics) {
  const Dataset data = small_mnist();
  Rng rng(16);
  RcsConfig rc = rcs_base();
  rc.inject_fabrication = true;
  rc.fabrication.fraction = 0.1;
  RcsSystem sys(rc, Rng(17));
  Network net = make_mlp({784, 32, 10}, sys.factory(), rng);
  FtFlowConfig cfg = fast_flow(300);
  cfg.detection_enabled = true;
  cfg.detection_period = 100;
  cfg.detector.test_rows_per_cycle = 16;
  cfg.prune.enabled = true;
  cfg.prune.fc_sparsity = 0.5;
  cfg.remap_enabled = true;
  cfg.remap.algorithm = RemapAlgorithm::kHungarian;
  FtTrainer trainer(cfg);
  const TrainingResult res = trainer.train(net, &sys, data, Rng(18));
  ASSERT_EQ(res.phases.size(), 3u);
  for (const auto& ph : res.phases) {
    EXPECT_GT(ph.cycles, 0u);
    EXPECT_GT(ph.recall, 0.8);
    EXPECT_LE(ph.remap_cost_after, ph.remap_cost_before + 1e-9);
  }
}

TEST(FtTrainer, FullFlowBeatsOriginalUnderInitialFaults) {
  // The headline Fig. 7(b) claim: with a large initial fault population on
  // the FC layers, the complete FT flow (threshold + detection + prune +
  // remap) recovers accuracy the original method cannot. Averaged over
  // three seeds to keep the assertion robust.
  SyntheticConfig sc;
  sc.train_size = 1024;
  sc.test_size = 256;
  Rng drng(1);
  const Dataset data = make_synthetic_cifar(sc, drng, 8);

  VggMiniConfig vc;
  vc.in_hw = 8;
  vc.conv_channels = {8, 16};
  vc.pool_after = {0, 1};
  vc.fc_hidden = {96, 48};

  double orig_mean = 0.0, full_mean = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    FtFlowConfig cfg = fast_flow(600);
    cfg.batch_size = 8;
    cfg.lr = LrSchedule{0.03, 0.5, 150, 1e-4};
    RcsConfig rc = rcs_base();
    rc.tile_rows = rc.tile_cols = 64;
    rc.inject_fabrication = true;
    rc.fabrication.fraction = 0.40;
    {
      Rng rng(2 + s);
      RcsSystem sys(rc, Rng(50 + s));
      Network net = make_vgg_mini(vc, software_store_factory(),
                                  sys.factory(), rng);
      cfg.threshold_training = false;
      orig_mean += FtTrainer(cfg).train(net, &sys, data, Rng(3 + s))
                       .peak_accuracy;
    }
    {
      Rng rng(2 + s);
      RcsSystem sys(rc, Rng(50 + s));
      Network net = make_vgg_mini(vc, software_store_factory(),
                                  sys.factory(), rng);
      cfg.threshold_training = true;
      cfg.detection_enabled = true;
      cfg.detection_period = 100;
      cfg.prune.enabled = true;
      cfg.prune.fc_sparsity = 0.3;
      cfg.prune.conv_sparsity = 0.0;
      cfg.remap_enabled = true;
      cfg.remap.algorithm = RemapAlgorithm::kHungarian;
      full_mean += FtTrainer(cfg).train(net, &sys, data, Rng(3 + s))
                       .peak_accuracy;
    }
  }
  orig_mean /= 3.0;
  full_mean /= 3.0;
  EXPECT_GT(full_mean, orig_mean + 0.03);
  EXPECT_GT(full_mean, 0.6);
}

TEST(FtTrainer, ResultBookkeepingConsistent) {
  const Dataset data = small_mnist();
  Rng rng(22);
  Network net = make_mlp({784, 16, 10}, software_store_factory(), rng);
  FtFlowConfig cfg = fast_flow(100);
  FtTrainer trainer(cfg);
  const TrainingResult res = trainer.train(net, nullptr, data, Rng(23));
  EXPECT_EQ(res.eval_iterations.size(), res.eval_accuracy.size());
  EXPECT_EQ(res.eval_iterations.size(), res.fault_fraction.size());
  for (double a : res.eval_accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  EXPECT_GE(res.peak_accuracy, res.final_accuracy - 1e-12);
}

}  // namespace
}  // namespace refit
