// Tests for the crossbar-backed weight store (src/rcs/crossbar_store.hpp):
// weight↔conductance mapping, fault semantics, tiling, permutations,
// endurance bookkeeping, and the RcsSystem registry.
#include "rcs/crossbar_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>

#include "common/thread_pool.hpp"
#include "rcs/rcs_system.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace refit {
namespace {

RcsConfig clean_config(std::size_t levels = 64) {
  RcsConfig cfg;
  cfg.tile_rows = 16;
  cfg.tile_cols = 16;
  cfg.levels = levels;  // fine-grained to keep quantization error tiny
  cfg.write_noise_sigma = 0.0;
  cfg.inject_fabrication = false;
  return cfg;
}

Tensor ramp(std::size_t r, std::size_t c, float scale = 0.01f) {
  Tensor t({r, c});
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = scale * (static_cast<float>(i % 17) - 8.0f);
  return t;
}

TEST(CrossbarStore, EffectiveApproximatesTarget) {
  const Tensor init = ramp(8, 8);
  CrossbarWeightStore store(clean_config(256), init, Rng(1));
  const Tensor& eff = store.effective();
  for (std::size_t i = 0; i < init.numel(); ++i)
    EXPECT_NEAR(eff[i], init[i], store.weight_max() / 255.0 + 1e-6);
}

TEST(CrossbarStore, QuantizationAtCoarseLevels) {
  const Tensor init = ramp(4, 4);
  CrossbarWeightStore store(clean_config(8), init, Rng(2));
  const Tensor& eff = store.effective();
  const double gap = store.weight_max() / 7.0;
  for (std::size_t i = 0; i < init.numel(); ++i) {
    // Effective = sign · (nearest of 8 magnitude levels) · w_max.
    EXPECT_NEAR(std::fabs(eff[i]),
                std::round(std::fabs(init[i]) / gap) * gap, 1e-5);
    if (eff[i] != 0.0f) {
      EXPECT_EQ(eff[i] > 0.0f, init[i] > 0.0f) << "sign preserved";
    }
  }
}

TEST(CrossbarStore, ApplyDeltaSkipsZeros) {
  const Tensor init = ramp(4, 4);
  CrossbarWeightStore store(clean_config(), init, Rng(3));
  const std::uint64_t w0 = store.write_count();
  Tensor delta({4, 4});
  delta.at(1, 1) = 0.01f;
  delta.at(2, 3) = -0.02f;
  store.apply_delta(delta);
  EXPECT_EQ(store.write_count(), w0 + 2);
  EXPECT_NEAR(store.target().at(1, 1), init.at(1, 1) + 0.01f, 1e-6);
}

TEST(CrossbarStore, TargetClipsAtWeightMax) {
  const Tensor init = ramp(4, 4);
  CrossbarWeightStore store(clean_config(), init, Rng(4));
  Tensor delta({4, 4});
  delta.at(0, 0) = 1e6f;
  store.apply_delta(delta);
  EXPECT_FLOAT_EQ(store.target().at(0, 0),
                  static_cast<float>(store.weight_max()));
}

TEST(CrossbarStore, Sa0ForcesZeroWeight) {
  const Tensor init = ramp(4, 4, 0.05f);
  CrossbarWeightStore store(clean_config(), init, Rng(5));
  store.tile(0, 0).force_fault(1, 1, FaultKind::kStuckAt0);
  store.invalidate();
  EXPECT_FLOAT_EQ(store.effective().at(1, 1), 0.0f);
}

TEST(CrossbarStore, Sa1ForcesMaxMagnitudeWithSign) {
  Tensor init = ramp(4, 4, 0.05f);
  init.at(2, 2) = -0.01f;
  CrossbarWeightStore store(clean_config(), init, Rng(6));
  store.tile(0, 0).force_fault(2, 2, FaultKind::kStuckAt1);
  store.invalidate();
  EXPECT_FLOAT_EQ(store.effective().at(2, 2),
                  -static_cast<float>(store.weight_max()));
}

TEST(CrossbarStore, TilingCoversMatrixExactly) {
  const Tensor init = ramp(40, 25);
  CrossbarWeightStore store(clean_config(), init, Rng(7));
  EXPECT_EQ(store.tile_grid_rows(), 3u);  // 16+16+8
  EXPECT_EQ(store.tile_grid_cols(), 2u);  // 16+9
  EXPECT_EQ(store.tile(2, 1).rows(), 8u);
  EXPECT_EQ(store.tile(2, 1).cols(), 9u);
  std::size_t cells = 0;
  for (std::size_t ti = 0; ti < 3; ++ti)
    for (std::size_t tj = 0; tj < 2; ++tj)
      cells += store.tile(ti, tj).rows() * store.tile(ti, tj).cols();
  EXPECT_EQ(cells, 40u * 25u);
}

TEST(CrossbarStore, FabricationFaultsRoughlyMatchFraction) {
  RcsConfig cfg = clean_config();
  cfg.inject_fabrication = true;
  cfg.fabrication.fraction = 0.10;
  CrossbarWeightStore store(cfg, ramp(64, 64), Rng(8));
  EXPECT_NEAR(store.fault_fraction(), 0.10, 0.02);
}

TEST(CrossbarStore, PermutationRelocatesCells) {
  const Tensor init = ramp(6, 6, 0.05f);
  CrossbarWeightStore store(clean_config(256), init, Rng(9));
  // Make physical column 0 entirely SA0.
  for (std::size_t r = 0; r < 6; ++r)
    store.tile(0, 0).force_fault(r, 0, FaultKind::kStuckAt0);
  store.invalidate();
  // Initially logical column 0 reads zero.
  EXPECT_FLOAT_EQ(store.effective().at(2, 0), 0.0f);
  // Move logical column 0 to physical column 5 and vice versa.
  std::vector<std::size_t> rp(6), cp(6);
  std::iota(rp.begin(), rp.end(), 0);
  std::iota(cp.begin(), cp.end(), 0);
  std::swap(cp[0], cp[5]);
  store.set_permutations(rp, cp);
  // Logical column 0 now lives on healthy cells…
  EXPECT_NEAR(store.effective().at(2, 0), init.at(2, 0),
              store.weight_max() / 100.0);
  // …and logical column 5 absorbed the SA0 column.
  EXPECT_FLOAT_EQ(store.effective().at(2, 5), 0.0f);
}

TEST(CrossbarStore, PermutationValidation) {
  CrossbarWeightStore store(clean_config(), ramp(4, 4), Rng(10));
  std::vector<std::size_t> rp{0, 1, 2, 3};
  EXPECT_THROW(store.set_permutations(rp, {0, 0, 1, 2}), CheckError);
  EXPECT_THROW(store.set_permutations({0, 1, 2}, rp), CheckError);
}

TEST(CrossbarStore, IdentityPermutationCostsNoWrites) {
  CrossbarWeightStore store(clean_config(), ramp(4, 4), Rng(11));
  const std::uint64_t w0 = store.write_count();
  std::vector<std::size_t> id{0, 1, 2, 3};
  store.set_permutations(id, id);
  EXPECT_EQ(store.write_count(), w0);
}

TEST(CrossbarStore, PermutationRewritesMovedCellsOnly) {
  CrossbarWeightStore store(clean_config(), ramp(4, 4), Rng(12));
  const std::uint64_t w0 = store.write_count();
  std::vector<std::size_t> rp{0, 1, 2, 3}, cp{1, 0, 2, 3};
  store.set_permutations(rp, cp);
  EXPECT_EQ(store.write_count(), w0 + 8);  // two moved columns × 4 rows
}

TEST(CrossbarStore, ExpectedGFollowsPermutation) {
  Tensor init({2, 2}, std::vector<float>{0.1f, 0.0f, 0.0f, 0.0f});
  CrossbarWeightStore store(clean_config(256), init, Rng(13));
  EXPECT_GT(store.expected_g(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(store.expected_g(0, 1), 0.0);
  store.set_permutations({0, 1}, {1, 0});
  // Logical (0,0) now lives at physical (0,1).
  EXPECT_GT(store.expected_g(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(store.expected_g(0, 0), 0.0);
}

TEST(CrossbarStore, CellWriteCountTracksLogicalCell) {
  CrossbarWeightStore store(clean_config(), ramp(4, 4), Rng(14));
  Tensor delta({4, 4});
  delta.at(0, 0) = 0.01f;
  store.apply_delta(delta);
  store.apply_delta(delta);
  EXPECT_EQ(store.cell_write_count(0, 0), 3u);  // init + 2 updates
  EXPECT_EQ(store.cell_write_count(1, 1), 1u);  // init only
}

TEST(CrossbarStore, TrueFaultMatrixMatchesTiles) {
  RcsConfig cfg = clean_config();
  cfg.inject_fabrication = true;
  cfg.fabrication.fraction = 0.2;
  CrossbarWeightStore store(cfg, ramp(20, 20), Rng(15));
  const FaultMatrix fm = store.true_fault_matrix();
  EXPECT_EQ(fm.count_faulty(), store.fault_count());
  for (std::size_t r = 0; r < 20; ++r)
    for (std::size_t c = 0; c < 20; ++c)
      EXPECT_EQ(fm.at(r, c), store.true_fault(r, c));
}

TEST(RcsSystem, FactoryRegistersStores) {
  RcsSystem sys(clean_config(), Rng(16));
  auto factory = sys.factory();
  auto s1 = factory("layer1", ramp(8, 8));
  auto s2 = factory("layer2", ramp(4, 4));
  EXPECT_EQ(sys.stores().size(), 2u);
  EXPECT_EQ(sys.cell_count(), 64u + 16u);
  EXPECT_GT(sys.total_device_writes(), 0u);
  EXPECT_DOUBLE_EQ(sys.fault_fraction(), 0.0);
}

TEST(RcsSystem, AggregateWriteStats) {
  RcsSystem sys(clean_config(), Rng(17));
  auto factory = sys.factory();
  auto s = factory("l", ramp(4, 4));
  const double before = sys.mean_writes_per_cell();
  Tensor delta({4, 4}, 0.01f);
  s->apply_delta(delta);
  EXPECT_GT(sys.mean_writes_per_cell(), before);
}

// ---- Fused faulty forward -------------------------------------------------

struct ReductionModeGuard {
  ReductionMode prev = reduction_mode();
  ~ReductionModeGuard() { set_reduction_mode(prev); }
};

struct PoolGuard {
  ~PoolGuard() { ThreadPool::set_global_threads(1); }
};

bool same_bits(const Tensor& x, const Tensor& y) {
  return x.shape() == y.shape() &&
         std::memcmp(x.data(), y.data(), x.numel() * sizeof(float)) == 0;
}

TEST(CrossbarStore, FusedForwardBitExactUnderInjectedFaults) {
  ReductionModeGuard mode_guard;
  PoolGuard pool_guard;
  set_reduction_mode(ReductionMode::kDeterministic);
  // 40×24 on 16×16 tiles: a 3×2 grid with shrunken edge tiles, so the
  // packed scatter crosses tile boundaries in both dimensions.
  const Tensor init = ramp(40, 24, 0.03f);
  CrossbarWeightStore store(clean_config(), init, Rng(21));
  store.tile(0, 0).force_fault(1, 2, FaultKind::kStuckAt0);
  store.tile(0, 1).force_fault(3, 3, FaultKind::kStuckAt1);
  store.tile(1, 0).force_fault(0, 0, FaultKind::kStuckAt1);
  store.tile(2, 1).force_fault(5, 7, FaultKind::kStuckAt0);
  store.invalidate();

  Rng rng(22);
  const Tensor x = Tensor::randn({5, 40}, rng);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool::set_global_threads(threads);
    const Tensor fused = store.forward_matmul(x);
    const Tensor ref = matmul(x, store.effective());
    EXPECT_TRUE(same_bits(fused, ref)) << "threads=" << threads;
  }
}

TEST(CrossbarStore, FusedForwardTracksWritesAndPermutations) {
  ReductionModeGuard mode_guard;
  PoolGuard pool_guard;
  set_reduction_mode(ReductionMode::kDeterministic);
  const Tensor init = ramp(32, 32, 0.02f);
  CrossbarWeightStore store(clean_config(), init, Rng(23));
  Rng rng(24);
  const Tensor x = Tensor::randn({3, 32}, rng);

  // Clean state first (primes the packed cache), then dirty one tile via a
  // delta — the incremental repack must track it.
  EXPECT_TRUE(same_bits(store.forward_matmul(x), matmul(x, store.effective())));
  Tensor delta({32, 32});
  delta.at(2, 3) = 0.05f;
  delta.at(20, 20) = -0.04f;
  store.apply_delta(delta);
  EXPECT_TRUE(same_bits(store.forward_matmul(x), matmul(x, store.effective())));

  // Non-identity permutations: the packed scatter must follow the logical
  // mapping exactly as the materialized rebuild does.
  std::vector<std::size_t> rp(32), cp(32);
  std::iota(rp.begin(), rp.end(), 0);
  std::iota(cp.begin(), cp.end(), 0);
  std::reverse(rp.begin(), rp.end());
  std::swap(cp[0], cp[31]);
  std::swap(cp[5], cp[17]);
  store.set_permutations(rp, cp);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool::set_global_threads(threads);
    EXPECT_TRUE(same_bits(store.forward_matmul(x),
                          matmul(x, store.effective())))
        << "threads=" << threads;
  }
}

TEST(CrossbarStore, FusedForwardSurvivesCheckpointRestore) {
  ReductionModeGuard mode_guard;
  set_reduction_mode(ReductionMode::kDeterministic);
  const Tensor init = ramp(20, 20, 0.02f);
  CrossbarWeightStore store(clean_config(), init, Rng(25));
  store.tile(0, 0).force_fault(2, 2, FaultKind::kStuckAt1);
  store.invalidate();
  Rng rng(26);
  const Tensor x = Tensor::randn({2, 20}, rng);
  (void)store.forward_matmul(x);  // warm the packed cache

  std::stringstream ss;
  store.save(ss);
  CrossbarWeightStore restored(clean_config(), init, Rng(27));
  restored.restore(ss);
  EXPECT_TRUE(same_bits(restored.forward_matmul(x),
                        matmul(x, restored.effective())));
  EXPECT_TRUE(same_bits(restored.forward_matmul(x), store.forward_matmul(x)));
}

}  // namespace
}  // namespace refit
