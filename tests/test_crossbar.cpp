// Unit tests for the RRAM crossbar device model (src/rram/crossbar.hpp).
#include "rram/crossbar.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace refit {
namespace {

CrossbarConfig noiseless(std::size_t rows = 8, std::size_t cols = 8,
                         std::size_t levels = 8) {
  CrossbarConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.levels = levels;
  cfg.write_noise_sigma = 0.0;
  return cfg;
}

TEST(Crossbar, StartsAtZeroConductance) {
  Crossbar xb(noiseless(), EnduranceModel::unlimited(), Rng(1));
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_DOUBLE_EQ(xb.conductance(r, c), 0.0);
}

TEST(Crossbar, WriteSnapsToLevels) {
  Crossbar xb(noiseless(), EnduranceModel::unlimited(), Rng(2));
  xb.write(0, 0, 0.4);  // nearest of 8 levels: 3/7 ≈ 0.4286
  EXPECT_NEAR(xb.conductance(0, 0), 3.0 / 7.0, 1e-12);
  EXPECT_EQ(xb.read_level(0, 0), 3);
}

TEST(Crossbar, WriteClampsRange) {
  Crossbar xb(noiseless(), EnduranceModel::unlimited(), Rng(3));
  xb.write(0, 0, 1.7);
  EXPECT_DOUBLE_EQ(xb.conductance(0, 0), 1.0);
  xb.write(0, 0, -0.3);
  EXPECT_DOUBLE_EQ(xb.conductance(0, 0), 0.0);
}

TEST(Crossbar, WriteNoiseIsBounded) {
  CrossbarConfig cfg = noiseless();
  cfg.write_noise_sigma = 0.01;
  Crossbar xb(cfg, EnduranceModel::unlimited(), Rng(4));
  for (int i = 0; i < 100; ++i) {
    xb.write(0, 0, 0.5);
    // 4/7 ≈ 0.571 with σ=0.01 noise stays well inside one level gap.
    EXPECT_NEAR(xb.conductance(0, 0), 4.0 / 7.0, 0.06);
  }
}

TEST(Crossbar, WriteCountsAccumulate) {
  Crossbar xb(noiseless(), EnduranceModel::unlimited(), Rng(5));
  xb.write(1, 2, 0.5);
  xb.write(1, 2, 0.6);
  xb.write(0, 0, 0.1);
  EXPECT_EQ(xb.write_count(1, 2), 2u);
  EXPECT_EQ(xb.write_count(0, 0), 1u);
  EXPECT_EQ(xb.total_writes(), 3u);
}

TEST(Crossbar, StuckCellIgnoresWrites) {
  Crossbar xb(noiseless(), EnduranceModel::unlimited(), Rng(6));
  xb.force_fault(2, 3, FaultKind::kStuckAt1);
  EXPECT_DOUBLE_EQ(xb.conductance(2, 3), 1.0);
  xb.write(2, 3, 0.0);
  EXPECT_DOUBLE_EQ(xb.conductance(2, 3), 1.0);
  EXPECT_EQ(xb.write_count(2, 3), 0u);
  EXPECT_EQ(xb.suppressed_writes(), 1u);
}

TEST(Crossbar, ForceFaultPinsConductance) {
  Crossbar xb(noiseless(), EnduranceModel::unlimited(), Rng(7));
  xb.write(0, 0, 0.5);
  xb.force_fault(0, 0, FaultKind::kStuckAt0);
  EXPECT_DOUBLE_EQ(xb.conductance(0, 0), 0.0);
  EXPECT_EQ(xb.fault(0, 0), FaultKind::kStuckAt0);
  EXPECT_TRUE(xb.is_stuck(0, 0));
  EXPECT_EQ(xb.fault_count(), 1u);
  EXPECT_NEAR(xb.fault_fraction(), 1.0 / 64.0, 1e-12);
}

TEST(Crossbar, EnduranceWearsCellsOut) {
  // Every cell has endurance exactly ~10 (tiny variance): the 11th write
  // must break it.
  Crossbar xb(noiseless(2, 2), EnduranceModel::gaussian(10.0, 1e-9), Rng(8));
  for (int i = 0; i < 10; ++i) xb.write(0, 0, 0.5);
  EXPECT_FALSE(xb.is_stuck(0, 0));
  xb.write(0, 0, 0.5);
  EXPECT_TRUE(xb.is_stuck(0, 0));
  EXPECT_EQ(xb.wearout_fault_count(), 1u);
  const double g = xb.conductance(0, 0);
  EXPECT_TRUE(g == 0.0 || g == 1.0);  // SA0 or SA1
}

TEST(Crossbar, EnduranceDistributionIsPerCell) {
  // With a wide endurance spread, cells must die at different times.
  Crossbar xb(noiseless(16, 16), EnduranceModel::gaussian(50.0, 15.0),
              Rng(9));
  int died_at_60 = 0;
  for (int w = 0; w < 60; ++w)
    for (std::size_t r = 0; r < 16; ++r)
      for (std::size_t c = 0; c < 16; ++c) xb.write(r, c, 0.5);
  died_at_60 = static_cast<int>(xb.fault_count());
  EXPECT_GT(died_at_60, 100);  // most cells broke (mean 50 < 60)
  EXPECT_LT(died_at_60, 256);  // but the high-endurance tail survived
}

TEST(Crossbar, SumConductanceRows) {
  Crossbar xb(noiseless(4, 4), EnduranceModel::unlimited(), Rng(10));
  xb.write(0, 2, 1.0);
  xb.write(1, 2, 1.0);
  xb.write(3, 2, 1.0);
  EXPECT_NEAR(xb.sum_conductance_rows({0, 1}, 2), 2.0, 1e-12);
  EXPECT_NEAR(xb.sum_conductance_rows({0, 1, 2, 3}, 2), 3.0, 1e-12);
}

TEST(Crossbar, SumConductanceCols) {
  Crossbar xb(noiseless(4, 4), EnduranceModel::unlimited(), Rng(11));
  xb.write(1, 0, 1.0);
  xb.write(1, 3, 1.0);
  EXPECT_NEAR(xb.sum_conductance_cols({0, 3}, 1), 2.0, 1e-12);
  EXPECT_NEAR(xb.sum_conductance_cols({1, 2}, 1), 0.0, 1e-12);
}

TEST(Crossbar, LevelGap) {
  EXPECT_NEAR(noiseless(4, 4, 8).level_gap(), 1.0 / 7.0, 1e-12);
  EXPECT_NEAR(noiseless(4, 4, 2).level_gap(), 1.0, 1e-12);
}

TEST(Crossbar, RejectsBadConfig) {
  CrossbarConfig cfg = noiseless();
  cfg.levels = 1;
  EXPECT_THROW(Crossbar(cfg, EnduranceModel::unlimited(), Rng(12)),
               CheckError);
}

TEST(Crossbar, UnlimitedEnduranceNeverBreaks) {
  Crossbar xb(noiseless(2, 2), EnduranceModel::unlimited(), Rng(13));
  for (int i = 0; i < 10000; ++i) xb.write(0, 0, 0.5);
  EXPECT_FALSE(xb.is_stuck(0, 0));
}

}  // namespace
}  // namespace refit
