// Tests for the device layer (src/device): the CellEncoding seam, the
// DeviceNoiseModel time-dependent effects, their serialization through the
// store checkpoint, and the detector's hard-vs-soft classification pass —
// the latter at 1 and 4 threads, since the device trajectory must be
// deterministic at any thread count.
#include "device/cell_encoding.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/thread_pool.hpp"
#include "detect/quiescent_detector.hpp"
#include "device/noise_model.hpp"
#include "rcs/crossbar_store.hpp"
#include "rram/faults.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace refit {
namespace {

/// Restores the default global pool when a test is done overriding it.
struct PoolGuard {
  ~PoolGuard() { ThreadPool::set_global_threads(1); }
};

RcsConfig clean_config(std::size_t levels = 256) {
  RcsConfig cfg;
  cfg.tile_rows = 16;
  cfg.tile_cols = 16;
  cfg.levels = levels;
  cfg.write_noise_sigma = 0.0;
  cfg.inject_fabrication = false;
  return cfg;
}

Tensor ramp(std::size_t r, std::size_t c, float scale = 0.01f) {
  Tensor t({r, c});
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = scale * (static_cast<float>(i % 17) - 8.0f);
  return t;
}

Crossbar small_xbar(std::uint64_t seed = 1) {
  CrossbarConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.levels = 8;
  cfg.write_noise_sigma = 0.0;
  return Crossbar(cfg, EnduranceModel::unlimited(), Rng(seed));
}

// ---------------------------------------------------------------------------
// DeviceEncoding — the weight↔conductance mapping contract
// ---------------------------------------------------------------------------

TEST(DeviceEncoding, SingletonsReportTheirKindAndLegs) {
  const CellEncoding& single = CellEncoding::of(EncodingKind::kSingleCell);
  EXPECT_EQ(single.kind(), EncodingKind::kSingleCell);
  EXPECT_EQ(single.legs(), 1u);
  const CellEncoding& diff =
      CellEncoding::of(EncodingKind::kDifferentialPair);
  EXPECT_EQ(diff.kind(), EncodingKind::kDifferentialPair);
  EXPECT_EQ(diff.legs(), 2u);
  EXPECT_LE(single.legs(), kMaxEncodingLegs);
  EXPECT_LE(diff.legs(), kMaxEncodingLegs);
  // of() returns shared singletons, not fresh objects.
  EXPECT_EQ(&single, &CellEncoding::of(EncodingKind::kSingleCell));
}

TEST(DeviceEncoding, RoundTripRecoversTheWeight) {
  const double weight_max = 0.25;
  for (const EncodingKind kind :
       {EncodingKind::kSingleCell, EncodingKind::kDifferentialPair}) {
    SCOPED_TRACE(static_cast<int>(kind));
    const CellEncoding& enc = CellEncoding::of(kind);
    for (int i = -20; i <= 20; ++i) {
      const float w = static_cast<float>(i) * 0.0125f;  // spans ±weight_max
      double g[kMaxEncodingLegs] = {0.0, 0.0};
      enc.encode(w, weight_max, g);
      for (std::size_t l = 0; l < enc.legs(); ++l) {
        EXPECT_GE(g[l], 0.0);
        EXPECT_LE(g[l], 1.0);
      }
      EXPECT_NEAR(enc.decode(g, w, weight_max), w, 1e-6f);
    }
  }
}

TEST(DeviceEncoding, SingleCellKeepsTheSignOffChip) {
  const CellEncoding& enc = CellEncoding::of(EncodingKind::kSingleCell);
  double g[kMaxEncodingLegs];
  enc.encode(-0.125f, 0.25, g);
  EXPECT_DOUBLE_EQ(g[0], 0.5);  // |w| / weight_max, sign not in the cell
  // The sign register (the target's sign) flips the decoded weight.
  EXPECT_FLOAT_EQ(enc.decode(g, -0.125f, 0.25), -0.125f);
  EXPECT_FLOAT_EQ(enc.decode(g, 0.125f, 0.25), 0.125f);
}

TEST(DeviceEncoding, DifferentialPairUsesOneLegPerSign) {
  const CellEncoding& enc = CellEncoding::of(EncodingKind::kDifferentialPair);
  double g[kMaxEncodingLegs];
  enc.encode(0.125f, 0.25, g);
  EXPECT_DOUBLE_EQ(g[0], 0.5);  // G_p carries positive weights
  EXPECT_DOUBLE_EQ(g[1], 0.0);
  enc.encode(-0.125f, 0.25, g);
  EXPECT_DOUBLE_EQ(g[0], 0.0);  // G_n carries negative weights
  EXPECT_DOUBLE_EQ(g[1], 0.5);
  // Decode ignores the off-chip target: it is pure (g_p − g_n)·w_max.
  EXPECT_FLOAT_EQ(enc.decode(g, 0.7f, 0.25), -0.125f);
}

TEST(DeviceEncoding, StoreRoundTripsBothEncodingsOnOddShapes) {
  // 10×7 weights on 16×16 tiles → one ragged tile; both encodings must
  // reproduce the target up to level quantization.
  const Tensor init = ramp(10, 7);
  for (const EncodingKind kind :
       {EncodingKind::kSingleCell, EncodingKind::kDifferentialPair}) {
    SCOPED_TRACE(static_cast<int>(kind));
    RcsConfig cfg = clean_config(256);
    cfg.encoding = kind;
    CrossbarWeightStore store(cfg, init, Rng(7));
    EXPECT_EQ(store.legs(), CellEncoding::of(kind).legs());
    EXPECT_EQ(store.physical_cell_count(), store.cell_count() * store.legs());
    const Tensor& eff = store.effective();
    const double tol = store.weight_max() / 255.0 + 1e-6;
    for (std::size_t i = 0; i < init.numel(); ++i)
      EXPECT_NEAR(eff[i], init[i], tol) << "cell " << i;
  }
}

TEST(DeviceEncoding, DifferentialStuckFaultPinsOneLegOnly) {
  const Tensor init = ramp(8, 8, 0.05f);
  RcsConfig cfg = clean_config();
  cfg.encoding = EncodingKind::kDifferentialPair;
  CrossbarWeightStore store(cfg, init, Rng(8));
  ASSERT_GT(init.at(1, 1), 0.0f);  // lives on the G_p leg
  // SA0 on the occupied (G_p) leg zeroes the weight...
  store.tile(0, 0).force_fault(1, 1, FaultKind::kStuckAt0);
  // ...and SA1 on the empty (G_n) leg drives another weight negative.
  ASSERT_GT(init.at(1, 2), 0.0f);
  store.tile_n(0, 0).force_fault(1, 2, FaultKind::kStuckAt1);
  store.invalidate();
  EXPECT_FLOAT_EQ(store.effective().at(1, 1), 0.0f);
  EXPECT_LT(store.effective().at(1, 2), 0.0f);
  EXPECT_EQ(store.true_fault(1, 1), FaultKind::kStuckAt0);
  EXPECT_EQ(store.true_fault(1, 2), FaultKind::kStuckAt1);
}

TEST(DeviceEncoding, ExpectedGMatchesTheEncoderPerLeg) {
  const Tensor init = ramp(6, 6, 0.03f);
  RcsConfig cfg = clean_config();
  cfg.encoding = EncodingKind::kDifferentialPair;
  CrossbarWeightStore store(cfg, init, Rng(9));
  double g[kMaxEncodingLegs];
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      store.encoding().encode(init.at(r, c), store.weight_max(), g);
      EXPECT_DOUBLE_EQ(store.expected_g(r, c, 0), g[0]);
      EXPECT_DOUBLE_EQ(store.expected_g(r, c, 1), g[1]);
    }
  }
}

TEST(DeviceEncoding, FusedForwardBitExactOnDifferentialPairs) {
  struct ReductionModeGuard {
    ReductionMode prev = reduction_mode();
    ~ReductionModeGuard() { set_reduction_mode(prev); }
  } mode_guard;
  PoolGuard pool_guard;
  set_reduction_mode(ReductionMode::kDeterministic);
  // 40×24 on 16×16 tiles (ragged edges) with faults on both legs: the
  // fused kernel's per-tile re-pack must decode exactly like effective().
  const Tensor init = ramp(40, 24, 0.03f);
  RcsConfig cfg = clean_config();
  cfg.encoding = EncodingKind::kDifferentialPair;
  CrossbarWeightStore store(cfg, init, Rng(21));
  store.tile(0, 0).force_fault(1, 2, FaultKind::kStuckAt0);
  store.tile_n(0, 1).force_fault(3, 3, FaultKind::kStuckAt1);
  store.tile(1, 0).force_fault(0, 0, FaultKind::kStuckAt1);
  store.tile_n(2, 1).force_fault(5, 7, FaultKind::kStuckAt0);
  store.invalidate();

  Rng rng(22);
  const Tensor x = Tensor::randn({5, 40}, rng);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool::set_global_threads(threads);
    const Tensor fused = store.forward_matmul(x);
    const Tensor ref = matmul(x, store.effective());
    ASSERT_EQ(fused.shape(), ref.shape());
    EXPECT_EQ(std::memcmp(fused.data(), ref.data(),
                          fused.numel() * sizeof(float)),
              0)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// DeviceNoise — transient faults, decay, drift
// ---------------------------------------------------------------------------

TEST(DeviceNoise, SoftFaultPinsAndRecoversAfterTtl) {
  Crossbar xb = small_xbar();
  xb.write(2, 3, 0.75);
  const double before = xb.conductance(2, 3);
  xb.force_soft_fault(2, 3, FaultKind::kSoftStuck1, 2);
  EXPECT_EQ(xb.fault(2, 3), FaultKind::kSoftStuck1);
  EXPECT_EQ(xb.soft_fault_count(), 1u);
  EXPECT_DOUBLE_EQ(xb.conductance(2, 3), 1.0);
  xb.decay_soft_faults();  // ttl 2 → 1, still pinned
  EXPECT_EQ(xb.fault(2, 3), FaultKind::kSoftStuck1);
  xb.decay_soft_faults();  // expires → recovers the pre-fault conductance
  EXPECT_EQ(xb.fault(2, 3), FaultKind::kNone);
  EXPECT_EQ(xb.soft_fault_count(), 0u);
  EXPECT_DOUBLE_EQ(xb.conductance(2, 3), before);
}

TEST(DeviceNoise, FirstFaultWinsAndHardFaultsDoNotDecay) {
  Crossbar xb = small_xbar();
  xb.force_fault(0, 0, FaultKind::kStuckAt1);
  xb.force_soft_fault(0, 0, FaultKind::kSoftStuck0, 3);  // ignored
  EXPECT_EQ(xb.fault(0, 0), FaultKind::kStuckAt1);
  xb.decay_soft_faults();
  EXPECT_EQ(xb.fault(0, 0), FaultKind::kStuckAt1);
}

TEST(DeviceNoise, DriftMovesHealthyCellsOnly) {
  Crossbar xb = small_xbar();
  xb.write(1, 1, 1.0);
  xb.force_fault(4, 4, FaultKind::kStuckAt1);
  xb.drift_toward(0.0, 0.25);
  EXPECT_DOUBLE_EQ(xb.conductance(1, 1), 0.75);  // g += rate·(target − g)
  EXPECT_DOUBLE_EQ(xb.conductance(4, 4), 1.0);   // stuck cell unmoved
  xb.drift_toward(0.0, 0.25);
  EXPECT_DOUBLE_EQ(xb.conductance(1, 1), 0.5625);
}

TEST(DeviceNoise, StrongWriteScrubsSoftButNotHardFaults) {
  Crossbar xb = small_xbar();
  xb.force_soft_fault(3, 3, FaultKind::kSoftStuck0, 5);
  xb.strong_write(3, 3, 1.0);
  EXPECT_EQ(xb.fault(3, 3), FaultKind::kNone);
  EXPECT_DOUBLE_EQ(xb.conductance(3, 3), 1.0);
  xb.force_fault(5, 5, FaultKind::kStuckAt0);
  xb.strong_write(5, 5, 1.0);
  EXPECT_EQ(xb.fault(5, 5), FaultKind::kStuckAt0);
  EXPECT_DOUBLE_EQ(xb.conductance(5, 5), 0.0);
}

TEST(DeviceNoise, TickTileIsDeterministicInTheRngStream) {
  DeviceNoiseConfig cfg;
  cfg.drift_rate = 0.05;
  cfg.soft_fault_rate = 0.05;
  cfg.soft_fault_ttl = 2;
  const DeviceNoiseModel model(cfg);
  Crossbar a = small_xbar(11);
  Crossbar b = small_xbar(11);
  for (std::uint64_t t = 0; t < 4; ++t) {
    Rng ra = Rng(99).split(t);
    Rng rb = Rng(99).split(t);
    model.tick_tile(a, ra);
    model.tick_tile(b, rb);
  }
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a.fault(r, c), b.fault(r, c));
      EXPECT_DOUBLE_EQ(a.conductance(r, c), b.conductance(r, c));
    }
  }
  EXPECT_GT(a.soft_fault_count() + a.fault_count(), 0u)
      << "a 5% rate over 4 ticks of 64 cells should strike at least once";
}

TEST(DeviceNoise, InjectSoftFaultsSeedsTransientPins) {
  Crossbar xb = small_xbar();
  Rng rng(5);
  inject_soft_faults(xb, 0.25, 3, 0.5, rng);
  EXPECT_GT(xb.soft_fault_count(), 0u);
  for (std::size_t i = 0; i < 3; ++i) xb.decay_soft_faults();
  EXPECT_EQ(xb.soft_fault_count(), 0u) << "all pins expire after ttl ticks";
}

TEST(DeviceNoise, StoreTickIsANoOpWhenInactive) {
  const Tensor init = ramp(8, 8);
  CrossbarWeightStore store(clean_config(), init, Rng(3));
  ASSERT_FALSE(store.config().noise.active());
  std::ostringstream before;
  store.save(before);
  store.tick_noise();
  EXPECT_EQ(store.noise_ticks(), 0u);
  std::ostringstream after;
  store.save(after);
  EXPECT_EQ(before.str(), after.str());
}

TEST(DeviceNoise, StoreTickTrajectoryIsThreadCountInvariant) {
  PoolGuard guard;
  const Tensor init = ramp(40, 40);
  RcsConfig cfg = clean_config();
  cfg.encoding = EncodingKind::kDifferentialPair;
  cfg.noise.drift_rate = 0.01;
  cfg.noise.soft_fault_rate = 0.001;
  auto run = [&](std::size_t threads) {
    ThreadPool::set_global_threads(threads);
    CrossbarWeightStore store(cfg, init, Rng(21));
    for (int t = 0; t < 5; ++t) store.tick_noise();
    std::ostringstream os;
    store.save(os);
    return os.str();
  };
  EXPECT_EQ(run(1), run(4));
}

// ---------------------------------------------------------------------------
// DeviceCheckpoint — noise/drift state rides the store checkpoint
// ---------------------------------------------------------------------------

TEST(DeviceCheckpoint, NoiseStateRoundTripsBitExactly) {
  const Tensor init = ramp(20, 12);
  RcsConfig cfg = clean_config();
  cfg.encoding = EncodingKind::kDifferentialPair;
  cfg.noise.program_sigma = 0.02;
  cfg.noise.drift_rate = 0.01;
  cfg.noise.soft_fault_rate = 0.002;
  cfg.noise.soft_fault_ttl = 3;
  CrossbarWeightStore store(cfg, init, Rng(31));
  for (int t = 0; t < 3; ++t) store.tick_noise();

  std::stringstream snap;
  store.save(snap);
  auto loaded = CrossbarWeightStore::load(snap);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->noise_ticks(), store.noise_ticks());
  EXPECT_EQ(loaded->legs(), 2u);

  // The restored store must continue the exact same trajectory: tick both
  // and compare the full serialized device state.
  store.tick_noise();
  loaded->tick_noise();
  std::ostringstream a;
  std::ostringstream b;
  store.save(a);
  loaded->save(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(DeviceCheckpoint, EncodingKindIsRestored) {
  const Tensor init = ramp(8, 8);
  RcsConfig cfg = clean_config();
  cfg.encoding = EncodingKind::kDifferentialPair;
  CrossbarWeightStore store(cfg, init, Rng(13));
  std::stringstream snap;
  store.save(snap);
  auto loaded = CrossbarWeightStore::load(snap);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->config().encoding, EncodingKind::kDifferentialPair);
  EXPECT_EQ(loaded->legs(), 2u);
  const Tensor& eff = loaded->effective();
  for (std::size_t i = 0; i < init.numel(); ++i)
    EXPECT_FLOAT_EQ(eff[i], store.effective()[i]);
}

// ---------------------------------------------------------------------------
// DeviceDetector — hard-vs-soft classification
// ---------------------------------------------------------------------------

DetectorConfig classify_config() {
  DetectorConfig cfg;
  cfg.test_rows_per_cycle = 8;
  cfg.classify_soft = true;
  return cfg;
}

TEST(DeviceDetector, RetestScrubsTransientPinsAndKeepsHardFaults) {
  Crossbar xb = small_xbar(17);
  Rng content(3);
  randomize_crossbar_content(xb, 0.2, 0.2, content);
  xb.force_fault(1, 2, FaultKind::kStuckAt0);
  xb.force_fault(5, 6, FaultKind::kStuckAt1);
  xb.force_soft_fault(2, 2, FaultKind::kSoftStuck0, 100);
  xb.force_soft_fault(6, 1, FaultKind::kSoftStuck1, 100);

  const QuiescentVoltageDetector det(classify_config());
  const DetectionOutcome out = det.detect(xb);
  EXPECT_GT(out.cells_retested, 0u);
  EXPECT_EQ(out.truth_before.at(2, 2), FaultKind::kSoftStuck0);

  const ClassifiedConfusion cc = evaluate_classified(out);
  EXPECT_EQ(cc.hard.recall(), 1.0);
  EXPECT_EQ(cc.soft.recall(), 1.0);
  // Hard predictions stay hard: neither permanent fault is downgraded.
  EXPECT_FALSE(out.classified_soft.faulty(1, 2));
  EXPECT_FALSE(out.classified_soft.faulty(5, 6));
  // The transient pins were scrubbed in place by the strong re-test pulse.
  EXPECT_EQ(xb.soft_fault_count(), 0u);
  EXPECT_EQ(xb.fault(1, 2), FaultKind::kStuckAt0);
}

TEST(DeviceDetector, StoreClassificationIsThreadCountInvariant) {
  PoolGuard guard;
  const Tensor init = ramp(40, 40, 0.02f);
  RcsConfig cfg = clean_config(8);
  cfg.encoding = EncodingKind::kDifferentialPair;
  cfg.inject_fabrication = true;
  cfg.fabrication.fraction = 0.05;

  const QuiescentVoltageDetector det(classify_config());
  auto run = [&](std::size_t threads) {
    ThreadPool::set_global_threads(threads);
    CrossbarWeightStore store(cfg, init, Rng(23));
    Rng soft_rng(7);
    for (std::size_t ti = 0; ti < store.tile_grid_rows(); ++ti) {
      for (std::size_t tj = 0; tj < store.tile_grid_cols(); ++tj) {
        inject_soft_faults(store.tile(ti, tj), 0.02, 100, 0.5, soft_rng);
        inject_soft_faults(store.tile_n(ti, tj), 0.02, 100, 0.5, soft_rng);
      }
    }
    store.invalidate();
    return det.detect_store(store);
  };

  const DetectionOutcome serial = run(1);
  const DetectionOutcome pooled = run(4);
  ASSERT_EQ(serial.predicted.cells(), pooled.predicted.cells());
  ASSERT_EQ(serial.classified_soft.cells(), pooled.classified_soft.cells());
  ASSERT_EQ(serial.truth_before.cells(), pooled.truth_before.cells());
  EXPECT_EQ(serial.cells_retested, pooled.cells_retested);

  // Classification quality on the pre-detection truth: every still-pinned
  // transient fault sits at a rail, so the selected-cell passes see them;
  // hard faults must not leak into the soft class wholesale.
  const ClassifiedConfusion cc = evaluate_classified(serial);
  EXPECT_GT(serial.truth_before.count_faulty(), 0u);
  EXPECT_GE(cc.hard.recall(), 0.8);
  EXPECT_GE(cc.soft.recall(), 0.8);
  EXPECT_GE(cc.hard.precision(), 0.8);
}

}  // namespace
}  // namespace refit
