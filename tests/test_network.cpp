// Network container + end-to-end software training tests: the MLP and the
// VGG-mini CNN must actually learn a separable task.
#include "nn/network.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/models.hpp"
#include "nn/optimizer.hpp"

namespace refit {
namespace {

/// Tiny 2-class task: class = sign of the first input coordinate.
void make_toy(Rng& rng, std::size_t n, Tensor& x,
              std::vector<std::uint8_t>& y) {
  x = Tensor::randn({n, 4}, rng);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = x.at(i, 0) > 0.0f ? 1 : 0;
}

TEST(Network, ForwardOnEmptyThrows) {
  Network net;
  Tensor x({1, 2});
  EXPECT_THROW(net.forward(x), CheckError);
}

TEST(Network, ParamsCollectsAllLayers) {
  Rng rng(1);
  Network net = make_mlp({4, 8, 2}, software_store_factory(), rng);
  const auto params = net.params();
  EXPECT_EQ(params.size(), 4u);  // 2 dense layers × (W, b)
  EXPECT_EQ(net.matrix_layers().size(), 2u);
}

TEST(Network, WeightCount) {
  Rng rng(2);
  Network net = make_mlp({10, 5, 3}, software_store_factory(), rng);
  EXPECT_EQ(net.weight_count(), 10u * 5 + 5 * 3);
}

TEST(Network, MlpLearnsToyTask) {
  Rng rng(3);
  Network net = make_mlp({4, 16, 2}, software_store_factory(), rng);
  Tensor x;
  std::vector<std::uint8_t> y;
  make_toy(rng, 256, x, y);

  const Sgd sgd(LrSchedule{0.1, 1.0, 0, 1e-4});
  for (int iter = 0; iter < 300; ++iter) {
    Tensor logits = net.forward(x, true);
    const LossResult loss = softmax_cross_entropy(logits, y);
    net.backward(loss.grad_logits);
    auto params = net.params();
    sgd.step(params, static_cast<std::size_t>(iter));
    net.zero_grad();
  }
  EXPECT_GT(net.evaluate(x, y), 0.95);
}

TEST(Network, SgdReducesLoss) {
  Rng rng(4);
  Network net = make_mlp({4, 8, 2}, software_store_factory(), rng);
  Tensor x;
  std::vector<std::uint8_t> y;
  make_toy(rng, 64, x, y);
  const Sgd sgd(LrSchedule{0.05, 1.0, 0, 1e-4});
  const double loss0 =
      softmax_cross_entropy(net.forward(x, false), y).loss;
  for (int iter = 0; iter < 100; ++iter) {
    Tensor logits = net.forward(x, true);
    const LossResult loss = softmax_cross_entropy(logits, y);
    net.backward(loss.grad_logits);
    auto params = net.params();
    sgd.step(params, 0);
    net.zero_grad();
  }
  const double loss1 =
      softmax_cross_entropy(net.forward(x, false), y).loss;
  EXPECT_LT(loss1, loss0 * 0.5);
}

TEST(LrSchedule, StepDecay) {
  const LrSchedule s{0.1, 0.5, 100, 1e-4};
  EXPECT_DOUBLE_EQ(s.at(0), 0.1);
  EXPECT_DOUBLE_EQ(s.at(99), 0.1);
  EXPECT_DOUBLE_EQ(s.at(100), 0.05);
  EXPECT_DOUBLE_EQ(s.at(250), 0.025);
}

TEST(LrSchedule, Floor) {
  const LrSchedule s{0.1, 0.1, 1, 1e-3};
  EXPECT_DOUBLE_EQ(s.at(10), 1e-3);
}

TEST(LrSchedule, ConstantWhenDisabled) {
  const LrSchedule s{0.2, 0.5, 0, 1e-4};
  EXPECT_DOUBLE_EQ(s.at(1000000), 0.2);
}

TEST(Models, VggMiniShapes) {
  Rng rng(5);
  VggMiniConfig cfg;
  cfg.in_hw = 16;
  Network net = make_vgg_mini(cfg, software_store_factory(),
                              software_store_factory(), rng);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  Tensor logits = net.forward(x, false);
  EXPECT_EQ(logits.shape(), (Shape{2, 10}));
  // 4 conv + 3 fc matrix layers by default.
  EXPECT_EQ(net.matrix_layers().size(), 7u);
}

TEST(Models, VggMiniBackwardRuns) {
  Rng rng(6);
  VggMiniConfig cfg;
  cfg.in_hw = 8;
  cfg.conv_channels = {8, 8};
  cfg.pool_after = {0, 1};
  cfg.fc_hidden = {16};
  Network net = make_vgg_mini(cfg, software_store_factory(),
                              software_store_factory(), rng);
  Tensor x = Tensor::randn({4, 3, 8, 8}, rng);
  Tensor logits = net.forward(x, true);
  const LossResult loss = softmax_cross_entropy(logits, {0, 1, 2, 3});
  Tensor gx = net.backward(loss.grad_logits);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Models, MlpRequiresTwoDims) {
  Rng rng(7);
  EXPECT_THROW(make_mlp({5}, software_store_factory(), rng), CheckError);
}

TEST(SliceBatch, Extracts) {
  Tensor d({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor s = slice_batch(d, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(s.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), 6.0f);
}

TEST(Evaluate, MatchesAccuracy) {
  Rng rng(8);
  Network net = make_mlp({4, 2}, software_store_factory(), rng);
  Tensor x;
  std::vector<std::uint8_t> y;
  make_toy(rng, 50, x, y);
  const double e = net.evaluate(x, y, 16);
  const double a = accuracy(net.forward(x, false), y);
  EXPECT_NEAR(e, a, 1e-12);
}

}  // namespace
}  // namespace refit
