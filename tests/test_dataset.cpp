// Tests for the dataset container, batcher, and synthetic generators.
#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "data/synthetic.hpp"

namespace refit {
namespace {

Dataset tiny_dataset() {
  Dataset d;
  d.num_classes = 2;
  d.train_images = Tensor({10, 3});
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      d.train_images.at(i, j) = static_cast<float>(i);
  d.train_labels.assign(10, 0);
  d.test_images = Tensor({4, 3});
  d.test_labels.assign(4, 1);
  return d;
}

TEST(Batcher, BatchShape) {
  Rng rng(1);
  const Dataset d = tiny_dataset();
  Batcher b(d, 4, rng);
  const Batch batch = b.next();
  EXPECT_EQ(batch.images.shape(), (Shape{4, 3}));
  EXPECT_EQ(batch.labels.size(), 4u);
}

TEST(Batcher, RowsStayAligned) {
  // Every row's content encodes its original index; labels must match.
  Rng rng(2);
  Dataset d = tiny_dataset();
  for (std::size_t i = 0; i < 10; ++i)
    d.train_labels[i] = static_cast<std::uint8_t>(i % 2);
  Batcher b(d, 5, rng);
  for (int k = 0; k < 8; ++k) {
    const Batch batch = b.next();
    for (std::size_t i = 0; i < 5; ++i) {
      const auto orig = static_cast<std::size_t>(batch.images.at(i, 0));
      EXPECT_EQ(batch.labels[i], orig % 2);
    }
  }
}

TEST(Batcher, EpochCoversAllSamples) {
  Rng rng(3);
  const Dataset d = tiny_dataset();
  Batcher b(d, 5, rng);
  std::set<int> seen;
  for (int k = 0; k < 2; ++k) {
    const Batch batch = b.next();
    for (std::size_t i = 0; i < 5; ++i)
      seen.insert(static_cast<int>(batch.images.at(i, 0)));
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(b.epochs_completed(), 0u);
  b.next();
  EXPECT_EQ(b.epochs_completed(), 1u);
}

TEST(Batcher, TooLargeBatchThrows) {
  Rng rng(4);
  const Dataset d = tiny_dataset();
  EXPECT_THROW(Batcher(d, 11, rng), CheckError);
}

TEST(GatherRows, PicksRows) {
  Tensor d({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor g = gather_rows(d, {2, 0});
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
}

TEST(SyntheticMnist, ShapesAndLabels) {
  Rng rng(5);
  SyntheticConfig cfg;
  cfg.train_size = 200;
  cfg.test_size = 50;
  const Dataset d = make_synthetic_mnist(cfg, rng);
  EXPECT_EQ(d.train_images.shape(), (Shape{200, 784}));
  EXPECT_EQ(d.test_images.shape(), (Shape{50, 784}));
  EXPECT_EQ(d.num_classes, 10u);
  for (auto l : d.train_labels) EXPECT_LT(l, 10);
}

TEST(SyntheticMnist, AllClassesPresent) {
  Rng rng(6);
  SyntheticConfig cfg;
  cfg.train_size = 500;
  cfg.test_size = 10;
  const Dataset d = make_synthetic_mnist(cfg, rng);
  std::set<int> classes(d.train_labels.begin(), d.train_labels.end());
  EXPECT_EQ(classes.size(), 10u);
}

TEST(SyntheticMnist, DeterministicForSeed) {
  SyntheticConfig cfg;
  cfg.train_size = 20;
  cfg.test_size = 5;
  Rng r1(7), r2(7);
  const Dataset a = make_synthetic_mnist(cfg, r1);
  const Dataset b = make_synthetic_mnist(cfg, r2);
  for (std::size_t i = 0; i < a.train_images.numel(); ++i)
    ASSERT_EQ(a.train_images[i], b.train_images[i]);
  EXPECT_EQ(a.train_labels, b.train_labels);
}

TEST(SyntheticCifar, ShapesAndRange) {
  Rng rng(8);
  SyntheticConfig cfg;
  cfg.train_size = 100;
  cfg.test_size = 20;
  const Dataset d = make_synthetic_cifar(cfg, rng, 16);
  EXPECT_EQ(d.train_images.shape(), (Shape{100, 3, 16, 16}));
  // Values are prototype([-1,1]) × amplitude + noise — loosely bounded.
  for (std::size_t i = 0; i < d.train_images.numel(); ++i)
    EXPECT_LT(std::abs(d.train_images[i]), 4.0f);
}

TEST(SyntheticCifar, ClassesAreSeparable) {
  // Same-class samples must be closer to their prototype than to other
  // prototypes on average; verify via nearest-class-mean classification
  // beating chance comfortably.
  Rng rng(9);
  SyntheticConfig cfg;
  cfg.train_size = 600;
  cfg.test_size = 200;
  const Dataset d = make_synthetic_cifar(cfg, rng, 12);
  const std::size_t dim = 3 * 12 * 12;
  std::vector<std::vector<double>> means(10, std::vector<double>(dim, 0.0));
  std::vector<int> counts(10, 0);
  for (std::size_t i = 0; i < 600; ++i) {
    const int c = d.train_labels[i];
    ++counts[c];
    for (std::size_t j = 0; j < dim; ++j)
      means[c][j] += d.train_images[i * dim + j];
  }
  for (int c = 0; c < 10; ++c)
    for (auto& v : means[c]) v /= std::max(1, counts[c]);
  int correct = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    double best = 1e30;
    int arg = -1;
    for (int c = 0; c < 10; ++c) {
      double dist = 0.0;
      for (std::size_t j = 0; j < dim; ++j) {
        const double diff = d.test_images[i * dim + j] - means[c][j];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        arg = c;
      }
    }
    correct += arg == d.test_labels[i];
  }
  EXPECT_GT(correct, 100);  // ≥50 % vs 10 % chance
}

}  // namespace
}  // namespace refit
