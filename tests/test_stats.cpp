// Unit tests for statistics helpers (src/common/stats.hpp).
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace refit {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, StddevIsSqrtVariance) {
  RunningStat s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(s.variance()));
}

TEST(ConfusionCounts, AddRouting) {
  ConfusionCounts c;
  c.add(true, true);    // TP
  c.add(true, false);   // FN
  c.add(false, true);   // FP
  c.add(false, false);  // TN
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(ConfusionCounts, PrecisionRecall) {
  ConfusionCounts c;
  c.tp = 70;
  c.fp = 30;
  c.fn = 10;
  EXPECT_DOUBLE_EQ(c.precision(), 0.7);
  EXPECT_DOUBLE_EQ(c.recall(), 0.875);
}

TEST(ConfusionCounts, DegenerateCases) {
  ConfusionCounts c;
  // No predictions, no faults: both metrics defined as 1.
  EXPECT_DOUBLE_EQ(c.precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.recall(), 1.0);
}

TEST(ConfusionCounts, F1Harmonic) {
  ConfusionCounts c;
  c.tp = 50;
  c.fp = 50;
  c.fn = 0;
  // precision 0.5, recall 1.0 → F1 = 2/3
  EXPECT_NEAR(c.f1(), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionCounts, Accumulate) {
  ConfusionCounts a, b;
  a.tp = 1;
  a.fp = 2;
  b.tp = 3;
  b.fn = 4;
  a += b;
  EXPECT_EQ(a.tp, 4u);
  EXPECT_EQ(a.fp, 2u);
  EXPECT_EQ(a.fn, 4u);
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, Interpolates) {
  // Sorted {10, 20}: p75 → 17.5.
  EXPECT_DOUBLE_EQ(percentile({20.0, 10.0}, 75.0), 17.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99.0), 42.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 50.0), CheckError);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

}  // namespace
}  // namespace refit
