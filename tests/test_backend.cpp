// Tests for the parallel compute backend (common/thread_pool.hpp) and its
// consumers: pooled tensor kernels must be bit-identical to the serial
// path at any thread count, the crossbar store's incremental rebuild must
// only re-read dirty tiles, and the store's running write/fault counters
// must always match a fresh tile scan.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "detect/quiescent_detector.hpp"
#include "rcs/crossbar_store.hpp"
#include "tensor/ops.hpp"

namespace refit {
namespace {

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

/// Restores the default global pool when a test is done overriding it.
struct PoolGuard {
  ~PoolGuard() { ThreadPool::set_global_threads(1); }
};

TEST(Backend, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Backend, ParallelForHandlesSmallAndEmptyRanges) {
  ThreadPool pool(8);
  int calls = 0;
  // n == 0: the body never runs, so the shared increment is unreachable.
  // refit-audit: allow(pool-capture) refit-flow: allow(parallel-shared-write)
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<std::atomic<int>> hits(3);  // fewer items than lanes
  pool.parallel_for(3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Backend, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t b, std::size_t) {
                                   if (b > 0) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool survives a throwing job.
  std::atomic<int> n{0};
  pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
    n += static_cast<int>(e - b);  // refit-audit: allow(pool-capture) — atomic
  });
  EXPECT_EQ(n.load(), 10);
}

TEST(Backend, GemmVariantsBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  Rng rng(42);
  // Odd sizes so chunk boundaries don't align with anything.
  const Tensor a = Tensor::randn({67, 45}, rng);
  const Tensor b = Tensor::randn({45, 53}, rng);
  const Tensor at = Tensor::randn({45, 67}, rng);
  const Tensor bt = Tensor::randn({53, 45}, rng);

  ThreadPool::set_global_threads(1);
  const Tensor mm = matmul(a, b);
  const Tensor tn = matmul_tn(at, b);
  const Tensor nt = matmul_nt(a, bt);
  for (const std::size_t threads : {2UL, 5UL}) {
    ThreadPool::set_global_threads(threads);
    EXPECT_TRUE(same_bits(mm, matmul(a, b))) << threads << " threads";
    EXPECT_TRUE(same_bits(tn, matmul_tn(at, b))) << threads << " threads";
    EXPECT_TRUE(same_bits(nt, matmul_nt(a, bt))) << threads << " threads";
  }
}

TEST(Backend, ConvKernelsBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  Rng rng(43);
  const Tensor img = Tensor::randn({5, 3, 9, 9}, rng);
  ConvGeometry g;
  g.in_channels = 3;
  g.in_h = g.in_w = 9;
  g.kernel = 3;
  g.pad = 1;

  ThreadPool::set_global_threads(1);
  const Tensor cols = im2col(img, g);
  const Tensor folded = col2im(cols, 5, g);
  std::vector<std::size_t> argmax1;
  const Tensor pooled = maxpool2d(img, 2, 2, argmax1);
  for (const std::size_t threads : {2UL, 5UL}) {
    ThreadPool::set_global_threads(threads);
    EXPECT_TRUE(same_bits(cols, im2col(img, g)));
    EXPECT_TRUE(same_bits(folded, col2im(cols, 5, g)));
    std::vector<std::size_t> argmax;
    EXPECT_TRUE(same_bits(pooled, maxpool2d(img, 2, 2, argmax)));
    EXPECT_EQ(argmax, argmax1);
  }
}

RcsConfig noisy_config() {
  RcsConfig cfg;
  cfg.tile_rows = 16;
  cfg.tile_cols = 16;
  cfg.write_noise_sigma = 0.02;
  cfg.inject_fabrication = true;
  cfg.fabrication.fraction = 0.1;
  cfg.endurance = EnduranceModel::gaussian(4.0, 2.0);
  return cfg;
}

Tensor random_weights(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn({r, c}, rng, 0.1f);
}

TEST(Backend, StoreRebuildBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  // Construction, delta application, and rebuild all draw per-tile RNG, so
  // the whole store lifecycle must be invariant to the pool size.
  auto run = [&](std::size_t threads) {
    ThreadPool::set_global_threads(threads);
    CrossbarWeightStore store(noisy_config(), random_weights(50, 60, 7),
                              Rng(9));
    Tensor first = store.effective();
    Tensor delta({50, 60});
    Rng drng(11);
    for (std::size_t i = 0; i < delta.numel(); ++i) {
      if (drng.bernoulli(0.05)) {
        delta[i] = static_cast<float>(drng.normal(0.0, 0.01));
      }
    }
    store.apply_delta(delta);
    Tensor second = store.effective();
    return std::make_tuple(std::move(first), std::move(second),
                           store.write_count(), store.fault_count());
  };
  const auto [eff1a, eff1b, w1, f1] = run(1);
  for (const std::size_t threads : {2UL, 5UL}) {
    const auto [effa, effb, w, f] = run(threads);
    EXPECT_TRUE(same_bits(eff1a, effa)) << threads << " threads";
    EXPECT_TRUE(same_bits(eff1b, effb)) << threads << " threads";
    EXPECT_EQ(w1, w) << threads << " threads";
    EXPECT_EQ(f1, f) << threads << " threads";
  }
}

TEST(Backend, IncrementalRebuildSkipsCleanTiles) {
  PoolGuard guard;
  ThreadPool::set_global_threads(1);
  RcsConfig cfg;
  cfg.tile_rows = 16;
  cfg.tile_cols = 16;
  cfg.write_noise_sigma = 0.0;
  cfg.inject_fabrication = false;
  CrossbarWeightStore store(cfg, random_weights(32, 32, 3), Rng(4));
  (void)store.effective();  // all four tiles rebuilt once

  // Read-counter probe: snapshot each tile's analog read count, dirty only
  // tile (0, 0) through a delta, and assert the other tiles are not
  // re-read by the next rebuild.
  std::uint64_t before[2][2];
  for (std::size_t ti = 0; ti < 2; ++ti)
    for (std::size_t tj = 0; tj < 2; ++tj)
      before[ti][tj] = store.tile(ti, tj).read_count();

  Tensor delta({32, 32});
  delta.at(2, 3) = 0.05f;  // logical (2,3) lives on tile (0,0): identity perm
  store.apply_delta(delta);
  (void)store.effective();

  EXPECT_GT(store.tile(0, 0).read_count(), before[0][0]);
  EXPECT_EQ(store.tile(0, 1).read_count(), before[0][1]);
  EXPECT_EQ(store.tile(1, 0).read_count(), before[1][0]);
  EXPECT_EQ(store.tile(1, 1).read_count(), before[1][1]);

  // The skipped tiles' cached entries must still be served correctly.
  const Tensor& eff = store.effective();
  EXPECT_EQ(eff.shape(), delta.shape());
}

TEST(Backend, RunningCountersMatchFreshTileScan) {
  PoolGuard guard;
  ThreadPool::set_global_threads(3);
  CrossbarWeightStore store(noisy_config(), random_weights(48, 48, 5),
                            Rng(6));
  Rng drng(13);
  for (int round = 0; round < 5; ++round) {
    Tensor delta({48, 48});
    for (std::size_t i = 0; i < delta.numel(); ++i) {
      if (drng.bernoulli(0.3)) {
        delta[i] = static_cast<float>(drng.normal(0.0, 0.02));
      }
    }
    store.apply_delta(delta);  // endurance is tight: wear-out faults accrue
  }

  std::uint64_t writes = 0;
  std::size_t faults = 0, wearout = 0;
  for (std::size_t ti = 0; ti < store.tile_grid_rows(); ++ti) {
    for (std::size_t tj = 0; tj < store.tile_grid_cols(); ++tj) {
      writes += store.tile(ti, tj).total_writes();
      faults += store.tile(ti, tj).fault_count();
      wearout += store.tile(ti, tj).wearout_fault_count();
    }
  }
  EXPECT_GT(wearout, 0u) << "test should exercise wear-out accounting";
  EXPECT_EQ(store.write_count(), writes);
  EXPECT_EQ(store.fault_count(), faults);
  EXPECT_EQ(store.wearout_fault_count(), wearout);
}

TEST(Backend, DetectStoreBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  DetectorConfig dcfg;
  dcfg.selected_cells_only = true;
  auto run = [&](std::size_t threads) {
    ThreadPool::set_global_threads(threads);
    RcsConfig cfg;
    cfg.tile_rows = 16;
    cfg.tile_cols = 16;
    cfg.inject_fabrication = true;
    cfg.fabrication.fraction = 0.1;
    CrossbarWeightStore store(cfg, random_weights(48, 32, 21), Rng(17));
    const QuiescentVoltageDetector det(dcfg);
    return det.detect_store(store);
  };
  const DetectionOutcome ref = run(1);
  for (const std::size_t threads : {2UL, 5UL}) {
    const DetectionOutcome out = run(threads);
    EXPECT_EQ(out.cycles, ref.cycles);
    EXPECT_EQ(out.cells_tested, ref.cells_tested);
    EXPECT_EQ(out.device_writes, ref.device_writes);
    ASSERT_EQ(out.predicted.rows(), ref.predicted.rows());
    for (std::size_t r = 0; r < ref.predicted.rows(); ++r) {
      for (std::size_t c = 0; c < ref.predicted.cols(); ++c) {
        EXPECT_EQ(out.predicted.at(r, c), ref.predicted.at(r, c));
      }
    }
  }
}

}  // namespace
}  // namespace refit
