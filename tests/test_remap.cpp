// Tests for the neuron re-ordering re-mapper (src/core/remap.hpp).
#include "core/remap.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "nn/dense.hpp"
#include "nn/models.hpp"
#include "rcs/rcs_system.hpp"

namespace refit {
namespace {

RcsConfig clean_rcs() {
  RcsConfig cfg;
  cfg.tile_rows = 32;
  cfg.tile_cols = 32;
  cfg.levels = 64;
  cfg.write_noise_sigma = 0.0;
  cfg.inject_fabrication = false;
  return cfg;
}

TEST(InterfaceCostClass, TotalSumsAssignedEntries) {
  InterfaceCost c(3);
  c.add(0, 1, 2.0);
  c.add(1, 0, 3.0);
  c.add(2, 2, 5.0);
  EXPECT_DOUBLE_EQ(c.total({1, 0, 2}), 10.0);
  EXPECT_DOUBLE_EQ(c.total({0, 1, 2}), 5.0);
}

TEST(Hungarian, SolvesKnown3x3) {
  InterfaceCost c(3);
  // cost matrix rows j, cols p:
  //   [1 2 3]
  //   [2 4 6]
  //   [3 6 9]
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t p = 0; p < 3; ++p)
      c.add(j, p, static_cast<double>((j + 1) * (p + 1)));
  const auto perm = hungarian_assignment(c);
  // Optimal: biggest j gets smallest p: {2,1,0} → 3+4+3 = 10.
  EXPECT_DOUBLE_EQ(c.total(perm), 10.0);
}

TEST(Hungarian, ZeroCostKeepsValidPermutation) {
  InterfaceCost c(5);
  const auto perm = hungarian_assignment(c);
  std::vector<bool> seen(5, false);
  for (auto p : perm) {
    ASSERT_LT(p, 5u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Optimizers, AllReachKnownOptimumOnSmallInstance) {
  Rng rng(1);
  InterfaceCost c(6);
  // Diagonal-heavy cost: identity is the worst assignment.
  for (std::size_t j = 0; j < 6; ++j)
    for (std::size_t p = 0; p < 6; ++p) c.add(j, p, j == p ? 10.0 : 1.0);
  const double optimum = 6.0;
  for (auto algo : {RemapAlgorithm::kGreedySwap, RemapAlgorithm::kGenetic,
                    RemapAlgorithm::kHungarian}) {
    RemapConfig cfg;
    cfg.algorithm = algo;
    const auto perm = optimize_assignment(c, cfg, rng);
    EXPECT_DOUBLE_EQ(c.total(perm), optimum)
        << "algorithm " << static_cast<int>(algo);
  }
}

TEST(Optimizers, NoneReturnsIdentity) {
  Rng rng(2);
  InterfaceCost c(4);
  RemapConfig cfg;
  cfg.algorithm = RemapAlgorithm::kNone;
  const auto perm = optimize_assignment(c, cfg, rng);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(perm[j], j);
}

TEST(FindInterfaces, MlpChain) {
  Rng rng(3);
  RcsSystem sys(clean_rcs(), Rng(4));
  Network net = make_mlp({16, 12, 10, 4}, sys.factory(), rng);
  const auto ifaces = find_remap_interfaces(net);
  ASSERT_EQ(ifaces.size(), 2u);
  EXPECT_EQ(ifaces[0].neurons, 12u);
  EXPECT_EQ(ifaces[1].neurons, 10u);
}

TEST(FindInterfaces, SoftwareOnlyNetworkHasNone) {
  Rng rng(5);
  Network net = make_mlp({16, 12, 4}, software_store_factory(), rng);
  EXPECT_TRUE(find_remap_interfaces(net).empty());
}

TEST(FindInterfaces, FlattenBoundaryRejected) {
  Rng rng(6);
  RcsSystem sys(clean_rcs(), Rng(7));
  VggMiniConfig cfg;
  cfg.in_hw = 8;
  cfg.conv_channels = {8, 8};
  cfg.pool_after = {0, 1};
  cfg.fc_hidden = {16, 8};
  Network net = make_vgg_mini(cfg, sys.factory(), sys.factory(), rng);
  const auto ifaces = find_remap_interfaces(net);
  // conv1→conv2 (channels match), fc1→fc2, fc2→fc3; conv2→fc1 is rejected
  // because flatten changes the neuron count.
  ASSERT_EQ(ifaces.size(), 3u);
  EXPECT_EQ(std::string(ifaces[0].producer->kind()), "conv");
  EXPECT_EQ(std::string(ifaces[1].producer->kind()), "dense");
}

TEST(Remap, MovesPrunedColumnsOntoSa0Columns) {
  // Producer 8×8 with physical column 0 fully SA0. Prune logical column 3
  // entirely. After remap, logical column 3 must sit on physical column 0.
  Rng rng(8);
  RcsSystem sys(clean_rcs(), Rng(9));
  Network net = make_mlp({8, 8, 4}, sys.factory(), rng);
  auto* store =
      dynamic_cast<CrossbarWeightStore*>(&net.matrix_layers()[0]->weights());
  ASSERT_NE(store, nullptr);
  for (std::size_t r = 0; r < 8; ++r)
    store->tile(0, 0).force_fault(r, 0, FaultKind::kStuckAt0);
  store->invalidate();

  DetectedFaults detected;
  detected.emplace(store, store->true_fault_matrix());

  // Hand-build a prune state via tiny weights in column 3.
  Tensor w = store->target();
  for (std::size_t r = 0; r < 8; ++r) w.at(r, 3) = 1e-6f * (r % 2);
  store->assign(w);
  PruneConfig pcfg;
  pcfg.fc_sparsity = 0.12;  // ≈ 8 of 64 weights → exactly column 3
  PruneState prune = PruneState::compute(net, pcfg);

  RemapConfig rcfg;
  rcfg.algorithm = RemapAlgorithm::kHungarian;
  const RemapReport report = remap_network(net, detected, prune, rcfg, rng);
  EXPECT_EQ(report.interfaces, 1u);
  EXPECT_LT(report.cost_after, report.cost_before);
  EXPECT_EQ(store->col_perm()[3], 0u);
}

TEST(Remap, ConsumerRowBlocksFollowPermutation) {
  Rng rng(10);
  RcsSystem sys(clean_rcs(), Rng(11));
  Network net = make_mlp({8, 6, 4}, sys.factory(), rng);
  auto* consumer =
      dynamic_cast<CrossbarWeightStore*>(&net.matrix_layers()[1]->weights());
  ASSERT_NE(consumer, nullptr);
  // Make consumer physical row 0 fully faulty so the optimizer wants the
  // most-pruned neuron there.
  for (std::size_t c = 0; c < 4; ++c)
    consumer->tile(0, 0).force_fault(0, c, FaultKind::kStuckAt0);
  consumer->invalidate();

  DetectedFaults detected;
  detected.emplace(consumer, consumer->true_fault_matrix());
  // Prune consumer row 2 (all 4 weights tiny).
  Tensor w = consumer->target();
  for (std::size_t c = 0; c < 4; ++c) w.at(2, c) = 0.0f;
  consumer->assign(w);
  PruneConfig pcfg;
  pcfg.fc_sparsity = 0.17;  // ≈ 4 of 24 → row 2
  PruneState prune = PruneState::compute(net, pcfg);

  RemapConfig rcfg;
  rcfg.algorithm = RemapAlgorithm::kHungarian;
  remap_network(net, detected, prune, rcfg, rng);
  // Neuron 2's row must now live at physical row 0.
  EXPECT_EQ(consumer->row_perm()[2], 0u);
}

TEST(Remap, NeverInstallsWorsePlacement) {
  Rng rng(12);
  RcsSystem sys(clean_rcs(), Rng(13));
  Network net = make_mlp({8, 8, 4}, sys.factory(), rng);
  // No faults detected → zero cost everywhere → permutations unchanged.
  DetectedFaults detected;
  PruneConfig pcfg;
  PruneState prune = PruneState::compute(net, pcfg);
  RemapConfig rcfg;
  rcfg.algorithm = RemapAlgorithm::kGreedySwap;
  const RemapReport report = remap_network(net, detected, prune, rcfg, rng);
  EXPECT_DOUBLE_EQ(report.cost_before, 0.0);
  EXPECT_DOUBLE_EQ(report.cost_after, 0.0);
  auto* store =
      dynamic_cast<CrossbarWeightStore*>(&net.matrix_layers()[0]->weights());
  for (std::size_t j = 0; j < 8; ++j) EXPECT_EQ(store->col_perm()[j], j);
}

TEST(Remap, PaperCostModelIgnoresSa1UnderPruned) {
  // The two cost models must diverge on an SA1 cell under a pruned weight.
  Rng rng(14);
  RcsSystem sys(clean_rcs(), Rng(15));
  Network net = make_mlp({2, 2, 2}, sys.factory(), rng);
  auto* store =
      dynamic_cast<CrossbarWeightStore*>(&net.matrix_layers()[0]->weights());
  store->tile(0, 0).force_fault(0, 0, FaultKind::kStuckAt1);
  store->invalidate();
  DetectedFaults detected;
  detected.emplace(store, store->true_fault_matrix());
  Tensor w = store->target();
  w.at(0, 0) = 0.0f;  // prune the colliding weight
  w.at(1, 0) = 1e-6f;
  store->assign(w);
  PruneConfig pcfg;
  pcfg.fc_sparsity = 0.5;
  PruneState prune = PruneState::compute(net, pcfg);
  const auto ifaces = find_remap_interfaces(net);
  ASSERT_EQ(ifaces.size(), 1u);
  const InterfaceCost paper = build_interface_cost(
      ifaces[0], detected, prune, RemapCostModel::kPaperExact);
  const InterfaceCost phys = build_interface_cost(
      ifaces[0], detected, prune, RemapCostModel::kPhysical);
  // Paper model: pruned-on-SA1 is free; physical model penalizes it.
  EXPECT_LT(paper.at(0, 0), phys.at(0, 0));
}

TEST(Remap, GeneticImprovesOverRandomOnStructuredCost) {
  Rng rng(16);
  InterfaceCost c(24);
  Rng crng(17);
  for (std::size_t j = 0; j < 24; ++j)
    for (std::size_t p = 0; p < 24; ++p)
      c.add(j, p, crng.uniform(0.0, 10.0));
  RemapConfig cfg;
  cfg.algorithm = RemapAlgorithm::kGenetic;
  const auto ga = optimize_assignment(c, cfg, rng);
  cfg.algorithm = RemapAlgorithm::kHungarian;
  const auto opt = optimize_assignment(c, cfg, rng);
  std::vector<std::size_t> ident(24);
  std::iota(ident.begin(), ident.end(), 0);
  EXPECT_LE(c.total(ga), c.total(ident));
  EXPECT_GE(c.total(ga), c.total(opt));  // Hungarian is the lower bound
  // GA should close most of the gap between identity and optimal.
  EXPECT_LT(c.total(ga) - c.total(opt),
            0.5 * (c.total(ident) - c.total(opt)));
}

}  // namespace
}  // namespace refit
