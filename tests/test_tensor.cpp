// Unit tests for the Tensor container (src/tensor/tensor.hpp).
#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace refit {
namespace {

TEST(Shape, Numel) {
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_numel({5}), 5u);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
}

TEST(Shape, ToString) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 4});
  EXPECT_EQ(t.numel(), 12u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({2, 2}, 1.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 1.5f);
}

TEST(Tensor, DataAdoption) {
  Tensor t({2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), CheckError);
}

TEST(Tensor, RowMajorLayout) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
}

TEST(Tensor, At4Layout) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, Reshape) {
  Tensor t({2, 6});
  t.at(1, 5) = 3.0f;
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_EQ(r[11], 3.0f);
  EXPECT_THROW(t.reshape({5, 5}), CheckError);
}

TEST(Tensor, ArithmeticInPlace) {
  Tensor a({2}, std::vector<float>{1, 2});
  Tensor b({2}, std::vector<float>{3, 5});
  a += b;
  EXPECT_EQ(a[0], 4.0f);
  EXPECT_EQ(a[1], 7.0f);
  a -= b;
  EXPECT_EQ(a[0], 1.0f);
  a *= 2.0f;
  EXPECT_EQ(a[1], 4.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2}), b({3});
  EXPECT_THROW(a += b, CheckError);
  EXPECT_THROW(a -= b, CheckError);
}

TEST(Tensor, SumAndMaxAbs) {
  Tensor t({3}, std::vector<float>{1.0f, -4.0f, 2.0f});
  EXPECT_FLOAT_EQ(t.sum(), -1.0f);
  EXPECT_FLOAT_EQ(t.max_abs(), 4.0f);
}

TEST(Tensor, FillAndZero) {
  Tensor t({4});
  t.fill(2.0f);
  EXPECT_FLOAT_EQ(t.sum(), 8.0f);
  t.zero();
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, RandnMoments) {
  Rng rng(1);
  Tensor t = Tensor::randn({100, 100}, rng, 2.0f);
  double s = 0.0, s2 = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    s += t[i];
    s2 += static_cast<double>(t[i]) * t[i];
  }
  const double n = static_cast<double>(t.numel());
  EXPECT_NEAR(s / n, 0.0, 0.05);
  EXPECT_NEAR(s2 / n, 4.0, 0.15);
}

TEST(Tensor, RandUniformRange) {
  Rng rng(2);
  Tensor t = Tensor::rand_uniform({1000}, rng, -1.0f, 1.0f);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -1.0f);
    EXPECT_LT(t[i], 1.0f);
  }
}

TEST(Tensor, DimOutOfRangeThrows) {
  Tensor t({2, 3});
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_THROW((void)t.dim(2), CheckError);
}

}  // namespace
}  // namespace refit
