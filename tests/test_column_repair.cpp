// Tests for the redundant-column repair baseline.
#include "rram/column_repair.hpp"

#include <gtest/gtest.h>

#include "rram/faults.hpp"

namespace refit {
namespace {

Crossbar make_xbar(std::size_t n, std::uint64_t seed) {
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.write_noise_sigma = 0.0;
  return Crossbar(cfg, EnduranceModel::unlimited(), Rng(seed));
}

TEST(ColumnRepair, CountsFaultyColumns) {
  Crossbar xb = make_xbar(8, 1);
  xb.force_fault(0, 2, FaultKind::kStuckAt0);
  xb.force_fault(5, 2, FaultKind::kStuckAt1);
  xb.force_fault(3, 6, FaultKind::kStuckAt0);
  const auto counts = column_fault_counts(xb);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[6], 1u);
  EXPECT_EQ(counts[0], 0u);
}

TEST(ColumnRepair, PerfectSparesRepairEverything) {
  Crossbar xb = make_xbar(8, 2);
  xb.force_fault(0, 1, FaultKind::kStuckAt0);
  xb.force_fault(0, 4, FaultKind::kStuckAt0);
  Rng rng(3);
  const RepairOutcome out =
      simulate_column_repair(xb, /*spares=*/4, /*p_fault=*/0.0, rng);
  EXPECT_EQ(out.faulty_columns, 2u);
  EXPECT_EQ(out.usable_spares, 4u);
  EXPECT_EQ(out.repaired_columns, 2u);
  EXPECT_EQ(out.residual_faulty_columns, 0u);
  EXPECT_DOUBLE_EQ(out.residual_column_fraction(), 0.0);
}

TEST(ColumnRepair, InsufficientSparesLeaveResidual) {
  Crossbar xb = make_xbar(8, 4);
  for (std::size_t c = 0; c < 5; ++c)
    xb.force_fault(c, c, FaultKind::kStuckAt0);
  Rng rng(5);
  const RepairOutcome out = simulate_column_repair(xb, 2, 0.0, rng);
  EXPECT_EQ(out.faulty_columns, 5u);
  EXPECT_EQ(out.repaired_columns, 2u);
  EXPECT_EQ(out.residual_faulty_columns, 3u);
}

TEST(ColumnRepair, WorstColumnsRepairedFirst) {
  Crossbar xb = make_xbar(8, 6);
  // Column 3 has three faults, column 5 has one.
  xb.force_fault(0, 3, FaultKind::kStuckAt0);
  xb.force_fault(1, 3, FaultKind::kStuckAt0);
  xb.force_fault(2, 3, FaultKind::kStuckAt0);
  xb.force_fault(0, 5, FaultKind::kStuckAt0);
  Rng rng(7);
  const RepairOutcome out = simulate_column_repair(xb, 1, 0.0, rng);
  EXPECT_EQ(out.repaired_columns, 1u);
  // The residual must be the lightly-faulty column.
  EXPECT_EQ(out.residual_faulty_cells, 1u);
}

TEST(ColumnRepair, FaultySparesAreUnusable) {
  Crossbar xb = make_xbar(64, 8);
  xb.force_fault(0, 0, FaultKind::kStuckAt0);
  Rng rng(9);
  // With a 10% per-cell fault rate, P(64-cell spare clean) ≈ 0.1%: spares
  // are essentially never usable — the paper's §1 argument.
  const RepairOutcome out = simulate_column_repair(xb, 16, 0.10, rng);
  EXPECT_LT(out.usable_spares, 3u);
}

TEST(ColumnRepair, HighFaultRateCondemnsClusteredRepair) {
  // At the paper's 10% cell fault rate on a 128-row array, virtually every
  // column contains a fault, so column repair cannot help regardless of
  // the spare budget.
  Crossbar xb = make_xbar(128, 10);
  FaultInjectionConfig fc;
  fc.fraction = 0.10;
  Rng rng(11);
  inject_fabrication_faults(xb, fc, rng);
  Rng rrng(12);
  const RepairOutcome out = simulate_column_repair(xb, 32, 0.10, rrng);
  EXPECT_GT(static_cast<double>(out.faulty_columns) /
                static_cast<double>(out.total_columns),
            0.99);
  EXPECT_GT(out.residual_column_fraction(), 0.9);
}

}  // namespace
}  // namespace refit
