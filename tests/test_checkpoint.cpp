// Tests for checkpointing: RNG state, crossbar device state, crossbar
// weight stores, and network weights.
#include <gtest/gtest.h>

#include <sstream>

#include "nn/models.hpp"
#include "nn/network_io.hpp"
#include "rcs/crossbar_store.hpp"
#include "rcs/rcs_system.hpp"
#include "rram/faults.hpp"

namespace refit {
namespace {

TEST(RngState, RoundtripResumesStream) {
  Rng a(42);
  a.normal();  // populate the Box–Muller cache
  const Rng::State st = a.state();
  Rng b(7);
  b.set_state(st);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
  }
}

TEST(CrossbarCheckpoint, RoundtripPreservesEverything) {
  CrossbarConfig cfg;
  cfg.rows = 12;
  cfg.cols = 9;
  cfg.write_noise_sigma = 0.01;
  Crossbar a(cfg, EnduranceModel::gaussian(100, 30), Rng(1));
  Rng rng(2);
  for (std::size_t r = 0; r < 12; ++r)
    for (std::size_t c = 0; c < 9; ++c) a.write(r, c, rng.uniform());
  a.force_fault(3, 4, FaultKind::kStuckAt1);

  std::stringstream ss;
  a.save(ss);
  Crossbar b = Crossbar::load(ss);
  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.cols(), a.cols());
  EXPECT_EQ(b.total_writes(), a.total_writes());
  EXPECT_EQ(b.fault_count(), a.fault_count());
  for (std::size_t r = 0; r < 12; ++r)
    for (std::size_t c = 0; c < 9; ++c) {
      EXPECT_DOUBLE_EQ(b.conductance(r, c), a.conductance(r, c));
      EXPECT_EQ(b.fault(r, c), a.fault(r, c));
      EXPECT_EQ(b.write_count(r, c), a.write_count(r, c));
    }
}

TEST(CrossbarCheckpoint, ResumedWritesMatchOriginal) {
  // The wear-out RNG stream must continue identically after a reload.
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 6;
  cfg.write_noise_sigma = 0.02;
  Crossbar a(cfg, EnduranceModel::gaussian(20, 6), Rng(3));
  for (int i = 0; i < 50; ++i) a.write(0, 0, 0.5);

  std::stringstream ss;
  a.save(ss);
  Crossbar b = Crossbar::load(ss);
  for (int i = 0; i < 50; ++i) {
    a.write(1, 1, 0.3);
    b.write(1, 1, 0.3);
    EXPECT_DOUBLE_EQ(a.conductance(1, 1), b.conductance(1, 1));
  }
  EXPECT_EQ(a.fault_count(), b.fault_count());
}

TEST(CrossbarCheckpoint, CorruptTagThrows) {
  std::stringstream ss;
  ss << "not a checkpoint at all";
  EXPECT_THROW(Crossbar::load(ss), CheckError);
}

TEST(StoreCheckpoint, RoundtripPreservesEffectiveWeights) {
  RcsConfig cfg;
  cfg.tile_rows = cfg.tile_cols = 16;
  cfg.inject_fabrication = true;
  cfg.fabrication.fraction = 0.15;
  Rng wrng(4);
  CrossbarWeightStore a(cfg, Tensor::randn({20, 12}, wrng, 0.05f), Rng(5));
  // Permute, update, and wear it a bit so non-trivial state exists.
  std::vector<std::size_t> rp(20), cp(12);
  for (std::size_t i = 0; i < 20; ++i) rp[i] = (i + 3) % 20;
  for (std::size_t j = 0; j < 12; ++j) cp[j] = (j + 5) % 12;
  a.set_permutations(rp, cp);
  Tensor delta({20, 12});
  delta.at(2, 2) = 0.01f;
  a.apply_delta(delta);

  std::stringstream ss;
  a.save(ss);
  const auto b = CrossbarWeightStore::load(ss);
  ASSERT_EQ(b->rows(), a.rows());
  ASSERT_EQ(b->cols(), a.cols());
  EXPECT_EQ(b->write_count(), a.write_count());
  EXPECT_EQ(b->fault_count(), a.fault_count());
  EXPECT_EQ(b->row_perm(), a.row_perm());
  const Tensor& ea = a.effective();
  const Tensor& eb = b->effective();
  for (std::size_t i = 0; i < ea.numel(); ++i) EXPECT_EQ(ea[i], eb[i]);
  // Targets too.
  for (std::size_t i = 0; i < ea.numel(); ++i)
    EXPECT_EQ(a.target()[i], b->target()[i]);
}

TEST(NetworkCheckpoint, RoundtripRestoresOutputs) {
  Rng rng(6);
  Network a = make_mlp({10, 8, 4}, software_store_factory(), rng);
  Rng rng2(7);
  Network b = make_mlp({10, 8, 4}, software_store_factory(), rng2);

  std::stringstream ss;
  save_network_weights(a, ss);
  load_network_weights(b, ss);

  Rng xr(8);
  const Tensor x = Tensor::randn({3, 10}, xr);
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(NetworkCheckpoint, ArchitectureMismatchThrows) {
  Rng rng(9);
  Network a = make_mlp({10, 8, 4}, software_store_factory(), rng);
  Network b = make_mlp({10, 6, 4}, software_store_factory(), rng);
  std::stringstream ss;
  save_network_weights(a, ss);
  EXPECT_THROW(load_network_weights(b, ss), CheckError);
}

TEST(NetworkCheckpoint, WorksAcrossBackends) {
  // Software-trained weights can be loaded onto a crossbar-backed network
  // (programming the chip), and the effective weights approximate them.
  Rng rng(10);
  Network sw = make_mlp({12, 6}, software_store_factory(), rng);
  RcsConfig cfg;
  cfg.tile_rows = cfg.tile_cols = 16;
  cfg.levels = 256;
  cfg.write_noise_sigma = 0.0;
  cfg.inject_fabrication = false;
  RcsSystem sys(cfg, Rng(11));
  Rng rng2(12);
  Network hw = make_mlp({12, 6}, sys.factory(), rng2);

  std::stringstream ss;
  save_network_weights(sw, ss);
  load_network_weights(hw, ss);
  const Tensor& target = sw.matrix_layers()[0]->weights().target();
  const Tensor& eff = hw.matrix_layers()[0]->weights().effective();
  auto* store =
      dynamic_cast<CrossbarWeightStore*>(&hw.matrix_layers()[0]->weights());
  ASSERT_NE(store, nullptr);
  for (std::size_t i = 0; i < target.numel(); ++i)
    EXPECT_NEAR(eff[i], target[i], store->weight_max() / 100.0);
}

}  // namespace
}  // namespace refit
