// Tests for the energy-estimation extension and the VGG-11 preset.
#include "core/energy.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/models.hpp"
#include "rram/faults.hpp"

namespace refit {
namespace {

TEST(Energy, DetectionComponents) {
  EnergyModel m;
  DetectionOutcome o;
  o.cycles = 10;
  o.device_writes = 100;
  const EnergyEstimate e = detection_energy(m, o, 64, 64);
  // 2 full-array reads: 2·4096·1 pJ = 8.192 nJ.
  EXPECT_NEAR(e.read_nj, 8.192, 1e-9);
  // 100 writes × 10 pJ = 1 nJ.
  EXPECT_NEAR(e.write_nj, 1.0, 1e-9);
  // 10 cycles × 64 ports × 2 pJ = 1.28 nJ.
  EXPECT_NEAR(e.adc_nj, 1.28, 1e-9);
  EXPECT_NEAR(e.total_nj(), 8.192 + 1.0 + 1.28, 1e-9);
}

TEST(Energy, MarchSplitsReadsAndWrites) {
  EnergyModel m;
  MarchOutcome o;
  o.cycles = 600;
  o.device_writes = 200;
  const EnergyEstimate e = march_energy(m, o);
  EXPECT_NEAR(e.write_nj, 2.0, 1e-9);
  EXPECT_NEAR(e.read_nj, 0.4, 1e-9);  // 400 reads × 1 pJ
}

TEST(Energy, TrainingWrites) {
  EnergyModel m;
  TrainingResult r;
  r.device_writes = 1000000;
  EXPECT_NEAR(training_write_energy(m, r).write_nj, 10000.0, 1e-6);
}

TEST(Energy, QuiescentCheaperThanMarchAtScale) {
  // The amortized column read-out is the quiescent method's energy win.
  EnergyModel m;
  DetectionOutcome qvc;
  qvc.cycles = 64;            // 256² crossbar, Tr = 8, both passes
  qvc.device_writes = 70000;  // ~half the cells pulsed twice
  MarchOutcome march;
  march.cycles = 320000;       // ~5 ops per cell
  march.device_writes = 160000;
  EXPECT_LT(detection_energy(m, qvc, 256, 256).total_nj(),
            march_energy(m, march).total_nj());
}

TEST(Vgg11Preset, TopologyMatchesPaper) {
  const VggMiniConfig cfg = vgg11_config();
  EXPECT_EQ(cfg.conv_channels.size(), 8u);  // 8 Conv layers
  EXPECT_EQ(cfg.fc_hidden.size(), 2u);      // +1 output = 3 FC layers
  EXPECT_EQ(cfg.in_hw, 32u);
  // Weight count ≈ the paper's 7.66M ("total weight amount is 7.66M").
  std::size_t weights = 0;
  std::size_t ch = cfg.in_channels;
  std::size_t hw = cfg.in_hw;
  for (std::size_t i = 0; i < cfg.conv_channels.size(); ++i) {
    weights += ch * 9 * cfg.conv_channels[i];
    ch = cfg.conv_channels[i];
    for (std::size_t p : cfg.pool_after)
      if (p == i) hw /= 2;
  }
  std::size_t features = ch * hw * hw;
  for (std::size_t h : cfg.fc_hidden) {
    weights += features * h;
    features = h;
  }
  weights += features * cfg.num_classes;
  EXPECT_GT(weights, 7'000'000u);
  EXPECT_LT(weights, 11'000'000u);
}

TEST(Vgg11Preset, BuildsAndRunsForward) {
  // Construction programs ~9M cells; run a single tiny forward to verify
  // shapes end to end (software backend — this is a smoke test).
  Rng rng(1);
  const VggMiniConfig cfg = vgg11_config();
  Network net = make_vgg_mini(cfg, software_store_factory(),
                              software_store_factory(), rng);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  const Tensor logits = net.forward(x, false);
  EXPECT_EQ(logits.shape(), (Shape{1, 10}));
  EXPECT_EQ(net.matrix_layers().size(), 11u);  // VGG-11
}

}  // namespace
}  // namespace refit
