// Tests for the segment-constraint decoder (src/detect/decoder.hpp).
#include "detect/decoder.hpp"

#include <gtest/gtest.h>

namespace refit {
namespace {

/// Build a DecodeInput for a small grid where every cell is a candidate and
/// segments follow a simple row-group / col-group layout.
DecodeInput grid_input(std::size_t rows, std::size_t cols,
                       std::size_t group_rows, std::size_t group_cols,
                       const std::vector<std::size_t>& faulty_cells,
                       std::size_t divisor = 16) {
  DecodeInput in;
  in.rows = rows;
  in.cols = cols;
  in.divisor = divisor;
  in.candidate.assign(rows * cols, true);
  std::vector<bool> faulty(rows * cols, false);
  for (auto f : faulty_cells) faulty[f] = true;
  for (std::size_t r0 = 0; r0 < rows; r0 += group_rows) {
    for (std::size_t c = 0; c < cols; ++c) {
      Segment s;
      for (std::size_t r = r0; r < std::min(rows, r0 + group_rows); ++r)
        s.cells.push_back(r * cols + c);
      std::size_t count = 0;
      for (auto cell : s.cells) count += faulty[cell];
      s.residue = count % divisor;
      in.row_segments.push_back(std::move(s));
    }
  }
  for (std::size_t c0 = 0; c0 < cols; c0 += group_cols) {
    for (std::size_t r = 0; r < rows; ++r) {
      Segment s;
      for (std::size_t c = c0; c < std::min(cols, c0 + group_cols); ++c)
        s.cells.push_back(r * cols + c);
      std::size_t count = 0;
      for (auto cell : s.cells) count += faulty[cell];
      s.residue = count % divisor;
      in.col_segments.push_back(std::move(s));
    }
  }
  return in;
}

TEST(Decoder, NoFaultsNoFlags) {
  const DecodeInput in = grid_input(4, 4, 2, 2, {});
  const auto pred = decode_segments(in);
  for (bool b : pred) EXPECT_FALSE(b);
}

TEST(Decoder, SingleFaultExactlyLocated) {
  // One fault: its row segment has residue 1 with the fault as one of the
  // unknowns; propagation plus intersection must pin it exactly.
  const DecodeInput in = grid_input(4, 4, 2, 2, {5});
  const auto pred = decode_segments(in);
  EXPECT_TRUE(pred[5]);
  int flags = 0;
  for (bool b : pred) flags += b;
  EXPECT_EQ(flags, 1);
}

TEST(Decoder, PropagationResolvesFullSegments) {
  // Both cells of a row segment faulty → residue == unresolved → all
  // faulty, exactly.
  const DecodeInput in = grid_input(4, 4, 2, 2, {0, 4});  // col 0, rows 0-1
  const auto pred = decode_segments(in);
  EXPECT_TRUE(pred[0]);
  EXPECT_TRUE(pred[4]);
  int flags = 0;
  for (bool b : pred) flags += b;
  EXPECT_EQ(flags, 2);
}

TEST(Decoder, ZeroResidueClearsCells) {
  // Fault pattern that keeps some segments at zero: those cells must never
  // be flagged even if the crossing segment has residue.
  const DecodeInput in = grid_input(4, 4, 4, 4, {0});
  const auto pred = decode_segments(in);
  EXPECT_TRUE(pred[0]);
  // Cells in columns 1..3 share the row segment? No: with group 4 each
  // row segment is a whole column. Columns 1-3 have residue 0.
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 1; c < 4; ++c) EXPECT_FALSE(pred[r * 4 + c]);
}

TEST(Decoder, NonCandidatesNeverFlagged) {
  DecodeInput in = grid_input(2, 2, 2, 2, {0, 1, 2, 3});
  in.candidate[3] = false;
  // Recompute residues pretending cell 3 is healthy (it cannot be tested).
  for (auto& s : in.row_segments) {
    std::size_t count = 0;
    std::vector<std::size_t> kept;
    for (auto cell : s.cells)
      if (in.candidate[cell]) {
        kept.push_back(cell);
        count += 1;  // cells 0..2 faulty
      }
    s.cells = kept;
    s.residue = count % in.divisor;
  }
  for (auto& s : in.col_segments) {
    std::size_t count = 0;
    std::vector<std::size_t> kept;
    for (auto cell : s.cells)
      if (in.candidate[cell]) {
        kept.push_back(cell);
        count += 1;
      }
    s.cells = kept;
    s.residue = count % in.divisor;
  }
  const auto pred = decode_segments(in);
  EXPECT_FALSE(pred[3]);
  EXPECT_TRUE(pred[0]);
}

TEST(Decoder, AmbiguousFallbackUsesIntersection) {
  // Without propagation, a diagonal pair in one 2×2 block is ambiguous:
  // the fallback flags the whole block (row and column evidence crosses).
  DecodeInput in = grid_input(2, 2, 2, 2, {0, 3});
  in.use_constraint_propagation = false;
  const auto pred = decode_segments(in);
  // All four cells share flagged row segments (each column segment has one
  // fault) and flagged col segments → all flagged; 2 are FPs. This is the
  // precision loss the paper's Fig. 4(a) illustrates.
  EXPECT_TRUE(pred[0]);
  EXPECT_TRUE(pred[3]);
  EXPECT_TRUE(pred[1]);
  EXPECT_TRUE(pred[2]);
}

TEST(Decoder, PropagationBeatsFallbackOnDiagonal) {
  // With propagation the same diagonal pair *is* resolvable: every segment
  // has exactly 2 unknowns and residue 1... not fully determined, but the
  // 2×2 system with residues (1,1,1,1) admits both diagonals. Decoder
  // should still flag both true cells (possibly plus the mirror diagonal).
  DecodeInput in = grid_input(2, 2, 2, 2, {0, 3});
  const auto pred = decode_segments(in);
  EXPECT_TRUE(pred[0]);
  EXPECT_TRUE(pred[3]);
}

TEST(Decoder, ModuloAliasingMissesMultiplesOfDivisor) {
  // divisor 4, one column-segment containing exactly 4 faults → residue 0
  // in the row direction (group covers the column), so recall suffers
  // unless the transpose direction catches it. Build both directions
  // aliased: a 4×4 fully faulty grid with divisor 4 → all residues 0 →
  // nothing detected. This documents the paper's §4.2 coverage trade-off.
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < 16; ++i) all.push_back(i);
  const DecodeInput in = grid_input(4, 4, 4, 4, all, /*divisor=*/4);
  const auto pred = decode_segments(in);
  for (bool b : pred) EXPECT_FALSE(b);
}

TEST(Decoder, LargerDivisorAvoidsAliasing) {
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < 16; ++i) all.push_back(i);
  const DecodeInput in = grid_input(4, 4, 4, 4, all, /*divisor=*/32);
  const auto pred = decode_segments(in);
  for (bool b : pred) EXPECT_TRUE(b);
}

TEST(Decoder, CellCoveredByOneDirectionUsesThatVerdict) {
  DecodeInput in;
  in.rows = 1;
  in.cols = 2;
  in.divisor = 16;
  in.candidate = {true, true};
  Segment s;  // only a row segment covering both cells, residue 1
  s.cells = {0, 1};
  s.residue = 1;
  in.row_segments.push_back(s);
  in.use_constraint_propagation = false;
  const auto pred = decode_segments(in);
  EXPECT_TRUE(pred[0]);
  EXPECT_TRUE(pred[1]);
}

TEST(Decoder, RejectsBadInput) {
  DecodeInput in;
  in.rows = 0;
  in.cols = 4;
  EXPECT_THROW(decode_segments(in), CheckError);
}

}  // namespace
}  // namespace refit
