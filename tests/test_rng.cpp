// Unit tests for the deterministic RNG (src/common/rng.hpp).
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace refit {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitIsIndependentOfParentDraws) {
  Rng a(7);
  Rng child1 = a.split(5);
  a.next_u64();  // consuming the parent must not change future splits'
                 // streams relative to an un-consumed twin
  Rng b(7);
  Rng child2 = b.split(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, SplitSaltsProduceDistinctStreams) {
  Rng a(7);
  Rng c1 = a.split(1), c2 = a.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += c1.next_u64() == c2.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(7), 7u);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(9);
  const int n = 200000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(10);
  const int n = 100000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += rng.normal(5.0, 2.0);
  EXPECT_NEAR(s / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(12);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(13);
  const auto idx = rng.sample_indices(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 30u);
  for (auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(14);
  const auto idx = rng.sample_indices(10, 10);
  std::set<std::size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, SampleIndicesUniformity) {
  // Every index should appear with roughly equal frequency.
  Rng rng(15);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (auto i : rng.sample_indices(10, 3)) ++counts[i];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(16);
  EXPECT_THROW(rng.uniform_index(0), CheckError);
}

}  // namespace
}  // namespace refit
