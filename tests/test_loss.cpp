// Tests for softmax cross-entropy (src/nn/loss.hpp).
#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace refit {
namespace {

TEST(Softmax, RowsSumToOne) {
  Rng rng(1);
  Tensor logits = Tensor::randn({5, 7}, rng, 3.0f);
  Tensor p = softmax_rows(logits);
  for (std::size_t i = 0; i < 5; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_GT(p.at(i, j), 0.0f);
      s += p.at(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, ShiftInvariance) {
  Tensor a({1, 3}, std::vector<float>{1, 2, 3});
  Tensor b({1, 3}, std::vector<float>{101, 102, 103});
  Tensor pa = softmax_rows(a), pb = softmax_rows(b);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(pa[j], pb[j], 1e-6);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor a({1, 2}, std::vector<float>{1000.0f, 999.0f});
  Tensor p = softmax_rows(a);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[0], p[1]);
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits({2, 4}, 0.0f);
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHotOverBatch) {
  Tensor logits({1, 3}, std::vector<float>{0.5f, -0.2f, 1.0f});
  const Tensor p = softmax_rows(logits);
  const LossResult r = softmax_cross_entropy(logits, {2});
  EXPECT_NEAR(r.grad_logits.at(0, 0), p.at(0, 0), 1e-6);
  EXPECT_NEAR(r.grad_logits.at(0, 2), p.at(0, 2) - 1.0f, 1e-6);
}

TEST(CrossEntropy, GradientMatchesNumericalDerivative) {
  Rng rng(2);
  Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<std::uint8_t> labels{1, 4, 0};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor up = logits, dn = logits;
    up[i] += eps;
    dn[i] -= eps;
    const double fu = softmax_cross_entropy(up, labels).loss * 3.0;
    const double fd = softmax_cross_entropy(dn, labels).loss * 3.0;
    // grad is already divided by batch (3); total loss = mean*3.
    EXPECT_NEAR(r.grad_logits[i] * 3.0, (fu - fd) / (2.0 * eps), 2e-3);
  }
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  Rng rng(3);
  Tensor logits = Tensor::randn({4, 6}, rng);
  const LossResult r =
      softmax_cross_entropy(logits, {0, 1, 2, 3});
  for (std::size_t i = 0; i < 4; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 6; ++j) s += r.grad_logits.at(i, j);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(CrossEntropy, CorrectCount) {
  Tensor logits({2, 3}, std::vector<float>{5, 0, 0, 0, 0, 5});
  const LossResult r = softmax_cross_entropy(logits, {0, 0});
  EXPECT_EQ(r.correct, 1u);
}

TEST(CrossEntropy, LabelOutOfRangeThrows) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), CheckError);
}

TEST(CrossEntropy, LabelCountMismatchThrows) {
  Tensor logits({2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), CheckError);
}

TEST(Accuracy, Basics) {
  Tensor logits({3, 2}, std::vector<float>{1, 0, 0, 1, 1, 0});
  EXPECT_NEAR(accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(Accuracy, PerfectAndZero) {
  Tensor logits({2, 2}, std::vector<float>{1, 0, 0, 1});
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0}), 0.0);
}

}  // namespace
}  // namespace refit
