// Tests for the quiescent-voltage comparison detector (src/detect).
#include "detect/quiescent_detector.hpp"

#include <gtest/gtest.h>

#include "rram/faults.hpp"

namespace refit {
namespace {

Crossbar make_xbar(std::size_t n, std::uint64_t seed,
                   double noise_sigma = 0.0) {
  CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.levels = 8;
  cfg.write_noise_sigma = noise_sigma;
  return Crossbar(cfg, EnduranceModel::unlimited(), Rng(seed));
}

DetectorConfig small_config(std::size_t tr = 4) {
  DetectorConfig cfg;
  cfg.test_rows_per_cycle = tr;
  cfg.modulo_divisor = 16;
  cfg.selected_cells_only = true;
  cfg.use_constraint_propagation = true;
  return cfg;
}

/// Populate the crossbar and inject faults the way a trained array looks.
void prepare(Crossbar& xb, double fault_fraction, Rng& rng,
             double p_low = 0.3, double p_high = 0.2) {
  randomize_crossbar_content(xb, p_low, p_high, rng);
  FaultInjectionConfig fc;
  fc.fraction = fault_fraction;
  inject_fabrication_faults(xb, fc, rng);
}

TEST(Detector, CleanCrossbarNoFalsePositivesNoiseless) {
  Rng rng(1);
  Crossbar xb = make_xbar(16, 2);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  const QuiescentVoltageDetector det(small_config());
  const DetectionOutcome out = det.detect(xb);
  const ConfusionCounts cc = evaluate_detection(xb, out.predicted);
  EXPECT_EQ(cc.fp, 0u);
  EXPECT_EQ(cc.tp, 0u);
}

TEST(Detector, PerfectRecallNoiseless) {
  // Without write noise and with 10 % faults, every stuck cell produces a
  // residue; recall must be 1 (no aliasing at these densities).
  Rng rng(3);
  Crossbar xb = make_xbar(32, 4);
  prepare(xb, 0.10, rng);
  const QuiescentVoltageDetector det(small_config());
  const DetectionOutcome out = det.detect(xb);
  const ConfusionCounts cc = evaluate_detection(xb, out.predicted);
  EXPECT_DOUBLE_EQ(cc.recall(), 1.0);
  EXPECT_GT(cc.precision(), 0.7);
}

TEST(Detector, RestoresTrainingWeights) {
  Rng rng(5);
  Crossbar xb = make_xbar(16, 6);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  std::vector<int> before;
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c) before.push_back(xb.read_level(r, c));
  const QuiescentVoltageDetector det(small_config());
  const DetectionOutcome out = det.detect(xb);
  EXPECT_EQ(out.predicted.rows(), 16u);
  std::size_t i = 0;
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c)
      EXPECT_EQ(xb.read_level(r, c), before[i++]) << "cell " << r << "," << c;
}

TEST(Detector, CycleCountMatchesFormula) {
  // With selection disabled, T = 2·(ceil(C/Tr) + ceil(C/Tc)) for the two
  // fault-type passes.
  Rng rng(7);
  Crossbar xb = make_xbar(32, 8);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  DetectorConfig cfg = small_config(8);
  cfg.selected_cells_only = false;
  const QuiescentVoltageDetector det(cfg);
  const DetectionOutcome out = det.detect(xb);
  EXPECT_EQ(out.cycles, 2u * (32 / 8 + 32 / 8));
}

TEST(Detector, SelectionReducesCyclesAndCellsTested) {
  Rng rng(9);
  Crossbar a = make_xbar(32, 10);
  Crossbar b = make_xbar(32, 10);  // identical content (same seed)
  prepare(a, 0.1, rng);
  Rng rng2(9);
  prepare(b, 0.1, rng2);
  DetectorConfig sel = small_config(8);
  DetectorConfig all = small_config(8);
  all.selected_cells_only = false;
  const DetectionOutcome so = QuiescentVoltageDetector(sel).detect(a);
  const DetectionOutcome ao = QuiescentVoltageDetector(all).detect(b);
  EXPECT_LT(so.cells_tested, ao.cells_tested);
  EXPECT_LE(so.cycles, ao.cycles);
}

TEST(Detector, SelectionImprovesPrecisionUnderNoise) {
  // §4.3: testing only plausible cells removes a large class of false
  // positives. Evaluate over several seeds with analog write noise.
  double prec_sel = 0.0, prec_all = 0.0;
  int n = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(100 + seed);
    Crossbar a = make_xbar(48, 200 + seed, 0.01);
    prepare(a, 0.10, rng);
    Rng rng2(100 + seed);
    Crossbar b = make_xbar(48, 200 + seed, 0.01);
    prepare(b, 0.10, rng2);
    DetectorConfig sel = small_config(12);
    DetectorConfig all = small_config(12);
    all.selected_cells_only = false;
    const auto so = QuiescentVoltageDetector(sel).detect(a);
    const auto ao = QuiescentVoltageDetector(all).detect(b);
    prec_sel += evaluate_detection(a, so.predicted).precision();
    prec_all += evaluate_detection(b, ao.predicted).precision();
    ++n;
  }
  EXPECT_GT(prec_sel / n, prec_all / n);
}

TEST(Detector, SmallerTestSizeImprovesPrecision) {
  // The paper's core trade-off: more cycles (smaller Tr) → higher precision.
  auto precision_at = [&](std::size_t tr) {
    double p = 0.0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      Rng rng(300 + seed);
      Crossbar xb = make_xbar(64, 400 + seed, 0.01);
      prepare(xb, 0.10, rng);
      DetectorConfig cfg = small_config(tr);
      cfg.use_constraint_propagation = false;  // isolate the group effect
      const auto out = QuiescentVoltageDetector(cfg).detect(xb);
      p += evaluate_detection(xb, out.predicted).precision();
    }
    return p / 4.0;
  };
  EXPECT_GT(precision_at(2), precision_at(32));
}

TEST(Detector, RecallStaysHighUnderNoise) {
  Rng rng(11);
  Crossbar xb = make_xbar(64, 12, 0.01);
  prepare(xb, 0.10, rng);
  const QuiescentVoltageDetector det(small_config(8));
  const DetectionOutcome out = det.detect(xb);
  const ConfusionCounts cc = evaluate_detection(xb, out.predicted);
  EXPECT_GT(cc.recall(), 0.85);  // paper reports > 0.87
}

TEST(Detector, DeviceWritesBounded) {
  // Each pass pulses each candidate twice (test + restore), and candidates
  // of the two passes are disjoint, so writes ≤ 2 · cells.
  Rng rng(13);
  Crossbar xb = make_xbar(16, 14);
  prepare(xb, 0.1, rng);
  const QuiescentVoltageDetector det(small_config());
  const DetectionOutcome out = det.detect(xb);
  EXPECT_LE(out.device_writes, 2u * 16 * 16);
  EXPECT_EQ(out.device_writes, 2u * out.cells_tested);
}

TEST(Detector, DetectStoreAssemblesTiles) {
  RcsConfig cfg;
  cfg.tile_rows = 8;
  cfg.tile_cols = 8;
  cfg.levels = 8;
  cfg.write_noise_sigma = 0.0;
  cfg.inject_fabrication = true;
  cfg.fabrication.fraction = 0.1;
  Rng wrng(15);
  CrossbarWeightStore store(cfg, Tensor::randn({20, 12}, wrng, 0.05f),
                            Rng(16));
  const QuiescentVoltageDetector det(small_config());
  const DetectionOutcome out = det.detect_store(store);
  EXPECT_EQ(out.predicted.rows(), 20u);
  EXPECT_EQ(out.predicted.cols(), 12u);
  const ConfusionCounts cc = evaluate_detection(store, out.predicted);
  EXPECT_GT(cc.recall(), 0.9);
}

TEST(RandomizeContent, FractionsRespected) {
  Rng rng(17);
  Crossbar xb = make_xbar(64, 18);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  int low = 0, high = 0;
  for (std::size_t r = 0; r < 64; ++r)
    for (std::size_t c = 0; c < 64; ++c) {
      low += xb.read_level(r, c) == 0;
      high += xb.read_level(r, c) == 7;
    }
  EXPECT_NEAR(low / 4096.0, 0.3, 0.03);
  EXPECT_NEAR(high / 4096.0, 0.2, 0.03);
}

}  // namespace
}  // namespace refit
