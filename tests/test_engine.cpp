// Tests for the FtEngine phase pipeline: stepwise execution, observer
// hooks, and mid-flow checkpoint/resume. The headline test interrupts a
// full FT run (threshold + detection + prune + greedy-swap re-mapping)
// between two detection phases, resumes it into freshly built objects,
// and requires the TrainingResult to be bit-identical to an
// uninterrupted run — at 1 and at 4 threads.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/ft_trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

namespace refit {
namespace {

/// Restores the default global pool when a test is done overriding it.
struct PoolGuard {
  ~PoolGuard() { ThreadPool::set_global_threads(1); }
};

Dataset small_mnist(std::uint64_t seed = 1) {
  SyntheticConfig cfg;
  cfg.train_size = 512;
  cfg.test_size = 128;
  cfg.noise_stddev = 0.3f;
  cfg.background_clip = 0.4f;
  Rng rng(seed);
  return make_synthetic_mnist(cfg, rng);
}

/// Full FT flow on a small MLP: detection every 80 iterations, pruning,
/// and greedy-swap re-mapping (the greedy pass consumes phase_rng, so a
/// resume with a mis-restored RNG stream diverges immediately).
FtFlowConfig ft_flow() {
  FtFlowConfig cfg;
  cfg.iterations = 240;
  cfg.batch_size = 16;
  cfg.lr = LrSchedule{0.05, 0.5, 120, 1e-4};
  cfg.eval_period = 60;
  cfg.eval_samples = 128;
  cfg.threshold_training = true;
  cfg.detection_enabled = true;
  cfg.detection_period = 80;
  cfg.detector.test_rows_per_cycle = 16;
  cfg.prune.enabled = true;
  cfg.prune.fc_sparsity = 0.4;
  cfg.remap_enabled = true;
  cfg.remap.algorithm = RemapAlgorithm::kGreedySwap;
  return cfg;
}

RcsConfig faulty_rcs() {
  RcsConfig cfg;
  cfg.tile_rows = 64;
  cfg.tile_cols = 64;
  cfg.levels = 8;
  cfg.write_noise_sigma = 0.01;
  cfg.inject_fabrication = true;
  cfg.fabrication.fraction = 0.1;
  cfg.endurance = EnduranceModel::gaussian(400.0, 120.0);
  return cfg;
}

/// Same faulty chip, but weights on differential G_p/G_n pairs with the
/// full device-noise model live (drift + transient soft faults), and the
/// detector classifying hard vs soft; exercises DeviceTickPhase plus the
/// noise-RNG/ticks serialization across checkpoint/resume.
FtFlowConfig device_flow() {
  FtFlowConfig cfg = ft_flow();
  cfg.device_tick_period = 10;
  cfg.detector.classify_soft = true;
  return cfg;
}

RcsConfig device_rcs() {
  RcsConfig cfg = faulty_rcs();
  cfg.encoding = EncodingKind::kDifferentialPair;
  cfg.noise.program_sigma = 0.01;
  cfg.noise.drift_rate = 0.002;
  cfg.noise.soft_fault_rate = 0.0005;
  cfg.noise.soft_fault_ttl = 3;
  return cfg;
}

struct Rig {
  RcsSystem sys;
  Network net;
  explicit Rig(const RcsConfig& chip = faulty_rcs())
      : sys(chip, Rng(42)), net(build(sys)) {}

  static Network build(RcsSystem& sys) {
    Rng rng(2);
    return make_mlp({784, 24, 10}, sys.factory(), rng);
  }
};

void expect_identical(const TrainingResult& a, const TrainingResult& b) {
  ASSERT_EQ(a.eval_iterations, b.eval_iterations);
  ASSERT_EQ(a.eval_accuracy.size(), b.eval_accuracy.size());
  for (std::size_t i = 0; i < a.eval_accuracy.size(); ++i) {
    EXPECT_EQ(a.eval_accuracy[i], b.eval_accuracy[i]) << "eval row " << i;
    EXPECT_EQ(a.fault_fraction[i], b.fault_fraction[i]) << "eval row " << i;
  }
  EXPECT_EQ(a.peak_accuracy, b.peak_accuracy);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.device_writes, b.device_writes);
  EXPECT_EQ(a.updates_written, b.updates_written);
  EXPECT_EQ(a.updates_suppressed, b.updates_suppressed);
  EXPECT_EQ(a.updates_zero, b.updates_zero);
  EXPECT_EQ(a.wearout_faults, b.wearout_faults);
  EXPECT_EQ(a.final_fault_fraction, b.final_fault_fraction);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].iteration, b.phases[i].iteration);
    EXPECT_EQ(a.phases[i].cycles, b.phases[i].cycles);
    EXPECT_EQ(a.phases[i].detection_writes, b.phases[i].detection_writes);
    EXPECT_EQ(a.phases[i].precision, b.phases[i].precision);
    EXPECT_EQ(a.phases[i].recall, b.phases[i].recall);
    EXPECT_EQ(a.phases[i].remap_cost_before, b.phases[i].remap_cost_before);
    EXPECT_EQ(a.phases[i].remap_cost_after, b.phases[i].remap_cost_after);
    EXPECT_EQ(a.phases[i].hard_precision, b.phases[i].hard_precision);
    EXPECT_EQ(a.phases[i].hard_recall, b.phases[i].hard_recall);
    EXPECT_EQ(a.phases[i].soft_precision, b.phases[i].soft_precision);
    EXPECT_EQ(a.phases[i].soft_recall, b.phases[i].soft_recall);
    EXPECT_EQ(a.phases[i].cells_retested, b.phases[i].cells_retested);
    EXPECT_EQ(a.phases[i].soft_detected, b.phases[i].soft_detected);
  }
}

TrainingResult run_uninterrupted(const Dataset& data,
                                 const FtFlowConfig& flow = ft_flow(),
                                 const RcsConfig& chip = faulty_rcs()) {
  Rig rig(chip);
  FtEngine engine(flow);
  return engine.run(rig.net, &rig.sys, data, Rng(3));
}

TrainingResult run_resumed(const Dataset& data, std::size_t interrupt_at,
                           const FtFlowConfig& flow = ft_flow(),
                           const RcsConfig& chip = faulty_rcs()) {
  std::stringstream checkpoint;
  {
    Rig rig(chip);
    FtEngine engine(flow);
    engine.begin(rig.net, &rig.sys, data, Rng(3));
    while (engine.context().iteration < interrupt_at) engine.step();
    EXPECT_TRUE(engine.save_checkpoint(checkpoint));
    // The first engine, its network, and its RcsSystem are destroyed here
    // — the resumed run must not depend on them.
  }
  Rig rig(chip);
  FtEngine engine(flow);
  EXPECT_TRUE(engine.load_checkpoint(rig.net, &rig.sys, data, checkpoint));
  EXPECT_EQ(engine.context().iteration, interrupt_at);
  while (!engine.done()) engine.step();
  return engine.finish();
}

TEST(EngineCheckpoint, ResumeBetweenDetectionPhasesIsBitIdentical) {
  PoolGuard guard;
  const Dataset data = small_mnist();
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool::set_global_threads(threads);
    const TrainingResult full = run_uninterrupted(data);
    // Detections fire at iterations 80/160/240; interrupt between the
    // first and second so detected-fault and prune state are live.
    ASSERT_EQ(full.phases.size(), 3u);
    const TrainingResult resumed = run_resumed(data, 100);
    expect_identical(full, resumed);
  }
}

TEST(EngineCheckpoint, DifferentialNoiseResumeIsBitIdentical) {
  PoolGuard guard;
  const Dataset data = small_mnist();
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool::set_global_threads(threads);
    const TrainingResult full =
        run_uninterrupted(data, device_flow(), device_rcs());
    ASSERT_EQ(full.phases.size(), 3u);
    // Interrupt between two device ticks (ticks at 10, 20, ... 240) and
    // after the first detection, so drift state, live soft-fault TTLs,
    // and the noise RNG stream must all survive serialization.
    const TrainingResult resumed =
        run_resumed(data, 95, device_flow(), device_rcs());
    expect_identical(full, resumed);
  }
}

TEST(EngineCheckpoint, ThreadCountDoesNotChangeTheResult) {
  PoolGuard guard;
  const Dataset data = small_mnist();
  ThreadPool::set_global_threads(1);
  const TrainingResult serial = run_uninterrupted(data);
  ThreadPool::set_global_threads(4);
  const TrainingResult parallel = run_uninterrupted(data);
  expect_identical(serial, parallel);
}

TEST(EngineCheckpoint, LoadRejectsMismatchedFlowConfig) {
  const Dataset data = small_mnist();
  std::stringstream checkpoint;
  {
    Rig rig;
    FtEngine engine(ft_flow());
    engine.begin(rig.net, &rig.sys, data, Rng(3));
    engine.step();
    ASSERT_TRUE(engine.save_checkpoint(checkpoint));
  }
  Rig rig;
  FtFlowConfig other = ft_flow();
  other.iterations = 480;  // different schedule → not the same run
  FtEngine engine(other);
  EXPECT_THROW((void)engine.load_checkpoint(rig.net, &rig.sys, data,
                                            checkpoint),
               CheckError);
}

TEST(EngineObserver, SeesEveryPhaseBoundaryInOrder) {
  struct Recorder final : EngineObserver {
    std::vector<std::string> events;
    void on_run_begin(const EngineContext&) override {
      events.push_back("run-begin");
    }
    void on_phase_begin(const Phase& p, const EngineContext&) override {
      events.push_back(std::string("begin:") + p.name());
    }
    void on_phase_end(const Phase& p, const EngineContext&) override {
      events.push_back(std::string("end:") + p.name());
    }
    void on_iteration_end(const EngineContext& ctx) override {
      events.push_back("iter:" + std::to_string(ctx.iteration));
    }
    void on_run_end(const EngineContext&) override {
      events.push_back("run-end");
    }
  };

  const Dataset data = small_mnist();
  Rng rng(4);
  Network net = make_mlp({784, 16, 10}, software_store_factory(), rng);
  FtFlowConfig cfg;
  cfg.iterations = 2;
  cfg.batch_size = 8;
  cfg.eval_period = 1;
  cfg.eval_samples = 64;
  Recorder rec;
  FtEngine engine(cfg);
  engine.add_observer(&rec);
  (void)engine.run(net, nullptr, data, Rng(5));

  const std::vector<std::string> want = {
      "run-begin",
      "begin:train-step", "end:train-step", "begin:eval", "end:eval",
      "iter:1",
      "begin:train-step", "end:train-step", "begin:eval", "end:eval",
      "iter:2",
      "run-end",
  };
  EXPECT_EQ(rec.events, want);
}

TEST(FtEngine, StandardPhasesMatchTheMonolithicOrder) {
  const FtFlowConfig cfg = ft_flow();
  const auto phases = FtEngine::standard_phases(cfg);
  ASSERT_EQ(phases.size(), 5u);
  EXPECT_STREQ(phases[0]->name(), "device-tick");
  EXPECT_STREQ(phases[1]->name(), "detection");
  EXPECT_STREQ(phases[2]->name(), "remap");
  EXPECT_STREQ(phases[3]->name(), "train-step");
  EXPECT_STREQ(phases[4]->name(), "eval");
}

}  // namespace
}  // namespace refit
