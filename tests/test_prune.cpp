// Tests for magnitude pruning (src/core/prune.hpp).
#include "core/prune.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/models.hpp"

namespace refit {
namespace {

TEST(Prune, DisabledProducesNoMasks) {
  Rng rng(1);
  Network net = make_mlp({8, 4, 2}, software_store_factory(), rng);
  PruneConfig cfg;
  cfg.enabled = false;
  const PruneState st = PruneState::compute(net, cfg);
  EXPECT_TRUE(st.empty());
}

TEST(Prune, SparsityFractionRespected) {
  Rng rng(2);
  Network net = make_mlp({32, 16, 8}, software_store_factory(), rng);
  PruneConfig cfg;
  cfg.fc_sparsity = 0.6;
  const PruneState st = PruneState::compute(net, cfg);
  for (MatrixLayer* ml : net.matrix_layers()) {
    const PruneMask* m = st.mask_for(&ml->weights());
    ASSERT_NE(m, nullptr);
    const double frac = static_cast<double>(m->count_pruned()) /
                        static_cast<double>(m->pruned.size());
    EXPECT_NEAR(frac, 0.6, 0.01);
  }
}

TEST(Prune, PrunesSmallestMagnitudes) {
  Rng rng(3);
  Network net = make_mlp({16, 8}, software_store_factory(), rng);
  PruneConfig cfg;
  cfg.fc_sparsity = 0.5;
  const PruneState st = PruneState::compute(net, cfg);
  MatrixLayer* ml = net.matrix_layers()[0];
  const PruneMask* m = st.mask_for(&ml->weights());
  const Tensor& w = ml->weights().target();
  // Every pruned weight must be ≤ every kept weight in magnitude.
  float max_pruned = 0.0f, min_kept = 1e30f;
  for (std::size_t i = 0; i < w.numel(); ++i) {
    const float mag = std::fabs(w[i]);
    if (m->pruned[i]) {
      max_pruned = std::max(max_pruned, mag);
    } else {
      min_kept = std::min(min_kept, mag);
    }
  }
  EXPECT_LE(max_pruned, min_kept);
}

TEST(Prune, ApplyZeroesWeights) {
  Rng rng(4);
  Network net = make_mlp({16, 8}, software_store_factory(), rng);
  PruneConfig cfg;
  cfg.fc_sparsity = 0.5;
  const PruneState st = PruneState::compute(net, cfg);
  st.apply_to(net);
  MatrixLayer* ml = net.matrix_layers()[0];
  const PruneMask* m = st.mask_for(&ml->weights());
  const Tensor& w = ml->weights().target();
  for (std::size_t i = 0; i < w.numel(); ++i) {
    if (m->pruned[i]) {
      EXPECT_EQ(w[i], 0.0f);
    }
  }
}

TEST(Prune, MaskDeltaZeroesPrunedEntries) {
  Rng rng(5);
  Network net = make_mlp({8, 4}, software_store_factory(), rng);
  PruneConfig cfg;
  cfg.fc_sparsity = 0.5;
  const PruneState st = PruneState::compute(net, cfg);
  MatrixLayer* ml = net.matrix_layers()[0];
  const PruneMask* m = st.mask_for(&ml->weights());
  Tensor delta({8, 4}, 1.0f);
  st.mask_delta(&ml->weights(), delta);
  for (std::size_t i = 0; i < delta.numel(); ++i)
    EXPECT_EQ(delta[i], m->pruned[i] ? 0.0f : 1.0f);
}

TEST(Prune, ConvAndFcUseDifferentSparsity) {
  Rng rng(6);
  VggMiniConfig vcfg;
  vcfg.in_hw = 8;
  vcfg.conv_channels = {8};
  vcfg.pool_after = {0};
  vcfg.fc_hidden = {16};
  Network net = make_vgg_mini(vcfg, software_store_factory(),
                              software_store_factory(), rng);
  PruneConfig cfg;
  cfg.conv_sparsity = 0.2;
  cfg.fc_sparsity = 0.7;
  const PruneState st = PruneState::compute(net, cfg);
  for (MatrixLayer* ml : net.matrix_layers()) {
    const PruneMask* m = st.mask_for(&ml->weights());
    ASSERT_NE(m, nullptr);
    const double frac = static_cast<double>(m->count_pruned()) /
                        static_cast<double>(m->pruned.size());
    if (std::string(ml->kind()) == "conv") {
      EXPECT_NEAR(frac, 0.2, 0.05);
    } else {
      EXPECT_NEAR(frac, 0.7, 0.05);
    }
  }
}

TEST(Prune, ZeroSparsitySkipsLayer) {
  Rng rng(7);
  Network net = make_mlp({8, 4}, software_store_factory(), rng);
  PruneConfig cfg;
  cfg.fc_sparsity = 0.0;
  const PruneState st = PruneState::compute(net, cfg);
  EXPECT_EQ(st.mask_for(&net.matrix_layers()[0]->weights()), nullptr);
}

TEST(Prune, TotalPrunedCountsAcrossLayers) {
  Rng rng(8);
  Network net = make_mlp({10, 10, 10}, software_store_factory(), rng);
  PruneConfig cfg;
  cfg.fc_sparsity = 0.5;
  const PruneState st = PruneState::compute(net, cfg);
  EXPECT_EQ(st.total_pruned(), 100u);  // 2 layers × 100 weights × 0.5
}

}  // namespace
}  // namespace refit
