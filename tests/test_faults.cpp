// Tests for fabrication-fault injection and spatial distributions.
#include "rram/faults.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "rram/fault_map.hpp"

namespace refit {
namespace {

Crossbar make_xbar(std::size_t n, Rng rng) {
  CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.write_noise_sigma = 0.0;
  return Crossbar(cfg, EnduranceModel::unlimited(), rng);
}

TEST(FaultSites, UniformCountAndDistinct) {
  Rng rng(1);
  FaultInjectionConfig cfg;
  const auto sites = sample_fault_sites(64, 64, 400, cfg, rng);
  EXPECT_EQ(sites.size(), 400u);
  std::set<std::pair<std::size_t, std::size_t>> s(sites.begin(), sites.end());
  EXPECT_EQ(s.size(), 400u);
  for (const auto& [r, c] : sites) {
    EXPECT_LT(r, 64u);
    EXPECT_LT(c, 64u);
  }
}

TEST(FaultSites, ClusteredCountAndDistinct) {
  Rng rng(2);
  FaultInjectionConfig cfg;
  cfg.spatial = SpatialDistribution::kClustered;
  cfg.clusters = 3;
  const auto sites = sample_fault_sites(128, 128, 1000, cfg, rng);
  EXPECT_EQ(sites.size(), 1000u);
  std::set<std::pair<std::size_t, std::size_t>> s(sites.begin(), sites.end());
  EXPECT_EQ(s.size(), 1000u);
}

TEST(FaultSites, ClusteredIsMoreConcentratedThanUniform) {
  // Mean pairwise distance of clustered faults must be clearly smaller.
  Rng rng(3);
  FaultInjectionConfig ucfg;
  FaultInjectionConfig ccfg;
  ccfg.spatial = SpatialDistribution::kClustered;
  ccfg.clusters = 2;
  ccfg.cluster_sigma_fraction = 0.05;
  const auto us = sample_fault_sites(256, 256, 300, ucfg, rng);
  const auto cs = sample_fault_sites(256, 256, 300, ccfg, rng);
  auto mean_pair_dist = [](const auto& sites) {
    double s = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < sites.size(); i += 7)
      for (std::size_t j = i + 1; j < sites.size(); j += 7) {
        const double dr = static_cast<double>(sites[i].first) -
                          static_cast<double>(sites[j].first);
        const double dc = static_cast<double>(sites[i].second) -
                          static_cast<double>(sites[j].second);
        s += std::sqrt(dr * dr + dc * dc);
        ++n;
      }
    return s / n;
  };
  EXPECT_LT(mean_pair_dist(cs), 0.6 * mean_pair_dist(us));
}

TEST(FaultSites, MoreFaultsThanCellsThrows) {
  Rng rng(4);
  FaultInjectionConfig cfg;
  EXPECT_THROW(sample_fault_sites(4, 4, 17, cfg, rng), CheckError);
}

TEST(InjectFaults, FractionRespected) {
  Rng rng(5);
  Crossbar xb = make_xbar(64, Rng(6));
  FaultInjectionConfig cfg;
  cfg.fraction = 0.10;
  inject_fabrication_faults(xb, cfg, rng);
  EXPECT_NEAR(xb.fault_fraction(), 0.10, 5e-4);
}

TEST(InjectFaults, MixesSa0AndSa1) {
  Rng rng(7);
  Crossbar xb = make_xbar(64, Rng(8));
  FaultInjectionConfig cfg;
  cfg.fraction = 0.2;
  cfg.sa0_probability = 0.5;
  inject_fabrication_faults(xb, cfg, rng);
  int sa0 = 0, sa1 = 0;
  for (std::size_t r = 0; r < 64; ++r)
    for (std::size_t c = 0; c < 64; ++c) {
      sa0 += xb.fault(r, c) == FaultKind::kStuckAt0;
      sa1 += xb.fault(r, c) == FaultKind::kStuckAt1;
    }
  EXPECT_GT(sa0, 300);
  EXPECT_GT(sa1, 300);
  EXPECT_EQ(sa0 + sa1, static_cast<int>(xb.fault_count()));
}

TEST(InjectFaults, Sa0ProbabilityExtremes) {
  Rng rng(9);
  Crossbar xb = make_xbar(32, Rng(10));
  FaultInjectionConfig cfg;
  cfg.fraction = 0.3;
  cfg.sa0_probability = 1.0;
  inject_fabrication_faults(xb, cfg, rng);
  for (std::size_t r = 0; r < 32; ++r)
    for (std::size_t c = 0; c < 32; ++c)
      EXPECT_NE(xb.fault(r, c), FaultKind::kStuckAt1);
}

TEST(InjectFaults, ZeroFractionIsNoop) {
  Rng rng(11);
  Crossbar xb = make_xbar(16, Rng(12));
  FaultInjectionConfig cfg;
  cfg.fraction = 0.0;
  inject_fabrication_faults(xb, cfg, rng);
  EXPECT_EQ(xb.fault_count(), 0u);
}

TEST(FaultMatrix, Basics) {
  FaultMatrix fm(3, 4);
  EXPECT_EQ(fm.rows(), 3u);
  EXPECT_EQ(fm.cols(), 4u);
  EXPECT_EQ(fm.count_faulty(), 0u);
  fm.set(1, 2, FaultKind::kStuckAt0);
  fm.set(2, 3, FaultKind::kStuckAt1);
  EXPECT_TRUE(fm.faulty(1, 2));
  EXPECT_FALSE(fm.faulty(0, 0));
  EXPECT_EQ(fm.at(2, 3), FaultKind::kStuckAt1);
  EXPECT_EQ(fm.count_faulty(), 2u);
}

TEST(FaultMatrix, DefaultIsEmpty) {
  FaultMatrix fm;
  EXPECT_TRUE(fm.empty());
}

}  // namespace
}  // namespace refit
