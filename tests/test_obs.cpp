// Tests for the observability layer (src/obs) and its engine wiring:
//
//   * counter/gauge/histogram correctness under an 8-thread hammering
//     through the real ThreadPool (the lock-free increment path),
//   * snapshot determinism (sorted by name) and JSON/CSV serialization,
//   * Chrome trace-event output: parse-back with a minimal JSON reader,
//     and the headline golden-trace property — under an injected
//     ManualClock the emitted trace bytes are identical at 1 and at
//     4 threads,
//   * engine integration: exactly one "phase"-category span per executed
//     Phase::run, independent of the pool size, plus the metric catalogue
//     entries documented in docs/observability.md.
//
// Every test runs through the ObsTest fixture, which resets the registry
// and tracer, enables both layers, and restores the steady clock and the
// 1-thread pool on teardown — so test order never matters.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/ft_trainer.hpp"
#include "core/obs_observer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace refit {
namespace {

using obs::MetricSnapshot;
using obs::MetricsRegistry;
using obs::MetricType;
using obs::Tracer;

// ---------------------------------------------------------------------------
// Minimal JSON validator / reader (recursive descent). Enough to parse
// the trace and metrics output this layer emits; rejects trailing junk.
// ---------------------------------------------------------------------------

struct JsonReader {
  const std::string& s;
  std::size_t p = 0;
  bool ok = true;

  explicit JsonReader(const std::string& text) : s(text) {}

  void ws() {
    while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p])))
      ++p;
  }
  bool eat(char c) {
    ws();
    if (p < s.size() && s[p] == c) {
      ++p;
      return true;
    }
    ok = false;
    return false;
  }
  bool peek(char c) {
    ws();
    return p < s.size() && s[p] == c;
  }

  void value() {
    ws();
    if (p >= s.size()) {
      ok = false;
      return;
    }
    const char c = s[p];
    if (c == '{') {
      object();
    } else if (c == '[') {
      array();
    } else if (c == '"') {
      string();
    } else if (c == 't') {
      literal("true");
    } else if (c == 'f') {
      literal("false");
    } else if (c == 'n') {
      literal("null");
    } else {
      number();
    }
  }
  void literal(const char* lit) {
    for (const char* q = lit; *q != '\0'; ++q) {
      if (p >= s.size() || s[p] != *q) {
        ok = false;
        return;
      }
      ++p;
    }
  }
  void number() {
    const std::size_t start = p;
    if (p < s.size() && (s[p] == '-' || s[p] == '+')) ++p;
    while (p < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[p])) || s[p] == '.' ||
            s[p] == 'e' || s[p] == 'E' || s[p] == '-' || s[p] == '+'))
      ++p;
    if (p == start) ok = false;
  }
  void string() {
    if (!eat('"')) return;
    while (p < s.size() && s[p] != '"') {
      if (s[p] == '\\') ++p;  // skip the escaped character
      ++p;
    }
    if (p >= s.size()) {
      ok = false;
      return;
    }
    ++p;  // closing quote
  }
  void array() {
    if (!eat('[')) return;
    if (peek(']')) {
      eat(']');
      return;
    }
    while (ok) {
      value();
      if (peek(']')) {
        eat(']');
        return;
      }
      if (!eat(',')) return;
    }
  }
  void object() {
    if (!eat('{')) return;
    if (peek('}')) {
      eat('}');
      return;
    }
    while (ok) {
      string();
      if (!eat(':')) return;
      value();
      if (peek('}')) {
        eat('}');
        return;
      }
      if (!eat(',')) return;
    }
  }

  /// Whole-document parse: one value plus trailing whitespace only.
  bool parse() {
    value();
    ws();
    return ok && p == s.size();
  }
};

bool valid_json(const std::string& text) { return JsonReader(text).parse(); }

// ---------------------------------------------------------------------------
// Fixture
// ---------------------------------------------------------------------------

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::instance().reset_for_tests();
    Tracer::global().reset();
    MetricsRegistry::instance().set_enabled(true);
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    MetricsRegistry::instance().set_enabled(false);
    Tracer::global().set_enabled(false);
    Tracer::global().reset();
    MetricsRegistry::instance().reset_for_tests();
    obs::set_clock(nullptr);
    ThreadPool::set_global_threads(1);
  }

  static const MetricSnapshot* find(const std::vector<MetricSnapshot>& snap,
                                    const std::string& name) {
    for (const MetricSnapshot& m : snap)
      if (m.name == name) return &m;
    return nullptr;
  }
};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterGaugeHistogramUnderThreadHammering) {
  obs::Counter c =
      MetricsRegistry::instance().counter("test.hammer.count", "ops");
  obs::Gauge g = MetricsRegistry::instance().gauge("test.hammer.gauge");
  obs::Histogram h = MetricsRegistry::instance().histogram(
      "test.hammer.hist", {1.0, 10.0, 100.0}, "units");

  ThreadPool::set_global_threads(8);
  constexpr std::size_t kN = 100000;
  ThreadPool::global().parallel_for(kN, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      c.add();
      g.set(static_cast<double>(i));
      h.observe(static_cast<double>(i % 200));
    }
  });

  const auto snap = MetricsRegistry::instance().snapshot();
  const MetricSnapshot* cs = find(snap, "test.hammer.count");
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->type, MetricType::kCounter);
  EXPECT_EQ(cs->count, kN);  // no lost increments
  EXPECT_EQ(cs->unit, "ops");

  const MetricSnapshot* gs = find(snap, "test.hammer.gauge");
  ASSERT_NE(gs, nullptr);
  EXPECT_EQ(gs->type, MetricType::kGauge);
  EXPECT_GE(gs->value, 0.0);  // last-writer value: some observed index
  EXPECT_LT(gs->value, static_cast<double>(kN));

  // i % 200 over 100000 samples: 500 full cycles of 0..199.
  //   bucket <=1: {0,1}=2 per cycle; <=10: {2..10}=9; <=100: {11..100}=90;
  //   overflow: {101..199}=99.
  const MetricSnapshot* hs = find(snap, "test.hammer.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->type, MetricType::kHistogram);
  EXPECT_EQ(hs->count, kN);
  ASSERT_EQ(hs->buckets.size(), 4u);
  EXPECT_EQ(hs->buckets[0], 2u * 500);
  EXPECT_EQ(hs->buckets[1], 9u * 500);
  EXPECT_EQ(hs->buckets[2], 90u * 500);
  EXPECT_EQ(hs->buckets[3], 99u * 500);
  // Sum of 0..199 is 19900 per cycle; CAS accumulation loses nothing.
  EXPECT_DOUBLE_EQ(hs->value, 19900.0 * 500);
}

TEST_F(ObsTest, SnapshotIsSortedByNameAndRegistrationIsIdempotent) {
  MetricsRegistry::instance().counter("test.z.last").add(3);
  MetricsRegistry::instance().counter("test.a.first").add(1);
  MetricsRegistry::instance().counter("test.m.middle").add(2);
  // Re-registering the same name returns the same cell, not a fresh one.
  MetricsRegistry::instance().counter("test.a.first").add(10);

  const auto snap = MetricsRegistry::instance().snapshot();
  std::vector<std::string> names;
  for (const MetricSnapshot& m : snap) names.push_back(m.name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  const MetricSnapshot* a = find(snap, "test.a.first");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->count, 11u);
}

TEST_F(ObsTest, DisabledHandlesRecordNothing) {
  obs::Counter c = MetricsRegistry::instance().counter("test.gated");
  c.add(5);
  MetricsRegistry::instance().set_enabled(false);
  c.add(7);  // dropped: the runtime gate is off
  MetricsRegistry::instance().set_enabled(true);
  c.add(1);
  const auto snap = MetricsRegistry::instance().snapshot();
  const MetricSnapshot* cs = find(snap, "test.gated");
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->count, 6u);
}

TEST_F(ObsTest, JsonAndCsvSnapshotsParse) {
  MetricsRegistry::instance().counter("test.out.count", "ops").add(42);
  MetricsRegistry::instance().gauge("test.out.gauge").set(0.25);
  MetricsRegistry::instance()
      .histogram("test.out.hist", {1.0, 2.0})
      .observe(1.5);

  std::ostringstream js;
  MetricsRegistry::instance().write_json(js);
  EXPECT_TRUE(valid_json(js.str())) << js.str();
  EXPECT_NE(js.str().find("\"test.out.count\""), std::string::npos);
  EXPECT_NE(js.str().find("\"value\":42"), std::string::npos);

  std::ostringstream cs;
  MetricsRegistry::instance().write_csv(cs);
  const std::string csv = cs.str();
  EXPECT_EQ(csv.rfind("name,type,unit,value,count,p50,p95,p99,buckets\n", 0),
            0u);
  EXPECT_NE(csv.find("test.out.count,counter,ops,42"), std::string::npos);
  // Histogram rows carry the interpolated percentile columns; scalar rows
  // leave them empty.
  EXPECT_NE(js.str().find("\"p50\":"), std::string::npos);
  EXPECT_NE(csv.find("test.out.count,counter,ops,42,42,,,"),
            std::string::npos);

  // Two snapshots with no writes in between are byte-identical.
  std::ostringstream js2;
  MetricsRegistry::instance().write_json(js2);
  EXPECT_EQ(js.str(), js2.str());
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TraceSpansRecordAndSerialize) {
  obs::ManualClock clock(1000);  // 1 µs per tick
  obs::set_clock(&clock);
  {
    obs::TraceSpan outer("outer", "test");
    obs::TraceSpan inner("inner", "test");
  }
  Tracer::global().emit_complete("manual", "test", 50000, 1500);

  const auto events = Tracer::global().collect();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by ts: outer (t=1000), inner (t=2000), manual (t=50000).
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "manual");
  // inner closes before outer: strictly nested durations.
  EXPECT_GT(events[0].dur_ns, events[1].dur_ns);

  std::ostringstream os;
  Tracer::global().write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // 50000 ns → "50.000" µs with fixed 3-decimal formatting.
  EXPECT_NE(json.find("\"ts\":50.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
}

TEST_F(ObsTest, DisabledTracerEmitsEmptyDocument) {
  Tracer::global().set_enabled(false);
  {
    obs::TraceSpan span("ignored", "test");
  }
  EXPECT_TRUE(Tracer::global().collect().empty());
  std::ostringstream os;
  Tracer::global().write_chrome_json(os);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[]}\n");
  EXPECT_TRUE(valid_json(os.str()));
}

TEST_F(ObsTest, TraceJsonEscapesSpecialCharacters) {
  Tracer::global().emit_complete("quote\"back\\slash\tname", "test", 0, 1);
  std::ostringstream os;
  Tracer::global().write_chrome_json(os);
  EXPECT_TRUE(valid_json(os.str())) << os.str();
  EXPECT_NE(os.str().find("quote\\\"back\\\\slash\\u0009name"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration + golden trace
// ---------------------------------------------------------------------------

/// A small full-flow training run (threshold + detection + remap) under
/// the currently installed clock; returns the serialized trace bytes.
std::string run_and_trace(std::size_t threads) {
  ThreadPool::set_global_threads(threads);

  SyntheticConfig dc;
  dc.train_size = 64;
  dc.test_size = 32;
  Rng drng(1);
  const Dataset data = make_synthetic_mnist(dc, drng);

  RcsConfig rc;
  rc.tile_rows = 64;
  rc.tile_cols = 64;
  rc.inject_fabrication = true;
  rc.fabrication.fraction = 0.1;
  RcsSystem rcs(rc, Rng(42));

  Rng nrng(2);
  Network net = make_mlp({784, 16, 10}, rcs.factory(), nrng);

  FtFlowConfig flow;
  flow.iterations = 6;
  flow.batch_size = 4;
  flow.eval_period = 3;
  flow.eval_samples = 32;
  flow.threshold_training = true;
  flow.detection_enabled = true;
  flow.detection_period = 3;
  flow.remap_enabled = true;

  FtTrainer trainer(flow);
  ObsObserver observer;
  trainer.add_observer(&observer);
  (void)trainer.train(net, &rcs, data, Rng(3));

  std::ostringstream os;
  Tracer::global().write_chrome_json(os);
  return os.str();
}

TEST_F(ObsTest, GoldenTraceIsByteStableAcrossRunsAndThreadCounts) {
  // Fresh ManualClock per run: every run sees the identical timestamp
  // sequence, so the traces must match byte for byte — including between
  // a 1-thread and a 4-thread pool, because spans are recorded only on
  // the caller thread and ManualClock sequences are per-thread.
  obs::ManualClock c1(1000);
  obs::set_clock(&c1);
  const std::string t1 = run_and_trace(1);
  Tracer::global().reset();

  obs::ManualClock c1b(1000);
  obs::set_clock(&c1b);
  const std::string t1b = run_and_trace(1);
  Tracer::global().reset();

  obs::ManualClock c4(1000);
  obs::set_clock(&c4);
  const std::string t4 = run_and_trace(4);

  EXPECT_FALSE(t1.empty());
  EXPECT_TRUE(valid_json(t1));
  EXPECT_EQ(t1, t1b) << "same-thread-count repeat must be byte-identical";
  EXPECT_EQ(t1, t4) << "trace must not depend on the pool size";
}

/// Counts phase executions exactly as the engine reports them.
struct PhaseCounter final : EngineObserver {
  std::map<std::string, int> runs;
  void on_phase_end(const Phase& phase, const EngineContext& ctx) override {
    (void)ctx;
    ++runs[phase.name()];
  }
};

TEST_F(ObsTest, OneTraceSpanPerExecutedPhase) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(threads);
    Tracer::global().reset();
    ThreadPool::set_global_threads(threads);

    SyntheticConfig dc;
    dc.train_size = 64;
    dc.test_size = 32;
    Rng drng(1);
    const Dataset data = make_synthetic_mnist(dc, drng);
    RcsConfig rc;
    rc.tile_rows = 64;
    rc.tile_cols = 64;
    RcsSystem rcs(rc, Rng(42));
    Rng nrng(2);
    Network net = make_mlp({784, 16, 10}, rcs.factory(), nrng);

    FtFlowConfig flow;
    flow.iterations = 6;
    flow.batch_size = 4;
    flow.eval_period = 3;
    flow.eval_samples = 32;
    flow.detection_enabled = true;
    flow.detection_period = 3;

    FtTrainer trainer(flow);
    ObsObserver observer;
    PhaseCounter phase_counter;
    trainer.add_observer(&observer);
    trainer.add_observer(&phase_counter);
    (void)trainer.train(net, &rcs, data, Rng(3));

    std::map<std::string, int> spans;
    for (const obs::TraceEvent& ev : Tracer::global().collect())
      if (ev.category == "phase") ++spans[ev.name];
    EXPECT_EQ(spans, phase_counter.runs);
    EXPECT_EQ(spans.count("train-step"), 1u);
    EXPECT_EQ(spans["train-step"], 6);
  }
}

TEST_F(ObsTest, EngineRunPopulatesTheMetricCatalogue) {
  obs::ManualClock clock(1000);
  obs::set_clock(&clock);
  (void)run_and_trace(1);

  const auto snap = MetricsRegistry::instance().snapshot();
  const char* expected[] = {
      "engine.runs",          "engine.iterations",
      "engine.run_ns",        "engine.phase.train-step.runs",
      "engine.phase.train-step.ns", "engine.phase_ns",
      "store.writes",         "store.rebuilds",
      "store.rebuild_tiles",  "detector.rounds",
      "detector.cycles",      "detector.cells_tested",
      "detector.pulses",      "detector.adc_reads",
      "detector.precision",   "detector.recall",
      "pool.parallel_for.calls",
  };
  for (const char* name : expected)
    EXPECT_NE(find(snap, name), nullptr) << "missing metric " << name;

  const MetricSnapshot* iters = find(snap, "engine.iterations");
  ASSERT_NE(iters, nullptr);
  EXPECT_EQ(iters->count, 6u);
  const MetricSnapshot* writes = find(snap, "store.writes");
  ASSERT_NE(writes, nullptr);
  EXPECT_GT(writes->count, 0u);
  const MetricSnapshot* runs = find(snap, "engine.phase.train-step.runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->count, 6u);
}

TEST_F(ObsTest, ObsObserverTimingTableListsEveryPhase) {
  obs::ManualClock clock(1000);
  obs::set_clock(&clock);
  ThreadPool::set_global_threads(1);

  SyntheticConfig dc;
  dc.train_size = 64;
  dc.test_size = 32;
  Rng drng(1);
  const Dataset data = make_synthetic_mnist(dc, drng);
  RcsConfig rc;
  rc.tile_rows = 64;
  rc.tile_cols = 64;
  RcsSystem rcs(rc, Rng(42));
  Rng nrng(2);
  Network net = make_mlp({784, 16, 10}, rcs.factory(), nrng);

  FtFlowConfig flow;
  flow.iterations = 4;
  flow.batch_size = 4;
  flow.eval_period = 2;
  flow.eval_samples = 32;

  FtTrainer trainer(flow);
  ObsObserver observer;
  trainer.add_observer(&observer);
  (void)trainer.train(net, &rcs, data, Rng(3));

  ASSERT_FALSE(observer.phase_stats().empty());
  EXPECT_GT(observer.run_ns(), 0u);
  const std::string table = observer.timing_table();
  EXPECT_NE(table.find("phase"), std::string::npos);
  EXPECT_NE(table.find("train-step"), std::string::npos);
  EXPECT_NE(table.find("eval"), std::string::npos);
  for (const ObsObserver::PhaseStat& st : observer.phase_stats()) {
    EXPECT_GT(st.runs, 0u);
    EXPECT_GT(st.total_ns, 0u) << st.name;
  }
}

}  // namespace
}  // namespace refit
