// Tests for the periodic metrics sampler (src/obs/timeseries.hpp):
//
//   * ring capacity, period gating through the Clock seam, and the
//     exclude-prefix filter (pool.* metrics vary with the lane count, so
//     they are excluded by default),
//   * JSONL serialization parses and carries the histogram percentiles,
//   * the headline golden property — under a fresh ManualClock per run
//     the JSONL emitted by a full engine run is byte-identical at 1 and
//     at 4 threads, because sampling happens only on the caller thread.
//
// The fixture mirrors ObsTest in test_obs.cpp: reset + enable on setup,
// restore the steady clock and the 1-thread pool on teardown.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/thread_pool.hpp"
#include "core/ft_trainer.hpp"
#include "core/obs_observer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace refit {
namespace {

using obs::MetricsRegistry;
using obs::TimeseriesConfig;
using obs::TimeseriesRecorder;

class TimeseriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::instance().reset_for_tests();
    TimeseriesRecorder::global().reset_for_tests();
    MetricsRegistry::instance().set_enabled(true);
    TimeseriesRecorder::global().set_enabled(true);
  }
  void TearDown() override {
    TimeseriesRecorder::global().set_enabled(false);
    TimeseriesRecorder::global().reset_for_tests();
    MetricsRegistry::instance().set_enabled(false);
    MetricsRegistry::instance().reset_for_tests();
    obs::set_clock(nullptr);
    ThreadPool::set_global_threads(1);
  }
};

TEST_F(TimeseriesTest, SampleNowSnapshotsRegistryValues) {
  MetricsRegistry::instance().counter("ts.count").add(3);
  MetricsRegistry::instance().gauge("ts.gauge").set(0.5);
  MetricsRegistry::instance()
      .histogram("ts.hist", {1.0, 10.0}, "units")
      .observe(5.0);

  TimeseriesRecorder::global().sample_now(7);
  const auto samples = TimeseriesRecorder::global().samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].seq, 0u);
  EXPECT_EQ(samples[0].iteration, 7u);

  std::ostringstream os;
  TimeseriesRecorder::global().write_jsonl(os);
  const std::string line = os.str();
  EXPECT_NE(line.find("\"iteration\":7"), std::string::npos);
  EXPECT_NE(line.find("\"ts.count\":{\"count\":3}"), std::string::npos);
  EXPECT_NE(line.find("\"ts.gauge\":{\"value\":0.5}"), std::string::npos);
  // Histogram entries carry count/sum plus the interpolated percentiles.
  EXPECT_NE(line.find("\"p50\":"), std::string::npos);
  EXPECT_NE(line.find("\"p95\":"), std::string::npos);
}

TEST_F(TimeseriesTest, PollHonorsThePeriodThroughTheClockSeam) {
  obs::ManualClock clock(1000);
  obs::set_clock(&clock);
  TimeseriesConfig cfg;
  cfg.period_ns = 5000;  // one sample per 5 ticks
  TimeseriesRecorder::global().configure(cfg);
  TimeseriesRecorder::global().set_enabled(true);

  MetricsRegistry::instance().counter("ts.count").add(1);
  for (std::size_t i = 0; i < 20; ++i) TimeseriesRecorder::global().poll(i);
  // 20 polls, each advancing the manual clock 1000 ns, sample every
  // 5000 ns: the recorder takes a quarter of them.
  EXPECT_EQ(TimeseriesRecorder::global().sampled(), 4u);
}

TEST_F(TimeseriesTest, ExcludePrefixesDropPoolMetrics) {
  MetricsRegistry::instance().counter("pool.lane0.tasks").add(2);
  MetricsRegistry::instance().counter("ts.kept").add(1);
  TimeseriesRecorder::global().sample_now(0);
  std::ostringstream os;
  TimeseriesRecorder::global().write_jsonl(os);
  EXPECT_EQ(os.str().find("pool.lane0.tasks"), std::string::npos)
      << "pool.* names vary with the lane count and must be excluded";
  EXPECT_NE(os.str().find("ts.kept"), std::string::npos);
}

TEST_F(TimeseriesTest, RingDropsOldestBeyondCapacity) {
  TimeseriesConfig cfg;
  cfg.capacity = 4;
  TimeseriesRecorder::global().configure(cfg);
  TimeseriesRecorder::global().set_enabled(true);
  for (std::size_t i = 0; i < 10; ++i) {
    TimeseriesRecorder::global().sample_now(i);
  }
  const auto samples = TimeseriesRecorder::global().samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().iteration, 6u);  // oldest retained
  EXPECT_EQ(samples.back().iteration, 9u);
  EXPECT_EQ(TimeseriesRecorder::global().sampled(), 10u);  // total taken
}

TEST_F(TimeseriesTest, DisabledRecorderTakesNoSamples) {
  TimeseriesRecorder::global().set_enabled(false);
  TimeseriesRecorder::global().sample_now(0);
  TimeseriesRecorder::global().poll(1);
  EXPECT_EQ(TimeseriesRecorder::global().sampled(), 0u);
}

/// The same small full-flow run as test_obs.cpp's golden trace, returning
/// the timeseries JSONL bytes instead of the trace.
std::string run_and_dump(std::size_t threads) {
  ThreadPool::set_global_threads(threads);

  SyntheticConfig dc;
  dc.train_size = 64;
  dc.test_size = 32;
  Rng drng(1);
  const Dataset data = make_synthetic_mnist(dc, drng);

  RcsConfig rc;
  rc.tile_rows = 64;
  rc.tile_cols = 64;
  rc.inject_fabrication = true;
  rc.fabrication.fraction = 0.1;
  RcsSystem rcs(rc, Rng(42));

  Rng nrng(2);
  Network net = make_mlp({784, 16, 10}, rcs.factory(), nrng);

  FtFlowConfig flow;
  flow.iterations = 6;
  flow.batch_size = 4;
  flow.eval_period = 3;
  flow.eval_samples = 32;
  flow.threshold_training = true;
  flow.detection_enabled = true;
  flow.detection_period = 3;
  flow.remap_enabled = true;

  FtTrainer trainer(flow);
  ObsObserver observer;
  trainer.add_observer(&observer);
  (void)trainer.train(net, &rcs, data, Rng(3));

  std::ostringstream os;
  TimeseriesRecorder::global().write_jsonl(os);
  return os.str();
}

TEST_F(TimeseriesTest, GoldenJsonlIsByteStableAcrossRunsAndThreadCounts) {
  // Fresh ManualClock and zeroed registry per run: every run sees the
  // identical timestamp sequence and metric values, so the JSONL must
  // match byte for byte — including between a 1-thread and a 4-thread
  // pool, because samples are taken only on the caller thread and pool.*
  // metrics are excluded from sampling. A warmup run registers the full
  // metric name set first: registration is permanent (reset_for_tests
  // zeroes values but keeps names so live handles stay valid), so without
  // it the first run's early samples would carry fewer names than any
  // later run's.
  const auto fresh_run = [](std::size_t threads, obs::ManualClock* clock) {
    MetricsRegistry::instance().reset_for_tests();
    TimeseriesRecorder::global().reset_for_tests();
    TimeseriesRecorder::global().set_enabled(true);
    obs::set_clock(clock);
    return run_and_dump(threads);
  };
  obs::ManualClock warmup(1000);
  (void)fresh_run(1, &warmup);

  obs::ManualClock c1(1000);
  const std::string d1 = fresh_run(1, &c1);
  obs::ManualClock c1b(1000);
  const std::string d1b = fresh_run(1, &c1b);
  obs::ManualClock c4(1000);
  const std::string d4 = fresh_run(4, &c4);

  EXPECT_FALSE(d1.empty());
  EXPECT_EQ(d1, d1b) << "same-thread-count repeat must be byte-identical";
  EXPECT_EQ(d1, d4) << "timeseries must not depend on the pool size";
}

// Histogram percentiles are pure functions of the snapshot, so repeated
// serialization of an untouched registry is byte-identical.
TEST_F(TimeseriesTest, PercentileColumnsAreDeterministic) {
  obs::Histogram h = MetricsRegistry::instance().histogram(
      "ts.phist", {1.0, 10.0, 100.0}, "units");
  ThreadPool::set_global_threads(4);
  ThreadPool::global().parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      h.observe(static_cast<double>(i % 150));
    }
  });
  std::ostringstream a, b;
  MetricsRegistry::instance().write_csv(a);
  MetricsRegistry::instance().write_csv(b);
  EXPECT_EQ(a.str(), b.str());
  // The interpolation is monotone in the quantile.
  const auto snap = MetricsRegistry::instance().snapshot();
  for (const auto& m : snap) {
    if (m.name != "ts.phist") continue;
    const double p50 = m.percentile(0.50);
    const double p95 = m.percentile(0.95);
    const double p99 = m.percentile(0.99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GT(p50, 0.0);
  }
}

}  // namespace
}  // namespace refit
