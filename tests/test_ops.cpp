// Unit tests for tensor kernels (src/tensor/ops.hpp): GEMM variants,
// im2col/col2im adjointness, pooling.
#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "tensor/gemm.hpp"

namespace refit {
namespace {

TEST(Matmul, Known2x2) {
  Tensor a({2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor b({2, 2}, std::vector<float>{5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Matmul, RectangularShapes) {
  Tensor a({1, 3}, std::vector<float>{1, 2, 3});
  Tensor b({3, 2}, std::vector<float>{1, 0, 0, 1, 1, 1});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 5.0f);
}

TEST(Matmul, InnerDimMismatchThrows) {
  Tensor a({2, 3}), b({2, 3});
  EXPECT_THROW(matmul(a, b), CheckError);
}

TEST(Matmul, TransposeVariantsAgree) {
  Rng rng(1);
  Tensor a = Tensor::randn({4, 6}, rng);
  Tensor b = Tensor::randn({6, 5}, rng);
  Tensor ref = matmul(a, b);
  // matmul_tn(Aᵀstored, B): store A as [6,4] = aᵀ.
  Tensor at = transpose(a);
  Tensor c1 = matmul_tn(at, b);
  // matmul_nt(A, Bᵀstored): store B as [5,6] = bᵀ.
  Tensor bt = transpose(b);
  Tensor c2 = matmul_nt(a, bt);
  ASSERT_EQ(c1.shape(), ref.shape());
  ASSERT_EQ(c2.shape(), ref.shape());
  for (std::size_t i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(c1[i], ref[i], 1e-4);
    EXPECT_NEAR(c2[i], ref[i], 1e-4);
  }
}

TEST(Transpose, Involution) {
  Rng rng(2);
  Tensor a = Tensor::randn({3, 7}, rng);
  Tensor att = transpose(transpose(a));
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], att[i]);
}

TEST(AddRowVector, Broadcasts) {
  Tensor m({2, 3}, 1.0f);
  Tensor b({3}, std::vector<float>{1, 2, 3});
  add_row_vector(m, b);
  EXPECT_FLOAT_EQ(m.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.at(1, 2), 4.0f);
}

TEST(ColumnSums, Basics) {
  Tensor m({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor s = column_sums(m);
  EXPECT_FLOAT_EQ(s[0], 5.0f);
  EXPECT_FLOAT_EQ(s[1], 7.0f);
  EXPECT_FLOAT_EQ(s[2], 9.0f);
}

TEST(ConvGeometry, OutputDims) {
  ConvGeometry g{3, 16, 16, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 16u);
  EXPECT_EQ(g.out_w(), 16u);
  EXPECT_EQ(g.patch_len(), 27u);
  ConvGeometry g2{1, 8, 8, 2, 2, 0};
  EXPECT_EQ(g2.out_h(), 4u);
}

TEST(Im2col, IdentityKernelGeometry) {
  // 1×1 kernel, no pad: im2col is a pure reshape.
  Rng rng(3);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  ConvGeometry g{3, 4, 4, 1, 1, 0};
  Tensor cols = im2col(x, g);
  EXPECT_EQ(cols.shape(), (Shape{2 * 16, 3}));
  // Row (n=0, y=1, x=2), channel 2 must equal x[0,2,1,2].
  EXPECT_FLOAT_EQ(cols.at(1 * 4 + 2, 2), x.at4(0, 2, 1, 2));
}

TEST(Im2col, ZeroPadding) {
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  ConvGeometry g{1, 2, 2, 3, 1, 1};
  Tensor cols = im2col(x, g);
  EXPECT_EQ(cols.shape(), (Shape{4, 9}));
  // Output location (0,0): top-left patch has the corner value at its
  // center-bottom-right region; the top-left patch element is padding.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);   // padded
  EXPECT_FLOAT_EQ(cols.at(0, 4), 1.0f);   // center = x(0,0)
  EXPECT_FLOAT_EQ(cols.at(0, 8), 4.0f);   // bottom-right = x(1,1)
}

TEST(Col2im, AdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property that
  // makes the convolution backward pass correct.
  Rng rng(4);
  const ConvGeometry g{2, 5, 5, 3, 2, 1};
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  Tensor cols = im2col(x, g);
  Tensor y = Tensor::randn(cols.shape(), rng);
  Tensor back = col2im(y, 2, g);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i)
    lhs += static_cast<double>(cols[i]) * y[i];
  for (std::size_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(RowsNchw, RoundTrip) {
  Rng rng(5);
  Tensor t = Tensor::randn({2, 3, 4, 5}, rng);
  Tensor rows = nchw_to_rows(t);
  EXPECT_EQ(rows.shape(), (Shape{2 * 4 * 5, 3}));
  Tensor back = rows_to_nchw(rows, 2, 3, 4, 5);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], back[i]);
}

TEST(MaxPool, ForwardValues) {
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  std::vector<std::size_t> argmax;
  Tensor y = maxpool2d(x, 2, 2, argmax);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_EQ(argmax[0], 1u);
}

TEST(MaxPool, BackwardScattersToArgmax) {
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  std::vector<std::size_t> argmax;
  Tensor y = maxpool2d(x, 2, 2, argmax);
  Tensor gy(y.shape(), 1.0f);
  Tensor gx = maxpool2d_backward(gy, x.shape(), argmax);
  // Max of each 2×2 window is its bottom-right element.
  EXPECT_FLOAT_EQ(gx[5], 1.0f);
  EXPECT_FLOAT_EQ(gx[7], 1.0f);
  EXPECT_FLOAT_EQ(gx[13], 1.0f);
  EXPECT_FLOAT_EQ(gx[15], 1.0f);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx.sum(), 4.0f);
}

TEST(MaxPool, OverlappingWindows) {
  Tensor x({1, 1, 3, 3});
  x.at4(0, 0, 1, 1) = 10.0f;  // center wins every window
  std::vector<std::size_t> argmax;
  Tensor y = maxpool2d(x, 2, 1, argmax);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y[i], 10.0f);
  Tensor gy(y.shape(), 1.0f);
  Tensor gx = maxpool2d_backward(gy, x.shape(), argmax);
  EXPECT_FLOAT_EQ(gx.at4(0, 0, 1, 1), 4.0f);  // all four windows accumulate
}

TEST(MatmulProperty, ZeroSkipsDoNotChangeResult) {
  // The GEMM kernels skip zero multipliers; a sparse A must give the same
  // result as a dense reference computed elementwise.
  Rng rng(6);
  Tensor a = Tensor::randn({8, 8}, rng);
  for (std::size_t i = 0; i < a.numel(); i += 3) a[i] = 0.0f;
  Tensor b = Tensor::randn({8, 8}, rng);
  Tensor c = matmul(a, b);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 8; ++k)
        acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-4);
    }
}

// ---- Blocked GEMM vs the pre-blocking kernels -----------------------------

// Serial copies of the exact pre-blocking loop bodies (i-k-j with zero skip
// for matmul / matmul_tn, 4-wide j-register blocking without skip for
// matmul_nt). Deterministic mode must reproduce their results bit for bit.

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor naive_matmul_tn(const Tensor& a, const Tensor& b) {
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = a.data()[kk * m + i];
      if (av == 0.0f) continue;
      const float* brow = b.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor naive_matmul_nt(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b.data() + j * k;
      const float* b1 = b.data() + (j + 1) * k;
      const float* b2 = b.data() + (j + 2) * k;
      const float* b3 = b.data() + (j + 3) * k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        acc0 += av * b0[kk];
        acc1 += av * b1[kk];
        acc2 += av * b2[kk];
        acc3 += av * b3[kk];
      }
      crow[j] = acc0;
      crow[j + 1] = acc1;
      crow[j + 2] = acc2;
      crow[j + 3] = acc3;
    }
    for (; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
  return c;
}

/// Restores the process reduction mode (tests may run under
/// REFIT_FAST_REDUCE=1, so never assume the entry mode).
struct ReductionModeGuard {
  ReductionMode prev = reduction_mode();
  ~ReductionModeGuard() { set_reduction_mode(prev); }
};

struct PoolGuard {
  ~PoolGuard() { ThreadPool::set_global_threads(1); }
};

bool same_bits(const Tensor& x, const Tensor& y) {
  return x.shape() == y.shape() &&
         std::memcmp(x.data(), y.data(), x.numel() * sizeof(float)) == 0;
}

/// Random matrix with zeros sprinkled in (every 5th element) so the
/// zero-skip path is exercised.
Tensor sparse_randn(Shape shape, Rng& rng) {
  Tensor t = Tensor::randn(std::move(shape), rng);
  for (std::size_t i = 0; i < t.numel(); i += 5) t[i] = 0.0f;
  return t;
}

// Odd shapes: non-multiples of the kMR/kNR register block and the row
// block, degenerate m=1 / k=1 / n=1, and exact-multiple controls.
struct GemmShape {
  std::size_t m, k, n;
};
const GemmShape kOddShapes[] = {
    {1, 1, 1},    {1, 7, 1},   {3, 5, 2},    {4, 8, 8},    {5, 9, 11},
    {1, 64, 9},   {31, 1, 8},  {33, 17, 31}, {64, 64, 64}, {127, 129, 63},
};

TEST(GemmBlocked, DeterministicBitIdenticalToNaiveAcrossShapes) {
  ReductionModeGuard mode_guard;
  PoolGuard pool_guard;
  set_reduction_mode(ReductionMode::kDeterministic);
  Rng rng(11);
  for (const auto& sh : kOddShapes) {
    const Tensor a = sparse_randn({sh.m, sh.k}, rng);
    const Tensor b = sparse_randn({sh.k, sh.n}, rng);
    const Tensor at = transpose(a);   // [k, m] for matmul_tn
    const Tensor bt = transpose(b);   // [n, k] for matmul_nt
    const Tensor ref = naive_matmul(a, b);
    const Tensor ref_tn = naive_matmul_tn(at, b);
    const Tensor ref_nt = naive_matmul_nt(a, bt);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      ThreadPool::set_global_threads(threads);
      EXPECT_TRUE(same_bits(matmul(a, b), ref))
          << sh.m << "x" << sh.k << "x" << sh.n << " @" << threads;
      EXPECT_TRUE(same_bits(matmul_tn(at, b), ref_tn))
          << "tn " << sh.m << "x" << sh.k << "x" << sh.n << " @" << threads;
      EXPECT_TRUE(same_bits(matmul_nt(a, bt), ref_nt))
          << "nt " << sh.m << "x" << sh.k << "x" << sh.n << " @" << threads;
    }
  }
}

TEST(GemmBlocked, FastModeWithinRelativeTolerance) {
  ReductionModeGuard mode_guard;
  Rng rng(12);
  for (const auto& sh : kOddShapes) {
    const Tensor a = Tensor::randn({sh.m, sh.k}, rng);
    const Tensor b = Tensor::randn({sh.k, sh.n}, rng);
    set_reduction_mode(ReductionMode::kDeterministic);
    const Tensor ref = matmul(a, b);
    set_reduction_mode(ReductionMode::kFast);
    const Tensor fast = matmul(a, b);
    ASSERT_EQ(fast.shape(), ref.shape());
    for (std::size_t i = 0; i < ref.numel(); ++i) {
      const double tol =
          1e-4 * std::max(1.0, static_cast<double>(std::fabs(ref[i])));
      EXPECT_NEAR(fast[i], ref[i], tol) << "element " << i;
    }
  }
}

TEST(GemmBlocked, ReductionModeSetterOverrides) {
  ReductionModeGuard mode_guard;
  set_reduction_mode(ReductionMode::kFast);
  EXPECT_EQ(reduction_mode(), ReductionMode::kFast);
  set_reduction_mode(ReductionMode::kDeterministic);
  EXPECT_EQ(reduction_mode(), ReductionMode::kDeterministic);
}

TEST(GemmBlocked, PackedIndexMatchesPackB) {
  // packed_index is the scatter contract used by the fused faulty-forward
  // producer; it must agree with pack_b's layout element for element.
  Rng rng(13);
  const std::size_t k = 9, n = 19;
  const Tensor b = Tensor::randn({k, n}, rng);
  std::vector<float> bp(gemm::packed_size(k, n), -1.0f);
  gemm::pack_b(b.data(), k, n, bp.data());
  for (std::size_t kk = 0; kk < k; ++kk)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(bp[gemm::packed_index(k, kk, j)], b.at(kk, j));
}

}  // namespace
}  // namespace refit
