// Small-scale integration tests pinning the paper's headline *mechanism*
// claims (the full-scale numbers live in bench/ + EXPERIMENTS.md):
//  - threshold training cuts device writes by a large factor vs the
//    original full-array update scheme,
//  - on-line training tolerates soft faults better than off-line mapping,
//  - the original scheme's full-array writes are what wear the chip.
#include <gtest/gtest.h>

#include <sstream>

#include "core/ft_trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "nn/network_io.hpp"

namespace refit {
namespace {

Dataset tiny_mnist() {
  SyntheticConfig cfg;
  cfg.train_size = 512;
  cfg.test_size = 256;
  cfg.background_clip = 0.4f;
  Rng rng(1);
  return make_synthetic_mnist(cfg, rng);
}

TEST(PaperClaims, ThresholdCutsWritesByLargeFactor) {
  const Dataset data = tiny_mnist();
  auto writes = [&](bool threshold) {
    RcsConfig rc;
    rc.tile_rows = rc.tile_cols = 64;
    rc.inject_fabrication = false;
    RcsSystem sys(rc, Rng(42));
    Rng rng(2);
    Network net = make_mlp({784, 16, 10}, sys.factory(), rng);
    FtFlowConfig cfg;
    cfg.iterations = 200;
    cfg.batch_size = 1;  // per-sample on-line updates, as in the paper
    cfg.lr = LrSchedule{0.02, 1.0, 0, 1e-4};
    cfg.eval_period = 100;
    cfg.eval_samples = 128;
    cfg.threshold_training = threshold;
    return FtTrainer(cfg).train(net, &sys, data, Rng(3)).updates_written;
  };
  const std::uint64_t original = writes(false);
  const std::uint64_t thresholded = writes(true);
  // Original = every weight, every iteration (full-array programming).
  EXPECT_EQ(original, 200u * (784u * 16 + 16 * 10));
  // Paper reports writes cut to ~6 %; demand at least 3× here (the tiny
  // MLP's δw distribution is the limiting factor).
  EXPECT_LT(thresholded * 3, original);
}

TEST(PaperClaims, OnlineTrainingBeatsOfflineMappingUnderSoftFaults) {
  const Dataset data = tiny_mnist();
  // Software-trained reference.
  Rng swr(4);
  Network sw = make_mlp({784, 24, 10}, software_store_factory(), swr);
  FtFlowConfig cfg;
  cfg.iterations = 400;
  cfg.batch_size = 8;
  cfg.lr = LrSchedule{0.05, 0.5, 200, 1e-4};
  cfg.eval_period = 200;
  cfg.eval_samples = 256;
  FtTrainer(cfg).train(sw, nullptr, data, Rng(5));
  std::stringstream ws;
  save_network_weights(sw, ws);

  // Heavy write variation + coarse quantization.
  RcsConfig rc;
  rc.tile_rows = rc.tile_cols = 64;
  rc.inject_fabrication = false;
  rc.levels = 4;
  rc.write_noise_sigma = 0.05;

  double offline = 0.0;
  {
    RcsSystem sys(rc, Rng(42));
    Rng rng(4);
    Network net = make_mlp({784, 24, 10}, sys.factory(), rng);
    std::stringstream rs(ws.str());
    load_network_weights(net, rs);
    offline = net.evaluate(data.test_images, data.test_labels);
  }
  double online = 0.0;
  {
    RcsSystem sys(rc, Rng(42));
    Rng rng(4);
    Network net = make_mlp({784, 24, 10}, sys.factory(), rng);
    online = FtTrainer(cfg).train(net, &sys, data, Rng(5)).peak_accuracy;
  }
  EXPECT_GT(online, offline + 0.05);
}

TEST(PaperClaims, OriginalSchemeWearsChipFasterThanThreshold) {
  const Dataset data = tiny_mnist();
  auto wearout = [&](bool threshold) {
    RcsConfig rc;
    rc.tile_rows = rc.tile_cols = 64;
    rc.inject_fabrication = false;
    rc.endurance = EnduranceModel::gaussian(120, 36);
    RcsSystem sys(rc, Rng(42));
    Rng rng(6);
    Network net = make_mlp({784, 16, 10}, sys.factory(), rng);
    FtFlowConfig cfg;
    cfg.iterations = 300;
    cfg.batch_size = 1;
    cfg.lr = LrSchedule{0.02, 1.0, 0, 1e-4};
    cfg.eval_period = 150;
    cfg.eval_samples = 128;
    cfg.threshold_training = threshold;
    return FtTrainer(cfg).train(net, &sys, data, Rng(7))
        .final_fault_fraction;
  };
  const double original = wearout(false);
  const double thresholded = wearout(true);
  // 300 full-array writes against a ~120-write budget kill nearly all
  // cells; threshold training keeps most alive.
  EXPECT_GT(original, 0.9);
  EXPECT_LT(thresholded, 0.5 * original);
}

}  // namespace
}  // namespace refit
