// Tests for the March-style per-cell baseline detector.
#include "detect/march_test.hpp"

#include <gtest/gtest.h>

#include "detect/quiescent_detector.hpp"
#include "rram/faults.hpp"

namespace refit {
namespace {

Crossbar make_xbar(std::size_t n, std::uint64_t seed,
                   double noise = 0.01) {
  CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.levels = 8;
  cfg.write_noise_sigma = noise;
  return Crossbar(cfg, EnduranceModel::unlimited(), Rng(seed));
}

TEST(MarchTest, PerfectAccuracyOnStuckCells) {
  Rng rng(1);
  Crossbar xb = make_xbar(32, 2);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  FaultInjectionConfig fc;
  fc.fraction = 0.10;
  inject_fabrication_faults(xb, fc, rng);
  const MarchOutcome out = march_test(xb);
  const ConfusionCounts cc = evaluate_detection(xb, out.predicted);
  EXPECT_DOUBLE_EQ(cc.recall(), 1.0);
  EXPECT_DOUBLE_EQ(cc.precision(), 1.0);
}

TEST(MarchTest, ClassifiesFaultKinds) {
  Rng rng(3);
  Crossbar xb = make_xbar(8, 4);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  xb.force_fault(1, 1, FaultKind::kStuckAt0);
  xb.force_fault(2, 2, FaultKind::kStuckAt1);
  const MarchOutcome out = march_test(xb);
  EXPECT_EQ(out.predicted.at(1, 1), FaultKind::kStuckAt0);
  EXPECT_EQ(out.predicted.at(2, 2), FaultKind::kStuckAt1);
}

TEST(MarchTest, RestoresContent) {
  Rng rng(5);
  Crossbar xb = make_xbar(16, 6);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  std::vector<int> before;
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c) before.push_back(xb.read_level(r, c));
  march_test(xb);
  std::size_t i = 0;
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c)
      EXPECT_EQ(xb.read_level(r, c), before[i++]);
}

TEST(MarchTest, CyclesScaleQuadratically) {
  // The paper's core argument against March-style on-line testing: test
  // time grows with the cell count, not the row count.
  Rng rng(7);
  Crossbar a = make_xbar(16, 8);
  Crossbar b = make_xbar(32, 9);
  randomize_crossbar_content(a, 0.3, 0.2, rng);
  randomize_crossbar_content(b, 0.3, 0.2, rng);
  const MarchOutcome oa = march_test(a);
  const MarchOutcome ob = march_test(b);
  const double ratio = static_cast<double>(ob.cycles) /
                       static_cast<double>(oa.cycles);
  EXPECT_NEAR(ratio, 4.0, 0.4);  // 4× the cells → ~4× the cycles
}

TEST(MarchTest, QuiescentMethodIsFarCheaper) {
  Rng rng(10);
  Crossbar a = make_xbar(64, 11);
  Crossbar b = make_xbar(64, 11);
  Rng rng2(10);
  randomize_crossbar_content(a, 0.3, 0.2, rng);
  randomize_crossbar_content(b, 0.3, 0.2, rng2);
  FaultInjectionConfig fc;
  fc.fraction = 0.10;
  Rng frng(12), frng2(12);
  inject_fabrication_faults(a, fc, frng);
  inject_fabrication_faults(b, fc, frng2);

  const MarchOutcome march = march_test(a);
  DetectorConfig dc;
  dc.test_rows_per_cycle = 8;
  const DetectionOutcome qvc = QuiescentVoltageDetector(dc).detect(b);
  EXPECT_GT(march.cycles, 20 * qvc.cycles);
  EXPECT_GT(march.device_writes, qvc.device_writes);
}

TEST(MarchTest, WearsTestedCells) {
  // March testing consumes endurance on every healthy cell — the hidden
  // cost of frequent traditional testing.
  Crossbar xb = make_xbar(8, 13);
  Rng rng(14);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  const std::uint64_t before = xb.total_writes();
  const MarchOutcome out = march_test(xb);
  EXPECT_EQ(out.device_writes, xb.total_writes() - before);
  EXPECT_GE(out.device_writes, 2u * 64);  // ≥2 pulses per healthy cell
}

TEST(MarchTest, NoRestoreSavesCycles) {
  Crossbar a = make_xbar(16, 15);
  Crossbar b = make_xbar(16, 15);
  Rng r1(16), r2(16);
  randomize_crossbar_content(a, 0.3, 0.2, r1);
  randomize_crossbar_content(b, 0.3, 0.2, r2);
  MarchConfig with{};
  MarchConfig without{};
  without.restore = false;
  const MarchOutcome ow = march_test(a, with);
  const MarchOutcome on = march_test(b, without);
  EXPECT_LT(on.cycles, ow.cycles);
}

}  // namespace
}  // namespace refit
