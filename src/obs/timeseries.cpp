// Ring-buffered periodic sampler behind obs/timeseries.hpp: snapshots
// the MetricsRegistry through the Clock seam so JSONL output is
// byte-stable at any thread count under ManualClock.
#include "obs/timeseries.hpp"

#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>
#include <ostream>
#include <utility>

#include "obs/clock.hpp"

namespace refit::obs {

#if REFIT_OBS_ENABLED

namespace {

/// %.12g, matching the metrics writers so goldens share one format.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

bool excluded(const std::string& name,
              const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (name.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

}  // namespace

struct TimeseriesRecorder::Impl {
  std::atomic<bool> enabled{false};
  mutable std::mutex mu;
  TimeseriesConfig config;
  std::deque<TimeseriesSample> ring;
  std::uint64_t next_seq = 0;
  std::uint64_t last_sample_ns = 0;
  bool have_sample = false;

  // Sampling is cold (once per engine iteration); a mutex is fine here —
  // the lock-free discipline only matters on metric/event hot paths.
  void record(std::uint64_t iteration, std::uint64_t t_ns) {
    TimeseriesSample sample;
    sample.t_ns = t_ns;
    sample.iteration = iteration;
    for (const MetricSnapshot& s : MetricsRegistry::instance().snapshot()) {
      if (excluded(s.name, config.exclude_prefixes)) continue;
      TimeseriesValue v;
      v.name = s.name;
      v.type = s.type;
      v.value = s.value;
      v.count = s.count;
      if (s.type == MetricType::kHistogram) {
        v.p50 = s.percentile(0.50);
        v.p95 = s.percentile(0.95);
        v.p99 = s.percentile(0.99);
      }
      sample.values.push_back(std::move(v));
    }
    std::lock_guard<std::mutex> lk(mu);
    sample.seq = next_seq++;
    last_sample_ns = t_ns;
    have_sample = true;
    ring.push_back(std::move(sample));
    while (ring.size() > config.capacity) ring.pop_front();
  }
};

TimeseriesRecorder::TimeseriesRecorder() : impl_(new Impl) {}

TimeseriesRecorder& TimeseriesRecorder::global() {
  static TimeseriesRecorder* recorder = new TimeseriesRecorder();  // leaked
  return *recorder;
}

void TimeseriesRecorder::configure(TimeseriesConfig config) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (config.capacity == 0) config.capacity = 1;
  impl_->config = std::move(config);
}

void TimeseriesRecorder::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

bool TimeseriesRecorder::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void TimeseriesRecorder::poll(std::uint64_t iteration) {
  if (!enabled()) return;  // no clock read when disabled
  const std::uint64_t t = now_ns();
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (impl_->have_sample && impl_->config.period_ns > 0 &&
        t - impl_->last_sample_ns < impl_->config.period_ns) {
      return;
    }
  }
  impl_->record(iteration, t);
}

void TimeseriesRecorder::sample_now(std::uint64_t iteration) {
  if (!enabled()) return;
  impl_->record(iteration, now_ns());
}

std::uint64_t TimeseriesRecorder::sampled() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->next_seq;
}

std::vector<TimeseriesSample> TimeseriesRecorder::samples() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return {impl_->ring.begin(), impl_->ring.end()};
}

void TimeseriesRecorder::write_jsonl(std::ostream& os) const {
  for (const TimeseriesSample& sample : samples()) {
    std::string line = "{\"seq\":";
    line += std::to_string(sample.seq);
    line += ",\"t_ns\":";
    line += std::to_string(sample.t_ns);
    line += ",\"iteration\":";
    line += std::to_string(sample.iteration);
    line += ",\"metrics\":{";
    bool first = true;
    for (const TimeseriesValue& v : sample.values) {
      if (!first) line += ',';
      first = false;
      line += '"';
      line += v.name;  // metric names are identifier-like, no escaping
      line += "\":{";
      switch (v.type) {
        case MetricType::kCounter:
          line += "\"count\":";
          line += std::to_string(v.count);
          break;
        case MetricType::kGauge:
          line += "\"value\":";
          append_double(line, v.value);
          break;
        case MetricType::kHistogram:
          line += "\"count\":";
          line += std::to_string(v.count);
          line += ",\"sum\":";
          append_double(line, v.value);
          line += ",\"p50\":";
          append_double(line, v.p50);
          line += ",\"p95\":";
          append_double(line, v.p95);
          line += ",\"p99\":";
          append_double(line, v.p99);
          break;
      }
      line += '}';
    }
    line += "}}\n";
    os << line;
  }
}

void TimeseriesRecorder::reset_for_tests() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->ring.clear();
  impl_->next_seq = 0;
  impl_->last_sample_ns = 0;
  impl_->have_sample = false;
}

#else  // !REFIT_OBS_ENABLED

void TimeseriesRecorder::write_jsonl(std::ostream&) const {}

#endif  // REFIT_OBS_ENABLED

}  // namespace refit::obs
