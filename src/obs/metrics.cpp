// MetricsRegistry implementation (see metrics.hpp): cold-path
// registration, deterministic snapshots, JSON/CSV serialization.
#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>

namespace refit::obs {

// Defined outside the REFIT_OBS gate: a pure function of snapshot data,
// used by both the writers here and the timeseries sampler.
double MetricSnapshot::percentile(double q) const {
  if (type != MetricType::kHistogram || count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t prev = cum;
    cum += buckets[b];
    if (buckets[b] == 0 || static_cast<double>(cum) < target) continue;
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const double hi = b < bounds.size()
                          ? bounds[b]
                          : (bounds.empty() ? 0.0 : bounds.back());
    double frac = (target - static_cast<double>(prev)) /
                  static_cast<double>(buckets[b]);
    frac = std::min(1.0, std::max(0.0, frac));
    return lo + (hi - lo) * frac;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

#if REFIT_OBS_ENABLED

namespace {

/// Shortest deterministic decimal form for snapshot output.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

}  // namespace

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::deque<detail::MetricCell> cells;  // deque: stable cell addresses
  std::map<std::string, detail::MetricCell*> by_name;

  detail::MetricCell* find_or_create(const std::string& name,
                                     const std::string& unit, MetricType type,
                                     std::vector<double> bounds) {
    std::lock_guard<std::mutex> lk(mu);
    auto it = by_name.find(name);
    if (it != by_name.end()) {
      assert(it->second->type == type && "metric re-registered as a new type");
      return it->second;
    }
    cells.emplace_back();
    detail::MetricCell* cell = &cells.back();
    cell->name = name;
    cell->unit = unit;
    cell->type = type;
    if (type == MetricType::kHistogram) {
      std::sort(bounds.begin(), bounds.end());
      cell->bounds = std::move(bounds);
      cell->buckets =
          std::make_unique<std::atomic<std::uint64_t>[]>(cell->bounds.size() +
                                                         1);
      for (std::size_t b = 0; b <= cell->bounds.size(); ++b)
        cell->buckets[b].store(0, std::memory_order_relaxed);
    }
    by_name.emplace(name, cell);
    return cell;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: worker threads may still record while statics are
  // being torn down, so the registry must outlive every other static.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter MetricsRegistry::counter(const std::string& name,
                                 const std::string& unit) {
  return Counter(
      impl_->find_or_create(name, unit, MetricType::kCounter, {}));
}

Gauge MetricsRegistry::gauge(const std::string& name, const std::string& unit) {
  return Gauge(impl_->find_or_create(name, unit, MetricType::kGauge, {}));
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds,
                                     const std::string& unit) {
  return Histogram(impl_->find_or_create(name, unit, MetricType::kHistogram,
                                         std::move(bounds)));
}

void MetricsRegistry::set_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    out.reserve(impl_->cells.size());
    for (const detail::MetricCell& cell : impl_->cells) {
      MetricSnapshot s;
      s.name = cell.name;
      s.type = cell.type;
      s.unit = cell.unit;
      s.count = cell.count.load(std::memory_order_relaxed);
      switch (cell.type) {
        case MetricType::kCounter:
          s.value = static_cast<double>(s.count);
          break;
        case MetricType::kGauge:
          s.value = std::bit_cast<double>(
              cell.bits.load(std::memory_order_relaxed));
          s.count = 0;
          break;
        case MetricType::kHistogram:
          s.value = std::bit_cast<double>(
              cell.bits.load(std::memory_order_relaxed));
          s.bounds = cell.bounds;
          s.buckets.resize(cell.bounds.size() + 1);
          for (std::size_t b = 0; b < s.buckets.size(); ++b)
            s.buckets[b] = cell.buckets[b].load(std::memory_order_relaxed);
          break;
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::reset_for_tests() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (detail::MetricCell& cell : impl_->cells) {
    cell.count.store(0, std::memory_order_relaxed);
    cell.bits.store(0, std::memory_order_relaxed);
    for (std::size_t b = 0; b < cell.bounds.size() + 1 && cell.buckets; ++b)
      cell.buckets[b].store(0, std::memory_order_relaxed);
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const std::vector<MetricSnapshot> snap = snapshot();
  os << "{\"metrics\":[";
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const MetricSnapshot& s = snap[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "{\"name\":\"" << s.name << "\",\"type\":\"" << type_name(s.type)
       << "\",\"unit\":\"" << s.unit << "\"";
    switch (s.type) {
      case MetricType::kCounter:
        os << ",\"value\":" << s.count;
        break;
      case MetricType::kGauge:
        os << ",\"value\":" << fmt_double(s.value);
        break;
      case MetricType::kHistogram: {
        os << ",\"count\":" << s.count << ",\"sum\":" << fmt_double(s.value)
           << ",\"p50\":" << fmt_double(s.percentile(0.50))
           << ",\"p95\":" << fmt_double(s.percentile(0.95))
           << ",\"p99\":" << fmt_double(s.percentile(0.99))
           << ",\"bounds\":[";
        for (std::size_t b = 0; b < s.bounds.size(); ++b)
          os << (b ? "," : "") << fmt_double(s.bounds[b]);
        os << "],\"buckets\":[";
        for (std::size_t b = 0; b < s.buckets.size(); ++b)
          os << (b ? "," : "") << s.buckets[b];
        os << "]";
        break;
      }
    }
    os << "}";
  }
  os << (snap.empty() ? "]}" : "\n]}") << "\n";
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "name,type,unit,value,count,p50,p95,p99,buckets\n";
  for (const MetricSnapshot& s : snapshot()) {
    os << s.name << "," << type_name(s.type) << "," << s.unit << ",";
    if (s.type == MetricType::kCounter)
      os << s.count;
    else
      os << fmt_double(s.value);
    os << "," << s.count << ",";
    if (s.type == MetricType::kHistogram) {
      os << fmt_double(s.percentile(0.50)) << ","
         << fmt_double(s.percentile(0.95)) << ","
         << fmt_double(s.percentile(0.99)) << ",";
    } else {
      os << ",,,";
    }
    for (std::size_t b = 0; b < s.buckets.size(); ++b)
      os << (b ? ";" : "") << s.buckets[b];
    os << "\n";
  }
}

#else  // !REFIT_OBS_ENABLED

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"metrics\":[]}\n";
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "name,type,unit,value,count,p50,p95,p99,buckets\n";
}

#endif  // REFIT_OBS_ENABLED

}  // namespace refit::obs
