// Span tracer emitting Chrome trace-event JSON, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// Record path: each thread appends completed spans to its own
// thread-local buffer — the only lock is one registry mutex acquisition
// per *thread*, not per event, so parallel_for bodies can record without
// contention. Buffers are merged (live threads flushed, exited threads'
// events retired) at write time, and the merged stream is sorted by
// (timestamp, duration desc, tid, name) so output is deterministic.
//
// Timestamps come from the obs::Clock seam (clock.hpp); tests inject a
// ManualClock to get byte-stable golden traces. The tracer is runtime-
// disabled by default: a TraceSpan constructed while disabled performs no
// clock read and records nothing. Compile-time REFIT_OBS=OFF stubs the
// whole surface out.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef REFIT_OBS_ENABLED
#define REFIT_OBS_ENABLED 1
#endif

namespace refit::obs {

/// One completed ("ph":"X") span.
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
};

#if REFIT_OBS_ENABLED

class Tracer {
 public:
  static Tracer& global();

  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

  /// Record a completed span measured by the caller (ObsObserver's phase
  /// begin/end pairs use this; most call sites want TraceSpan instead).
  void emit_complete(const char* name, const char* category,
                     std::uint64_t ts_ns, std::uint64_t dur_ns);

  /// Name the calling thread's trace track. Pool workers pass their lane
  /// index; unnamed threads get sequential ids (main thread first → 0).
  static void set_thread_tid(std::uint32_t tid);

  /// Merge every thread's buffer into one sorted event list. Caller must
  /// ensure no thread is concurrently recording (i.e. between, not
  /// inside, parallel_for calls).
  [[nodiscard]] std::vector<TraceEvent> collect() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]}; ts/dur in
  /// microseconds with fixed 3-decimal formatting (byte-deterministic).
  void write_chrome_json(std::ostream& os) const;

  /// Drop all recorded events (tests). Same quiescence contract as
  /// collect().
  void reset();

 private:
  Tracer() = default;
  ~Tracer() = delete;  // leaked singleton — thread buffers retire into it
};

/// RAII span on the global tracer. Decides at construction: when tracing
/// is disabled it never reads the clock and the destructor is a no-op.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "");
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr → disabled at construction
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

#else  // !REFIT_OBS_ENABLED — inert stubs with the identical surface.

class Tracer {
 public:
  static Tracer& global() {
    static Tracer tracer;
    return tracer;
  }
  void set_enabled(bool) {}
  [[nodiscard]] bool enabled() const { return false; }
  void emit_complete(const char*, const char*, std::uint64_t, std::uint64_t) {}
  static void set_thread_tid(std::uint32_t) {}
  [[nodiscard]] std::vector<TraceEvent> collect() const { return {}; }
  void write_chrome_json(std::ostream& os) const;
  void reset() {}
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*, const char* = "") {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // REFIT_OBS_ENABLED

}  // namespace refit::obs
