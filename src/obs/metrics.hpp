// Process-global metrics: monotonic counters, gauges, and fixed-bucket
// histograms behind a MetricsRegistry.
//
// Design: call sites pre-register a cheap handle once (typically a
// function-local static) and then hit it from any thread:
//
//   static obs::Counter writes =
//       obs::MetricsRegistry::instance().counter("store.writes", "writes");
//   writes.add();
//
// There are no locks on the increment path — handles point at cells whose
// hot fields are relaxed std::atomic's, and all aggregation happens at
// snapshot() time. Cells live in a std::deque so handle pointers stay
// valid forever (metrics are never unregistered). snapshot() returns
// entries sorted by metric name, which makes the JSON/CSV output
// deterministic for golden tests.
//
// Cost model: compile-time gate REFIT_OBS (default ON) stubs the whole
// layer out; at runtime the layer starts disabled and every handle
// operation is a single relaxed load until set_enabled(true). The
// registry is intentionally leaked (never destroyed) so instrumented
// threads may record during process teardown.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#ifndef REFIT_OBS_ENABLED
#define REFIT_OBS_ENABLED 1
#endif

namespace refit::obs {

enum class MetricType { kCounter, kGauge, kHistogram };

/// One metric's aggregated state at snapshot time.
struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::string unit;
  double value = 0.0;       // counter total / gauge value / histogram sum
  std::uint64_t count = 0;  // counter total / histogram sample count
  std::vector<double> bounds;          // histogram upper bounds (finite)
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (last = overflow)

  /// Bucket-interpolated percentile estimate for histograms: walks the
  /// cumulative counts to the bucket holding rank q*count and
  /// interpolates linearly inside it (the overflow bucket clamps to the
  /// last finite bound). Deterministic — a pure function of the snapshot.
  /// Returns 0 for empty histograms and non-histogram types.
  [[nodiscard]] double percentile(double q) const;
};

#if REFIT_OBS_ENABLED

namespace detail {

/// Storage behind one handle. Counters use `count`; gauges pack the value
/// into `bits` as double bits; histograms use the bucket array plus
/// `bits` (sum, CAS-accumulated) and `count` (samples).
struct MetricCell {
  std::string name;
  std::string unit;
  MetricType type = MetricType::kCounter;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> bits{0};
  std::vector<double> bounds;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
};

/// Defined in metrics.cpp; relaxed — this is the per-operation gate.
extern std::atomic<bool> g_metrics_enabled;

inline bool enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

}  // namespace detail

/// True when the metrics layer is runtime-enabled (cheap relaxed load;
/// callers may use it to skip clock reads feeding a counter).
inline bool metrics_enabled() { return detail::enabled(); }

class MetricsRegistry;

/// Monotonic counter handle. Default-constructed handles are inert.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) {
    if (cell_ == nullptr || !detail::enabled()) return;
    cell_->count.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::MetricCell* cell) : cell_(cell) {}
  detail::MetricCell* cell_ = nullptr;
};

/// Last-value gauge handle.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (cell_ == nullptr || !detail::enabled()) return;
    cell_->bits.store(std::bit_cast<std::uint64_t>(v),
                      std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::MetricCell* cell) : cell_(cell) {}
  detail::MetricCell* cell_ = nullptr;
};

/// Fixed-bucket histogram handle: sample v lands in the first bucket with
/// v <= bound, or the trailing overflow bucket.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) {
    if (cell_ == nullptr || !detail::enabled()) return;
    std::size_t b = 0;
    while (b < cell_->bounds.size() && v > cell_->bounds[b]) ++b;
    cell_->buckets[b].fetch_add(1, std::memory_order_relaxed);
    cell_->count.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t old = cell_->bits.load(std::memory_order_relaxed);
    while (!cell_->bits.compare_exchange_weak(
        old, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + v),
        std::memory_order_relaxed)) {
    }
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::MetricCell* cell) : cell_(cell) {}
  detail::MetricCell* cell_ = nullptr;
};

/// The process-global registry. Registration (cold path) takes a mutex
/// and is idempotent by name: re-registering returns the existing cell.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter counter(const std::string& name, const std::string& unit = "");
  Gauge gauge(const std::string& name, const std::string& unit = "");
  Histogram histogram(const std::string& name, std::vector<double> bounds,
                      const std::string& unit = "");

  /// Runtime gate for every handle operation (starts disabled).
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const { return detail::enabled(); }

  /// All registered metrics, sorted by name (deterministic).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Snapshot serializers: {"metrics": [...]} JSON / one-row-per-metric CSV.
  void write_json(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  /// Zero every cell's recorded values; registrations and handles survive.
  void reset_for_tests();

 private:
  MetricsRegistry();
  ~MetricsRegistry() = delete;  // leaked singleton — see the header comment
  struct Impl;
  Impl* impl_;
};

#else  // !REFIT_OBS_ENABLED — inert stubs with the identical surface.

inline bool metrics_enabled() { return false; }

class MetricsRegistry;

class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t = 1) {}
};

class Gauge {
 public:
  Gauge() = default;
  void set(double) {}
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double) {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter counter(const std::string&, const std::string& = "") { return {}; }
  Gauge gauge(const std::string&, const std::string& = "") { return {}; }
  Histogram histogram(const std::string&, std::vector<double>,
                      const std::string& = "") {
    return {};
  }
  void set_enabled(bool) {}
  [[nodiscard]] bool enabled() const { return false; }
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const { return {}; }
  void write_json(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
  void reset_for_tests() {}
};

#endif  // REFIT_OBS_ENABLED

}  // namespace refit::obs
