// Lock-free ring implementation behind the structured event log
// (obs/events.hpp), plus the failure-hook slot the flight recorder
// installs so REFIT_CHECK failures dump the event tail.
#include "obs/events.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <ostream>

#include "obs/clock.hpp"
#include "obs/failure_hook.hpp"

namespace refit::obs {

// ---------------------------------------------------------------------------
// Failure-hook slot (compiled in both REFIT_OBS halves — see failure_hook.hpp).

namespace {
std::atomic<FailureHook> g_failure_hook{nullptr};
}  // namespace

void set_failure_hook(FailureHook hook) {
  g_failure_hook.store(hook, std::memory_order_release);
}

void invoke_failure_hook() noexcept {
  FailureHook hook = g_failure_hook.load(std::memory_order_acquire);
  if (hook == nullptr) return;
  try {
    hook();
  } catch (...) {
    // Flight-recorder dumps are best-effort; never mask the CheckError.
  }
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kFaultDetected:
      return "fault-detected";
    case EventKind::kSoftClassified:
      return "soft-classified";
    case EventKind::kRemap:
      return "remap";
    case EventKind::kCheckpoint:
      return "checkpoint";
    case EventKind::kPhaseError:
      return "phase-error";
  }
  return "unknown";
}

const char* event_severity_name(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kInfo:
      return "info";
    case EventSeverity::kWarn:
      return "warn";
    case EventSeverity::kError:
      return "error";
  }
  return "unknown";
}

#if REFIT_OBS_ENABLED

namespace {

/// One ring slot. `published` holds seq + 1 once the payload stores are
/// visible (0 = empty/claimed); readers use it to skip slots that are
/// mid-write after a wraparound.
struct EventCell {
  std::atomic<std::uint64_t> published{0};
  std::uint64_t t_ns = 0;
  EventKind kind = EventKind::kFaultDetected;
  EventSeverity severity = EventSeverity::kInfo;
  const char* detail = nullptr;
  std::uint32_t nfields = 0;
  const char* keys[EventLog::kMaxFields] = {};
  double values[EventLog::kMaxFields] = {};
};

/// %.12g, matching the metrics writers so goldens share one format.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

}  // namespace

struct EventLog::Impl {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> next{0};
  EventCell ring[kCapacity];
};

EventLog::EventLog() : impl_(new Impl) {}

EventLog& EventLog::global() {
  static EventLog* log = new EventLog();  // leaked — see header
  return *log;
}

namespace {
void flight_recorder_hook() {
  std::cerr << "== refit flight recorder: last events before check failure ==\n";
  EventLog::global().dump_tail(std::cerr);
  std::cerr.flush();
}
}  // namespace

void EventLog::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
  set_failure_hook(on ? &flight_recorder_hook : nullptr);
}

bool EventLog::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void EventLog::emit(EventKind kind, EventSeverity severity, const char* detail,
                    std::initializer_list<EventField> fields) {
  if (!enabled()) return;
  const std::uint64_t seq =
      impl_->next.fetch_add(1, std::memory_order_relaxed);
  EventCell& cell = impl_->ring[seq % kCapacity];
  // Claim: mark the slot unpublished so a concurrent reader skips it
  // rather than seeing a mix of the old and new payload.
  cell.published.store(0, std::memory_order_release);
  cell.t_ns = now_ns();
  cell.kind = kind;
  cell.severity = severity;
  cell.detail = detail;
  std::uint32_t n = 0;
  for (const EventField& f : fields) {
    if (n == kMaxFields) break;
    cell.keys[n] = f.key;
    cell.values[n] = f.value;
    ++n;
  }
  cell.nfields = n;
  cell.published.store(seq + 1, std::memory_order_release);
}

std::uint64_t EventLog::emitted() const {
  return impl_->next.load(std::memory_order_relaxed);
}

std::vector<Event> EventLog::collect() const {
  const std::uint64_t next = impl_->next.load(std::memory_order_acquire);
  const std::uint64_t first = next > kCapacity ? next - kCapacity : 0;
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(next - first));
  for (std::uint64_t seq = first; seq < next; ++seq) {
    const EventCell& cell = impl_->ring[seq % kCapacity];
    if (cell.published.load(std::memory_order_acquire) != seq + 1) continue;
    Event ev;
    ev.seq = seq;
    ev.t_ns = cell.t_ns;
    ev.kind = cell.kind;
    ev.severity = cell.severity;
    if (cell.detail != nullptr) ev.detail = cell.detail;
    ev.fields.reserve(cell.nfields);
    for (std::uint32_t i = 0; i < cell.nfields; ++i) {
      ev.fields.emplace_back(cell.keys[i], cell.values[i]);
    }
    out.push_back(std::move(ev));
  }
  return out;
}

void EventLog::write_jsonl(std::ostream& os) const {
  for (const Event& ev : collect()) {
    std::string line = "{\"seq\":";
    line += std::to_string(ev.seq);
    line += ",\"t_ns\":";
    line += std::to_string(ev.t_ns);
    line += ",\"kind\":\"";
    line += event_kind_name(ev.kind);
    line += "\",\"severity\":\"";
    line += event_severity_name(ev.severity);
    line += '"';
    if (!ev.detail.empty()) {
      line += ",\"detail\":\"";
      line += ev.detail;  // details are static literals, no escaping needed
      line += '"';
    }
    line += ",\"fields\":{";
    bool first = true;
    for (const auto& [key, value] : ev.fields) {
      if (!first) line += ',';
      first = false;
      line += '"';
      line += key;
      line += "\":";
      append_double(line, value);
    }
    line += "}}\n";
    os << line;
  }
}

void EventLog::dump_tail(std::ostream& os, std::size_t n) const {
  std::vector<Event> events = collect();
  const std::size_t start = events.size() > n ? events.size() - n : 0;
  for (std::size_t i = start; i < events.size(); ++i) {
    const Event& ev = events[i];
    char head[96];
    std::snprintf(head, sizeof(head), "  [%6" PRIu64 "] t=%" PRIu64 "ns %-7s %s",
                  ev.seq, ev.t_ns, event_severity_name(ev.severity),
                  event_kind_name(ev.kind));
    os << head;
    if (!ev.detail.empty()) os << " (" << ev.detail << ")";
    for (const auto& [key, value] : ev.fields) {
      std::string kv = " ";
      kv += key;
      kv += '=';
      append_double(kv, value);
      os << kv;
    }
    os << '\n';
  }
}

void EventLog::reset_for_tests() {
  impl_->next.store(0, std::memory_order_relaxed);
  for (EventCell& cell : impl_->ring) {
    cell.published.store(0, std::memory_order_relaxed);
  }
}

#else  // !REFIT_OBS_ENABLED

void EventLog::write_jsonl(std::ostream&) const {}

void EventLog::dump_tail(std::ostream&, std::size_t) const {}

#endif  // REFIT_OBS_ENABLED

}  // namespace refit::obs
