// Tracer implementation (see trace.hpp): per-thread span buffers, the
// merge-and-sort collector, and the Chrome trace-event JSON writer.
#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <ostream>

#include "obs/clock.hpp"

namespace refit::obs {

#if REFIT_OBS_ENABLED

namespace {

struct ThreadBuf;

struct TracerState {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint32_t> next_tid{0};
  std::mutex mu;
  std::vector<ThreadBuf*> live;        // registered thread buffers
  std::vector<TraceEvent> retired;     // events from exited threads
};

// Leaked: thread buffers retire into it from thread-exit destructors,
// which can run during static teardown.
TracerState& state() {
  static TracerState* s = new TracerState();
  return *s;
}

// Explicit track id for the calling thread (pool workers set their lane
// before the buffer exists); -1 → assign from the counter on first use.
thread_local std::int64_t t_requested_tid = -1;

struct ThreadBuf {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;

  ThreadBuf() {
    TracerState& s = state();
    tid = t_requested_tid >= 0
              ? static_cast<std::uint32_t>(t_requested_tid)
              : s.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(s.mu);
    s.live.push_back(this);
  }

  ~ThreadBuf() {
    TracerState& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    s.retired.insert(s.retired.end(), events.begin(), events.end());
    s.live.erase(std::remove(s.live.begin(), s.live.end(), this),
                 s.live.end());
  }
};

ThreadBuf& local_buf() {
  thread_local ThreadBuf buf;
  return buf;
}

/// Minimal JSON string escaping for span names/categories.
void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
      continue;
    }
    os << c;
  }
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_enabled(bool on) {
  state().enabled.store(on, std::memory_order_relaxed);
}

bool Tracer::enabled() const {
  return state().enabled.load(std::memory_order_relaxed);
}

void Tracer::emit_complete(const char* name, const char* category,
                           std::uint64_t ts_ns, std::uint64_t dur_ns) {
  if (!enabled()) return;
  ThreadBuf& buf = local_buf();
  buf.events.push_back(TraceEvent{name, category, ts_ns, dur_ns, buf.tid});
}

void Tracer::set_thread_tid(std::uint32_t tid) {
  t_requested_tid = tid;
}

std::vector<TraceEvent> Tracer::collect() const {
  TracerState& s = state();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    out = s.retired;
    for (const ThreadBuf* buf : s.live)
      out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.name < b.name;
            });
  return out;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = collect();
  auto write_us = [&os](std::uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    os << buf;
  };
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    os << (i == 0 ? "\n" : ",\n") << "{\"name\":\"";
    write_escaped(os, ev.name);
    os << "\",\"cat\":\"";
    write_escaped(os, ev.category.empty() ? std::string("refit") : ev.category);
    os << "\",\"ph\":\"X\",\"ts\":";
    write_us(ev.ts_ns);
    os << ",\"dur\":";
    write_us(ev.dur_ns);
    os << ",\"pid\":1,\"tid\":" << ev.tid << "}";
  }
  os << (events.empty() ? "]}" : "\n]}") << "\n";
}

void Tracer::reset() {
  TracerState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.retired.clear();
  for (ThreadBuf* buf : s.live) buf->events.clear();
}

TraceSpan::TraceSpan(const char* name, const char* category) {
  if (!Tracer::global().enabled()) return;
  name_ = name;
  category_ = category;
  start_ns_ = now_ns();
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  Tracer::global().emit_complete(name_, category_, start_ns_,
                                 now_ns() - start_ns_);
}

#else  // !REFIT_OBS_ENABLED

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\":[]}\n";
}

#endif  // REFIT_OBS_ENABLED

}  // namespace refit::obs
