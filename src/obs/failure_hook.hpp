// Failure-hook seam between the check macros and the obs flight recorder.
//
// common/check.hpp calls invoke_failure_hook() on every REFIT_CHECK /
// REFIT_DCHECK failure, just before throwing. EventLog::set_enabled(true)
// installs a hook here that dumps the event-ring tail to stderr, so the
// last events before a broken invariant survive into the post-mortem.
// This header lives in obs (not common) because the module layering only
// permits common → obs includes, never the reverse.
//
// Available in both REFIT_OBS builds — with the layer compiled out the
// hook slot simply stays empty.
#pragma once

namespace refit::obs {

using FailureHook = void (*)();

/// Install a process-wide failure hook; nullptr clears it. The hook must
/// be async-signal-unsafe-tolerant only in the sense that it runs on the
/// failing thread right before the CheckError throw — keep it best-effort.
void set_failure_hook(FailureHook hook);

/// Run the installed hook, if any. Never throws.
void invoke_failure_hook() noexcept;

}  // namespace refit::obs
