// Time-series telemetry: a periodic sampler over MetricsRegistry driven
// through the obs Clock seam.
//
// The engine observer calls poll() once per iteration (clock-gated by
// TimeseriesConfig::period_ns) and sample_now() at the end of each
// detection round, so detection quality — precision/recall, accuracy,
// wear — is visible *as a function of training time*, not just as an
// end-of-run snapshot. Samples land in a bounded ring (the most recent
// `capacity` are kept) and flush as JSONL via write_jsonl().
//
// Determinism: sampling happens on the calling thread and reads the
// injected clock a fixed number of times per poll, so under ManualClock
// the JSONL output is byte-identical at any worker-thread count —
// provided thread-count-dependent metric *names* are excluded, which is
// why exclude_prefixes defaults to {"pool."} (pool.worker.<lane>.busy_ns
// changes name set with the lane count and measures the host, not the
// model). Golden-tested in tests/test_timeseries.cpp.
//
// Compile-time gate REFIT_OBS (default ON) stubs the layer out; at
// runtime the recorder starts disabled and poll() is a relaxed load until
// set_enabled(true). State is intentionally leaked (never destroyed).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

#ifndef REFIT_OBS_ENABLED
#define REFIT_OBS_ENABLED 1
#endif

namespace refit::obs {

struct TimeseriesConfig {
  /// Minimum nanoseconds between poll() samples; 0 samples every poll.
  std::uint64_t period_ns = 0;
  /// Ring bound: the most recent `capacity` samples are retained.
  std::size_t capacity = 4096;
  /// Metrics whose name starts with any of these prefixes are skipped.
  /// Default excludes the pool's per-lane host-performance counters,
  /// whose *names* depend on the worker-thread count.
  std::vector<std::string> exclude_prefixes = {"pool."};
};

/// One sampled metric, condensed: histograms keep count/sum/percentiles,
/// not the full bucket array (the end-of-run snapshot has those).
struct TimeseriesValue {
  std::string name;
  MetricType type = MetricType::kCounter;
  double value = 0.0;       // gauge value / histogram sum
  std::uint64_t count = 0;  // counter total / histogram sample count
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // histogram only
};

struct TimeseriesSample {
  std::uint64_t seq = 0;        // global sample index (counts dropped ones)
  std::uint64_t t_ns = 0;       // obs::now_ns() at sample time
  std::uint64_t iteration = 0;  // engine iteration passed by the caller
  std::vector<TimeseriesValue> values;  // name-sorted (registry order)
};

#if REFIT_OBS_ENABLED

class TimeseriesRecorder {
 public:
  static TimeseriesRecorder& global();

  /// Replace the sampling config. Call while no polls are live.
  void configure(TimeseriesConfig config);

  /// Runtime gate (starts disabled). A disabled poll() never reads the
  /// clock, so leaving the recorder off cannot perturb golden traces.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

  /// Clock-gated sample: records a snapshot if period_ns has elapsed
  /// since the last sample (always, when period_ns is 0).
  void poll(std::uint64_t iteration);

  /// Unconditional sample — used at detection-round boundaries.
  void sample_now(std::uint64_t iteration);

  /// Total samples ever taken (including any the ring has dropped).
  [[nodiscard]] std::uint64_t sampled() const;

  /// Retained samples in order.
  [[nodiscard]] std::vector<TimeseriesSample> samples() const;

  /// One JSON object per line, one line per sample.
  void write_jsonl(std::ostream& os) const;

  /// Drop retained samples, reset the sequence counter and period gate.
  void reset_for_tests();

 private:
  TimeseriesRecorder();
  ~TimeseriesRecorder() = delete;  // leaked singleton — see header comment
  struct Impl;
  Impl* impl_;
};

#else  // !REFIT_OBS_ENABLED — inert stub with the identical surface.

class TimeseriesRecorder {
 public:
  static TimeseriesRecorder& global() {
    static TimeseriesRecorder recorder;
    return recorder;
  }
  void configure(TimeseriesConfig) {}
  void set_enabled(bool) {}
  [[nodiscard]] bool enabled() const { return false; }
  void poll(std::uint64_t) {}
  void sample_now(std::uint64_t) {}
  [[nodiscard]] std::uint64_t sampled() const { return 0; }
  [[nodiscard]] std::vector<TimeseriesSample> samples() const { return {}; }
  void write_jsonl(std::ostream& os) const;
  void reset_for_tests() {}
};

#endif  // REFIT_OBS_ENABLED

}  // namespace refit::obs
