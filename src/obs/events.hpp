// Structured event log: a process-global, lock-free ring of typed events
// (fault-detected, soft-classified, remap, checkpoint, phase-error) with a
// severity and a small key/value payload.
//
// Design mirrors the metrics layer: emission is wait-free for writers (a
// single fetch_add claims a slot; payload keys must be string literals so
// a record is a handful of POD stores), the ring keeps the most recent
// kCapacity events, and all formatting happens at write_jsonl() time. The
// log doubles as a flight recorder: enabling it installs a hook (see
// common/check.hpp) that dumps the ring tail to stderr when a REFIT_CHECK
// or REFIT_DCHECK fails, so post-mortems see the last things the engine
// did before the invariant broke.
//
// Determinism: event sequence numbers come from the claim counter, so as
// long as emission sites are serial (engine phases run on the calling
// thread) the JSONL output is byte-identical at any worker-thread count.
// Like Tracer, collect()/write_jsonl() must not race live emit() calls —
// call them when the instrumented work is quiescent.
//
// Compile-time gate REFIT_OBS (default ON) stubs the layer out; at
// runtime the log starts disabled and emit() is a relaxed load until
// set_enabled(true). The state is intentionally leaked (never destroyed).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#ifndef REFIT_OBS_ENABLED
#define REFIT_OBS_ENABLED 1
#endif

namespace refit::obs {

enum class EventKind : std::uint8_t {
  kFaultDetected,
  kSoftClassified,
  kRemap,
  kCheckpoint,
  kPhaseError,
};

enum class EventSeverity : std::uint8_t { kInfo, kWarn, kError };

[[nodiscard]] const char* event_kind_name(EventKind kind);
[[nodiscard]] const char* event_severity_name(EventSeverity severity);

/// One payload entry. `key` must be a string literal (or otherwise outlive
/// the process) — the ring stores the pointer, not a copy.
struct EventField {
  const char* key;
  double value;
};

/// Snapshot-side representation returned by collect().
struct Event {
  std::uint64_t seq = 0;   // global emission order (0-based)
  std::uint64_t t_ns = 0;  // obs::now_ns() at emit time
  EventKind kind = EventKind::kFaultDetected;
  EventSeverity severity = EventSeverity::kInfo;
  std::string detail;  // optional free-text tag (e.g. a phase name)
  std::vector<std::pair<std::string, double>> fields;
};

#if REFIT_OBS_ENABLED

class EventLog {
 public:
  /// Ring capacity: the log keeps the most recent kCapacity events.
  static constexpr std::size_t kCapacity = 4096;
  /// Payload entries beyond this are dropped at emit time.
  static constexpr std::size_t kMaxFields = 8;
  /// How many trailing events dump_tail() prints by default.
  static constexpr std::size_t kDefaultTail = 32;

  static EventLog& global();

  /// Runtime gate. Enabling installs the flight-recorder hook that dumps
  /// the ring tail to stderr on REFIT_CHECK/REFIT_DCHECK failure;
  /// disabling removes it.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

  /// Record one event. Lock-free; safe from any thread. `detail` and all
  /// field keys must be string literals (stored by pointer).
  void emit(EventKind kind, EventSeverity severity, const char* detail,
            std::initializer_list<EventField> fields);
  void emit(EventKind kind, EventSeverity severity,
            std::initializer_list<EventField> fields) {
    emit(kind, severity, nullptr, fields);
  }

  /// Number of events ever emitted (including any the ring has dropped).
  [[nodiscard]] std::uint64_t emitted() const;

  /// The retained events in emission order. Quiescent-only (see header
  /// comment).
  [[nodiscard]] std::vector<Event> collect() const;

  /// One JSON object per line, in emission order. Quiescent-only.
  void write_jsonl(std::ostream& os) const;

  /// Flight-recorder dump: the last `n` retained events, human-readable.
  /// Best-effort by design — it runs inside failure paths.
  void dump_tail(std::ostream& os, std::size_t n = kDefaultTail) const;

  /// Drop all retained events and reset the sequence counter.
  void reset_for_tests();

 private:
  EventLog();
  ~EventLog() = delete;  // leaked singleton — see the header comment
  struct Impl;
  Impl* impl_;
};

#else  // !REFIT_OBS_ENABLED — inert stub with the identical surface.

class EventLog {
 public:
  static constexpr std::size_t kCapacity = 4096;
  static constexpr std::size_t kMaxFields = 8;
  static constexpr std::size_t kDefaultTail = 32;

  static EventLog& global() {
    static EventLog log;
    return log;
  }
  void set_enabled(bool) {}
  [[nodiscard]] bool enabled() const { return false; }
  void emit(EventKind, EventSeverity, const char*,
            std::initializer_list<EventField>) {}
  void emit(EventKind, EventSeverity, std::initializer_list<EventField>) {}
  [[nodiscard]] std::uint64_t emitted() const { return 0; }
  [[nodiscard]] std::vector<Event> collect() const { return {}; }
  void write_jsonl(std::ostream& os) const;
  void dump_tail(std::ostream& os, std::size_t n = kDefaultTail) const;
  void reset_for_tests() {}
};

#endif  // REFIT_OBS_ENABLED

}  // namespace refit::obs
