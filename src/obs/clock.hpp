// Clock seam for the observability layer: every timestamp in the metrics
// and tracing subsystems flows through the process-wide obs::Clock, so
// tests can inject a deterministic clock and get byte-stable traces.
//
// SteadyClock (the default) reads std::chrono::steady_clock — the only
// permitted user of it inside src/ (machine-checked by refit-lint's
// `obs-timing` rule). ManualClock advances a fixed step per call *per
// calling thread*, so a thread's timestamp sequence does not depend on
// how many pool workers happen to read the clock concurrently — that
// independence is what makes golden traces byte-identical at 1 and 4
// threads (tests/test_obs.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

namespace refit::obs {

/// Monotonic nanosecond time source.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual std::uint64_t now_ns() = 0;
};

/// Wall clock over std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_ns() override;
};

/// Deterministic test clock: the n-th call *from a given thread* returns
/// base + (n + 1) * step. Sequences are per-thread (not a shared counter)
/// so a caller's timestamps stay identical whether or not worker threads
/// are also reading the clock.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t step_ns = 1000, std::uint64_t base_ns = 0)
      : step_(step_ns), base_(base_ns) {}
  [[nodiscard]] std::uint64_t now_ns() override;

 private:
  std::uint64_t step_;
  std::uint64_t base_;
  std::mutex mu_;
  std::map<std::thread::id, std::uint64_t> calls_;
};

/// Install a process-wide clock; nullptr restores the steady clock. Not
/// synchronized: call while no spans or stopwatches are live (test setup).
void set_clock(Clock* clock);

/// Read the installed clock (nanoseconds, monotonic).
[[nodiscard]] std::uint64_t now_ns();

/// Wall-time stopwatch over the installed clock — the project-wide
/// replacement for ad-hoc std::chrono timing (see the obs-timing lint
/// rule and docs/observability.md).
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  [[nodiscard]] std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  [[nodiscard]] double seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace refit::obs
