// Clock seam implementation (see clock.hpp): the steady default, the
// deterministic ManualClock, and the process-wide installation point.
#include "obs/clock.hpp"

#include <atomic>
#include <chrono>

namespace refit::obs {

std::uint64_t SteadyClock::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t ManualClock::now_ns() {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t& n = calls_[std::this_thread::get_id()];
  ++n;
  return base_ + n * step_;
}

namespace {

SteadyClock& steady_clock_instance() {
  static SteadyClock clock;
  return clock;
}

// The installed clock. Atomic so a handful of readers racing a (test-only)
// install never see a torn pointer; ordering is irrelevant because the
// contract is "install while quiescent".
std::atomic<Clock*>& clock_slot() {
  static std::atomic<Clock*> slot{nullptr};
  return slot;
}

}  // namespace

void set_clock(Clock* clock) {
  clock_slot().store(clock, std::memory_order_release);
}

std::uint64_t now_ns() {
  Clock* clock = clock_slot().load(std::memory_order_acquire);
  if (clock == nullptr) clock = &steady_clock_instance();
  return clock->now_ns();
}

}  // namespace refit::obs
