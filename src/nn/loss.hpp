// Softmax + cross-entropy loss head (the paper's classification objective).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace refit {

/// Loss value plus the gradient w.r.t. the logits.
struct LossResult {
  double loss = 0.0;        ///< mean cross-entropy over the batch
  Tensor grad_logits;       ///< [B, C], already divided by batch size
  std::size_t correct = 0;  ///< argmax hits (for accuracy tracking)
};

/// Row-wise numerically-stable softmax of a [B, C] logits matrix.
Tensor softmax_rows(const Tensor& logits);

/// Mean softmax cross-entropy; labels are class indices in [0, C).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::uint8_t>& labels);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<std::uint8_t>& labels);

}  // namespace refit
