// Fully-connected layer (see dense.hpp).
#include "nn/dense.hpp"

#include <cmath>
#include <utility>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace refit {

Dense::Dense(std::string name, std::size_t in, std::size_t out,
             const StoreFactory& factory, Rng& rng)
    : MatrixLayer(std::move(name)),
      in_(in),
      out_(out),
      bias_({out}),
      wgrad_({in, out}),
      bgrad_({out}) {
  REFIT_CHECK(in > 0 && out > 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(in));
  store_ = factory(this->name(), Tensor::randn({in, out}, rng, stddev));
  REFIT_CHECK(store_ != nullptr);
}

Tensor Dense::forward(const Tensor& x, bool train) {
  REFIT_CHECK_MSG(x.rank() == 2 && x.dim(1) == in_,
                  "Dense " << name() << ": bad input "
                           << shape_to_string(x.shape()));
  if (train) cached_input_ = x;
  // Through the store seam: the RCS backend fuses this multiply with the
  // device read-out (no effective-matrix materialization).
  Tensor y = store_->forward_matmul(x);
  add_row_vector(y, bias_);
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  REFIT_CHECK_MSG(!cached_input_.empty(),
                  "Dense " << name() << ": backward before forward(train)");
  REFIT_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_);
  wgrad_ += matmul_tn(cached_input_, grad_out);
  bgrad_ += column_sums(grad_out);
  // Back-propagation runs in the digital domain on the *stored* weight
  // copy: the training engine cannot read the whole array every iteration,
  // so it does not see stuck cells through the gradient. (This is exactly
  // why the paper needs an explicit fault-detection phase.) Only the
  // forward pass above went through the faulty crossbar.
  return matmul_nt(grad_out, store_->target());
}

void Dense::collect_params(std::vector<Param>& out) {
  out.push_back(Param{name() + ".W", store_.get(), nullptr, &wgrad_});
  out.push_back(Param{name() + ".b", nullptr, &bias_, &bgrad_});
}

void Dense::zero_grad() {
  wgrad_.zero();
  bgrad_.zero();
}

}  // namespace refit
