// Loss functions (see loss.hpp).
#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace refit {

Tensor softmax_rows(const Tensor& logits) {
  REFIT_CHECK(logits.rank() == 2);
  const std::size_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor p = logits;
  for (std::size_t i = 0; i < rows; ++i) {
    float* row = p.data() + i * cols;
    const float mx = *std::max_element(row, row + cols);
    double denom = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    const auto inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < cols; ++j) row[j] *= inv;
  }
  return p;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::uint8_t>& labels) {
  REFIT_CHECK(logits.rank() == 2);
  const std::size_t rows = logits.dim(0), cols = logits.dim(1);
  REFIT_CHECK_MSG(labels.size() == rows, "label count mismatch");
  LossResult res;
  res.grad_logits = softmax_rows(logits);
  double loss = 0.0;
  const auto inv_batch = static_cast<float>(1.0 / static_cast<double>(rows));
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t y = labels[i];
    REFIT_CHECK_MSG(y < cols, "label " << y << " out of range " << cols);
    float* row = res.grad_logits.data() + i * cols;
    // Accuracy bookkeeping before mutating the row.
    const float* mx = std::max_element(row, row + cols);
    if (static_cast<std::size_t>(mx - row) == y) ++res.correct;
    loss -= std::log(std::max(row[y], 1e-12f));
    row[y] -= 1.0f;
    for (std::size_t j = 0; j < cols; ++j) row[j] *= inv_batch;
  }
  res.loss = loss / static_cast<double>(rows);
  return res;
}

double accuracy(const Tensor& logits,
                const std::vector<std::uint8_t>& labels) {
  REFIT_CHECK(logits.rank() == 2 && logits.dim(0) == labels.size());
  const std::size_t rows = logits.dim(0), cols = logits.dim(1);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    const float* row = logits.data() + i * cols;
    const float* mx = std::max_element(row, row + cols);
    if (static_cast<std::size_t>(mx - row) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows);
}

}  // namespace refit
