// 2-D convolution layer (see conv2d.hpp).
#include "nn/conv2d.hpp"

#include <cmath>
#include <utility>

#include "common/rng.hpp"

namespace refit {

Conv2D::Conv2D(std::string name, std::size_t in_channels, std::size_t in_h,
               std::size_t in_w, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t pad, const StoreFactory& factory,
               Rng& rng)
    : MatrixLayer(std::move(name)),
      geom_{in_channels, in_h, in_w, kernel, stride, pad},
      oc_(out_channels),
      bias_({out_channels}),
      wgrad_({geom_.patch_len(), out_channels}),
      bgrad_({out_channels}) {
  REFIT_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0);
  const float fan_in = static_cast<float>(geom_.patch_len());
  const float stddev = std::sqrt(2.0f / fan_in);
  store_ = factory(this->name(),
                   Tensor::randn({geom_.patch_len(), out_channels}, rng,
                                 stddev));
  REFIT_CHECK(store_ != nullptr);
}

Tensor Conv2D::forward(const Tensor& x, bool train) {
  REFIT_CHECK_MSG(x.rank() == 4 && x.dim(1) == geom_.in_channels &&
                      x.dim(2) == geom_.in_h && x.dim(3) == geom_.in_w,
                  "Conv2D " << name() << ": bad input "
                            << shape_to_string(x.shape()));
  const std::size_t batch = x.dim(0);
  Tensor cols = im2col(x, geom_);
  Tensor rows = store_->forward_matmul(cols);  // [N·OH·OW, OC], fused on RCS
  add_row_vector(rows, bias_);
  if (train) {
    cached_cols_ = std::move(cols);
    cached_batch_ = batch;
  }
  return rows_to_nchw(rows, batch, oc_, geom_.out_h(), geom_.out_w());
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  REFIT_CHECK_MSG(cached_batch_ > 0,
                  "Conv2D " << name() << ": backward before forward(train)");
  REFIT_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == cached_batch_ &&
              grad_out.dim(1) == oc_);
  Tensor gy_rows = nchw_to_rows(grad_out);           // [N·OH·OW, OC]
  wgrad_ += matmul_tn(cached_cols_, gy_rows);        // [CKK, OC]
  bgrad_ += column_sums(gy_rows);
  // Digital-domain backprop on the stored weight copy (see Dense::backward
  // for the architectural rationale).
  Tensor gcols = matmul_nt(gy_rows, store_->target());  // [N·OH·OW, CKK]
  return col2im(gcols, cached_batch_, geom_);
}

void Conv2D::collect_params(std::vector<Param>& out) {
  out.push_back(Param{name() + ".W", store_.get(), nullptr, &wgrad_});
  out.push_back(Param{name() + ".b", nullptr, &bias_, &bgrad_});
}

void Conv2D::zero_grad() {
  wgrad_.zero();
  bgrad_.zero();
}

}  // namespace refit
