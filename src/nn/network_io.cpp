// Network checkpoint (de)serialization (see network_io.hpp).
#include "nn/network_io.hpp"

#include <istream>
#include <ostream>

#include "common/serialize.hpp"

namespace refit {

namespace {
constexpr std::uint64_t kNetTag = 0x52454649544e4554ULL;  // "REFITNET"

void write_tensor(std::ostream& os, const Tensor& t) {
  std::vector<std::uint64_t> shape(t.shape().begin(), t.shape().end());
  ser::write_vec(os, shape);
  ser::write_vec(os, t.vec());
}

Tensor read_tensor(std::istream& is) {
  const auto shape64 = ser::read_vec<std::uint64_t>(is);
  Shape shape(shape64.begin(), shape64.end());
  auto data = ser::read_vec<float>(is);
  return Tensor(shape, std::move(data));
}
}  // namespace

void save_network_weights(Network& net, std::ostream& os) {
  ser::write_tag(os, kNetTag);
  const auto params = net.params();
  ser::write_pod<std::uint64_t>(os, params.size());
  for (const Param& p : params) {
    if (p.store != nullptr) {
      write_tensor(os, p.store->target());
    } else {
      REFIT_CHECK(p.value != nullptr);
      write_tensor(os, *p.value);
    }
  }
}

void load_network_weights(Network& net, std::istream& is) {
  ser::expect_tag(is, kNetTag);
  auto params = net.params();
  const auto count = ser::read_pod<std::uint64_t>(is);
  REFIT_CHECK_MSG(count == params.size(),
                  "checkpoint has " << count << " parameters, network has "
                                    << params.size());
  for (Param& p : params) {
    Tensor t = read_tensor(is);
    if (p.store != nullptr) {
      REFIT_CHECK_MSG(t.shape() == p.store->shape(),
                      "checkpoint shape mismatch for " << p.name);
      p.store->assign(t);
    } else {
      REFIT_CHECK_MSG(t.shape() == p.value->shape(),
                      "checkpoint shape mismatch for " << p.name);
      *p.value = std::move(t);
    }
  }
}

}  // namespace refit
