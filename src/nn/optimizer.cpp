// SGD / momentum optimizers (see optimizer.hpp).
#include "nn/optimizer.hpp"

#include <algorithm>
#include <cmath>

namespace refit {

double LrSchedule::at(std::size_t iteration) const {
  if (decay_every == 0) return initial;
  const auto steps = static_cast<double>(iteration / decay_every);
  return std::max(min_lr, initial * std::pow(decay, steps));
}

void Sgd::step(std::vector<Param>& params, std::size_t iteration) const {
  const double lr = schedule_.at(iteration);
  for (auto& p : params) {
    REFIT_CHECK(p.grad != nullptr);
    if (p.store != nullptr) {
      Tensor delta = *p.grad;
      delta *= static_cast<float>(-lr);
      p.store->apply_delta(delta);
    } else {
      REFIT_CHECK(p.value != nullptr);
      Tensor delta = *p.grad;
      delta *= static_cast<float>(-lr);
      *p.value += delta;
    }
  }
}

}  // namespace refit
