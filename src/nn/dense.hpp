// Fully-connected layer: y = x·W + b with W on a WeightStore.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace refit {

class Rng;

class Dense final : public MatrixLayer {
 public:
  /// He-normal initialized dense layer; the weight matrix [in, out] is
  /// created through `factory` so it can live on crossbars.
  Dense(std::string name, std::size_t in, std::size_t out,
        const StoreFactory& factory, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param>& out) override;
  void zero_grad() override;
  [[nodiscard]] const char* kind() const override { return "dense"; }

  [[nodiscard]] WeightStore& weights() override { return *store_; }
  [[nodiscard]] const WeightStore& weights() const override { return *store_; }
  [[nodiscard]] std::size_t out_neurons() const override { return out_; }
  [[nodiscard]] std::size_t in_neurons() const override { return in_; }
  [[nodiscard]] std::size_t rows_per_in_neuron() const override { return 1; }

  [[nodiscard]] Tensor& bias() { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  std::unique_ptr<WeightStore> store_;
  Tensor bias_;
  Tensor wgrad_;
  Tensor bgrad_;
  Tensor cached_input_;
};

}  // namespace refit
