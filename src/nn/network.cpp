// Network container: forward / backward / update (see network.hpp).
#include "nn/network.hpp"

#include <algorithm>
#include <utility>

namespace refit {

Layer& Network::add(std::unique_ptr<Layer> layer) {
  REFIT_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

Tensor Network::forward(const Tensor& x, bool train) {
  REFIT_CHECK_MSG(!layers_.empty(), "forward on empty network");
  Tensor cur = x;
  for (auto& layer : layers_) cur = layer->forward(cur, train);
  return cur;
}

Tensor Network::backward(const Tensor& grad_logits) {
  REFIT_CHECK_MSG(!layers_.empty(), "backward on empty network");
  Tensor cur = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    cur = (*it)->backward(cur);
  return cur;
}

std::vector<Param> Network::params() {
  std::vector<Param> out;
  for (auto& layer : layers_) layer->collect_params(out);
  return out;
}

std::vector<MatrixLayer*> Network::matrix_layers() {
  std::vector<MatrixLayer*> out;
  for (auto& layer : layers_) {
    if (auto* ml = dynamic_cast<MatrixLayer*>(layer.get())) out.push_back(ml);
  }
  return out;
}

void Network::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

Layer& Network::layer(std::size_t i) {
  REFIT_CHECK(i < layers_.size());
  return *layers_[i];
}

double Network::evaluate(const Tensor& inputs,
                         const std::vector<std::uint8_t>& labels,
                         std::size_t batch_size) {
  const std::size_t n = inputs.dim(0);
  REFIT_CHECK(labels.size() == n && n > 0);
  std::size_t correct = 0;
  for (std::size_t begin = 0; begin < n; begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, n);
    Tensor batch = slice_batch(inputs, begin, end);
    Tensor logits = forward(batch, /*train=*/false);
    const std::size_t rows = logits.dim(0), cols = logits.dim(1);
    for (std::size_t i = 0; i < rows; ++i) {
      const float* row = logits.data() + i * cols;
      const float* mx = std::max_element(row, row + cols);
      if (static_cast<std::size_t>(mx - row) == labels[begin + i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

std::size_t Network::weight_count() {
  std::size_t total = 0;
  for (auto* ml : matrix_layers()) total += shape_numel(ml->weights().shape());
  return total;
}

Tensor slice_batch(const Tensor& data, std::size_t begin, std::size_t end) {
  REFIT_CHECK(data.rank() >= 2 && begin < end && end <= data.dim(0));
  Shape s = data.shape();
  const std::size_t per_row = data.numel() / s[0];
  s[0] = end - begin;
  Tensor out(s);
  std::copy(data.data() + begin * per_row, data.data() + end * per_row,
            out.data());
  return out;
}

}  // namespace refit
