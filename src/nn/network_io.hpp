// Weight-level checkpointing for networks.
//
// Saves/restores every trainable parameter (matrix targets and biases) in
// network order. Restoring into a crossbar-backed network re-programs the
// chip through WeightStore::assign — a real write cost, just like loading
// a trained model onto hardware would be. For bit-exact *device* state
// (faults, wear, analog noise), checkpoint the CrossbarWeightStores
// themselves (CrossbarWeightStore::save/load).
#pragma once

#include <iosfwd>

#include "nn/network.hpp"

namespace refit {

/// Serialize all parameter values (matrix targets + biases).
void save_network_weights(Network& net, std::ostream& os);

/// Restore parameter values saved by save_network_weights. The network
/// must have the identical architecture (checked via shapes).
void load_network_weights(Network& net, std::istream& is);

}  // namespace refit
