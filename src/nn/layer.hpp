// Layer interfaces for the REFIT neural-network training framework (S2).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/weight_store.hpp"
#include "tensor/tensor.hpp"

namespace refit {

/// Reference to one trainable parameter of a layer.
///
/// Weight matrices live behind a WeightStore (possibly on crossbars);
/// biases are plain tensors held in the peripheral neuron circuitry, so
/// they never suffer RRAM faults (matching the paper's model, where only
/// the matrices are on the crossbar).
struct Param {
  std::string name;
  WeightStore* store = nullptr;  ///< non-null for crossbar-capable matrices
  Tensor* value = nullptr;       ///< non-null for plain (peripheral) params
  Tensor* grad = nullptr;        ///< accumulated gradient, same shape
};

/// Base class for all layers. forward() must be called before backward();
/// layers cache whatever they need for the backward pass.
class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Compute the layer output. `train` enables training-only behaviour.
  virtual Tensor forward(const Tensor& x, bool train) = 0;
  /// Propagate the output gradient; accumulates parameter gradients and
  /// returns the input gradient.
  virtual Tensor backward(const Tensor& grad_out) = 0;
  /// Append references to this layer's trainable parameters.
  virtual void collect_params(std::vector<Param>& out) { (void)out; }
  /// Zero all accumulated parameter gradients.
  virtual void zero_grad() {}
  /// Short kind tag ("dense", "conv", "relu", ...).
  [[nodiscard]] virtual const char* kind() const = 0;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// A layer whose weights form a 2-D matrix mapped onto crossbars
/// ([fan_in, fan_out]); Dense and Conv2D implement this. The re-mapping
/// engine operates on these layers only.
class MatrixLayer : public Layer {
 public:
  using Layer::Layer;

  [[nodiscard]] virtual WeightStore& weights() = 0;
  [[nodiscard]] virtual const WeightStore& weights() const = 0;

  /// Logical output-neuron count (= matrix columns).
  [[nodiscard]] virtual std::size_t out_neurons() const = 0;
  /// Logical input-neuron count. For Dense this equals the matrix rows;
  /// for Conv2D it is the number of input channels (each spanning a block
  /// of kernel² rows).
  [[nodiscard]] virtual std::size_t in_neurons() const = 0;
  /// Matrix rows contributed by each input neuron (1 for Dense,
  /// kernel² for Conv2D).
  [[nodiscard]] virtual std::size_t rows_per_in_neuron() const = 0;
};

}  // namespace refit
