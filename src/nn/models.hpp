// Model zoo for the paper's two benchmarks (§5.1, §6.2.2):
//  - an MLP in the 784×100×10 family for the MNIST-like task,
//  - "VGG-mini", a scaled-down VGG-11 (stacked 3×3 convs + 3 FC layers)
//    for the CIFAR-like task. DESIGN.md §4 documents the scaling.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/network.hpp"
#include "nn/weight_store.hpp"

namespace refit {

class Rng;

/// Fully-connected classifier: Dense(+ReLU) per hidden dim, linear head.
/// `dims` = {in, hidden..., out}; requires at least {in, out}.
Network make_mlp(const std::vector<std::size_t>& dims,
                 const StoreFactory& fc_factory, Rng& rng);

/// Topology knobs for the VGG-mini CNN.
struct VggMiniConfig {
  std::size_t in_channels = 3;
  std::size_t in_hw = 16;          ///< square input side
  std::size_t num_classes = 10;
  std::vector<std::size_t> conv_channels = {16, 32, 64, 64};
  /// After which conv indices (0-based) a 2×2 max-pool follows.
  std::vector<std::size_t> pool_after = {0, 1, 3};
  std::vector<std::size_t> fc_hidden = {128, 64};
};

/// Build VGG-mini. Conv matrices come from `conv_factory` and FC matrices
/// from `fc_factory`, so the paper's "entire-CNN" vs "FC-only" mapping
/// cases are just different factory pairs.
Network make_vgg_mini(const VggMiniConfig& cfg, const StoreFactory& conv_factory,
                      const StoreFactory& fc_factory, Rng& rng);

/// The paper's modified VGG-11 at full 32×32 CIFAR scale: 8 Conv layers
/// (64-64-128-128-256-256-512-512, 3×3) and 3 FC layers. ~7.7 M weights —
/// minutes per iteration on a CPU simulator, provided for users who want
/// the paper's exact topology (the benches use VGG-mini, DESIGN.md §4).
VggMiniConfig vgg11_config();

}  // namespace refit
