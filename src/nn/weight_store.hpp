// WeightStore — the seam between the training algorithm and the hardware.
//
// A layer's weight matrix lives behind this interface. The software backend
// stores plain floats (the paper's "ideal case"); the RCS backend
// (src/rcs/crossbar_store.hpp) maps the matrix onto RRAM crossbar tiles so
// that forward propagation sees quantization, write variation and stuck-at
// faults, and every weight update consumes cell endurance.
//
// The convention throughout REFIT: a weight matrix has shape
// [fan_in, fan_out]; crossbar rows correspond to inputs and columns to
// output neurons, matching the paper's Fig. 5.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "tensor/tensor.hpp"

namespace refit {

/// Abstract storage for one layer's weight matrix.
class WeightStore {
 public:
  virtual ~WeightStore() = default;

  [[nodiscard]] virtual const Shape& shape() const = 0;

  /// The weights forward propagation actually computes with. For an RCS
  /// backend this includes faults / quantization / write noise.
  [[nodiscard]] virtual const Tensor& effective() = 0;

  /// The ideal target weights the optimizer believes it has written.
  [[nodiscard]] virtual const Tensor& target() const = 0;

  /// Forward propagation through the store: y = x · W_eff for a batch
  /// x [batch, fan_in]. The default materializes effective() and multiplies;
  /// hardware backends override with a fused kernel that computes straight
  /// from device state (bit-identical to the default — layers call this
  /// instead of matmul(x, effective()) purely for speed).
  [[nodiscard]] virtual Tensor forward_matmul(const Tensor& x);

  /// target += delta; entries with delta == 0 are *not* written to the
  /// device (this is what threshold training exploits to save endurance).
  virtual void apply_delta(const Tensor& delta) = 0;

  /// target += delta, programming EVERY cell — zero deltas included. This
  /// is the paper's "original" on-line update: each step re-programs the
  /// whole array, which is why repeated training wears out most cells.
  /// Defaults to apply_delta (no distinction without a device).
  virtual void apply_delta_full(const Tensor& delta) { apply_delta(delta); }

  /// Overwrite the full target (counts as a write to every changed cell).
  virtual void assign(const Tensor& w) = 0;

  /// Total device write operations issued so far (0 for software).
  [[nodiscard]] virtual std::uint64_t write_count() const { return 0; }

  /// Serialize the store's complete state: the target tensor for the
  /// software backend, the full device state (tiles, permutations,
  /// endurance, RNG) for a hardware backend. restore_state() into a
  /// same-shaped store must reproduce the exact compute behavior — this
  /// is the seam the engine checkpoints through without knowing which
  /// backend a layer uses.
  virtual void save_state(std::ostream& os) const = 0;
  virtual void restore_state(std::istream& is) = 0;
};

/// Pure-software backend: effective() == target(), no endurance, no faults.
class SoftwareWeightStore final : public WeightStore {
 public:
  explicit SoftwareWeightStore(Tensor init);

  [[nodiscard]] const Shape& shape() const override { return w_.shape(); }
  [[nodiscard]] const Tensor& effective() override { return w_; }
  [[nodiscard]] const Tensor& target() const override { return w_; }
  void apply_delta(const Tensor& delta) override;
  void assign(const Tensor& w) override;
  void save_state(std::ostream& os) const override;
  void restore_state(std::istream& is) override;

 private:
  Tensor w_;
};

/// Factory used by layers to create their weight backend; experiments swap
/// in an RCS-backed factory to put layers "on chip".
using StoreFactory = std::function<std::unique_ptr<WeightStore>(
    const std::string& layer_name, Tensor init)>;

/// Factory producing SoftwareWeightStore (the default backend).
StoreFactory software_store_factory();

}  // namespace refit
