// 2-D convolution implemented as im2col + GEMM.
//
// The kernel bank is stored as a [C·k·k, OC] matrix so that, exactly like a
// Dense layer, crossbar rows are inputs and columns are output neurons
// (output channels). Each input channel spans a contiguous block of k² rows
// — the re-mapping engine permutes whole blocks when re-ordering channels.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace refit {

class Rng;

class Conv2D final : public MatrixLayer {
 public:
  /// `in_*` describe the input activation [N, C, H, W]; same-padding by
  /// default (pad = kernel/2) keeps H×W when stride is 1.
  Conv2D(std::string name, std::size_t in_channels, std::size_t in_h,
         std::size_t in_w, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t pad, const StoreFactory& factory,
         Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param>& out) override;
  void zero_grad() override;
  [[nodiscard]] const char* kind() const override { return "conv"; }

  [[nodiscard]] WeightStore& weights() override { return *store_; }
  [[nodiscard]] const WeightStore& weights() const override { return *store_; }
  [[nodiscard]] std::size_t out_neurons() const override { return oc_; }
  [[nodiscard]] std::size_t in_neurons() const override {
    return geom_.in_channels;
  }
  [[nodiscard]] std::size_t rows_per_in_neuron() const override {
    return geom_.kernel * geom_.kernel;
  }

  [[nodiscard]] const ConvGeometry& geometry() const { return geom_; }
  [[nodiscard]] std::size_t out_h() const { return geom_.out_h(); }
  [[nodiscard]] std::size_t out_w() const { return geom_.out_w(); }

 private:
  ConvGeometry geom_;
  std::size_t oc_;
  std::unique_ptr<WeightStore> store_;
  Tensor bias_;
  Tensor wgrad_;
  Tensor bgrad_;
  Tensor cached_cols_;
  std::size_t cached_batch_ = 0;
};

}  // namespace refit
