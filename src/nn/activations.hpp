// Parameter-free layers: ReLU, Flatten, MaxPool2D.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace refit {

/// Elementwise rectifier.
class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name) : Layer(std::move(name)) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const char* kind() const override { return "relu"; }

 private:
  std::vector<bool> mask_;
};

/// Collapse [N, ...] to [N, features].
class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name) : Layer(std::move(name)) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const char* kind() const override { return "flatten"; }

 private:
  Shape input_shape_;
};

/// Non-overlapping (or strided) 2-D max pooling.
class MaxPool2D final : public Layer {
 public:
  MaxPool2D(std::string name, std::size_t window, std::size_t stride)
      : Layer(std::move(name)), window_(window), stride_(stride) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const char* kind() const override { return "maxpool"; }

 private:
  std::size_t window_;
  std::size_t stride_;
  Shape input_shape_;
  std::vector<std::size_t> argmax_;
};

}  // namespace refit
