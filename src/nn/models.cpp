// Reference model builders — MLPs and the paper's CNN (see models.hpp).
#include "nn/models.hpp"

#include <algorithm>
#include <string>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"

namespace refit {

Network make_mlp(const std::vector<std::size_t>& dims,
                 const StoreFactory& fc_factory, Rng& rng) {
  REFIT_CHECK_MSG(dims.size() >= 2, "make_mlp needs at least {in, out}");
  Network net;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const std::string name = "fc" + std::to_string(i + 1);
    net.add(std::make_unique<Dense>(name, dims[i], dims[i + 1], fc_factory,
                                    rng));
    if (i + 2 < dims.size()) {
      net.add(std::make_unique<ReLU>(name + ".relu"));
    }
  }
  return net;
}

VggMiniConfig vgg11_config() {
  VggMiniConfig cfg;
  cfg.in_channels = 3;
  cfg.in_hw = 32;
  cfg.num_classes = 10;
  cfg.conv_channels = {64, 128, 256, 256, 512, 512, 512, 512};
  // VGG-11's pooling points, adapted so the 32×32 input ends at 1×1.
  cfg.pool_after = {0, 1, 3, 5, 7};
  cfg.fc_hidden = {512, 512};
  return cfg;
}

Network make_vgg_mini(const VggMiniConfig& cfg,
                      const StoreFactory& conv_factory,
                      const StoreFactory& fc_factory, Rng& rng) {
  REFIT_CHECK(!cfg.conv_channels.empty());
  Network net;
  std::size_t ch = cfg.in_channels;
  std::size_t hw = cfg.in_hw;
  for (std::size_t i = 0; i < cfg.conv_channels.size(); ++i) {
    const std::string name = "conv" + std::to_string(i + 1);
    const std::size_t oc = cfg.conv_channels[i];
    net.add(std::make_unique<Conv2D>(name, ch, hw, hw, oc, /*kernel=*/3,
                                     /*stride=*/1, /*pad=*/1, conv_factory,
                                     rng));
    net.add(std::make_unique<ReLU>(name + ".relu"));
    ch = oc;
    const bool pool =
        std::find(cfg.pool_after.begin(), cfg.pool_after.end(), i) !=
        cfg.pool_after.end();
    if (pool) {
      REFIT_CHECK_MSG(hw >= 2, "feature map too small to pool");
      net.add(std::make_unique<MaxPool2D>(name + ".pool", 2, 2));
      hw /= 2;
    }
  }
  net.add(std::make_unique<Flatten>("flatten"));
  std::size_t features = ch * hw * hw;
  for (std::size_t i = 0; i < cfg.fc_hidden.size(); ++i) {
    const std::string name = "fc" + std::to_string(i + 1);
    net.add(std::make_unique<Dense>(name, features, cfg.fc_hidden[i],
                                    fc_factory, rng));
    net.add(std::make_unique<ReLU>(name + ".relu"));
    features = cfg.fc_hidden[i];
  }
  net.add(std::make_unique<Dense>(
      "fc" + std::to_string(cfg.fc_hidden.size() + 1), features,
      cfg.num_classes, fc_factory, rng));
  return net;
}

}  // namespace refit
