// Sequential network container.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layer.hpp"
#include "nn/loss.hpp"

namespace refit {

/// A feed-forward stack of layers trained with backpropagation.
class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Append a layer; returns a reference for convenient chaining/config.
  Layer& add(std::unique_ptr<Layer> layer);

  /// Run the stack. `train` makes layers cache activations for backward().
  Tensor forward(const Tensor& x, bool train = false);

  /// Backpropagate the loss gradient; parameter gradients accumulate into
  /// each layer. Returns the gradient w.r.t. the network input.
  Tensor backward(const Tensor& grad_logits);

  /// References to every trainable parameter (rebuilt on each call).
  [[nodiscard]] std::vector<Param> params();

  /// The crossbar-mappable layers in network order.
  [[nodiscard]] std::vector<MatrixLayer*> matrix_layers();

  void zero_grad();

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i);

  /// Mean classification accuracy over a sample set evaluated in chunks.
  double evaluate(const Tensor& inputs,
                  const std::vector<std::uint8_t>& labels,
                  std::size_t batch_size = 64);

  /// Total number of weight-matrix elements (paper's "weight amount").
  [[nodiscard]] std::size_t weight_count();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Slice rows [begin, end) of a [N, ...] tensor into a new tensor.
Tensor slice_batch(const Tensor& data, std::size_t begin, std::size_t end);

}  // namespace refit
