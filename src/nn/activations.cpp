// Activation functions and derivatives (see activations.hpp).
#include "nn/activations.hpp"

#include "tensor/ops.hpp"

namespace refit {

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor y = x;
  if (train) mask_.assign(x.numel(), false);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] > 0.0f) {
      if (train) mask_[i] = true;
    } else {
      y[i] = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  REFIT_CHECK_MSG(mask_.size() == grad_out.numel(),
                  "ReLU " << name() << ": backward/forward shape mismatch");
  Tensor gx = grad_out;
  for (std::size_t i = 0; i < gx.numel(); ++i) {
    if (!mask_[i]) gx[i] = 0.0f;
  }
  return gx;
}

Tensor Flatten::forward(const Tensor& x, bool train) {
  REFIT_CHECK(x.rank() >= 2);
  if (train) input_shape_ = x.shape();
  const std::size_t batch = x.dim(0);
  return x.reshaped({batch, x.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  REFIT_CHECK_MSG(!input_shape_.empty(),
                  "Flatten " << name() << ": backward before forward(train)");
  return grad_out.reshaped(input_shape_);
}

Tensor MaxPool2D::forward(const Tensor& x, bool train) {
  std::vector<std::size_t> argmax;
  Tensor y = maxpool2d(x, window_, stride_, argmax);
  if (train) {
    input_shape_ = x.shape();
    argmax_ = std::move(argmax);
  }
  return y;
}

Tensor MaxPool2D::backward(const Tensor& grad_out) {
  REFIT_CHECK_MSG(!argmax_.empty(),
                  "MaxPool2D " << name()
                               << ": backward before forward(train)");
  return maxpool2d_backward(grad_out, input_shape_, argmax_);
}

}  // namespace refit
