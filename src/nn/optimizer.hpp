// Plain SGD and the learning-rate schedule (Eq. 1 of the paper: weights are
// updated by LR·δw with LR starting large and decaying during training).
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer.hpp"

namespace refit {

/// Step-decay learning-rate schedule.
struct LrSchedule {
  double initial = 0.05;
  double decay = 0.5;            ///< multiplier applied every `decay_every`
  std::size_t decay_every = 0;   ///< 0 disables decay
  double min_lr = 1e-4;

  [[nodiscard]] double at(std::size_t iteration) const;
};

/// Vanilla stochastic gradient descent. The update is routed through each
/// parameter's WeightStore, so on an RCS backend every nonzero delta is a
/// device write (this is the paper's "original method" baseline).
class Sgd {
 public:
  explicit Sgd(LrSchedule schedule) : schedule_(schedule) {}

  /// Apply one update step from the accumulated gradients, then zero-delta
  /// bookkeeping is up to the caller (typically Network::zero_grad()).
  void step(std::vector<Param>& params, std::size_t iteration) const;

  [[nodiscard]] const LrSchedule& schedule() const { return schedule_; }

 private:
  LrSchedule schedule_;
};

}  // namespace refit
