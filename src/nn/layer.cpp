// Layer base classes and plumbing (see layer.hpp).
#include "nn/layer.hpp"

// Layer and MatrixLayer are interface classes; their non-inline pieces are
// intentionally empty. This translation unit anchors the vtables.

namespace refit {}  // namespace refit
