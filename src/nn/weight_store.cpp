// Software (ideal) WeightStore (see weight_store.hpp).
#include "nn/weight_store.hpp"

#include <utility>

namespace refit {

SoftwareWeightStore::SoftwareWeightStore(Tensor init) : w_(std::move(init)) {}

void SoftwareWeightStore::apply_delta(const Tensor& delta) {
  REFIT_CHECK_MSG(delta.shape() == w_.shape(),
                  "delta shape mismatch in SoftwareWeightStore");
  w_ += delta;
}

void SoftwareWeightStore::assign(const Tensor& w) {
  REFIT_CHECK_MSG(w.shape() == w_.shape(),
                  "assign shape mismatch in SoftwareWeightStore");
  w_ = w;
}

StoreFactory software_store_factory() {
  return [](const std::string&, Tensor init) {
    return std::make_unique<SoftwareWeightStore>(std::move(init));
  };
}

}  // namespace refit
