// Software (ideal) WeightStore (see weight_store.hpp).
#include "nn/weight_store.hpp"

#include <utility>

#include "common/serialize.hpp"
#include "tensor/ops.hpp"

namespace refit {

Tensor WeightStore::forward_matmul(const Tensor& x) {
  return matmul(x, effective());
}

SoftwareWeightStore::SoftwareWeightStore(Tensor init) : w_(std::move(init)) {}

void SoftwareWeightStore::apply_delta(const Tensor& delta) {
  REFIT_CHECK_MSG(delta.shape() == w_.shape(),
                  "delta shape mismatch in SoftwareWeightStore");
  w_ += delta;
}

void SoftwareWeightStore::assign(const Tensor& w) {
  REFIT_CHECK_MSG(w.shape() == w_.shape(),
                  "assign shape mismatch in SoftwareWeightStore");
  w_ = w;
}

namespace {
constexpr std::uint64_t kSoftStoreTag = 0x5245464954535753ULL;  // "REFITSWS"
}  // namespace

void SoftwareWeightStore::save_state(std::ostream& os) const {
  ser::write_tag(os, kSoftStoreTag);
  std::vector<std::uint64_t> shape(w_.shape().begin(), w_.shape().end());
  ser::write_vec(os, shape);
  ser::write_vec(os, w_.vec());
}

void SoftwareWeightStore::restore_state(std::istream& is) {
  ser::expect_tag(is, kSoftStoreTag);
  const auto shape64 = ser::read_vec<std::uint64_t>(is);
  Shape shape(shape64.begin(), shape64.end());
  REFIT_CHECK_MSG(shape == w_.shape(),
                  "restore_state() checkpoint shape mismatch");
  auto data = ser::read_vec<float>(is);
  w_ = Tensor(shape, std::move(data));
}

StoreFactory software_store_factory() {
  return [](const std::string&, Tensor init) {
    return std::make_unique<SoftwareWeightStore>(std::move(init));
  };
}

}  // namespace refit
