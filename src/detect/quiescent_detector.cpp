// On-line quiescent-voltage fault detector, paper §4 (see quiescent_detector.hpp).
#include "detect/quiescent_detector.hpp"

#include <cmath>
#include <vector>

#include "detect/decoder.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace refit {

namespace {

/// Chunk `selected` into groups of at most `per_cycle` indices.
std::vector<std::vector<std::size_t>> make_groups(
    const std::vector<std::size_t>& selected, std::size_t per_cycle) {
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < selected.size(); i += per_cycle) {
    const std::size_t end = std::min(i + per_cycle, selected.size());
    groups.emplace_back(selected.begin() + static_cast<std::ptrdiff_t>(i),
                        selected.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return groups;
}

}  // namespace

void QuiescentVoltageDetector::run_pass(
    Crossbar& xbar, int stuck_level, int pulse,
    const std::vector<std::vector<int>>& stored, FaultMatrix& predicted,
    DetectionOutcome& out) const {
  const std::size_t rows = xbar.rows(), cols = xbar.cols();
  const std::size_t levels = xbar.config().levels;
  const double gap = xbar.config().level_gap();
  const auto lm1 = static_cast<double>(levels - 1);

  // Step 2: candidate selection. Even without §4.3's selected-cell mode
  // the controller knows the stored values, so cells already saturated at
  // the pulse's end of the range are excluded — they cannot respond to the
  // write and would otherwise be guaranteed false positives.
  std::vector<bool> candidate(rows * cols, false);
  std::size_t candidate_count = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const bool can_respond = pulse > 0
                                   ? stored[r][c] < static_cast<int>(levels) - 1
                                   : stored[r][c] > 0;
      const bool is_candidate = cfg_.selected_cells_only
                                    ? stored[r][c] == stuck_level
                                    : can_respond;
      if (is_candidate) {
        candidate[r * cols + c] = true;
        ++candidate_count;
      }
    }
  }
  if (candidate_count == 0) return;
  out.cells_tested += candidate_count;

  // Step 3: write the ±δw pulse to every candidate.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (!candidate[r * cols + c]) continue;
      xbar.write(r, c, xbar.conductance(r, c) + pulse * gap);
      ++out.device_writes;
    }
  }

  // Step 4/5: measure both directions. The comparator works in analog
  // volts: the reference is computed from the stored levels (including
  // each cell's IR-drop attenuation, which the controller calibrates for),
  // digitized, and reduced modulo the divisor.
  const std::size_t divisor = cfg_.modulo_divisor;
  auto residue_of = [&](double expected_analog, double measured_analog) {
    // SA0 pass (pulse +1): stuck cells create a deficit; SA1 pass: surplus.
    const double diff_levels =
        (pulse > 0 ? expected_analog - measured_analog
                   : measured_analog - expected_analog) *
        lm1;
    long long diff = std::llround(diff_levels);
    const auto d = static_cast<long long>(divisor);
    diff %= d;
    if (diff < 0) diff += d;
    return static_cast<std::size_t>(diff);
  };

  DecodeInput din;
  din.rows = rows;
  din.cols = cols;
  din.divisor = divisor;
  din.candidate = candidate;
  din.use_constraint_propagation = cfg_.use_constraint_propagation;

  // Row-direction: drive groups of rows, read all column outputs per cycle.
  std::vector<std::size_t> sel_rows;
  for (std::size_t r = 0; r < rows; ++r) {
    bool any = false;
    for (std::size_t c = 0; c < cols && !any; ++c) any = candidate[r * cols + c];
    if (any) sel_rows.push_back(r);
  }
  for (const auto& group : make_groups(sel_rows, cfg_.test_rows_per_cycle)) {
    ++out.cycles;
    for (std::size_t c = 0; c < cols; ++c) {
      Segment seg;
      double expected = 0.0;
      for (std::size_t r : group) {
        double level = stored[r][c];
        if (candidate[r * cols + c]) {
          level += pulse;
          seg.cells.push_back(r * cols + c);
        }
        expected += xbar.attenuation(r, c) * level * gap;
      }
      if (seg.cells.empty()) continue;  // nothing testable in this segment
      const double measured = xbar.sum_conductance_rows(group, c);
      ++out.adc_reads;
      seg.residue = residue_of(expected, measured);
      din.row_segments.push_back(std::move(seg));
    }
  }

  // Column-direction (the crossbar works both ways, §4.1).
  std::vector<std::size_t> sel_cols;
  for (std::size_t c = 0; c < cols; ++c) {
    bool any = false;
    for (std::size_t r = 0; r < rows && !any; ++r) any = candidate[r * cols + c];
    if (any) sel_cols.push_back(c);
  }
  for (const auto& group : make_groups(sel_cols, cfg_.tc())) {
    ++out.cycles;
    for (std::size_t r = 0; r < rows; ++r) {
      Segment seg;
      double expected = 0.0;
      for (std::size_t c : group) {
        double level = stored[r][c];
        if (candidate[r * cols + c]) {
          level += pulse;
          seg.cells.push_back(r * cols + c);
        }
        expected += xbar.attenuation(r, c) * level * gap;
      }
      if (seg.cells.empty()) continue;
      const double measured = xbar.sum_conductance_cols(group, r);
      ++out.adc_reads;
      seg.residue = residue_of(expected, measured);
      din.col_segments.push_back(std::move(seg));
    }
  }

  // Step 7: decode.
  const std::vector<bool> flags = decode_segments(din);
  const FaultKind kind =
      stuck_level == 0 ? FaultKind::kStuckAt0 : FaultKind::kStuckAt1;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (flags[r * cols + c] && !predicted.faulty(r, c)) {
        predicted.set(r, c, kind);
      }
    }
  }

  // Step 6: restore the training weights with the opposite pulse.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (!candidate[r * cols + c]) continue;
      xbar.write(r, c, xbar.conductance(r, c) - pulse * gap);
      ++out.device_writes;
    }
  }
}

DetectionOutcome QuiescentVoltageDetector::detect(Crossbar& xbar) const {
  REFIT_CHECK(cfg_.test_rows_per_cycle > 0 && cfg_.modulo_divisor >= 2);
  const std::size_t rows = xbar.rows(), cols = xbar.cols();
  DetectionOutcome out;
  out.predicted = FaultMatrix(rows, cols);

  auto read_all = [&] {
    std::vector<std::vector<int>> stored(rows, std::vector<int>(cols, 0));
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c) stored[r][c] = xbar.read_level(r, c);
    return stored;
  };

  if (cfg_.classify_soft) {
    // Snapshot truth before the first pulse: classification scrubs soft
    // faults, so this is the reference evaluate_classified scores against.
    out.truth_before = FaultMatrix(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        out.truth_before.set(r, c, xbar.fault(r, c));
  }

  // SA0 pass: stuck at the lowest level, tested with a +δw increment.
  {
    const auto stored = read_all();
    run_pass(xbar, /*stuck_level=*/0, /*pulse=*/+1, stored, out.predicted,
             out);
  }
  // SA1 pass: stuck at the highest level, tested with a −δw decrement.
  {
    const auto stored = read_all();
    run_pass(xbar, static_cast<int>(xbar.config().levels) - 1, /*pulse=*/-1,
             stored, out.predicted, out);
  }

  if (cfg_.classify_soft) {
    // Confirmation pass: give every predicted cell one strong pulse one
    // level away from its pinned value. A hard-stuck cell suppresses the
    // write and reads back unchanged; a transiently pinned cell re-forms,
    // moves, and is scrubbed back to its read-out value. Each re-test is
    // one write plus one ADC read in its own cycle.
    out.classified_soft = FaultMatrix(rows, cols);
    const double gap = xbar.config().level_gap();
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (!out.predicted.faulty(r, c)) continue;
        ++out.cells_retested;
        ++out.cycles;
        const FaultKind pk = out.predicted.at(r, c);
        const int dir = pk == FaultKind::kStuckAt1 ? -1 : +1;
        const int l0 = xbar.read_level(r, c);
        const double g0 = static_cast<double>(l0) * gap;
        // The scrub pulse is the detector's own confirmation primitive
        // (crossbar.hpp strong_write contract).
        // refit-lint: allow(device-encoding)
        xbar.strong_write(r, c, g0 + dir * gap);
        ++out.device_writes;
        const int l1 = xbar.read_level(r, c);
        ++out.adc_reads;
        if (l1 != l0) {
          out.classified_soft.set(r, c,
                                  pk == FaultKind::kStuckAt1
                                      ? FaultKind::kSoftStuck1
                                      : FaultKind::kSoftStuck0);
          // Undo the probe: the cell is healthy again, put the pinned-era
          // read-out back so training resumes from what the weight decoded
          // to (the next logical write reprograms it from target anyway).
          xbar.write(r, c, g0);
          ++out.device_writes;
        }
      }
    }
    static obs::Counter retests_metric = obs::MetricsRegistry::instance()
        .counter("detector.cells_retested", "cells");
    static obs::Counter soft_metric = obs::MetricsRegistry::instance().counter(
        "detector.soft_classified", "cells");
    retests_metric.add(out.cells_retested);
    std::size_t nsoft = 0;
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        if (out.classified_soft.faulty(r, c)) ++nsoft;
    soft_metric.add(nsoft);
  }
  // Telemetry (docs/observability.md). detect() runs on pool lanes when
  // fanned out by detect_store; the handles are relaxed atomics, so the
  // totals are exact (and deterministic) at any thread count.
  static obs::Counter cycles_metric =
      obs::MetricsRegistry::instance().counter("detector.cycles", "cycles");
  static obs::Counter cells_metric = obs::MetricsRegistry::instance().counter(
      "detector.cells_tested", "cells");
  static obs::Counter pulses_metric =
      obs::MetricsRegistry::instance().counter("detector.pulses", "writes");
  static obs::Counter adc_metric =
      obs::MetricsRegistry::instance().counter("detector.adc_reads", "reads");
  cycles_metric.add(out.cycles);
  cells_metric.add(out.cells_tested);
  pulses_metric.add(out.device_writes);
  adc_metric.add(out.adc_reads);
  return out;
}

DetectionOutcome QuiescentVoltageDetector::detect_store(
    CrossbarWeightStore& store) const {
  DetectionOutcome out;
  out.predicted = FaultMatrix(store.rows(), store.cols());
  const bool classify = cfg_.classify_soft;
  if (classify) {
    out.classified_soft = FaultMatrix(store.rows(), store.cols());
    out.truth_before = FaultMatrix(store.rows(), store.cols());
  }
  // Tiles are embarrassingly parallel: each owns its RNG, its pulses stay
  // inside the tile, and its predictions land in a disjoint physical block
  // of the store-level map. The grid's for_each_tile fans the per-tile
  // detections across the pool; outcomes are kept in slots and merged in
  // tile order below, so totals are deterministic at any thread count. A
  // differential store's two leg planes cover the same physical block, so
  // one lane tests both serially.
  const std::size_t legs = store.legs();
  const TileGrid& grid = store.grid();
  std::vector<DetectionOutcome> tile_p(grid.tile_count());
  std::vector<DetectionOutcome> tile_n(legs == 2 ? grid.tile_count() : 0);
  grid.for_each_tile([&](const TileSpan& span) {
    tile_p[span.index] = detect(store.tile(span.ti, span.tj));
    if (legs == 2) {
      tile_n[span.index] = detect(store.tile_n(span.ti, span.tj));
    }
  });
  for (std::size_t t = 0; t < grid.tile_count(); ++t) {
    const TileSpan span = grid.span(t);
    for (std::size_t r = 0; r < span.rows; ++r) {
      for (std::size_t c = 0; c < span.cols; ++c) {
        const std::size_t pr = span.row0 + r, pc = span.col0 + c;
        const FaultKind pp = tile_p[t].predicted.at(r, c);
        const FaultKind pn =
            legs == 2 ? tile_n[t].predicted.at(r, c) : FaultKind::kNone;
        out.predicted.set(pr, pc, pp != FaultKind::kNone ? pp : pn);
        if (!classify) continue;
        // Truth merge mirrors CrossbarWeightStore::true_fault: hard > soft
        // > none, G_p leg breaks ties.
        const FaultKind tp = tile_p[t].truth_before.at(r, c);
        const FaultKind tn = legs == 2 ? tile_n[t].truth_before.at(r, c)
                                       : FaultKind::kNone;
        out.truth_before.set(
            pr, pc,
            fault_is_hard(tp) ? tp
            : fault_is_hard(tn) ? tn
            : (tp != FaultKind::kNone ? tp : tn));
        // The weight is only transiently impaired if every leg that tripped
        // the detector was classified soft — one hard leg pins it for good.
        const bool p_pred = pp != FaultKind::kNone;
        const bool n_pred = pn != FaultKind::kNone;
        const bool p_soft = p_pred && tile_p[t].classified_soft.faulty(r, c);
        const bool n_soft = n_pred && tile_n[t].classified_soft.faulty(r, c);
        if ((p_pred || n_pred) && (!p_pred || p_soft) && (!n_pred || n_soft)) {
          out.classified_soft.set(pr, pc,
                                  p_pred
                                      ? tile_p[t].classified_soft.at(r, c)
                                      : tile_n[t].classified_soft.at(r, c));
        }
      }
    }
    out.cycles += tile_p[t].cycles;
    out.cells_tested += tile_p[t].cells_tested;
    out.device_writes += tile_p[t].device_writes;
    out.adc_reads += tile_p[t].adc_reads;
    out.cells_retested += tile_p[t].cells_retested;
    if (legs == 2) {
      out.cycles += tile_n[t].cycles;
      out.cells_tested += tile_n[t].cells_tested;
      out.device_writes += tile_n[t].device_writes;
      out.adc_reads += tile_n[t].adc_reads;
      out.cells_retested += tile_n[t].cells_retested;
    }
  }
  static obs::Counter rounds_metric =
      obs::MetricsRegistry::instance().counter("detector.rounds", "rounds");
  rounds_metric.add();
  // Per-store detection event (the engine emits the per-round aggregate).
  // Serial — the tile fan-out has already joined — so event order is
  // deterministic at any thread count.
  std::uint64_t predicted_faults = 0;
  for (std::size_t r = 0; r < out.predicted.rows(); ++r) {
    for (std::size_t c = 0; c < out.predicted.cols(); ++c) {
      if (out.predicted.faulty(r, c)) ++predicted_faults;
    }
  }
  obs::EventLog::global().emit(
      obs::EventKind::kFaultDetected, obs::EventSeverity::kInfo, "store",
      {{"cells_tested", static_cast<double>(out.cells_tested)},
       {"predicted_faults", static_cast<double>(predicted_faults)},
       {"cycles", static_cast<double>(out.cycles)},
       {"device_writes", static_cast<double>(out.device_writes)}});
  store.invalidate();
  return out;
}

ClassifiedConfusion evaluate_classified(const DetectionOutcome& out) {
  REFIT_CHECK_MSG(out.truth_before.rows() == out.predicted.rows() &&
                      out.truth_before.cols() == out.predicted.cols(),
                  "evaluate_classified needs a classify_soft outcome");
  ClassifiedConfusion cc;
  for (std::size_t r = 0; r < out.predicted.rows(); ++r) {
    for (std::size_t c = 0; c < out.predicted.cols(); ++c) {
      const FaultKind truth = out.truth_before.at(r, c);
      const bool pred_soft = out.classified_soft.faulty(r, c);
      const bool pred_hard = out.predicted.faulty(r, c) && !pred_soft;
      cc.hard.add(fault_is_hard(truth), pred_hard);
      cc.soft.add(fault_is_soft(truth), pred_soft);
    }
  }
  return cc;
}

ConfusionCounts evaluate_detection(const Crossbar& xbar,
                                   const FaultMatrix& predicted) {
  REFIT_CHECK(predicted.rows() == xbar.rows() &&
              predicted.cols() == xbar.cols());
  ConfusionCounts cc;
  for (std::size_t r = 0; r < xbar.rows(); ++r)
    for (std::size_t c = 0; c < xbar.cols(); ++c)
      cc.add(xbar.is_stuck(r, c), predicted.faulty(r, c));
  return cc;
}

ConfusionCounts evaluate_detection(const CrossbarWeightStore& store,
                                   const FaultMatrix& predicted) {
  REFIT_CHECK(predicted.rows() == store.rows() &&
              predicted.cols() == store.cols());
  ConfusionCounts cc;
  for (std::size_t r = 0; r < store.rows(); ++r)
    for (std::size_t c = 0; c < store.cols(); ++c)
      cc.add(store.true_fault(r, c) != FaultKind::kNone,
             predicted.faulty(r, c));
  return cc;
}

void randomize_crossbar_content(Crossbar& xbar, double p_low, double p_high,
                                Rng& rng) {
  REFIT_CHECK(p_low >= 0.0 && p_high >= 0.0 && p_low + p_high <= 1.0);
  const std::size_t levels = xbar.config().levels;
  const double gap = xbar.config().level_gap();
  for (std::size_t r = 0; r < xbar.rows(); ++r) {
    for (std::size_t c = 0; c < xbar.cols(); ++c) {
      const double u = rng.uniform();
      std::size_t level = 0;
      if (u < p_low) {
        level = 0;
      } else if (u < p_low + p_high) {
        level = levels - 1;
      } else if (levels > 2) {
        level = 1 + rng.uniform_index(levels - 2);
      }
      xbar.write(r, c, static_cast<double>(level) * gap);
    }
  }
}

}  // namespace refit
