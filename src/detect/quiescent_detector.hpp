// On-line fault detection by quiescent-voltage comparison (paper §4).
//
// Per fault type (SA0, then SA1) the detector:
//   1. reads the crossbar and stores the values off-chip (the reference),
//   2. chooses candidate cells — with selected-cell testing (§4.3) only
//      cells whose read-out level makes the fault possible (SA0 ⇒ lowest
//      level, SA1 ⇒ highest level); without it, every cell,
//   3. writes a one-level increment (+δw) / decrement (−δw) to the
//      candidates,
//   4. drives groups of Tr rows per cycle, reading every column output
//      concurrently through the ADC; the comparator reduces both the
//      measured sum and the stored-value reference modulo the divisor
//      (mod 2ⁿ = bit truncation, §4.2) and records the stuck-count residue,
//   5. repeats in the transpose direction (crossbars work both ways),
//   6. restores the original weights with the opposite pulse,
//   7. decodes the residues into per-cell predictions (decoder.hpp).
//
// Test time is counted in voltage-application cycles:
// ceil(Er/Tr) + ceil(Ec/Tc) per pass, where Er/Ec are the selected
// row/column counts (paper §6.1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "rcs/crossbar_store.hpp"
#include "rram/crossbar.hpp"
#include "rram/fault_map.hpp"

namespace refit {

/// Detector knobs.
struct DetectorConfig {
  /// Rows driven per test cycle (Tr). Columns per cycle in the transpose
  /// direction (Tc) defaults to the same value when 0.
  std::size_t test_rows_per_cycle = 16;
  std::size_t test_cols_per_cycle = 0;
  /// Modulo divisor for the reference-voltage comparison (paper uses 16).
  std::size_t modulo_divisor = 16;
  /// Selected-cell testing (§4.3).
  bool selected_cells_only = true;
  /// Enable the exact constraint-propagation rules in the decoder.
  bool use_constraint_propagation = true;
  /// Re-test every predicted-faulty cell with a strong programming pulse to
  /// split hard (permanent) from soft (transient) faults: a cell that moves
  /// under the strong pulse was only transiently pinned — it is scrubbed
  /// and reported in DetectionOutcome::classified_soft instead of being
  /// handed to re-mapping. Off by default (extra pulses cost endurance).
  bool classify_soft = false;

  [[nodiscard]] std::size_t tc() const {
    return test_cols_per_cycle == 0 ? test_rows_per_cycle
                                    : test_cols_per_cycle;
  }
};

/// Result of one detection run over one crossbar (or one store).
struct DetectionOutcome {
  FaultMatrix predicted;
  std::size_t cycles = 0;          ///< voltage-application cycles
  std::size_t cells_tested = 0;    ///< candidate cells pulsed
  std::uint64_t device_writes = 0; ///< ±δw pulses issued (endurance cost)
  std::uint64_t adc_reads = 0;     ///< group read-outs digitized by the ADC
  // Populated only when cfg.classify_soft:
  /// Predicted cells the re-test pass found transient (subset of
  /// predicted's faulty set; these were scrubbed in place).
  FaultMatrix classified_soft;
  /// Ground-truth snapshot taken before any test pulse — classification
  /// scrubs soft faults, so evaluating against post-detection truth would
  /// erase exactly the positives being scored (see evaluate_classified).
  FaultMatrix truth_before;
  /// Cells given the strong re-test pulse.
  std::size_t cells_retested = 0;
};

/// The quiescent-voltage comparison detector.
class QuiescentVoltageDetector {
 public:
  explicit QuiescentVoltageDetector(DetectorConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const DetectorConfig& config() const { return cfg_; }

  /// Run both fault-type passes on a raw crossbar.
  [[nodiscard]] DetectionOutcome detect(Crossbar& xbar) const;

  /// Run detection tile-by-tile over a crossbar-backed weight store and
  /// assemble the predictions in the store's physical coordinates. The
  /// store's cached effective weights are invalidated.
  [[nodiscard]] DetectionOutcome detect_store(CrossbarWeightStore& store) const;

 private:
  /// One fault-type pass. `stuck_level` is the level a faulty cell is
  /// pinned at (0 for SA0, levels-1 for SA1); `pulse` is ±1 level.
  void run_pass(Crossbar& xbar, int stuck_level, int pulse,
                const std::vector<std::vector<int>>& stored,
                FaultMatrix& predicted, DetectionOutcome& out) const;

  DetectorConfig cfg_;
};

/// Compare a prediction against the crossbar's ground truth (binary
/// faulty / fault-free, the paper's §6.1 metrics).
ConfusionCounts evaluate_detection(const Crossbar& xbar,
                                   const FaultMatrix& predicted);

/// Compare a store-level prediction against the store's ground truth.
ConfusionCounts evaluate_detection(const CrossbarWeightStore& store,
                                   const FaultMatrix& predicted);

/// Per-class detection quality of a classify_soft run: the hard counts
/// score (predicted ∧ ¬classified_soft) against hard ground truth, the
/// soft counts score classified_soft against soft ground truth — both
/// relative to the pre-detection snapshot in DetectionOutcome::truth_before.
struct ClassifiedConfusion {
  ConfusionCounts hard;
  ConfusionCounts soft;
};
ClassifiedConfusion evaluate_classified(const DetectionOutcome& out);

/// Program a crossbar with random level content for standalone detection
/// experiments: `p_low` of the cells at the lowest level (high resistance),
/// `p_high` at the highest, the rest uniform over interior levels.
void randomize_crossbar_content(Crossbar& xbar, double p_low, double p_high,
                                Rng& rng);

}  // namespace refit
