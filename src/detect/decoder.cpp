// Fault-site decoding from quiescent-test observables (see decoder.hpp).
#include "detect/decoder.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace refit {

namespace {

enum class CellState : unsigned char { kUnknown, kHealthy, kFaulty };

struct SegmentState {
  const Segment* seg = nullptr;
  std::size_t unresolved = 0;
  /// Residue minus already-resolved faulty cells, kept as a residue.
  std::size_t residual = 0;
};

}  // namespace

std::vector<bool> decode_segments(const DecodeInput& in) {
  REFIT_CHECK(in.rows > 0 && in.cols > 0 && in.divisor >= 2);
  const std::size_t n = in.rows * in.cols;
  REFIT_CHECK(in.candidate.size() == n);

  std::vector<CellState> state(n, CellState::kUnknown);
  for (std::size_t i = 0; i < n; ++i) {
    if (!in.candidate[i]) state[i] = CellState::kHealthy;
  }

  // Index: for each cell, which row/col segment covers it (if any).
  std::vector<int> row_seg_of(n, -1), col_seg_of(n, -1);
  std::vector<SegmentState> rs(in.row_segments.size());
  std::vector<SegmentState> cs(in.col_segments.size());
  for (std::size_t s = 0; s < in.row_segments.size(); ++s) {
    rs[s].seg = &in.row_segments[s];
    rs[s].residual = in.row_segments[s].residue % in.divisor;
    for (std::size_t cell : in.row_segments[s].cells) {
      REFIT_CHECK(cell < n);
      row_seg_of[cell] = static_cast<int>(s);
      if (state[cell] == CellState::kUnknown) ++rs[s].unresolved;
    }
  }
  for (std::size_t s = 0; s < in.col_segments.size(); ++s) {
    cs[s].seg = &in.col_segments[s];
    cs[s].residual = in.col_segments[s].residue % in.divisor;
    for (std::size_t cell : in.col_segments[s].cells) {
      REFIT_CHECK(cell < n);
      col_seg_of[cell] = static_cast<int>(s);
      if (state[cell] == CellState::kUnknown) ++cs[s].unresolved;
    }
  }

  // Resolve a cell and update both covering segments' residuals.
  auto resolve = [&](std::size_t cell, CellState verdict) {
    if (state[cell] != CellState::kUnknown) return;
    state[cell] = verdict;
    for (auto* vec : {&rs, &cs}) {
      const auto& seg_of = (vec == &rs) ? row_seg_of : col_seg_of;
      const int si = seg_of[cell];
      if (si < 0) continue;
      SegmentState& ss = (*vec)[static_cast<std::size_t>(si)];
      REFIT_DCHECK(ss.unresolved > 0);
      --ss.unresolved;
      if (verdict == CellState::kFaulty) {
        // Subtract one fault from the residue (modular arithmetic).
        ss.residual = (ss.residual + in.divisor - 1) % in.divisor;
      }
    }
  };

  if (in.use_constraint_propagation) {
    bool changed = true;
    std::size_t iters = 0;
    while (changed && iters++ < in.max_iterations) {
      changed = false;
      for (auto* vec : {&rs, &cs}) {
        for (SegmentState& ss : *vec) {
          if (ss.unresolved == 0) continue;
          // Modulo information loss: with >= divisor unknowns the residue
          // no longer pins the exact count, so the exact rules are unsafe.
          if (ss.unresolved >= in.divisor) continue;
          if (ss.residual == 0) {
            for (std::size_t cell : ss.seg->cells)
              if (state[cell] == CellState::kUnknown) {
                resolve(cell, CellState::kHealthy);
                changed = true;
              }
          } else if (ss.residual == ss.unresolved) {
            // Snapshot: resolving mutates unresolved/residual.
            std::vector<std::size_t> unknowns;
            for (std::size_t cell : ss.seg->cells)
              if (state[cell] == CellState::kUnknown)
                unknowns.push_back(cell);
            for (std::size_t cell : unknowns) {
              resolve(cell, CellState::kFaulty);
              changed = true;
            }
          }
        }
      }
    }
  }

  // Fallback for the ambiguous remainder: flag when both directions still
  // carry evidence of stuck cells.
  std::vector<bool> predicted(n, false);
  for (std::size_t cell = 0; cell < n; ++cell) {
    switch (state[cell]) {
      case CellState::kFaulty:
        predicted[cell] = true;
        break;
      case CellState::kHealthy:
        break;
      case CellState::kUnknown: {
        const int rsi = row_seg_of[cell];
        const int csi = col_seg_of[cell];
        const bool row_ev =
            rsi >= 0 && rs[static_cast<std::size_t>(rsi)].residual > 0;
        const bool col_ev =
            csi >= 0 && cs[static_cast<std::size_t>(csi)].residual > 0;
        // A cell covered by only one direction keeps that direction's
        // verdict; covered by both requires agreement.
        if (rsi >= 0 && csi >= 0) {
          predicted[cell] = row_ev && col_ev;
        } else {
          predicted[cell] = row_ev || col_ev;
        }
        break;
      }
    }
  }
  return predicted;
}

}  // namespace refit
