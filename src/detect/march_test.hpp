// March-style per-cell test — the traditional memory-test baseline the
// paper argues against (§1, §2.2: "the test time of traditional test
// methods increases quadratically with the number of rows (columns)",
// refs. [9][12]).
//
// Each cell is exercised individually: read, write a displaced level,
// read back, restore, in both directions. This gives near-perfect
// precision/recall but costs Θ(rows·cols) cycles — versus the
// quiescent-voltage method's Θ(rows/Tr + cols/Tc) — and wears every cell
// with several real write pulses per invocation, which matters when the
// tested array has limited endurance.
#pragma once

#include <cstdint>

#include "rram/crossbar.hpp"
#include "rram/fault_map.hpp"

namespace refit {

/// Cycle/accuracy accounting of one March pass.
struct MarchOutcome {
  FaultMatrix predicted;
  std::size_t cycles = 0;          ///< single-cell read/write operations
  std::uint64_t device_writes = 0; ///< endurance-consuming pulses issued
};

/// Knobs for the March baseline.
struct MarchConfig {
  /// Restore each cell's original level after testing (2 extra cycles of
  /// the sequence; disabling models a destructive test).
  bool restore = true;
};

/// Run the per-cell March sequence over the whole crossbar.
MarchOutcome march_test(Crossbar& xbar, const MarchConfig& cfg = {});

}  // namespace refit
