// March-style full-array test baseline (see march_test.hpp).
#include "detect/march_test.hpp"

#include <cstdlib>

namespace refit {

MarchOutcome march_test(Crossbar& xbar, const MarchConfig& cfg) {
  const std::size_t rows = xbar.rows(), cols = xbar.cols();
  const auto levels = static_cast<int>(xbar.config().levels);
  const double gap = xbar.config().level_gap();
  MarchOutcome out;
  out.predicted = FaultMatrix(rows, cols);

  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const int original = xbar.read_level(r, c);
      ++out.cycles;  // initial read

      // Element 1: march the cell towards the opposite end of its range
      // and check that it moved. A cell at the bottom is pushed up (SA0
      // check), a cell at the top is pushed down (SA1 check); interior
      // cells are exercised in both directions.
      bool stuck_low = false, stuck_high = false;
      if (original < levels - 1) {
        xbar.write(r, c, (original + 1) * gap);
        ++out.cycles;
        ++out.device_writes;
        const int readback = xbar.read_level(r, c);
        ++out.cycles;
        if (readback <= original) stuck_low = (original == 0);
        // An interior cell that failed to move is stuck wherever it is;
        // classify by its pinned level below.
        if (readback <= original && original > 0) {
          stuck_high = readback == levels - 1;
          stuck_low = readback == 0;
        }
      }
      if (original > 0) {
        xbar.write(r, c, (original - 1) * gap);
        ++out.cycles;
        ++out.device_writes;
        const int readback = xbar.read_level(r, c);
        ++out.cycles;
        if (readback >= original && original == levels - 1) stuck_high = true;
      }

      if (cfg.restore) {
        xbar.write(r, c, original * gap);
        ++out.cycles;
        ++out.device_writes;
      }

      if (stuck_low) {
        out.predicted.set(r, c, FaultKind::kStuckAt0);
      } else if (stuck_high) {
        out.predicted.set(r, c, FaultKind::kStuckAt1);
      }
    }
  }
  return out;
}

}  // namespace refit
