// Segment-constraint decoder for the quiescent-voltage comparison test.
//
// Each test cycle yields, per column (or per row in the transpose
// direction), the *residue modulo the divisor* of the number of stuck cells
// inside one (row-group × column) segment. The decoder combines the row-
// and column-direction residues into per-cell fault predictions:
//
//   1. Exact rules (constraint propagation, nonogram-style): a segment with
//      residue 0 and fewer unknowns than the divisor proves all its unknown
//      candidates healthy; a segment whose residue equals its unknown count
//      proves them all faulty. Resolutions feed back into crossing
//      segments until a fixpoint.
//   2. Ambiguity fallback: any candidate still unresolved is flagged faulty
//      iff both its row segment and its column segment retain a nonzero
//      residual — the source of the paper's false positives, which grow
//      with the test size.
#pragma once

#include <cstddef>
#include <vector>

#include "rram/fault_map.hpp"

namespace refit {

/// One measured segment: the candidate cells it covers (flat indices into
/// the crossbar) and the stuck-count residue the comparator produced.
struct Segment {
  std::vector<std::size_t> cells;
  std::size_t residue = 0;  ///< (#stuck cells) mod divisor, as measured
};

/// Decoder inputs for one fault-type pass over one crossbar.
struct DecodeInput {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t divisor = 16;
  /// Candidate mask (flat row-major); non-candidates are never flagged.
  std::vector<bool> candidate;
  std::vector<Segment> row_segments;
  std::vector<Segment> col_segments;
  bool use_constraint_propagation = true;
  std::size_t max_iterations = 16;
};

/// Per-cell verdicts; flat row-major, true = predicted faulty.
std::vector<bool> decode_segments(const DecodeInput& in);

}  // namespace refit
