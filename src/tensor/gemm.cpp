// Packed-panel GEMM micro-kernels behind tensor/gemm.hpp.
#include "tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/thread_pool.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace refit {

namespace {

std::atomic<ReductionMode>& mode_cell() {
  static std::atomic<ReductionMode> mode{[] {
    const char* env = std::getenv("REFIT_FAST_REDUCE");
    return (env != nullptr && env[0] == '1' && env[1] == '\0')
               ? ReductionMode::kFast
               : ReductionMode::kDeterministic;
  }()};
  return mode;
}

}  // namespace

ReductionMode reduction_mode() {
  return mode_cell().load(std::memory_order_relaxed);
}

void set_reduction_mode(ReductionMode mode) {
  mode_cell().store(mode, std::memory_order_relaxed);
}

namespace gemm {

namespace {

/// Row-block height of the mid loop: bounds the A slab a lane streams per
/// strip pass to kMC×k floats so it stays L2-resident at bench shapes.
constexpr std::size_t kMC = 64;

/// Deterministic micro-kernel: MR C rows × kNR C columns accumulated in
/// registers down the whole k extent, additions k-ascending from zero —
/// the exact rounding sequence of the pre-blocking naive kernels.
#if defined(__SSE2__)
/// Explicit SSE2 lanes (baseline on x86-64). Each C element still sees one
/// IEEE mul + add per kk in k order — _mm_mul_ps/_mm_add_ps round exactly
/// like the scalar ops — so the bits match the scalar form. Hand-written
/// because GCC's SLP pass turns the branchless variant into shuffle soup
/// (~3x slower than broadcast-axpy).
template <std::size_t MR, bool ZeroSkip>
void micro_det(std::size_t k, const float* a, std::size_t lda, const float* bp,
               float* c, std::size_t ldc, std::size_t nvalid) {
  __m128 lo[MR];
  __m128 hi[MR];
  for (std::size_t r = 0; r < MR; ++r) {
    lo[r] = _mm_setzero_ps();
    hi[r] = _mm_setzero_ps();
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const __m128 blo = _mm_loadu_ps(bp + kk * kNR);
    const __m128 bhi = _mm_loadu_ps(bp + kk * kNR + 4);
    for (std::size_t r = 0; r < MR; ++r) {
      const float av = a[r * lda + kk];
      if constexpr (ZeroSkip) {
        if (av == 0.0f) continue;  // post-ReLU activations are sparse
      }
      const __m128 va = _mm_set1_ps(av);
      lo[r] = _mm_add_ps(lo[r], _mm_mul_ps(va, blo));
      hi[r] = _mm_add_ps(hi[r], _mm_mul_ps(va, bhi));
    }
  }
  float acc[MR][kNR];
  for (std::size_t r = 0; r < MR; ++r) {
    _mm_storeu_ps(acc[r], lo[r]);
    _mm_storeu_ps(acc[r] + 4, hi[r]);
  }
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t j = 0; j < nvalid; ++j) c[r * ldc + j] = acc[r][j];
}
#else
/// Portable scalar form: the kNR-wide inner loops carry independent
/// accumulators, so they vectorize without reassociating anything.
template <std::size_t MR, bool ZeroSkip>
void micro_det(std::size_t k, const float* a, std::size_t lda, const float* bp,
               float* c, std::size_t ldc, std::size_t nvalid) {
  float acc[MR][kNR] = {};
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* brow = bp + kk * kNR;
    for (std::size_t r = 0; r < MR; ++r) {
      const float av = a[r * lda + kk];
      if constexpr (ZeroSkip) {
        if (av == 0.0f) continue;  // post-ReLU activations are sparse
      }
      for (std::size_t j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t j = 0; j < nvalid; ++j) c[r * ldc + j] = acc[r][j];
}
#endif

/// Fast micro-kernel: k split across two interleaved partial accumulators
/// (reassociation → more FMA-latency overlap), no zero skip.
template <std::size_t MR>
void micro_fast(std::size_t k, const float* a, std::size_t lda, const float* bp,
                float* c, std::size_t ldc, std::size_t nvalid) {
  float acc0[MR][kNR] = {};
  float acc1[MR][kNR] = {};
  std::size_t kk = 0;
  for (; kk + 2 <= k; kk += 2) {
    const float* b0 = bp + kk * kNR;
    const float* b1 = b0 + kNR;
    for (std::size_t r = 0; r < MR; ++r) {
      const float av0 = a[r * lda + kk];
      const float av1 = a[r * lda + kk + 1];
      for (std::size_t j = 0; j < kNR; ++j) {
        acc0[r][j] += av0 * b0[j];
        acc1[r][j] += av1 * b1[j];
      }
    }
  }
  if (kk < k) {
    const float* b0 = bp + kk * kNR;
    for (std::size_t r = 0; r < MR; ++r) {
      const float av = a[r * lda + kk];
      for (std::size_t j = 0; j < kNR; ++j) acc0[r][j] += av * b0[j];
    }
  }
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t j = 0; j < nvalid; ++j)
      c[r * ldc + j] = acc0[r][j] + acc1[r][j];
}

/// mr ∈ [1, kMR] dispatch so every instantiation has compile-time row
/// counts (full unroll, accumulators in registers).
void micro(std::size_t mr, std::size_t k, const float* a, std::size_t lda,
           const float* bp, float* c, std::size_t ldc, std::size_t nvalid,
           bool zero_skip, bool fast) {
  if (fast) {
    switch (mr) {
      case 4: micro_fast<4>(k, a, lda, bp, c, ldc, nvalid); return;
      case 3: micro_fast<3>(k, a, lda, bp, c, ldc, nvalid); return;
      case 2: micro_fast<2>(k, a, lda, bp, c, ldc, nvalid); return;
      default: micro_fast<1>(k, a, lda, bp, c, ldc, nvalid); return;
    }
  }
  if (zero_skip) {
    switch (mr) {
      case 4: micro_det<4, true>(k, a, lda, bp, c, ldc, nvalid); return;
      case 3: micro_det<3, true>(k, a, lda, bp, c, ldc, nvalid); return;
      case 2: micro_det<2, true>(k, a, lda, bp, c, ldc, nvalid); return;
      default: micro_det<1, true>(k, a, lda, bp, c, ldc, nvalid); return;
    }
  }
  switch (mr) {
    case 4: micro_det<4, false>(k, a, lda, bp, c, ldc, nvalid); return;
    case 3: micro_det<3, false>(k, a, lda, bp, c, ldc, nvalid); return;
    case 2: micro_det<2, false>(k, a, lda, bp, c, ldc, nvalid); return;
    default: micro_det<1, false>(k, a, lda, bp, c, ldc, nvalid); return;
  }
}

}  // namespace

void pack_b(const float* b, std::size_t k, std::size_t n, float* bp) {
  const std::size_t nstrips = strip_count(n);
  // kk-major walk: reads stream B once; each row scatters into the strip
  // panels. Lanes own disjoint kk ranges of every panel.
  parallel_for_grained(k, n, [&](std::size_t k0, std::size_t k1) {
    for (std::size_t kk = k0; kk < k1; ++kk) {
      const float* row = b + kk * n;
      for (std::size_t s = 0; s < nstrips; ++s) {
        float* dst = bp + (s * k + kk) * kNR;
        const std::size_t j0 = s * kNR;
        const std::size_t nvalid = std::min(kNR, n - j0);
        std::memcpy(dst, row + j0, nvalid * sizeof(float));
        for (std::size_t r = nvalid; r < kNR; ++r) dst[r] = 0.0f;
      }
    }
  });
}

void pack_bt(const float* bt, std::size_t n, std::size_t k, float* bp) {
  // Strip-major: each strip transposes kNR contiguous Bᵀ rows (L1-resident
  // sources, contiguous reads). Lanes own disjoint strips.
  parallel_for_grained(
      strip_count(n), k * kNR, [&](std::size_t s0, std::size_t s1) {
        for (std::size_t s = s0; s < s1; ++s) {
          float* panel = bp + s * k * kNR;
          const std::size_t j0 = s * kNR;
          const std::size_t nvalid = std::min(kNR, n - j0);
          for (std::size_t r = 0; r < nvalid; ++r) {
            const float* src = bt + (j0 + r) * k;
            for (std::size_t kk = 0; kk < k; ++kk)
              panel[kk * kNR + r] = src[kk];
          }
          for (std::size_t r = nvalid; r < kNR; ++r)
            for (std::size_t kk = 0; kk < k; ++kk) panel[kk * kNR + r] = 0.0f;
        }
      });
}

void pack_at(const float* a, std::size_t k, std::size_t m, float* at) {
  parallel_for_grained(m, k, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* dst = at + i * k;
      for (std::size_t kk = 0; kk < k; ++kk) dst[kk] = a[kk * m + i];
    }
  });
}

void run(std::size_t m, std::size_t k, std::size_t n, const float* a,
         std::size_t lda, const float* bp, float* c, std::size_t ldc,
         bool zero_skip) {
  const bool fast = reduction_mode() == ReductionMode::kFast;
  const std::size_t nstrips = strip_count(n);
  // Lanes own contiguous C row blocks; within a lane the mid loop holds a
  // kMC-row A slab against every (L1-resident) packed strip.
  parallel_for_grained(m, 2 * k * n, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t ic = i0; ic < i1; ic += kMC) {
      const std::size_t ie = std::min(i1, ic + kMC);
      for (std::size_t s = 0; s < nstrips; ++s) {
        const float* strip = bp + s * k * kNR;
        const std::size_t j0 = s * kNR;
        const std::size_t nvalid = std::min(kNR, n - j0);
        for (std::size_t i = ic; i < ie; i += kMR) {
          const std::size_t mr = std::min(kMR, ie - i);
          micro(mr, k, a + i * lda, lda, strip, c + i * ldc + j0, ldc, nvalid,
                zero_skip, fast);
        }
      }
    }
  });
}

std::vector<float>& scratch(std::size_t slot) {
  thread_local std::vector<float> buffers[2];
  return buffers[slot < 2 ? slot : 0];
}

}  // namespace gemm
}  // namespace refit
