// Dense row-major tensor (see tensor.hpp).
#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/rng.hpp"

namespace refit {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  REFIT_CHECK_MSG(data_.size() == shape_numel(shape_),
                  "data size " << data_.size() << " does not match shape "
                               << shape_to_string(shape_));
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::size_t Tensor::dim(std::size_t i) const {
  REFIT_CHECK_MSG(i < shape_.size(), "dim " << i << " out of rank "
                                            << shape_.size());
  return shape_[i];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = *this;
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::reshape(Shape new_shape) {
  REFIT_CHECK_MSG(shape_numel(new_shape) == data_.size(),
                  "cannot reshape " << shape_to_string(shape_) << " to "
                                    << shape_to_string(new_shape));
  shape_ = std::move(new_shape);
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

Tensor& Tensor::operator+=(const Tensor& o) {
  REFIT_CHECK_MSG(shape_ == o.shape_, "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  REFIT_CHECK_MSG(shape_ == o.shape_, "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

float Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace refit
