// Tensor kernels — GEMM / conv fan-out over the thread pool (see ops.hpp).
#include "tensor/ops.hpp"

#include <algorithm>
#include <limits>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "tensor/gemm.hpp"

namespace refit {

namespace {

void check_rank2(const Tensor& t, const char* name) {
  REFIT_CHECK_MSG(t.rank() == 2,
                  name << " must be rank-2, got " << shape_to_string(t.shape()));
}

void count_gemm_flops(std::size_t m, std::size_t k, std::size_t n) {
  static obs::Counter flops =
      obs::MetricsRegistry::instance().counter("tensor.gemm.flops", "flop");
  flops.add(2 * m * k * n);
}

}  // namespace

// All three GEMMs run on the packed-panel core in tensor/gemm.hpp: the
// right-hand side is packed into kNR-wide column strips once per call, then
// a kMR×kNR register-blocked micro-kernel streams each strip against blocks
// of A rows. Lanes own contiguous C row blocks and every element keeps its
// serial k-ascending accumulation order, so deterministic-mode results are
// bit-identical to the pre-blocking kernels at any thread count (kFast
// reassociates — see docs/kernels.md).

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "a");
  check_rank2(b, "b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  REFIT_CHECK_MSG(b.dim(0) == k, "inner dims mismatch: " << k << " vs "
                                                         << b.dim(0));
  Tensor c({m, n});
  count_gemm_flops(m, k, n);
  std::vector<float>& panels = gemm::scratch(0);
  panels.resize(gemm::packed_size(k, n));
  gemm::pack_b(b.data(), k, n, panels.data());
  // The zero skip matters: post-ReLU activations are sparse.
  gemm::run(m, k, n, a.data(), k, panels.data(), c.data(), n,
            /*zero_skip=*/true);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "a");
  check_rank2(b, "b");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  REFIT_CHECK_MSG(b.dim(0) == k, "inner dims mismatch in matmul_tn");
  Tensor c({m, n});
  count_gemm_flops(m, k, n);
  // Transpose-pack A so the micro-kernel reads it row-major instead of
  // walking columns at stride m.
  std::vector<float>& arows = gemm::scratch(1);
  arows.resize(m * k);
  gemm::pack_at(a.data(), k, m, arows.data());
  std::vector<float>& panels = gemm::scratch(0);
  panels.resize(gemm::packed_size(k, n));
  gemm::pack_b(b.data(), k, n, panels.data());
  gemm::run(m, k, n, arows.data(), k, panels.data(), c.data(), n,
            /*zero_skip=*/true);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "a");
  check_rank2(b, "b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  REFIT_CHECK_MSG(b.dim(1) == k, "inner dims mismatch in matmul_nt");
  Tensor c({m, n});
  count_gemm_flops(m, k, n);
  std::vector<float>& panels = gemm::scratch(0);
  panels.resize(gemm::packed_size(k, n));
  gemm::pack_bt(b.data(), n, k, panels.data());
  // The pre-blocking nt kernel had no zero skip; keep its exact FP path.
  gemm::run(m, k, n, a.data(), k, panels.data(), c.data(), n,
            /*zero_skip=*/false);
  return c;
}

Tensor transpose(const Tensor& m) {
  check_rank2(m, "m");
  const std::size_t r = m.dim(0), c = m.dim(1);
  Tensor t({c, r});
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) t.at(j, i) = m.at(i, j);
  return t;
}

void add_row_vector(Tensor& m, const Tensor& bias) {
  check_rank2(m, "m");
  REFIT_CHECK(bias.rank() == 1 && bias.dim(0) == m.dim(1));
  const std::size_t rows = m.dim(0), cols = m.dim(1);
  float* mp = m.data();
  const float* bp = bias.data();
  for (std::size_t i = 0; i < rows; ++i) {
    float* row = mp + i * cols;
    for (std::size_t j = 0; j < cols; ++j) row[j] += bp[j];
  }
}

Tensor column_sums(const Tensor& m) {
  check_rank2(m, "m");
  const std::size_t rows = m.dim(0), cols = m.dim(1);
  Tensor s({cols});
  const float* mp = m.data();
  float* sp = s.data();
  for (std::size_t i = 0; i < rows; ++i) {
    const float* row = mp + i * cols;
    for (std::size_t j = 0; j < cols; ++j) sp[j] += row[j];
  }
  return s;
}

Tensor im2col(const Tensor& input, const ConvGeometry& g) {
  REFIT_CHECK(input.rank() == 4);
  const std::size_t batch = input.dim(0);
  REFIT_CHECK(input.dim(1) == g.in_channels && input.dim(2) == g.in_h &&
              input.dim(3) == g.in_w);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t plen = g.patch_len();
  Tensor cols({batch * oh * ow, plen});
  float* cp = cols.data();
  // Each image owns a disjoint block of patch rows — batch-parallel, with a
  // grain cutoff so tiny shapes run inline instead of paying pool fan-out.
  parallel_for_grained(batch, oh * ow * plen,
                       [&](std::size_t n0, std::size_t n1) {
  for (std::size_t n = n0; n < n1; ++n) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        float* dst = cp + ((n * oh + y) * ow + x) * plen;
        std::size_t idx = 0;
        for (std::size_t c = 0; c < g.in_channels; ++c) {
          for (std::size_t kh = 0; kh < g.kernel; ++kh) {
            const std::ptrdiff_t in_y =
                static_cast<std::ptrdiff_t>(y * g.stride + kh) -
                static_cast<std::ptrdiff_t>(g.pad);
            for (std::size_t kw = 0; kw < g.kernel; ++kw, ++idx) {
              const std::ptrdiff_t in_x =
                  static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                  static_cast<std::ptrdiff_t>(g.pad);
              if (in_y < 0 || in_x < 0 ||
                  in_y >= static_cast<std::ptrdiff_t>(g.in_h) ||
                  in_x >= static_cast<std::ptrdiff_t>(g.in_w)) {
                dst[idx] = 0.0f;
              } else {
                dst[idx] = input.at4(n, c, static_cast<std::size_t>(in_y),
                                     static_cast<std::size_t>(in_x));
              }
            }
          }
        }
      }
    }
  }
  });
  return cols;
}

Tensor col2im(const Tensor& cols, std::size_t batch, const ConvGeometry& g) {
  REFIT_CHECK(cols.rank() == 2);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t plen = g.patch_len();
  REFIT_CHECK(cols.dim(0) == batch * oh * ow && cols.dim(1) == plen);
  Tensor input({batch, g.in_channels, g.in_h, g.in_w});
  const float* cp = cols.data();
  // Overlapping windows only collide within one image; images are disjoint,
  // so the scatter-accumulate is batch-parallel and keeps its serial order.
  parallel_for_grained(batch, oh * ow * plen,
                       [&](std::size_t n0, std::size_t n1) {
  for (std::size_t n = n0; n < n1; ++n) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        const float* src = cp + ((n * oh + y) * ow + x) * plen;
        std::size_t idx = 0;
        for (std::size_t c = 0; c < g.in_channels; ++c) {
          for (std::size_t kh = 0; kh < g.kernel; ++kh) {
            const std::ptrdiff_t in_y =
                static_cast<std::ptrdiff_t>(y * g.stride + kh) -
                static_cast<std::ptrdiff_t>(g.pad);
            for (std::size_t kw = 0; kw < g.kernel; ++kw, ++idx) {
              const std::ptrdiff_t in_x =
                  static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                  static_cast<std::ptrdiff_t>(g.pad);
              if (in_y >= 0 && in_x >= 0 &&
                  in_y < static_cast<std::ptrdiff_t>(g.in_h) &&
                  in_x < static_cast<std::ptrdiff_t>(g.in_w)) {
                input.at4(n, c, static_cast<std::size_t>(in_y),
                          static_cast<std::size_t>(in_x)) += src[idx];
              }
            }
          }
        }
      }
    }
  }
  });
  return input;
}

Tensor rows_to_nchw(const Tensor& rows, std::size_t batch, std::size_t oc,
                    std::size_t oh, std::size_t ow) {
  REFIT_CHECK(rows.rank() == 2 && rows.dim(0) == batch * oh * ow &&
              rows.dim(1) == oc);
  Tensor out({batch, oc, oh, ow});
  const float* rp = rows.data();
  for (std::size_t n = 0; n < batch; ++n)
    for (std::size_t y = 0; y < oh; ++y)
      for (std::size_t x = 0; x < ow; ++x) {
        const float* row = rp + ((n * oh + y) * ow + x) * oc;
        for (std::size_t c = 0; c < oc; ++c) out.at4(n, c, y, x) = row[c];
      }
  return out;
}

Tensor nchw_to_rows(const Tensor& t) {
  REFIT_CHECK(t.rank() == 4);
  const std::size_t batch = t.dim(0), oc = t.dim(1), oh = t.dim(2),
                    ow = t.dim(3);
  Tensor rows({batch * oh * ow, oc});
  float* rp = rows.data();
  for (std::size_t n = 0; n < batch; ++n)
    for (std::size_t y = 0; y < oh; ++y)
      for (std::size_t x = 0; x < ow; ++x) {
        float* row = rp + ((n * oh + y) * ow + x) * oc;
        for (std::size_t c = 0; c < oc; ++c) row[c] = t.at4(n, c, y, x);
      }
  return rows;
}

Tensor maxpool2d(const Tensor& input, std::size_t window, std::size_t stride,
                 std::vector<std::size_t>& argmax) {
  REFIT_CHECK(input.rank() == 4);
  const std::size_t batch = input.dim(0), ch = input.dim(1),
                    ih = input.dim(2), iw = input.dim(3);
  REFIT_CHECK(ih >= window && iw >= window);
  const std::size_t oh = (ih - window) / stride + 1;
  const std::size_t ow = (iw - window) / stride + 1;
  Tensor out({batch, ch, oh, ow});
  argmax.assign(out.numel(), 0);
  // Output index derived from (n, c, y, x) instead of a running counter so
  // each image's windows can run on a separate lane; grained so small pools
  // stay inline.
  parallel_for_grained(batch, ch * oh * ow * window * window,
                       [&](std::size_t n0, std::size_t n1) {
  for (std::size_t n = n0; n < n1; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          const std::size_t oi = ((n * ch + c) * oh + y) * ow + x;
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t wy = 0; wy < window; ++wy) {
            for (std::size_t wx = 0; wx < window; ++wx) {
              const std::size_t yy = y * stride + wy;
              const std::size_t xx = x * stride + wx;
              const std::size_t flat =
                  ((n * ch + c) * ih + yy) * iw + xx;
              const float v = input[flat];
              if (v > best) {
                best = v;
                best_idx = flat;
              }
            }
          }
          out[oi] = best;
          argmax[oi] = best_idx;
        }
      }
    }
  }
  });
  return out;
}

Tensor maxpool2d_backward(const Tensor& grad_out, const Shape& input_shape,
                          const std::vector<std::size_t>& argmax) {
  REFIT_CHECK(grad_out.numel() == argmax.size());
  Tensor grad_in(input_shape);
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    REFIT_DCHECK(argmax[i] < grad_in.numel());
    grad_in[argmax[i]] += grad_out[i];
  }
  return grad_in;
}

}  // namespace refit
