// Dense row-major float tensor — the numeric substrate for the NN training
// framework (S1 in DESIGN.md).
//
// Deliberately minimal: contiguous storage, explicit shapes, no lazy views.
// The simulator's hot paths (crossbar MVM, im2col convolution) are expressed
// as free functions in ops.hpp operating on Tensors.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace refit {

class Rng;

/// Shape of a tensor: list of dimension extents.
using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (1 for rank-0).
std::size_t shape_numel(const Shape& shape);

/// Human-readable "[a, b, c]" form for error messages.
std::string shape_to_string(const Shape& shape);

/// Contiguous row-major float tensor.
class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  /// Constant-filled tensor.
  Tensor(Shape shape, float fill);
  /// Tensor adopting the given data (size must match the shape).
  Tensor(Shape shape, std::vector<float> data);

  /// Convenience factories -----------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float v) { return {std::move(shape), v}; }
  /// i.i.d. N(0, stddev²) entries.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  /// i.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const;
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::vector<float>& vec() { return data_; }
  [[nodiscard]] const std::vector<float>& vec() const { return data_; }

  /// Flat element access.
  float& operator[](std::size_t i) {
    REFIT_DCHECK(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    REFIT_DCHECK(i < data_.size());
    return data_[i];
  }

  /// 2-D access (rank must be 2).
  float& at(std::size_t r, std::size_t c) {
    REFIT_DCHECK(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  float at(std::size_t r, std::size_t c) const {
    REFIT_DCHECK(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }

  /// 4-D access (rank must be 4) — used for [N, C, H, W] activations.
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    REFIT_DCHECK(rank() == 4);
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  float at4(std::size_t n, std::size_t c, std::size_t h,
            std::size_t w) const {
    REFIT_DCHECK(rank() == 4);
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  /// Reinterpret the same storage with a new shape of equal numel.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;
  /// In-place reshape (numel must match).
  void reshape(Shape new_shape);

  /// Fill every element with v.
  void fill(float v);
  /// Set all elements to zero.
  void zero() { fill(0.0f); }

  /// Elementwise in-place arithmetic (shapes must match exactly).
  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(float s);

  /// Sum / max-abs over all elements.
  [[nodiscard]] float sum() const;
  [[nodiscard]] float max_abs() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace refit
