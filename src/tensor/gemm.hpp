// Blocked, register-tiled GEMM core shared by the tensor kernels
// (tensor/ops.cpp) and the RCS fused faulty-forward kernel
// (rcs/crossbar_store.cpp).
//
// Layout: the right-hand matrix is packed into column strips of kNR
// contiguous floats per k-step — strip s holds columns [s·kNR, (s+1)·kNR)
// as a k×kNR panel at bp + s·k·kNR, tail lanes zero-padded. The micro-
// kernel then streams one L1-resident strip against kMR rows of A,
// accumulating a kMR×kNR register block down the full k extent.
//
// Determinism: each output element is an independent dot product whose
// additions run in k-ascending order from a zero accumulator — exactly the
// sequence the pre-blocking naive kernels performed — so deterministic-mode
// results are bit-identical to them (and across thread counts; lanes write
// disjoint C rows). ReductionMode::kFast (opt-in via
// refit::set_reduction_mode or REFIT_FAST_REDUCE=1) permits reassociation:
// the micro-kernel splits k across two interleaved partial accumulators,
// which changes the rounding sequence but stays within ~1e-4 relative
// error on normalized data.
#pragma once

#include <cstddef>
#include <vector>

namespace refit {

/// Floating-point reduction contract of the GEMM kernels.
enum class ReductionMode {
  kDeterministic,  ///< bit-identical to the serial k-ascending sum (default)
  kFast            ///< reassociated accumulators (faster, ~1e-4 rel error)
};

/// Process-wide reduction mode. Initialized from REFIT_FAST_REDUCE=1 on
/// first query; set_reduction_mode overrides the environment.
[[nodiscard]] ReductionMode reduction_mode();
void set_reduction_mode(ReductionMode mode);

namespace gemm {

/// Micro-kernel register block: kMR C rows × kNR C columns held in
/// registers across the whole k extent (kNR = two 4-wide SSE vectors, one
/// AVX vector — auto-vectorized FMA under the build's optimization flags).
inline constexpr std::size_t kMR = 4;
inline constexpr std::size_t kNR = 8;

/// Number of kNR-wide column strips covering n columns.
[[nodiscard]] constexpr std::size_t strip_count(std::size_t n) {
  return (n + kNR - 1) / kNR;
}

/// Elements of a packed panel buffer for a k×n right-hand side.
[[nodiscard]] constexpr std::size_t packed_size(std::size_t k, std::size_t n) {
  return strip_count(n) * k * kNR;
}

/// Flat index of element (kk, j) inside a packed panel buffer — the
/// scatter target for producers that pack from non-matrix sources (the
/// fused faulty-forward kernel packs straight from crossbar tiles).
[[nodiscard]] constexpr std::size_t packed_index(std::size_t k, std::size_t kk,
                                                 std::size_t j) {
  return ((j / kNR) * k + kk) * kNR + (j % kNR);
}

/// Pack row-major B[k,n] into strips (tail lanes zeroed).
void pack_b(const float* b, std::size_t k, std::size_t n, float* bp);

/// Pack row-major Bᵀ[n,k] into strips of the implied B[k,n] — the
/// matmul_nt right-hand side (tail lanes zeroed).
void pack_bt(const float* bt, std::size_t n, std::size_t k, float* bp);

/// Transpose-pack column-walked A[k,m] into row-major At[m,k] — removes
/// matmul_tn's stride-m column walk from the inner loop.
void pack_at(const float* a, std::size_t k, std::size_t m, float* at);

/// C[m,n] (row-major, ldc) = A[m,k] (row-major, lda) · packed B. Fans C
/// rows across the pool with grain control; honors reduction_mode().
/// `zero_skip` replicates the naive kernels' `if (a == 0) continue` (the
/// post-ReLU sparsity shortcut) in deterministic mode; kFast ignores it.
void run(std::size_t m, std::size_t k, std::size_t n, const float* a,
         std::size_t lda, const float* bp, float* c, std::size_t ldc,
         bool zero_skip);

/// Thread-local scratch buffer for packed panels (slot 0: right-hand
/// panels, slot 1: transposed A panels). Contents are call-local.
[[nodiscard]] std::vector<float>& scratch(std::size_t slot);

}  // namespace gemm
}  // namespace refit
