// Numeric kernels on Tensors: GEMM variants for forward/backward propagation,
// im2col/col2im for convolution, max-pooling, and small layout helpers.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace refit {

/// C = A·B with A:[m,k], B:[k,n] → C:[m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ·B with A:[k,m], B:[k,n] → C:[m,n]  (weight-gradient GEMM).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A·Bᵀ with A:[m,k], B:[n,k] → C:[m,n]  (input-gradient GEMM).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Transpose a rank-2 tensor.
Tensor transpose(const Tensor& m);

/// Add a length-n bias vector to every row of an [m,n] matrix.
void add_row_vector(Tensor& m, const Tensor& bias);

/// Column sums of an [m,n] matrix → [n]  (bias gradient).
Tensor column_sums(const Tensor& m);

/// Geometry of a 2-D convolution / pooling window.
struct ConvGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  [[nodiscard]] std::size_t out_h() const {
    REFIT_CHECK(in_h + 2 * pad >= kernel);
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] std::size_t out_w() const {
    REFIT_CHECK(in_w + 2 * pad >= kernel);
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] std::size_t patch_len() const {
    return in_channels * kernel * kernel;
  }
};

/// Unfold [N,C,H,W] input into the patches matrix
/// [N·OH·OW, C·k·k]; row order is (n, oh, ow), column order (c, kh, kw).
Tensor im2col(const Tensor& input, const ConvGeometry& g);

/// Fold a patches-matrix gradient back into an input gradient [N,C,H,W]
/// (accumulating overlapping windows). Inverse of im2col's scatter pattern.
Tensor col2im(const Tensor& cols, std::size_t batch, const ConvGeometry& g);

/// Reorder a [N·OH·OW, OC] row matrix into an [N, OC, OH, OW] tensor.
Tensor rows_to_nchw(const Tensor& rows, std::size_t batch, std::size_t oc,
                    std::size_t oh, std::size_t ow);

/// Inverse of rows_to_nchw.
Tensor nchw_to_rows(const Tensor& t);

/// 2-D max pooling over [N,C,H,W]; returns pooled output and writes the
/// flat argmax index of each window into `argmax` (same numel as output).
Tensor maxpool2d(const Tensor& input, std::size_t window, std::size_t stride,
                 std::vector<std::size_t>& argmax);

/// Scatter pooled gradients back through the recorded argmax indices.
Tensor maxpool2d_backward(const Tensor& grad_out, const Shape& input_shape,
                          const std::vector<std::size_t>& argmax);

}  // namespace refit
