// RRAM crossbar tile device model (see crossbar.hpp).
#include "rram/crossbar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/serialize.hpp"

namespace refit {

Crossbar::Crossbar(CrossbarConfig cfg, EnduranceModel endurance, Rng rng)
    : cfg_(cfg), endurance_(endurance), rng_(rng) {
  REFIT_CHECK(cfg_.rows > 0 && cfg_.cols > 0);
  REFIT_CHECK_MSG(cfg_.levels >= 2, "need at least 2 resistance levels");
  REFIT_CHECK(cfg_.write_noise_sigma >= 0.0);
  const std::size_t n = cfg_.rows * cfg_.cols;
  g_.assign(n, 0.0);
  faults_.assign(n, FaultKind::kNone);
  writes_.assign(n, 0);
  endurance_limit_.assign(n, 0);
  soft_ttl_.assign(n, 0);
  soft_restore_.assign(n, 0.0);
  if (endurance_.limited()) {
    for (auto& lim : endurance_limit_) {
      const double draw =
          std::round(rng_.normal(endurance_.mean, endurance_.stddev));
      lim = static_cast<std::uint32_t>(std::max(1.0, std::min(
          draw, static_cast<double>(std::numeric_limits<std::uint32_t>::max() -
                                    1))));
    }
  }
}

std::size_t Crossbar::idx(std::size_t r, std::size_t c) const {
  REFIT_DCHECK(r < cfg_.rows && c < cfg_.cols);
  return r * cfg_.cols + c;
}

double Crossbar::snap(double g) const {
  const double levels_minus_1 = static_cast<double>(cfg_.levels - 1);
  const double level = std::round(std::clamp(g, 0.0, 1.0) * levels_minus_1);
  return level / levels_minus_1;
}

void Crossbar::write(std::size_t r, std::size_t c, double target_g) {
  const std::size_t i = idx(r, c);
  if (faults_[i] != FaultKind::kNone) {
    ++suppressed_writes_;
    return;
  }
  ++writes_[i];
  ++total_writes_;
  if (endurance_.limited() && writes_[i] > endurance_limit_[i]) {
    // The write that exceeds the budget breaks the cell: usually the
    // filament ruptures permanently (SA0); occasionally it forms a
    // permanent short (SA1).
    const FaultKind kind = rng_.bernoulli(endurance_.sa0_probability)
                               ? FaultKind::kStuckAt0
                               : FaultKind::kStuckAt1;
    force_fault(r, c, kind);
    ++wearout_faults_;
    return;
  }
  double g = snap(target_g);
  if (cfg_.write_noise_sigma > 0.0) {
    g += rng_.normal(0.0, cfg_.write_noise_sigma);
  }
  g_[i] = std::clamp(g, 0.0, 1.0);
}

double Crossbar::conductance(std::size_t r, std::size_t c) const {
  return g_[idx(r, c)];
}

double Crossbar::attenuation(std::size_t r, std::size_t c) const {
  if (cfg_.wire_resistance_ratio <= 0.0) return 1.0;
  return 1.0 / (1.0 + cfg_.wire_resistance_ratio *
                          static_cast<double>(r + c + 2));
}

double Crossbar::effective_conductance(std::size_t r, std::size_t c) const {
  ++reads_;
  return g_[idx(r, c)] * attenuation(r, c);
}

int Crossbar::read_level(std::size_t r, std::size_t c) const {
  const double levels_minus_1 = static_cast<double>(cfg_.levels - 1);
  return static_cast<int>(std::round(g_[idx(r, c)] * levels_minus_1));
}

FaultKind Crossbar::fault(std::size_t r, std::size_t c) const {
  return faults_[idx(r, c)];
}

void Crossbar::force_fault(std::size_t r, std::size_t c, FaultKind kind) {
  REFIT_CHECK_MSG(!fault_is_soft(kind),
                  "transient pins go through force_soft_fault");
  const std::size_t i = idx(r, c);
  if (fault_is_soft(faults_[i])) {
    // Hard fault (or explicit clear) supersedes a transient pin.
    --soft_faults_;
    soft_ttl_[i] = 0;
  }
  if (faults_[i] == FaultKind::kNone && kind != FaultKind::kNone) {
    ++fault_count_;
  } else if (faults_[i] != FaultKind::kNone && kind == FaultKind::kNone) {
    // Un-sticking is only meaningful for tests; keep counters consistent.
    --fault_count_;
  }
  faults_[i] = kind;
  if (kind == FaultKind::kStuckAt0) {
    g_[i] = 0.0;
  } else if (kind == FaultKind::kStuckAt1) {
    g_[i] = 1.0;
  }
}

void Crossbar::force_soft_fault(std::size_t r, std::size_t c, FaultKind kind,
                                std::uint32_t ttl) {
  REFIT_CHECK_MSG(fault_is_soft(kind), "force_soft_fault needs a soft kind");
  REFIT_CHECK(ttl >= 1);
  const std::size_t i = idx(r, c);
  if (faults_[i] != FaultKind::kNone) return;  // first fault wins
  soft_restore_[i] = g_[i];
  soft_ttl_[i] = ttl;
  faults_[i] = kind;
  g_[i] = kind == FaultKind::kSoftStuck0 ? 0.0 : 1.0;
  ++fault_count_;
  ++soft_faults_;
}

void Crossbar::decay_soft_faults() {
  if (soft_faults_ == 0) return;
  const std::size_t n = cfg_.rows * cfg_.cols;
  for (std::size_t i = 0; i < n; ++i) {
    if (!fault_is_soft(faults_[i])) continue;
    if (soft_ttl_[i] <= 1) {
      faults_[i] = FaultKind::kNone;
      g_[i] = soft_restore_[i];
      soft_ttl_[i] = 0;
      --fault_count_;
      --soft_faults_;
    } else {
      --soft_ttl_[i];
    }
  }
}

void Crossbar::drift_toward(double target, double rate) {
  REFIT_CHECK(rate >= 0.0 && rate <= 1.0);
  const std::size_t n = cfg_.rows * cfg_.cols;
  for (std::size_t i = 0; i < n; ++i) {
    if (faults_[i] != FaultKind::kNone) continue;  // pinned cells stay pinned
    g_[i] = std::clamp(g_[i] + rate * (target - g_[i]), 0.0, 1.0);
  }
}

void Crossbar::strong_write(std::size_t r, std::size_t c, double target_g) {
  const std::size_t i = idx(r, c);
  if (fault_is_soft(faults_[i])) {
    // The strong pulse re-forms the filament: the transient pin is gone
    // and the cell is re-programmed below (no restore of the old value).
    faults_[i] = FaultKind::kNone;
    soft_ttl_[i] = 0;
    --fault_count_;
    --soft_faults_;
  }
  write(r, c, target_g);
}

double Crossbar::sum_conductance_rows(const std::vector<std::size_t>& row_set,
                                      std::size_t col) const {
  // Analog read-out: each cell's contribution suffers its own IR drop.
  double s = 0.0;
  for (std::size_t r : row_set) s += effective_conductance(r, col);
  return s;
}

double Crossbar::sum_conductance_cols(const std::vector<std::size_t>& col_set,
                                      std::size_t row) const {
  double s = 0.0;
  for (std::size_t c : col_set) s += effective_conductance(row, c);
  return s;
}

std::uint64_t Crossbar::write_count(std::size_t r, std::size_t c) const {
  return writes_[idx(r, c)];
}

double Crossbar::fault_fraction() const {
  return static_cast<double>(fault_count_) /
         static_cast<double>(cfg_.rows * cfg_.cols);
}

namespace {
constexpr std::uint64_t kCrossbarTag = 0x52454649544c5842ULL;  // "REFITLXB"
}

void Crossbar::save(std::ostream& os) const {
  ser::write_tag(os, kCrossbarTag);
  ser::write_pod(os, cfg_);
  ser::write_pod(os, endurance_);
  ser::write_pod(os, rng_.state());
  ser::write_vec(os, g_);
  ser::write_vec(os, faults_);
  ser::write_vec(os, writes_);
  ser::write_vec(os, endurance_limit_);
  ser::write_pod(os, total_writes_);
  ser::write_pod(os, suppressed_writes_);
  ser::write_pod<std::uint64_t>(os, fault_count_);
  ser::write_pod<std::uint64_t>(os, wearout_faults_);
  ser::write_vec(os, soft_ttl_);
  ser::write_vec(os, soft_restore_);
  ser::write_pod<std::uint64_t>(os, soft_faults_);
}

Crossbar Crossbar::load(std::istream& is) {
  ser::expect_tag(is, kCrossbarTag);
  const auto cfg = ser::read_pod<CrossbarConfig>(is);
  const auto endurance = ser::read_pod<EnduranceModel>(is);
  const auto rng_state = ser::read_pod<Rng::State>(is);
  Crossbar xb(cfg, endurance, Rng(0));
  xb.rng_.set_state(rng_state);
  xb.g_ = ser::read_vec<double>(is);
  xb.faults_ = ser::read_vec<FaultKind>(is);
  xb.writes_ = ser::read_vec<std::uint32_t>(is);
  xb.endurance_limit_ = ser::read_vec<std::uint32_t>(is);
  const std::size_t n = cfg.rows * cfg.cols;
  REFIT_CHECK_MSG(xb.g_.size() == n && xb.faults_.size() == n &&
                      xb.writes_.size() == n &&
                      xb.endurance_limit_.size() == n,
                  "corrupt crossbar checkpoint");
  xb.total_writes_ = ser::read_pod<std::uint64_t>(is);
  xb.suppressed_writes_ = ser::read_pod<std::uint64_t>(is);
  xb.fault_count_ =
      static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  xb.wearout_faults_ =
      static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  xb.soft_ttl_ = ser::read_vec<std::uint32_t>(is);
  xb.soft_restore_ = ser::read_vec<double>(is);
  REFIT_CHECK_MSG(xb.soft_ttl_.size() == n && xb.soft_restore_.size() == n,
                  "corrupt crossbar checkpoint (soft-fault state)");
  xb.soft_faults_ =
      static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  return xb;
}

}  // namespace refit
