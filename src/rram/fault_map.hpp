// A dense matrix of fault predictions / ground truth, shared between the
// detector (which produces predicted maps) and the re-mapping engine
// (which consumes them).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "rram/crossbar.hpp"

namespace refit {

/// Fault state per cell of one logical weight matrix (physical layout).
class FaultMatrix {
 public:
  FaultMatrix() = default;
  FaultMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), m_(rows * cols, FaultKind::kNone) {}
  /// Reassemble from raw cell storage (checkpoint restore).
  FaultMatrix(std::size_t rows, std::size_t cols, std::vector<FaultKind> cells)
      : rows_(rows), cols_(cols), m_(std::move(cells)) {
    REFIT_CHECK_MSG(m_.size() == rows_ * cols_, "fault matrix size mismatch");
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return m_.empty(); }

  [[nodiscard]] FaultKind at(std::size_t r, std::size_t c) const {
    REFIT_DCHECK(r < rows_ && c < cols_);
    return m_[r * cols_ + c];
  }
  void set(std::size_t r, std::size_t c, FaultKind k) {
    REFIT_DCHECK(r < rows_ && c < cols_);
    m_[r * cols_ + c] = k;
  }
  [[nodiscard]] bool faulty(std::size_t r, std::size_t c) const {
    return at(r, c) != FaultKind::kNone;
  }

  [[nodiscard]] std::size_t count_faulty() const {
    std::size_t n = 0;
    for (auto k : m_)
      if (k != FaultKind::kNone) ++n;
    return n;
  }

  /// Raw row-major cell storage (serialization).
  [[nodiscard]] const std::vector<FaultKind>& cells() const { return m_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<FaultKind> m_;
};

}  // namespace refit
