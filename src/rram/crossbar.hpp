// RRAM crossbar array model (S4 in DESIGN.md).
//
// Each cell holds a normalized conductance g ∈ [0, 1] (0 = g_off / high
// resistance, 1 = g_on / low resistance). Writes snap the target to one of
// `levels` discrete resistance levels (multi-level cell per [17] of the
// paper, 8 by default) and then add a small Gaussian perturbation — the
// "write variance" soft-fault source.
//
// Hard faults: a cell may be stuck-at-0 (conductance pinned to 0) or
// stuck-at-1 (pinned to 1), either injected at fabrication
// (faults.hpp) or caused by endurance wear-out: each cell draws a write
// budget from a Gaussian endurance model [3]; a write beyond the budget
// leaves the cell permanently stuck.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.hpp"

namespace refit {

/// Fault state of a cell. kStuckAt* are permanent (fabrication defects or
/// endurance wear-out); kSoftStuck* are transient pins with a TTL — the
/// cell reads stuck for a few device-time ticks and then recovers its
/// pre-fault conductance (see device/noise_model.hpp).
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kStuckAt0 = 1,
  kStuckAt1 = 2,
  kSoftStuck0 = 3,
  kSoftStuck1 = 4,
};

[[nodiscard]] constexpr bool fault_is_hard(FaultKind k) {
  return k == FaultKind::kStuckAt0 || k == FaultKind::kStuckAt1;
}
[[nodiscard]] constexpr bool fault_is_soft(FaultKind k) {
  return k == FaultKind::kSoftStuck0 || k == FaultKind::kSoftStuck1;
}

/// Geometry and write-physics knobs of a crossbar.
struct CrossbarConfig {
  std::size_t rows = 128;
  std::size_t cols = 128;
  /// Discrete resistance levels a write can target (≥ 2).
  std::size_t levels = 8;
  /// Stddev of the analog perturbation after a write (fraction of range).
  double write_noise_sigma = 0.02;
  /// Interconnect (IR-drop) loss per wire segment, as a fraction of the
  /// signal: a cell at row r / column c sees its contribution attenuated
  /// by 1 / (1 + ratio·(r + c + 2)). 0 disables the model. Larger arrays
  /// suffer more — the classic argument bounding practical crossbar sizes.
  double wire_resistance_ratio = 0.0;

  [[nodiscard]] double level_gap() const {
    return 1.0 / static_cast<double>(levels - 1);
  }
};

/// Per-cell write-endurance distribution (Gaussian, per the paper's §6.2.1).
/// mean == 0 disables wear-out.
struct EnduranceModel {
  double mean = 0.0;
  double stddev = 0.0;
  /// Probability an endurance failure leaves the cell SA0. Cycling failure
  /// in filamentary RRAM is dominated by permanent filament rupture (stuck
  /// high-resistance = SA0); stuck shorts are rare, so this defaults high.
  double sa0_probability = 0.9;

  static EnduranceModel unlimited() { return {}; }
  static EnduranceModel gaussian(double mean, double stddev) {
    return {mean, stddev, 0.9};
  }
  [[nodiscard]] bool limited() const { return mean > 0.0; }
};

/// A single RRAM crossbar tile.
class Crossbar {
 public:
  Crossbar(CrossbarConfig cfg, EnduranceModel endurance, Rng rng);

  [[nodiscard]] const CrossbarConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t rows() const { return cfg_.rows; }
  [[nodiscard]] std::size_t cols() const { return cfg_.cols; }

  /// Program a cell towards target conductance (clamped to [0,1], snapped
  /// to the nearest level). A write to a stuck cell is a no-op; a write to
  /// a healthy cell consumes endurance and may wear the cell out.
  void write(std::size_t r, std::size_t c, double target_g);

  /// Actual analog conductance (stuck cells report their pinned value).
  [[nodiscard]] double conductance(std::size_t r, std::size_t c) const;

  /// IR-drop attenuation factor of the cell's contribution to an analog
  /// read-out (1.0 when wire resistance modelling is disabled).
  [[nodiscard]] double attenuation(std::size_t r, std::size_t c) const;

  /// Conductance as seen by the analog compute/read-out path:
  /// conductance × attenuation.
  [[nodiscard]] double effective_conductance(std::size_t r,
                                             std::size_t c) const;

  /// ADC-quantized read: nearest level index in [0, levels).
  [[nodiscard]] int read_level(std::size_t r, std::size_t c) const;

  [[nodiscard]] FaultKind fault(std::size_t r, std::size_t c) const;
  [[nodiscard]] bool is_stuck(std::size_t r, std::size_t c) const {
    return fault(r, c) != FaultKind::kNone;
  }

  /// Pin a cell to a hard fault (used by fabrication-fault injection).
  /// Soft kinds are rejected — transient pins go through force_soft_fault
  /// so the recovery state is tracked.
  void force_fault(std::size_t r, std::size_t c, FaultKind kind);

  /// Pin a cell to a transient fault for `ttl` decay ticks (≥ 1). The
  /// pre-fault conductance is remembered and restored on recovery. A cell
  /// that is already faulty (hard or soft) keeps its existing fault.
  void force_soft_fault(std::size_t r, std::size_t c, FaultKind kind,
                        std::uint32_t ttl);

  /// One device-time tick of soft-fault decay: every transient fault's TTL
  /// drops by one; expired cells recover their pre-fault conductance.
  void decay_soft_faults();

  /// Conductance relaxation: every healthy cell moves toward `target` by
  /// `rate` of the remaining gap (g += rate·(target − g)). Analog — no
  /// level snap, no write cost, no RNG.
  void drift_toward(double target, double rate);

  /// A programming pulse strong enough to re-form a transiently pinned
  /// cell: clears any soft fault, then behaves exactly like write().
  /// Hard-stuck cells still suppress it. This is the detector's scrub
  /// primitive for cells its re-test pass classifies as soft.
  void strong_write(std::size_t r, std::size_t c, double target_g);

  /// Analog column read: sum of conductances of `row_set` cells in `col`
  /// (the quiescent-voltage test observable, row-direction test).
  [[nodiscard]] double sum_conductance_rows(
      const std::vector<std::size_t>& row_set, std::size_t col) const;
  /// Transpose-direction test observable.
  [[nodiscard]] double sum_conductance_cols(
      const std::vector<std::size_t>& col_set, std::size_t row) const;

  [[nodiscard]] std::uint64_t write_count(std::size_t r, std::size_t c) const;
  [[nodiscard]] std::uint64_t total_writes() const { return total_writes_; }
  /// Analog read-out accesses (effective_conductance calls) served so far.
  /// Diagnostic probe: lets tests assert that incremental rebuilds do not
  /// re-read clean tiles. Not serialized.
  [[nodiscard]] std::uint64_t read_count() const { return reads_; }
  /// Writes that were suppressed because the cell is stuck.
  [[nodiscard]] std::uint64_t suppressed_writes() const {
    return suppressed_writes_;
  }

  [[nodiscard]] std::size_t fault_count() const { return fault_count_; }
  [[nodiscard]] double fault_fraction() const;
  /// Faults caused by endurance wear-out (subset of fault_count()).
  [[nodiscard]] std::size_t wearout_fault_count() const {
    return wearout_faults_;
  }
  /// Currently active transient faults (subset of fault_count()).
  [[nodiscard]] std::size_t soft_fault_count() const { return soft_faults_; }

  /// Checkpointing: serialize the full device state (conductances, faults,
  /// per-cell wear, RNG) so a simulation can resume bit-exactly.
  void save(std::ostream& os) const;
  static Crossbar load(std::istream& is);

 private:
  [[nodiscard]] std::size_t idx(std::size_t r, std::size_t c) const;
  /// Snap to the nearest discrete level.
  [[nodiscard]] double snap(double g) const;

  CrossbarConfig cfg_;
  EnduranceModel endurance_;
  Rng rng_;
  std::vector<double> g_;                    ///< actual conductances
  std::vector<FaultKind> faults_;
  std::vector<std::uint32_t> writes_;        ///< per-cell write counters
  std::vector<std::uint32_t> endurance_limit_;
  /// Read-out probe; mutable because reads are logically const. Only ever
  /// touched by the single lane that owns this tile during a parallel pass.
  mutable std::uint64_t reads_ = 0;
  std::uint64_t total_writes_ = 0;
  std::uint64_t suppressed_writes_ = 0;
  std::size_t fault_count_ = 0;
  std::size_t wearout_faults_ = 0;
  /// Transient-fault state: remaining decay ticks and the conductance to
  /// restore on recovery (valid only while the cell is soft-stuck).
  std::vector<std::uint32_t> soft_ttl_;
  std::vector<double> soft_restore_;
  std::size_t soft_faults_ = 0;
};

}  // namespace refit
