// Fabrication-time fault injection (see faults.hpp).
#include "rram/faults.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace refit {

std::vector<std::pair<std::size_t, std::size_t>> sample_fault_sites(
    std::size_t rows, std::size_t cols, std::size_t count,
    const FaultInjectionConfig& cfg, Rng& rng) {
  REFIT_CHECK(rows > 0 && cols > 0);
  REFIT_CHECK_MSG(count <= rows * cols, "more faults than cells");
  std::vector<std::pair<std::size_t, std::size_t>> sites;
  sites.reserve(count);
  std::vector<bool> used(rows * cols, false);

  if (cfg.spatial == SpatialDistribution::kUniform) {
    const auto flat = rng.sample_indices(rows * cols, count);
    for (std::size_t f : flat) {
      sites.emplace_back(f / cols, f % cols);
    }
    return sites;
  }

  if (cfg.spatial == SpatialDistribution::kLineDefects) {
    // Fill randomly chosen whole columns and rows (2:1 column bias — the
    // column is the RCS's computational unit) until the quota is met; the
    // last partial line is filled from a random offset.
    std::size_t placed = 0;
    while (placed < count) {
      const bool pick_col = rng.bernoulli(2.0 / 3.0);
      if (pick_col) {
        const std::size_t c = rng.uniform_index(cols);
        const std::size_t start = rng.uniform_index(rows);
        for (std::size_t k = 0; k < rows && placed < count; ++k) {
          const std::size_t r = (start + k) % rows;
          if (used[r * cols + c]) continue;
          used[r * cols + c] = true;
          sites.emplace_back(r, c);
          ++placed;
        }
      } else {
        const std::size_t r = rng.uniform_index(rows);
        const std::size_t start = rng.uniform_index(cols);
        for (std::size_t k = 0; k < cols && placed < count; ++k) {
          const std::size_t c = (start + k) % cols;
          if (used[r * cols + c]) continue;
          used[r * cols + c] = true;
          sites.emplace_back(r, c);
          ++placed;
        }
      }
    }
    return sites;
  }

  // Clustered: pick centers, then Gaussian-scatter faults around a random
  // center; collisions and out-of-range draws are resampled (bounded), with
  // a uniform fallback so the requested count is always met.
  REFIT_CHECK(cfg.clusters > 0);
  std::vector<std::pair<double, double>> centers;
  centers.reserve(cfg.clusters);
  for (std::size_t k = 0; k < cfg.clusters; ++k) {
    centers.emplace_back(rng.uniform(0.0, static_cast<double>(rows)),
                         rng.uniform(0.0, static_cast<double>(cols)));
  }
  const double sigma =
      cfg.cluster_sigma_fraction * static_cast<double>(std::min(rows, cols));
  std::size_t placed = 0;
  const std::size_t max_attempts = count * 64 + 256;
  std::size_t attempts = 0;
  while (placed < count && attempts < max_attempts) {
    ++attempts;
    const auto& ctr = centers[rng.uniform_index(centers.size())];
    const double fr = ctr.first + rng.normal(0.0, sigma);
    const double fc = ctr.second + rng.normal(0.0, sigma);
    if (fr < 0.0 || fc < 0.0) continue;
    const auto r = static_cast<std::size_t>(fr);
    const auto c = static_cast<std::size_t>(fc);
    if (r >= rows || c >= cols) continue;
    if (used[r * cols + c]) continue;
    used[r * cols + c] = true;
    sites.emplace_back(r, c);
    ++placed;
  }
  // Fallback: fill any shortfall uniformly (dense clusters can saturate).
  while (placed < count) {
    const std::size_t f = rng.uniform_index(rows * cols);
    if (used[f]) continue;
    used[f] = true;
    sites.emplace_back(f / cols, f % cols);
    ++placed;
  }
  return sites;
}

void inject_fabrication_faults(Crossbar& xbar, const FaultInjectionConfig& cfg,
                               Rng& rng) {
  REFIT_CHECK(cfg.fraction >= 0.0 && cfg.fraction <= 1.0);
  const std::size_t total = xbar.rows() * xbar.cols();
  const auto count = static_cast<std::size_t>(
      std::llround(cfg.fraction * static_cast<double>(total)));
  const auto sites =
      sample_fault_sites(xbar.rows(), xbar.cols(), count, cfg, rng);
  for (const auto& [r, c] : sites) {
    if (xbar.is_stuck(r, c)) continue;
    const FaultKind kind = rng.bernoulli(cfg.sa0_probability)
                               ? FaultKind::kStuckAt0
                               : FaultKind::kStuckAt1;
    xbar.force_fault(r, c, kind);
  }
}

void inject_soft_faults(Crossbar& xbar, double fraction, std::uint32_t ttl,
                        double sa0_probability, Rng& rng) {
  REFIT_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const std::size_t total = xbar.rows() * xbar.cols();
  const auto count = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(total)));
  FaultInjectionConfig uniform;
  uniform.spatial = SpatialDistribution::kUniform;
  const auto sites =
      sample_fault_sites(xbar.rows(), xbar.cols(), count, uniform, rng);
  for (const auto& [r, c] : sites) {
    if (xbar.is_stuck(r, c)) continue;
    const FaultKind kind = rng.bernoulli(sa0_probability)
                               ? FaultKind::kSoftStuck0
                               : FaultKind::kSoftStuck1;
    xbar.force_soft_fault(r, c, kind, ttl);
  }
}

}  // namespace refit
