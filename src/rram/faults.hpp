// Fabrication-fault injection with the spatial distributions the paper
// evaluates (§6.2.1): uniform, and Gaussian clusters around random fault
// centers (Stapper's model, paper ref. [19]).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "rram/crossbar.hpp"

namespace refit {

/// Spatial placement model for fabrication defects.
///  - kUniform: i.i.d. cell defects.
///  - kClustered: Gaussian scatter around random fault centers (Stapper
///    [19]).
///  - kLineDefects: faults fill entire rows/columns (driver or wordline /
///    bitline failures) — the spatially structured pattern that makes
///    neuron re-ordering worthwhile.
enum class SpatialDistribution { kUniform, kClustered, kLineDefects };

/// Parameters of one fault-injection pass.
struct FaultInjectionConfig {
  /// Fraction of cells to make stuck (the paper uses ~10 % post-fab [5]).
  double fraction = 0.10;
  SpatialDistribution spatial = SpatialDistribution::kUniform;
  /// Number of Gaussian fault centers for the clustered model.
  std::size_t clusters = 4;
  /// Cluster stddev as a fraction of min(rows, cols).
  double cluster_sigma_fraction = 0.08;
  /// Probability a given stuck cell is SA0 (rest are SA1). Reported defect
  /// data (paper ref. [5]) finds stuck-open/HRS defects dominating
  /// stuck-short ones, so the default skews towards SA0.
  double sa0_probability = 0.8;
};

/// Choose `count` distinct cell coordinates according to the spatial model.
std::vector<std::pair<std::size_t, std::size_t>> sample_fault_sites(
    std::size_t rows, std::size_t cols, std::size_t count,
    const FaultInjectionConfig& cfg, Rng& rng);

/// Pin `fraction` of the crossbar's cells to SA0/SA1. Cells that are
/// already stuck are skipped (re-injection is idempotent in expectation).
void inject_fabrication_faults(Crossbar& xbar, const FaultInjectionConfig& cfg,
                               Rng& rng);

/// Pin `fraction` of the crossbar's healthy cells to a transient
/// (soft-stuck) fault that recovers after `ttl` decay ticks. Spatially
/// uniform — soft errors are event-driven, not clustered like fabrication
/// defects. `sa0_probability` splits the pins between kSoftStuck0 and
/// kSoftStuck1. Used by seeded test scenarios; the on-line injection path
/// is DeviceNoiseModel::tick_tile.
void inject_soft_faults(Crossbar& xbar, double fraction, std::uint32_t ttl,
                        double sa0_probability, Rng& rng);

}  // namespace refit
