// Redundant-column repair — the traditional memory-repair baseline the
// paper argues cannot save an RCS (§1): spare columns replace columns that
// contain faulty cells, but (a) the compute unit of an RCS is a whole
// column, so a single stuck cell condemns the entire column, (b) spares
// come from the same fabrication process and are faulty at the same per-
// cell rate, and (c) spares wear out under writes like any other column.
//
// This module quantifies (a) and (b): given a crossbar's fault state and a
// spare budget, how many faulty columns can actually be replaced by
// fault-free spares, and what residual fault rate remains?
#pragma once

#include <cstddef>
#include <vector>

#include "rram/crossbar.hpp"

namespace refit {

/// Result of a column-repair attempt.
struct RepairOutcome {
  std::size_t total_columns = 0;
  std::size_t faulty_columns = 0;     ///< columns containing ≥1 stuck cell
  std::size_t usable_spares = 0;      ///< fault-free spare columns
  std::size_t repaired_columns = 0;   ///< faulty columns actually replaced
  std::size_t residual_faulty_columns = 0;
  std::size_t residual_faulty_cells = 0;

  /// Fraction of columns still compromised after repair.
  [[nodiscard]] double residual_column_fraction() const {
    if (total_columns == 0) return 0.0;
    return static_cast<double>(residual_faulty_columns) /
           static_cast<double>(total_columns);
  }
};

/// Simulate replacing faulty columns with spare columns.
///
/// Spares are modeled as `spare_columns` extra columns whose cells are
/// faulty i.i.d. with probability `spare_cell_fault_probability` (use the
/// main array's per-cell rate — they come from the same process). A spare
/// can only substitute a column if the spare itself is completely
/// fault-free (a faulty spare would corrupt the analog column sum just the
/// same). Faulty columns are repaired worst-first.
RepairOutcome simulate_column_repair(const Crossbar& xbar,
                                     std::size_t spare_columns,
                                     double spare_cell_fault_probability,
                                     Rng& rng);

/// Per-column stuck-cell counts of a crossbar (helper, exposed for tests).
std::vector<std::size_t> column_fault_counts(const Crossbar& xbar);

}  // namespace refit
