// Spare-column redundancy repair baseline (see column_repair.hpp).
#include "rram/column_repair.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace refit {

std::vector<std::size_t> column_fault_counts(const Crossbar& xbar) {
  std::vector<std::size_t> counts(xbar.cols(), 0);
  for (std::size_t c = 0; c < xbar.cols(); ++c) {
    for (std::size_t r = 0; r < xbar.rows(); ++r) {
      if (xbar.is_stuck(r, c)) ++counts[c];
    }
  }
  return counts;
}

RepairOutcome simulate_column_repair(const Crossbar& xbar,
                                     std::size_t spare_columns,
                                     double spare_cell_fault_probability,
                                     Rng& rng) {
  REFIT_CHECK(spare_cell_fault_probability >= 0.0 &&
              spare_cell_fault_probability <= 1.0);
  RepairOutcome out;
  out.total_columns = xbar.cols();

  const std::vector<std::size_t> counts = column_fault_counts(xbar);
  std::vector<std::size_t> faulty;  // column indices with ≥1 stuck cell
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0) faulty.push_back(c);
  }
  out.faulty_columns = faulty.size();

  // Spares come from the same process: a spare is usable only if every one
  // of its cells came out fault-free.
  for (std::size_t s = 0; s < spare_columns; ++s) {
    bool clean = true;
    for (std::size_t r = 0; r < xbar.rows(); ++r) {
      if (rng.bernoulli(spare_cell_fault_probability)) {
        clean = false;
        break;
      }
    }
    if (clean) ++out.usable_spares;
  }

  // Repair worst columns first (each repair needs one clean spare).
  std::sort(faulty.begin(), faulty.end(),
            [&](std::size_t a, std::size_t b) { return counts[a] > counts[b]; });
  out.repaired_columns = std::min(out.usable_spares, faulty.size());
  for (std::size_t i = out.repaired_columns; i < faulty.size(); ++i) {
    ++out.residual_faulty_columns;
    out.residual_faulty_cells += counts[faulty[i]];
  }
  return out;
}

}  // namespace refit
