// Crossbar-tile-backed WeightStore (see crossbar_store.hpp).
#include "rcs/crossbar_store.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <utility>

#include "common/serialize.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/gemm.hpp"

namespace refit {

namespace {

// Process-global telemetry shared by every store instance (catalogue in
// docs/observability.md). The handles are function-local statics at the
// call sites; increments are relaxed atomics, safe from pool lanes.

double rms(const Tensor& t) {
  double s = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double v = t[i];
    s += v * v;
  }
  return std::sqrt(s / static_cast<double>(std::max<std::size_t>(1, t.numel())));
}

}  // namespace

CrossbarWeightStore::CrossbarWeightStore(const RcsConfig& cfg, Tensor init,
                                         Rng rng)
    : cfg_(cfg),
      enc_(&CellEncoding::of(cfg.encoding)),
      target_(std::move(init)) {
  REFIT_CHECK_MSG(target_.rank() == 2, "crossbar store needs a 2-D matrix");
  REFIT_CHECK(cfg_.tile_rows > 0 && cfg_.tile_cols > 0);
  const std::size_t r = rows(), c = cols();
  weight_max_ = std::max(1e-6, cfg_.weight_clip_multiplier * rms(target_));

  grid_ = TileGrid(r, c, cfg_.tile_rows, cfg_.tile_cols);
  const std::size_t tile_count = grid_.tile_count();
  const auto make_config = [&](const TileSpan& span) {
    CrossbarConfig xc;
    xc.rows = span.rows;
    xc.cols = span.cols;
    xc.levels = cfg_.levels;
    // Programming noise from the device model stacks on the intrinsic
    // write variance; both default-zero paths keep today's bits.
    xc.write_noise_sigma = cfg_.write_noise_sigma + cfg_.noise.program_sigma;
    xc.wire_resistance_ratio = cfg_.wire_resistance_ratio;
    return xc;
  };
  tiles_.reserve(tile_count);
  for (std::size_t t = 0; t < tile_count; ++t) {
    tiles_.push_back(std::make_unique<Crossbar>(
        make_config(grid_.span(t)), cfg_.endurance, rng.split(t + 1)));
  }
  if (enc_->legs() == 2) {
    // The G_n plane's seeds continue past the G_p plane's (split() is pure,
    // so the extra draws cannot perturb the single-leg stream).
    tiles_n_.reserve(tile_count);
    for (std::size_t t = 0; t < tile_count; ++t) {
      tiles_n_.push_back(std::make_unique<Crossbar>(
          make_config(grid_.span(t)), cfg_.endurance,
          rng.split(tile_count + t + 1)));
    }
  }
  noise_rng_ = rng.split(0x6e6f6973ULL);  // "nois"

  if (cfg_.inject_fabrication && cfg_.fabrication.fraction > 0.0) {
    Rng fab_rng = rng.split(0xfabfabULL);
    // Salt by tile index (NOT the tile's heap address, which made fault
    // patterns irreproducible across stores built from the same seed).
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      Rng tile_rng = fab_rng.split(t + 1);
      inject_fabrication_faults(*tiles_[t], cfg_.fabrication, tile_rng);
    }
    for (std::size_t t = 0; t < tiles_n_.size(); ++t) {
      Rng tile_rng = fab_rng.split(tile_count + t + 1);
      inject_fabrication_faults(*tiles_n_[t], cfg_.fabrication, tile_rng);
    }
  }

  map_ = LogicalMapping(r, c);
  tile_dirty_.assign(tiles_.size(), 1);
  pack_dirty_.assign(tiles_.size(), 1);
  any_pack_dirty_ = true;

  // Program the initial weights onto the chip, one pool lane per tile.
  // With the identity permutations in force here, visiting each tile's
  // cells row-major draws its RNG in exactly the order the serial logical
  // (i, j) sweep would — programming is bit-identical at any thread count.
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      target_.at(i, j) = std::clamp(target_.at(i, j),
                                    -static_cast<float>(weight_max_),
                                    static_cast<float>(weight_max_));
    }
  }
  grid_.for_each_tile([&](const TileSpan& span) {
    Crossbar& xb = *tiles_[span.index];
    Crossbar* xn = tiles_n_.empty() ? nullptr : tiles_n_[span.index].get();
    double g[kMaxEncodingLegs];
    for (std::size_t lr = 0; lr < span.rows; ++lr) {
      for (std::size_t lc = 0; lc < span.cols; ++lc) {
        enc_->encode(target_.at(span.row0 + lr, span.col0 + lc), weight_max_,
                     g);
        xb.write(lr, lc, g[0]);
        if (xn != nullptr) xn->write(lr, lc, g[1]);
      }
    }
  });
  resync_counters();
}

Crossbar& CrossbarWeightStore::tile(std::size_t ti, std::size_t tj) {
  REFIT_CHECK(ti < grid_.grid_rows() && tj < grid_.grid_cols());
  return *tiles_[grid_.index_of(ti, tj)];
}

const Crossbar& CrossbarWeightStore::tile(std::size_t ti,
                                          std::size_t tj) const {
  REFIT_CHECK(ti < grid_.grid_rows() && tj < grid_.grid_cols());
  return *tiles_[grid_.index_of(ti, tj)];
}

Crossbar& CrossbarWeightStore::tile_n(std::size_t ti, std::size_t tj) {
  REFIT_CHECK(ti < grid_.grid_rows() && tj < grid_.grid_cols());
  REFIT_CHECK_MSG(!tiles_n_.empty(), "tile_n(): encoding has a single leg");
  return *tiles_n_[grid_.index_of(ti, tj)];
}

const Crossbar& CrossbarWeightStore::tile_n(std::size_t ti,
                                            std::size_t tj) const {
  REFIT_CHECK(ti < grid_.grid_rows() && tj < grid_.grid_cols());
  REFIT_CHECK_MSG(!tiles_n_.empty(), "tile_n(): encoding has a single leg");
  return *tiles_n_[grid_.index_of(ti, tj)];
}

void CrossbarWeightStore::write_logical(std::size_t i, std::size_t j) {
  const TileGrid::Coord tc =
      grid_.locate(map_.physical_row(i), map_.physical_col(j));
  Crossbar& xb = *tiles_[tc.tile];
  Crossbar* xn = tiles_n_.empty() ? nullptr : tiles_n_[tc.tile].get();
  // Diff the tiles' running totals around the write so the store-level
  // aggregates stay exact whether the write lands, is suppressed (stuck
  // cell), or wears the cell out.
  const std::uint64_t w0 =
      xb.total_writes() + (xn != nullptr ? xn->total_writes() : 0);
  const std::size_t f0 =
      xb.fault_count() + (xn != nullptr ? xn->fault_count() : 0);
  const std::size_t wo0 = xb.wearout_fault_count() +
                          (xn != nullptr ? xn->wearout_fault_count() : 0);
  double g[kMaxEncodingLegs];
  enc_->encode(target_.at(i, j), weight_max_, g);
  xb.write(tc.lr, tc.lc, g[0]);
  if (xn != nullptr) xn->write(tc.lr, tc.lc, g[1]);
  const std::uint64_t w1 =
      xb.total_writes() + (xn != nullptr ? xn->total_writes() : 0);
  const std::size_t f1 =
      xb.fault_count() + (xn != nullptr ? xn->fault_count() : 0);
  const std::size_t wo1 = xb.wearout_fault_count() +
                          (xn != nullptr ? xn->wearout_fault_count() : 0);
  static obs::Counter writes_metric =
      obs::MetricsRegistry::instance().counter("store.writes", "writes");
  static obs::Counter wearout_metric = obs::MetricsRegistry::instance().counter(
      "store.wearout_faults", "faults");
  writes_metric.add(w1 - w0);
  wearout_metric.add(wo1 - wo0);
  writes_agg_ += w1 - w0;
  faults_agg_ += f1 - f0;
  wearout_agg_ += wo1 - wo0;
  tile_dirty_[tc.tile] = 1;
  any_dirty_ = true;
  pack_dirty_[tc.tile] = 1;
  any_pack_dirty_ = true;
}

const Tensor& CrossbarWeightStore::effective() {
  if (any_dirty_) rebuild_effective();
  return effective_;
}

void CrossbarWeightStore::mark_all_dirty() {
  std::fill(tile_dirty_.begin(), tile_dirty_.end(), 1);
  any_dirty_ = true;
  std::fill(pack_dirty_.begin(), pack_dirty_.end(), 1);
  any_pack_dirty_ = true;
}

void CrossbarWeightStore::resync_counters() {
  writes_agg_ = 0;
  faults_agg_ = 0;
  wearout_agg_ = 0;
  for (const auto& t : tiles_) {
    writes_agg_ += t->total_writes();
    faults_agg_ += t->fault_count();
    wearout_agg_ += t->wearout_fault_count();
  }
  for (const auto& t : tiles_n_) {
    writes_agg_ += t->total_writes();
    faults_agg_ += t->fault_count();
    wearout_agg_ += t->wearout_fault_count();
  }
}

std::size_t CrossbarWeightStore::soft_fault_count() const {
  std::size_t n = 0;
  for (const auto& t : tiles_) n += t->soft_fault_count();
  for (const auto& t : tiles_n_) n += t->soft_fault_count();
  return n;
}

void CrossbarWeightStore::tick_noise() {
  if (!cfg_.noise.active()) return;
  ++noise_ticks_;
  const DeviceNoiseModel model(cfg_.noise);
  // One child stream per (tick, tile, leg): split() is pure, so lanes can
  // tick tiles in any order and the device trajectory stays identical.
  const Rng tick_rng = noise_rng_.split(noise_ticks_);
  static obs::Counter ticks_metric =
      obs::MetricsRegistry::instance().counter("device.ticks", "ticks");
  ticks_metric.add();
  grid_.for_each_tile([&](const TileSpan& span) {
    Rng leg_p = tick_rng.split(span.index * 2 + 1);
    model.tick_tile(*tiles_[span.index], leg_p);
    if (!tiles_n_.empty()) {
      Rng leg_n = tick_rng.split(span.index * 2 + 2);
      model.tick_tile(*tiles_n_[span.index], leg_n);
    }
  });
  invalidate();
}

void CrossbarWeightStore::rebuild_tile(const TileSpan& span) {
  const Crossbar& xb = *tiles_[span.index];
  const Crossbar* xn =
      tiles_n_.empty() ? nullptr : tiles_n_[span.index].get();
  double g[kMaxEncodingLegs] = {0.0, 0.0};
  for (std::size_t lr = 0; lr < span.rows; ++lr) {
    const std::size_t i = map_.logical_row(span.row0 + lr);
    for (std::size_t lc = 0; lc < span.cols; ++lc) {
      const std::size_t j = map_.logical_col(span.col0 + lc);
      // The compute path is analog: each leg's contribution includes its
      // IR-drop attenuation (identity when the model is disabled). The
      // decode undoes the encoding — single-cell reapplies the peripheral
      // sign register (SA1 cells saturate at ±weight_max, SA0 read as 0);
      // differential subtracts the legs.
      g[0] = xb.effective_conductance(lr, lc);
      if (xn != nullptr) g[1] = xn->effective_conductance(lr, lc);
      effective_.at(i, j) = enc_->decode(g, target_.at(i, j), weight_max_);
    }
  }
}

void CrossbarWeightStore::rebuild_effective() {
  if (effective_.shape() != target_.shape()) {
    effective_ = Tensor({rows(), cols()});
    mark_all_dirty();
  }
  // Incremental: only the tiles that received writes since the last rebuild
  // are re-read; every physical cell maps to a unique logical entry, so the
  // dirty tiles write disjoint parts of effective_ — one pool lane each.
  std::vector<std::size_t> dirty;
  dirty.reserve(tiles_.size());
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    if (tile_dirty_[t] != 0) dirty.push_back(t);
  }
  static obs::Counter rebuilds_metric =
      obs::MetricsRegistry::instance().counter("store.rebuilds", "rebuilds");
  static obs::Counter rebuild_tiles_metric =
      obs::MetricsRegistry::instance().counter("store.rebuild_tiles", "tiles");
  rebuilds_metric.add();
  rebuild_tiles_metric.add(dirty.size());
  grid_.for_each_tile(dirty, [&](const TileSpan& span) {
    rebuild_tile(span);
    tile_dirty_[span.index] = 0;
  });
  any_dirty_ = false;
}

void CrossbarWeightStore::pack_tile(const TileSpan& span) {
  const Crossbar& xb = *tiles_[span.index];
  const Crossbar* xn =
      tiles_n_.empty() ? nullptr : tiles_n_[span.index].get();
  const std::size_t k = rows();
  double g[kMaxEncodingLegs] = {0.0, 0.0};
  for (std::size_t lr = 0; lr < span.rows; ++lr) {
    const std::size_t i = map_.logical_row(span.row0 + lr);
    for (std::size_t lc = 0; lc < span.cols; ++lc) {
      const std::size_t j = map_.logical_col(span.col0 + lc);
      // Exactly rebuild_tile's read-out expression, scattered into the
      // panel slot pack_b would have put W_eff(i, j) in — the fused path
      // and materialize-then-matmul feed the micro-kernel identical bits.
      g[0] = xb.effective_conductance(lr, lc);
      if (xn != nullptr) g[1] = xn->effective_conductance(lr, lc);
      packed_eff_[gemm::packed_index(k, i, j)] =
          enc_->decode(g, target_.at(i, j), weight_max_);
    }
  }
}

void CrossbarWeightStore::refresh_packed_effective() {
  const std::size_t needed = gemm::packed_size(rows(), cols());
  if (packed_eff_.size() != needed) {
    // Zero-fill once: tail panel lanes past the last column are never
    // touched by any tile and must stay zero for the micro-kernel.
    packed_eff_.assign(needed, 0.0f);
    std::fill(pack_dirty_.begin(), pack_dirty_.end(), 1);
    any_pack_dirty_ = true;
  }
  if (!any_pack_dirty_) return;
  std::vector<std::size_t> dirty;
  dirty.reserve(tiles_.size());
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    if (pack_dirty_[t] != 0) dirty.push_back(t);
  }
  static obs::Counter pack_tiles_metric = obs::MetricsRegistry::instance()
      .counter("store.fused_pack_tiles", "tiles");
  pack_tiles_metric.add(dirty.size());
  // Span recorded on the caller only (per-tile timing would land on pool
  // workers and make traces depend on the thread count — the pool's
  // busy_ns counters carry the per-lane breakdown instead).
  obs::TraceSpan span("fused_forward.pack", "rcs");
  grid_.for_each_tile(dirty, [&](const TileSpan& s) {
    pack_tile(s);
    pack_dirty_[s.index] = 0;
  });
  any_pack_dirty_ = false;
}

Tensor CrossbarWeightStore::forward_matmul(const Tensor& x) {
  REFIT_CHECK_MSG(x.rank() == 2 && x.dim(1) == rows(),
                  "forward_matmul: bad input " << shape_to_string(x.shape()));
  static obs::Counter calls_metric = obs::MetricsRegistry::instance().counter(
      "store.fused_forward.calls", "calls");
  static obs::Counter flops_metric =
      obs::MetricsRegistry::instance().counter("tensor.gemm.flops", "flop");
  calls_metric.add();
  refresh_packed_effective();
  const std::size_t m = x.dim(0), k = rows(), n = cols();
  flops_metric.add(2 * m * k * n);
  obs::TraceSpan span("fused_forward", "rcs");
  Tensor y({m, n});
  // Same zero-skip contract as matmul(): the comparison path the tests pin
  // this against, matmul(x, effective()), skips zero activations too.
  gemm::run(m, k, n, x.data(), k, packed_eff_.data(), y.data(), n,
            /*zero_skip=*/true);
  return y;
}

void CrossbarWeightStore::apply_delta(const Tensor& delta) {
  REFIT_CHECK_MSG(delta.shape() == target_.shape(),
                  "delta shape mismatch in CrossbarWeightStore");
  const std::size_t r = rows(), c = cols();
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const float d = delta.at(i, j);
      if (d == 0.0f) continue;  // threshold training skips these writes
      target_.at(i, j) = std::clamp(target_.at(i, j) + d,
                                    -static_cast<float>(weight_max_),
                                    static_cast<float>(weight_max_));
      write_logical(i, j);
    }
  }
}

void CrossbarWeightStore::apply_delta_full(const Tensor& delta) {
  REFIT_CHECK_MSG(delta.shape() == target_.shape(),
                  "delta shape mismatch in CrossbarWeightStore");
  const std::size_t r = rows(), c = cols();
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const float d = delta.at(i, j);
      if (d != 0.0f) {
        target_.at(i, j) = std::clamp(target_.at(i, j) + d,
                                      -static_cast<float>(weight_max_),
                                      static_cast<float>(weight_max_));
      }
      // Zero delta still issues the programming pulse (same value).
      write_logical(i, j);
    }
  }
}

void CrossbarWeightStore::assign(const Tensor& w) {
  REFIT_CHECK_MSG(w.shape() == target_.shape(),
                  "assign shape mismatch in CrossbarWeightStore");
  const std::size_t r = rows(), c = cols();
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const float nv = std::clamp(w.at(i, j), -static_cast<float>(weight_max_),
                                  static_cast<float>(weight_max_));
      if (nv == target_.at(i, j)) continue;
      target_.at(i, j) = nv;
      write_logical(i, j);
    }
  }
}

double CrossbarWeightStore::expected_g(std::size_t r, std::size_t c,
                                       std::size_t leg) const {
  REFIT_CHECK(leg < legs());
  const std::size_t i = map_.logical_row(r);
  const std::size_t j = map_.logical_col(c);
  double g[kMaxEncodingLegs];
  enc_->encode(target_.at(i, j), weight_max_, g);
  return g[leg];
}

FaultKind CrossbarWeightStore::true_fault(std::size_t r, std::size_t c) const {
  const TileGrid::Coord tc = grid_.locate(r, c);
  const FaultKind fp = tiles_[tc.tile]->fault(tc.lr, tc.lc);
  if (tiles_n_.empty()) return fp;
  const FaultKind fn = tiles_n_[tc.tile]->fault(tc.lr, tc.lc);
  // Merge for evaluation: hard > soft > none, G_p leg breaks ties.
  if (fault_is_hard(fp)) return fp;
  if (fault_is_hard(fn)) return fn;
  return fp != FaultKind::kNone ? fp : fn;
}

FaultMatrix CrossbarWeightStore::true_fault_matrix() const {
  FaultMatrix fm(rows(), cols());
  for (std::size_t r = 0; r < rows(); ++r)
    for (std::size_t c = 0; c < cols(); ++c) fm.set(r, c, true_fault(r, c));
  return fm;
}

double CrossbarWeightStore::actual_g(std::size_t r, std::size_t c,
                                     std::size_t leg) const {
  REFIT_CHECK(leg < legs());
  const TileGrid::Coord tc = grid_.locate(r, c);
  const Crossbar& xb = leg == 0 ? *tiles_[tc.tile] : *tiles_n_[tc.tile];
  return xb.conductance(tc.lr, tc.lc);
}

void CrossbarWeightStore::pulse_physical(std::size_t r, std::size_t c,
                                         double delta_g, std::size_t leg) {
  REFIT_CHECK(leg < legs());
  const TileGrid::Coord tc = grid_.locate(r, c);
  Crossbar& xb = leg == 0 ? *tiles_[tc.tile] : *tiles_n_[tc.tile];
  const std::uint64_t w0 = xb.total_writes();
  const std::size_t f0 = xb.fault_count();
  const std::size_t wo0 = xb.wearout_fault_count();
  xb.write(tc.lr, tc.lc, xb.conductance(tc.lr, tc.lc) + delta_g);
  static obs::Counter writes_metric =
      obs::MetricsRegistry::instance().counter("store.writes", "writes");
  static obs::Counter wearout_metric = obs::MetricsRegistry::instance().counter(
      "store.wearout_faults", "faults");
  writes_metric.add(xb.total_writes() - w0);
  wearout_metric.add(xb.wearout_fault_count() - wo0);
  writes_agg_ += xb.total_writes() - w0;
  faults_agg_ += xb.fault_count() - f0;
  wearout_agg_ += xb.wearout_fault_count() - wo0;
  tile_dirty_[tc.tile] = 1;
  any_dirty_ = true;
  pack_dirty_[tc.tile] = 1;
  any_pack_dirty_ = true;
}

void CrossbarWeightStore::sync_target_from_device() {
  if (any_dirty_) rebuild_effective();
  target_ = effective_;
}

void CrossbarWeightStore::sync_targets_where(
    const FaultMatrix& physical_faults) {
  REFIT_CHECK(physical_faults.rows() == rows() &&
              physical_faults.cols() == cols());
  if (any_dirty_) rebuild_effective();
  for (std::size_t i = 0; i < rows(); ++i) {
    for (std::size_t j = 0; j < cols(); ++j) {
      if (physical_faults.faulty(map_.physical_row(i), map_.physical_col(j))) {
        target_.at(i, j) = effective_.at(i, j);
      }
    }
  }
}

void CrossbarWeightStore::set_permutations(std::vector<std::size_t> row_perm,
                                           std::vector<std::size_t> col_perm) {
  const std::size_t r = rows(), c = cols();
  const std::vector<std::size_t> old_rows = map_.row_perm();
  const std::vector<std::size_t> old_cols = map_.col_perm();
  map_.set(std::move(row_perm), std::move(col_perm));

  // Rewrite every cell whose logical owner moved. (Unmoved cells keep their
  // programmed conductance — no endurance is spent on them.) Bijectivity
  // means every physical cell with a new occupant is rewritten here, so the
  // per-tile dirty marks from write_logical cover exactly the tiles whose
  // effective entries can have changed — no blanket invalidation needed.
  std::uint64_t rewritten = 0;
  for (std::size_t i = 0; i < r; ++i) {
    const bool row_moved = old_rows[i] != map_.physical_row(i);
    for (std::size_t j = 0; j < c; ++j) {
      if (row_moved || old_cols[j] != map_.physical_col(j)) {
        write_logical(i, j);
        ++rewritten;
      }
    }
  }
  obs::EventLog::global().emit(
      obs::EventKind::kRemap, obs::EventSeverity::kInfo, "store",
      {{"rows", static_cast<double>(r)},
       {"cols", static_cast<double>(c)},
       {"cells_rewritten", static_cast<double>(rewritten)}});
}

namespace {
constexpr std::uint64_t kStoreTag = 0x5245464954535452ULL;  // "REFITSTR"

void write_tensor(std::ostream& os, const Tensor& t) {
  std::vector<std::uint64_t> shape(t.shape().begin(), t.shape().end());
  ser::write_vec(os, shape);
  ser::write_vec(os, t.vec());
}

Tensor read_tensor(std::istream& is) {
  const auto shape64 = ser::read_vec<std::uint64_t>(is);
  Shape shape(shape64.begin(), shape64.end());
  auto data = ser::read_vec<float>(is);
  return Tensor(shape, std::move(data));
}
}  // namespace

void CrossbarWeightStore::save(std::ostream& os) const {
  ser::write_tag(os, kStoreTag);
  ser::write_pod(os, cfg_);
  write_tensor(os, target_);
  ser::write_pod(os, weight_max_);
  ser::write_pod<std::uint64_t>(os, grid_.grid_rows());
  ser::write_pod<std::uint64_t>(os, grid_.grid_cols());
  map_.save(os);
  for (const auto& t : tiles_) t->save(os);
  // The G_n plane's presence is implied by cfg_.encoding (already written).
  for (const auto& t : tiles_n_) t->save(os);
  ser::write_pod(os, noise_rng_.state());
  ser::write_pod(os, noise_ticks_);
}

void CrossbarWeightStore::read_from(std::istream& is) {
  ser::expect_tag(is, kStoreTag);
  cfg_ = ser::read_pod<RcsConfig>(is);
  target_ = read_tensor(is);
  REFIT_CHECK_MSG(target_.rank() == 2, "corrupt store checkpoint");
  weight_max_ = ser::read_pod<double>(is);
  const auto grid_rows = ser::read_pod<std::uint64_t>(is);
  const auto grid_cols = ser::read_pod<std::uint64_t>(is);
  grid_ = TileGrid(rows(), cols(), cfg_.tile_rows, cfg_.tile_cols);
  REFIT_CHECK_MSG(grid_.grid_rows() == grid_rows && grid_.grid_cols() == grid_cols,
                  "corrupt store checkpoint (tile grid)");
  map_ = LogicalMapping::load(is);
  REFIT_CHECK_MSG(map_.rows() == rows() && map_.cols() == cols(),
                  "corrupt store checkpoint (permutations)");
  enc_ = &CellEncoding::of(cfg_.encoding);
  tiles_.clear();
  tiles_.reserve(grid_.tile_count());
  for (std::size_t t = 0; t < grid_.tile_count(); ++t) {
    tiles_.push_back(std::make_unique<Crossbar>(Crossbar::load(is)));
  }
  tiles_n_.clear();
  if (enc_->legs() == 2) {
    tiles_n_.reserve(grid_.tile_count());
    for (std::size_t t = 0; t < grid_.tile_count(); ++t) {
      tiles_n_.push_back(std::make_unique<Crossbar>(Crossbar::load(is)));
    }
  }
  noise_rng_.set_state(ser::read_pod<Rng::State>(is));
  noise_ticks_ = ser::read_pod<std::uint64_t>(is);
  tile_dirty_.assign(tiles_.size(), 1);
  any_dirty_ = true;
  effective_ = Tensor();
  packed_eff_.clear();
  pack_dirty_.assign(tiles_.size(), 1);
  any_pack_dirty_ = true;
  resync_counters();
}

std::unique_ptr<CrossbarWeightStore> CrossbarWeightStore::load(
    std::istream& is) {
  // NOLINTNEXTLINE(*-owning-memory): private ctor, make_unique unavailable
  std::unique_ptr<CrossbarWeightStore> store(new CrossbarWeightStore());
  store->read_from(is);
  return store;
}

void CrossbarWeightStore::restore(std::istream& is) {
  const Shape before = target_.shape();
  read_from(is);
  REFIT_CHECK_MSG(target_.shape() == before,
                  "restore() checkpoint shape mismatch");
}

std::uint64_t CrossbarWeightStore::cell_write_count(std::size_t i,
                                                    std::size_t j) const {
  const TileGrid::Coord tc =
      grid_.locate(map_.physical_row(i), map_.physical_col(j));
  return tiles_[tc.tile]->write_count(tc.lr, tc.lc);
}

double CrossbarWeightStore::fault_fraction() const {
  // faults_agg_ spans every tile plane, so normalize by physical cells
  // (identical to the logical count for single-leg encodings).
  return static_cast<double>(fault_count()) /
         static_cast<double>(physical_cell_count());
}

}  // namespace refit
