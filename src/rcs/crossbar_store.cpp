// Crossbar-tile-backed WeightStore (see crossbar_store.hpp).
#include "rcs/crossbar_store.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <utility>

#include "common/serialize.hpp"
#include "common/thread_pool.hpp"

namespace refit {

namespace {

double rms(const Tensor& t) {
  double s = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double v = t[i];
    s += v * v;
  }
  return std::sqrt(s / static_cast<double>(std::max<std::size_t>(1, t.numel())));
}

}  // namespace

CrossbarWeightStore::CrossbarWeightStore(const RcsConfig& cfg, Tensor init,
                                         Rng rng)
    : cfg_(cfg), target_(std::move(init)) {
  REFIT_CHECK_MSG(target_.rank() == 2, "crossbar store needs a 2-D matrix");
  REFIT_CHECK(cfg_.tile_rows > 0 && cfg_.tile_cols > 0);
  const std::size_t r = rows(), c = cols();
  weight_max_ = std::max(1e-6, cfg_.weight_clip_multiplier * rms(target_));

  grid_rows_ = (r + cfg_.tile_rows - 1) / cfg_.tile_rows;
  grid_cols_ = (c + cfg_.tile_cols - 1) / cfg_.tile_cols;
  tiles_.reserve(grid_rows_ * grid_cols_);
  for (std::size_t ti = 0; ti < grid_rows_; ++ti) {
    for (std::size_t tj = 0; tj < grid_cols_; ++tj) {
      CrossbarConfig xc;
      xc.rows = std::min(cfg_.tile_rows, r - ti * cfg_.tile_rows);
      xc.cols = std::min(cfg_.tile_cols, c - tj * cfg_.tile_cols);
      xc.levels = cfg_.levels;
      xc.write_noise_sigma = cfg_.write_noise_sigma;
      xc.wire_resistance_ratio = cfg_.wire_resistance_ratio;
      tiles_.push_back(std::make_unique<Crossbar>(
          xc, cfg_.endurance, rng.split(ti * grid_cols_ + tj + 1)));
    }
  }

  if (cfg_.inject_fabrication && cfg_.fabrication.fraction > 0.0) {
    Rng fab_rng = rng.split(0xfabfabULL);
    // Salt by tile index (NOT the tile's heap address, which made fault
    // patterns irreproducible across stores built from the same seed).
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      Rng tile_rng = fab_rng.split(t + 1);
      inject_fabrication_faults(*tiles_[t], cfg_.fabrication, tile_rng);
    }
  }

  row_perm_.resize(r);
  col_perm_.resize(c);
  std::iota(row_perm_.begin(), row_perm_.end(), 0);
  std::iota(col_perm_.begin(), col_perm_.end(), 0);
  inv_row_perm_ = row_perm_;
  inv_col_perm_ = col_perm_;
  tile_dirty_.assign(tiles_.size(), 1);

  // Program the initial weights onto the chip, one pool lane per tile.
  // With the identity permutations in force here, visiting each tile's
  // cells row-major draws its RNG in exactly the order the serial logical
  // (i, j) sweep would — programming is bit-identical at any thread count.
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      target_.at(i, j) = std::clamp(target_.at(i, j),
                                    -static_cast<float>(weight_max_),
                                    static_cast<float>(weight_max_));
    }
  }
  parallel_for(tiles_.size(), [&](std::size_t t0, std::size_t t1) {
    for (std::size_t t = t0; t < t1; ++t) {
      Crossbar& xb = *tiles_[t];
      const std::size_t r0 = (t / grid_cols_) * cfg_.tile_rows;
      const std::size_t c0 = (t % grid_cols_) * cfg_.tile_cols;
      for (std::size_t lr = 0; lr < xb.rows(); ++lr) {
        for (std::size_t lc = 0; lc < xb.cols(); ++lc) {
          xb.write(lr, lc,
                   std::fabs(target_.at(r0 + lr, c0 + lc)) / weight_max_);
        }
      }
    }
  });
  resync_counters();
}

CrossbarWeightStore::TileCoord CrossbarWeightStore::locate(
    std::size_t phys_r, std::size_t phys_c) const {
  REFIT_DCHECK(phys_r < rows() && phys_c < cols());
  return TileCoord{phys_r / cfg_.tile_rows, phys_c / cfg_.tile_cols,
                   phys_r % cfg_.tile_rows, phys_c % cfg_.tile_cols};
}

Crossbar& CrossbarWeightStore::tile(std::size_t ti, std::size_t tj) {
  REFIT_CHECK(ti < grid_rows_ && tj < grid_cols_);
  return *tiles_[ti * grid_cols_ + tj];
}

const Crossbar& CrossbarWeightStore::tile(std::size_t ti,
                                          std::size_t tj) const {
  REFIT_CHECK(ti < grid_rows_ && tj < grid_cols_);
  return *tiles_[ti * grid_cols_ + tj];
}

void CrossbarWeightStore::write_logical(std::size_t i, std::size_t j) {
  const auto tc = locate(row_perm_[i], col_perm_[j]);
  const std::size_t t = tc.ti * grid_cols_ + tc.tj;
  Crossbar& xb = *tiles_[t];
  // Diff the tile's running totals around the write so the store-level
  // aggregates stay exact whether the write lands, is suppressed (stuck
  // cell), or wears the cell out.
  const std::uint64_t w0 = xb.total_writes();
  const std::size_t f0 = xb.fault_count();
  const std::size_t wo0 = xb.wearout_fault_count();
  xb.write(tc.lr, tc.lc, std::fabs(target_.at(i, j)) / weight_max_);
  writes_agg_ += xb.total_writes() - w0;
  faults_agg_ += xb.fault_count() - f0;
  wearout_agg_ += xb.wearout_fault_count() - wo0;
  tile_dirty_[t] = 1;
  any_dirty_ = true;
}

const Tensor& CrossbarWeightStore::effective() {
  if (any_dirty_) rebuild_effective();
  return effective_;
}

void CrossbarWeightStore::mark_all_dirty() {
  std::fill(tile_dirty_.begin(), tile_dirty_.end(), 1);
  any_dirty_ = true;
}

void CrossbarWeightStore::resync_counters() {
  writes_agg_ = 0;
  faults_agg_ = 0;
  wearout_agg_ = 0;
  for (const auto& t : tiles_) {
    writes_agg_ += t->total_writes();
    faults_agg_ += t->fault_count();
    wearout_agg_ += t->wearout_fault_count();
  }
}

void CrossbarWeightStore::rebuild_tile(std::size_t t) {
  const Crossbar& xb = *tiles_[t];
  const std::size_t r0 = (t / grid_cols_) * cfg_.tile_rows;
  const std::size_t c0 = (t % grid_cols_) * cfg_.tile_cols;
  for (std::size_t lr = 0; lr < xb.rows(); ++lr) {
    const std::size_t i = inv_row_perm_[r0 + lr];
    for (std::size_t lc = 0; lc < xb.cols(); ++lc) {
      const std::size_t j = inv_col_perm_[c0 + lc];
      // The compute path is analog: the cell's contribution includes its
      // IR-drop attenuation (identity when the model is disabled).
      const double g = xb.effective_conductance(lr, lc);
      // Peripheral sign register: sign of the last written target. SA1
      // cells therefore saturate at ±weight_max, SA0 cells read as 0.
      const float sign = target_.at(i, j) < 0.0f ? -1.0f : 1.0f;
      effective_.at(i, j) = sign * static_cast<float>(g * weight_max_);
    }
  }
}

void CrossbarWeightStore::rebuild_effective() {
  if (effective_.shape() != target_.shape()) {
    effective_ = Tensor({rows(), cols()});
    mark_all_dirty();
  }
  // Incremental: only the tiles that received writes since the last rebuild
  // are re-read; every physical cell maps to a unique logical entry, so the
  // dirty tiles write disjoint parts of effective_ — one pool lane each.
  std::vector<std::size_t> dirty;
  dirty.reserve(tiles_.size());
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    if (tile_dirty_[t] != 0) dirty.push_back(t);
  }
  parallel_for(dirty.size(), [&](std::size_t d0, std::size_t d1) {
    for (std::size_t d = d0; d < d1; ++d) {
      rebuild_tile(dirty[d]);
      tile_dirty_[dirty[d]] = 0;
    }
  });
  any_dirty_ = false;
}

void CrossbarWeightStore::apply_delta(const Tensor& delta) {
  REFIT_CHECK_MSG(delta.shape() == target_.shape(),
                  "delta shape mismatch in CrossbarWeightStore");
  const std::size_t r = rows(), c = cols();
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const float d = delta.at(i, j);
      if (d == 0.0f) continue;  // threshold training skips these writes
      target_.at(i, j) = std::clamp(target_.at(i, j) + d,
                                    -static_cast<float>(weight_max_),
                                    static_cast<float>(weight_max_));
      write_logical(i, j);
    }
  }
}

void CrossbarWeightStore::apply_delta_full(const Tensor& delta) {
  REFIT_CHECK_MSG(delta.shape() == target_.shape(),
                  "delta shape mismatch in CrossbarWeightStore");
  const std::size_t r = rows(), c = cols();
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const float d = delta.at(i, j);
      if (d != 0.0f) {
        target_.at(i, j) = std::clamp(target_.at(i, j) + d,
                                      -static_cast<float>(weight_max_),
                                      static_cast<float>(weight_max_));
      }
      // Zero delta still issues the programming pulse (same value).
      write_logical(i, j);
    }
  }
}

void CrossbarWeightStore::assign(const Tensor& w) {
  REFIT_CHECK_MSG(w.shape() == target_.shape(),
                  "assign shape mismatch in CrossbarWeightStore");
  const std::size_t r = rows(), c = cols();
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const float nv = std::clamp(w.at(i, j), -static_cast<float>(weight_max_),
                                  static_cast<float>(weight_max_));
      if (nv == target_.at(i, j)) continue;
      target_.at(i, j) = nv;
      write_logical(i, j);
    }
  }
}

double CrossbarWeightStore::expected_g(std::size_t r, std::size_t c) const {
  const std::size_t i = inv_row_perm_[r];
  const std::size_t j = inv_col_perm_[c];
  return std::fabs(target_.at(i, j)) / weight_max_;
}

FaultKind CrossbarWeightStore::true_fault(std::size_t r, std::size_t c) const {
  const auto tc = locate(r, c);
  return tiles_[tc.ti * grid_cols_ + tc.tj]->fault(tc.lr, tc.lc);
}

FaultMatrix CrossbarWeightStore::true_fault_matrix() const {
  FaultMatrix fm(rows(), cols());
  for (std::size_t r = 0; r < rows(); ++r)
    for (std::size_t c = 0; c < cols(); ++c) fm.set(r, c, true_fault(r, c));
  return fm;
}

double CrossbarWeightStore::actual_g(std::size_t r, std::size_t c) const {
  const auto tc = locate(r, c);
  return tiles_[tc.ti * grid_cols_ + tc.tj]->conductance(tc.lr, tc.lc);
}

void CrossbarWeightStore::pulse_physical(std::size_t r, std::size_t c,
                                         double delta_g) {
  const auto tc = locate(r, c);
  const std::size_t t = tc.ti * grid_cols_ + tc.tj;
  Crossbar& xb = *tiles_[t];
  const std::uint64_t w0 = xb.total_writes();
  const std::size_t f0 = xb.fault_count();
  const std::size_t wo0 = xb.wearout_fault_count();
  xb.write(tc.lr, tc.lc, xb.conductance(tc.lr, tc.lc) + delta_g);
  writes_agg_ += xb.total_writes() - w0;
  faults_agg_ += xb.fault_count() - f0;
  wearout_agg_ += xb.wearout_fault_count() - wo0;
  tile_dirty_[t] = 1;
  any_dirty_ = true;
}

void CrossbarWeightStore::sync_target_from_device() {
  if (any_dirty_) rebuild_effective();
  target_ = effective_;
}

void CrossbarWeightStore::sync_targets_where(
    const FaultMatrix& physical_faults) {
  REFIT_CHECK(physical_faults.rows() == rows() &&
              physical_faults.cols() == cols());
  if (any_dirty_) rebuild_effective();
  for (std::size_t i = 0; i < rows(); ++i) {
    for (std::size_t j = 0; j < cols(); ++j) {
      if (physical_faults.faulty(row_perm_[i], col_perm_[j])) {
        target_.at(i, j) = effective_.at(i, j);
      }
    }
  }
}

void CrossbarWeightStore::set_permutations(std::vector<std::size_t> row_perm,
                                           std::vector<std::size_t> col_perm) {
  const std::size_t r = rows(), c = cols();
  REFIT_CHECK_MSG(row_perm.size() == r && col_perm.size() == c,
                  "permutation size mismatch");
  // Validate bijectivity.
  std::vector<bool> seen_r(r, false), seen_c(c, false);
  for (std::size_t v : row_perm) {
    REFIT_CHECK_MSG(v < r && !seen_r[v], "row_perm is not a permutation");
    seen_r[v] = true;
  }
  for (std::size_t v : col_perm) {
    REFIT_CHECK_MSG(v < c && !seen_c[v], "col_perm is not a permutation");
    seen_c[v] = true;
  }

  const std::vector<std::size_t> old_rows = row_perm_;
  const std::vector<std::size_t> old_cols = col_perm_;
  row_perm_ = std::move(row_perm);
  col_perm_ = std::move(col_perm);
  for (std::size_t i = 0; i < r; ++i) inv_row_perm_[row_perm_[i]] = i;
  for (std::size_t j = 0; j < c; ++j) inv_col_perm_[col_perm_[j]] = j;

  // Rewrite every cell whose logical owner moved. (Unmoved cells keep their
  // programmed conductance — no endurance is spent on them.) Bijectivity
  // means every physical cell with a new occupant is rewritten here, so the
  // per-tile dirty marks from write_logical cover exactly the tiles whose
  // effective entries can have changed — no blanket invalidation needed.
  for (std::size_t i = 0; i < r; ++i) {
    const bool row_moved = old_rows[i] != row_perm_[i];
    for (std::size_t j = 0; j < c; ++j) {
      if (row_moved || old_cols[j] != col_perm_[j]) write_logical(i, j);
    }
  }
}

namespace {
constexpr std::uint64_t kStoreTag = 0x5245464954535452ULL;  // "REFITSTR"

void write_tensor(std::ostream& os, const Tensor& t) {
  std::vector<std::uint64_t> shape(t.shape().begin(), t.shape().end());
  ser::write_vec(os, shape);
  ser::write_vec(os, t.vec());
}

Tensor read_tensor(std::istream& is) {
  const auto shape64 = ser::read_vec<std::uint64_t>(is);
  Shape shape(shape64.begin(), shape64.end());
  auto data = ser::read_vec<float>(is);
  return Tensor(shape, std::move(data));
}
}  // namespace

void CrossbarWeightStore::save(std::ostream& os) const {
  ser::write_tag(os, kStoreTag);
  ser::write_pod(os, cfg_);
  write_tensor(os, target_);
  ser::write_pod(os, weight_max_);
  ser::write_pod<std::uint64_t>(os, grid_rows_);
  ser::write_pod<std::uint64_t>(os, grid_cols_);
  std::vector<std::uint64_t> rp(row_perm_.begin(), row_perm_.end());
  std::vector<std::uint64_t> cp(col_perm_.begin(), col_perm_.end());
  ser::write_vec(os, rp);
  ser::write_vec(os, cp);
  for (const auto& t : tiles_) t->save(os);
}

std::unique_ptr<CrossbarWeightStore> CrossbarWeightStore::load(
    std::istream& is) {
  ser::expect_tag(is, kStoreTag);
  // NOLINTNEXTLINE(*-owning-memory): private ctor, make_unique unavailable
  std::unique_ptr<CrossbarWeightStore> store(new CrossbarWeightStore());
  store->cfg_ = ser::read_pod<RcsConfig>(is);
  store->target_ = read_tensor(is);
  REFIT_CHECK_MSG(store->target_.rank() == 2, "corrupt store checkpoint");
  store->weight_max_ = ser::read_pod<double>(is);
  store->grid_rows_ =
      static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  store->grid_cols_ =
      static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  const auto rp = ser::read_vec<std::uint64_t>(is);
  const auto cp = ser::read_vec<std::uint64_t>(is);
  store->row_perm_.assign(rp.begin(), rp.end());
  store->col_perm_.assign(cp.begin(), cp.end());
  REFIT_CHECK_MSG(store->row_perm_.size() == store->rows() &&
                      store->col_perm_.size() == store->cols(),
                  "corrupt store checkpoint (permutations)");
  store->inv_row_perm_.resize(store->rows());
  store->inv_col_perm_.resize(store->cols());
  for (std::size_t i = 0; i < store->rows(); ++i)
    store->inv_row_perm_[store->row_perm_[i]] = i;
  for (std::size_t j = 0; j < store->cols(); ++j)
    store->inv_col_perm_[store->col_perm_[j]] = j;
  store->tiles_.reserve(store->grid_rows_ * store->grid_cols_);
  for (std::size_t t = 0; t < store->grid_rows_ * store->grid_cols_; ++t) {
    store->tiles_.push_back(std::make_unique<Crossbar>(Crossbar::load(is)));
  }
  store->tile_dirty_.assign(store->tiles_.size(), 1);
  store->any_dirty_ = true;
  store->resync_counters();
  return store;
}

std::uint64_t CrossbarWeightStore::cell_write_count(std::size_t i,
                                                    std::size_t j) const {
  const auto tc = locate(row_perm_[i], col_perm_[j]);
  return tiles_[tc.ti * grid_cols_ + tc.tj]->write_count(tc.lr, tc.lc);
}

double CrossbarWeightStore::fault_fraction() const {
  return static_cast<double>(fault_count()) /
         static_cast<double>(cell_count());
}

}  // namespace refit
