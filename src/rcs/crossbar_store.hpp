// CrossbarWeightStore — a WeightStore backed by RRAM crossbar tiles (S5).
//
// Mapping model (DESIGN.md §5): a logical weight matrix W [fan_in, fan_out]
// is partitioned onto a grid of crossbar tiles (default 128×128). How a
// weight becomes conductance(s) is the CellEncoding seam
// (device/cell_encoding.hpp):
//   - kSingleCell (the paper's model, default): the magnitude as one
//     conductance scaled by the layer's weight_max; the sign lives in a
//     peripheral register (CMOS, never faulty). SA0 pins the effective
//     weight to 0 — which is why pruned (zero) weights can be re-mapped
//     onto SA0 cells for free; SA1 pins it to ±weight_max (sign
//     preserved). Bit-identical to the pre-seam store.
//   - kDifferentialPair: two tile planes (G_p and G_n legs, identical
//     geometry); w = (g_p − g_n)·weight_max, no sign register, a stuck-at
//     fault pins one leg.
// Time-dependent effects (drift, transient soft faults) come from the
// DeviceNoiseModel (device/noise_model.hpp) through tick_noise().
//
// The tile geometry lives in a TileGrid (rcs/tile_grid.hpp) and the
// logical↔physical permutations in a LogicalMapping
// (rcs/logical_mapping.hpp); the store owns the device state (tiles) and
// the off-chip copies, and composes the two. The re-mapping engine only
// installs permutations that correspond to neuron re-orderings (paper
// §5.2), so no extra routing is implied; changing the permutation
// rewrites the cells whose logical owner moved (a real write cost,
// counted against endurance).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "device/cell_encoding.hpp"
#include "device/noise_model.hpp"
#include "nn/weight_store.hpp"
#include "rcs/logical_mapping.hpp"
#include "rcs/tile_grid.hpp"
#include "rram/crossbar.hpp"
#include "rram/fault_map.hpp"
#include "rram/faults.hpp"

namespace refit {

/// Configuration for crossbar-backed weight storage.
struct RcsConfig {
  /// Tile geometry (edge tiles shrink to fit the matrix).
  std::size_t tile_rows = 128;
  std::size_t tile_cols = 128;
  /// Cell resistance levels (paper uses 8-level MLC, ref. [17]).
  std::size_t levels = 8;
  /// Analog write perturbation (fraction of the conductance range).
  double write_noise_sigma = 0.02;
  /// IR-drop wire-resistance ratio forwarded to every tile (see
  /// CrossbarConfig::wire_resistance_ratio); 0 disables the model.
  double wire_resistance_ratio = 0.0;
  /// Write-endurance distribution; unlimited() disables wear-out.
  EnduranceModel endurance = EnduranceModel::unlimited();
  /// Fabrication defects injected at construction when true.
  bool inject_fabrication = true;
  FaultInjectionConfig fabrication{};
  /// weight_max = multiplier × RMS(initial weights); weights clip there.
  double weight_clip_multiplier = 4.0;
  /// Weight→conductance mapping (device/cell_encoding.hpp).
  EncodingKind encoding = EncodingKind::kSingleCell;
  /// Time-dependent device effects (device/noise_model.hpp); the defaults
  /// disable them all, so tick_noise() is a no-op unless configured.
  DeviceNoiseConfig noise{};
};

/// Weight matrix on RRAM crossbar tiles.
class CrossbarWeightStore final : public WeightStore {
 public:
  CrossbarWeightStore(const RcsConfig& cfg, Tensor init, Rng rng);

  // ---- WeightStore interface -------------------------------------------
  [[nodiscard]] const Shape& shape() const override { return target_.shape(); }
  [[nodiscard]] const Tensor& effective() override;
  [[nodiscard]] const Tensor& target() const override { return target_; }
  /// Fused faulty forward: y = x · W_eff computed straight from crossbar
  /// conductances, sign registers, and the logical mapping — no effective_
  /// materialization. Dirty tiles repack their cells into the GEMM panel
  /// layout (tile-parallel, disjoint scatter); the multiply then runs the
  /// same deterministic micro-kernel as matmul(x, effective()), so the
  /// result is bit-identical to it at any thread count and permutation.
  [[nodiscard]] Tensor forward_matmul(const Tensor& x) override;
  void apply_delta(const Tensor& delta) override;
  void apply_delta_full(const Tensor& delta) override;
  void assign(const Tensor& w) override;
  [[nodiscard]] std::uint64_t write_count() const override {
    return writes_agg_;
  }
  /// Full device-state checkpointing through the WeightStore seam (the
  /// engine checkpoints stores without knowing the backend).
  void save_state(std::ostream& os) const override { save(os); }
  void restore_state(std::istream& is) override { restore(is); }

  // ---- Geometry ----------------------------------------------------------
  [[nodiscard]] std::size_t rows() const { return target_.dim(0); }
  [[nodiscard]] std::size_t cols() const { return target_.dim(1); }
  [[nodiscard]] const TileGrid& grid() const { return grid_; }
  [[nodiscard]] std::size_t tile_grid_rows() const {
    return grid_.grid_rows();
  }
  [[nodiscard]] std::size_t tile_grid_cols() const {
    return grid_.grid_cols();
  }
  [[nodiscard]] Crossbar& tile(std::size_t ti, std::size_t tj);
  [[nodiscard]] const Crossbar& tile(std::size_t ti, std::size_t tj) const;
  /// The second (G_n) tile plane; only valid when legs() == 2.
  [[nodiscard]] Crossbar& tile_n(std::size_t ti, std::size_t tj);
  [[nodiscard]] const Crossbar& tile_n(std::size_t ti, std::size_t tj) const;
  [[nodiscard]] const RcsConfig& config() const { return cfg_; }
  [[nodiscard]] double weight_max() const { return weight_max_; }
  [[nodiscard]] const CellEncoding& encoding() const { return *enc_; }
  /// Physical cells per logical weight (1 or 2).
  [[nodiscard]] std::size_t legs() const { return enc_->legs(); }

  // ---- Physical-space views (used by the on-line detector) --------------
  /// Conductance the store last targeted for the physical cell (r, c) on
  /// `leg` (0 = the single/G_p plane, 1 = the G_n plane).
  [[nodiscard]] double expected_g(std::size_t r, std::size_t c,
                                  std::size_t leg = 0) const;
  /// Ground-truth fault of the physical cell, merged across legs (for
  /// detector evaluation): a hard fault on either leg wins over a soft
  /// one, and the G_p leg breaks ties.
  [[nodiscard]] FaultKind true_fault(std::size_t r, std::size_t c) const;
  /// Assembled ground-truth fault matrix (physical space).
  [[nodiscard]] FaultMatrix true_fault_matrix() const;
  /// Actual conductance of the physical cell on `leg`.
  [[nodiscard]] double actual_g(std::size_t r, std::size_t c,
                                std::size_t leg = 0) const;

  // ---- Permutations (re-mapping) ----------------------------------------
  /// Install logical→physical permutations; rewrites moved cells.
  void set_permutations(std::vector<std::size_t> row_perm,
                        std::vector<std::size_t> col_perm);
  [[nodiscard]] const LogicalMapping& mapping() const { return map_; }
  [[nodiscard]] const std::vector<std::size_t>& row_perm() const {
    return map_.row_perm();
  }
  [[nodiscard]] const std::vector<std::size_t>& col_perm() const {
    return map_.col_perm();
  }

  // ---- Bookkeeping -------------------------------------------------------
  /// Device writes issued so far for the *logical* cell (i, j) — i.e. the
  /// writes accumulated by whatever physical cell currently hosts it.
  [[nodiscard]] std::uint64_t cell_write_count(std::size_t i,
                                               std::size_t j) const;
  [[nodiscard]] double fault_fraction() const;
  /// write_count() / fault_count() / wearout_fault_count() are running
  /// aggregates maintained on every store-issued write — O(1) per call even
  /// inside training loops. Direct tile manipulation must be followed by
  /// invalidate(), which resynchronizes them from the tiles.
  [[nodiscard]] std::size_t fault_count() const { return faults_agg_; }
  [[nodiscard]] std::size_t wearout_fault_count() const {
    return wearout_agg_;
  }
  /// Currently active transient faults across all tile planes (subset of
  /// fault_count(); O(#tiles), not cached — callers poll it rarely).
  [[nodiscard]] std::size_t soft_fault_count() const;
  /// Logical weight count.
  [[nodiscard]] std::size_t cell_count() const { return rows() * cols(); }
  /// Physical device cells backing those weights (logical × legs()).
  [[nodiscard]] std::size_t physical_cell_count() const {
    return cell_count() * legs();
  }

  /// Mark the cached effective weights stale and resync the aggregate
  /// counters (call after any direct tile manipulation, e.g. a detection
  /// pass or fault injection through tile()).
  void invalidate() {
    mark_all_dirty();
    resync_counters();
  }

  /// Overwrite the off-chip target copy with the device's actual effective
  /// weights (the "read RRAM values, store off-chip" step of the paper's
  /// Fig. 3). Pure read — costs no device writes. After this call the
  /// target of an SA0-hosted weight is exactly 0, so magnitude pruning
  /// becomes fault-aware automatically.
  void sync_target_from_device();

  /// Targeted variant: re-read only the logical weights currently hosted on
  /// cells flagged in `physical_faults`. Healthy weights keep their full-
  /// precision off-chip accumulation; fault-hosted weights collapse to what
  /// the device actually computes (0 for SA0, ±weight_max for SA1), so a
  /// later re-mapping relocates real values instead of stale garbage and
  /// magnitude pruning naturally reuses SA0 cells as zeros.
  void sync_targets_where(const FaultMatrix& physical_faults);

  /// Issue a raw ±one-level pulse to a physical cell on `leg` (detection
  /// writes).
  void pulse_physical(std::size_t r, std::size_t c, double delta_g,
                      std::size_t leg = 0);

  /// Advance device time by one tick: soft faults decay, conductances
  /// drift, and new transient faults may strike (device/noise_model.hpp).
  /// No-op unless cfg().noise.active(). Tile-parallel with per-tile RNG
  /// streams salted by (tick, tile, leg) — deterministic at any thread
  /// count. Marks the effective cache stale.
  void tick_noise();
  /// Device-time ticks issued so far (serialized with the store).
  [[nodiscard]] std::uint64_t noise_ticks() const { return noise_ticks_; }

  /// Checkpointing: serialize the full store (off-chip targets, physical
  /// permutations, and every tile's device state).
  void save(std::ostream& os) const;
  static std::unique_ptr<CrossbarWeightStore> load(std::istream& is);
  /// In-place variant of load(): overwrite this store's state with a
  /// checkpoint of a same-shaped store (engine resume keeps the network's
  /// store pointers intact).
  void restore(std::istream& is);

 private:
  /// Uninitialized shell used by load().
  CrossbarWeightStore() = default;

  /// Shared body of load()/restore().
  void read_from(std::istream& is);
  /// Program the physical cell hosting logical (i, j) from target_.
  void write_logical(std::size_t i, std::size_t j);
  /// Rebuild only the tiles whose cells changed since the last rebuild,
  /// fanning the per-tile work across the global thread pool.
  void rebuild_effective();
  /// Recompute the effective entries of every logical cell hosted on the
  /// tile covering `span`.
  void rebuild_tile(const TileSpan& span);
  /// Re-read the tile covering `span` into the packed GEMM panels (the
  /// fused-forward analogue of rebuild_tile).
  void pack_tile(const TileSpan& span);
  /// Bring packed_eff_ up to date, repacking only dirty tiles.
  void refresh_packed_effective();
  void mark_all_dirty();
  /// Re-derive the aggregate write/fault counters from the tiles' own
  /// running totals (O(#tiles), used after out-of-band tile mutation).
  void resync_counters();

  RcsConfig cfg_;
  /// The configured encoding singleton (device/cell_encoding.hpp); set in
  /// the ctor and in read_from(), never null afterwards.
  const CellEncoding* enc_ = nullptr;
  Tensor target_;
  Tensor effective_;
  double weight_max_ = 1.0;
  TileGrid grid_;
  LogicalMapping map_;
  std::vector<std::unique_ptr<Crossbar>> tiles_;
  /// G_n tile plane, same geometry as tiles_; empty when legs() == 1.
  std::vector<std::unique_ptr<Crossbar>> tiles_n_;
  /// Device-time noise state (tick_noise); serialized for bit-exact resume.
  Rng noise_rng_{0};
  std::uint64_t noise_ticks_ = 0;
  /// Per-tile staleness of effective_ (uint8_t, not vector<bool>: lanes
  /// clear flags for distinct tiles without sharing a word). any_dirty_
  /// short-circuits effective() on the hottest path.
  std::vector<std::uint8_t> tile_dirty_;
  bool any_dirty_ = true;
  /// Fused-forward cache: the effective weights in the packed panel layout
  /// of tensor/gemm.hpp, with its own staleness flags (effective_ and the
  /// panels are consumed by different paths, so each invalidates
  /// independently and neither pays for the other's rebuild).
  std::vector<float> packed_eff_;
  std::vector<std::uint8_t> pack_dirty_;
  bool any_pack_dirty_ = true;
  /// Running aggregates over all tiles (see fault_count() docs).
  std::uint64_t writes_agg_ = 0;
  std::size_t faults_agg_ = 0;
  std::size_t wearout_agg_ = 0;
};

}  // namespace refit
