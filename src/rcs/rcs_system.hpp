// RcsSystem — registry of all crossbar-backed weight stores in a network,
// plus system-wide statistics. The fault-tolerant training flow iterates
// over the registered stores to run detection and re-mapping.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "rcs/crossbar_store.hpp"

namespace refit {

/// Tracks the CrossbarWeightStores created through its factory.
///
/// Ownership note: layers own their stores; the system holds non-owning
/// pointers, so the network must outlive any use of the system.
class RcsSystem {
 public:
  explicit RcsSystem(RcsConfig cfg, Rng rng);

  [[nodiscard]] const RcsConfig& config() const { return cfg_; }

  /// Builder-style setter for tweaking the config after construction but
  /// BEFORE any store is registered. A later change would silently apply
  /// only to future stores (the old mutable_config() footgun) — so it is
  /// rejected once the factory has produced a store.
  void set_config(const RcsConfig& cfg) {
    REFIT_DCHECK_MSG(stores_.empty(),
                     "RcsSystem config is frozen once stores exist");
    cfg_ = cfg;
  }

  /// StoreFactory that builds crossbar stores registered with this system.
  [[nodiscard]] StoreFactory factory();

  [[nodiscard]] const std::vector<CrossbarWeightStore*>& stores() const {
    return stores_;
  }

  // ---- Aggregate statistics ---------------------------------------------
  [[nodiscard]] std::uint64_t total_device_writes() const;
  /// Logical weights across all stores.
  [[nodiscard]] std::size_t cell_count() const;
  /// Physical device cells (logical × encoding legs).
  [[nodiscard]] std::size_t physical_cell_count() const;
  [[nodiscard]] std::size_t fault_count() const;
  [[nodiscard]] std::size_t wearout_fault_count() const;
  /// Currently active transient faults (subset of fault_count()).
  [[nodiscard]] std::size_t soft_fault_count() const;
  /// fault_count() over physical cells (identical to the logical ratio for
  /// single-leg encodings).
  [[nodiscard]] double fault_fraction() const;
  /// Mean device writes per cell (the endurance pressure metric).
  [[nodiscard]] double mean_writes_per_cell() const;

 private:
  RcsConfig cfg_;
  Rng rng_;
  std::uint64_t next_salt_ = 1;
  std::vector<CrossbarWeightStore*> stores_;
};

}  // namespace refit
