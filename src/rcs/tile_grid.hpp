// TileGrid — the tile partitioning of a 2-D matrix onto fixed-size
// crossbar tiles (edge tiles shrink to fit), shared by every component
// that walks the tiles of a store: the effective-weight rebuild, the
// on-line detector, and the re-mapping engine's write-back.
//
// The grid is pure geometry: it knows where each tile sits inside the
// matrix, not what the tile contains. Its one compute primitive,
// for_each_tile, fans the per-tile visits across the global thread pool
// with static partitioning, so visitors that write disjoint per-tile
// output are bit-identical at any thread count (the same guarantee as
// common/thread_pool.hpp).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace refit {

/// One tile's placement inside the matrix.
struct TileSpan {
  std::size_t index = 0;  ///< flat tile index (ti * grid_cols + tj)
  std::size_t ti = 0;     ///< tile-grid row
  std::size_t tj = 0;     ///< tile-grid column
  std::size_t row0 = 0;   ///< physical row of the tile's top-left cell
  std::size_t col0 = 0;   ///< physical column of the tile's top-left cell
  std::size_t rows = 0;   ///< tile extent (edge tiles shrink)
  std::size_t cols = 0;
};

/// Partition of a rows×cols matrix into a grid of tile_rows×tile_cols
/// tiles, visited flat-index row-major.
class TileGrid {
 public:
  TileGrid() = default;
  TileGrid(std::size_t rows, std::size_t cols, std::size_t tile_rows,
           std::size_t tile_cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t tile_rows() const { return tile_rows_; }
  [[nodiscard]] std::size_t tile_cols() const { return tile_cols_; }
  [[nodiscard]] std::size_t grid_rows() const { return grid_rows_; }
  [[nodiscard]] std::size_t grid_cols() const { return grid_cols_; }
  [[nodiscard]] std::size_t tile_count() const {
    return grid_rows_ * grid_cols_;
  }

  [[nodiscard]] std::size_t index_of(std::size_t ti, std::size_t tj) const;
  [[nodiscard]] TileSpan span(std::size_t t) const;

  /// Tile-local coordinates of a physical cell.
  struct Coord {
    std::size_t tile;  ///< flat tile index
    std::size_t lr;    ///< row within the tile
    std::size_t lc;    ///< column within the tile
  };
  [[nodiscard]] Coord locate(std::size_t phys_r, std::size_t phys_c) const;

  using TileVisitor = std::function<void(const TileSpan&)>;

  /// Visit every tile, one pool lane per contiguous chunk of tiles.
  /// The visitor must confine its writes to per-tile state (the static
  /// partition makes the result order-independent).
  void for_each_tile(const TileVisitor& visit) const;

  /// Visit only the tiles whose flat indices appear in `subset` (the
  /// incremental-rebuild path visits just the dirty tiles).
  void for_each_tile(const std::vector<std::size_t>& subset,
                     const TileVisitor& visit) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t tile_rows_ = 0;
  std::size_t tile_cols_ = 0;
  std::size_t grid_rows_ = 0;
  std::size_t grid_cols_ = 0;
};

}  // namespace refit
