// Tile partitioning geometry and parallel per-tile visitation (tile_grid.hpp).
#include "rcs/tile_grid.hpp"

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace refit {

TileGrid::TileGrid(std::size_t rows, std::size_t cols, std::size_t tile_rows,
                   std::size_t tile_cols)
    : rows_(rows), cols_(cols), tile_rows_(tile_rows), tile_cols_(tile_cols) {
  REFIT_CHECK_MSG(tile_rows_ > 0 && tile_cols_ > 0,
                  "tile geometry must be nonzero");
  grid_rows_ = (rows_ + tile_rows_ - 1) / tile_rows_;
  grid_cols_ = (cols_ + tile_cols_ - 1) / tile_cols_;
}

std::size_t TileGrid::index_of(std::size_t ti, std::size_t tj) const {
  REFIT_DCHECK(ti < grid_rows_ && tj < grid_cols_);
  return ti * grid_cols_ + tj;
}

TileSpan TileGrid::span(std::size_t t) const {
  REFIT_DCHECK(t < tile_count());
  TileSpan s;
  s.index = t;
  s.ti = t / grid_cols_;
  s.tj = t % grid_cols_;
  s.row0 = s.ti * tile_rows_;
  s.col0 = s.tj * tile_cols_;
  s.rows = std::min(tile_rows_, rows_ - s.row0);
  s.cols = std::min(tile_cols_, cols_ - s.col0);
  return s;
}

TileGrid::Coord TileGrid::locate(std::size_t phys_r, std::size_t phys_c) const {
  REFIT_DCHECK(phys_r < rows_ && phys_c < cols_);
  const std::size_t ti = phys_r / tile_rows_;
  const std::size_t tj = phys_c / tile_cols_;
  return Coord{ti * grid_cols_ + tj, phys_r % tile_rows_, phys_c % tile_cols_};
}

void TileGrid::for_each_tile(const TileVisitor& visit) const {
  // Grained on the full-tile cell count: one- or two-tile visits (the
  // sub-millisecond incremental rebuilds) run inline on the caller instead
  // of paying the pool handshake.
  parallel_for_grained(tile_count(), tile_rows_ * tile_cols_,
                       [&](std::size_t t0, std::size_t t1) {
                         for (std::size_t t = t0; t < t1; ++t) visit(span(t));
                       });
}

void TileGrid::for_each_tile(const std::vector<std::size_t>& subset,
                             const TileVisitor& visit) const {
  parallel_for_grained(subset.size(), tile_rows_ * tile_cols_,
                       [&](std::size_t d0, std::size_t d1) {
                         for (std::size_t d = d0; d < d1; ++d)
                           visit(span(subset[d]));
                       });
}

}  // namespace refit
