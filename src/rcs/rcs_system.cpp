// RCS system facade and store factory (see rcs_system.hpp).
#include "rcs/rcs_system.hpp"

#include <utility>

namespace refit {

RcsSystem::RcsSystem(RcsConfig cfg, Rng rng) : cfg_(cfg), rng_(rng) {}

StoreFactory RcsSystem::factory() {
  return [this](const std::string& /*layer_name*/, Tensor init) {
    auto store = std::make_unique<CrossbarWeightStore>(
        cfg_, std::move(init), rng_.split(next_salt_++));
    stores_.push_back(store.get());
    return store;
  };
}

std::uint64_t RcsSystem::total_device_writes() const {
  std::uint64_t n = 0;
  for (const auto* s : stores_) n += s->write_count();
  return n;
}

std::size_t RcsSystem::cell_count() const {
  std::size_t n = 0;
  for (const auto* s : stores_) n += s->cell_count();
  return n;
}

std::size_t RcsSystem::physical_cell_count() const {
  std::size_t n = 0;
  for (const auto* s : stores_) n += s->physical_cell_count();
  return n;
}

std::size_t RcsSystem::soft_fault_count() const {
  std::size_t n = 0;
  for (const auto* s : stores_) n += s->soft_fault_count();
  return n;
}

std::size_t RcsSystem::fault_count() const {
  std::size_t n = 0;
  for (const auto* s : stores_) n += s->fault_count();
  return n;
}

std::size_t RcsSystem::wearout_fault_count() const {
  std::size_t n = 0;
  for (const auto* s : stores_) n += s->wearout_fault_count();
  return n;
}

double RcsSystem::fault_fraction() const {
  const std::size_t cells = physical_cell_count();
  if (cells == 0) return 0.0;
  return static_cast<double>(fault_count()) / static_cast<double>(cells);
}

double RcsSystem::mean_writes_per_cell() const {
  const std::size_t cells = cell_count();
  if (cells == 0) return 0.0;
  return static_cast<double>(total_device_writes()) /
         static_cast<double>(cells);
}

}  // namespace refit
