// Logical↔physical permutation pair (see logical_mapping.hpp).
#include "rcs/logical_mapping.hpp"

#include <istream>
#include <numeric>
#include <ostream>
#include <utility>

#include "common/check.hpp"
#include "common/serialize.hpp"

namespace refit {

LogicalMapping::LogicalMapping(std::size_t rows, std::size_t cols) {
  row_perm_.resize(rows);
  col_perm_.resize(cols);
  std::iota(row_perm_.begin(), row_perm_.end(), 0);
  std::iota(col_perm_.begin(), col_perm_.end(), 0);
  inv_row_perm_ = row_perm_;
  inv_col_perm_ = col_perm_;
}

void LogicalMapping::set(std::vector<std::size_t> row_perm,
                         std::vector<std::size_t> col_perm) {
  const std::size_t r = rows(), c = cols();
  REFIT_CHECK_MSG(row_perm.size() == r && col_perm.size() == c,
                  "permutation size mismatch");
  std::vector<bool> seen_r(r, false), seen_c(c, false);
  for (std::size_t v : row_perm) {
    REFIT_CHECK_MSG(v < r && !seen_r[v], "row_perm is not a permutation");
    seen_r[v] = true;
  }
  for (std::size_t v : col_perm) {
    REFIT_CHECK_MSG(v < c && !seen_c[v], "col_perm is not a permutation");
    seen_c[v] = true;
  }
  row_perm_ = std::move(row_perm);
  col_perm_ = std::move(col_perm);
  for (std::size_t i = 0; i < r; ++i) inv_row_perm_[row_perm_[i]] = i;
  for (std::size_t j = 0; j < c; ++j) inv_col_perm_[col_perm_[j]] = j;
}

void LogicalMapping::save(std::ostream& os) const {
  std::vector<std::uint64_t> rp(row_perm_.begin(), row_perm_.end());
  std::vector<std::uint64_t> cp(col_perm_.begin(), col_perm_.end());
  ser::write_vec(os, rp);
  ser::write_vec(os, cp);
}

LogicalMapping LogicalMapping::load(std::istream& is) {
  const auto rp = ser::read_vec<std::uint64_t>(is);
  const auto cp = ser::read_vec<std::uint64_t>(is);
  LogicalMapping map(rp.size(), cp.size());
  std::vector<std::size_t> row_perm(rp.begin(), rp.end());
  std::vector<std::size_t> col_perm(cp.begin(), cp.end());
  map.set(std::move(row_perm), std::move(col_perm));
  return map;
}

}  // namespace refit
