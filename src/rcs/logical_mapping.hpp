// LogicalMapping — the logical↔physical coordinate permutation of a
// weight matrix on the chip.
//
// Logical weight (i, j) lives at physical cell
// (row_perm[i], col_perm[j]); the inverse permutations answer "whose
// weight is stored here?" for components that walk physical space (the
// effective-weight rebuild, targeted re-sync, the detector's
// FaultMatrix consumers). The re-mapping engine computes new
// permutations against this class and the store installs them — the
// mapping itself never touches device state.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace refit {

/// Row/column permutation pair with cached inverses. Always a bijection
/// (validated on install); default state is the identity.
class LogicalMapping {
 public:
  LogicalMapping() = default;
  /// Identity mapping for a rows×cols matrix.
  LogicalMapping(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return row_perm_.size(); }
  [[nodiscard]] std::size_t cols() const { return col_perm_.size(); }

  /// Install new permutations; REFIT_CHECKs size and bijectivity.
  void set(std::vector<std::size_t> row_perm, std::vector<std::size_t> col_perm);

  /// Physical coordinates hosting logical (i, j).
  [[nodiscard]] std::size_t physical_row(std::size_t i) const {
    return row_perm_[i];
  }
  [[nodiscard]] std::size_t physical_col(std::size_t j) const {
    return col_perm_[j];
  }
  /// Logical coordinates hosted at physical (r, c).
  [[nodiscard]] std::size_t logical_row(std::size_t r) const {
    return inv_row_perm_[r];
  }
  [[nodiscard]] std::size_t logical_col(std::size_t c) const {
    return inv_col_perm_[c];
  }

  [[nodiscard]] const std::vector<std::size_t>& row_perm() const {
    return row_perm_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_perm() const {
    return col_perm_;
  }
  [[nodiscard]] const std::vector<std::size_t>& inv_row_perm() const {
    return inv_row_perm_;
  }
  [[nodiscard]] const std::vector<std::size_t>& inv_col_perm() const {
    return inv_col_perm_;
  }

  /// Checkpointing (perms only; inverses are rebuilt on load).
  void save(std::ostream& os) const;
  [[nodiscard]] static LogicalMapping load(std::istream& is);

 private:
  std::vector<std::size_t> row_perm_;
  std::vector<std::size_t> col_perm_;
  std::vector<std::size_t> inv_row_perm_;
  std::vector<std::size_t> inv_col_perm_;
};

}  // namespace refit
