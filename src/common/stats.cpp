// Summary-statistics helpers (see stats.hpp).
#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace refit {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void ConfusionCounts::add(bool actual_faulty, bool predicted_faulty) {
  if (actual_faulty) {
    if (predicted_faulty) {
      ++tp;
    } else {
      ++fn;
    }
  } else {
    if (predicted_faulty) {
      ++fp;
    } else {
      ++tn;
    }
  }
}

ConfusionCounts& ConfusionCounts::operator+=(const ConfusionCounts& o) {
  tp += o.tp;
  fp += o.fp;
  fn += o.fn;
  tn += o.tn;
  return *this;
}

double ConfusionCounts::precision() const {
  const auto denom = tp + fp;
  if (denom == 0) return 1.0;
  return static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionCounts::recall() const {
  const auto denom = tp + fn;
  if (denom == 0) return 1.0;
  return static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionCounts::f1() const {
  const double p = precision();
  const double r = recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double percentile(std::vector<double> v, double p) {
  REFIT_CHECK(!v.empty());
  REFIT_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace refit
