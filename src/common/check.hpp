// Lightweight precondition / invariant checking for the REFIT library.
//
// REFIT_CHECK is always on (simulation correctness beats the tiny branch
// cost); REFIT_DCHECK compiles away in NDEBUG builds and is meant for hot
// inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/failure_hook.hpp"

namespace refit {

/// Exception thrown on violated preconditions and invariants.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  // Flight recorder first: when the event log is enabled it dumps its
  // tail to stderr here, before the throw unwinds any useful state.
  obs::invoke_failure_hook();
  std::ostringstream os;
  os << "REFIT_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace refit

#define REFIT_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr))                                                        \
      ::refit::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define REFIT_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream refit_os_;                                     \
      refit_os_ << msg;                                                 \
      ::refit::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                    refit_os_.str());                   \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define REFIT_DCHECK(expr) ((void)0)
#define REFIT_DCHECK_MSG(expr, msg) ((void)0)
#else
#define REFIT_DCHECK(expr) REFIT_CHECK(expr)
#define REFIT_DCHECK_MSG(expr, msg) REFIT_CHECK_MSG(expr, msg)
#endif
