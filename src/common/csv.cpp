// CSV experiment-log writer (see csv.hpp).
#include "common/csv.hpp"

#include <iomanip>
#include <sstream>
#include <utility>

namespace refit {

SeriesPrinter::SeriesPrinter(std::ostream& os, std::string experiment_id)
    : os_(os), id_(std::move(experiment_id)) {
  os_ << "# experiment: " << id_ << "\n";
}

void SeriesPrinter::paper_reference(const std::string& text) {
  os_ << "# paper: " << text << "\n";
}

void SeriesPrinter::comment(const std::string& text) {
  os_ << "# " << text << "\n";
}

void SeriesPrinter::header(std::initializer_list<std::string> columns) {
  os_ << "# columns: ";
  bool first = true;
  for (const auto& c : columns) {
    if (!first) os_ << ",";
    os_ << c;
    first = false;
  }
  os_ << "\n";
}

void SeriesPrinter::row(const std::vector<double>& values) {
  bool first = true;
  for (double v : values) {
    if (!first) os_ << ",";
    os_ << format_double(v);
    first = false;
  }
  os_ << "\n";
}

void SeriesPrinter::row(const std::string& label,
                        const std::vector<double>& values) {
  os_ << label;
  for (double v : values) os_ << "," << format_double(v);
  os_ << "\n";
}

std::string format_double(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  std::string s = os.str();
  // Trim trailing zeros but keep at least one digit after the point.
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.push_back('0');
  }
  return s;
}

}  // namespace refit
