// xoshiro256** / SplitMix64 implementation (see rng.hpp).
#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace refit {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::split(std::uint64_t salt) const {
  // Mix current state with the salt through SplitMix64 to derive a child
  // seed; the child stream is independent of further draws from the parent.
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 17) ^ (salt * 0xd1342543de82ef95ULL);
  return Rng(splitmix64(mix));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  REFIT_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  REFIT_CHECK(n > 0);
  // Lemire's unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0ULL - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  REFIT_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap only if full range
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng::State Rng::state() const {
  State st{};
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::set_state(const State& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  cached_normal_ = st.cached_normal;
  has_cached_normal_ = st.has_cached_normal;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  REFIT_CHECK(k <= n);
  std::vector<std::size_t> reservoir(k);
  for (std::size_t i = 0; i < k; ++i) reservoir[i] = i;
  for (std::size_t i = k; i < n; ++i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(i + 1));
    if (j < k) reservoir[j] = i;
  }
  return reservoir;
}

}  // namespace refit
