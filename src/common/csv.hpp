// CSV-style series output used by the benchmark harness.
//
// Every figure/table reproduction prints its data through a SeriesPrinter so
// the output is grep-able and directly comparable against the paper's
// reported series (EXPERIMENTS.md records both).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace refit {

/// Prints rows as `name,val1,val2,...` with a leading header and optional
/// `# paper: ...` reference comments.
class SeriesPrinter {
 public:
  SeriesPrinter(std::ostream& os, std::string experiment_id);

  /// Emit a `# paper: ...` comment recording what the paper reports.
  void paper_reference(const std::string& text);
  /// Emit a free-form comment line.
  void comment(const std::string& text);
  /// Emit the column header (`# columns: a,b,c`).
  void header(std::initializer_list<std::string> columns);
  /// Emit one data row; doubles are printed with 4 significant decimals.
  void row(const std::vector<double>& values);
  /// Emit one data row with a leading string label.
  void row(const std::string& label, const std::vector<double>& values);

 private:
  std::ostream& os_;
  std::string id_;
};

/// Format a double with fixed precision (helper shared with log output).
std::string format_double(double v, int decimals = 4);

}  // namespace refit
