// Small statistics helpers shared by the detector metrics and the
// experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace refit {

/// Streaming mean / variance (Welford).
class RunningStat {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Binary-classification confusion counts for fault detection.
///
/// "Positive" means "predicted faulty" — the convention used in the paper's
/// §6.1 definitions of precision and recall.
struct ConfusionCounts {
  std::uint64_t tp = 0;  ///< faulty, predicted faulty
  std::uint64_t fp = 0;  ///< fault-free, predicted faulty
  std::uint64_t fn = 0;  ///< faulty, predicted fault-free
  std::uint64_t tn = 0;  ///< fault-free, predicted fault-free

  void add(bool actual_faulty, bool predicted_faulty);
  ConfusionCounts& operator+=(const ConfusionCounts& o);

  /// TP / (TP + FP); 1.0 when no positives were predicted.
  [[nodiscard]] double precision() const;
  /// TP / (TP + FN); 1.0 when there are no actual faults.
  [[nodiscard]] double recall() const;
  [[nodiscard]] double f1() const;
  [[nodiscard]] std::uint64_t total() const { return tp + fp + fn + tn; }
};

/// p-th percentile (p in [0,100]) by linear interpolation; v is copied.
double percentile(std::vector<double> v, double p);

/// Arithmetic mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& v);

}  // namespace refit
