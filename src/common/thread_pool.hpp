// Shared data-parallel backend for the simulation hot paths.
//
// A ThreadPool owns N-1 worker threads (the calling thread is the Nth
// lane) and exposes one primitive: parallel_for(n, body), which splits
// [0, n) into at most N contiguous chunks by *static* partitioning and
// runs body(begin, end) on each. Static partitioning is the determinism
// guarantee: every index is processed by exactly one chunk, chunk
// boundaries depend only on (n, N), and callers write disjoint output
// ranges — so pooled results are bit-identical to the serial path at any
// thread count.
//
// The global pool is sized from REFIT_THREADS when set (1 disables
// workers entirely and parallel_for degenerates to an inline loop on the
// caller), otherwise from std::thread::hardware_concurrency().
// Exceptions thrown inside a chunk are captured and rethrown on the
// calling thread. parallel_for called from inside a worker runs inline
// (no nested fan-out, no deadlock).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace refit {

class ThreadPool {
 public:
  /// A pool of `threads` lanes total (caller included); threads == 0 is
  /// treated as 1. A 1-lane pool spawns no workers.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (worker threads + the calling thread).
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Run body(begin, end) over a static partition of [0, n). Blocks until
  /// every chunk finished; rethrows the first chunk exception. `max_lanes`
  /// caps the number of chunks (0 = all lanes); 1 runs inline on the
  /// caller without waking any worker — the small-op fast path.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t max_lanes = 0);

  /// The process-wide pool (REFIT_THREADS / hardware concurrency).
  static ThreadPool& global();
  /// Re-create the global pool with `threads` lanes (tests / benches).
  static void set_global_threads(std::size_t threads);

 private:
  void worker_loop(std::size_t lane);
  /// Chunk `lane` of the current job; returns false if the range is empty.
  void run_chunk(std::size_t lane);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;

  // Current job (valid while pending_ > 0).
  std::size_t job_n_ = 0;
  std::size_t job_lanes_ = 0;
  const std::function<void(std::size_t, std::size_t)>* job_body_ = nullptr;
  std::exception_ptr job_error_;
};

/// parallel_for on the global pool — the call sites' spelling.
inline void parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for(n, body);
}

/// Minimum scalar-op work a lane must amortize before fan-out pays for the
/// pool handshake (wakeup + join ≈ tens of microseconds). Callers of
/// parallel_for_grained estimate work_per_item in flops / element visits.
inline constexpr std::size_t kParallelGrain = 65536;

/// Grain-aware parallel_for: fans [0, n) out over at most
/// ceil(n · work_per_item / kParallelGrain) lanes, so sub-grain ops run
/// inline on the caller instead of paying the pool handshake. Chunks stay
/// static and callers write disjoint ranges, so results are bit-identical
/// to the ungrained spelling at any thread count.
inline void parallel_for_grained(
    std::size_t n, std::size_t work_per_item,
    const std::function<void(std::size_t, std::size_t)>& body) {
  std::size_t lanes = 1;
  if (work_per_item == 0) work_per_item = 1;
  if (n > kParallelGrain / work_per_item) {
    const std::size_t per_lane = kParallelGrain / work_per_item;
    lanes = per_lane == 0 ? n : (n + per_lane - 1) / per_lane;
  }
  ThreadPool::global().parallel_for(n, body, lanes);
}

}  // namespace refit
