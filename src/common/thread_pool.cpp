// Persistent worker pool behind refit::parallel_for (see thread_pool.hpp).
//
// Telemetry (docs/observability.md): every top-level parallel_for bumps
// the pool.parallel_for.calls counter and records a trace span on the
// calling thread; each worker accumulates pool.worker.<lane>.busy_ns.
// Spans are recorded only on the caller and busy time only inside
// worker_loop, so traces taken with an injected ManualClock are
// byte-identical at any thread count.
#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace refit {

namespace {

// True on threads currently executing a pool chunk; parallel_for on such a
// thread runs inline instead of fanning out again. Also held on the
// *caller* while it executes its own chunk (inline or lane 0), which (a)
// keeps nested parallel_for calls inline — fanning out mid-job would
// corrupt the pending job — and (b) keeps nested calls span-free on every
// path, so traces do not depend on the thread count.
thread_local bool t_inside_pool = false;

// Scoped t_inside_pool (exception-safe restore).
struct InsidePoolGuard {
  InsidePoolGuard() { t_inside_pool = true; }
  ~InsidePoolGuard() { t_inside_pool = false; }
};

std::size_t default_thread_count() {
  if (const char* env = std::getenv("REFIT_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Chunk `lane` of [0, n) split into `lanes` contiguous ranges.
std::pair<std::size_t, std::size_t> chunk_range(std::size_t n,
                                                std::size_t lanes,
                                                std::size_t lane) {
  return {n * lane / lanes, n * (lane + 1) / lanes};
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t lanes = std::max<std::size_t>(1, threads);
  workers_.reserve(lanes - 1);
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunk(std::size_t lane) {
  if (lane >= job_lanes_) return;
  const auto [begin, end] = chunk_range(job_n_, job_lanes_, lane);
  if (begin >= end) return;
  (*job_body_)(begin, end);
}

void ThreadPool::worker_loop(std::size_t lane) {
  t_inside_pool = true;
  obs::Tracer::set_thread_tid(static_cast<std::uint32_t>(lane));
  obs::Counter busy_ns = obs::MetricsRegistry::instance().counter(
      "pool.worker." + std::to_string(lane) + ".busy_ns", "ns");
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      start_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    std::exception_ptr err;
    const bool timed = obs::metrics_enabled();
    const std::uint64_t t0 = timed ? obs::now_ns() : 0;
    try {
      run_chunk(lane);
    } catch (...) {
      err = std::current_exception();
    }
    if (timed) busy_ns.add(obs::now_ns() - t0);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (err && !job_error_) job_error_ = err;
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t max_lanes) {
  if (n == 0) return;
  // Nested call from inside a pool chunk: always inline, never measured —
  // the outer call owns the job slots and the trace span.
  if (t_inside_pool) {
    body(0, n);
    return;
  }
  static obs::Counter calls = obs::MetricsRegistry::instance().counter(
      "pool.parallel_for.calls", "calls");
  static obs::Counter inline_calls = obs::MetricsRegistry::instance().counter(
      "pool.parallel_for.inline", "calls");
  calls.add();
  obs::TraceSpan span("parallel_for", "pool");
  const std::size_t lanes =
      std::min(size(), std::min(max_lanes == 0 ? n : max_lanes, n));
  // Serial fallback: 1-lane pool, a range too small to split, or a grain
  // cap of one lane. Runs the exact same chunk math (one chunk = [0, n))
  // without waking any worker.
  if (workers_.empty() || lanes <= 1) {
    inline_calls.add();
    InsidePoolGuard guard;
    body(0, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_n_ = n;
    job_lanes_ = lanes;
    job_body_ = &body;
    job_error_ = nullptr;
    pending_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  std::exception_ptr err;
  try {
    InsidePoolGuard guard;
    run_chunk(0);
  } catch (...) {
    err = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return pending_ == 0; });
    job_body_ = nullptr;
    if (!err) err = job_error_;
  }
  if (err) std::rethrow_exception(err);
}

namespace {
std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
}  // namespace

ThreadPool& ThreadPool::global() {
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(default_thread_count());
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  auto& slot = global_pool_slot();
  slot = std::make_unique<ThreadPool>(threads);
}

}  // namespace refit
