// Minimal leveled logger for the simulator and the experiment harness.
//
// Experiments print their data through SeriesPrinter; the logger is for
// progress/diagnostic lines and defaults to kInfo on stderr so data on
// stdout stays clean.
//
// Thread safety: the level is an atomic (set/read from any thread) and
// line emission is serialized behind a mutex, so concurrent REFIT_LOG
// calls from pool workers never tear into each other — each line reaches
// stderr whole (tests/test_csv_log.cpp hammers this).
#pragma once

#include <sstream>
#include <string>

namespace refit {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global minimum level (atomic; callable from any thread).
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace refit

#define REFIT_LOG(level, msg)                                       \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::refit::log_level())) {                   \
      std::ostringstream refit_log_os_;                             \
      refit_log_os_ << msg;                                         \
      ::refit::detail::log_line(level, refit_log_os_.str());        \
    }                                                               \
  } while (0)

#define REFIT_DEBUG(msg) REFIT_LOG(::refit::LogLevel::kDebug, msg)
#define REFIT_INFO(msg) REFIT_LOG(::refit::LogLevel::kInfo, msg)
#define REFIT_WARN(msg) REFIT_LOG(::refit::LogLevel::kWarn, msg)
#define REFIT_ERROR(msg) REFIT_LOG(::refit::LogLevel::kError, msg)
