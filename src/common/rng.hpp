// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components of the simulator (weight init, fault injection,
// write variation, dataset synthesis, search heuristics) draw from an Rng so
// every experiment is reproducible from a single seed. The generator is
// xoshiro256**, seeded through SplitMix64 so that nearby integer seeds give
// statistically independent streams.
#pragma once

#include <cstdint>
#include <vector>

namespace refit {

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies the subset of UniformRandomBitGenerator we need, but the
/// distribution helpers below are hand-rolled so results are identical
/// across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derive an independent child stream; `salt` distinguishes siblings.
  [[nodiscard]] Rng split(std::uint64_t salt) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached second variate).
  double normal();
  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (reservoir sampling).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Full generator state, for checkpointing (4 words of xoshiro state +
  /// the Box–Muller cache).
  struct State {
    std::uint64_t s[4];
    double cached_normal;
    bool has_cached_normal;
  };
  [[nodiscard]] State state() const;
  void set_state(const State& st);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace refit
