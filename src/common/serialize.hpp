// Minimal binary serialization helpers used by the checkpointing support
// (src/rcs/checkpoint.hpp). Little-endian, host-format PODs with explicit
// sizes; every reader checks the stream and fails loudly.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace refit::ser {

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
  REFIT_CHECK_MSG(os.good(), "serialization write failed");
}

template <typename T>
T read_pod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  REFIT_CHECK_MSG(is.good(), "serialization read failed");
  return v;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(os, v.size());
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
    REFIT_CHECK_MSG(os.good(), "serialization write failed");
  }
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<T> v(n);
  if (n > 0) {
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    REFIT_CHECK_MSG(is.good(), "serialization read failed");
  }
  return v;
}

/// Write/check a 8-byte section tag — catches format drift early.
inline void write_tag(std::ostream& os, std::uint64_t tag) {
  write_pod(os, tag);
}
inline void expect_tag(std::istream& is, std::uint64_t tag) {
  const auto got = read_pod<std::uint64_t>(is);
  REFIT_CHECK_MSG(got == tag, "serialization tag mismatch: expected "
                                  << tag << ", got " << got);
}

}  // namespace refit::ser
