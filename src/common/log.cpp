// Leveled stderr logger (see log.hpp). The level is a relaxed atomic and
// emission builds each line into one string written under a mutex, so
// concurrent workers' lines interleave whole-line, never mid-line.
#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace refit {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::string line;
  line.reserve(msg.size() + 16);
  line += "[";
  line += level_name(level);
  line += "] ";
  line += msg;
  line += "\n";
  // One pre-built string, one insertion, under the mutex: a line can never
  // tear even if the stream itself buffers per-call.
  std::lock_guard<std::mutex> lk(log_mutex());
  std::cerr << line;
}
}  // namespace detail

}  // namespace refit
