// Leveled stderr logger (see log.hpp).
#include "common/log.hpp"

#include <iostream>

namespace refit {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::cerr << "[" << level_name(level) << "] " << msg << "\n";
}
}  // namespace detail

}  // namespace refit
