// Synthetic stand-ins for MNIST and CIFAR-10 (DESIGN.md §4).
//
// MNIST and CIFAR-10 are not available offline, so we synthesize 10-class
// image tasks from class prototypes plus sample-level jitter. The fault-
// tolerance mechanisms under study act on training *dynamics* (δw
// distribution, weight sparsity, fault/weight collisions), not on natural
// image statistics, so any learnable task with a comparable fault-free
// accuracy ceiling exercises the same code paths.
#pragma once

#include <cstddef>

#include "data/dataset.hpp"

namespace refit {

class Rng;

/// Knobs for the synthetic generators. Defaults give a fault-free accuracy
/// ceiling in the ~85-95 % range, mirroring the paper's 85.2 % ideal case.
struct SyntheticConfig {
  std::size_t train_size = 4096;
  std::size_t test_size = 1024;
  std::size_t num_classes = 10;
  /// Pixel-wise Gaussian noise added to every sample.
  float noise_stddev = 0.35f;
  /// Maximum random translation (pixels) applied per sample.
  int max_shift = 2;
  /// Per-sample brightness scaling range [1-a, 1+a].
  float amplitude_jitter = 0.25f;
  /// Pixels below this value are clipped to exactly 0 (mimics MNIST's
  /// black background; ignored by the CIFAR-like generator, whose real
  /// counterpart is dense). Gives the sparse activations/gradients the
  /// paper's threshold-training statistics rely on.
  float background_clip = 0.25f;
};

/// MNIST-like task: 28×28 grayscale stroke digits, flattened to [N, 784]
/// (the paper's 784×100×10 MLP benchmark consumes this directly).
Dataset make_synthetic_mnist(const SyntheticConfig& cfg, Rng& rng);

/// CIFAR-like task: `hw`×`hw` RGB images [N, 3, hw, hw] built from smooth
/// random color-field prototypes (default 16×16; the paper's VGG-11 on
/// 32×32 CIFAR-10 is scaled down per DESIGN.md §4).
Dataset make_synthetic_cifar(const SyntheticConfig& cfg, Rng& rng,
                             std::size_t hw = 16);

}  // namespace refit
