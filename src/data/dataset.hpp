// Dataset container and minibatch iteration.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "tensor/tensor.hpp"

namespace refit {

class Rng;

/// An in-memory classification dataset with a train/test split.
/// Images are [N, C, H, W] for CNNs or [N, D] for MLPs.
struct Dataset {
  Tensor train_images;
  std::vector<std::uint8_t> train_labels;
  Tensor test_images;
  std::vector<std::uint8_t> test_labels;
  std::size_t num_classes = 0;

  [[nodiscard]] std::size_t train_size() const {
    return train_labels.size();
  }
  [[nodiscard]] std::size_t test_size() const { return test_labels.size(); }
};

/// One minibatch.
struct Batch {
  Tensor images;
  std::vector<std::uint8_t> labels;
};

/// Cyclic shuffled minibatch source over a dataset's training split.
class Batcher {
 public:
  /// Does not own the dataset; it must outlive the batcher.
  Batcher(const Dataset& data, std::size_t batch_size, Rng& rng);

  /// Next minibatch; reshuffles automatically at epoch boundaries.
  Batch next();

  [[nodiscard]] std::size_t batch_size() const { return batch_size_; }
  [[nodiscard]] std::size_t epochs_completed() const { return epochs_; }

  /// Checkpointing of the iteration state (shuffled order, cursor, epoch
  /// count). The RNG reference is NOT serialized — the owner checkpoints
  /// its Rng separately and must restore it to the saved state so that
  /// future reshuffles draw the same stream.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  void reshuffle();

  const Dataset& data_;
  std::size_t batch_size_;
  Rng& rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
  std::size_t epochs_ = 0;
};

/// Gather specific rows of a [N, ...] tensor into a new tensor.
Tensor gather_rows(const Tensor& data, const std::vector<std::size_t>& rows);

}  // namespace refit
