// Synthetic classification-task generators (see synthetic.hpp).
#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace refit {

namespace {

/// Draw `strokes` random-walk strokes into `img` (size hw×hw).
void draw_strokes(std::vector<float>& img, std::size_t hw, int strokes,
                  Rng& rng) {
  const int n = static_cast<int>(hw);
  for (int s = 0; s < strokes; ++s) {
    // Random walk with momentum from a random start.
    double x = rng.uniform(0.2, 0.8) * n;
    double y = rng.uniform(0.2, 0.8) * n;
    double angle = rng.uniform(0.0, 2.0 * 3.14159265358979);
    const int steps = n * 2;
    for (int t = 0; t < steps; ++t) {
      angle += rng.normal(0.0, 0.35);
      x += std::cos(angle);
      y += std::sin(angle);
      x = std::clamp(x, 1.0, static_cast<double>(n - 2));
      y = std::clamp(y, 1.0, static_cast<double>(n - 2));
      // Stamp a 3×3 soft dot.
      const int cx = static_cast<int>(x), cy = static_cast<int>(y);
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          const int px = cx + dx, py = cy + dy;
          const float w = (dx == 0 && dy == 0) ? 1.0f : 0.4f;
          auto& pix = img[static_cast<std::size_t>(py) * hw +
                          static_cast<std::size_t>(px)];
          pix = std::min(1.0f, pix + w);
        }
    }
  }
}

/// A grayscale prototype: shared base strokes (common to every class, so
/// classes overlap heavily) plus a small number of class-specific strokes.
/// Classification therefore hinges on fine features — like real digits —
/// which makes the task sensitive to network damage instead of trivially
/// margin-dominated.
std::vector<float> make_stroke_prototype(std::size_t hw,
                                         const std::vector<float>& base,
                                         Rng& rng) {
  std::vector<float> img = base;
  draw_strokes(img, hw, static_cast<int>(rng.uniform_int(1, 2)), rng);
  return img;
}

/// Add `blobs` Gaussian blobs to an RGB field.
void add_blobs(std::vector<float>& img, std::size_t hw, int blobs,
               double sigma_lo, double sigma_hi, double amp_lo,
               double amp_hi, Rng& rng) {
  const std::size_t ch = 3;
  for (int b = 0; b < blobs; ++b) {
    const std::size_t c = rng.uniform_index(ch);
    const double mx = rng.uniform(0.15, 0.85) * static_cast<double>(hw);
    const double my = rng.uniform(0.15, 0.85) * static_cast<double>(hw);
    const double sigma = rng.uniform(sigma_lo, sigma_hi);
    double amp = rng.uniform(amp_lo, amp_hi);
    if (rng.bernoulli(0.5)) amp = -amp;
    for (std::size_t y = 0; y < hw; ++y)
      for (std::size_t x = 0; x < hw; ++x) {
        const double dx = static_cast<double>(x) - mx;
        const double dy = static_cast<double>(y) - my;
        img[(c * hw + y) * hw + x] += static_cast<float>(
            amp * std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma)));
      }
  }
}

/// An RGB prototype: a smooth base color field *shared by every class*
/// plus a few small class-specific bumps. Classes overlap in their global
/// statistics and differ only in localized features, so the task needs
/// real (conv) feature extraction and degrades when the network is
/// damaged — mirroring CIFAR-10's difficulty profile rather than a
/// trivially separable mixture.
std::vector<float> make_blob_prototype(std::size_t hw,
                                       const std::vector<float>& base,
                                       Rng& rng) {
  std::vector<float> img = base;
  add_blobs(img, hw, 3, 1.0, 2.2, 0.5, 0.9, rng);
  return img;
}

/// Copy `proto` (layout [C, hw, hw]) into `out` with an integer translation;
/// out-of-range pixels become 0.
void shifted_copy(const std::vector<float>& proto, std::size_t ch,
                  std::size_t hw, int sx, int sy, float* out) {
  for (std::size_t c = 0; c < ch; ++c)
    for (std::size_t y = 0; y < hw; ++y)
      for (std::size_t x = 0; x < hw; ++x) {
        const int px = static_cast<int>(x) - sx;
        const int py = static_cast<int>(y) - sy;
        float v = 0.0f;
        if (px >= 0 && py >= 0 && px < static_cast<int>(hw) &&
            py < static_cast<int>(hw)) {
          v = proto[(c * hw + static_cast<std::size_t>(py)) * hw +
                    static_cast<std::size_t>(px)];
        }
        out[(c * hw + y) * hw + x] = v;
      }
}

void synthesize_split(const std::vector<std::vector<float>>& protos,
                      std::size_t ch, std::size_t hw,
                      const SyntheticConfig& cfg, bool clip_background,
                      std::size_t count, Rng& rng, Tensor& images,
                      std::vector<std::uint8_t>& labels) {
  const std::size_t per_img = ch * hw * hw;
  labels.resize(count);
  std::vector<float> shifted(per_img);
  for (std::size_t i = 0; i < count; ++i) {
    const auto cls =
        static_cast<std::uint8_t>(rng.uniform_index(protos.size()));
    labels[i] = cls;
    const int sx = static_cast<int>(
        rng.uniform_int(-cfg.max_shift, cfg.max_shift));
    const int sy = static_cast<int>(
        rng.uniform_int(-cfg.max_shift, cfg.max_shift));
    shifted_copy(protos[cls], ch, hw, sx, sy, shifted.data());
    const float amp = static_cast<float>(
        rng.uniform(1.0 - cfg.amplitude_jitter, 1.0 + cfg.amplitude_jitter));
    float* dst = images.data() + i * per_img;
    for (std::size_t p = 0; p < per_img; ++p) {
      float v = amp * shifted[p] +
                static_cast<float>(rng.normal(0.0, cfg.noise_stddev));
      if (clip_background && v < cfg.background_clip) v = 0.0f;
      dst[p] = v;
    }
  }
}

}  // namespace

Dataset make_synthetic_mnist(const SyntheticConfig& cfg, Rng& rng) {
  REFIT_CHECK(cfg.num_classes >= 2);
  const std::size_t hw = 28;
  Rng proto_rng = rng.split(0x6d6e6973ULL);  // fixed salt: prototypes are
                                             // independent of sample count
  std::vector<float> base(hw * hw, 0.0f);
  draw_strokes(base, hw, 2, proto_rng);
  std::vector<std::vector<float>> protos;
  protos.reserve(cfg.num_classes);
  for (std::size_t c = 0; c < cfg.num_classes; ++c)
    protos.push_back(make_stroke_prototype(hw, base, proto_rng));

  Dataset d;
  d.num_classes = cfg.num_classes;
  d.train_images = Tensor({cfg.train_size, hw * hw});
  d.test_images = Tensor({cfg.test_size, hw * hw});
  Rng train_rng = rng.split(1);
  Rng test_rng = rng.split(2);
  synthesize_split(protos, 1, hw, cfg, /*clip_background=*/true,
                   cfg.train_size, train_rng, d.train_images,
                   d.train_labels);
  synthesize_split(protos, 1, hw, cfg, /*clip_background=*/true,
                   cfg.test_size, test_rng, d.test_images, d.test_labels);
  return d;
}

Dataset make_synthetic_cifar(const SyntheticConfig& cfg, Rng& rng,
                             std::size_t hw) {
  REFIT_CHECK(cfg.num_classes >= 2 && hw >= 8);
  Rng proto_rng = rng.split(0x63696661ULL);
  std::vector<float> base(3 * hw * hw, 0.0f);
  add_blobs(base, hw, 6, 2.5, static_cast<double>(hw) / 2.5, 0.4, 0.9,
            proto_rng);
  std::vector<std::vector<float>> protos;
  protos.reserve(cfg.num_classes);
  for (std::size_t c = 0; c < cfg.num_classes; ++c)
    protos.push_back(make_blob_prototype(hw, base, proto_rng));

  Dataset d;
  d.num_classes = cfg.num_classes;
  d.train_images = Tensor({cfg.train_size, 3, hw, hw});
  d.test_images = Tensor({cfg.test_size, 3, hw, hw});
  Rng train_rng = rng.split(1);
  Rng test_rng = rng.split(2);
  synthesize_split(protos, 3, hw, cfg, /*clip_background=*/false,
                   cfg.train_size, train_rng, d.train_images,
                   d.train_labels);
  synthesize_split(protos, 3, hw, cfg, /*clip_background=*/false,
                   cfg.test_size, test_rng, d.test_images, d.test_labels);
  return d;
}

}  // namespace refit
