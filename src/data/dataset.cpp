// In-memory dataset container and batching (see dataset.hpp).
#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace refit {

Batcher::Batcher(const Dataset& data, std::size_t batch_size, Rng& rng)
    : data_(data), batch_size_(batch_size), rng_(rng) {
  REFIT_CHECK(batch_size_ > 0);
  REFIT_CHECK_MSG(data_.train_size() >= batch_size_,
                  "training split smaller than one batch");
  order_.resize(data_.train_size());
  std::iota(order_.begin(), order_.end(), 0);
  reshuffle();
}

Batch Batcher::next() {
  if (cursor_ + batch_size_ > order_.size()) {
    ++epochs_;
    reshuffle();
  }
  std::vector<std::size_t> rows(order_.begin() + cursor_,
                                order_.begin() + cursor_ + batch_size_);
  cursor_ += batch_size_;
  Batch b;
  b.images = gather_rows(data_.train_images, rows);
  b.labels.reserve(rows.size());
  for (std::size_t r : rows) b.labels.push_back(data_.train_labels[r]);
  return b;
}

void Batcher::reshuffle() {
  rng_.shuffle(order_);
  cursor_ = 0;
}

void Batcher::save(std::ostream& os) const {
  std::vector<std::uint64_t> order(order_.begin(), order_.end());
  ser::write_vec(os, order);
  ser::write_pod<std::uint64_t>(os, cursor_);
  ser::write_pod<std::uint64_t>(os, epochs_);
}

void Batcher::load(std::istream& is) {
  const auto order = ser::read_vec<std::uint64_t>(is);
  REFIT_CHECK_MSG(order.size() == data_.train_size(),
                  "batcher checkpoint does not match the dataset");
  order_.assign(order.begin(), order.end());
  cursor_ = static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  epochs_ = static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
}

Tensor gather_rows(const Tensor& data, const std::vector<std::size_t>& rows) {
  REFIT_CHECK(data.rank() >= 2);
  Shape s = data.shape();
  const std::size_t per_row = data.numel() / s[0];
  const std::size_t n = s[0];
  s[0] = rows.size();
  Tensor out(s);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    REFIT_CHECK(rows[i] < n);
    std::copy(data.data() + rows[i] * per_row,
              data.data() + (rows[i] + 1) * per_row,
              out.data() + i * per_row);
  }
  return out;
}

}  // namespace refit
