// Fault-tolerant re-mapping by neuron re-ordering (paper §5.2).
//
// Re-ordering neuron j of the interface between two matrix layers moves the
// producer's column j and the consumer's input row-block j *together* to a
// new physical slot — the permuted network is isomorphic to the original,
// so no routing hardware is added. The goal (Eq. 3-4) is the permutation
// minimizing Dist(P, F): the number of cells where an unpruned weight
// collides with a stuck cell, so that the network's inherent sparsity
// "absorbs" SA0 faults.
//
// Because the placement cost decomposes per (logical neuron j → physical
// slot p) pair once neighboring interfaces are fixed, each interface is a
// linear assignment problem. We provide the paper's random-swap search and
// a genetic algorithm, plus an exact Hungarian solver as an upper bound
// (ablation ABL_REMAP in DESIGN.md).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/prune.hpp"
#include "nn/network.hpp"
#include "rram/fault_map.hpp"

namespace refit {

class Rng;

/// Search strategy for the per-interface assignment problem.
enum class RemapAlgorithm { kNone, kGreedySwap, kGenetic, kHungarian };

/// Collision cost model.
///  - kPaperExact: Eq. 3 verbatim — an error iff the weight is unpruned and
///    the cell is faulty (any fault kind).
///  - kPhysical: accounts for the |w|+sign encoding — SA0 under an unpruned
///    weight costs 2; SA1 under a pruned weight costs 2 (it would read
///    ±w_max instead of 0); SA1 under an unpruned weight costs 1.
enum class RemapCostModel { kPaperExact, kPhysical };

struct RemapConfig {
  RemapAlgorithm algorithm = RemapAlgorithm::kGreedySwap;
  RemapCostModel cost_model = RemapCostModel::kPhysical;
  /// Random swap attempts per neuron for kGreedySwap.
  std::size_t greedy_trials_per_neuron = 60;
  /// Genetic-algorithm knobs.
  std::size_t ga_population = 24;
  std::size_t ga_generations = 80;
  double ga_mutation_rate = 0.25;
  std::size_t ga_tournament = 3;
  std::size_t ga_elites = 2;
  /// Install a new permutation only if it cuts the collision cost by at
  /// least this fraction. Re-mapping rewrites every moved cell (endurance +
  /// write-noise cost) and invalidates the network's adaptation to the old
  /// fault placement; measured end-to-end (ABL_REMAP), installs below
  /// ~20 % cost more accuracy than they recover, so the default is
  /// conservative.
  double min_improvement = 0.2;
};

/// One re-orderable neuron interface between consecutive matrix layers.
struct RemapInterface {
  MatrixLayer* producer = nullptr;  ///< its columns move
  MatrixLayer* consumer = nullptr;  ///< its input row-blocks move
  std::size_t neurons = 0;
};

/// Per-store detected fault maps (physical space), as produced by the
/// on-line detector.
using DetectedFaults = std::unordered_map<const WeightStore*, FaultMatrix>;

/// Interfaces of `net` eligible for neuron re-ordering: neuron counts must
/// match across the interface and at least one side must be on crossbars.
std::vector<RemapInterface> find_remap_interfaces(Network& net);

/// Dense M×M assignment cost: cost(j, p) = penalty of placing logical
/// neuron j at physical slot p.
class InterfaceCost {
 public:
  explicit InterfaceCost(std::size_t m) : m_(m), cost_(m * m, 0.0) {}

  [[nodiscard]] std::size_t size() const { return m_; }
  [[nodiscard]] double at(std::size_t j, std::size_t p) const {
    return cost_[j * m_ + p];
  }
  void add(std::size_t j, std::size_t p, double v) { cost_[j * m_ + p] += v; }
  /// Total cost of a full assignment.
  [[nodiscard]] double total(const std::vector<std::size_t>& perm) const;

 private:
  std::size_t m_;
  std::vector<double> cost_;
};

/// Build the assignment cost for one interface from the detected faults and
/// the pruning masks (missing maps/masks contribute zero cost).
InterfaceCost build_interface_cost(const RemapInterface& iface,
                                   const DetectedFaults& detected,
                                   const PruneState& prune,
                                   RemapCostModel model);

/// Solve the assignment problem with the chosen algorithm.
std::vector<std::size_t> optimize_assignment(const InterfaceCost& cost,
                                             const RemapConfig& cfg, Rng& rng);

/// Exact minimum-cost assignment (Hungarian / Kuhn-Munkres, O(n³)).
std::vector<std::size_t> hungarian_assignment(const InterfaceCost& cost);

/// Outcome of a full-network re-mapping pass.
struct RemapReport {
  std::size_t interfaces = 0;
  double cost_before = 0.0;
  double cost_after = 0.0;
};

/// Optimize every eligible interface (coordinate descent, one sweep) and
/// install the resulting permutations on the crossbar stores.
RemapReport remap_network(Network& net, const DetectedFaults& detected,
                          const PruneState& prune, const RemapConfig& cfg,
                          Rng& rng);

/// Structured (whole-neuron) pruning over the network's re-mappable
/// interfaces: ranks each interface neuron by the combined L2 norm of its
/// producer column and consumer row-block, then prunes the lowest
/// `neuron_sparsity` fraction of neurons entirely.
PruneState compute_structured_pruning(Network& net, double neuron_sparsity);

}  // namespace refit
