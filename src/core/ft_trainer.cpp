// FtTrainer compatibility facade (see ft_trainer.hpp).
#include "core/ft_trainer.hpp"

#include <algorithm>

namespace refit {

TrainingResult FtTrainer::train(Network& net, RcsSystem* rcs,
                                const Dataset& data, Rng rng) {
  FtEngine engine(cfg_);
  for (EngineObserver* obs : observers_) engine.add_observer(obs);
  return engine.run(net, rcs, data, rng);
}

FtFlowConfig FtTrainer::baseline_config(FtBaseline baseline,
                                        FtFlowConfig base) {
  switch (baseline) {
    case FtBaseline::kIdeal:
    case FtBaseline::kOriginal:
      base.threshold_training = false;
      base.detection_enabled = false;
      break;
    case FtBaseline::kThreshold:
      base.threshold_training = true;
      base.detection_enabled = false;
      break;
    case FtBaseline::kFullFlow:
      base.threshold_training = true;
      base.detection_enabled = true;
      base.detection_period = std::max<std::size_t>(1, base.iterations / 6);
      base.prune.enabled = true;
      base.prune.fc_sparsity = 0.3;
      base.prune.conv_sparsity = 0.0;
      base.remap_enabled = true;
      base.remap.algorithm = RemapAlgorithm::kHungarian;
      break;
  }
  return base;
}

}  // namespace refit
