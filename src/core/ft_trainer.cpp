// Fault-tolerant training flow — the paper's Fig. 3 loop (see ft_trainer.hpp).
#include "core/ft_trainer.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "nn/loss.hpp"

namespace refit {

PhaseEvent FtTrainer::run_detection_phase(Network& net, RcsSystem& rcs,
                                          std::size_t iteration, Rng& rng) {
  PhaseEvent ev;
  ev.iteration = iteration;
  ++phase_count_;

  // "On-line detection": per-store quiescent-voltage testing → F of §5.2.
  const QuiescentVoltageDetector detector(cfg_.detector);
  ConfusionCounts confusion;
  for (CrossbarWeightStore* store : rcs.stores()) {
    DetectionOutcome outcome = detector.detect_store(*store);
    confusion += evaluate_detection(*store, outcome.predicted);
    detected_[store] = std::move(outcome.predicted);
    ev.cycles += outcome.cycles;
    ev.detection_writes += outcome.device_writes;
  }
  ev.precision = confusion.precision();
  ev.recall = confusion.recall();

  // "Generate pruning": compute the masks from the off-chip target weights
  // *before* any read-back, so the mask reflects functional importance (the
  // paper's P comes from software training and is fault-agnostic); the
  // re-mapping below is what aligns P with the fault distribution F.
  if (cfg_.prune.enabled) {
    if (cfg_.prune.structured) {
      // A structured mask is kept stable once chosen: re-ranking neurons
      // every phase would flip membership and repeatedly zero/revive whole
      // units, which costs far more accuracy than a slightly stale ranking.
      if (prune_state_.empty()) {
        prune_state_ = compute_structured_pruning(net,
                                                  cfg_.prune.neuron_sparsity);
      }
    } else {
      prune_state_ = PruneState::compute(net, cfg_.prune);
    }
  }

  // Read the fault-hosted weights back off-chip (Fig. 3's read/store step,
  // applied where it matters): their targets collapse to what the device
  // actually computes, so re-mapping relocates the functioning network
  // instead of stale off-chip values. Healthy cells keep their full-
  // precision off-chip accumulation.
  for (CrossbarWeightStore* store : rcs.stores()) {
    store->sync_targets_where(detected_[store]);
  }

  // Write the pruned zeros (the pruned network P of §5.2).
  if (cfg_.prune.enabled) {
    prune_state_.apply_to(net);
  }

  // "Re-mapping": align the pruned zeros with the detected SA0 cells.
  if (cfg_.remap_enabled && phase_count_ <= cfg_.remap_max_phases) {
    const RemapReport rr =
        remap_network(net, detected_, prune_state_, cfg_.remap, rng);
    ev.remap_cost_before = rr.cost_before;
    ev.remap_cost_after = rr.cost_after;
  }
  return ev;
}

TrainingResult FtTrainer::train(Network& net, RcsSystem* rcs,
                                const Dataset& data, Rng rng) {
  REFIT_CHECK(cfg_.iterations > 0 && cfg_.batch_size > 0);
  // A trainer may be reused across runs; per-run state starts fresh.
  phase_count_ = 0;
  detected_.clear();
  prune_state_ = PruneState{};
  TrainingResult result;
  Rng batch_rng = rng.split(1);
  Rng phase_rng = rng.split(2);
  Batcher batcher(data, cfg_.batch_size, batch_rng);

  ThresholdConfig thr = cfg_.threshold;
  if (!cfg_.threshold_training) thr.threshold_ratio = 0.0;
  const ThresholdTrainer updater(thr, cfg_.lr);

  const std::size_t eval_n = std::min(cfg_.eval_samples, data.test_size());
  Tensor eval_images = slice_batch(data.test_images, 0, eval_n);
  std::vector<std::uint8_t> eval_labels(data.test_labels.begin(),
                                        data.test_labels.begin() +
                                            static_cast<std::ptrdiff_t>(eval_n));

  const std::uint64_t writes_at_start =
      rcs != nullptr ? rcs->total_device_writes() : 0;

  auto evaluate = [&](std::size_t iter) {
    const double acc = net.evaluate(eval_images, eval_labels);
    result.eval_iterations.push_back(iter);
    result.eval_accuracy.push_back(acc);
    result.fault_fraction.push_back(rcs != nullptr ? rcs->fault_fraction()
                                                   : 0.0);
    result.peak_accuracy = std::max(result.peak_accuracy, acc);
    return acc;
  };

  evaluate(0);
  for (std::size_t iter = 1; iter <= cfg_.iterations; ++iter) {
    if (cfg_.detection_enabled && rcs != nullptr &&
        cfg_.detection_period > 0 && iter % cfg_.detection_period == 0) {
      result.phases.push_back(run_detection_phase(net, *rcs, iter, phase_rng));
      const auto& ev = result.phases.back();
      REFIT_DEBUG("detection @" << iter << ": precision=" << ev.precision
                                << " recall=" << ev.recall << " remap "
                                << ev.remap_cost_before << "→"
                                << ev.remap_cost_after);
    }

    const Batch batch = batcher.next();
    Tensor logits = net.forward(batch.images, /*train=*/true);
    LossResult loss = softmax_cross_entropy(logits, batch.labels);
    net.backward(loss.grad_logits);
    auto params = net.params();
    const ThresholdStepStats st = updater.step(
        params, iter, cfg_.prune.enabled ? &prune_state_ : nullptr,
        (cfg_.skip_writes_on_detected_faults && !detected_.empty())
            ? &detected_
            : nullptr);
    result.updates_written += st.writes_issued;
    result.updates_suppressed += st.writes_suppressed;
    result.updates_zero += st.updates_zero;
    net.zero_grad();

    if (cfg_.eval_period > 0 && iter % cfg_.eval_period == 0) {
      const double acc = evaluate(iter);
      REFIT_DEBUG("iter " << iter << " acc=" << acc);
    }
  }
  result.final_accuracy = evaluate(cfg_.iterations);
  if (rcs != nullptr) {
    result.device_writes = rcs->total_device_writes() - writes_at_start;
    result.wearout_faults = rcs->wearout_fault_count();
    result.final_fault_fraction = rcs->fault_fraction();
  }
  return result;
}

}  // namespace refit
