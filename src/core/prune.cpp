// Magnitude pruning state and application (see prune.hpp).
#include "core/prune.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace refit {

PruneState PruneState::compute(Network& net, const PruneConfig& cfg) {
  PruneState state;
  if (!cfg.enabled) return state;
  for (MatrixLayer* ml : net.matrix_layers()) {
    const double sparsity =
        std::string(ml->kind()) == "conv" ? cfg.conv_sparsity
                                          : cfg.fc_sparsity;
    if (sparsity <= 0.0) continue;
    REFIT_CHECK_MSG(sparsity < 1.0, "sparsity must be < 1");
    const Tensor& w = ml->weights().target();
    const std::size_t rows = w.dim(0), cols = w.dim(1);
    const std::size_t n = rows * cols;
    // Threshold at the sparsity-quantile of |w|.
    std::vector<float> mags(n);
    for (std::size_t i = 0; i < n; ++i) mags[i] = std::fabs(w[i]);
    const auto k = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(n - 1),
                         sparsity * static_cast<double>(n)));
    std::vector<float> sorted = mags;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(k),
                     sorted.end());
    const float cut = sorted[k];
    PruneMask mask;
    mask.rows = rows;
    mask.cols = cols;
    mask.pruned.assign(n, false);
    std::size_t pruned = 0;
    for (std::size_t i = 0; i < n && pruned < k; ++i) {
      if (mags[i] < cut) {
        mask.pruned[i] = true;
        ++pruned;
      }
    }
    // Fill up to exactly k with entries equal to the cut (ties).
    for (std::size_t i = 0; i < n && pruned < k; ++i) {
      if (!mask.pruned[i] && mags[i] == cut) {
        mask.pruned[i] = true;
        ++pruned;
      }
    }
    state.masks_.emplace(&ml->weights(), std::move(mask));
  }
  return state;
}

const PruneMask* PruneState::mask_for(const WeightStore* store) const {
  const auto it = masks_.find(store);
  return it == masks_.end() ? nullptr : &it->second;
}

void PruneState::apply_to(Network& net) const {
  for (MatrixLayer* ml : net.matrix_layers()) {
    const PruneMask* mask = mask_for(&ml->weights());
    if (mask == nullptr) continue;
    Tensor w = ml->weights().target();
    bool changed = false;
    for (std::size_t i = 0; i < w.numel(); ++i) {
      if (mask->pruned[i] && w[i] != 0.0f) {
        w[i] = 0.0f;
        changed = true;
      }
    }
    if (changed) ml->weights().assign(w);
  }
}

void PruneState::mask_delta(const WeightStore* store, Tensor& delta) const {
  const PruneMask* mask = mask_for(store);
  if (mask == nullptr) return;
  REFIT_CHECK(delta.numel() == mask->pruned.size());
  for (std::size_t i = 0; i < delta.numel(); ++i) {
    if (mask->pruned[i]) delta[i] = 0.0f;
  }
}

void PruneState::merge_mask(const WeightStore* store, const PruneMask& mask) {
  auto it = masks_.find(store);
  if (it == masks_.end()) {
    masks_.emplace(store, mask);
    return;
  }
  PruneMask& existing = it->second;
  REFIT_CHECK(existing.pruned.size() == mask.pruned.size());
  for (std::size_t i = 0; i < mask.pruned.size(); ++i) {
    if (mask.pruned[i]) existing.pruned[i] = true;
  }
}

std::size_t PruneState::total_pruned() const {
  std::size_t n = 0;
  for (const auto& [store, mask] : masks_) n += mask.count_pruned();
  return n;
}

}  // namespace refit
