// FtEngine — the fault-tolerant on-line training flow (paper Fig. 2) as an
// ordered list of pluggable phases over a shared EngineContext.
//
// Every iteration the engine asks each phase, in order, whether it is due
// and runs the ones that are:
//
//   DetectionPhase  every detection_period iterations: quiescent-voltage
//                   testing per store, pruning-mask refresh, targeted
//                   read-back, prune write-back  (Fig. 2 right-hand side)
//   RemapPhase      immediately after a detection, early phases only:
//                   neuron re-ordering aligning pruned zeros with SA0 cells
//   TrainStepPhase  always: forward on the RCS, backward, threshold update
//   EvalPhase       every eval_period iterations: test-subset accuracy
//
// The phases share one EngineContext (network, RcsSystem, prune/detected
// state, RNG streams, counters, accumulating TrainingResult); observers
// attach at phase boundaries for tracing without touching the flow; and
// the context is serializable, so a run can checkpoint and resume
// mid-flow bit-identically (save_checkpoint / load_checkpoint).
//
// Swapping a phase is how related flows are meant to be built: an on-line
// soft-error scrubber replaces DetectionPhase, a drop-connect update rule
// replaces TrainStepPhase — without forking the loop. The legacy
// FtTrainer facade (core/ft_trainer.hpp) assembles the paper's four
// baseline configurations on top of this engine.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/prune.hpp"
#include "core/remap.hpp"
#include "core/threshold_trainer.hpp"
#include "data/dataset.hpp"
#include "detect/quiescent_detector.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "rcs/rcs_system.hpp"

namespace refit {

/// Configuration of the full flow.
struct FtFlowConfig {
  std::size_t iterations = 3000;
  std::size_t batch_size = 16;
  LrSchedule lr{0.05, 0.5, 1200, 1e-4};

  /// Threshold training (§5.1); false reproduces the "original method".
  bool threshold_training = true;
  ThresholdConfig threshold;

  /// On-line detection (§4) + re-mapping (§5.2).
  bool detection_enabled = false;
  std::size_t detection_period = 500;
  DetectorConfig detector;
  bool remap_enabled = true;
  RemapConfig remap;
  /// Re-map only during the first K detection phases. On-line training
  /// adapts the surviving weights *around* the current fault placement, so
  /// a late re-map invalidates that adaptation even when it reduces static
  /// collisions; early re-maps get the alignment benefit without the cost.
  std::size_t remap_max_phases = 2;
  PruneConfig prune;
  /// Suppress training writes to cells the detector flagged faulty. Saves
  /// endurance/energy, but detector false positives freeze healthy cells,
  /// so this is off by default.
  bool skip_writes_on_detected_faults = false;

  /// Evaluation cadence (test-subset accuracy snapshots).
  std::size_t eval_period = 100;
  std::size_t eval_samples = 512;

  /// Advance device time (drift / soft-fault decay+injection, see
  /// rcs/crossbar_store.hpp tick_noise) every this many iterations; 0
  /// disables the phase entirely — the default, and bit-identical to the
  /// pre-device-model engine. Only has an effect when the stores' noise
  /// config is active.
  std::size_t device_tick_period = 0;
};

/// One detection/re-mapping phase record.
struct PhaseEvent {
  std::size_t iteration = 0;
  std::size_t cycles = 0;
  std::uint64_t detection_writes = 0;
  double precision = 1.0;
  double recall = 1.0;
  double remap_cost_before = 0.0;
  double remap_cost_after = 0.0;
  // Populated only when detector.classify_soft (defaults = perfect/empty):
  double hard_precision = 1.0;
  double hard_recall = 1.0;
  double soft_precision = 1.0;
  double soft_recall = 1.0;
  std::uint64_t cells_retested = 0;
  std::uint64_t soft_detected = 0;  ///< cells classified transient + scrubbed
};

/// Full training trace + endurance statistics.
struct TrainingResult {
  std::vector<std::size_t> eval_iterations;
  std::vector<double> eval_accuracy;
  std::vector<double> fault_fraction;  ///< RCS fault ratio at eval points
  double peak_accuracy = 0.0;
  double final_accuracy = 0.0;

  std::uint64_t device_writes = 0;       ///< total (training + detection)
  std::uint64_t updates_written = 0;     ///< per-weight updates issued
  std::uint64_t updates_suppressed = 0;  ///< zeroed by the threshold
  std::uint64_t updates_zero = 0;        ///< δw exactly 0 (pruned / sparse)
  std::size_t wearout_faults = 0;
  double final_fault_fraction = 0.0;
  std::vector<PhaseEvent> phases;

  /// Fraction of weight updates that required no device write (threshold-
  /// suppressed plus naturally zero) — the paper's "~90 % of δw below the
  /// threshold" statistic.
  [[nodiscard]] double suppression_ratio() const {
    const auto total = updates_written + updates_suppressed + updates_zero;
    if (total == 0) return 0.0;
    return static_cast<double>(updates_suppressed + updates_zero) /
           static_cast<double>(total);
  }
};

/// State shared by every phase of one engine run. Wiring pointers are
/// non-owning and rebound by begin()/load_checkpoint(); everything that
/// defines the run's future behavior is serializable.
struct EngineContext {
  // ---- Wiring (not serialized; rebound on begin/resume) -----------------
  Network* net = nullptr;
  RcsSystem* rcs = nullptr;  ///< nullptr for an all-software network
  const Dataset* data = nullptr;
  const FtFlowConfig* cfg = nullptr;

  // ---- Progress ---------------------------------------------------------
  std::size_t iteration = 0;            ///< iteration being executed (1-based)
  std::size_t phase_count = 0;          ///< detection phases run so far
  std::size_t detection_iteration = 0;  ///< iteration of the latest detection

  // ---- Shared FT state --------------------------------------------------
  PruneState prune_state;
  DetectedFaults detected;

  // ---- RNG streams (split off the run seed by begin()) ------------------
  Rng batch_rng{1};
  Rng phase_rng{2};

  // ---- Derived per-run state (rebuilt on begin/resume) ------------------
  std::unique_ptr<Batcher> batcher;
  Tensor eval_images;
  std::vector<std::uint8_t> eval_labels;
  std::uint64_t writes_at_start = 0;

  // ---- Accumulating output ----------------------------------------------
  TrainingResult result;

  /// Evaluate on the held-out subset and append a trace row.
  double evaluate(std::size_t iter);
};

/// One step of the flow. due() gates run() each iteration; save()/load()
/// round-trip any phase-local state through engine checkpoints (the four
/// standard phases keep all their state in the EngineContext, so the
/// defaults are no-ops).
class Phase {
 public:
  virtual ~Phase() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual bool due(const EngineContext& ctx) const = 0;
  virtual void run(EngineContext& ctx) = 0;
  virtual void save(std::ostream& os) const { (void)os; }
  virtual void load(std::istream& is) { (void)is; }
};

/// Tracing hook. Observers are non-owning, never serialized, and must not
/// mutate the context (benches/tools attach CSV writers or progress
/// meters here without touching the flow).
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void on_run_begin(const EngineContext& ctx) { (void)ctx; }
  virtual void on_phase_begin(const Phase& phase, const EngineContext& ctx) {
    (void)phase;
    (void)ctx;
  }
  virtual void on_phase_end(const Phase& phase, const EngineContext& ctx) {
    (void)phase;
    (void)ctx;
  }
  virtual void on_iteration_end(const EngineContext& ctx) { (void)ctx; }
  virtual void on_run_end(const EngineContext& ctx) { (void)ctx; }
};

// ---- The paper's phases --------------------------------------------------

/// Forward + backward + threshold-filtered SGD update (§5.1). Runs every
/// iteration; when threshold_training is off, the threshold is forced to 0
/// and updates go through apply_delta_full (the "original method").
class TrainStepPhase final : public Phase {
 public:
  explicit TrainStepPhase(const FtFlowConfig& cfg);
  [[nodiscard]] const char* name() const override { return "train-step"; }
  [[nodiscard]] bool due(const EngineContext& ctx) const override;
  void run(EngineContext& ctx) override;

 private:
  ThresholdTrainer updater_;
};

/// Device-time advance: every device_tick_period iterations each store's
/// conductances drift, transient faults decay, and new ones may strike
/// (rcs/crossbar_store.hpp tick_noise). Placed before detection so a
/// detection iteration tests the post-tick device.
class DeviceTickPhase final : public Phase {
 public:
  [[nodiscard]] const char* name() const override { return "device-tick"; }
  [[nodiscard]] bool due(const EngineContext& ctx) const override;
  void run(EngineContext& ctx) override;
};

/// On-line quiescent-voltage detection over every store, pruning-mask
/// refresh, targeted read-back, prune write-back (Fig. 2, right side).
class DetectionPhase final : public Phase {
 public:
  [[nodiscard]] const char* name() const override { return "detection"; }
  [[nodiscard]] bool due(const EngineContext& ctx) const override;
  void run(EngineContext& ctx) override;
};

/// Neuron re-ordering (§5.2); runs right after a detection, during the
/// first remap_max_phases detection phases only.
class RemapPhase final : public Phase {
 public:
  [[nodiscard]] const char* name() const override { return "remap"; }
  [[nodiscard]] bool due(const EngineContext& ctx) const override;
  void run(EngineContext& ctx) override;
};

/// Periodic test-subset accuracy snapshot.
class EvalPhase final : public Phase {
 public:
  [[nodiscard]] const char* name() const override { return "eval"; }
  [[nodiscard]] bool due(const EngineContext& ctx) const override;
  void run(EngineContext& ctx) override;
};

/// Orchestrates the flow of Fig. 2 as a phase pipeline.
class FtEngine {
 public:
  /// Engine with the paper's standard phase list.
  explicit FtEngine(FtFlowConfig cfg);
  /// Engine with a custom phase list (related-work flows plug in here).
  FtEngine(FtFlowConfig cfg, std::vector<std::unique_ptr<Phase>> phases);

  /// The standard phase list (device-tick → detection → remap → train →
  /// eval; the per-iteration order of the monolithic flow this engine
  /// replaced, with device time advancing before anything observes it).
  [[nodiscard]] static std::vector<std::unique_ptr<Phase>> standard_phases(
      const FtFlowConfig& cfg);

  [[nodiscard]] const FtFlowConfig& config() const { return cfg_; }
  [[nodiscard]] const EngineContext& context() const { return ctx_; }

  /// Register a tracing observer (non-owning; must outlive the run).
  void add_observer(EngineObserver* obs);

  // ---- Stepwise interface ----------------------------------------------
  /// Start a fresh run: bind the wiring, derive the RNG streams from
  /// `rng`, record the iteration-0 evaluation.
  void begin(Network& net, RcsSystem* rcs, const Dataset& data, Rng rng);
  [[nodiscard]] bool done() const;
  /// Execute one iteration (all due phases, in order).
  void step();
  /// Final evaluation + endurance totals; returns the completed result.
  TrainingResult finish();

  /// begin + step-to-completion + finish.
  TrainingResult run(Network& net, RcsSystem* rcs, const Dataset& data,
                     Rng rng);

  // ---- Checkpoint / resume ---------------------------------------------
  /// Serialize the full mid-run context (progress, RNG streams, batcher,
  /// per-store device state, biases, prune/detected maps, trace so far).
  /// Call between iterations (after step() returns). Returns false when
  /// the stream went bad mid-write (partial checkpoint on disk).
  [[nodiscard]] bool save_checkpoint(std::ostream& os) const;
  /// Resume a run saved by save_checkpoint into freshly constructed
  /// net/rcs/data (built the same way as the original run's); overwrites
  /// their state in place. Continue with step()/finish(). Returns false
  /// when the stream ran dry or went bad (truncated checkpoint).
  [[nodiscard]] bool load_checkpoint(Network& net, RcsSystem* rcs,
                                     const Dataset& data, std::istream& is);

 private:
  void bind(Network& net, RcsSystem* rcs, const Dataset& data);

  FtFlowConfig cfg_;
  std::vector<std::unique_ptr<Phase>> phases_;
  std::vector<EngineObserver*> observers_;
  EngineContext ctx_;
  bool begun_ = false;
};

}  // namespace refit
