// Energy estimation for RCS operations (extension; the paper motivates
// RCS by energy efficiency but reports no energy numbers).
//
// The model is deliberately simple: per-operation energy constants taken
// from typical published HfOx RRAM figures, multiplied by the operation
// counters the simulator already tracks. It answers questions like "how
// much energy does a detection phase cost relative to the training writes
// it protects?".
#pragma once

#include <cstdint>

#include "core/ft_trainer.hpp"
#include "detect/march_test.hpp"
#include "detect/quiescent_detector.hpp"

namespace refit {

/// Per-operation energy constants (picojoules).
struct EnergyModel {
  /// One SET/RESET programming pulse.
  double write_pj = 10.0;
  /// One single-cell read.
  double read_pj = 1.0;
  /// One column read-out through the ADC (shared across the cells of a
  /// test cycle — the quiescent method's amortization win).
  double adc_sample_pj = 2.0;
  /// Analog MAC energy per cell per vector-matrix multiplication.
  double mac_pj = 0.1;
};

/// Aggregate energy estimate, in nanojoules, with a component breakdown.
struct EnergyEstimate {
  double write_nj = 0.0;
  double read_nj = 0.0;
  double adc_nj = 0.0;

  [[nodiscard]] double total_nj() const { return write_nj + read_nj + adc_nj; }
};

/// Energy of one quiescent-voltage detection run over a crossbar with
/// `rows`×`cols` cells (the initial read scans every cell; each test cycle
/// samples every column/row output once).
EnergyEstimate detection_energy(const EnergyModel& m,
                                const DetectionOutcome& outcome,
                                std::size_t rows, std::size_t cols);

/// Energy of one March-test run.
EnergyEstimate march_energy(const EnergyModel& m, const MarchOutcome& outcome);

/// Energy of a whole training run's device writes (training + detection
/// pulses as counted in TrainingResult::device_writes).
EnergyEstimate training_write_energy(const EnergyModel& m,
                                     const TrainingResult& result);

}  // namespace refit
