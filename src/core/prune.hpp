// Magnitude pruning (paper §5.2, following Han et al. [8]): fix the
// smallest-magnitude fraction of each weight matrix to zero. The resulting
// masks are (a) enforced during training — pruned weights receive no
// updates — and (b) the sparsity the re-mapping engine aligns with SA0
// cells.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "nn/network.hpp"

namespace refit {

/// Sparsity targets per layer kind. The paper notes FC layers tolerate far
/// more sparsity than Conv layers (>50 % vs much less), which is why
/// re-mapping pays off for FC but not for Conv.
struct PruneConfig {
  double fc_sparsity = 0.6;
  double conv_sparsity = 0.3;
  bool enabled = true;
  /// Structured (whole-neuron) pruning: remove entire interface neurons —
  /// the producer column and the consumer row-block together — instead of
  /// scattered weights. Structured zeros are what neuron re-ordering can
  /// actually align with faulty columns (see remap.hpp); unstructured
  /// magnitude pruning leaves every column half-unpruned, capping the
  /// achievable collision reduction.
  bool structured = false;
  /// Fraction of each interface's neurons removed when structured.
  double neuron_sparsity = 0.4;
};

/// Pruning mask of one weight matrix; flat row-major, true = pruned.
struct PruneMask {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<bool> pruned;

  [[nodiscard]] bool at(std::size_t r, std::size_t c) const {
    return pruned[r * cols + c];
  }
  [[nodiscard]] std::size_t count_pruned() const {
    std::size_t n = 0;
    for (bool b : pruned)
      if (b) ++n;
    return n;
  }
};

/// The per-store pruning state of a network.
class PruneState {
 public:
  PruneState() = default;

  /// Magnitude-prune every matrix layer of `net` based on its current
  /// target weights.
  static PruneState compute(Network& net, const PruneConfig& cfg);

  /// Mask for a given store, or nullptr when the store is not pruned.
  [[nodiscard]] const PruneMask* mask_for(const WeightStore* store) const;

  /// Write zeros into the pruned positions of every masked store.
  void apply_to(Network& net) const;

  /// Zero the entries of `delta` that are pruned for `store`.
  void mask_delta(const WeightStore* store, Tensor& delta) const;

  [[nodiscard]] bool empty() const { return masks_.empty(); }
  [[nodiscard]] std::size_t total_pruned() const;

  /// OR `mask` into the state (creating the entry if absent). Used by the
  /// structured pruner, which touches one store from two interfaces.
  void merge_mask(const WeightStore* store, const PruneMask& mask);

 private:
  std::unordered_map<const WeightStore*, PruneMask> masks_;
};

}  // namespace refit
