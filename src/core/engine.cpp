// Phase-decomposed fault-tolerant training engine (see engine.hpp).
#include "core/engine.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>

#include "common/log.hpp"
#include "common/serialize.hpp"
#include "nn/loss.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace refit {

double EngineContext::evaluate(std::size_t iter) {
  const double acc = net->evaluate(eval_images, eval_labels);
  result.eval_iterations.push_back(iter);
  result.eval_accuracy.push_back(acc);
  result.fault_fraction.push_back(rcs != nullptr ? rcs->fault_fraction()
                                                 : 0.0);
  result.peak_accuracy = std::max(result.peak_accuracy, acc);
  return acc;
}

// ---- TrainStepPhase ------------------------------------------------------

namespace {
ThresholdConfig effective_threshold(const FtFlowConfig& cfg) {
  ThresholdConfig thr = cfg.threshold;
  // θ = 0 sends every update through apply_delta_full — the "original"
  // scheme that re-programs the whole array each step.
  if (!cfg.threshold_training) thr.threshold_ratio = 0.0;
  return thr;
}
}  // namespace

TrainStepPhase::TrainStepPhase(const FtFlowConfig& cfg)
    : updater_(effective_threshold(cfg), cfg.lr) {}

bool TrainStepPhase::due(const EngineContext& ctx) const {
  (void)ctx;
  return true;
}

void TrainStepPhase::run(EngineContext& ctx) {
  const FtFlowConfig& cfg = *ctx.cfg;
  const Batch batch = ctx.batcher->next();
  Tensor logits = ctx.net->forward(batch.images, /*train=*/true);
  LossResult loss = softmax_cross_entropy(logits, batch.labels);
  ctx.net->backward(loss.grad_logits);
  auto params = ctx.net->params();
  const ThresholdStepStats st = updater_.step(
      params, ctx.iteration,
      cfg.prune.enabled ? &ctx.prune_state : nullptr,
      (cfg.skip_writes_on_detected_faults && !ctx.detected.empty())
          ? &ctx.detected
          : nullptr);
  ctx.result.updates_written += st.writes_issued;
  ctx.result.updates_suppressed += st.writes_suppressed;
  ctx.result.updates_zero += st.updates_zero;
  ctx.net->zero_grad();
}

// ---- DeviceTickPhase -----------------------------------------------------

bool DeviceTickPhase::due(const EngineContext& ctx) const {
  const FtFlowConfig& cfg = *ctx.cfg;
  return ctx.rcs != nullptr && cfg.device_tick_period > 0 &&
         ctx.iteration % cfg.device_tick_period == 0;
}

void DeviceTickPhase::run(EngineContext& ctx) {
  for (CrossbarWeightStore* store : ctx.rcs->stores()) {
    store->tick_noise();
  }
}

// ---- DetectionPhase ------------------------------------------------------

bool DetectionPhase::due(const EngineContext& ctx) const {
  const FtFlowConfig& cfg = *ctx.cfg;
  return cfg.detection_enabled && ctx.rcs != nullptr &&
         cfg.detection_period > 0 &&
         ctx.iteration % cfg.detection_period == 0;
}

void DetectionPhase::run(EngineContext& ctx) {
  const FtFlowConfig& cfg = *ctx.cfg;
  Network& net = *ctx.net;
  RcsSystem& rcs = *ctx.rcs;
  PhaseEvent ev;
  ev.iteration = ctx.iteration;
  ++ctx.phase_count;
  ctx.detection_iteration = ctx.iteration;

  // "On-line detection": per-store quiescent-voltage testing → F of §5.2.
  const QuiescentVoltageDetector detector(cfg.detector);
  const bool classify = cfg.detector.classify_soft;
  ConfusionCounts confusion;
  ClassifiedConfusion classified;
  for (CrossbarWeightStore* store : rcs.stores()) {
    DetectionOutcome outcome = detector.detect_store(*store);
    if (classify) {
      // Classification scrubbed the transient pins, so score against the
      // pre-detection snapshot (post-detection truth has them healthy).
      for (std::size_t r = 0; r < outcome.predicted.rows(); ++r) {
        for (std::size_t c = 0; c < outcome.predicted.cols(); ++c) {
          confusion.add(outcome.truth_before.faulty(r, c),
                        outcome.predicted.faulty(r, c));
        }
      }
      const ClassifiedConfusion cc = evaluate_classified(outcome);
      classified.hard += cc.hard;
      classified.soft += cc.soft;
      ev.cells_retested += outcome.cells_retested;
      // Hand re-mapping and write-skipping only the permanent faults: the
      // classified-soft cells are healthy again after the scrub.
      for (std::size_t r = 0; r < outcome.predicted.rows(); ++r) {
        for (std::size_t c = 0; c < outcome.predicted.cols(); ++c) {
          if (outcome.classified_soft.faulty(r, c)) {
            outcome.predicted.set(r, c, FaultKind::kNone);
            ++ev.soft_detected;
          }
        }
      }
    } else {
      confusion += evaluate_detection(*store, outcome.predicted);
    }
    ctx.detected[store] = std::move(outcome.predicted);
    ev.cycles += outcome.cycles;
    ev.detection_writes += outcome.device_writes;
  }
  ev.precision = confusion.precision();
  ev.recall = confusion.recall();
  obs::EventLog::global().emit(
      obs::EventKind::kFaultDetected, obs::EventSeverity::kInfo, "detection",
      {{"iteration", static_cast<double>(ctx.iteration)},
       {"cycles", static_cast<double>(ev.cycles)},
       {"device_writes", static_cast<double>(ev.detection_writes)},
       {"precision", ev.precision},
       {"recall", ev.recall}});
  // Per-round detection quality gauges (docs/observability.md).
  static obs::Gauge precision_gauge =
      obs::MetricsRegistry::instance().gauge("detector.precision");
  static obs::Gauge recall_gauge =
      obs::MetricsRegistry::instance().gauge("detector.recall");
  precision_gauge.set(ev.precision);
  recall_gauge.set(ev.recall);
  if (classify) {
    ev.hard_precision = classified.hard.precision();
    ev.hard_recall = classified.hard.recall();
    ev.soft_precision = classified.soft.precision();
    ev.soft_recall = classified.soft.recall();
    static obs::Gauge hard_p_gauge =
        obs::MetricsRegistry::instance().gauge("detector.precision.hard");
    static obs::Gauge hard_r_gauge =
        obs::MetricsRegistry::instance().gauge("detector.recall.hard");
    static obs::Gauge soft_p_gauge =
        obs::MetricsRegistry::instance().gauge("detector.precision.soft");
    static obs::Gauge soft_r_gauge =
        obs::MetricsRegistry::instance().gauge("detector.recall.soft");
    hard_p_gauge.set(ev.hard_precision);
    hard_r_gauge.set(ev.hard_recall);
    soft_p_gauge.set(ev.soft_precision);
    soft_r_gauge.set(ev.soft_recall);
    obs::EventLog::global().emit(
        obs::EventKind::kSoftClassified, obs::EventSeverity::kInfo,
        "detection",
        {{"iteration", static_cast<double>(ctx.iteration)},
         {"cells_retested", static_cast<double>(ev.cells_retested)},
         {"soft_detected", static_cast<double>(ev.soft_detected)},
         {"soft_precision", ev.soft_precision},
         {"soft_recall", ev.soft_recall}});
  }

  // "Generate pruning": compute the masks from the off-chip target weights
  // *before* any read-back, so the mask reflects functional importance (the
  // paper's P comes from software training and is fault-agnostic); the
  // re-mapping phase is what aligns P with the fault distribution F.
  if (cfg.prune.enabled) {
    if (cfg.prune.structured) {
      // A structured mask is kept stable once chosen: re-ranking neurons
      // every phase would flip membership and repeatedly zero/revive whole
      // units, which costs far more accuracy than a slightly stale ranking.
      if (ctx.prune_state.empty()) {
        ctx.prune_state =
            compute_structured_pruning(net, cfg.prune.neuron_sparsity);
      }
    } else {
      ctx.prune_state = PruneState::compute(net, cfg.prune);
    }
  }

  // Read the fault-hosted weights back off-chip (Fig. 3's read/store step,
  // applied where it matters): their targets collapse to what the device
  // actually computes, so re-mapping relocates the functioning network
  // instead of stale off-chip values. Healthy cells keep their full-
  // precision off-chip accumulation.
  for (CrossbarWeightStore* store : rcs.stores()) {
    store->sync_targets_where(ctx.detected[store]);
  }

  // Write the pruned zeros (the pruned network P of §5.2).
  if (cfg.prune.enabled) {
    ctx.prune_state.apply_to(net);
  }

  ctx.result.phases.push_back(ev);
}

// ---- RemapPhase ----------------------------------------------------------

bool RemapPhase::due(const EngineContext& ctx) const {
  const FtFlowConfig& cfg = *ctx.cfg;
  // Runs only in an iteration whose detection phase just completed (the
  // phase list places it right after DetectionPhase), and only during the
  // first remap_max_phases detections.
  return cfg.remap_enabled && ctx.detection_iteration == ctx.iteration &&
         !ctx.result.phases.empty() &&
         ctx.phase_count <= cfg.remap_max_phases;
}

void RemapPhase::run(EngineContext& ctx) {
  // "Re-mapping": align the pruned zeros with the detected SA0 cells.
  const RemapReport rr = remap_network(*ctx.net, ctx.detected,
                                       ctx.prune_state, ctx.cfg->remap,
                                       ctx.phase_rng);
  PhaseEvent& ev = ctx.result.phases.back();
  ev.remap_cost_before = rr.cost_before;
  ev.remap_cost_after = rr.cost_after;
  // A remap that leaves residual cost means pruned zeros could not cover
  // every stuck cell — worth flagging above info level.
  obs::EventLog::global().emit(
      obs::EventKind::kRemap,
      rr.cost_after > 0 ? obs::EventSeverity::kWarn
                        : obs::EventSeverity::kInfo,
      "remap",
      {{"iteration", static_cast<double>(ctx.iteration)},
       {"cost_before", static_cast<double>(rr.cost_before)},
       {"cost_after", static_cast<double>(rr.cost_after)}});
}

// ---- EvalPhase -----------------------------------------------------------

bool EvalPhase::due(const EngineContext& ctx) const {
  return ctx.cfg->eval_period > 0 &&
         ctx.iteration % ctx.cfg->eval_period == 0;
}

void EvalPhase::run(EngineContext& ctx) {
  const double acc = ctx.evaluate(ctx.iteration);
  // Exported as a gauge so the timeseries sampler sees accuracy-over-time.
  static obs::Gauge acc_gauge =
      obs::MetricsRegistry::instance().gauge("engine.eval_accuracy");
  acc_gauge.set(acc);
  REFIT_DEBUG("iter " << ctx.iteration << " acc=" << acc);
}

// ---- FtEngine ------------------------------------------------------------

FtEngine::FtEngine(FtFlowConfig cfg) : cfg_(cfg) {
  phases_ = standard_phases(cfg_);
}

FtEngine::FtEngine(FtFlowConfig cfg, std::vector<std::unique_ptr<Phase>> phases)
    : cfg_(cfg), phases_(std::move(phases)) {}

std::vector<std::unique_ptr<Phase>> FtEngine::standard_phases(
    const FtFlowConfig& cfg) {
  std::vector<std::unique_ptr<Phase>> phases;
  phases.push_back(std::make_unique<DeviceTickPhase>());
  phases.push_back(std::make_unique<DetectionPhase>());
  phases.push_back(std::make_unique<RemapPhase>());
  phases.push_back(std::make_unique<TrainStepPhase>(cfg));
  phases.push_back(std::make_unique<EvalPhase>());
  return phases;
}

void FtEngine::add_observer(EngineObserver* obs) {
  if (obs != nullptr) observers_.push_back(obs);
}

void FtEngine::bind(Network& net, RcsSystem* rcs, const Dataset& data) {
  ctx_.net = &net;
  ctx_.rcs = rcs;
  ctx_.data = &data;
  ctx_.cfg = &cfg_;
  const std::size_t eval_n = std::min(cfg_.eval_samples, data.test_size());
  ctx_.eval_images = slice_batch(data.test_images, 0, eval_n);
  ctx_.eval_labels.assign(
      data.test_labels.begin(),
      data.test_labels.begin() + static_cast<std::ptrdiff_t>(eval_n));
}

void FtEngine::begin(Network& net, RcsSystem* rcs, const Dataset& data,
                     Rng rng) {
  REFIT_CHECK(cfg_.iterations > 0 && cfg_.batch_size > 0);
  // An engine may be reused across runs; per-run state starts fresh.
  ctx_ = EngineContext{};
  bind(net, rcs, data);
  ctx_.batch_rng = rng.split(1);
  ctx_.phase_rng = rng.split(2);
  // The Batcher holds a reference to ctx_.batch_rng (stable: ctx_ is a
  // member and never relocates) and draws its first shuffle here.
  ctx_.batcher = std::make_unique<Batcher>(data, cfg_.batch_size,
                                           ctx_.batch_rng);
  ctx_.writes_at_start = rcs != nullptr ? rcs->total_device_writes() : 0;
  begun_ = true;
  ctx_.evaluate(0);
  for (auto* obs : observers_) obs->on_run_begin(ctx_);
}

bool FtEngine::done() const { return ctx_.iteration >= cfg_.iterations; }

void FtEngine::step() {
  REFIT_CHECK_MSG(begun_, "FtEngine::step() before begin()");
  REFIT_CHECK_MSG(!done(), "FtEngine::step() past the end of the run");
  ++ctx_.iteration;
  for (const auto& phase : phases_) {
    if (!phase->due(ctx_)) continue;
    for (auto* obs : observers_) obs->on_phase_begin(*phase, ctx_);
    try {
      phase->run(ctx_);
    } catch (...) {
      // Record which phase broke before the exception unwinds the run;
      // the flight recorder makes this visible in post-mortems.
      obs::EventLog::global().emit(
          obs::EventKind::kPhaseError, obs::EventSeverity::kError,
          phase->name(),
          {{"iteration", static_cast<double>(ctx_.iteration)}});
      throw;
    }
    for (auto* obs : observers_) obs->on_phase_end(*phase, ctx_);
  }
  if (ctx_.detection_iteration == ctx_.iteration &&
      !ctx_.result.phases.empty()) {
    const PhaseEvent& ev = ctx_.result.phases.back();
    REFIT_DEBUG("detection @" << ctx_.iteration << ": precision="
                              << ev.precision << " recall=" << ev.recall
                              << " remap " << ev.remap_cost_before << "→"
                              << ev.remap_cost_after);
  }
  for (auto* obs : observers_) obs->on_iteration_end(ctx_);
}

TrainingResult FtEngine::finish() {
  REFIT_CHECK_MSG(begun_, "FtEngine::finish() before begin()");
  ctx_.result.final_accuracy = ctx_.evaluate(cfg_.iterations);
  if (ctx_.rcs != nullptr) {
    ctx_.result.device_writes =
        ctx_.rcs->total_device_writes() - ctx_.writes_at_start;
    ctx_.result.wearout_faults = ctx_.rcs->wearout_fault_count();
    ctx_.result.final_fault_fraction = ctx_.rcs->fault_fraction();
  }
  for (auto* obs : observers_) obs->on_run_end(ctx_);
  begun_ = false;
  return std::move(ctx_.result);
}

TrainingResult FtEngine::run(Network& net, RcsSystem* rcs, const Dataset& data,
                             Rng rng) {
  begin(net, rcs, data, rng);
  while (!done()) step();
  return finish();
}

// ---- Checkpointing -------------------------------------------------------

namespace {

constexpr std::uint64_t kEngineTag = 0x5245464954454E47ULL;  // "REFITENG"
constexpr std::uint32_t kEngineVersion = 1;

void write_tensor(std::ostream& os, const Tensor& t) {
  std::vector<std::uint64_t> shape(t.shape().begin(), t.shape().end());
  ser::write_vec(os, shape);
  ser::write_vec(os, t.vec());
}

Tensor read_tensor(std::istream& is) {
  const auto shape64 = ser::read_vec<std::uint64_t>(is);
  Shape shape(shape64.begin(), shape64.end());
  auto data = ser::read_vec<float>(is);
  return Tensor(shape, std::move(data));
}

void write_size_vec(std::ostream& os, const std::vector<std::size_t>& v) {
  std::vector<std::uint64_t> tmp(v.begin(), v.end());
  ser::write_vec(os, tmp);
}

std::vector<std::size_t> read_size_vec(std::istream& is) {
  const auto tmp = ser::read_vec<std::uint64_t>(is);
  return {tmp.begin(), tmp.end()};
}

void write_fault_matrix(std::ostream& os, const FaultMatrix& fm) {
  ser::write_pod<std::uint64_t>(os, fm.rows());
  ser::write_pod<std::uint64_t>(os, fm.cols());
  std::vector<std::uint8_t> cells(fm.cells().size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i] = static_cast<std::uint8_t>(fm.cells()[i]);
  }
  ser::write_vec(os, cells);
}

FaultMatrix read_fault_matrix(std::istream& is) {
  const auto rows = static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  const auto cols = static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  const auto raw = ser::read_vec<std::uint8_t>(is);
  std::vector<FaultKind> cells(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    cells[i] = static_cast<FaultKind>(raw[i]);
  }
  return FaultMatrix(rows, cols, std::move(cells));
}

void write_prune_mask(std::ostream& os, const PruneMask& mask) {
  ser::write_pod<std::uint64_t>(os, mask.rows);
  ser::write_pod<std::uint64_t>(os, mask.cols);
  std::vector<std::uint8_t> bits(mask.pruned.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = mask.pruned[i] ? 1 : 0;
  }
  ser::write_vec(os, bits);
}

PruneMask read_prune_mask(std::istream& is) {
  PruneMask mask;
  mask.rows = static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  mask.cols = static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  const auto bits = ser::read_vec<std::uint8_t>(is);
  REFIT_CHECK_MSG(bits.size() == mask.rows * mask.cols,
                  "corrupt engine checkpoint (prune mask)");
  mask.pruned.resize(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    mask.pruned[i] = bits[i] != 0;
  }
  return mask;
}

void write_result(std::ostream& os, const TrainingResult& r) {
  write_size_vec(os, r.eval_iterations);
  ser::write_vec(os, r.eval_accuracy);
  ser::write_vec(os, r.fault_fraction);
  ser::write_pod(os, r.peak_accuracy);
  ser::write_pod(os, r.final_accuracy);
  ser::write_pod(os, r.device_writes);
  ser::write_pod(os, r.updates_written);
  ser::write_pod(os, r.updates_suppressed);
  ser::write_pod(os, r.updates_zero);
  ser::write_pod<std::uint64_t>(os, r.wearout_faults);
  ser::write_pod(os, r.final_fault_fraction);
  ser::write_vec(os, r.phases);
}

TrainingResult read_result(std::istream& is) {
  TrainingResult r;
  r.eval_iterations = read_size_vec(is);
  r.eval_accuracy = ser::read_vec<double>(is);
  r.fault_fraction = ser::read_vec<double>(is);
  r.peak_accuracy = ser::read_pod<double>(is);
  r.final_accuracy = ser::read_pod<double>(is);
  r.device_writes = ser::read_pod<std::uint64_t>(is);
  r.updates_written = ser::read_pod<std::uint64_t>(is);
  r.updates_suppressed = ser::read_pod<std::uint64_t>(is);
  r.updates_zero = ser::read_pod<std::uint64_t>(is);
  r.wearout_faults =
      static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  r.final_fault_fraction = ser::read_pod<double>(is);
  r.phases = ser::read_vec<PhaseEvent>(is);
  return r;
}

}  // namespace

bool FtEngine::save_checkpoint(std::ostream& os) const {
  REFIT_CHECK_MSG(begun_, "save_checkpoint() outside an active run");
  ser::write_tag(os, kEngineTag);
  ser::write_pod(os, kEngineVersion);
  ser::write_pod(os, cfg_);

  ser::write_pod<std::uint64_t>(os, ctx_.iteration);
  ser::write_pod<std::uint64_t>(os, ctx_.phase_count);
  ser::write_pod<std::uint64_t>(os, ctx_.detection_iteration);
  ser::write_pod(os, ctx_.batch_rng.state());
  ser::write_pod(os, ctx_.phase_rng.state());
  ctx_.batcher->save(os);
  ser::write_pod(os, ctx_.writes_at_start);
  write_result(os, ctx_.result);

  // Every trainable parameter, in network order: full device state for
  // store-backed matrices, the raw tensor for peripheral (bias) params.
  auto params = ctx_.net->params();
  ser::write_pod<std::uint64_t>(os, params.size());
  for (const Param& p : params) {
    if (p.store != nullptr) {
      ser::write_pod<std::uint8_t>(os, 1);
      p.store->save_state(os);
    } else {
      ser::write_pod<std::uint8_t>(os, 0);
      write_tensor(os, *p.value);
    }
  }

  // Prune masks and detected-fault maps, keyed by matrix-layer index (the
  // unordered_map key is a pointer — meaningless across processes).
  auto layers = ctx_.net->matrix_layers();
  ser::write_pod<std::uint64_t>(os, layers.size());
  for (MatrixLayer* layer : layers) {
    const WeightStore* store = &layer->weights();
    const PruneMask* mask = ctx_.prune_state.mask_for(store);
    ser::write_pod<std::uint8_t>(os, mask != nullptr ? 1 : 0);
    if (mask != nullptr) write_prune_mask(os, *mask);
    const auto it = ctx_.detected.find(store);
    const bool has_fm = it != ctx_.detected.end();
    ser::write_pod<std::uint8_t>(os, has_fm ? 1 : 0);
    if (has_fm) write_fault_matrix(os, it->second);
  }

  // Phase-local state (no-ops for the standard phases).
  for (const auto& phase : phases_) phase->save(os);
  obs::EventLog::global().emit(
      obs::EventKind::kCheckpoint, obs::EventSeverity::kInfo, "engine",
      {{"iteration", static_cast<double>(ctx_.iteration)},
       {"ok", os.good() ? 1.0 : 0.0}});
  return os.good();
}

bool FtEngine::load_checkpoint(Network& net, RcsSystem* rcs,
                               const Dataset& data, std::istream& is) {
  ser::expect_tag(is, kEngineTag);
  const auto version = ser::read_pod<std::uint32_t>(is);
  REFIT_CHECK_MSG(version == kEngineVersion,
                  "unsupported engine checkpoint version");
  const auto saved_cfg = ser::read_pod<FtFlowConfig>(is);
  REFIT_CHECK_MSG(saved_cfg.iterations == cfg_.iterations &&
                      saved_cfg.batch_size == cfg_.batch_size &&
                      saved_cfg.detection_period == cfg_.detection_period &&
                      saved_cfg.eval_period == cfg_.eval_period &&
                      saved_cfg.device_tick_period == cfg_.device_tick_period,
                  "engine checkpoint was written with a different config");

  ctx_ = EngineContext{};
  bind(net, rcs, data);
  ctx_.iteration = static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  ctx_.phase_count =
      static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  ctx_.detection_iteration =
      static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  const auto batch_state = ser::read_pod<Rng::State>(is);
  const auto phase_state = ser::read_pod<Rng::State>(is);
  // Construct the batcher first — its constructor draws a shuffle from the
  // RNG — then pin both streams to the saved states and overwrite the
  // shuffle with the saved order, so the resumed stream position is exact.
  ctx_.batcher = std::make_unique<Batcher>(data, cfg_.batch_size,
                                           ctx_.batch_rng);
  ctx_.batch_rng.set_state(batch_state);
  ctx_.phase_rng.set_state(phase_state);
  ctx_.batcher->load(is);
  ctx_.writes_at_start = ser::read_pod<std::uint64_t>(is);
  ctx_.result = read_result(is);

  auto params = net.params();
  const auto nparams =
      static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  REFIT_CHECK_MSG(nparams == params.size(),
                  "engine checkpoint does not match the network");
  for (Param& p : params) {
    const auto is_store = ser::read_pod<std::uint8_t>(is);
    if (is_store != 0) {
      REFIT_CHECK_MSG(p.store != nullptr,
                      "engine checkpoint does not match the network");
      p.store->restore_state(is);
    } else {
      REFIT_CHECK_MSG(p.value != nullptr,
                      "engine checkpoint does not match the network");
      Tensor t = read_tensor(is);
      REFIT_CHECK_MSG(t.shape() == p.value->shape(),
                      "engine checkpoint does not match the network");
      *p.value = std::move(t);
    }
  }

  auto layers = net.matrix_layers();
  const auto nlayers =
      static_cast<std::size_t>(ser::read_pod<std::uint64_t>(is));
  REFIT_CHECK_MSG(nlayers == layers.size(),
                  "engine checkpoint does not match the network");
  for (MatrixLayer* layer : layers) {
    const WeightStore* store = &layer->weights();
    if (ser::read_pod<std::uint8_t>(is) != 0) {
      ctx_.prune_state.merge_mask(store, read_prune_mask(is));
    }
    if (ser::read_pod<std::uint8_t>(is) != 0) {
      ctx_.detected[store] = read_fault_matrix(is);
    }
  }

  for (const auto& phase : phases_) phase->load(is);
  begun_ = true;
  return is.good();
}

}  // namespace refit
