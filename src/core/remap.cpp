// Neuron re-ordering re-mapping engine, paper §5.2 (see remap.hpp).
#include "core/remap.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/rng.hpp"
#include "rcs/crossbar_store.hpp"

namespace refit {

namespace {

/// Collision penalty of one (weight, cell) pair under a cost model.
double cell_cost(bool pruned, FaultKind fault, RemapCostModel model) {
  if (fault == FaultKind::kNone) return 0.0;
  if (model == RemapCostModel::kPaperExact) {
    return pruned ? 0.0 : 1.0;
  }
  // kPhysical
  if (fault == FaultKind::kStuckAt0) return pruned ? 0.0 : 2.0;
  // kStuckAt1: a pruned weight would read ±w_max (worst case); an unpruned
  // one is merely distorted.
  return pruned ? 2.0 : 1.0;
}

std::vector<std::size_t> identity_perm(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), 0);
  return p;
}

/// Current placement of the interface's neurons (from the producer's
/// column permutation when it is on crossbars, else the consumer's blocks).
std::vector<std::size_t> current_assignment(const RemapInterface& iface) {
  if (const auto* xp = dynamic_cast<const CrossbarWeightStore*>(
          &iface.producer->weights())) {
    return xp->mapping().col_perm();
  }
  if (const auto* xc = dynamic_cast<const CrossbarWeightStore*>(
          &iface.consumer->weights())) {
    const std::size_t b = iface.consumer->rows_per_in_neuron();
    std::vector<std::size_t> perm(iface.neurons);
    for (std::size_t j = 0; j < iface.neurons; ++j) {
      perm[j] = xc->mapping().row_perm()[j * b] / b;
    }
    return perm;
  }
  return identity_perm(iface.neurons);
}

}  // namespace

std::vector<RemapInterface> find_remap_interfaces(Network& net) {
  std::vector<RemapInterface> out;
  const auto layers = net.matrix_layers();
  for (std::size_t i = 0; i + 1 < layers.size(); ++i) {
    MatrixLayer* prod = layers[i];
    MatrixLayer* cons = layers[i + 1];
    if (prod->out_neurons() != cons->in_neurons()) continue;  // e.g. flatten
    const std::size_t b = cons->rows_per_in_neuron();
    if (cons->weights().shape()[0] != cons->in_neurons() * b) continue;
    const bool any_crossbar =
        dynamic_cast<CrossbarWeightStore*>(&prod->weights()) != nullptr ||
        dynamic_cast<CrossbarWeightStore*>(&cons->weights()) != nullptr;
    if (!any_crossbar) continue;
    out.push_back(RemapInterface{prod, cons, prod->out_neurons()});
  }
  return out;
}

double InterfaceCost::total(const std::vector<std::size_t>& perm) const {
  REFIT_CHECK(perm.size() == m_);
  double s = 0.0;
  for (std::size_t j = 0; j < m_; ++j) s += at(j, perm[j]);
  return s;
}

InterfaceCost build_interface_cost(const RemapInterface& iface,
                                   const DetectedFaults& detected,
                                   const PruneState& prune,
                                   RemapCostModel model) {
  const std::size_t m = iface.neurons;
  InterfaceCost cost(m);

  // Producer side: logical column j placed at physical column p.
  if (const auto* xp = dynamic_cast<const CrossbarWeightStore*>(
          &iface.producer->weights())) {
    const auto it = detected.find(&iface.producer->weights());
    const FaultMatrix* fm =
        (it != detected.end() && !it->second.empty()) ? &it->second : nullptr;
    if (fm != nullptr) {
      const PruneMask* mask = prune.mask_for(&iface.producer->weights());
      const std::size_t rows = xp->rows();
      const auto& row_perm = xp->mapping().row_perm();
      for (std::size_t p = 0; p < m; ++p) {
        // Collect the faulty physical rows of column p once.
        std::vector<std::pair<std::size_t, FaultKind>> faulty_rows;
        for (std::size_t i = 0; i < rows; ++i) {
          const FaultKind k = fm->at(row_perm[i], p);
          if (k != FaultKind::kNone) faulty_rows.emplace_back(i, k);
        }
        if (faulty_rows.empty()) continue;
        for (std::size_t j = 0; j < m; ++j) {
          double c = 0.0;
          for (const auto& [i, k] : faulty_rows) {
            const bool pruned = mask != nullptr && mask->at(i, j);
            c += cell_cost(pruned, k, model);
          }
          cost.add(j, p, c);
        }
      }
    }
  }

  // Consumer side: logical row-block j placed at physical block p.
  if (const auto* xc = dynamic_cast<const CrossbarWeightStore*>(
          &iface.consumer->weights())) {
    const auto it = detected.find(&iface.consumer->weights());
    const FaultMatrix* fm =
        (it != detected.end() && !it->second.empty()) ? &it->second : nullptr;
    if (fm != nullptr) {
      const PruneMask* mask = prune.mask_for(&iface.consumer->weights());
      const std::size_t b = iface.consumer->rows_per_in_neuron();
      const std::size_t cols = xc->cols();
      const auto& col_perm = xc->mapping().col_perm();
      for (std::size_t p = 0; p < m; ++p) {
        std::vector<std::pair<std::size_t, FaultKind>> faulty;  // (flat b*cols+c)
        for (std::size_t bb = 0; bb < b; ++bb) {
          for (std::size_t c = 0; c < cols; ++c) {
            const FaultKind k = fm->at(p * b + bb, col_perm[c]);
            if (k != FaultKind::kNone) faulty.emplace_back(bb * cols + c, k);
          }
        }
        if (faulty.empty()) continue;
        for (std::size_t j = 0; j < m; ++j) {
          double csum = 0.0;
          for (const auto& [flat, k] : faulty) {
            const std::size_t bb = flat / cols;
            const std::size_t c = flat % cols;
            const bool pruned = mask != nullptr && mask->at(j * b + bb, c);
            csum += cell_cost(pruned, k, model);
          }
          cost.add(j, p, csum);
        }
      }
    }
  }
  return cost;
}

std::vector<std::size_t> hungarian_assignment(const InterfaceCost& cost) {
  // Kuhn-Munkres with potentials, O(n³) (e-maxx formulation, 1-indexed).
  const std::size_t n = cost.size();
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> p(n + 1, 0), way(n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost.at(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  std::vector<std::size_t> perm(n, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    if (p[j] != 0) perm[p[j] - 1] = j - 1;
  }
  return perm;
}

namespace {

std::vector<std::size_t> greedy_swap(const InterfaceCost& cost,
                                     const RemapConfig& cfg, Rng& rng) {
  const std::size_t m = cost.size();
  std::vector<std::size_t> perm = identity_perm(m);
  if (m < 2) return perm;
  const std::size_t trials = cfg.greedy_trials_per_neuron * m;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::size_t a = rng.uniform_index(m);
    std::size_t b = rng.uniform_index(m - 1);
    if (b >= a) ++b;
    const double before = cost.at(a, perm[a]) + cost.at(b, perm[b]);
    const double after = cost.at(a, perm[b]) + cost.at(b, perm[a]);
    if (after < before) std::swap(perm[a], perm[b]);
  }
  return perm;
}

/// Order crossover (OX) for permutations.
std::vector<std::size_t> ox_crossover(const std::vector<std::size_t>& a,
                                      const std::vector<std::size_t>& b,
                                      Rng& rng) {
  const std::size_t m = a.size();
  std::size_t lo = rng.uniform_index(m);
  std::size_t hi = rng.uniform_index(m);
  if (lo > hi) std::swap(lo, hi);
  std::vector<std::size_t> child(m, m);
  std::vector<bool> taken(m, false);
  for (std::size_t i = lo; i <= hi; ++i) {
    child[i] = a[i];
    taken[a[i]] = true;
  }
  std::size_t pos = (hi + 1) % m;
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t v = b[(hi + 1 + k) % m];
    if (taken[v]) continue;
    child[pos] = v;
    taken[v] = true;
    pos = (pos + 1) % m;
  }
  return child;
}

std::vector<std::size_t> genetic(const InterfaceCost& cost,
                                 const RemapConfig& cfg, Rng& rng) {
  const std::size_t m = cost.size();
  if (m < 2) return identity_perm(m);
  struct Individual {
    std::vector<std::size_t> perm;
    double fitness = 0.0;
  };
  const std::size_t pop_size = std::max<std::size_t>(4, cfg.ga_population);
  std::vector<Individual> pop(pop_size);
  for (std::size_t k = 0; k < pop_size; ++k) {
    pop[k].perm = identity_perm(m);
    if (k > 0) rng.shuffle(pop[k].perm);
    pop[k].fitness = cost.total(pop[k].perm);
  }
  auto by_fitness = [](const Individual& a, const Individual& b) {
    return a.fitness < b.fitness;
  };
  std::sort(pop.begin(), pop.end(), by_fitness);

  auto tournament = [&]() -> const Individual& {
    std::size_t best = rng.uniform_index(pop_size);
    for (std::size_t t = 1; t < cfg.ga_tournament; ++t) {
      const std::size_t c = rng.uniform_index(pop_size);
      if (pop[c].fitness < pop[best].fitness) best = c;
    }
    return pop[best];
  };

  for (std::size_t gen = 0; gen < cfg.ga_generations; ++gen) {
    std::vector<Individual> next;
    next.reserve(pop_size);
    for (std::size_t e = 0; e < std::min(cfg.ga_elites, pop_size); ++e)
      next.push_back(pop[e]);
    while (next.size() < pop_size) {
      Individual child;
      child.perm = ox_crossover(tournament().perm, tournament().perm, rng);
      if (rng.bernoulli(cfg.ga_mutation_rate)) {
        const std::size_t a = rng.uniform_index(m);
        std::size_t b = rng.uniform_index(m - 1);
        if (b >= a) ++b;
        std::swap(child.perm[a], child.perm[b]);
      }
      child.fitness = cost.total(child.perm);
      next.push_back(std::move(child));
    }
    pop = std::move(next);
    std::sort(pop.begin(), pop.end(), by_fitness);
  }
  return pop.front().perm;
}

}  // namespace

std::vector<std::size_t> optimize_assignment(const InterfaceCost& cost,
                                             const RemapConfig& cfg,
                                             Rng& rng) {
  switch (cfg.algorithm) {
    case RemapAlgorithm::kNone:
      return identity_perm(cost.size());
    case RemapAlgorithm::kGreedySwap:
      return greedy_swap(cost, cfg, rng);
    case RemapAlgorithm::kGenetic:
      return genetic(cost, cfg, rng);
    case RemapAlgorithm::kHungarian:
      return hungarian_assignment(cost);
  }
  return identity_perm(cost.size());
}

PruneState compute_structured_pruning(Network& net, double neuron_sparsity) {
  REFIT_CHECK(neuron_sparsity >= 0.0 && neuron_sparsity < 1.0);
  PruneState state;
  for (const RemapInterface& iface : find_remap_interfaces(net)) {
    const std::size_t m = iface.neurons;
    const auto k = static_cast<std::size_t>(neuron_sparsity *
                                            static_cast<double>(m));
    if (k == 0) continue;
    const Tensor& wp = iface.producer->weights().target();
    const Tensor& wc = iface.consumer->weights().target();
    const std::size_t b = iface.consumer->rows_per_in_neuron();
    const std::size_t prod_rows = wp.dim(0);
    const std::size_t cons_cols = wc.dim(1);

    // Importance of neuron j: energy of its outgoing column plus incoming
    // row-block.
    std::vector<std::pair<double, std::size_t>> importance(m);
    for (std::size_t j = 0; j < m; ++j) {
      double e = 0.0;
      for (std::size_t i = 0; i < prod_rows; ++i) {
        const double v = wp.at(i, j);
        e += v * v;
      }
      for (std::size_t bb = 0; bb < b; ++bb) {
        for (std::size_t c = 0; c < cons_cols; ++c) {
          const double v = wc.at(j * b + bb, c);
          e += v * v;
        }
      }
      importance[j] = {e, j};
    }
    std::sort(importance.begin(), importance.end());

    PruneMask prod_mask{prod_rows, m, std::vector<bool>(prod_rows * m, false)};
    PruneMask cons_mask{wc.dim(0), cons_cols,
                        std::vector<bool>(wc.dim(0) * cons_cols, false)};
    for (std::size_t r = 0; r < k; ++r) {
      const std::size_t j = importance[r].second;
      for (std::size_t i = 0; i < prod_rows; ++i)
        prod_mask.pruned[i * m + j] = true;
      for (std::size_t bb = 0; bb < b; ++bb)
        for (std::size_t c = 0; c < cons_cols; ++c)
          cons_mask.pruned[(j * b + bb) * cons_cols + c] = true;
    }
    state.merge_mask(&iface.producer->weights(), prod_mask);
    state.merge_mask(&iface.consumer->weights(), cons_mask);
  }
  return state;
}

RemapReport remap_network(Network& net, const DetectedFaults& detected,
                          const PruneState& prune, const RemapConfig& cfg,
                          Rng& rng) {
  RemapReport report;
  for (const RemapInterface& iface : find_remap_interfaces(net)) {
    const InterfaceCost cost =
        build_interface_cost(iface, detected, prune, cfg.cost_model);
    const std::vector<std::size_t> cur = current_assignment(iface);
    const double before = cost.total(cur);
    std::vector<std::size_t> perm = optimize_assignment(cost, cfg, rng);
    double after = cost.total(perm);
    // Install only clear wins: a re-map rewrites every moved cell, so a
    // marginal cost reduction is a net loss.
    if (after >= before * (1.0 - cfg.min_improvement)) {
      perm = cur;
      after = before;
    }
    report.cost_before += before;
    report.cost_after += after;
    ++report.interfaces;
    if (perm == cur) continue;

    if (auto* xp = dynamic_cast<CrossbarWeightStore*>(
            &iface.producer->weights())) {
      xp->set_permutations(xp->mapping().row_perm(), perm);
    }
    if (auto* xc = dynamic_cast<CrossbarWeightStore*>(
            &iface.consumer->weights())) {
      const std::size_t b = iface.consumer->rows_per_in_neuron();
      std::vector<std::size_t> row_perm(iface.neurons * b);
      for (std::size_t j = 0; j < iface.neurons; ++j)
        for (std::size_t bb = 0; bb < b; ++bb)
          row_perm[j * b + bb] = perm[j] * b + bb;
      xc->set_permutations(row_perm, xc->mapping().col_perm());
    }
  }
  return report;
}

}  // namespace refit
