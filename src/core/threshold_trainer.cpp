// Threshold (δw) training, paper §5.1 (see threshold_trainer.hpp).
#include "core/threshold_trainer.hpp"

#include <algorithm>
#include <cmath>

#include "rcs/crossbar_store.hpp"

namespace refit {

ThresholdStepStats ThresholdTrainer::step(
    std::vector<Param>& params, std::size_t iteration,
    const PruneState* prune,
    const std::unordered_map<const WeightStore*, FaultMatrix>* detected)
    const {
  const double lr = lr_.at(iteration);
  ThresholdStepStats stats;

  // Pass 1: compute the raw deltas (δw·LR) for every matrix parameter and
  // the maximum |δw| of this iteration.
  struct Pending {
    Param* param;
    Tensor delta;
    double local_max = 0.0;
  };
  std::vector<Pending> pending;
  for (auto& p : params) {
    if (p.store == nullptr) continue;  // biases handled below
    REFIT_CHECK(p.grad != nullptr);
    Tensor delta = *p.grad;
    delta *= static_cast<float>(-lr);
    if (prune != nullptr) prune->mask_delta(p.store, delta);
    Pending pd{&p, std::move(delta), 0.0};
    pd.local_max = pd.delta.max_abs();
    stats.dw_max = std::max(stats.dw_max, pd.local_max);
    pending.push_back(std::move(pd));
  }

  // The original (non-threshold) scheme programs the whole array each
  // update step — zero deltas included — which is what wears cells out.
  const bool full_write = cfg_.threshold_ratio <= 0.0;

  // Pass 2: threshold filter + write suppression, then apply.
  for (auto& pd : pending) {
    const double base_max = cfg_.global_max ? stats.dw_max : pd.local_max;
    const double base_thr = cfg_.threshold_ratio * base_max;
    auto* xstore = dynamic_cast<CrossbarWeightStore*>(pd.param->store);
    const FaultMatrix* fm = nullptr;
    if (detected != nullptr) {
      const auto it = detected->find(pd.param->store);
      if (it != detected->end() && !it->second.empty()) fm = &it->second;
    }
    double mean_writes = 0.0;
    if (cfg_.wear_leveling_beta > 0.0 && xstore != nullptr) {
      mean_writes = static_cast<double>(xstore->write_count()) /
                    static_cast<double>(std::max<std::size_t>(
                        1, xstore->cell_count()));
    }

    const std::size_t rows = pd.delta.dim(0), cols = pd.delta.dim(1);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        float& d = pd.delta.at(i, j);
        if (d == 0.0f) {
          if (full_write) {
            ++stats.writes_issued;  // the refresh pulse still happens
          } else {
            ++stats.updates_zero;
          }
          continue;
        }
        // Skip writes to cells the detector already knows are stuck — the
        // write would be a pure endurance/energy waste.
        if (fm != nullptr && xstore != nullptr &&
            fm->faulty(xstore->row_perm()[i], xstore->col_perm()[j])) {
          d = 0.0f;
          ++stats.writes_suppressed;
          continue;
        }
        double thr = base_thr;
        if (mean_writes > 0.0) {
          const double ratio =
              static_cast<double>(xstore->cell_write_count(i, j)) /
              mean_writes;
          thr *= 1.0 + cfg_.wear_leveling_beta * std::max(0.0, ratio - 1.0);
        }
        if (std::fabs(d) < thr) {
          d = 0.0f;  // Algorithm 1, lines 6-8: suppress the write
          ++stats.writes_suppressed;
        } else {
          ++stats.writes_issued;
        }
      }
    }
    if (full_write) {
      pd.param->store->apply_delta_full(pd.delta);
    } else {
      pd.param->store->apply_delta(pd.delta);
    }
  }

  // Peripheral (bias) parameters update without filtering: they live in
  // CMOS, not on RRAM cells.
  for (auto& p : params) {
    if (p.store != nullptr) continue;
    REFIT_CHECK(p.value != nullptr && p.grad != nullptr);
    Tensor delta = *p.grad;
    delta *= static_cast<float>(-lr);
    *p.value += delta;
  }
  return stats;
}

}  // namespace refit
