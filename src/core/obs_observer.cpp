// Engine-side observability wiring (see obs_observer.hpp).
#include "core/obs_observer.hpp"

#include <cstdio>
#include <cstring>

#include "obs/clock.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "rcs/rcs_system.hpp"

namespace refit {

namespace {

// Per-phase wall-time distribution across all ObsObserver instances;
// exponential nanosecond bounds, 1 µs … 1 s.
obs::Histogram phase_ns_histogram() {
  static obs::Histogram h = obs::MetricsRegistry::instance().histogram(
      "engine.phase_ns",
      {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}, "ns");
  return h;
}

}  // namespace

ObsObserver::PhaseStat& ObsObserver::stat_for(const char* name) {
  for (PhaseStat& s : stats_) {
    if (s.name == name) return s;
  }
  PhaseStat s;
  s.name = name;
  s.runs_metric = obs::MetricsRegistry::instance().counter(
      "engine.phase." + s.name + ".runs", "runs");
  s.ns_metric = obs::MetricsRegistry::instance().counter(
      "engine.phase." + s.name + ".ns", "ns");
  stats_.push_back(std::move(s));
  return stats_.back();
}

void ObsObserver::on_run_begin(const EngineContext& ctx) {
  (void)ctx;
  run_start_ns_ = obs::now_ns();
  static obs::Counter runs_metric =
      obs::MetricsRegistry::instance().counter("engine.runs", "runs");
  runs_metric.add();
}

void ObsObserver::on_phase_begin(const Phase& phase, const EngineContext& ctx) {
  (void)phase;
  (void)ctx;
  // Phases execute strictly one at a time on the engine thread, so a
  // single pending start timestamp suffices.
  phase_start_ns_ = obs::now_ns();
}

void ObsObserver::on_phase_end(const Phase& phase, const EngineContext& ctx) {
  const std::uint64_t end_ns = obs::now_ns();
  const std::uint64_t dur_ns = end_ns - phase_start_ns_;
  obs::Tracer::global().emit_complete(phase.name(), "phase", phase_start_ns_,
                                      dur_ns);
  PhaseStat& stat = stat_for(phase.name());
  ++stat.runs;
  stat.total_ns += dur_ns;
  stat.runs_metric.add();
  stat.ns_metric.add(dur_ns);
  phase_ns_histogram().observe(static_cast<double>(dur_ns));
  // Detection rounds are the paper's unit of "on-line" progress: force a
  // timeseries sample right after each one so precision/recall gauges are
  // captured per round even with a coarse sampling period.
  if (std::strcmp(phase.name(), "detection") == 0) {
    obs::TimeseriesRecorder::global().sample_now(ctx.iteration);
  }
}

void ObsObserver::on_iteration_end(const EngineContext& ctx) {
  static obs::Counter iters_metric =
      obs::MetricsRegistry::instance().counter("engine.iterations", "iters");
  iters_metric.add();
  obs::TimeseriesRecorder::global().poll(ctx.iteration);
}

void ObsObserver::on_run_end(const EngineContext& ctx) {
  // Per-cell device-write distribution at run end — the wear histogram the
  // report's wear chart renders. Logical-cell counts follow remapped cells
  // (see CrossbarWeightStore::cell_write_count).
  if (ctx.rcs != nullptr) {
    static obs::Histogram wear = obs::MetricsRegistry::instance().histogram(
        "store.wear_writes", {1, 10, 100, 1e3, 1e4, 1e5, 1e6}, "writes");
    for (const CrossbarWeightStore* store : ctx.rcs->stores()) {
      for (std::size_t i = 0; i < store->rows(); ++i) {
        for (std::size_t j = 0; j < store->cols(); ++j) {
          wear.observe(static_cast<double>(store->cell_write_count(i, j)));
        }
      }
    }
  }
  const std::uint64_t end_ns = obs::now_ns();
  run_total_ns_ = end_ns - run_start_ns_;
  obs::Tracer::global().emit_complete("run", "engine", run_start_ns_,
                                      run_total_ns_);
  static obs::Counter run_ns_metric =
      obs::MetricsRegistry::instance().counter("engine.run_ns", "ns");
  run_ns_metric.add(run_total_ns_);
}

std::string ObsObserver::timing_table() const {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "%-12s %8s %12s %12s\n", "phase", "runs",
                "total ms", "mean ms");
  out += line;
  for (const PhaseStat& s : stats_) {
    const double total_ms = static_cast<double>(s.total_ns) * 1e-6;
    const double mean_ms =
        s.runs == 0 ? 0.0 : total_ms / static_cast<double>(s.runs);
    std::snprintf(line, sizeof(line), "%-12s %8llu %12.3f %12.3f\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.runs),
                  total_ms, mean_ms);
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-12s %8s %12.3f\n", "run", "",
                static_cast<double>(run_total_ns_) * 1e-6);
  out += line;
  return out;
}

}  // namespace refit
