// Energy / latency accounting model (see energy.hpp).
#include "core/energy.hpp"

namespace refit {

namespace {
constexpr double kPjToNj = 1e-3;
}

EnergyEstimate detection_energy(const EnergyModel& m,
                                const DetectionOutcome& outcome,
                                std::size_t rows, std::size_t cols) {
  EnergyEstimate e;
  // Two fault-type passes each begin with a full-array read (store
  // off-chip), plus the pulse writes counted in the outcome.
  e.read_nj = 2.0 * static_cast<double>(rows * cols) * m.read_pj * kPjToNj;
  e.write_nj =
      static_cast<double>(outcome.device_writes) * m.write_pj * kPjToNj;
  // Each cycle reads all column (or row) outputs concurrently: one ADC
  // sample per output port. Approximate ports by max(rows, cols).
  const double ports = static_cast<double>(rows > cols ? rows : cols);
  e.adc_nj = static_cast<double>(outcome.cycles) * ports * m.adc_sample_pj *
             kPjToNj;
  return e;
}

EnergyEstimate march_energy(const EnergyModel& m,
                            const MarchOutcome& outcome) {
  EnergyEstimate e;
  e.write_nj =
      static_cast<double>(outcome.device_writes) * m.write_pj * kPjToNj;
  // Remaining cycles are single-cell reads.
  const double reads = static_cast<double>(outcome.cycles) -
                       static_cast<double>(outcome.device_writes);
  e.read_nj = (reads > 0 ? reads : 0.0) * m.read_pj * kPjToNj;
  return e;
}

EnergyEstimate training_write_energy(const EnergyModel& m,
                                     const TrainingResult& result) {
  EnergyEstimate e;
  e.write_nj =
      static_cast<double>(result.device_writes) * m.write_pj * kPjToNj;
  return e;
}

}  // namespace refit
