// Threshold training (paper §5.1, Algorithm 1).
//
// After back-propagation, weight updates smaller than
// CalculateThreshold(write_amount) are forced to zero so the corresponding
// RRAM cell skips its write. With the paper's θ = 0.01·δw_max this removes
// ~90 % of write operations and extends mean cell lifetime ~15× at a ~1.2×
// iteration-count cost.
#pragma once

#include <cstdint>
#include <vector>

#include "core/prune.hpp"
#include "nn/layer.hpp"
#include "nn/optimizer.hpp"
#include "rram/fault_map.hpp"

namespace refit {

class CrossbarWeightStore;

/// Threshold-training knobs.
struct ThresholdConfig {
  /// θ: threshold as a fraction of the iteration's max |δw| (paper: 0.01).
  double threshold_ratio = 0.01;
  /// Wear-leveling term of CalculateThreshold: cells that have been written
  /// more than the layer average get a proportionally higher threshold.
  /// 0 reproduces the paper's flat threshold.
  double wear_leveling_beta = 0.0;
  /// δw_max is taken across all layers (true) or per layer (false).
  bool global_max = true;
};

/// Statistics of one update step.
struct ThresholdStepStats {
  std::uint64_t writes_issued = 0;
  std::uint64_t writes_suppressed = 0;  ///< updates zeroed by the threshold
  std::uint64_t updates_zero = 0;       ///< δw exactly 0 (no write needed)
  double dw_max = 0.0;
};

/// Applies SGD updates through the threshold filter of Algorithm 1.
class ThresholdTrainer {
 public:
  ThresholdTrainer(ThresholdConfig cfg, LrSchedule lr)
      : cfg_(cfg), lr_(lr) {}

  /// One update step over `params`. Pruned entries (if `prune` given) and
  /// detected-faulty cells (if `detected` given, keyed like the trainer's
  /// fault state) never receive writes. Bias (peripheral) parameters are
  /// updated unfiltered.
  ThresholdStepStats step(
      std::vector<Param>& params, std::size_t iteration,
      const PruneState* prune = nullptr,
      const std::unordered_map<const WeightStore*, FaultMatrix>* detected =
          nullptr) const;

  [[nodiscard]] const ThresholdConfig& config() const { return cfg_; }
  [[nodiscard]] const LrSchedule& schedule() const { return lr_; }

 private:
  ThresholdConfig cfg_;
  LrSchedule lr_;
};

}  // namespace refit
