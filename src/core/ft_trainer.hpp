// The complete fault-tolerant on-line training flow (paper Fig. 2).
//
// Every iteration: forward propagation on the RCS, back-propagation, then a
// threshold-training update (writes below the threshold are suppressed).
// Every `detection_period` iterations the flow runs the on-line
// quiescent-voltage detection over every crossbar store, refreshes the
// pruning masks, and re-maps neurons so pruned weights land on SA0 cells.
//
// All four experimental configurations of the paper are instances of this
// class:
//   original method ......... threshold/detection/remap all disabled
//   threshold training ...... threshold enabled
//   entire FT flow .......... everything enabled
//   ideal (no faults) ....... any config with a software-backed network
#pragma once

#include <cstdint>
#include <vector>

#include "core/prune.hpp"
#include "core/remap.hpp"
#include "core/threshold_trainer.hpp"
#include "data/dataset.hpp"
#include "detect/quiescent_detector.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "rcs/rcs_system.hpp"

namespace refit {

/// Configuration of the full flow.
struct FtFlowConfig {
  std::size_t iterations = 3000;
  std::size_t batch_size = 16;
  LrSchedule lr{0.05, 0.5, 1200, 1e-4};

  /// Threshold training (§5.1); false reproduces the "original method".
  bool threshold_training = true;
  ThresholdConfig threshold;

  /// On-line detection (§4) + re-mapping (§5.2).
  bool detection_enabled = false;
  std::size_t detection_period = 500;
  DetectorConfig detector;
  bool remap_enabled = true;
  RemapConfig remap;
  /// Re-map only during the first K detection phases. On-line training
  /// adapts the surviving weights *around* the current fault placement, so
  /// a late re-map invalidates that adaptation even when it reduces static
  /// collisions; early re-maps get the alignment benefit without the cost.
  std::size_t remap_max_phases = 2;
  PruneConfig prune;
  /// Suppress training writes to cells the detector flagged faulty. Saves
  /// endurance/energy, but detector false positives freeze healthy cells,
  /// so this is off by default.
  bool skip_writes_on_detected_faults = false;

  /// Evaluation cadence (test-subset accuracy snapshots).
  std::size_t eval_period = 100;
  std::size_t eval_samples = 512;
};

/// One detection/re-mapping phase record.
struct PhaseEvent {
  std::size_t iteration = 0;
  std::size_t cycles = 0;
  std::uint64_t detection_writes = 0;
  double precision = 1.0;
  double recall = 1.0;
  double remap_cost_before = 0.0;
  double remap_cost_after = 0.0;
};

/// Full training trace + endurance statistics.
struct TrainingResult {
  std::vector<std::size_t> eval_iterations;
  std::vector<double> eval_accuracy;
  std::vector<double> fault_fraction;  ///< RCS fault ratio at eval points
  double peak_accuracy = 0.0;
  double final_accuracy = 0.0;

  std::uint64_t device_writes = 0;       ///< total (training + detection)
  std::uint64_t updates_written = 0;     ///< per-weight updates issued
  std::uint64_t updates_suppressed = 0;  ///< zeroed by the threshold
  std::uint64_t updates_zero = 0;        ///< δw exactly 0 (pruned / sparse)
  std::size_t wearout_faults = 0;
  double final_fault_fraction = 0.0;
  std::vector<PhaseEvent> phases;

  /// Fraction of weight updates that required no device write (threshold-
  /// suppressed plus naturally zero) — the paper's "~90 % of δw below the
  /// threshold" statistic.
  [[nodiscard]] double suppression_ratio() const {
    const auto total = updates_written + updates_suppressed + updates_zero;
    if (total == 0) return 0.0;
    return static_cast<double>(updates_suppressed + updates_zero) /
           static_cast<double>(total);
  }
};

/// Orchestrates the flow of Fig. 2.
class FtTrainer {
 public:
  explicit FtTrainer(FtFlowConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const FtFlowConfig& config() const { return cfg_; }

  /// Train `net` on `data`. `rcs` may be nullptr for an all-software
  /// network (the ideal baseline); when given, it must be the system whose
  /// factory produced the network's crossbar stores.
  TrainingResult train(Network& net, RcsSystem* rcs, const Dataset& data,
                       Rng rng);

 private:
  /// Detection + pruning + re-mapping (the right-hand side of Fig. 2).
  PhaseEvent run_detection_phase(Network& net, RcsSystem& rcs,
                                 std::size_t iteration, Rng& rng);

  FtFlowConfig cfg_;
  PruneState prune_state_;
  DetectedFaults detected_;
  std::size_t phase_count_ = 0;
};

}  // namespace refit
