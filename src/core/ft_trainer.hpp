// FtTrainer — thin compatibility facade over FtEngine (core/engine.hpp).
//
// The flow itself lives in the engine's phase pipeline; this header keeps
// the original train() entry point and assembles the paper's four
// experimental baselines as FtFlowConfig presets:
//   original method ......... threshold/detection/remap all disabled
//   threshold training ...... threshold enabled
//   entire FT flow .......... threshold + detection + pruning + re-mapping
//   ideal (no faults) ....... any config with a software-backed network
#pragma once

#include <vector>

#include "core/engine.hpp"

namespace refit {

/// The paper's experimental configurations (§6, Fig. 7 curves).
enum class FtBaseline { kIdeal, kOriginal, kThreshold, kFullFlow };

/// Orchestrates the flow of Fig. 2 (facade over FtEngine).
class FtTrainer {
 public:
  explicit FtTrainer(FtFlowConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const FtFlowConfig& config() const { return cfg_; }

  /// Register a tracing observer, forwarded to the engine each train()
  /// call (non-owning; must outlive the run). The CLIs attach an
  /// ObsObserver (core/obs_observer.hpp) here.
  void add_observer(EngineObserver* obs) {
    if (obs != nullptr) observers_.push_back(obs);
  }

  /// Train `net` on `data`. `rcs` may be nullptr for an all-software
  /// network (the ideal baseline); when given, it must be the system whose
  /// factory produced the network's crossbar stores.
  TrainingResult train(Network& net, RcsSystem* rcs, const Dataset& data,
                       Rng rng);

  /// Derive one of the paper's four baseline configurations from a base
  /// flow config (iterations / lr / eval cadence are taken from `base`).
  /// The full flow enables detection every iterations/6 steps, magnitude
  /// pruning on FC layers only (30 %), and exact Hungarian re-mapping —
  /// the settings of the Fig. 7 reproduction benches.
  [[nodiscard]] static FtFlowConfig baseline_config(FtBaseline baseline,
                                                    FtFlowConfig base);

 private:
  FtFlowConfig cfg_;
  std::vector<EngineObserver*> observers_;
};

}  // namespace refit
