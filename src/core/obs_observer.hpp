// ObsObserver — the engine-side wiring of the observability layer
// (src/obs): an EngineObserver that times every executed Phase::run as a
// trace span, exports per-phase wall time and run counts as metrics,
// stamps the engine iteration counter, and keeps its own per-phase totals
// for the CLI's end-of-run timing table.
//
// Attach with FtEngine::add_observer (or FtTrainer::add_observer) before
// the run; the observer never mutates the context. Trace spans land in
// obs::Tracer::global() only while tracing is runtime-enabled; the
// metrics go through the usual per-handle runtime gate. Timestamps come
// from the obs::Clock seam, so runs under an injected ManualClock produce
// byte-stable traces (tests/test_obs.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "obs/metrics.hpp"

namespace refit {

class ObsObserver final : public EngineObserver {
 public:
  /// Accumulated totals for one phase, in first-execution order.
  struct PhaseStat {
    std::string name;
    std::uint64_t runs = 0;
    std::uint64_t total_ns = 0;
    obs::Counter runs_metric;
    obs::Counter ns_metric;
  };

  void on_run_begin(const EngineContext& ctx) override;
  void on_phase_begin(const Phase& phase, const EngineContext& ctx) override;
  void on_phase_end(const Phase& phase, const EngineContext& ctx) override;
  void on_iteration_end(const EngineContext& ctx) override;
  void on_run_end(const EngineContext& ctx) override;

  [[nodiscard]] const std::vector<PhaseStat>& phase_stats() const {
    return stats_;
  }
  /// Wall time of the whole run (on_run_begin → on_run_end).
  [[nodiscard]] std::uint64_t run_ns() const { return run_total_ns_; }

  /// Human-readable per-phase timing table (the CLI prints this at run
  /// end when --trace-out/--metrics-out observability is on).
  [[nodiscard]] std::string timing_table() const;

 private:
  PhaseStat& stat_for(const char* name);

  std::vector<PhaseStat> stats_;
  std::uint64_t run_start_ns_ = 0;
  std::uint64_t phase_start_ns_ = 0;
  std::uint64_t run_total_ns_ = 0;
};

}  // namespace refit
