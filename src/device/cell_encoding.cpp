// Cell-encoding implementations (see cell_encoding.hpp).
#include "device/cell_encoding.hpp"

#include <cmath>

#include "common/check.hpp"

namespace refit {

namespace {

/// The paper's mapping: one cell per weight, magnitude as conductance,
/// sign in a peripheral register. encode/decode reproduce the pre-seam
/// store's expressions token for token — the bit-identity guarantee of
/// docs/device_model.md rests on these two functions.
class SingleCellEncoding final : public CellEncoding {
 public:
  [[nodiscard]] EncodingKind kind() const override {
    return EncodingKind::kSingleCell;
  }
  [[nodiscard]] std::size_t legs() const override { return 1; }

  void encode(float target, double weight_max, double* g) const override {
    g[0] = std::fabs(target) / weight_max;
  }

  [[nodiscard]] float decode(const double* g, float target,
                             double weight_max) const override {
    // Peripheral sign register: sign of the last written target. SA1
    // cells therefore saturate at ±weight_max, SA0 cells read as 0.
    const float sign = target < 0.0f ? -1.0f : 1.0f;
    return sign * static_cast<float>(g[0] * weight_max);
  }
};

/// Differential pair: w = (g_p − g_n) · weight_max. Positive weights
/// occupy the p leg, negative the n leg; the idle leg is programmed to 0.
/// No sign register exists — a stuck-at fault pins one leg and the decode
/// difference carries the corruption with its sign.
class DifferentialPairEncoding final : public CellEncoding {
 public:
  [[nodiscard]] EncodingKind kind() const override {
    return EncodingKind::kDifferentialPair;
  }
  [[nodiscard]] std::size_t legs() const override { return 2; }

  void encode(float target, double weight_max, double* g) const override {
    const double mag = std::fabs(target) / weight_max;
    if (target < 0.0f) {
      g[0] = 0.0;
      g[1] = mag;
    } else {
      g[0] = mag;
      g[1] = 0.0;
    }
  }

  [[nodiscard]] float decode(const double* g, float /*target*/,
                             double weight_max) const override {
    return static_cast<float>((g[0] - g[1]) * weight_max);
  }
};

}  // namespace

const CellEncoding& CellEncoding::of(EncodingKind kind) {
  static const SingleCellEncoding kSingle;
  static const DifferentialPairEncoding kDifferential;
  switch (kind) {
    case EncodingKind::kSingleCell:
      return kSingle;
    case EncodingKind::kDifferentialPair:
      return kDifferential;
  }
  REFIT_CHECK_MSG(false, "unknown EncodingKind");
  return kSingle;
}

}  // namespace refit
