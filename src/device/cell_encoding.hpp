// CellEncoding — the weight→conductance mapping seam of the device layer.
//
// A weight matrix entry w must become one or more programmed conductances
// g ∈ [0, 1], and faulty conductances must be read back into an effective
// weight. The DAC'17 paper hard-wires one choice (single cell, |w| as the
// conductance, sign in a peripheral CMOS register); the differential
// G_p/G_n pair of the related crossbar-mapping literature is a second
// choice with different stuck-at semantics. This interface makes the
// choice explicit so CrossbarWeightStore can parameterize on it:
//
//   SingleCellEncoding      one cell per weight, g = |w| / weight_max,
//                           sign off-chip. SA0 pins the weight to 0 (which
//                           is why pruned zeros can host SA0 cells for
//                           free); SA1 pins it to ±weight_max. Decode is
//                           arithmetic-identical to the pre-seam store, so
//                           this encoding is bit-identical to the original
//                           implementation (see docs/device_model.md).
//   DifferentialPairEncoding two cells per weight, w = (g_p − g_n) ·
//                           weight_max, no sign register. A stuck-at fault
//                           pins one leg only: SA0 on the occupied leg
//                           zeroes the weight, SA1 on the empty leg drives
//                           it to the opposite rail.
//
// Encodings are stateless singletons (of()); the store stores only the
// EncodingKind, which serializes as a POD enum inside RcsConfig.
#pragma once

#include <cstddef>
#include <cstdint>

namespace refit {

/// Serializable identifier of a CellEncoding implementation.
enum class EncodingKind : std::uint8_t {
  kSingleCell = 0,
  kDifferentialPair = 1,
};

/// Upper bound on legs() across all encodings — callers size their
/// conductance scratch buffers with this.
inline constexpr std::size_t kMaxEncodingLegs = 2;

/// Weight↔conductance mapping contract. Implementations are stateless and
/// shared; all methods are pure functions of their arguments.
class CellEncoding {
 public:
  virtual ~CellEncoding() = default;

  [[nodiscard]] virtual EncodingKind kind() const = 0;
  /// Physical cells per logical weight (1 or 2; ≤ kMaxEncodingLegs).
  [[nodiscard]] virtual std::size_t legs() const = 0;

  /// Target conductances for weight `target` (|target| ≤ weight_max):
  /// fills g[0..legs()-1] with values in [0, 1].
  virtual void encode(float target, double weight_max, double* g) const = 0;

  /// Effective weight read back from the (possibly faulty/noisy) device
  /// conductances g[0..legs()-1]. `target` supplies any off-chip state the
  /// encoding keeps beside the conductance (the single-cell sign register);
  /// differential decode ignores it.
  [[nodiscard]] virtual float decode(const double* g, float target,
                                     double weight_max) const = 0;

  /// Shared singleton for `kind`.
  [[nodiscard]] static const CellEncoding& of(EncodingKind kind);
};

}  // namespace refit
