// Time-dependent device-noise model (see noise_model.hpp).
#include "device/noise_model.hpp"

#include <cstdint>

#include "obs/metrics.hpp"

namespace refit {

void DeviceNoiseModel::tick_tile(Crossbar& xbar, Rng& rng) const {
  if (!cfg_.active()) return;
  xbar.decay_soft_faults();
  if (cfg_.drift_rate > 0.0) {
    xbar.drift_toward(cfg_.drift_target, cfg_.drift_rate);
  }
  if (cfg_.soft_fault_rate > 0.0) {
    std::uint64_t injected = 0;
    for (std::size_t r = 0; r < xbar.rows(); ++r) {
      for (std::size_t c = 0; c < xbar.cols(); ++c) {
        // Draw for every cell, stuck or not, so the stream position does
        // not depend on the current fault state.
        if (!rng.bernoulli(cfg_.soft_fault_rate)) continue;
        if (xbar.fault(r, c) != FaultKind::kNone) continue;
        const FaultKind kind = rng.bernoulli(cfg_.soft_sa0_probability)
                                   ? FaultKind::kSoftStuck0
                                   : FaultKind::kSoftStuck1;
        xbar.force_soft_fault(r, c, kind,
                              static_cast<std::uint32_t>(cfg_.soft_fault_ttl));
        ++injected;
      }
    }
    static obs::Counter soft_metric = obs::MetricsRegistry::instance().counter(
        "device.soft_faults_injected", "faults");
    soft_metric.add(injected);
  }
}

}  // namespace refit
