// DeviceNoiseModel — second-generation time-dependent device effects.
//
// The base crossbar model (rram/crossbar.hpp) covers programming noise and
// permanent stuck-at faults. Real arrays additionally exhibit
//
//   - conductance relaxation/drift: programmed conductances creep toward a
//     rest state between refreshes,
//   - transient (soft) stuck faults: cells that read pinned for a while
//     and then recover — the fault class "Online Soft Error Tolerance in
//     ReRAM Crossbars" scrubs rather than re-maps,
//   - extra programming noise beyond the baseline write variance.
//
// DeviceNoiseConfig is a POD knob block embedded in RcsConfig (it rides
// checkpoints via write_pod); DeviceNoiseModel advances one crossbar tile
// by one device-time tick. The engine's DeviceTickPhase calls
// CrossbarWeightStore::tick_noise() every device_tick_period iterations,
// which fans tick_tile over the tiles with per-tile derived RNG streams —
// deterministic at any thread count (docs/device_model.md).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "rram/crossbar.hpp"

namespace refit {

/// Knobs of the time-dependent device model. All defaults off: a
/// default-constructed config makes tick_noise() a no-op and adds no
/// programming noise, so existing configurations are unchanged.
struct DeviceNoiseConfig {
  /// Extra Gaussian programming-noise stddev added on top of
  /// RcsConfig::write_noise_sigma at tile construction.
  double program_sigma = 0.0;
  /// Per-tick relaxation rate: g += drift_rate · (drift_target − g) on
  /// every healthy cell. 0 disables drift.
  double drift_rate = 0.0;
  /// Rest conductance the array relaxes toward (0 = HRS, the usual case
  /// for filamentary RRAM retention loss).
  double drift_target = 0.0;
  /// Per-cell probability of a fresh transient stuck fault each tick.
  double soft_fault_rate = 0.0;
  /// Ticks a transient fault persists before the cell recovers.
  std::size_t soft_fault_ttl = 2;
  /// Probability a transient fault pins low (rest pin high).
  double soft_sa0_probability = 0.5;

  /// True when any time-dependent effect is enabled.
  [[nodiscard]] bool active() const {
    return drift_rate > 0.0 || soft_fault_rate > 0.0;
  }
};

/// Advances device time on one tile. Stateless beyond the config; the
/// caller supplies the RNG stream (one per tile per tick, derived by the
/// store so results do not depend on tile visit order).
class DeviceNoiseModel {
 public:
  explicit DeviceNoiseModel(const DeviceNoiseConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] const DeviceNoiseConfig& config() const { return cfg_; }

  /// One tick: existing soft faults decay, healthy cells drift, fresh
  /// transient faults are injected. Order matters for determinism and is
  /// part of the contract (decay → drift → inject: a fault injected this
  /// tick lives its full TTL and pins the pre-drift conductance).
  void tick_tile(Crossbar& xbar, Rng& rng) const;

 private:
  DeviceNoiseConfig cfg_;
};

}  // namespace refit
