#!/usr/bin/env bash
# Local verification: tier-1 build + tests, then the parallel-backend tests
# again under ThreadSanitizer so data races in the thread-pool fan-outs are
# caught before review. Usage: scripts/check.sh [extra ctest args]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$@"

echo "== TSan: parallel backend tests =="
cmake -B build-tsan -S . -DREFIT_SANITIZE=thread
cmake --build build-tsan -j --target test_backend
(cd build-tsan && REFIT_THREADS=4 ctest --output-on-failure -R '^Backend')

echo "All checks passed."
