#!/usr/bin/env bash
# Local verification, mirroring .github/workflows/ci.yml:
#
#   tier1       RelWithDebInfo build (-DREFIT_WERROR=ON) + full ctest suite
#   lint        refit-lint static analysis over src/tests/bench/examples/tools
#   audit       refit-audit cross-TU analysis diffed against its baseline
#   flow        refit-flow CFG/dataflow analysis diffed against its baseline
#   det         refit-det whole-program determinism analysis vs its baseline
#   det-smoke   dynamic determinism check: the backend GEMM hash and the
#               soft-fault result rows must be byte-identical at
#               REFIT_THREADS=1 and REFIT_THREADS=4
#   bench-smoke figure-reproduction benches end to end under REFIT_FAST=1
#   obs-smoke   quickstart with --trace-out/--metrics-out; both outputs must
#               be valid JSON with the expected top-level shape
#   obs-report  timeseries/event JSONL byte-identical at REFIT_THREADS=1 vs 4
#               under --manual-clock; refit-report renders the HTML dashboard;
#               refit-bench-diff gates fresh REFIT_FAST runs vs BENCH_*.json
#   asan-ubsan  full suite under AddressSanitizer + UBSan
#   tsan        parallel-backend tests under ThreadSanitizer (REFIT_THREADS=4)
#
# All stages run even when an earlier one fails; a per-stage summary prints
# at the end and the exit status is non-zero if any stage failed. Extra
# arguments are forwarded to the tier-1 ctest invocation.
set -uo pipefail
cd "$(dirname "$0")/.."

declare -a STAGE_NAMES=() STAGE_RESULTS=()
record() {  # record <name> <exit-code>
  STAGE_NAMES+=("$1")
  STAGE_RESULTS+=("$2")
}

banner() {
  echo
  echo "==================================================================="
  echo "== $1"
  echo "==================================================================="
}

banner "tier1: build (-Werror) + full test suite"
tier1_rc=1
if cmake -B build -S . -DREFIT_WERROR=ON &&
   cmake --build build -j &&
   ctest --test-dir build --output-on-failure -j "$@"; then
  tier1_rc=0
fi
record tier1 $tier1_rc

banner "lint: refit-lint static analysis"
lint_rc=1
if [[ $tier1_rc -ne 0 && ! -x build/tools/refit_lint ]]; then
  # The tier-1 build failed before producing the linter; try to build just it.
  cmake --build build -j --target refit_lint || true
fi
if ./build/tools/refit_lint src tests bench examples tools; then
  lint_rc=0
fi
record lint $lint_rc

banner "audit: refit-audit cross-TU analysis vs baseline"
audit_rc=1
if [[ ! -x build/tools/refit_audit ]]; then
  cmake --build build -j --target refit_audit || true
fi
if ./build/tools/refit_audit --baseline tools/refit_audit/baseline.txt \
     --compile-commands build/compile_commands.json; then
  audit_rc=0
fi
record audit $audit_rc

banner "flow: refit-flow CFG/dataflow analysis vs baseline"
flow_rc=1
if [[ ! -x build/tools/refit_flow ]]; then
  cmake --build build -j --target refit_flow || true
fi
if ./build/tools/refit_flow --baseline tools/refit_flow/baseline.txt; then
  flow_rc=0
fi
record flow $flow_rc

banner "det: refit-det whole-program determinism analysis vs baseline"
det_rc=1
if [[ ! -x build/tools/refit_det ]]; then
  cmake --build build -j --target refit_det || true
fi
if ./build/tools/refit_det --baseline tools/refit_det/baseline.txt; then
  det_rc=0
fi
record det $det_rc

banner "det-smoke: artifacts byte-identical at REFIT_THREADS=1 vs 4"
# The dynamic half of the determinism contract refit-det checks statically:
# the deterministic artifact fields (backend gemm_output_hash, device
# result rows) must not change with the worker-thread count. Provenance
# fields (hardware_threads, scaling_valid, timings) are excluded — those
# describe the host and the run, not the computation.
detsmoke_rc=0
smoke_dir=$(mktemp -d)
for t in 1 4; do
  if ! REFIT_FAST=1 REFIT_THREADS=$t \
       REFIT_BENCH_OUT="$smoke_dir/backend_$t.json" \
       ./build/bench/bench_backend > /dev/null; then
    echo "  bench_backend (REFIT_THREADS=$t) FAILED"
    detsmoke_rc=1
  fi
  if ! REFIT_FAST=1 REFIT_THREADS=$t \
       REFIT_BENCH_OUT="$smoke_dir/device_$t.json" \
       ./build/bench/soft_faults > /dev/null 2>&1; then
    echo "  soft_faults (REFIT_THREADS=$t) FAILED"
    detsmoke_rc=1
  fi
done
if [[ $detsmoke_rc -eq 0 ]]; then
  python3 - "$smoke_dir" <<'EOF' || detsmoke_rc=1
import json, sys
d = sys.argv[1]
b1 = json.load(open(d + "/backend_1.json"))
b4 = json.load(open(d + "/backend_4.json"))
assert b1["gemm_output_hash"] == b4["gemm_output_hash"], (
    "gemm_output_hash differs across REFIT_THREADS: "
    + b1["gemm_output_hash"] + " != " + b4["gemm_output_hash"])
r1 = json.load(open(d + "/device_1.json"))["results"]
r4 = json.load(open(d + "/device_4.json"))["results"]
assert r1 == r4, "soft_faults result rows differ across REFIT_THREADS"
print("  gemm_output_hash " + b1["gemm_output_hash"] + " and "
      + str(len(r1)) + " device rows identical at REFIT_THREADS=1 and 4")
EOF
fi
rm -rf "$smoke_dir"
record det-smoke $detsmoke_rc

banner "bench-smoke: figure benches under REFIT_FAST=1"
bench_rc=0
for b in fig1_motivation fig6_detection fig7a_entire_cnn fig7b_fc_only \
         ablation_modulo ablation_remap ablation_wear_leveling \
         ablation_detection_period ablation_ir_drop; do
  if REFIT_FAST=1 "./build/bench/$b" > /dev/null; then
    echo "  $b OK"
  else
    echo "  $b FAILED"
    bench_rc=1
  fi
done
# Device/encoding bench: runs the three scenario families and must emit a
# parseable BENCH_device.json (provenance header + results array).
device_json=$(mktemp)
if REFIT_FAST=1 REFIT_BENCH_OUT="$device_json" ./build/bench/soft_faults \
     > /dev/null 2>&1 &&
   python3 -c "import json,sys; d = json.load(open(sys.argv[1]));
assert d['bench'] == 'device' and d['results'], 'empty device results'
assert 'provenance' in d, 'missing provenance header'" "$device_json"; then
  echo "  soft_faults OK ($(grep -c '"family"' "$device_json") rows)"
else
  echo "  soft_faults FAILED"
  bench_rc=1
fi
rm -f "$device_json"
# Golden-GEMM gate: the deterministic matmul_512 output hash in the backend
# bench must match bench/gemm_golden_hash.txt. Any kernel change that alters
# bits fails here; regenerate the golden file only with a bit-identity
# justification (see docs/kernels.md).
bench_json=$(mktemp)
if REFIT_FAST=1 REFIT_BENCH_OUT="$bench_json" ./build/bench/bench_backend \
     > /dev/null; then
  want=$(cat bench/gemm_golden_hash.txt)
  got=$(sed -n 's/.*"gemm_output_hash": "\([0-9a-f]*\)".*/\1/p' "$bench_json")
  if [[ "$got" == "$want" ]]; then
    echo "  bench_backend OK (gemm_output_hash $got)"
  else
    echo "  bench_backend FAILED: gemm_output_hash $got != golden $want"
    bench_rc=1
  fi
else
  echo "  bench_backend FAILED"
  bench_rc=1
fi
rm -f "$bench_json"
record bench-smoke $bench_rc

banner "obs-smoke: trace + metrics capture through quickstart"
obs_rc=1
obs_dir=$(mktemp -d)
if REFIT_FAST=1 ./build/examples/quickstart \
     "--trace-out=$obs_dir/trace.json" \
     "--metrics-out=$obs_dir/metrics.json" > /dev/null &&
   python3 - "$obs_dir" <<'EOF'
import json, sys
d = sys.argv[1]
trace = json.load(open(d + "/trace.json"))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "trace has no events"
phases = [e for e in trace["traceEvents"] if e["cat"] == "phase"]
assert phases, "no phase spans in trace"
metrics = json.load(open(d + "/metrics.json"))
names = [m["name"] for m in metrics["metrics"]]
assert names == sorted(names), "metrics snapshot not sorted"
for want in ("engine.iterations", "store.writes", "pool.parallel_for.calls"):
    assert want in names, "missing metric " + want
print("  trace events:", len(trace["traceEvents"]),
      "| phase spans:", len(phases), "| metrics:", len(names))
EOF
then
  obs_rc=0
fi
rm -rf "$obs_dir"
record obs-smoke $obs_rc

banner "obs-report: timeseries/event determinism, HTML report, bench gate"
# Three checks (docs/observability.md, docs/tooling.md):
#   1. Under --manual-clock the quickstart timeseries + event JSONL are
#      byte-identical at REFIT_THREADS=1 and 4 — the dynamic half of the
#      golden tests in tests/test_timeseries.cpp / test_events.cpp.
#   2. refit-report renders one self-contained HTML page from the captures
#      with all four payloads embedded.
#   3. refit-bench-diff gates fresh REFIT_FAST bench runs against the
#      checked-in BENCH_*.json baselines (deterministic fields exact;
#      timing noise-gated by provenance/scaling_valid).
report_rc=0
report_dir=$(mktemp -d)
for t in 1 4; do
  if ! REFIT_FAST=1 REFIT_THREADS=$t ./build/examples/quickstart \
       --manual-clock \
       "--trace-out=$report_dir/trace_$t.json" \
       "--metrics-out=$report_dir/metrics_$t.json" \
       "--timeseries-out=$report_dir/ts_$t.jsonl" \
       "--events-out=$report_dir/events_$t.jsonl" > /dev/null; then
    echo "  quickstart (REFIT_THREADS=$t) FAILED"
    report_rc=1
  fi
done
if [[ $report_rc -eq 0 ]]; then
  if cmp -s "$report_dir/ts_1.jsonl" "$report_dir/ts_4.jsonl"; then
    echo "  timeseries JSONL byte-identical at REFIT_THREADS=1 and 4" \
         "($(wc -c < "$report_dir/ts_1.jsonl") bytes)"
  else
    echo "  timeseries JSONL DIFFERS across REFIT_THREADS"
    report_rc=1
  fi
  if cmp -s "$report_dir/events_1.jsonl" "$report_dir/events_4.jsonl"; then
    echo "  event JSONL byte-identical at REFIT_THREADS=1 and 4" \
         "($(wc -l < "$report_dir/events_1.jsonl") events)"
  else
    echo "  event JSONL DIFFERS across REFIT_THREADS"
    report_rc=1
  fi
fi
if [[ ! -x build/tools/refit_report ]]; then
  cmake --build build -j --target refit_report || true
fi
if ./build/tools/refit_report \
     --trace "$report_dir/trace_1.json" \
     --metrics "$report_dir/metrics_1.json" \
     --timeseries "$report_dir/ts_1.jsonl" \
     --events "$report_dir/events_1.jsonl" \
     --title "check.sh quickstart" \
     --out "$report_dir/report.html" 2> /dev/null &&
   python3 - "$report_dir/report.html" <<'EOF'
import json, sys
html = open(sys.argv[1]).read()
for pid in ("refit-trace", "refit-metrics", "refit-timeseries", "refit-events"):
    marker = 'id="%s"' % pid
    assert marker in html, "report missing embedded payload " + pid
start = html.index('id="refit-metrics"')
payload = html[html.index(">", start) + 1:html.index("</script>", start)]
metrics = json.loads(payload.replace("<\\/", "</"))
assert metrics["metrics"], "embedded metrics payload is empty"
assert html.count("<svg") >= 3, "expected at least 3 rendered charts"
print("  report.html OK (%d bytes, %d charts, %d metrics embedded)"
      % (len(html), html.count("<svg"), len(metrics["metrics"])))
EOF
then
  :
else
  echo "  refit-report FAILED"
  report_rc=1
fi
if [[ ! -x build/tools/refit_bench_diff ]]; then
  cmake --build build -j --target refit_bench_diff || true
fi
for gate in "BENCH_backend.json bench_backend" "BENCH_device.json soft_faults"; do
  base=${gate% *}
  bin=${gate#* }
  if REFIT_FAST=1 REFIT_BENCH_OUT="$report_dir/fresh.json" \
       "./build/bench/$bin" > /dev/null 2>&1 &&
     ./build/tools/refit_bench_diff --baseline "$base" \
       --candidate "$report_dir/fresh.json" 2>&1 | sed 's/^/  /'; then
    echo "  bench-diff vs $base OK"
  else
    echo "  bench-diff vs $base FAILED"
    report_rc=1
  fi
done
rm -rf "$report_dir"
record obs-report $report_rc

banner "asan-ubsan: full test suite under ASan + UBSan"
asan_rc=1
if cmake -B build-asan -S . -DREFIT_SANITIZE=address,undefined &&
   cmake --build build-asan -j &&
   ctest --test-dir build-asan --output-on-failure -j; then
  asan_rc=0
fi
record asan-ubsan $asan_rc

banner "tsan: backend + device tests under TSan (REFIT_THREADS=4, fast reduce)"
# REFIT_FAST_REDUCE=1 exercises the opt-in fast reduction mode under TSan;
# the backend determinism assertions still hold because fast mode is
# thread-count-invariant per element (see docs/kernels.md). The Device
# suites cover the tile-parallel tick_noise / classify_soft paths.
tsan_rc=1
if cmake -B build-tsan -S . -DREFIT_SANITIZE=thread &&
   cmake --build build-tsan -j --target test_backend test_device &&
   (cd build-tsan &&
    REFIT_THREADS=4 REFIT_FAST_REDUCE=1 ctest --output-on-failure \
      -R '^Backend|^Device'); then
  tsan_rc=0
fi
record tsan $tsan_rc

banner "summary"
overall=0
for i in "${!STAGE_NAMES[@]}"; do
  if [[ ${STAGE_RESULTS[$i]} -eq 0 ]]; then
    printf '  %-12s PASS\n' "${STAGE_NAMES[$i]}"
  else
    printf '  %-12s FAIL\n' "${STAGE_NAMES[$i]}"
    overall=1
  fi
done
if [[ $overall -eq 0 ]]; then
  echo "All checks passed."
else
  echo "Some checks FAILED — see the stage output above."
fi
exit $overall
