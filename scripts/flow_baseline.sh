#!/usr/bin/env bash
# Regenerates tools/refit_flow/baseline.txt from the current tree.
#
# The baseline freezes deliberately-kept refit-flow findings; anything the
# analyzer reports that is not in the file fails CI (see docs/tooling.md).
# Output is deterministic — sorted unique `<rule> <file> <detail>` keys with
# repo-relative paths — so reruns on an unchanged tree are byte-identical.
#
# Hand-written `#` comments justifying each kept entry are NOT preserved by
# regeneration: re-add them before committing. Policy: parallel-shared-write
# findings are never baselined — a data race in a thread-pool region is
# always a bug; fix the code (or, for a provable false positive, suppress
# in place with `// refit-flow: allow(parallel-shared-write)`).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=tools/refit_flow/baseline.txt

if [[ ! -f build/CMakeCache.txt ]]; then
  cmake -B build -S .
fi
cmake --build build -j --target refit_flow

./build/tools/refit_flow --write-baseline "$OUT"

if grep -E '^parallel-shared-write ' "$OUT"; then
  echo "error: the entries above must never be baselined — fix the code" >&2
  exit 1
fi
echo "wrote $OUT — re-add the justification comments before committing"
