#!/usr/bin/env bash
# Regenerates tools/refit_audit/baseline.txt from the current tree.
#
# The baseline freezes deliberately-kept refit-audit findings; anything the
# auditor reports that is not in the file fails CI (see docs/tooling.md).
# Output is deterministic — sorted unique `<rule> <file> <detail>` keys with
# repo-relative paths — so reruns on an unchanged tree are byte-identical.
#
# Hand-written `#` comments justifying each kept entry are NOT preserved by
# regeneration: re-add them before committing. Policy: include-cycle,
# phase-purity and pool-capture findings are never baselined — fix the code
# (or, for a true false positive, suppress in place with
# `// refit-audit: allow(<rule>)`).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=tools/refit_audit/baseline.txt

if [[ ! -f build/CMakeCache.txt ]]; then
  cmake -B build -S .
fi
cmake --build build -j --target refit_audit

./build/tools/refit_audit --write-baseline "$OUT" \
  --compile-commands build/compile_commands.json

if grep -E '^(include-cycle|phase-purity|pool-capture) ' "$OUT"; then
  echo "error: the entries above must never be baselined — fix the code" >&2
  exit 1
fi
echo "wrote $OUT — re-add the justification comments before committing"
