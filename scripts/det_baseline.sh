#!/usr/bin/env bash
# Regenerates tools/refit_det/baseline.txt from the current tree.
#
# The baseline freezes deliberately-kept refit-det findings; anything the
# analyzer reports that is not in the file fails CI (see docs/tooling.md
# and docs/determinism.md). Output is deterministic — sorted unique
# `<rule> <file> <detail>` keys with repo-relative paths — so reruns on an
# unchanged tree are byte-identical.
#
# Hand-written `#` comments justifying each kept entry are NOT preserved by
# regeneration: re-add them before committing. Policy: nondet-seed-provenance
# findings are never baselined — a nondeterministically seeded RNG stream
# breaks reproducibility for every artifact downstream of it; fix the code
# (derive the stream from the funneled config seed with Rng::split), or, for
# a provable false positive, suppress in place with
# `// refit-det: allow(nondet-seed-provenance)`.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=tools/refit_det/baseline.txt

if [[ ! -f build/CMakeCache.txt ]]; then
  cmake -B build -S .
fi
cmake --build build -j --target refit_det

./build/tools/refit_det --write-baseline "$OUT"

if grep -E '^nondet-seed-provenance ' "$OUT"; then
  echo "error: the entries above must never be baselined — fix the seed" >&2
  exit 1
fi
echo "wrote $OUT — re-add the justification comments before committing"
