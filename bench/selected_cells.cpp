// TAB_SEL — reproduction of §6.3's selected-cell comparison: with Gaussian
// (clustered) faults, 10 % of cells faulty and ~30 % in the high-resistance
// state, testing only the plausible cells raises precision from ~50 % to
// ~77 % while recall stays above 90 %, at similar (or lower) test time.
#include <iostream>

#include "bench_util.hpp"
#include "detect/quiescent_detector.hpp"
#include "rram/faults.hpp"

using namespace refit;
using namespace refit::bench;

int main() {
  SeriesPrinter out(std::cout, "TAB_SEL selected-cell testing (sec 6.3)");
  out.paper_reference(
      "precision rises from ~50% (all cells) to ~77% (selected cells); "
      "recall of both methods stays above 90%");
  out.header({"mode_selected", "test_size", "test_cycles", "cells_tested",
              "precision", "recall"});

  const std::size_t n = scaled(512);
  for (const bool selected : {false, true}) {
    for (const std::size_t tr : {32UL, 16UL, 8UL}) {
      ConfusionCounts total;
      double cycles = 0.0, tested = 0.0;
      const int seeds = 3;
      for (int s = 0; s < seeds; ++s) {
        CrossbarConfig cc;
        cc.rows = n;
        cc.cols = n;
        cc.levels = 8;
        cc.write_noise_sigma = 0.01;
        Crossbar xb(cc, EnduranceModel::unlimited(),
                    Rng(7 + static_cast<std::uint64_t>(s)));
        Rng rng(100 + static_cast<std::uint64_t>(s));
        randomize_crossbar_content(xb, 0.3, 0.2, rng);
        FaultInjectionConfig fc;
        fc.fraction = 0.10;
        fc.spatial = SpatialDistribution::kClustered;
        fc.clusters = 4;
        inject_fabrication_faults(xb, fc, rng);

        DetectorConfig dc;
        dc.test_rows_per_cycle = tr;
        dc.selected_cells_only = selected;
        const DetectionOutcome o = QuiescentVoltageDetector(dc).detect(xb);
        total += evaluate_detection(xb, o.predicted);
        cycles += static_cast<double>(o.cycles) / seeds;
        tested += static_cast<double>(o.cells_tested) / seeds;
      }
      out.row({selected ? 1.0 : 0.0, static_cast<double>(tr), cycles, tested,
               total.precision(), total.recall()});
    }
  }
  return 0;
}
