// ABL_PERIOD — ablation of the detection cadence ("after every fixed
// number of iterations", paper Fig. 2 leaves the period unspecified).
// Frequent detection finds wear-out faults earlier and keeps the digital
// training state accurate, but each phase costs test cycles and ±δw write
// pulses on every candidate cell. This sweep measures the accuracy /
// test-overhead trade-off on the FC-only scenario.
#include <iostream>

#include "bench_util.hpp"

using namespace refit;
using namespace refit::bench;

int main() {
  const std::size_t iters = scaled(1200);
  const Dataset data = cifar_like();
  const VggMiniConfig vc = vgg_mini_config();

  SeriesPrinter out(std::cout, "ABL_PERIOD detection cadence");
  out.paper_reference(
      "the paper runs detection after every fixed number of iterations "
      "without specifying it; this sweep exposes the trade-off");
  out.header({"detection_period", "phases", "peak_accuracy",
              "total_test_cycles", "detection_writes"});

  for (const std::size_t divider : {0UL, 12UL, 6UL, 3UL, 2UL}) {
    RcsConfig rc = rcs_defaults();
    rc.inject_fabrication = true;
    rc.fabrication.fraction = 0.50;
    RcsSystem sys(rc, Rng(42));
    Rng rng(2);
    Network net = make_vgg_mini(vc, software_store_factory(), sys.factory(),
                                rng);

    FtFlowConfig cfg = cnn_flow(iters);
    cfg.threshold_training = true;
    if (divider > 0) {
      cfg.detection_enabled = true;
      cfg.detection_period = iters / divider;
      cfg.prune.enabled = true;
      cfg.prune.fc_sparsity = 0.3;
      cfg.prune.conv_sparsity = 0.0;
      cfg.remap_enabled = true;
      cfg.remap.algorithm = RemapAlgorithm::kHungarian;
    }
    const TrainingResult r = run_training(net, &sys, data, cfg, 3);
    std::size_t cycles = 0;
    std::uint64_t writes = 0;
    for (const auto& ph : r.phases) {
      cycles += ph.cycles;
      writes += ph.detection_writes;
    }
    out.row({divider == 0 ? 0.0
                          : static_cast<double>(iters / divider),
             static_cast<double>(r.phases.size()), r.peak_accuracy,
             static_cast<double>(cycles), static_cast<double>(writes)});
  }
  return 0;
}
