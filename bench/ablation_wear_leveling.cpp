// ABL_WEAR — ablation of the wear-leveling extension to CalculateThreshold
// (Algorithm 1 passes the per-cell WriteAmount into the threshold; the
// paper leaves the function unspecified). With β > 0, cells that have been
// written more than the layer average get a proportionally higher
// threshold, spreading wear. We measure wear-out fault accumulation and
// accuracy on low-endurance crossbars.
#include <iostream>

#include "bench_util.hpp"

using namespace refit;
using namespace refit::bench;

int main() {
  const std::size_t iters = scaled(1500);
  const Dataset data = mnist_like();

  SeriesPrinter out(std::cout, "ABL_WEAR wear-leveling threshold");
  out.paper_reference(
      "Algorithm 1 computes the threshold from the per-cell WriteAmount; "
      "the paper does not specify the function — this ablation quantifies "
      "a proportional wear-leveling term (beta)");
  out.header({"beta", "peak_accuracy", "final_accuracy", "wearout_faults",
              "updates_written"});

  for (const double beta : {0.0, 1.0, 5.0, 20.0}) {
    RcsConfig rc = rcs_defaults();
    rc.tile_rows = rc.tile_cols = 64;
    rc.endurance = EnduranceModel::gaussian(
        0.25 * static_cast<double>(iters), 0.075 * static_cast<double>(iters));
    RcsSystem sys(rc, Rng(42));
    Rng rng(2);
    Network net = make_mlp({784, 64, 10}, sys.factory(), rng);

    FtFlowConfig cfg = mlp_flow(iters);
    cfg.batch_size = 8;
    cfg.threshold_training = true;
    cfg.threshold.wear_leveling_beta = beta;
    const TrainingResult r = run_training(net, &sys, data, cfg, 3);
    out.row({beta, r.peak_accuracy, r.final_accuracy,
             static_cast<double>(r.wearout_faults),
             static_cast<double>(r.updates_written)});
  }
  return 0;
}
