// FIG6A/FIG6B — reproduction of Fig. 6: trade-offs between test time,
// precision, and recall for the on-line quiescent-voltage comparison
// method, for crossbar sizes 128²…1024² under (a) uniform and
// (b) Gaussian-clustered fault distributions (10 % of cells faulty).
//
// The test-time axis is produced by sweeping the per-cycle test size Tr
// (large groups = few cycles = low precision; small groups = many cycles =
// high precision). Recall stays high throughout, as in the paper.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "detect/quiescent_detector.hpp"
#include "rram/faults.hpp"

using namespace refit;
using namespace refit::bench;

namespace {

struct Point {
  std::size_t size;
  std::size_t test_size;
  double cycles;
  double precision;
  double recall;
};

Point measure(std::size_t n, std::size_t tr, SpatialDistribution dist,
              std::uint64_t seed) {
  CrossbarConfig cc;
  cc.rows = n;
  cc.cols = n;
  cc.levels = 8;
  cc.write_noise_sigma = 0.01;
  Crossbar xb(cc, EnduranceModel::unlimited(), Rng(seed));
  Rng rng(seed + 1);
  // Trained-array content: ~30 % high-resistance, ~20 % low-resistance
  // cells (the paper's §6.3 setting).
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  FaultInjectionConfig fc;
  fc.fraction = 0.10;
  fc.spatial = dist;
  fc.clusters = 4;
  fc.cluster_sigma_fraction = 0.08;
  inject_fabrication_faults(xb, fc, rng);

  DetectorConfig dc;
  dc.test_rows_per_cycle = tr;
  dc.modulo_divisor = 16;
  dc.selected_cells_only = true;
  const QuiescentVoltageDetector det(dc);
  const DetectionOutcome out = det.detect(xb);
  const ConfusionCounts cc2 = evaluate_detection(xb, out.predicted);
  return Point{n, tr, static_cast<double>(out.cycles), cc2.precision(),
               cc2.recall()};
}

}  // namespace

int main() {
  const std::vector<std::size_t> sizes = fast_mode()
                                             ? std::vector<std::size_t>{128, 256}
                                             : std::vector<std::size_t>{
                                                   128, 256, 512, 1024};
  const std::vector<std::size_t> test_sizes{64, 32, 16, 8, 4, 2};

  const struct {
    SpatialDistribution dist;
    const char* id;
    const char* paper;
  } cases[] = {
      {SpatialDistribution::kUniform, "FIG6A uniform fault distribution",
       "recall always >0.87, rising slowly with test time; precision rises "
       "with test time; larger crossbars need proportionally more cycles "
       "(1024^2: 74% precision / 91% recall within ~70 cycles)"},
      {SpatialDistribution::kClustered, "FIG6B Gaussian fault distribution",
       "same qualitative trade-off as (a); clustering lowers precision at "
       "equal test time"},
  };

  for (const auto& c : cases) {
    SeriesPrinter out(std::cout, c.id);
    out.paper_reference(c.paper);
    out.header({"crossbar_size", "test_size", "test_cycles", "precision",
                "recall"});
    for (std::size_t n : sizes) {
      for (std::size_t tr : test_sizes) {
        const Point p = measure(n, tr, c.dist, 1000 + n + tr);
        out.row({static_cast<double>(p.size),
                 static_cast<double>(p.test_size), p.cycles, p.precision,
                 p.recall});
      }
    }
  }
  return 0;
}
