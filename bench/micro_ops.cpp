// MICRO — google-benchmark micro-benchmarks for the simulator's hot
// kernels: GEMM, im2col, crossbar programming, effective-weight rebuild,
// the quiescent-voltage detection pass, and the re-mapping solvers.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/remap.hpp"
#include "detect/quiescent_detector.hpp"
#include "rram/faults.hpp"
#include "tensor/ops.hpp"

using namespace refit;

namespace {

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2col(benchmark::State& state) {
  Rng rng(2);
  const Tensor x = Tensor::randn({8, 16, 16, 16}, rng);
  const ConvGeometry g{16, 16, 16, 3, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(im2col(x, g));
  }
}
BENCHMARK(BM_Im2col);

void BM_CrossbarWrite(benchmark::State& state) {
  CrossbarConfig cfg;
  cfg.rows = 128;
  cfg.cols = 128;
  Crossbar xb(cfg, EnduranceModel::unlimited(), Rng(3));
  std::size_t i = 0;
  for (auto _ : state) {
    xb.write((i / 128) % 128, i % 128, 0.5);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CrossbarWrite);

void BM_EffectiveRebuild(benchmark::State& state) {
  RcsConfig cfg;
  cfg.tile_rows = cfg.tile_cols = 128;
  cfg.inject_fabrication = false;
  Rng wrng(4);
  CrossbarWeightStore store(cfg, Tensor::randn({256, 128}, wrng, 0.05f),
                            Rng(5));
  for (auto _ : state) {
    store.invalidate();
    benchmark::DoNotOptimize(store.effective());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256 * 128);
}
BENCHMARK(BM_EffectiveRebuild);

void BM_DetectionPass(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.write_noise_sigma = 0.01;
  Crossbar xb(cfg, EnduranceModel::unlimited(), Rng(6));
  Rng rng(7);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);
  FaultInjectionConfig fc;
  fc.fraction = 0.1;
  inject_fabrication_faults(xb, fc, rng);
  const QuiescentVoltageDetector det(DetectorConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.detect(xb));
  }
}
BENCHMARK(BM_DetectionPass)->Arg(128)->Arg(256);

void BM_RemapSolver(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto algo = static_cast<RemapAlgorithm>(state.range(1));
  Rng crng(8);
  InterfaceCost cost(m);
  for (std::size_t j = 0; j < m; ++j)
    for (std::size_t p = 0; p < m; ++p) cost.add(j, p, crng.uniform(0, 10));
  RemapConfig cfg;
  cfg.algorithm = algo;
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_assignment(cost, cfg, rng));
  }
}
BENCHMARK(BM_RemapSolver)
    ->Args({64, static_cast<int>(RemapAlgorithm::kGreedySwap)})
    ->Args({64, static_cast<int>(RemapAlgorithm::kGenetic)})
    ->Args({64, static_cast<int>(RemapAlgorithm::kHungarian)})
    ->Args({128, static_cast<int>(RemapAlgorithm::kHungarian)});

}  // namespace

BENCHMARK_MAIN();
