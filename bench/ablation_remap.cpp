// ABL_REMAP — ablation of the §5.2 re-mapping search: compares no re-map,
// the paper's random-swap search, a genetic algorithm, and the exact
// Hungarian assignment, under both pruning granularities (unstructured
// magnitude pruning as in Han et al. [8], and structured whole-neuron
// pruning, which is what neuron re-ordering can actually align with
// column-structured faults — see DESIGN.md §5).
//
// Scenario: FC-only mapping with line-defect faults (dead columns), the
// spatially structured pattern where placement matters.
#include <iostream>

#include "bench_util.hpp"

using namespace refit;
using namespace refit::bench;

namespace {

struct Outcome {
  double peak = 0.0;
  double cost_before = 0.0;
  double cost_after = 0.0;
};

Outcome run_one(const Dataset& data, const VggMiniConfig& vc,
                RemapAlgorithm algo, bool structured, bool remap_enabled,
                std::uint64_t seed) {
  const std::size_t iters = scaled(800);
  FtFlowConfig cfg = cnn_flow(iters);
  cfg.threshold_training = true;
  cfg.detection_enabled = true;
  cfg.detection_period = iters / 6;
  cfg.prune.enabled = true;
  cfg.prune.fc_sparsity = 0.3;
  cfg.prune.conv_sparsity = 0.0;
  cfg.prune.structured = structured;
  cfg.prune.neuron_sparsity = 0.3;
  cfg.remap_enabled = remap_enabled;
  cfg.remap.algorithm = algo;

  RcsConfig rc = rcs_defaults();
  rc.tile_rows = rc.tile_cols = 128;
  rc.inject_fabrication = true;
  rc.fabrication.fraction = 0.40;
  rc.fabrication.spatial = SpatialDistribution::kLineDefects;

  Rng rng(2 + seed);
  RcsSystem sys(rc, Rng(42 + seed));
  Network net = make_vgg_mini(vc, software_store_factory(), sys.factory(),
                              rng);
  const TrainingResult r = run_training(net, &sys, data, cfg, 3 + seed);
  Outcome o;
  o.peak = r.peak_accuracy;
  for (const auto& ph : r.phases) {
    o.cost_before += ph.remap_cost_before;
    o.cost_after += ph.remap_cost_after;
  }
  return o;
}

/// Two-seed average: single 40%-fault training runs are noisy.
Outcome run_case(const Dataset& data, const VggMiniConfig& vc,
                 RemapAlgorithm algo, bool structured, bool remap_enabled) {
  Outcome acc;
  const int seeds = 2;
  for (int s = 0; s < seeds; ++s) {
    const Outcome o = run_one(data, vc, algo, structured, remap_enabled,
                              static_cast<std::uint64_t>(s) * 100);
    acc.peak += o.peak / seeds;
    acc.cost_before += o.cost_before / seeds;
    acc.cost_after += o.cost_after / seeds;
  }
  return acc;
}

}  // namespace

int main() {
  const Dataset data = cifar_like();
  const VggMiniConfig vc = vgg_mini_config();

  SeriesPrinter out(std::cout, "ABL_REMAP re-mapping search ablation");
  out.paper_reference(
      "the paper uses a GA over random neuron exchanges; we add greedy "
      "hill-climbing and an exact Hungarian solver as bounds; collision "
      "cost (Dist(P,F), Eq. 3) should fall none < greedy ~ GA < Hungarian");
  out.header({"structured_prune", "algorithm", "peak_accuracy",
              "collision_cost_before", "collision_cost_after"});

  const struct {
    RemapAlgorithm algo;
    double id;
    bool remap;
  } algos[] = {
      {RemapAlgorithm::kNone, 0.0, false},
      {RemapAlgorithm::kGreedySwap, 1.0, true},
      {RemapAlgorithm::kGenetic, 2.0, true},
      {RemapAlgorithm::kHungarian, 3.0, true},
  };

  for (const bool structured : {false, true}) {
    for (const auto& a : algos) {
      const Outcome o = run_case(data, vc, a.algo, structured, a.remap);
      out.row({structured ? 1.0 : 0.0, a.id, o.peak, o.cost_before,
               o.cost_after});
    }
  }
  out.comment("algorithm ids: 0=none 1=greedy-swap 2=genetic 3=hungarian");
  return 0;
}
