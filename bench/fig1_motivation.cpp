// FIG1 — reproduction of Fig. 1 (motivational example): training accuracy
// versus iterations for the CNN on the CIFAR-like task, comparing the ideal
// fault-free case against plain on-line training with 10 % / 30 % initial
// hard faults plus low-endurance cells.
//
// Endurance scaling (DESIGN.md §4): the paper's low-endurance cells average
// 5×10⁶ writes against 5×10⁶ training iterations — a budget of ~1 write per
// cell per iteration — so we set the endurance mean to 0.8× our iteration
// count (σ = 0.3 mean) to land in the same wear-out regime.
#include <iostream>

#include "bench_util.hpp"

using namespace refit;
using namespace refit::bench;

int main() {
  const std::size_t iters = scaled(1200);
  const Dataset data = cifar_like();
  ScenarioBuilder scenario(data, vgg_mini_config(), cnn_flow(iters));

  auto faulty_rc = [&](double fault_fraction) {
    RcsConfig rc = rcs_defaults();
    rc.inject_fabrication = true;
    rc.fabrication.fraction = fault_fraction;
    rc.endurance = EnduranceModel::gaussian(0.8 * static_cast<double>(iters),
                                            0.24 * static_cast<double>(iters));
    return rc;
  };

  const TrainingResult ideal = scenario.run(FtBaseline::kIdeal);
  const TrainingResult f10 =
      scenario.rcs(faulty_rc(0.10)).run(FtBaseline::kOriginal);
  const TrainingResult f30 =
      scenario.rcs(faulty_rc(0.30)).run(FtBaseline::kOriginal);

  SeriesPrinter out(std::cout, "FIG1 training accuracy vs initial faults");
  out.paper_reference(
      "ideal reaches 85.2%; 10% faults + limited endurance peaks <40% and "
      "then degrades; 30% faults stays near 10% (chance)");
  out.header({"iteration", "ideal", "faults10", "faults30"});
  for (std::size_t it : ideal.eval_iterations) {
    out.row({static_cast<double>(it), accuracy_at(ideal, it),
             accuracy_at(f10, it), accuracy_at(f30, it)});
  }
  out.comment("peak accuracies: ideal=" + format_double(ideal.peak_accuracy) +
              " faults10=" + format_double(f10.peak_accuracy) +
              " faults30=" + format_double(f30.peak_accuracy));
  out.comment("final fault fraction (10% case): " +
              format_double(f10.final_fault_fraction));
  return 0;
}
