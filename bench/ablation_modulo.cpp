// ABL_MOD — ablation of §4.2's modulo-divisor trade-off: the comparator
// reduces voltages modulo 2ⁿ to save reference-voltage hardware. Small
// divisors alias whenever a segment holds a multiple-of-divisor number of
// stuck cells (likely with clustered faults), reducing coverage; larger
// divisors recover coverage at higher hardware cost (reference count).
#include <iostream>

#include "bench_util.hpp"
#include "detect/quiescent_detector.hpp"
#include "rram/faults.hpp"

using namespace refit;
using namespace refit::bench;

int main() {
  SeriesPrinter out(std::cout, "ABL_MOD modulo divisor trade-off");
  out.paper_reference(
      "divisor 16 chosen as the coverage/hardware sweet spot; coverage "
      "increases with the divisor (faults missed when ≥divisor faults "
      "align in a tested segment)");
  out.header({"divisor", "reference_voltages", "precision", "recall"});

  const std::size_t n = scaled(256);
  for (const std::size_t divisor : {4UL, 8UL, 16UL, 32UL, 64UL}) {
    ConfusionCounts total;
    const int seeds = 3;
    for (int s = 0; s < seeds; ++s) {
      CrossbarConfig cc;
      cc.rows = n;
      cc.cols = n;
      cc.levels = 8;
      cc.write_noise_sigma = 0.01;
      Crossbar xb(cc, EnduranceModel::unlimited(),
                  Rng(7 + static_cast<std::uint64_t>(s)));
      Rng rng(100 + static_cast<std::uint64_t>(s));
      randomize_crossbar_content(xb, 0.3, 0.2, rng);
      // Dense clusters make multi-fault segments (the aliasing hazard).
      FaultInjectionConfig fc;
      fc.fraction = 0.20;
      fc.spatial = SpatialDistribution::kClustered;
      fc.clusters = 3;
      fc.cluster_sigma_fraction = 0.05;
      inject_fabrication_faults(xb, fc, rng);

      DetectorConfig dc;
      dc.test_rows_per_cycle = 32;
      dc.modulo_divisor = divisor;
      total += evaluate_detection(
          xb, QuiescentVoltageDetector(dc).detect(xb).predicted);
    }
    out.row({static_cast<double>(divisor), static_cast<double>(divisor),
             total.precision(), total.recall()});
  }
  return 0;
}
