// TAB_THR — reproduction of §5.1's threshold-training statistics:
//   (1) ~90 % of per-iteration weight updates fall below θ = 0.01·δw_max,
//   (2) the average cell lifetime improves ~15× (writes cut to ~6 %),
//   (3) the number of training iterations to reach the same accuracy grows
//       only ~1.2×,
// measured on both paper benchmarks: the 784×100×10 MLP (MNIST-like) and
// the VGG-mini CNN (CIFAR-like).
#include <iostream>

#include "bench_util.hpp"

using namespace refit;
using namespace refit::bench;

namespace {

struct Row {
  const char* model;
  double below_threshold;  ///< fraction of updates needing no write
  double write_reduction;  ///< baseline writes / threshold writes
  double iteration_ratio;  ///< iterations to target acc., thr / baseline
};

/// Iterations needed to first reach `target` accuracy (0 if never).
double iters_to(const TrainingResult& r, double target) {
  for (std::size_t i = 0; i < r.eval_iterations.size(); ++i) {
    if (r.eval_accuracy[i] >= target)
      return static_cast<double>(r.eval_iterations[i]);
  }
  return 0.0;
}

Row measure(const char* model, Network&& base_net, Network&& thr_net,
            RcsSystem& base_sys, RcsSystem& thr_sys, const Dataset& data,
            FtFlowConfig cfg) {
  cfg.threshold_training = false;
  const TrainingResult base = run_training(base_net, &base_sys, data, cfg, 3);
  cfg.threshold_training = true;
  const TrainingResult thr = run_training(thr_net, &thr_sys, data, cfg, 3);

  const double target = 0.95 * base.peak_accuracy;
  const double it_base = iters_to(base, target);
  const double it_thr = iters_to(thr, target);
  Row row{};
  row.model = model;
  row.below_threshold = thr.suppression_ratio();
  row.write_reduction =
      static_cast<double>(base.updates_written) /
      static_cast<double>(std::max<std::uint64_t>(1, thr.updates_written));
  row.iteration_ratio = (it_base > 0 && it_thr > 0) ? it_thr / it_base : 0.0;
  return row;
}

}  // namespace

int main() {
  SeriesPrinter out(std::cout, "TAB_THR threshold-training statistics");
  out.paper_reference(
      "~90% of deltas below 0.01*max; ~15x average lifetime (writes to "
      "~6%); ~1.2x more iterations to converge");
  out.header({"model", "fraction_below_threshold", "write_reduction_x",
              "iteration_ratio"});

  // No faults / unlimited endurance: we isolate the pure write statistics.
  // Updates are per-sample (batch 1) — the paper's on-line training regime
  // (5×10⁶ iterations over 50k images), which is what makes the
  // per-iteration δw distribution heavy-tailed.
  const RcsConfig rc = rcs_defaults();

  {
    const Dataset data = mnist_like();
    const std::size_t iters = scaled(3000);
    RcsSystem s1(rc, Rng(42)), s2(rc, Rng(42));
    Rng r1(2), r2(2);
    FtFlowConfig cfg = mlp_flow(iters);
    cfg.batch_size = 1;
    cfg.lr = LrSchedule{0.02, 0.5, iters / 2, 1e-4};
    const Row row = measure(
        "mlp_784_100_10", make_mlp({784, 100, 10}, s1.factory(), r1),
        make_mlp({784, 100, 10}, s2.factory(), r2), s1, s2, data, cfg);
    out.row(row.model, {row.below_threshold, row.write_reduction,
                        row.iteration_ratio});
  }
  {
    const Dataset data = cifar_like();
    const std::size_t iters = scaled(2500);
    RcsSystem s1(rc, Rng(43)), s2(rc, Rng(43));
    Rng r1(2), r2(2);
    const VggMiniConfig vc = vgg_mini_config();
    FtFlowConfig cfg = cnn_flow(iters);
    cfg.batch_size = 1;
    cfg.lr = LrSchedule{0.01, 0.5, iters / 2, 1e-4};
    const Row row = measure(
        "vgg_mini_cifar",
        make_vgg_mini(vc, s1.factory(), s1.factory(), r1),
        make_vgg_mini(vc, s2.factory(), s2.factory(), r2), s1, s2, data,
        cfg);
    out.row(row.model, {row.below_threshold, row.write_reduction,
                        row.iteration_ratio});
  }
  return 0;
}
