// TAB_SENS — reproduction of §6.4's sensitivity claims: sweeping the
// initial hard-fault ratio shows that Conv layers are fragile (the
// entire-CNN case collapses towards chance once >20-30 % of cells are
// faulty) while the FC-only mapping stays usable up to ~50 %.
#include <iostream>

#include "bench_util.hpp"

using namespace refit;
using namespace refit::bench;

int main() {
  const std::size_t iters = scaled(800);
  const Dataset data = cifar_like();
  const VggMiniConfig vc = vgg_mini_config();
  const FtFlowConfig cfg = cnn_flow(iters);

  SeriesPrinter out(std::cout, "TAB_SENS accuracy vs initial fault ratio");
  out.paper_reference(
      "entire-CNN drops to ~10% beyond 20% faulty cells; FC-only only "
      "degrades once the fault ratio exceeds ~50%");
  out.header({"fault_fraction", "entire_cnn_peak", "fc_only_peak"});

  for (const double fault : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    RcsConfig rc = rcs_defaults();
    rc.inject_fabrication = fault > 0.0;
    rc.fabrication.fraction = fault;

    double entire = 0.0, fc_only = 0.0;
    {
      Rng rng(2);
      RcsSystem sys(rc, Rng(42));
      Network net = make_vgg_mini(vc, sys.factory(), sys.factory(), rng);
      entire = run_training(net, &sys, data, cfg, 3).peak_accuracy;
    }
    {
      Rng rng(2);
      RcsSystem sys(rc, Rng(42));
      Network net = make_vgg_mini(vc, software_store_factory(),
                                  sys.factory(), rng);
      fc_only = run_training(net, &sys, data, cfg, 3).peak_accuracy;
    }
    out.row({fault, entire, fc_only});
  }
  return 0;
}
