// Shared benchmark-harness helpers (see bench_util.hpp).
#include "bench_util.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "obs/clock.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace refit::bench {

bool fast_mode() {
  const char* v = std::getenv("REFIT_FAST");
  return v != nullptr && v[0] == '1';
}

std::size_t scaled(std::size_t n) {
  return fast_mode() ? std::max<std::size_t>(1, n / 4) : n;
}

Dataset cifar_like(std::size_t train, std::size_t test, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.train_size = scaled(train);
  cfg.test_size = scaled(test);
  cfg.noise_stddev = 0.35f;
  Rng rng(seed);
  return make_synthetic_cifar(cfg, rng, 16);
}

Dataset mnist_like(std::size_t train, std::size_t test, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.train_size = scaled(train);
  cfg.test_size = scaled(test);
  cfg.noise_stddev = 0.3f;
  cfg.background_clip = 0.4f;
  Rng rng(seed);
  return make_synthetic_mnist(cfg, rng);
}

VggMiniConfig vgg_mini_config() {
  return VggMiniConfig{};  // 4 conv (3×3) + 3 FC on 16×16×3, 10 classes
}

RcsConfig rcs_defaults() {
  RcsConfig cfg;
  cfg.tile_rows = 128;
  cfg.tile_cols = 128;
  cfg.levels = 8;
  cfg.write_noise_sigma = 0.01;
  cfg.inject_fabrication = false;
  return cfg;
}

FtFlowConfig cnn_flow(std::size_t iterations) {
  FtFlowConfig cfg;
  cfg.iterations = iterations;
  cfg.batch_size = 8;
  cfg.lr = LrSchedule{0.03, 0.5, std::max<std::size_t>(1, iterations / 3),
                      1e-4};
  cfg.eval_period = std::max<std::size_t>(1, iterations / 20);
  cfg.eval_samples = 512;
  cfg.threshold_training = false;
  return cfg;
}

FtFlowConfig mlp_flow(std::size_t iterations) {
  FtFlowConfig cfg = cnn_flow(iterations);
  cfg.lr = LrSchedule{0.05, 0.5, std::max<std::size_t>(1, iterations / 2),
                      1e-4};
  return cfg;
}

TrainingResult run_training(Network& net, RcsSystem* rcs, const Dataset& data,
                            const FtFlowConfig& cfg, std::uint64_t seed) {
  FtTrainer trainer(cfg);
  return trainer.train(net, rcs, data, Rng(seed));
}

TrainingResult ScenarioBuilder::run(FtBaseline baseline) const {
  const FtFlowConfig cfg = FtTrainer::baseline_config(baseline, flow_);
  Rng net_rng(2);
  if (baseline == FtBaseline::kIdeal) {
    Network net = make_vgg_mini(model_, software_store_factory(),
                                software_store_factory(), net_rng);
    return run_training(net, nullptr, *data_, cfg, 3);
  }
  RcsSystem sys(rcs_, Rng(42));
  const StoreFactory conv =
      fc_only_ ? software_store_factory() : sys.factory();
  Network net = make_vgg_mini(model_, conv, sys.factory(), net_rng);
  return run_training(net, &sys, *data_, cfg, 3);
}

double accuracy_at(const TrainingResult& r, std::size_t iteration) {
  // Last recorded evaluation at or before `iteration`.
  double acc = 0.0;
  for (std::size_t i = 0; i < r.eval_iterations.size(); ++i) {
    if (r.eval_iterations[i] <= iteration) acc = r.eval_accuracy[i];
  }
  return acc;
}

ObsOptions init_obs(int argc, char** argv) {
  ObsOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      opts.trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      opts.metrics_out = arg.substr(14);
    } else if (arg.rfind("--timeseries-out=", 0) == 0) {
      opts.timeseries_out = arg.substr(17);
    } else if (arg.rfind("--events-out=", 0) == 0) {
      opts.events_out = arg.substr(13);
    } else if (arg == "--manual-clock") {
      opts.manual_clock = true;
    }
  }
  if (opts.trace_out.empty()) {
    if (const char* env = std::getenv("REFIT_TRACE_OUT")) opts.trace_out = env;
  }
  if (opts.metrics_out.empty()) {
    if (const char* env = std::getenv("REFIT_METRICS_OUT"))
      opts.metrics_out = env;
  }
  if (opts.timeseries_out.empty()) {
    if (const char* env = std::getenv("REFIT_TIMESERIES_OUT"))
      opts.timeseries_out = env;
  }
  if (opts.events_out.empty()) {
    if (const char* env = std::getenv("REFIT_EVENTS_OUT"))
      opts.events_out = env;
  }
  if (!opts.manual_clock) {
    const char* env = std::getenv("REFIT_MANUAL_CLOCK");
    opts.manual_clock = env != nullptr && env[0] == '1';
  }
  if (opts.manual_clock) {
    // Leaked like the rest of the obs state: instrumented threads may
    // still read the clock during process teardown.
    static obs::ManualClock* manual = new obs::ManualClock();
    obs::set_clock(manual);
  }
  if (opts.enabled()) obs::MetricsRegistry::instance().set_enabled(true);
  if (!opts.trace_out.empty()) obs::Tracer::global().set_enabled(true);
  if (!opts.timeseries_out.empty()) {
    obs::TimeseriesRecorder::global().set_enabled(true);
  }
  if (!opts.events_out.empty()) obs::EventLog::global().set_enabled(true);
  return opts;
}

BenchProvenance collect_provenance() {
  BenchProvenance p;
  p.hardware_threads = std::thread::hardware_concurrency();
  std::ifstream is("/proc/cpuinfo");
  std::string line;
  p.cpu_model = "unknown";
  while (std::getline(is, line)) {
    if (line.find("model name") == std::string::npos) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    std::string name = line.substr(colon + 1);
    const auto first = name.find_first_not_of(" \t");
    p.cpu_model = first == std::string::npos ? name : name.substr(first);
    break;
  }
  p.compiler = __VERSION__;
#ifdef REFIT_BENCH_CXX_FLAGS
  p.cxx_flags = REFIT_BENCH_CXX_FLAGS;
#endif
#ifdef REFIT_BENCH_BUILD_TYPE
  p.build_type = REFIT_BENCH_BUILD_TYPE;
#endif
  return p;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_provenance_header(std::ostream& os, const std::string& bench_name,
                             const BenchProvenance& p) {
  os << "{\n";
  os << "  \"bench\": \"" << json_escape(bench_name) << "\",\n";
  os << "  \"provenance\": {\n";
  os << "    \"hardware_threads\": " << p.hardware_threads << ",\n";
  os << "    \"cpu_model\": \"" << json_escape(p.cpu_model) << "\",\n";
  os << "    \"compiler\": \"" << json_escape(p.compiler) << "\"";
  if (!p.cxx_flags.empty()) {
    os << ",\n    \"cxx_flags\": \"" << json_escape(p.cxx_flags) << "\"";
  }
  if (!p.build_type.empty()) {
    os << ",\n    \"build_type\": \"" << json_escape(p.build_type) << "\"";
  }
  os << "\n  },\n";
}

std::string bench_out_path(const std::string& default_path) {
  const char* env = std::getenv("REFIT_BENCH_OUT");
  return env != nullptr ? std::string(env) : default_path;
}

void write_obs(const ObsOptions& opts) {
  if (!opts.metrics_out.empty()) {
    std::ofstream os(opts.metrics_out);
    if (opts.metrics_out.size() >= 4 &&
        opts.metrics_out.compare(opts.metrics_out.size() - 4, 4, ".csv") ==
            0) {
      obs::MetricsRegistry::instance().write_csv(os);
    } else {
      obs::MetricsRegistry::instance().write_json(os);
    }
  }
  if (!opts.trace_out.empty()) {
    std::ofstream os(opts.trace_out);
    obs::Tracer::global().write_chrome_json(os);
  }
  if (!opts.timeseries_out.empty()) {
    std::ofstream os(opts.timeseries_out);
    obs::TimeseriesRecorder::global().write_jsonl(os);
  }
  if (!opts.events_out.empty()) {
    std::ofstream os(opts.events_out);
    obs::EventLog::global().write_jsonl(os);
  }
}

}  // namespace refit::bench
