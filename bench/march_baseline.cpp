// TAB_MARCH — the paper's §1/§2.2 comparison against traditional
// March-style testing: per-cell testing achieves perfect accuracy but its
// test time grows with the *cell count* (quadratic in the crossbar side),
// while the quiescent-voltage comparison method scales with the row count
// and stays accurate enough for the training flow. March testing also
// consumes several endurance-relevant write pulses per healthy cell.
#include <iostream>

#include "bench_util.hpp"
#include "detect/march_test.hpp"
#include "detect/quiescent_detector.hpp"
#include "rram/faults.hpp"

using namespace refit;
using namespace refit::bench;

int main() {
  SeriesPrinter out(std::cout, "TAB_MARCH march vs quiescent-voltage test");
  out.paper_reference(
      "traditional test time increases quadratically with the crossbar "
      "rows (refs [9][12]), which makes it unusable for on-line testing; "
      "the quiescent-voltage method scales linearly");
  out.header({"crossbar_size", "march_cycles", "march_writes",
              "march_precision", "march_recall", "qvc_cycles", "qvc_writes",
              "qvc_precision", "qvc_recall"});

  const std::vector<std::size_t> sizes =
      fast_mode() ? std::vector<std::size_t>{64, 128}
                  : std::vector<std::size_t>{64, 128, 256, 512};
  for (const std::size_t n : sizes) {
    CrossbarConfig cc;
    cc.rows = cc.cols = n;
    cc.levels = 8;
    cc.write_noise_sigma = 0.01;
    Crossbar a(cc, EnduranceModel::unlimited(), Rng(n));
    Crossbar b(cc, EnduranceModel::unlimited(), Rng(n));
    Rng r1(100 + n), r2(100 + n);
    randomize_crossbar_content(a, 0.3, 0.2, r1);
    randomize_crossbar_content(b, 0.3, 0.2, r2);
    FaultInjectionConfig fc;
    fc.fraction = 0.10;
    Rng f1(200 + n), f2(200 + n);
    inject_fabrication_faults(a, fc, f1);
    inject_fabrication_faults(b, fc, f2);

    const MarchOutcome march = march_test(a);
    const ConfusionCounts mc = evaluate_detection(a, march.predicted);

    DetectorConfig dc;
    dc.test_rows_per_cycle = 8;
    const DetectionOutcome qvc = QuiescentVoltageDetector(dc).detect(b);
    const ConfusionCounts qc = evaluate_detection(b, qvc.predicted);

    out.row({static_cast<double>(n), static_cast<double>(march.cycles),
             static_cast<double>(march.device_writes), mc.precision(),
             mc.recall(), static_cast<double>(qvc.cycles),
             static_cast<double>(qvc.device_writes), qc.precision(),
             qc.recall()});
  }
  return 0;
}
