// ABL_IR — extension ablation: interconnect IR drop versus crossbar size.
// Wire resistance attenuates each cell's contribution to the analog
// read-out proportionally to its distance from the drivers, which (a)
// shrinks far cells' effective weights and (b) erodes the fault signatures
// the quiescent-voltage comparator relies on. This bound on practical
// crossbar sizes is why the paper evaluates 128²…1024² arrays.
#include <iostream>

#include "bench_util.hpp"
#include "detect/quiescent_detector.hpp"
#include "rram/faults.hpp"

using namespace refit;
using namespace refit::bench;

int main() {
  SeriesPrinter out(std::cout, "ABL_IR wire-resistance (IR drop) impact");
  out.paper_reference(
      "not evaluated in the paper (ideal interconnect assumed); included "
      "as a physical extension — detection recall collapses once far "
      "cells' one-level signature falls below the ADC resolution");
  out.header({"crossbar_size", "wire_ratio", "mean_attenuation_far_corner",
              "precision", "recall"});

  const std::vector<std::size_t> sizes =
      fast_mode() ? std::vector<std::size_t>{64, 128}
                  : std::vector<std::size_t>{64, 128, 256, 512};
  for (const std::size_t n : sizes) {
    for (const double ratio : {0.0, 0.0005, 0.002, 0.008}) {
      CrossbarConfig cc;
      cc.rows = cc.cols = n;
      cc.levels = 8;
      cc.write_noise_sigma = 0.01;
      cc.wire_resistance_ratio = ratio;
      Crossbar xb(cc, EnduranceModel::unlimited(), Rng(n + 7));
      Rng rng(n + 11);
      randomize_crossbar_content(xb, 0.3, 0.2, rng);
      FaultInjectionConfig fc;
      fc.fraction = 0.10;
      inject_fabrication_faults(xb, fc, rng);

      DetectorConfig dc;
      dc.test_rows_per_cycle = 8;
      const DetectionOutcome o = QuiescentVoltageDetector(dc).detect(xb);
      const ConfusionCounts m = evaluate_detection(xb, o.predicted);
      out.row({static_cast<double>(n), ratio,
               xb.attenuation(n - 1, n - 1), m.precision(), m.recall()});
    }
  }
  return 0;
}
