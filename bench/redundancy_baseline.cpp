// TAB_REDUND — the paper's §1 argument against traditional redundancy:
// because the RCS compute unit is an entire column, a single stuck cell
// condemns the column; at realistic fault rates virtually every column is
// condemned, and spare columns (from the same process) are rarely clean.
// This table sweeps the cell fault rate and the spare budget and reports
// the residual faulty-column fraction after repair.
#include <iostream>

#include "bench_util.hpp"
#include "rram/column_repair.hpp"
#include "rram/faults.hpp"

using namespace refit;
using namespace refit::bench;

int main() {
  SeriesPrinter out(std::cout, "TAB_REDUND redundant-column repair baseline");
  out.paper_reference(
      "traditional redundancy-based methods cannot target RCS hard faults: "
      "the basic unit is an entire column, and redundant columns may also "
      "contain (and give rise to) hard faults (sec 1)");
  out.header({"cell_fault_fraction", "spare_columns",
              "faulty_column_fraction", "usable_spares",
              "residual_faulty_column_fraction"});

  const std::size_t n = scaled(128);
  for (const double fault : {0.001, 0.005, 0.02, 0.10}) {
    for (const std::size_t spares : {8UL, 32UL, 128UL}) {
      double faulty_frac = 0.0, usable = 0.0, residual = 0.0;
      const int seeds = 3;
      for (int s = 0; s < seeds; ++s) {
        CrossbarConfig cc;
        cc.rows = cc.cols = n;
        Crossbar xb(cc, EnduranceModel::unlimited(),
                    Rng(13 + static_cast<std::uint64_t>(s)));
        FaultInjectionConfig fc;
        fc.fraction = fault;
        Rng rng(100 + static_cast<std::uint64_t>(s));
        inject_fabrication_faults(xb, fc, rng);
        Rng rrng(200 + static_cast<std::uint64_t>(s));
        const RepairOutcome o =
            simulate_column_repair(xb, spares, fault, rrng);
        faulty_frac += static_cast<double>(o.faulty_columns) /
                       static_cast<double>(o.total_columns) / seeds;
        usable += static_cast<double>(o.usable_spares) / seeds;
        residual += o.residual_column_fraction() / seeds;
      }
      out.row({fault, static_cast<double>(spares), faulty_frac, usable,
               residual});
    }
  }
  return 0;
}
