// TAB_RETRAIN — reproduction of §6.4's retrain-count comparison: how many
// times can the same RCS be trained for a new application before training
// stops converging?
//
// Paper: with high-endurance cells (10⁸) the original method survives ~10
// trainings while threshold training survives >150 (~15×); with 10⁷ cells
// the original fails in the second run while threshold training reaches
// ~27.
//
// Scaling (DESIGN.md §4): endurance is expressed as a multiple of one
// training run's iteration count. "High endurance" = 20× runs' iterations
// (the paper's 10⁸ / 5×10⁶ ratio), "mid endurance" = 2×.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

using namespace refit;
using namespace refit::bench;

namespace {

/// Train fresh networks on the same (aging) RCS until the peak accuracy of
/// a run falls below `floor_acc`; returns the number of successful runs.
std::size_t count_retrains(double endurance_multiple, bool threshold,
                           std::size_t run_iters, double floor_acc,
                           std::size_t cap) {
  RcsConfig rc = rcs_defaults();
  rc.tile_rows = rc.tile_cols = 64;
  rc.endurance = EnduranceModel::gaussian(
      endurance_multiple * static_cast<double>(run_iters),
      0.3 * endurance_multiple * static_cast<double>(run_iters));
  RcsSystem sys(rc, Rng(42));

  FtFlowConfig cfg = mlp_flow(run_iters);
  cfg.batch_size = 1;  // per-sample on-line updates, as in the paper
  cfg.lr = LrSchedule{0.02, 0.5, run_iters / 2, 1e-4};
  cfg.eval_period = run_iters / 4;
  cfg.eval_samples = 256;
  cfg.threshold_training = threshold;

  // First run creates the stores through the factory; later runs re-assign
  // fresh weights onto the same aging crossbars.
  Rng net_rng(2);
  Network net = make_mlp({784, 64, 10}, sys.factory(), net_rng);

  // One fixed task per endurance setting: using a fresh random task per
  // run would confound the endurance limit with task difficulty. "Another
  // application" is modeled by re-initializing the weights.
  const Dataset data = mnist_like(1024, 256, 100);
  std::size_t successes = 0;
  for (std::size_t run = 0; run < cap; ++run) {
    Rng wrng(200 + run);
    for (MatrixLayer* ml : net.matrix_layers()) {
      const Shape s = ml->weights().shape();
      const float stddev = std::sqrt(2.0f / static_cast<float>(s[0]));
      ml->weights().assign(Tensor::randn(s, wrng, stddev));
    }
    const TrainingResult r =
        run_training(net, &sys, data, cfg, 300 + run);
    if (r.peak_accuracy < floor_acc) break;
    ++successes;
  }
  return successes;
}

}  // namespace

int main() {
  SeriesPrinter out(std::cout, "TAB_RETRAIN retrainability vs endurance");
  out.paper_reference(
      "high endurance (1e8): original ~10 trainings vs threshold >150 "
      "(~15x); 1e7 endurance: original fails in run 2, threshold ~27");
  out.header({"endurance_multiple", "method_threshold", "successful_runs"});

  const std::size_t run_iters = scaled(400);
  const double floor_acc = 0.7;
  const std::size_t cap = fast_mode() ? 30 : 150;

  for (const double endurance : {20.0, 2.0}) {
    for (const bool threshold : {false, true}) {
      const std::size_t runs =
          count_retrains(endurance, threshold, run_iters, floor_acc, cap);
      out.row({endurance, threshold ? 1.0 : 0.0,
               static_cast<double>(runs)});
    }
  }
  out.comment("successful_runs capped at " + std::to_string(cap));
  out.comment("endurance_multiple = mean cell endurance / iterations per run");
  return 0;
}
