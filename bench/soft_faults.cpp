// TAB_SOFT — the paper's §1/§2.2 motivation (after Prezioso et al. [7]):
// *on-line* training tolerates soft faults (write variation, quantization)
// because the network learns through the actual hardware, while *off-line*
// training — train in software, then program the trained weights onto the
// array once — accumulates uncompensated mapping error. This bench sweeps
// the analog write-noise level and compares both deployment styles.
#include <iostream>

#include "bench_util.hpp"
#include "nn/network_io.hpp"

#include <sstream>

using namespace refit;
using namespace refit::bench;

int main() {
  const std::size_t iters = scaled(1200);
  const Dataset data = mnist_like();

  SeriesPrinter out(std::cout, "TAB_SOFT on-line vs off-line under soft faults");
  out.paper_reference(
      "on-line training tolerates soft faults via the algorithm's inherent "
      "fault tolerance (sec 1, ref [7]); off-line mapping suffers the full "
      "variation error");
  out.header({"write_noise_sigma", "levels", "offline_accuracy",
              "online_accuracy"});

  FtFlowConfig cfg = mlp_flow(iters);
  cfg.batch_size = 8;

  // One software-trained reference network, shared by every offline case.
  Rng sw_rng(2);
  Network sw_net = make_mlp({784, 24, 10}, software_store_factory(), sw_rng);
  run_training(sw_net, nullptr, data, cfg, 3);
  std::stringstream weights;
  save_network_weights(sw_net, weights);

  // A capacity-tight MLP: over-provisioned networks mask the effect (both
  // styles saturate), which is itself part of the story.
  const struct {
    double sigma;
    std::size_t levels;
  } cases[] = {{0.0, 8}, {0.03, 8}, {0.08, 8}, {0.05, 4}, {0.05, 2}};

  for (const auto& c : cases) {
    RcsConfig rc = rcs_defaults();
    rc.write_noise_sigma = c.sigma;
    rc.levels = c.levels;

    // Off-line: program the software-trained weights once and evaluate.
    double offline = 0.0;
    {
      RcsSystem sys(rc, Rng(42));
      Rng rng(2);
      Network net = make_mlp({784, 24, 10}, sys.factory(), rng);
      std::stringstream ws(weights.str());
      load_network_weights(net, ws);
      offline = net.evaluate(data.test_images, data.test_labels);
    }

    // On-line: train through the noisy hardware.
    double online = 0.0;
    {
      RcsSystem sys(rc, Rng(42));
      Rng rng(2);
      Network net = make_mlp({784, 24, 10}, sys.factory(), rng);
      online = run_training(net, &sys, data, cfg, 3).peak_accuracy;
    }
    out.row({c.sigma, static_cast<double>(c.levels), offline, online});
  }
  return 0;
}
