// BENCH_device — device/encoding scenario families (grown from the old
// TAB_SOFT single-table bench; the §1/§2.2 on-line-vs-off-line story is
// family A).
//
//   A "encoding-noise": single-cell vs differential-pair encoding under
//     programming noise; off-line mapping (train in software, program
//     once) vs on-line training through the hardware. The paper's claim
//     (after Prezioso et al. [7]): on-line training absorbs soft faults.
//   B "drift": conductance relaxation toward g=0 advanced by the engine's
//     device-tick phase; on-line training must keep re-programming against
//     the decay.
//   C "soft-classify": transient stuck faults injected on-line; the
//     detector's classify_soft re-test splits hard from soft, scrubs the
//     transient pins, and reports per-class precision/recall — run at 1
//     and 4 threads to demonstrate the device trajectory is deterministic
//     at any thread count.
//
// Prints the CSV series on stdout and writes BENCH_device.json (override
// the path with REFIT_BENCH_OUT) with the same provenance header as
// BENCH_backend.json. REFIT_FAST=1 shrinks workloads for smoke runs.
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "nn/network_io.hpp"

using namespace refit;
using namespace refit::bench;

namespace {

const std::vector<std::size_t> kMlpDims = {784, 24, 10};

Network make_net(const StoreFactory& factory) {
  Rng rng(2);
  return make_mlp(kMlpDims, factory, rng);
}

const char* encoding_name(EncodingKind k) {
  return k == EncodingKind::kSingleCell ? "single" : "diff";
}

/// Mean of a PhaseEvent field over the recorded detection phases.
template <typename Get>
double phase_mean(const TrainingResult& r, Get get) {
  if (r.phases.empty()) return 0.0;
  double s = 0.0;
  for (const PhaseEvent& ev : r.phases) s += get(ev);
  return s / static_cast<double>(r.phases.size());
}

}  // namespace

int main(int argc, char** argv) {
  const ObsOptions obs = init_obs(argc, argv);
  const Dataset data = mnist_like();
  const BenchProvenance prov = collect_provenance();
  std::vector<std::string> json_rows;
  const auto row_json = [&json_rows](const std::ostringstream& os) {
    json_rows.push_back(os.str());
  };

  // ---- Family A: encoding × programming noise, off-line vs on-line ------
  {
    const std::size_t iters = scaled(1200);
    FtFlowConfig cfg = mlp_flow(iters);
    cfg.batch_size = 8;

    SeriesPrinter out(std::cout,
                      "BENCH_device A: encoding/noise, on-line vs off-line");
    out.paper_reference(
        "on-line training tolerates soft faults via the algorithm's inherent "
        "fault tolerance (sec 1, ref [7]); off-line mapping suffers the full "
        "variation error");
    out.header({"encoding", "program_sigma", "offline_accuracy",
                "online_accuracy"});

    // One software-trained reference network, shared by every offline case.
    Network sw_net = make_net(software_store_factory());
    run_training(sw_net, nullptr, data, cfg, 3);
    std::stringstream weights;
    save_network_weights(sw_net, weights);

    const EncodingKind encodings[] = {EncodingKind::kSingleCell,
                                      EncodingKind::kDifferentialPair};
    const double sigmas[] = {0.0, 0.03, 0.08};
    for (const EncodingKind enc : encodings) {
      for (const double sigma : sigmas) {
        RcsConfig rc = rcs_defaults();
        rc.encoding = enc;
        rc.noise.program_sigma = sigma;

        double offline = 0.0;
        {
          RcsSystem sys(rc, Rng(42));
          Network net = make_net(sys.factory());
          std::stringstream ws(weights.str());
          load_network_weights(net, ws);
          offline = net.evaluate(data.test_images, data.test_labels);
        }
        double online = 0.0;
        {
          RcsSystem sys(rc, Rng(42));
          Network net = make_net(sys.factory());
          online = run_training(net, &sys, data, cfg, 3).peak_accuracy;
        }
        out.row({enc == EncodingKind::kSingleCell ? 0.0 : 1.0, sigma, offline,
                 online});
        std::ostringstream js;
        js << "{\"family\": \"encoding-noise\", \"encoding\": \""
           << encoding_name(enc) << "\", \"program_sigma\": " << sigma
           << ", \"offline_accuracy\": " << offline
           << ", \"online_accuracy\": " << online << ", \"threads\": 1}";
        row_json(js);
      }
    }
  }

  // ---- Family B: conductance drift under device ticks -------------------
  {
    const std::size_t iters = scaled(800);
    SeriesPrinter out(std::cout, "BENCH_device B: conductance drift");
    out.paper_reference(
        "drift/relaxation is a soft-fault source on-line training "
        "continuously compensates for (sec 2.2)");
    out.header({"drift_rate", "final_accuracy", "peak_accuracy",
                "device_writes"});

    const double rates[] = {0.0, 0.005, 0.02};
    for (const double rate : rates) {
      RcsConfig rc = rcs_defaults();
      rc.noise.drift_rate = rate;
      rc.noise.drift_target = 0.0;
      FtFlowConfig cfg = mlp_flow(iters);
      cfg.batch_size = 8;
      cfg.device_tick_period = 20;
      RcsSystem sys(rc, Rng(42));
      Network net = make_net(sys.factory());
      const TrainingResult r = run_training(net, &sys, data, cfg, 3);
      out.row({rate, r.final_accuracy, r.peak_accuracy,
               static_cast<double>(r.device_writes)});
      std::ostringstream js;
      js << "{\"family\": \"drift\", \"drift_rate\": " << rate
         << ", \"tick_period\": " << cfg.device_tick_period
         << ", \"final_accuracy\": " << r.final_accuracy
         << ", \"peak_accuracy\": " << r.peak_accuracy
         << ", \"device_writes\": " << r.device_writes << ", \"threads\": 1}";
      row_json(js);
    }
  }

  // ---- Family C: transient faults + hard/soft classification ------------
  const std::size_t max_threads = 4;
  {
    const std::size_t iters = scaled(800);
    SeriesPrinter out(std::cout,
                      "BENCH_device C: soft-fault classification");
    out.paper_reference(
        "re-test confirmation splits transient pins from permanent faults; "
        "only permanent faults are handed to re-mapping (sec 4 extension)");
    out.header({"soft_fault_rate", "threads", "hard_precision", "hard_recall",
                "soft_precision", "soft_recall", "final_accuracy"});

    const double rates[] = {0.0005, 0.002};
    for (const double rate : rates) {
      double acc_serial = 0.0;
      for (const std::size_t threads : {std::size_t{1}, max_threads}) {
        ThreadPool::set_global_threads(threads);
        RcsConfig rc = rcs_defaults();
        rc.inject_fabrication = true;
        rc.fabrication.fraction = 0.02;
        rc.noise.soft_fault_rate = rate;
        rc.noise.soft_fault_ttl = 3;
        FtFlowConfig cfg = mlp_flow(iters);
        cfg.batch_size = 8;
        cfg.device_tick_period = 10;
        cfg.detection_enabled = true;
        cfg.detection_period = std::max<std::size_t>(1, iters / 4);
        cfg.detector.classify_soft = true;
        RcsSystem sys(rc, Rng(42));
        Network net = make_net(sys.factory());
        const TrainingResult r = run_training(net, &sys, data, cfg, 3);
        const double hp =
            phase_mean(r, [](const PhaseEvent& e) { return e.hard_precision; });
        const double hr =
            phase_mean(r, [](const PhaseEvent& e) { return e.hard_recall; });
        const double sp =
            phase_mean(r, [](const PhaseEvent& e) { return e.soft_precision; });
        const double sr =
            phase_mean(r, [](const PhaseEvent& e) { return e.soft_recall; });
        if (threads == 1) acc_serial = r.final_accuracy;
        const bool deterministic =
            threads == 1 || r.final_accuracy == acc_serial;
        out.row({rate, static_cast<double>(threads), hp, hr, sp, sr,
                 r.final_accuracy});
        std::ostringstream js;
        js << "{\"family\": \"soft-classify\", \"soft_fault_rate\": " << rate
           << ", \"threads\": " << threads << ", \"hard_precision\": " << hp
           << ", \"hard_recall\": " << hr << ", \"soft_precision\": " << sp
           << ", \"soft_recall\": " << sr
           << ", \"final_accuracy\": " << r.final_accuracy
           << ", \"bit_identical\": " << (deterministic ? "true" : "false");
        if (threads > 1 && prov.hardware_threads < max_threads) {
          js << ", \"scaling_valid\": false";
        }
        js << "}";
        row_json(js);
      }
    }
    ThreadPool::set_global_threads(1);
  }

  // ---- Artifact ----------------------------------------------------------
  {
    const std::string path = bench_out_path("BENCH_device.json");
    std::ofstream os(path);
    // refit-det deliberate (baselined): the provenance header and
    // scaling_valid describe the measuring host and are excluded from the
    // deterministic comparison surface (result rows and bit_identical are
    // what check.sh compares).
    write_provenance_header(os, "device", prov);
    const bool scaling_valid = prov.hardware_threads >= max_threads;
    os << "  \"scaling_valid\": " << (scaling_valid ? "true" : "false")
       << ",\n";
    os << "  \"note\": \"family A: off-line vs on-line accuracy per "
          "encoding/noise level; family B: accuracy under conductance drift "
          "(engine device ticks); family C: detector hard-vs-soft "
          "classification quality, bit_identical compares the 4-thread "
          "trajectory to serial (rows carry scaling_valid: false when the "
          "host has fewer hardware threads)\",\n";
    os << "  \"results\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      os << "    " << json_rows[i] << (i + 1 < json_rows.size() ? "," : "")
         << "\n";
    }
    os << "  ]\n}\n";
    std::cerr << "wrote " << path << "\n";
  }

  write_obs(obs);
  return 0;
}
