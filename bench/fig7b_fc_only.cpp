// FIG7B — reproduction of Fig. 7(b), the FC-only case: Conv layers stay in
// software, the three FC layers live on an RCS that has already been
// trained many times — modeled as ~50 % initial hard faults with high
// remaining endurance.
//
// Paper's shape: ideal 85.2 %; original on-line training peaks at ~63 %;
// threshold training has negligible extra benefit (it only prevents *new*
// faults); the full flow (detection + pruning + re-mapping) recovers to
// ~76 %.
#include <iostream>

#include "bench_util.hpp"

using namespace refit;
using namespace refit::bench;

int main() {
  const std::size_t iters = scaled(1200);
  const Dataset data = cifar_like();

  RcsConfig rc = rcs_defaults();
  rc.inject_fabrication = true;
  rc.fabrication.fraction = 0.50;
  // High-endurance cells: wear-out is not the binding constraint here.
  rc.endurance = EnduranceModel::gaussian(20.0 * static_cast<double>(iters),
                                          6.0 * static_cast<double>(iters));

  ScenarioBuilder scenario(data, vgg_mini_config(), cnn_flow(iters));
  scenario.rcs(rc).fc_only(true);
  const TrainingResult ideal = scenario.run(FtBaseline::kIdeal);
  const TrainingResult original = scenario.run(FtBaseline::kOriginal);
  const TrainingResult threshold = scenario.run(FtBaseline::kThreshold);
  const TrainingResult full = scenario.run(FtBaseline::kFullFlow);

  SeriesPrinter out(std::cout, "FIG7B FC-only fault-tolerant training");
  out.paper_reference(
      "ideal 85.2%; original peaks ~63%; threshold training ~matches the "
      "original (negligible impact on pre-existing faults); the full FT "
      "flow recovers to ~76%");
  out.header({"iteration", "ideal", "original", "threshold", "full_ft"});
  for (std::size_t it : ideal.eval_iterations) {
    out.row({static_cast<double>(it), accuracy_at(ideal, it),
             accuracy_at(original, it), accuracy_at(threshold, it),
             accuracy_at(full, it)});
  }
  out.comment("peaks: ideal=" + format_double(ideal.peak_accuracy) +
              " original=" + format_double(original.peak_accuracy) +
              " threshold=" + format_double(threshold.peak_accuracy) +
              " full=" + format_double(full.peak_accuracy));
  if (!full.phases.empty()) {
    out.comment("first detection phase: precision=" +
                format_double(full.phases.front().precision) +
                " recall=" + format_double(full.phases.front().recall) +
                " cycles=" +
                format_double(
                    static_cast<double>(full.phases.front().cycles)));
  }
  return 0;
}
