// Micro-benchmark for the parallel compute backend (common/thread_pool.hpp).
//
// Times the pooled tensor kernels and the incremental effective-weight
// rebuild against the serial (1-thread) path at several shapes and thread
// counts, verifies the pooled outputs are bit-identical to serial, and
// writes the results as JSON (default ./BENCH_backend.json, override with
// REFIT_BENCH_OUT). Thread counts come from REFIT_BENCH_THREADS (comma
// list, default "1,2,4"); REFIT_FAST=1 shrinks repetitions.
//
// The rebuild rows cover the three regimes that matter for training:
//   rebuild_full        — every tile dirty (the seed's only mode),
//   rebuild_sparse_1pct — 1 % of cells updated at random (threshold
//                         training's surviving writes; tiles it missed are
//                         skipped),
//   rebuild_tile_local  — a delta confined to one tile (detection repair,
//                         column-repair writes): the pure algorithmic win.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/clock.hpp"
#include "rcs/crossbar_store.hpp"
#include "tensor/ops.hpp"

namespace {

using refit::CrossbarWeightStore;
using refit::RcsConfig;
using refit::Rng;
using refit::Tensor;
using refit::ThreadPool;

/// Best-of-`reps` wall-clock seconds for fn(), via the obs clock seam.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    refit::obs::Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  }
  return best;
}

struct Row {
  std::string name;
  std::size_t threads;
  double seconds;
  double speedup_vs_serial;
  bool bit_identical;
};

std::vector<std::size_t> thread_counts() {
  std::vector<std::size_t> out;
  const char* env = std::getenv("REFIT_BENCH_THREADS");
  std::stringstream ss(env != nullptr ? env : "1,2,4");
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const long v = std::strtol(tok.c_str(), nullptr, 10);
    if (v > 0) out.push_back(static_cast<std::size_t>(v));
  }
  if (out.empty()) out.push_back(1);
  return out;
}

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

RcsConfig store_config() {
  RcsConfig cfg;
  cfg.tile_rows = 128;
  cfg.tile_cols = 128;
  cfg.inject_fabrication = true;
  cfg.fabrication.fraction = 0.1;
  return cfg;
}

/// A fresh 512×512 store in a fully-rebuilt (clean) state.
std::unique_ptr<CrossbarWeightStore> make_store(std::size_t n) {
  Rng rng(7);
  Tensor w = Tensor::randn({n, n}, rng, 0.1f);
  auto store =
      std::make_unique<CrossbarWeightStore>(store_config(), w, Rng(11));
  (void)store->effective();
  return store;
}

}  // namespace

int main(int argc, char** argv) {
  const refit::bench::ObsOptions obs_opts = refit::bench::init_obs(argc, argv);
  const bool fast = std::getenv("REFIT_FAST") != nullptr &&
                    std::string(std::getenv("REFIT_FAST")) == "1";
  const int reps = fast ? 2 : 5;
  const std::size_t n = 512;
  std::vector<Row> rows;
  double sink = 0.0;  // defeats dead-code elimination

  const auto threads_list = thread_counts();

  // ---- GEMM + conv kernels ------------------------------------------------
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  const Tensor img = Tensor::randn({32, 3, 16, 16}, rng);
  refit::ConvGeometry geom;
  geom.in_channels = 3;
  geom.in_h = geom.in_w = 16;
  geom.kernel = 3;
  geom.pad = 1;

  struct Kernel {
    std::string name;
    std::function<Tensor()> run;
  };
  std::vector<std::size_t> pool_argmax;
  const std::vector<Kernel> kernels = {
      {"matmul_512", [&] { return refit::matmul(a, b); }},
      {"matmul_tn_512", [&] { return refit::matmul_tn(a, b); }},
      {"matmul_nt_512", [&] { return refit::matmul_nt(a, b); }},
      {"im2col_b32", [&] { return refit::im2col(img, geom); }},
      {"maxpool2d_b32",
       [&] { return refit::maxpool2d(img, 2, 2, pool_argmax); }},
  };

  for (const auto& kern : kernels) {
    ThreadPool::set_global_threads(1);
    const Tensor ref = kern.run();
    const double serial = time_best(reps, [&] { sink += kern.run()[0]; });
    for (const std::size_t t : threads_list) {
      ThreadPool::set_global_threads(t);
      const Tensor pooled = kern.run();
      const double secs = time_best(reps, [&] { sink += kern.run()[0]; });
      rows.push_back({kern.name, t, secs, serial / secs,
                      same_bits(ref, pooled)});
      std::cout << kern.name << " threads=" << t << " " << secs << "s ("
                << serial / secs << "x)\n";
    }
  }

  // ---- Effective-weight rebuild ------------------------------------------
  // Deltas: full (every cell), sparse 1 % scattered, and tile-local 1 %.
  Rng drng(3);
  Tensor delta_full({n, n});
  for (std::size_t i = 0; i < delta_full.numel(); ++i) {
    delta_full[i] = static_cast<float>(drng.normal(0.0, 1e-3));
  }
  Tensor delta_sparse({n, n});
  const std::size_t sparse_cells = n * n / 100;
  for (std::size_t s = 0; s < sparse_cells; ++s) {
    delta_sparse[drng.uniform_index(n * n)] =
        static_cast<float>(drng.normal(0.0, 1e-3));
  }
  Tensor delta_local({n, n});
  for (std::size_t s = 0; s < sparse_cells; ++s) {
    const std::size_t r = drng.uniform_index(128);
    const std::size_t c = drng.uniform_index(128);
    delta_local.at(r, c) = static_cast<float>(drng.normal(0.0, 1e-3));
  }

  struct RebuildCase {
    std::string name;
    const Tensor* delta;
  };
  const std::vector<RebuildCase> cases = {
      {"rebuild_full", &delta_full},
      {"rebuild_sparse_1pct", &delta_sparse},
      {"rebuild_tile_local", &delta_local},
  };
  double serial_full_rebuild = 0.0;

  for (const auto& rc : cases) {
    // Time only the rebuild triggered by effective(), not store creation.
    auto timed = [&](std::size_t t, const Tensor* ref) {
      ThreadPool::set_global_threads(t);
      double best = 1e300;
      bool bits = true;
      for (int i = 0; i < reps; ++i) {
        auto store = make_store(n);
        store->apply_delta(*rc.delta);
        refit::obs::Stopwatch sw;
        const Tensor& eff = store->effective();
        best = std::min(best, sw.seconds());
        sink += eff[0];
        if (ref != nullptr) bits = bits && same_bits(*ref, eff);
      }
      return std::make_pair(best, bits);
    };
    ThreadPool::set_global_threads(1);
    Tensor ref;
    {
      auto store = make_store(n);
      store->apply_delta(*rc.delta);
      ref = store->effective();
    }
    const double serial_rebuild = timed(1, &ref).first;
    if (rc.name == "rebuild_full") serial_full_rebuild = serial_rebuild;
    for (const std::size_t t : threads_list) {
      const auto [secs, bits] = timed(t, &ref);
      rows.push_back({rc.name, t, secs, serial_rebuild / secs, bits});
      std::cout << rc.name << " threads=" << t << " " << secs << "s ("
                << serial_rebuild / secs << "x vs same-case serial, "
                << serial_full_rebuild / secs << "x vs full serial rebuild)\n";
      // The seed implementation always rebuilt every cell, so the honest
      // "vs seed" figure for the sparse/local cases is against the full
      // serial rebuild — recorded as an extra row.
      rows.push_back({rc.name + "_vs_full_serial", t, secs,
                      serial_full_rebuild / secs, bits});
    }
  }

  // ---- Emit JSON ----------------------------------------------------------
  const char* out_env = std::getenv("REFIT_BENCH_OUT");
  const std::string path = out_env != nullptr ? out_env : "BENCH_backend.json";
  std::ofstream os(path);
  os << "{\n  \"bench\": \"backend\",\n";
  os << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ",\n";
  os << "  \"note\": \"thread speedups are bounded by hardware_threads; "
        "the *_vs_full_serial rebuild rows measure the incremental "
        "(per-tile dirty) rebuild against the seed's full rebuild\",\n";
  os << "  \"shape\": " << n << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"name\": \"" << r.name << "\", \"threads\": " << r.threads
       << ", \"seconds\": " << r.seconds << ", \"speedup_vs_serial\": "
       << r.speedup_vs_serial << ", \"bit_identical\": "
       << (r.bit_identical ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "wrote " << path << " (sink=" << sink << ")\n";
  refit::bench::write_obs(obs_opts);
  return 0;
}
