// Micro-benchmark for the parallel compute backend (common/thread_pool.hpp)
// and the packed GEMM / fused faulty-forward kernels (tensor/gemm.hpp,
// rcs/crossbar_store.hpp).
//
// Times the pooled tensor kernels against (a) the serial 1-thread path and
// (b) serial copies of the pre-blocking naive kernels, the incremental
// effective-weight rebuild, and the fused faulty forward against
// materialize-then-matmul; verifies pooled outputs are bit-identical to
// serial; and writes the results as JSON (default ./BENCH_backend.json,
// override with REFIT_BENCH_OUT). Thread counts come from
// REFIT_BENCH_THREADS (comma list, default "1,2,4"); REFIT_FAST=1 shrinks
// repetitions.
//
// GEMM-shaped rows carry achieved GFLOP/s and a roofline-style
// fraction-of-peak column, where "peak" is measured in-process by a
// register-resident multiply-add probe (same compiler, same flags, no
// memory traffic) — see docs/kernels.md for how to read these. The JSON
// header records hardware provenance; when the host has fewer hardware
// threads than the bench was asked to scale to, scaling rows are marked
// "scaling_valid": false and a loud warning is printed (the seed's numbers
// were recorded on a 1-core host, which silently invalidated every
// scaling figure).
//
// The rebuild rows cover the three regimes that matter for training:
//   rebuild_full        — every tile dirty (the seed's only mode),
//   rebuild_sparse_1pct — 1 % of cells updated at random (threshold
//                         training's surviving writes; tiles it missed are
//                         skipped),
//   rebuild_tile_local  — a delta confined to one tile (detection repair,
//                         column-repair writes): the pure algorithmic win.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/clock.hpp"
#include "rcs/crossbar_store.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace {

using refit::CrossbarWeightStore;
using refit::RcsConfig;
using refit::Rng;
using refit::Tensor;
using refit::ThreadPool;

/// Best-of-`reps` wall-clock seconds for fn(), via the obs clock seam.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    refit::obs::Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  }
  return best;
}

struct Row {
  std::string name;
  std::size_t threads;
  double seconds;
  double speedup_vs_serial;
  bool bit_identical;
  double gflops = 0.0;            ///< 0 for rows without a FLOP count
  double frac_peak = 0.0;         ///< gflops / measured single-thread peak
  double speedup_vs_naive = 0.0;  ///< 0 for rows without a naive baseline
};

std::vector<std::size_t> thread_counts() {
  std::vector<std::size_t> out;
  const char* env = std::getenv("REFIT_BENCH_THREADS");
  std::stringstream ss(env != nullptr ? env : "1,2,4");
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const long v = std::strtol(tok.c_str(), nullptr, 10);
    if (v > 0) out.push_back(static_cast<std::size_t>(v));
  }
  if (out.empty()) out.push_back(1);
  return out;
}

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

// ---- Provenance -----------------------------------------------------------

std::string cpu_model() {
  std::ifstream is("/proc/cpuinfo");
  std::string line;
  while (std::getline(is, line)) {
    const auto pos = line.find("model name");
    if (pos == std::string::npos) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    std::string name = line.substr(colon + 1);
    const auto first = name.find_first_not_of(" \t");
    return first == std::string::npos ? name : name.substr(first);
  }
  return "unknown";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// FNV-1a 64-bit over the tensor's float bytes — the deterministic-mode
/// golden hash asserted by the bench-smoke CI stage.
std::uint64_t fnv1a64(const Tensor& t) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto* p = reinterpret_cast<const unsigned char*>(t.data());
  for (std::size_t i = 0; i < t.numel() * sizeof(float); ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

// ---- Measured peak --------------------------------------------------------

/// Register-resident multiply-add probe: 64 independent accumulators, each
/// element a dependent acc = acc*m + c chain whose latency is hidden by
/// the 64-way parallelism. 2 flops per element per iteration, no memory
/// traffic — the compute ceiling of this compiler+flags+CPU combination.
double measured_peak_gflops(int reps) {
  constexpr std::size_t kAcc = 64;
  constexpr std::size_t kIters = 1 << 18;
  float acc[kAcc];
  float mul[kAcc];
  float add[kAcc];
  for (std::size_t i = 0; i < kAcc; ++i) {
    acc[i] = 1.0f + 1e-6f * static_cast<float>(i);
    mul[i] = 0.999999f;
    add[i] = 1e-7f * static_cast<float>(i + 1);
  }
  double best = 1e300;
  float sink = 0.0f;
  for (int r = 0; r < reps; ++r) {
    refit::obs::Stopwatch sw;
    for (std::size_t it = 0; it < kIters; ++it) {
      for (std::size_t i = 0; i < kAcc; ++i) acc[i] = acc[i] * mul[i] + add[i];
    }
    best = std::min(best, sw.seconds());
    for (std::size_t i = 0; i < kAcc; ++i) sink += acc[i];
  }
  // Keep the accumulators observable so the loop cannot be elided.
  if (sink == 12345.678f) std::cout << "";
  return 2.0 * static_cast<double>(kAcc) * static_cast<double>(kIters) /
         (best * 1e9);
}

// ---- Naive GEMM baselines (serial copies of the pre-blocking kernels) -----
//
// Pinned to -O2: the pre-blocking kernels shipped in a library built at -O2,
// and GCC's -O3 vectorizer would otherwise flatter these baselines beyond
// what the replaced code ever achieved.
#if defined(__GNUC__) && !defined(__clang__)
#define REFIT_BASELINE_OPT __attribute__((optimize("O2")))
#else
#define REFIT_BASELINE_OPT
#endif

REFIT_BASELINE_OPT
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

REFIT_BASELINE_OPT
Tensor naive_matmul_tn(const Tensor& a, const Tensor& b) {
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = a.data()[kk * m + i];
      if (av == 0.0f) continue;
      const float* brow = b.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

REFIT_BASELINE_OPT
Tensor naive_matmul_nt(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b.data() + j * k;
      const float* b1 = b.data() + (j + 1) * k;
      const float* b2 = b.data() + (j + 2) * k;
      const float* b3 = b.data() + (j + 3) * k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        acc0 += av * b0[kk];
        acc1 += av * b1[kk];
        acc2 += av * b2[kk];
        acc3 += av * b3[kk];
      }
      crow[j] = acc0;
      crow[j + 1] = acc1;
      crow[j + 2] = acc2;
      crow[j + 3] = acc3;
    }
    for (; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
  return c;
}

RcsConfig store_config() {
  RcsConfig cfg;
  cfg.tile_rows = 128;
  cfg.tile_cols = 128;
  cfg.inject_fabrication = true;
  cfg.fabrication.fraction = 0.1;
  return cfg;
}

/// A fresh 512×512 store in a fully-rebuilt (clean) state.
std::unique_ptr<CrossbarWeightStore> make_store(std::size_t n) {
  Rng rng(7);
  Tensor w = Tensor::randn({n, n}, rng, 0.1f);
  auto store =
      std::make_unique<CrossbarWeightStore>(store_config(), w, Rng(11));
  (void)store->effective();
  return store;
}

}  // namespace

int main(int argc, char** argv) {
  const refit::bench::ObsOptions obs_opts = refit::bench::init_obs(argc, argv);
  const bool fast = std::getenv("REFIT_FAST") != nullptr &&
                    std::string(std::getenv("REFIT_FAST")) == "1";
  const int reps = fast ? 2 : 5;
  const std::size_t n = 512;
  std::vector<Row> rows;
  double sink = 0.0;  // defeats dead-code elimination

  const auto threads_list = thread_counts();
  const std::size_t hw_threads = std::thread::hardware_concurrency();
  const std::size_t max_threads =
      *std::max_element(threads_list.begin(), threads_list.end());
  const bool scaling_valid = hw_threads >= max_threads;
  if (!scaling_valid) {
    std::cerr << "*** WARNING: host has " << hw_threads
              << " hardware thread(s) but the bench scales to " << max_threads
              << " — every multi-thread speedup below is bounded by "
                 "oversubscription, not the backend. Treat scaling rows as "
                 "invalid (\"scaling_valid\": false in the JSON).\n";
  }

  const double peak_gflops = measured_peak_gflops(reps);
  std::cout << "measured_peak_gflops=" << peak_gflops << "\n";

  // ---- GEMM + conv kernels ------------------------------------------------
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  const Tensor img = Tensor::randn({32, 3, 16, 16}, rng);
  refit::ConvGeometry geom;
  geom.in_channels = 3;
  geom.in_h = geom.in_w = 16;
  geom.kernel = 3;
  geom.pad = 1;

  // Deterministic-mode golden hash (the bench-smoke CI ratchet): computed
  // with the reduction mode pinned so a REFIT_FAST_REDUCE environment
  // cannot change it, and stable across hosts and thread counts because
  // the deterministic kernel is bit-exact and Rng is portable.
  std::uint64_t gemm_hash = 0;
  {
    const refit::ReductionMode prev = refit::reduction_mode();
    refit::set_reduction_mode(refit::ReductionMode::kDeterministic);
    ThreadPool::set_global_threads(1);
    gemm_hash = fnv1a64(refit::matmul(a, b));
    refit::set_reduction_mode(prev);
  }
  std::cout << "gemm_output_hash=" << std::hex << gemm_hash << std::dec
            << "\n";

  struct Kernel {
    std::string name;
    std::function<Tensor()> run;
    double flops;                           // 0 = no FLOP column
    std::function<Tensor()> naive;          // null = no naive baseline
  };
  const double gemm_flops = 2.0 * static_cast<double>(n) * n * n;
  std::vector<std::size_t> pool_argmax;
  const std::vector<Kernel> kernels = {
      {"matmul_512", [&] { return refit::matmul(a, b); }, gemm_flops,
       [&] { return naive_matmul(a, b); }},
      {"matmul_tn_512", [&] { return refit::matmul_tn(a, b); }, gemm_flops,
       [&] { return naive_matmul_tn(a, b); }},
      {"matmul_nt_512", [&] { return refit::matmul_nt(a, b); }, gemm_flops,
       [&] { return naive_matmul_nt(a, b); }},
      {"im2col_b32", [&] { return refit::im2col(img, geom); }, 0.0, nullptr},
      {"maxpool2d_b32",
       [&] { return refit::maxpool2d(img, 2, 2, pool_argmax); }, 0.0,
       nullptr},
  };

  for (const auto& kern : kernels) {
    ThreadPool::set_global_threads(1);
    const Tensor ref = kern.run();
    const double serial = time_best(reps, [&] { sink += kern.run()[0]; });
    double naive_serial = 0.0;
    if (kern.naive) {
      const Tensor naive_out = kern.naive();
      // The naive kernels carry the deterministic contract; only compare
      // bits when the blocked kernel runs in deterministic mode too.
      const bool det =
          refit::reduction_mode() == refit::ReductionMode::kDeterministic;
      naive_serial = time_best(reps, [&] { sink += kern.naive()[0]; });
      rows.push_back({"naive_" + kern.name, 1, naive_serial, 1.0,
                      !det || same_bits(ref, naive_out),
                      kern.flops / (naive_serial * 1e9),
                      kern.flops / (naive_serial * 1e9) / peak_gflops, 0.0});
      std::cout << "naive_" << kern.name << " threads=1 " << naive_serial
                << "s; blocked kernel is " << naive_serial / serial
                << "x faster single-thread\n";
    }
    for (const std::size_t t : threads_list) {
      ThreadPool::set_global_threads(t);
      const Tensor pooled = kern.run();
      const double secs = time_best(reps, [&] { sink += kern.run()[0]; });
      const double gflops =
          kern.flops > 0.0 ? kern.flops / (secs * 1e9) : 0.0;
      rows.push_back({kern.name, t, secs, serial / secs,
                      same_bits(ref, pooled), gflops,
                      gflops > 0.0 ? gflops / peak_gflops : 0.0,
                      naive_serial > 0.0 ? naive_serial / secs : 0.0});
      std::cout << kern.name << " threads=" << t << " " << secs << "s ("
                << serial / secs << "x)";
      if (gflops > 0.0) {
        std::cout << " " << gflops << " GFLOP/s (" << gflops / peak_gflops
                  << " of peak)";
      }
      std::cout << "\n";
    }
  }

  // ---- Fused faulty forward ----------------------------------------------
  // y = x·W_eff on a faulty 512×512 store: the fused kernel (packed cache,
  // no effective_ materialization) vs materialize-then-matmul, in the clean
  // regime (weights unchanged between forwards — inference, fig7 evals)
  // and the dirty regime (a tile-local delta before every forward).
  {
    const std::size_t batch = 64;
    Rng xrng(5);
    const Tensor x = Tensor::randn({batch, n}, xrng);
    const double fwd_flops = 2.0 * static_cast<double>(batch) * n * n;
    Tensor delta_tile({n, n});
    delta_tile.at(3, 5) = 1e-4f;

    for (const std::size_t t : threads_list) {
      ThreadPool::set_global_threads(t);
      auto store = make_store(n);
      const Tensor ref = refit::matmul(x, store->effective());
      const Tensor fused = store->forward_matmul(x);
      const bool bits = same_bits(ref, fused);

      const double mat_clean = time_best(
          reps, [&] { sink += refit::matmul(x, store->effective())[0]; });
      const double fus_clean =
          time_best(reps, [&] { sink += store->forward_matmul(x)[0]; });
      const double fus_gf = fwd_flops / (fus_clean * 1e9);
      rows.push_back({"materialize_forward_clean", t, mat_clean, 1.0, bits,
                      fwd_flops / (mat_clean * 1e9),
                      fwd_flops / (mat_clean * 1e9) / peak_gflops, 0.0});
      rows.push_back({"fused_forward_clean", t, fus_clean,
                      mat_clean / fus_clean, bits, fus_gf,
                      fus_gf / peak_gflops, 0.0});
      std::cout << "fused_forward_clean threads=" << t << " " << fus_clean
                << "s vs materialize " << mat_clean << "s ("
                << mat_clean / fus_clean << "x, bit_identical="
                << (bits ? "true" : "false") << ")\n";

      const double mat_dirty = time_best(reps, [&] {
        store->apply_delta(delta_tile);
        sink += refit::matmul(x, store->effective())[0];
      });
      const double fus_dirty = time_best(reps, [&] {
        store->apply_delta(delta_tile);
        sink += store->forward_matmul(x)[0];
      });
      rows.push_back({"materialize_forward_dirty_tile", t, mat_dirty, 1.0,
                      bits, 0.0, 0.0, 0.0});
      rows.push_back({"fused_forward_dirty_tile", t, fus_dirty,
                      mat_dirty / fus_dirty, bits, 0.0, 0.0, 0.0});
      std::cout << "fused_forward_dirty_tile threads=" << t << " "
                << fus_dirty << "s vs materialize " << mat_dirty << "s ("
                << mat_dirty / fus_dirty << "x)\n";
    }
  }

  // ---- Effective-weight rebuild ------------------------------------------
  // Deltas: full (every cell), sparse 1 % scattered, and tile-local 1 %.
  Rng drng(3);
  Tensor delta_full({n, n});
  for (std::size_t i = 0; i < delta_full.numel(); ++i) {
    delta_full[i] = static_cast<float>(drng.normal(0.0, 1e-3));
  }
  Tensor delta_sparse({n, n});
  const std::size_t sparse_cells = n * n / 100;
  for (std::size_t s = 0; s < sparse_cells; ++s) {
    delta_sparse[drng.uniform_index(n * n)] =
        static_cast<float>(drng.normal(0.0, 1e-3));
  }
  Tensor delta_local({n, n});
  for (std::size_t s = 0; s < sparse_cells; ++s) {
    const std::size_t r = drng.uniform_index(128);
    const std::size_t c = drng.uniform_index(128);
    delta_local.at(r, c) = static_cast<float>(drng.normal(0.0, 1e-3));
  }

  struct RebuildCase {
    std::string name;
    const Tensor* delta;
  };
  const std::vector<RebuildCase> cases = {
      {"rebuild_full", &delta_full},
      {"rebuild_sparse_1pct", &delta_sparse},
      {"rebuild_tile_local", &delta_local},
  };
  double serial_full_rebuild = 0.0;

  for (const auto& rc : cases) {
    // Time only the rebuild triggered by effective(), not store creation.
    auto timed = [&](std::size_t t, const Tensor* ref) {
      ThreadPool::set_global_threads(t);
      double best = 1e300;
      bool bits = true;
      for (int i = 0; i < reps; ++i) {
        auto store = make_store(n);
        store->apply_delta(*rc.delta);
        refit::obs::Stopwatch sw;
        const Tensor& eff = store->effective();
        best = std::min(best, sw.seconds());
        sink += eff[0];
        if (ref != nullptr) bits = bits && same_bits(*ref, eff);
      }
      return std::make_pair(best, bits);
    };
    ThreadPool::set_global_threads(1);
    Tensor ref;
    {
      auto store = make_store(n);
      store->apply_delta(*rc.delta);
      ref = store->effective();
    }
    const double serial_rebuild = timed(1, &ref).first;
    if (rc.name == "rebuild_full") serial_full_rebuild = serial_rebuild;
    for (const std::size_t t : threads_list) {
      const auto [secs, bits] = timed(t, &ref);
      rows.push_back({rc.name, t, secs, serial_rebuild / secs, bits});
      std::cout << rc.name << " threads=" << t << " " << secs << "s ("
                << serial_rebuild / secs << "x vs same-case serial, "
                << serial_full_rebuild / secs << "x vs full serial rebuild)\n";
      // The seed implementation always rebuilt every cell, so the honest
      // "vs seed" figure for the sparse/local cases is against the full
      // serial rebuild — recorded as an extra row.
      rows.push_back({rc.name + "_vs_full_serial", t, secs,
                      serial_full_rebuild / secs, bits});
    }
  }

  // ---- Emit JSON ----------------------------------------------------------
  const char* out_env = std::getenv("REFIT_BENCH_OUT");
  const std::string path = out_env != nullptr ? out_env : "BENCH_backend.json";
  std::ofstream os(path);
  os << "{\n  \"bench\": \"backend\",\n";
  os << "  \"provenance\": {\n";
  // refit-det deliberate (baselined): hardware_threads and scaling_valid
  // are provenance — they describe the host the numbers were measured on
  // and are excluded from the deterministic comparison surface (check.sh
  // compares gemm_output_hash and result rows, never provenance).
  os << "    \"hardware_threads\": " << hw_threads << ",\n";
  os << "    \"cpu_model\": \"" << json_escape(cpu_model()) << "\",\n";
  os << "    \"compiler\": \"" << json_escape(__VERSION__) << "\",\n";
#ifdef REFIT_BENCH_CXX_FLAGS
  os << "    \"cxx_flags\": \"" << json_escape(REFIT_BENCH_CXX_FLAGS)
     << "\",\n";
#endif
#ifdef REFIT_BENCH_BUILD_TYPE
  os << "    \"build_type\": \"" << json_escape(REFIT_BENCH_BUILD_TYPE)
     << "\",\n";
#endif
  os << "    \"measured_peak_gflops\": " << peak_gflops << "\n  },\n";
  os << "  \"scaling_valid\": " << (scaling_valid ? "true" : "false")
     << ",\n";
  os << "  \"gemm_output_hash\": \"" << std::hex << gemm_hash << std::dec
     << "\",\n";
  os << "  \"note\": \"thread speedups are bounded by hardware_threads "
        "(invalid when scaling_valid is false); gflops/frac_peak are "
        "achieved FLOP throughput against the measured in-register peak "
        "(docs/kernels.md); the *_vs_full_serial rebuild rows measure the "
        "incremental (per-tile dirty) rebuild against the seed's full "
        "rebuild\",\n";
  os << "  \"shape\": " << n << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"name\": \"" << r.name << "\", \"threads\": " << r.threads
       << ", \"seconds\": " << r.seconds << ", \"speedup_vs_serial\": "
       << r.speedup_vs_serial << ", \"bit_identical\": "
       << (r.bit_identical ? "true" : "false");
    if (r.gflops > 0.0) {
      os << ", \"gflops\": " << r.gflops << ", \"frac_peak\": "
         << r.frac_peak;
    }
    if (r.speedup_vs_naive > 0.0) {
      os << ", \"speedup_vs_naive\": " << r.speedup_vs_naive;
    }
    if (r.threads > 1 && !scaling_valid) os << ", \"scaling_valid\": false";
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "wrote " << path << " (sink=" << sink << ")\n";
  refit::bench::write_obs(obs_opts);
  return 0;
}
