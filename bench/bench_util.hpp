// Shared helpers for the figure/table reproduction harnesses.
//
// Every bench prints CSV-style series through SeriesPrinter with a
// `# paper:` line recording what the original reports, so output is
// directly comparable (EXPERIMENTS.md keeps the paper-vs-measured table).
//
// Set REFIT_FAST=1 to shrink workloads ~4× for smoke runs.
#pragma once

#include <cstddef>
#include <string>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "core/ft_trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "rcs/rcs_system.hpp"

namespace refit::bench {

/// True when REFIT_FAST=1 is set in the environment.
bool fast_mode();

/// `n` or `n / 4` in fast mode (minimum 1).
std::size_t scaled(std::size_t n);

/// The CIFAR-like dataset used by the CNN experiments (16×16 RGB).
Dataset cifar_like(std::size_t train = 2048, std::size_t test = 512,
                   std::uint64_t seed = 1);

/// The MNIST-like dataset used by the MLP experiments ([N, 784]).
Dataset mnist_like(std::size_t train = 2048, std::size_t test = 512,
                   std::uint64_t seed = 1);

/// The paper's VGG-11 scaled to our 16×16 input (DESIGN.md §4).
VggMiniConfig vgg_mini_config();

/// Per-paper RCS defaults: 128×128 tiles, 8-level cells.
RcsConfig rcs_defaults();

/// Baseline training schedule for the CNN experiments.
FtFlowConfig cnn_flow(std::size_t iterations);

/// Baseline training schedule for MLP experiments.
FtFlowConfig mlp_flow(std::size_t iterations);

/// Run one training configuration and return the result. `rcs` may be
/// null for the software-ideal baseline.
TrainingResult run_training(Network& net, RcsSystem* rcs, const Dataset& data,
                            const FtFlowConfig& cfg, std::uint64_t seed);

/// Runs the paper's four baseline configurations (Fig. 7 curves) with the
/// benches' fixed seeds: network init Rng(2), RcsSystem Rng(42), training
/// seed 3. Each run() builds a fresh network — and a fresh RcsSystem for
/// the on-RCS baselines — so successive curves are independent and
/// deterministic. The flow config passed at construction supplies the
/// schedule (iterations / lr / eval cadence); FtTrainer::baseline_config
/// derives the per-curve feature toggles from it.
class ScenarioBuilder {
 public:
  ScenarioBuilder(const Dataset& data, VggMiniConfig model, FtFlowConfig flow)
      : data_(&data), model_(model), flow_(flow) {}

  /// Device configuration for the on-RCS baselines (ideal ignores it).
  ScenarioBuilder& rcs(const RcsConfig& rc) {
    rcs_ = rc;
    return *this;
  }

  /// Keep Conv layers in software and map only the FC layers onto the
  /// RCS — the paper's Fig. 7(b) case.
  ScenarioBuilder& fc_only(bool on) {
    fc_only_ = on;
    return *this;
  }

  /// Train one baseline curve and return its trace.
  TrainingResult run(FtBaseline baseline) const;

 private:
  const Dataset* data_;
  VggMiniConfig model_;
  FtFlowConfig flow_;
  RcsConfig rcs_ = rcs_defaults();
  bool fc_only_ = false;
};

/// Interpolate a training curve onto fixed iteration grid points so that
/// several runs can be printed side by side.
double accuracy_at(const TrainingResult& r, std::size_t iteration);

/// Observability wiring for benches (docs/observability.md).
struct ObsOptions {
  std::string trace_out;
  std::string metrics_out;
  std::string timeseries_out;
  std::string events_out;
  /// Install a deterministic obs::ManualClock (golden/CI runs).
  bool manual_clock = false;
  [[nodiscard]] bool enabled() const {
    return !trace_out.empty() || !metrics_out.empty() ||
           !timeseries_out.empty() || !events_out.empty();
  }
};

/// Parse --trace-out=FILE / --metrics-out=FILE / --timeseries-out=FILE /
/// --events-out=FILE / --manual-clock from argv, falling back to the
/// REFIT_TRACE_OUT / REFIT_METRICS_OUT / REFIT_TIMESERIES_OUT /
/// REFIT_EVENTS_OUT / REFIT_MANUAL_CLOCK environment variables (so
/// benches whose main() takes no arguments can still be traced), and
/// runtime-enable the obs layer accordingly. Unrecognized arguments are
/// left alone.
ObsOptions init_obs(int argc, char** argv);

/// Write the trace / metrics / timeseries / events files at bench end.
/// No-op for options that were not requested.
void write_obs(const ObsOptions& opts);

/// Hardware/compiler provenance for BENCH_*.json artifacts — the same
/// fields bench_backend stamps, so artifacts from one host are directly
/// comparable. cxx_flags/build_type are filled from the target's
/// REFIT_BENCH_CXX_FLAGS / REFIT_BENCH_BUILD_TYPE compile definitions
/// when present.
struct BenchProvenance {
  std::size_t hardware_threads = 0;
  std::string cpu_model;
  std::string compiler;
  std::string cxx_flags;
  std::string build_type;
};
[[nodiscard]] BenchProvenance collect_provenance();

/// Escape `"` and `\` for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Emit the shared artifact preamble: the opening brace, "bench" name, and
/// the provenance object (trailing comma included — the caller continues
/// with its own fields). hardware_threads lives only inside provenance.
void write_provenance_header(std::ostream& os, const std::string& bench_name,
                             const BenchProvenance& p);

/// Artifact output path: REFIT_BENCH_OUT overrides `default_path`.
[[nodiscard]] std::string bench_out_path(const std::string& default_path);

}  // namespace refit::bench
