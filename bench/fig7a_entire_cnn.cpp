// FIG7A — reproduction of Fig. 7(a), the entire-CNN case: every layer of
// the VGG-mini CNN is mapped onto the RCS, cells have low endurance
// (mean ≈ 0.8× iterations, the paper's 5×10⁶-writes regime) plus 10 %
// fabrication faults. Four curves: ideal (no faults), original on-line
// training, threshold training only, and the entire fault-tolerant flow.
//
// The paper's shape: original degrades to ~10 % (peak <40 %); threshold
// training recovers to ~83 %; detection+re-mapping adds nothing on top for
// the entire-CNN case because Conv layers have little usable sparsity.
#include <iostream>

#include "bench_util.hpp"

using namespace refit;
using namespace refit::bench;

int main() {
  const std::size_t iters = scaled(1200);
  const Dataset data = cifar_like();
  const VggMiniConfig vc = vgg_mini_config();

  RcsConfig rc = rcs_defaults();
  rc.inject_fabrication = true;
  rc.fabrication.fraction = 0.10;
  rc.endurance = EnduranceModel::gaussian(0.8 * static_cast<double>(iters),
                                          0.24 * static_cast<double>(iters));

  auto run_case = [&](bool threshold, bool ft) {
    FtFlowConfig cfg = cnn_flow(iters);
    cfg.threshold_training = threshold;
    if (ft) {
      cfg.detection_enabled = true;
      cfg.detection_period = iters / 6;
      cfg.prune.enabled = true;
      cfg.prune.fc_sparsity = 0.3;
      cfg.prune.conv_sparsity = 0.0;  // Conv sparsity is too low to help
      cfg.remap_enabled = true;
      cfg.remap.algorithm = RemapAlgorithm::kHungarian;
    }
    Rng rng(2);
    RcsSystem sys(rc, Rng(42));
    Network net = make_vgg_mini(vc, sys.factory(), sys.factory(), rng);
    return run_training(net, &sys, data, cfg, 3);
  };

  Rng rng(2);
  Network ideal_net = make_vgg_mini(vc, software_store_factory(),
                                    software_store_factory(), rng);
  const TrainingResult ideal =
      run_training(ideal_net, nullptr, data, cnn_flow(iters), 3);
  const TrainingResult original = run_case(false, false);
  const TrainingResult threshold = run_case(true, false);
  const TrainingResult full = run_case(true, true);

  SeriesPrinter out(std::cout, "FIG7A entire-CNN fault-tolerant training");
  out.paper_reference(
      "ideal 85.2%; original <40% peak then drops to ~10%; threshold "
      "training recovers to ~83%; the full FT flow matches threshold "
      "(detection/re-mapping cannot help Conv layers)");
  out.header({"iteration", "ideal", "original", "threshold", "full_ft"});
  for (std::size_t it : ideal.eval_iterations) {
    out.row({static_cast<double>(it), accuracy_at(ideal, it),
             accuracy_at(original, it), accuracy_at(threshold, it),
             accuracy_at(full, it)});
  }
  out.comment("peaks: ideal=" + format_double(ideal.peak_accuracy) +
              " original=" + format_double(original.peak_accuracy) +
              " threshold=" + format_double(threshold.peak_accuracy) +
              " full=" + format_double(full.peak_accuracy));
  out.comment(
      "end-of-run fault fraction: original=" +
      format_double(original.final_fault_fraction) +
      " threshold=" + format_double(threshold.final_fault_fraction));
  out.comment("threshold suppression ratio=" +
              format_double(threshold.suppression_ratio()));
  return 0;
}
