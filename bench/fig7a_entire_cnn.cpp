// FIG7A — reproduction of Fig. 7(a), the entire-CNN case: every layer of
// the VGG-mini CNN is mapped onto the RCS, cells have low endurance
// (mean ≈ 0.8× iterations, the paper's 5×10⁶-writes regime) plus 10 %
// fabrication faults. Four curves: ideal (no faults), original on-line
// training, threshold training only, and the entire fault-tolerant flow.
//
// The paper's shape: original degrades to ~10 % (peak <40 %); threshold
// training recovers to ~83 %; detection+re-mapping adds nothing on top for
// the entire-CNN case because Conv layers have little usable sparsity.
#include <iostream>

#include "bench_util.hpp"

using namespace refit;
using namespace refit::bench;

int main() {
  const std::size_t iters = scaled(1200);
  const Dataset data = cifar_like();

  RcsConfig rc = rcs_defaults();
  rc.inject_fabrication = true;
  rc.fabrication.fraction = 0.10;
  rc.endurance = EnduranceModel::gaussian(0.8 * static_cast<double>(iters),
                                          0.24 * static_cast<double>(iters));

  ScenarioBuilder scenario(data, vgg_mini_config(), cnn_flow(iters));
  scenario.rcs(rc);
  const TrainingResult ideal = scenario.run(FtBaseline::kIdeal);
  const TrainingResult original = scenario.run(FtBaseline::kOriginal);
  const TrainingResult threshold = scenario.run(FtBaseline::kThreshold);
  const TrainingResult full = scenario.run(FtBaseline::kFullFlow);

  SeriesPrinter out(std::cout, "FIG7A entire-CNN fault-tolerant training");
  out.paper_reference(
      "ideal 85.2%; original <40% peak then drops to ~10%; threshold "
      "training recovers to ~83%; the full FT flow matches threshold "
      "(detection/re-mapping cannot help Conv layers)");
  out.header({"iteration", "ideal", "original", "threshold", "full_ft"});
  for (std::size_t it : ideal.eval_iterations) {
    out.row({static_cast<double>(it), accuracy_at(ideal, it),
             accuracy_at(original, it), accuracy_at(threshold, it),
             accuracy_at(full, it)});
  }
  out.comment("peaks: ideal=" + format_double(ideal.peak_accuracy) +
              " original=" + format_double(original.peak_accuracy) +
              " threshold=" + format_double(threshold.peak_accuracy) +
              " full=" + format_double(full.peak_accuracy));
  out.comment(
      "end-of-run fault fraction: original=" +
      format_double(original.final_fault_fraction) +
      " threshold=" + format_double(threshold.final_fault_fraction));
  out.comment("threshold suppression ratio=" +
              format_double(threshold.suppression_ratio()));
  return 0;
}
