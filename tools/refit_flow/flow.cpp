// refit-flow phase 2 — the dataflow rules (see flow.hpp for the catalogue).
// Everything here is intraprocedural and token-grounded: each rule walks
// the statements of one FunctionCfg (skipping nested lambda bodies, which
// are separate functions) and reasons over the block graph with the
// classic small-lattice algorithms — dominators for lock protection,
// reachability for invalidation, union fixpoints for moved-from state.
#include "flow.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <set>
#include <string>

namespace refit::flow {

namespace {

using refit::lint::match_paren;
using refit::lint::Token;
using refit::lint::TokKind;

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Shared statement-level extraction
// ---------------------------------------------------------------------------

/// Heuristic: is toks[i] the *declared name* of a declaration inside `st`?
/// True when the token is followed by an initializer/terminator and every
/// token between the statement start and the name is type-shaped (no
/// operators, no assignment — that is what separates `int* p = q` from
/// `x = a * b`).
bool is_decl_name_at(const std::vector<Token>& toks, const Stmt& st,
                     std::size_t i) {
  if (toks[i].kind != TokKind::kIdent || i == st.first) return false;
  static const std::set<std::string> kFollow = {"=", "{", "(", ";",
                                                ",", "[", ":", ")"};
  if (i + 1 < st.last && (toks[i + 1].kind != TokKind::kPunct ||
                          !kFollow.count(toks[i + 1].text)))
    return false;
  static const std::set<std::string> kBlockers = {
      "return", "delete", "throw", "new", "case", "goto", "co_return"};
  static const std::set<std::string> kTypePunct = {"::", "<", ">", ">>",
                                                   "*",  "&", "&&"};
  for (std::size_t j = i; j-- > st.first;) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kIdent) {
      if (kBlockers.count(t.text)) return false;
      continue;
    }
    if (t.kind == TokKind::kNumber) continue;  // array/template extents
    if (t.kind == TokKind::kPunct && kTypePunct.count(t.text)) continue;
    return false;
  }
  return true;
}

/// Names declared by the statement, including structured bindings.
void decl_names_in_stmt(const FileCfg& file, int fn_idx, const Stmt& st,
                        std::set<std::string>& out) {
  const std::vector<Token>& toks = file.lex.tokens;
  for (std::size_t i = st.first; i < st.last; ++i) {
    if (in_nested_body(file, fn_idx, i)) continue;
    if (is_decl_name_at(toks, st, i)) out.insert(toks[i].text);
    // `auto [a, b] = ...` / `auto& [a, b] = ...`
    if (is_ident(toks[i], "auto")) {
      std::size_t j = i + 1;
      while (j < st.last && (is_punct(toks[j], "&") || is_punct(toks[j], "&&")))
        ++j;
      if (j < st.last && is_punct(toks[j], "[")) {
        for (++j; j < st.last && !is_punct(toks[j], "]"); ++j)
          if (toks[j].kind == TokKind::kIdent) out.insert(toks[j].text);
      }
    }
  }
}

/// One write site: the root variable the assignment/increment targets.
struct Write {
  std::string root;
  int line = 0;
  bool subscript = false;  ///< target is an element (`x[i] = ...`)
  int block = 0;
  int stmt = 0;
};

bool is_assign_op(const Token& t) {
  if (t.kind != TokKind::kPunct) return false;
  static const std::set<std::string> kOps = {"=",  "+=",  "-=",  "*=",
                                             "/=", "%=",  "&=",  "|=",
                                             "^=", "<<=", ">>="};
  return kOps.count(t.text) > 0;
}

/// Resolve the assignment target ending at token `e` (inclusive) to its
/// root: `a.b.c` → a, `x[i]` / `a[i].b` → subscript, `*p` → p.
Write resolve_target(const std::vector<Token>& toks, const Stmt& st,
                     std::size_t e) {
  Write w;
  w.line = toks[e].line;
  if (is_punct(toks[e], "]")) {
    w.subscript = true;
    return w;
  }
  if (toks[e].kind != TokKind::kIdent) return w;  // empty root: skip site
  std::size_t j = e;
  while (j >= st.first + 2 &&
         (is_punct(toks[j - 1], ".") || is_punct(toks[j - 1], "->"))) {
    if (toks[j - 2].kind == TokKind::kIdent) {
      j -= 2;
      continue;
    }
    if (is_punct(toks[j - 2], "]") || is_punct(toks[j - 2], ")")) {
      w.subscript = true;  // element or call-result member
      return w;
    }
    break;
  }
  w.root = toks[j].text;
  w.line = toks[j].line;
  return w;
}

/// All writes in one statement (nested lambda bodies skipped).
void collect_writes(const FileCfg& file, int fn_idx, const Stmt& st,
                    int block, int stmt_idx, std::vector<Write>& out) {
  const std::vector<Token>& toks = file.lex.tokens;
  for (std::size_t i = st.first; i < st.last; ++i) {
    if (in_nested_body(file, fn_idx, i)) continue;
    const Token& t = toks[i];
    if (is_assign_op(t) && i > st.first) {
      Write w = resolve_target(toks, st, i - 1);
      w.block = block;
      w.stmt = stmt_idx;
      if (!w.root.empty() || w.subscript) out.push_back(std::move(w));
      continue;
    }
    if (is_punct(t, "++") || is_punct(t, "--")) {
      Write w;
      if (i > st.first && (toks[i - 1].kind == TokKind::kIdent ||
                           is_punct(toks[i - 1], "]")))
        w = resolve_target(toks, st, i - 1);  // postfix
      else if (i + 1 < st.last && toks[i + 1].kind == TokKind::kIdent) {
        w.root = toks[i + 1].text;  // prefix
        w.line = toks[i + 1].line;
      }
      w.block = block;
      w.stmt = stmt_idx;
      if (!w.root.empty() || w.subscript) out.push_back(std::move(w));
    }
  }
}

/// The name findings key on: the nearest *named* enclosing function.
std::string owner_name(const FileCfg& file, int idx) {
  int i = idx;
  while (i >= 0 && file.functions[i].is_lambda)
    i = file.functions[i].enclosing;
  return i >= 0 ? file.functions[i].name : "<lambda>";
}

/// Per-block dominator sets (indices), classic iterative algorithm.
std::vector<std::set<int>> dominators(const FunctionCfg& fn) {
  const int n = static_cast<int>(fn.blocks.size());
  std::vector<std::vector<int>> preds(n);
  for (int b = 0; b < n; ++b)
    for (const int s : fn.blocks[b].succs) preds[s].push_back(b);
  std::set<int> all;
  for (int b = 0; b < n; ++b) all.insert(b);
  std::vector<std::set<int>> dom(n, all);
  dom[fn.entry] = {fn.entry};
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = 0; b < n; ++b) {
      if (b == fn.entry) continue;
      std::set<int> d = all;
      bool any = false;
      for (const int p : preds[b]) {
        if (!any) {
          d = dom[p];
          any = true;
        } else {
          std::set<int> inter;
          std::set_intersection(d.begin(), d.end(), dom[p].begin(),
                                dom[p].end(),
                                std::inserter(inter, inter.begin()));
          d = std::move(inter);
        }
      }
      if (!any) d.clear();  // unreachable block
      d.insert(b);
      if (d != dom[b]) {
        dom[b] = std::move(d);
        changed = true;
      }
    }
  }
  return dom;
}

// ---------------------------------------------------------------------------
// Rule: parallel-shared-write
// ---------------------------------------------------------------------------

struct Captures {
  std::set<std::string> by_ref;
  std::set<std::string> by_val;  ///< includes init-captures
  bool default_val = false;      ///< [=] — unlisted names are copies
};

Captures parse_captures(const std::vector<Token>& toks, std::size_t intro) {
  Captures c;
  // [intro] is '['; walk to the matching ']' splitting on depth-0 commas.
  int depth = 0;
  std::size_t i = intro + 1;
  std::vector<std::vector<std::size_t>> segs(1);
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{" || t.text == "<")
        ++depth;
      else if (t.text == ")" || t.text == "}" || t.text == ">")
        --depth;
      else if (t.text == "]") {
        if (depth == 0) break;
        --depth;
      } else if (t.text == "," && depth == 0) {
        segs.emplace_back();
        continue;
      }
    }
    segs.back().push_back(i);
  }
  for (const auto& seg : segs) {
    if (seg.empty()) continue;
    const Token& t0 = toks[seg[0]];
    if (is_punct(t0, "=") && seg.size() == 1) {
      c.default_val = true;
    } else if (is_punct(t0, "&")) {
      if (seg.size() >= 2 && toks[seg[1]].kind == TokKind::kIdent)
        c.by_ref.insert(toks[seg[1]].text);
      // bare '&' → default by-ref: nothing to record, that is the
      // conservative default anyway
    } else if (t0.kind == TokKind::kIdent) {
      // `x`, `x = expr`, `this`, `*this` — all give the lambda its own
      // storage (or, for `this`, member access the default path flags)
      if (t0.text != "this") c.by_val.insert(t0.text);
    } else if (is_punct(t0, "*")) {
      // *this: by-value copy of the object
      if (seg.size() >= 2) c.by_val.insert(toks[seg[1]].text);
    }
  }
  return c;
}

/// Is `var` declared (anywhere up the lexical chain) with a type that
/// mentions `atomic`?
bool declared_atomic(const FileCfg& file, int fn_idx,
                     const std::string& var) {
  const std::vector<Token>& toks = file.lex.tokens;
  for (int e = file.functions[fn_idx].enclosing; e >= 0;
       e = file.functions[e].enclosing) {
    for (const BasicBlock& bb : file.functions[e].blocks) {
      for (const Stmt& st : bb.stmts) {
        bool declares = false, atomic = false;
        for (std::size_t i = st.first; i < st.last; ++i) {
          if (in_nested_body(file, e, i)) continue;
          if (toks[i].kind != TokKind::kIdent) continue;
          if (toks[i].text == "atomic") atomic = true;
          if (toks[i].text == var && is_decl_name_at(toks, st, i))
            declares = true;
        }
        if (declares && atomic) return true;
      }
    }
  }
  return false;
}

bool stmt_has_lock(const FileCfg& file, int fn_idx, const Stmt& st) {
  static const std::set<std::string> kLockTypes = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  const std::vector<Token>& toks = file.lex.tokens;
  for (std::size_t i = st.first; i < st.last; ++i) {
    if (in_nested_body(file, fn_idx, i)) continue;
    if (toks[i].kind != TokKind::kIdent) continue;
    if (kLockTypes.count(toks[i].text)) return true;
    if (toks[i].text == "lock" && i > st.first &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        i + 1 < st.last && is_punct(toks[i + 1], "("))
      return true;
  }
  return false;
}

void rule_parallel_shared_write(const FileCfg& file,
                                std::vector<Finding>& out) {
  const std::vector<Token>& toks = file.lex.tokens;
  for (std::size_t fi = 0; fi < file.functions.size(); ++fi) {
    const FunctionCfg& fn = file.functions[fi];
    if (!fn.is_lambda || fn.parallel_callee.empty()) continue;

    std::set<std::string> locals(fn.params.begin(), fn.params.end());
    for (const BasicBlock& bb : fn.blocks)
      for (const Stmt& st : bb.stmts)
        decl_names_in_stmt(file, static_cast<int>(fi), st, locals);
    const Captures caps = parse_captures(toks, fn.header_begin);

    // Lock statements and writes, with block positions for dominance.
    const std::vector<std::set<int>> dom = dominators(fn);
    std::vector<std::pair<int, int>> locks;  // (block, stmt)
    std::vector<Write> writes;
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      const BasicBlock& bb = fn.blocks[b];
      for (std::size_t s = 0; s < bb.stmts.size(); ++s) {
        if (stmt_has_lock(file, static_cast<int>(fi), bb.stmts[s]))
          locks.emplace_back(static_cast<int>(b), static_cast<int>(s));
        collect_writes(file, static_cast<int>(fi), bb.stmts[s],
                       static_cast<int>(b), static_cast<int>(s), writes);
      }
    }

    for (const Write& w : writes) {
      if (w.subscript) continue;        // per-lane element: the contract
      if (locals.count(w.root)) continue;
      if (caps.by_val.count(w.root)) continue;  // lambda's own copy
      if (caps.default_val && !caps.by_ref.count(w.root)) continue;
      if (declared_atomic(file, static_cast<int>(fi), w.root)) continue;
      const bool locked =
          std::any_of(locks.begin(), locks.end(), [&](const auto& l) {
            if (l.first == w.block) return l.second < w.stmt;
            return dom[w.block].count(l.first) > 0;
          });
      if (locked) continue;
      Finding f;
      f.file = file.path;
      f.line = w.line;
      f.rule = "parallel-shared-write";
      f.detail = owner_name(file, static_cast<int>(fi)) + ":" + w.root;
      f.message = "'" + w.root + "' is declared outside this " +
                  fn.parallel_callee +
                  " lambda and written inside it without std::atomic, a "
                  "dominating lock, or per-lane indexing — a data race "
                  "under static partitioning";
      out.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: mutation-without-invalidate
// ---------------------------------------------------------------------------

bool stmt_cleanses(const FileCfg& file, const Stmt& st) {
  static const std::set<std::string> kCleansers = {
      "invalidate", "mark_all_dirty", "mark_pack_dirty", "resync_counters"};
  const std::vector<Token>& toks = file.lex.tokens;
  for (std::size_t i = st.first; i + 1 < st.last; ++i)
    if (toks[i].kind == TokKind::kIdent && kCleansers.count(toks[i].text) &&
        is_punct(toks[i + 1], "("))
      return true;
  return false;
}

/// A tile-state mutation found in one top-level statement.
struct Mutation {
  std::string root;
  int line = 0;
  int block = 0;
  int stmt = 0;
};

void rule_mutation_without_invalidate(const FileCfg& file,
                                      std::vector<Finding>& out) {
  const std::vector<Token>& toks = file.lex.tokens;
  static const std::set<std::string> kWriteMethods = {"write", "force_fault"};

  for (std::size_t fi = 0; fi < file.functions.size(); ++fi) {
    const FunctionCfg& fn = file.functions[fi];
    if (fn.enclosing != -1) continue;  // lambdas fold into their statement

    // First sweep: which names alias a tile reference?
    std::set<std::string> aliases;
    for (const BasicBlock& bb : fn.blocks) {
      for (const Stmt& st : bb.stmts) {
        for (std::size_t i = st.first; i < st.last; ++i) {
          if (!is_ident(toks[i], "tile")) continue;
          if (i == st.first || !is_punct(toks[i - 1], ".")) continue;
          if (i + 1 >= st.last || !is_punct(toks[i + 1], "(")) continue;
          const std::size_t rp = match_paren(toks, i + 1);
          if (rp == std::string::npos || rp + 1 >= st.last) continue;
          // `auto& tl = x.tile(...);` — the declared name (the ident right
          // before the '=' preceding the receiver chain) aliases the tile.
          std::size_t cs = i - 2;  // receiver ident
          while (cs >= st.first + 2 &&
                 (is_punct(toks[cs - 1], ".") || is_punct(toks[cs - 1], "->")))
            cs -= 2;
          if (cs >= st.first + 2 && is_punct(toks[cs - 1], "=") &&
              toks[cs - 2].kind == TokKind::kIdent &&
              is_decl_name_at(toks, st, cs - 2))
            aliases.insert(toks[cs - 2].text);
        }
      }
    }

    // Second sweep: mutation sites.
    std::vector<Mutation> muts;
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      const BasicBlock& bb = fn.blocks[b];
      for (std::size_t s = 0; s < bb.stmts.size(); ++s) {
        const Stmt& st = bb.stmts[s];
        for (std::size_t i = st.first; i < st.last; ++i) {
          if (toks[i].kind != TokKind::kIdent) continue;
          // Direct chain: `recv.tile(...).write(...)` / `.force_fault(...)`,
          // or escape: `f(recv.tile(...))`.
          if (toks[i].text == "tile" && i > st.first &&
              is_punct(toks[i - 1], ".") && i + 1 < st.last &&
              is_punct(toks[i + 1], "(")) {
            const std::size_t rp = match_paren(toks, i + 1);
            if (rp == std::string::npos || rp >= st.last) continue;
            std::size_t cs = i - 2;
            while (cs >= st.first + 2 && (is_punct(toks[cs - 1], ".") ||
                                          is_punct(toks[cs - 1], "->")))
              cs -= 2;
            const std::string root =
                toks[cs].kind == TokKind::kIdent ? toks[cs].text : "";
            if (root.empty()) continue;
            const bool chained = rp + 1 < st.last && is_punct(toks[rp + 1], ".");
            const bool chained_write =
                chained && rp + 2 < st.last &&
                kWriteMethods.count(toks[rp + 2].text) > 0;
            // Escape: the raw tile& itself is handed to a call. A chained
            // read (`store.tile(i,j).rows()` in an EXPECT) stays a read.
            const bool escapes_as_arg =
                !chained && cs > st.first &&
                (is_punct(toks[cs - 1], "(") || is_punct(toks[cs - 1], ","));
            if (chained_write || escapes_as_arg)
              muts.push_back({root, toks[i].line, static_cast<int>(b),
                              static_cast<int>(s)});
            continue;
          }
          // Alias write: `tl.write(...)` / `tl.force_fault(...)`.
          if (aliases.count(toks[i].text) && i + 3 < st.last &&
              is_punct(toks[i + 1], ".") &&
              kWriteMethods.count(toks[i + 2].text) &&
              is_punct(toks[i + 3], "("))
            muts.push_back({toks[i].text, toks[i].line, static_cast<int>(b),
                            static_cast<int>(s)});
        }
      }
    }
    if (muts.empty()) continue;

    // Which blocks cleanse (contain an invalidate/mark-dirty call)?
    std::vector<bool> cleanses(fn.blocks.size(), false);
    for (std::size_t b = 0; b < fn.blocks.size(); ++b)
      for (const Stmt& st : fn.blocks[b].stmts)
        if (stmt_cleanses(file, st)) cleanses[b] = true;

    std::set<std::string> reported;
    for (const Mutation& m : muts) {
      // A cleanser later in the same block covers every path.
      bool safe = false;
      const BasicBlock& mb = fn.blocks[m.block];
      // A cleanser later in the same block (or inside the mutating
      // statement itself — a loop-body lambda that packs and clears its
      // own flags) covers every path.
      for (std::size_t s = m.stmt; s < mb.stmts.size(); ++s)
        if (stmt_cleanses(file, mb.stmts[s])) safe = true;
      if (!safe) {
        // BFS: can the exit be reached without passing a cleansing block?
        std::set<int> seen;
        std::vector<int> work(mb.succs.begin(), mb.succs.end());
        bool reaches_exit = work.empty();  // block falls off the body end
        while (!work.empty()) {
          const int b = work.back();
          work.pop_back();
          if (!seen.insert(b).second) continue;
          if (b == fn.exit_id) {
            reaches_exit = true;
            break;
          }
          if (cleanses[b]) continue;  // absorbed
          for (const int s2 : fn.blocks[b].succs) work.push_back(s2);
        }
        safe = !reaches_exit;
      }
      if (safe) continue;
      const std::string key = m.root + "@" + fn.name;
      if (!reported.insert(key).second) continue;
      Finding f;
      f.file = file.path;
      f.line = m.line;
      f.rule = "mutation-without-invalidate";
      f.detail = fn.name + ":" + m.root;
      f.message = "tile state is mutated through '" + m.root +
                  "' but a path reaches the end of '" + fn.name +
                  "' with no invalidate()/mark_pack_dirty() — the "
                  "effective/packed caches go stale";
      out.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unchecked-must-use
// ---------------------------------------------------------------------------

void rule_unchecked_must_use(const FileCfg& file, std::vector<Finding>& out) {
  static const std::set<std::string> kWatched = {
      "save_checkpoint", "load_checkpoint", "detect", "detect_store",
      "forward_matmul"};
  const std::vector<Token>& toks = file.lex.tokens;

  for (std::size_t fi = 0; fi < file.functions.size(); ++fi) {
    const FunctionCfg& fn = file.functions[fi];
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      const BasicBlock& bb = fn.blocks[b];
      for (std::size_t s = 0; s < bb.stmts.size(); ++s) {
        const Stmt& st = bb.stmts[s];
        for (std::size_t i = st.first; i < st.last; ++i) {
          if (in_nested_body(file, static_cast<int>(fi), i)) continue;
          if (toks[i].kind != TokKind::kIdent || !kWatched.count(toks[i].text))
            continue;
          if (i == st.first ||
              !(is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")))
            continue;  // only the member APIs, not unrelated free functions
          if (i + 1 >= st.last || !is_punct(toks[i + 1], "(")) continue;
          const std::size_t rp = match_paren(toks, i + 1);
          if (rp == std::string::npos) continue;

          // Start of the full call expression (receiver chain).
          std::size_t cs = i - 1 > st.first ? i - 2 : st.first;
          while (cs >= st.first + 2 && (is_punct(toks[cs - 1], ".") ||
                                        is_punct(toks[cs - 1], "->") ||
                                        is_punct(toks[cs - 1], "::")))
            cs -= 2;

          if (cs == st.first) {
            // Bare call statement: result hits the floor.
            const bool discarded = rp + 1 >= st.last ||
                                   is_punct(toks[rp + 1], ";");
            if (discarded) {
              Finding f;
              f.file = file.path;
              f.line = toks[i].line;
              f.rule = "unchecked-must-use";
              f.detail = owner_name(file, static_cast<int>(fi)) + ":" +
                         toks[i].text;
              f.message = "result of " + toks[i].text +
                          "() is discarded — it reports detection/IO "
                          "status that must be checked";
              out.push_back(std::move(f));
            }
            continue;
          }

          // Bound to a variable? `auto v = recv.call(...);`
          if (is_punct(toks[cs - 1], "=") &&
              toks[cs - 2].kind == TokKind::kIdent &&
              is_decl_name_at(toks, st, cs - 2) &&
              (rp + 1 >= st.last || is_punct(toks[rp + 1], ";"))) {
            const std::string var = toks[cs - 2].text;
            // Is `var` ever read afterwards, on any path?
            bool used = false;
            auto scan_stmt = [&](const Stmt& other) {
              for (std::size_t k = other.first; k < other.last && !used; ++k)
                if (toks[k].kind == TokKind::kIdent && toks[k].text == var)
                  used = true;  // nested-lambda captures count as uses
            };
            for (std::size_t s2 = s + 1; s2 < bb.stmts.size() && !used; ++s2)
              scan_stmt(bb.stmts[s2]);
            std::set<int> seen;
            std::vector<int> work(bb.succs.begin(), bb.succs.end());
            while (!work.empty() && !used) {
              const int nb = work.back();
              work.pop_back();
              if (!seen.insert(nb).second) continue;
              for (const Stmt& other : fn.blocks[nb].stmts) {
                scan_stmt(other);
                if (used) break;
              }
              for (const int s2 : fn.blocks[nb].succs) work.push_back(s2);
            }
            if (!used) {
              Finding f;
              f.file = file.path;
              f.line = toks[i].line;
              f.rule = "unchecked-must-use";
              f.detail = owner_name(file, static_cast<int>(fi)) + ":" +
                         toks[i].text;
              f.message = "result of " + toks[i].text + "() is bound to '" +
                          var + "' but never read on any path";
              out.push_back(std::move(f));
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: use-after-move
// ---------------------------------------------------------------------------

struct MoveEvent {
  std::string var;
  int line = 0;
};

/// Process one statement: flag reads of moved vars, apply kills, record
/// new moves. `flag` may be null during the fixpoint sweep.
void move_transfer(const FileCfg& file, int fn_idx, const Stmt& st,
                   std::set<std::string>& moved,
                   std::vector<MoveEvent>* flag) {
  const std::vector<Token>& toks = file.lex.tokens;
  std::set<std::string> decls;
  decl_names_in_stmt(file, fn_idx, st, decls);
  // A (re)declaration gives the name fresh storage — kill *before* the
  // read scan, or the declaring occurrence itself (`Foo f;` at the top of
  // a loop body whose previous iteration moved f) reads as a violation.
  for (const std::string& d : decls) moved.erase(d);
  std::string target;
  if (toks[st.first].kind == TokKind::kIdent && st.first + 1 < st.last &&
      is_punct(toks[st.first + 1], "="))
    target = toks[st.first].text;

  std::set<std::string> to_move;
  static const std::set<std::string> kResetters = {"clear", "reset",
                                                   "assign"};
  for (std::size_t i = st.first; i < st.last; ++i) {
    if (in_nested_body(file, fn_idx, i)) continue;
    // std::move(x) where x is a plain identifier.
    if (is_ident(toks[i], "std") && i + 5 < st.last &&
        is_punct(toks[i + 1], "::") && is_ident(toks[i + 2], "move") &&
        is_punct(toks[i + 3], "(") &&
        toks[i + 4].kind == TokKind::kIdent &&
        is_punct(toks[i + 5], ")")) {
      const std::string v = toks[i + 4].text;
      if (moved.count(v)) {
        if (flag) flag->push_back({v, toks[i + 4].line});
        moved.erase(v);
      }
      to_move.insert(v);
      i += 5;
      continue;
    }
    if (toks[i].kind != TokKind::kIdent) continue;
    // A name after '.', '->' or '::' is a member/scope name that merely
    // shadows the variable (`pd.delta` is not a read of `delta`).
    if (i > st.first && (is_punct(toks[i - 1], ".") ||
                         is_punct(toks[i - 1], "->") ||
                         is_punct(toks[i - 1], "::")))
      continue;
    const std::string& name = toks[i].text;
    if (!moved.count(name)) continue;
    if (i == st.first && name == target) continue;  // overwritten below
    // Re-filling kills: x.clear() / x.reset(...) / x.assign(...).
    if (i + 3 < st.last && is_punct(toks[i + 1], ".") &&
        kResetters.count(toks[i + 2].text) && is_punct(toks[i + 3], "(")) {
      moved.erase(name);
      i += 3;
      continue;
    }
    // Mid-statement assignment target (`a, x = fresh` is rare; still treat
    // `x =` as a kill, not a read).
    if (i + 1 < st.last && is_punct(toks[i + 1], "=")) {
      moved.erase(name);
      continue;
    }
    if (flag) flag->push_back({name, toks[i].line});
    moved.erase(name);  // report each variable once per path
  }
  if (!target.empty()) moved.erase(target);
  for (const std::string& v : to_move) moved.insert(v);
}

void rule_use_after_move(const FileCfg& file, std::vector<Finding>& out) {
  for (std::size_t fi = 0; fi < file.functions.size(); ++fi) {
    const FunctionCfg& fn = file.functions[fi];
    const int n = static_cast<int>(fn.blocks.size());
    std::vector<std::vector<int>> preds(n);
    for (int b = 0; b < n; ++b)
      for (const int s : fn.blocks[b].succs) preds[s].push_back(b);

    std::vector<std::set<std::string>> out_state(n);
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < n + 8) {
      changed = false;
      for (int b = 0; b < n; ++b) {
        std::set<std::string> state;  // may-moved at block entry
        for (const int p : preds[b])
          state.insert(out_state[p].begin(), out_state[p].end());
        for (const Stmt& st : fn.blocks[b].stmts)
          move_transfer(file, static_cast<int>(fi), st, state, nullptr);
        if (state != out_state[b]) {
          out_state[b] = std::move(state);
          changed = true;
        }
      }
    }

    // Reporting sweep over the stable states.
    std::set<std::string> reported;
    for (int b = 0; b < n; ++b) {
      std::set<std::string> state;
      for (const int p : preds[b])
        state.insert(out_state[p].begin(), out_state[p].end());
      std::vector<MoveEvent> flags;
      for (const Stmt& st : fn.blocks[b].stmts)
        move_transfer(file, static_cast<int>(fi), st, state, &flags);
      for (const MoveEvent& e : flags) {
        if (!reported.insert(e.var).second) continue;
        Finding f;
        f.file = file.path;
        f.line = e.line;
        f.rule = "use-after-move";
        f.detail = owner_name(file, static_cast<int>(fi)) + ":" + e.var;
        f.message = "'" + e.var +
                    "' is read after std::move() moved it out with no "
                    "reassignment in between";
        out.push_back(std::move(f));
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::string Finding::key() const { return rule + " " + file + " " + detail; }

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"parallel-shared-write",
       "a variable declared outside a parallel_for/for_each_tile lambda is "
       "written inside it without std::atomic, a dominating lock, or "
       "per-lane indexing"},
      {"mutation-without-invalidate",
       "tile/conductance state is mutated through the store but some path "
       "reaches the function exit without invalidate()/mark_pack_dirty()"},
      {"unchecked-must-use",
       "the result of save_checkpoint/load_checkpoint/detect/detect_store/"
       "forward_matmul is discarded or bound to a variable that is never "
       "read"},
      {"use-after-move",
       "a variable is read after std::move() with no reassignment on some "
       "path (reaching-definitions over moves)"},
  };
  return kRules;
}

std::vector<Finding> analyze_file(const FileCfg& file,
                                  const AnalyzeOptions& opts) {
  std::vector<Finding> findings;

  const bool pool_owner =
      opts.apply_path_exemptions &&
      (ends_with(file.path, "src/common/thread_pool.cpp") ||
       ends_with(file.path, "src/common/thread_pool.hpp"));
  const bool store_owner =
      opts.apply_path_exemptions &&
      (ends_with(file.path, "src/rcs/crossbar_store.cpp") ||
       ends_with(file.path, "src/rcs/crossbar_store.hpp"));

  if (!pool_owner) rule_parallel_shared_write(file, findings);
  if (!store_owner) rule_mutation_without_invalidate(file, findings);
  rule_unchecked_must_use(file, findings);
  rule_use_after_move(file, findings);

  const refit::lint::Suppressions sup =
      refit::lint::parse_suppressions(file.lex.comments, "refit-flow:");
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&](const Finding& f) {
                                  return sup.allows(f.rule, f.line);
                                }),
                 findings.end());

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.detail < b.detail;
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.line == b.line && a.rule == b.rule &&
                                      a.detail == b.detail;
                             }),
                 findings.end());
  return findings;
}

Baseline Baseline::parse(std::istream& is) {
  Baseline b;
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    const std::size_t stop = line.find_last_not_of(" \t\r");
    line = line.substr(start, stop - start + 1);
    if (line.empty() || line[0] == '#') continue;
    b.keys.insert(line);
  }
  return b;
}

RatchetResult apply_baseline(const std::vector<Finding>& findings,
                             const Baseline& baseline) {
  RatchetResult rr;
  std::set<std::string> matched;
  for (const Finding& f : findings) {
    if (baseline.covers(f)) {
      rr.frozen.push_back(f);
      matched.insert(f.key());
    } else {
      rr.fresh.push_back(f);
    }
  }
  for (const std::string& k : baseline.keys)
    if (!matched.count(k)) rr.stale.push_back(k);
  return rr;
}

}  // namespace refit::flow
