// refit-flow phase 2 — dataflow rules over the per-function CFGs that
// cfg.hpp builds (docs/tooling.md has the catalogue and worked examples).
//
//   parallel-shared-write    inside a lambda handed to ThreadPool::
//                            parallel_for / parallel_for_grained /
//                            TileGrid::for_each_tile, a write to a
//                            variable declared *outside* the lambda that
//                            is not a subscripted element (`out[i] = ...`
//                            is the pool's per-lane contract), not a
//                            std::atomic, and not dominated by a lock
//                            statement. Static partitioning makes reads
//                            race-free; a shared scalar write never is.
//   mutation-without-invalidate
//                            a statement mutates crossbar tile state
//                            through CrossbarWeightStore::tile() (direct
//                            chain or via a saved reference) and some path
//                            reaches the function exit with no
//                            invalidate() / mark_all_dirty() /
//                            mark_pack_dirty() / resync_counters() — the
//                            store's effective/packed caches go stale.
//   unchecked-must-use       a call to save_checkpoint / load_checkpoint /
//                            detect / detect_store / forward_matmul whose
//                            result is discarded, or bound to a variable
//                            that is dead on every path to exit. These
//                            APIs report faults/IO status; dropping the
//                            result hides real failures.
//   use-after-move           reaching-definitions over std::move(x): any
//                            read of x while a move reaches it and no
//                            reassignment / .clear() / .reset() / .assign()
//                            intervenes.
//
// Findings ratchet against tools/refit_flow/baseline.txt exactly like
// refit-audit: keys are (rule, file, detail) — never line numbers — so
// unrelated edits cannot unfreeze frozen debt. In-source suppression uses
// the shared syntax with this tool's tag: `// refit-flow: allow(rule)`.
#pragma once

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "common/cfg.hpp"

namespace refit::flow {

// The CFG layer lives in tools/common (shared with refit-det); the flow
// rules and their tests keep addressing it as refit::flow.
using cfg::BasicBlock;
using cfg::build_file_cfg;
using cfg::dump_cfg;
using cfg::FileCfg;
using cfg::FunctionCfg;
using cfg::in_nested_body;
using cfg::Stmt;

/// One dataflow violation. `detail` is the stable identity — typically
/// "<function>:<variable-or-callee>" — the baseline keys on.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string detail;

  /// Baseline key: "<rule> <file> <detail>".
  [[nodiscard]] std::string key() const;
};

/// Name + one-line description, for --list-rules and docs.
struct RuleInfo {
  const char* name;
  const char* description;
};

/// All rules refit-flow knows, in report order.
const std::vector<RuleInfo>& rules();

struct AnalyzeOptions {
  /// Paths with owner-side exemptions are matched by suffix against the
  /// scanned path (defaults cover the store and pool implementations,
  /// which legitimately touch their own internals).
  bool apply_path_exemptions = true;
};

/// Run every dataflow rule over one file's CFGs. Findings are sorted by
/// (line, rule, detail); in-source suppressions are already applied.
[[nodiscard]] std::vector<Finding> analyze_file(const FileCfg& file,
                                                const AnalyzeOptions& opts);

// ---------------------------------------------------------------------------
// Baseline ratchet (same shape and semantics as refit-audit's)
// ---------------------------------------------------------------------------

/// The checked-in debt freeze: one `<rule> <file> <detail>` key per line,
/// `#` comments and blank lines ignored.
struct Baseline {
  std::set<std::string> keys;

  [[nodiscard]] static Baseline parse(std::istream& is);
  [[nodiscard]] bool covers(const Finding& f) const {
    return keys.count(f.key()) > 0;
  }
};

/// Splits findings into `fresh` (fail CI) and `frozen` (baselined), and
/// returns the baseline keys that no longer match anything (stale —
/// regenerate with scripts/flow_baseline.sh).
struct RatchetResult {
  std::vector<Finding> fresh;
  std::vector<Finding> frozen;
  std::vector<std::string> stale;
};
[[nodiscard]] RatchetResult apply_baseline(const std::vector<Finding>& findings,
                                           const Baseline& baseline);

}  // namespace refit::flow
