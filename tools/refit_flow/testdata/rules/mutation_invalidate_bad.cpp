// Tile mutations that can reach function exit without invalidating the
// store's derived caches (effective weights, packed planes).
struct Tile {
  void write(int idx, double g);
  void force_fault(int idx);
};
struct Store {
  Tile& tile(int ti, int tj);
  void invalidate();
};

void poke(Store& s) {
  s.tile(0, 0).write(3, 1.5);  // EXPECT-FLOW: mutation-without-invalidate
}

void early_out(Store& s, bool fast) {
  s.tile(1, 1).force_fault(7);  // EXPECT-FLOW: mutation-without-invalidate
  if (fast) return;  // this path skips the invalidate below
  s.invalidate();
}

void via_alias(Store& s) {
  auto& tl = s.tile(2, 2);
  tl.write(0, 0.25);  // EXPECT-FLOW: mutation-without-invalidate
}
