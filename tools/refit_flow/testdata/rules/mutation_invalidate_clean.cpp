// Store mutations that correctly invalidate (or mark dirty) on every
// path — including the canonical loop-then-invalidate shape detect_store
// uses.
struct Tile {
  void write(int idx, double g);
};
struct TileGrid {
  template <class F>
  void for_each_tile(bool only_dirty, F f);
};
struct Store {
  Tile& tile(int ti, int tj);
  void invalidate();
  void mark_pack_dirty(int ti, int tj);
};

void poke_then_invalidate(Store& s) {
  s.tile(0, 0).write(3, 1.5);
  s.invalidate();
}

void branchy(Store& s, bool both) {
  s.tile(1, 0).write(0, 0.5);
  if (both) {
    s.tile(1, 1).write(0, 0.5);
    s.invalidate();
  } else {
    s.invalidate();
  }
}

void marks_pack(Store& s) {
  s.tile(2, 2).write(1, 0.125);
  s.mark_pack_dirty(2, 2);
}

void loop_then_invalidate(Store& s, TileGrid& grid) {
  grid.for_each_tile(true, [&](int ti, int tj) {
    s.tile(ti, tj).write(0, 0.0);
  });
  s.invalidate();
}

double reads_are_free(Store& s) {
  auto& tl = s.tile(3, 3);
  (void)tl;
  return 0.0;
}
