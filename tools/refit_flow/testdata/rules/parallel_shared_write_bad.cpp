// Shared-scalar writes inside thread-pool lambdas: every flavor the rule
// must catch. Fixtures only need to lex, not compile.
#include <cstddef>

struct Pool {
  template <class F>
  void parallel_for(std::size_t n, F f);
};

void accumulate(Pool& pool, std::size_t n) {
  double sum = 0.0;
  int hits = 0;
  pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      sum += 1.0;  // EXPECT-FLOW: parallel-shared-write
      ++hits;      // EXPECT-FLOW: parallel-shared-write
    }
  });
}

struct Reducer {
  Pool& pool;
  double total = 0.0;
  void run(std::size_t n) {
    pool.parallel_for(n, [this](std::size_t b, std::size_t e) {
      total += static_cast<double>(e - b);  // EXPECT-FLOW: parallel-shared-write
    });
  }
};
