// Benign writes inside thread-pool lambdas: none of these may fire. The
// clean cases mirror the exemptions the rule documents: per-lane element
// writes, std::atomic, a dominating lock, by-value captures, and locals.
#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

struct Pool {
  template <class F>
  void parallel_for(std::size_t n, F f);
};

void lanes(Pool& pool, std::vector<float>& out) {
  pool.parallel_for(out.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out[i] = 1.0f;
  });
}

void atomics(Pool& pool, std::size_t n) {
  std::atomic<int> hits{0};
  pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
    hits += static_cast<int>(e - b);
  });
}

void locked(Pool& pool, std::size_t n) {
  std::mutex mu;
  double sum = 0.0;
  pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> g(mu);
    sum += static_cast<double>(e - b);
  });
}

void copies(Pool& pool, std::size_t n) {
  int scratch = 0;
  pool.parallel_for(n, [=](std::size_t b, std::size_t e) mutable {
    scratch += static_cast<int>(e - b);
  });
  (void)scratch;
}

void locals(Pool& pool, std::size_t n) {
  pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
    double acc = 0.0;
    for (std::size_t i = b; i < e; ++i) acc += 1.0;
    (void)acc;
  });
}
