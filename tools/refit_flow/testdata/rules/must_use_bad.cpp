// Discarded and dead detection/checkpoint results.
#include <iosfwd>

struct Outcome {
  int faults;
};
struct Crossbar {};
struct Detector {
  Outcome detect(Crossbar& xb);
};
struct Engine {
  bool save_checkpoint(std::ostream& os);
};

void drops_result(Detector& det, Crossbar& xb) {
  det.detect(xb);  // EXPECT-FLOW: unchecked-must-use
}

void dead_binding(Detector& det, Crossbar& xb) {
  auto outcome = det.detect(xb);  // EXPECT-FLOW: unchecked-must-use
}

void drops_io(Engine& eng, std::ostream& os) {
  eng.save_checkpoint(os);  // EXPECT-FLOW: unchecked-must-use
}
