// Properly consumed detection/checkpoint results: bound-and-read, tested
// in a condition, returned, passed along, or read on a later branch.
#include <iosfwd>

struct Outcome {
  int faults;
};
struct Crossbar {};
struct Detector {
  Outcome detect(Crossbar& xb);
};
struct Engine {
  bool save_checkpoint(std::ostream& os);
};

int counts(Detector& det, Crossbar& xb) {
  auto outcome = det.detect(xb);
  return outcome.faults;
}

void in_condition(Engine& eng, std::ostream& os) {
  if (!eng.save_checkpoint(os)) {
    return;
  }
}

Outcome forwarded(Detector& det, Crossbar& xb) {
  return det.detect(xb);
}

void as_argument(Detector& det, Crossbar& xb, void (*sink)(Outcome)) {
  sink(det.detect(xb));
}

void later_use_in_branch(Detector& det, Crossbar& xb, bool verbose) {
  auto outcome = det.detect(xb);
  if (verbose) {
    (void)outcome.faults;
  }
}
