// Reads of moved-from values: straight-line, across a conditional join,
// and a double move.
#include <string>
#include <utility>
#include <vector>

int reads_after_move(std::vector<int> v) {
  std::vector<int> w = std::move(v);
  return static_cast<int>(v.size());  // EXPECT-FLOW: use-after-move
}

std::string conditional_move(std::string s, bool flip) {
  std::string t;
  if (flip) {
    t = std::move(s);
  }
  return s + t;  // EXPECT-FLOW: use-after-move
}

void double_move(std::vector<int> v, std::vector<std::vector<int>>& sink) {
  sink.push_back(std::move(v));
  sink.push_back(std::move(v));  // EXPECT-FLOW: use-after-move
}
