// Move-out patterns that must stay silent: reassignment, refilling via
// clear(), member moves (untracked by design), and the steal-and-reset
// loop idiom.
#include <string>
#include <utility>
#include <vector>

int reassigned(std::vector<int> v) {
  std::vector<int> w = std::move(v);
  v = std::vector<int>();
  return static_cast<int>(v.size() + w.size());
}

void refilled(std::string s, std::vector<std::string>& sink) {
  sink.push_back(std::move(s));
  s.clear();
  sink.push_back(std::move(s));
}

std::string member_moves(std::pair<std::string, std::string> p) {
  auto first = std::move(p.first);
  return first + p.second;
}

std::vector<int> loop_local(std::vector<std::vector<int>>& out, int n) {
  std::vector<int> acc;
  for (int i = 0; i < n; ++i) {
    std::vector<int> tmp = std::move(acc);
    acc = std::vector<int>();
    out.push_back(std::move(tmp));
  }
  return acc;
}
