// Lambda in lambda: each gets its own CFG; the enclosing statement keeps
// the nested tokens.
int nest(int n) {
  auto outer = [&](int k) {
    auto inner = [&](int j) { return j + k; };
    return inner(k) + n;
  };
  return outer(n);
}
