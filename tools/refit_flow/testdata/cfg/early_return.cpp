// Early-return ladder: every guard edges straight to the exit block.
int ladder(int x) {
  if (x < 0) return -1;
  if (x == 0) {
    return 0;
  }
  if (x < 10) return 1;
  return 2;
}
