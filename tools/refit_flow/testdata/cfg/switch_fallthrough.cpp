// Switch with fallthrough, break, return, and default: the golden pins
// head->every-label edges plus the fallthrough edge case 0 -> case 1.
int classify(int x) {
  int kind = 0;
  switch (x) {
    case 0:
      kind = 1;
      // fallthrough
    case 1:
      kind = 2;
      break;
    case 2:
      return -1;
    default:
      kind = 3;
  }
  return kind;
}
