// Ternaries stay inside one statement — they must not split blocks.
int pick(int a, int b, bool flip) {
  int lo = flip ? b : a;
  int hi = (a > b) ? a : b;
  return flip ? lo : hi;
}
