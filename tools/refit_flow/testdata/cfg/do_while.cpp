// do/while: body executes before the condition; break exits past it.
int countdown(int n) {
  int steps = 0;
  do {
    ++steps;
    if (steps > 100) break;
  } while (n-- > 0);
  return steps;
}
