// Expected-findings self-test for refit-flow, mirroring refit-lint's
// harness: every fixture under testdata/rules/ is analyzed and the
// produced (line, rule) pairs must match the fixture's annotations
// exactly —
//
//   // EXPECT-FLOW: <rule>        finding on this line
//   // EXPECT-FLOW@<N>: <rule>    finding reported at line N
//
// A fixture with no annotations asserts the analyzer is silent on it, so
// clean fixtures guard against false positives as much as the bad ones
// guard against false negatives.
//
// CFG construction itself is pinned by golden dumps: each testdata/cfg/
// X.cpp has an X.golden holding the exact dump_cfg() output (regenerate
// with `build/tools/refit_flow --dump-cfg <file>` minus the `== ` header).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "flow.hpp"
#include "gtest/gtest.h"

namespace fs = std::filesystem;

namespace {

using LineRule = std::pair<int, std::string>;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::multiset<LineRule> parse_expectations(const std::string& content) {
  std::multiset<LineRule> want;
  const std::regex at_line(R"(EXPECT-FLOW@(\d+):\s*([a-z0-9-]+))");
  const std::regex same_line(R"(EXPECT-FLOW:\s*([a-z0-9-]+))");
  std::istringstream ss(content);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    std::smatch m;
    if (std::regex_search(line, m, at_line))
      want.emplace(std::stoi(m[1]), m[2]);
    else if (std::regex_search(line, m, same_line))
      want.emplace(lineno, m[1]);
  }
  return want;
}

std::vector<fs::path> fixtures(const std::string& subdir,
                               const std::string& ext) {
  std::vector<fs::path> out;
  const fs::path dir = fs::path(REFIT_FLOW_TESTDATA_DIR) / subdir;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.is_regular_file() && e.path().extension() == ext)
      out.push_back(e.path());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<refit::flow::Finding> analyze(const fs::path& p,
                                          const std::string& content) {
  const refit::flow::FileCfg cfg =
      refit::flow::build_file_cfg(p.generic_string(), content);
  return refit::flow::analyze_file(cfg, refit::flow::AnalyzeOptions{});
}

}  // namespace

TEST(RefitFlow, TestdataDirHasFixtures) {
  EXPECT_GE(fixtures("rules", ".cpp").size(), 8u)
      << "testdata/rules/ should hold a bad and a clean fixture per rule";
  EXPECT_GE(fixtures("cfg", ".cpp").size(), 5u)
      << "testdata/cfg/ should pin the CFG edge cases";
}

TEST(RefitFlow, FixturesProduceExactlyTheAnnotatedFindings) {
  for (const fs::path& p : fixtures("rules", ".cpp")) {
    SCOPED_TRACE(p.filename().string());
    const std::string content = read_file(p);
    const std::multiset<LineRule> want = parse_expectations(content);

    std::multiset<LineRule> got;
    for (const auto& f : analyze(p, content)) got.emplace(f.line, f.rule);

    for (const auto& [line, rule] : want)
      EXPECT_TRUE(got.count({line, rule}))
          << "expected finding [" << rule << "] at line " << line
          << " was not produced";
    for (const auto& [line, rule] : got)
      EXPECT_TRUE(want.count({line, rule}))
          << "unexpected finding [" << rule << "] at line " << line;
  }
}

TEST(RefitFlow, EveryRuleIsCoveredByAFixture) {
  std::set<std::string> exercised;
  for (const fs::path& p : fixtures("rules", ".cpp"))
    for (const auto& [line, rule] : parse_expectations(read_file(p)))
      exercised.insert(rule);
  for (const auto& r : refit::flow::rules())
    EXPECT_TRUE(exercised.count(r.name))
        << "rule '" << r.name << "' has no expected-findings fixture";
}

TEST(RefitFlow, CfgGoldensMatch) {
  for (const fs::path& p : fixtures("cfg", ".cpp")) {
    SCOPED_TRACE(p.filename().string());
    fs::path golden = p;
    golden.replace_extension(".golden");
    ASSERT_TRUE(fs::exists(golden))
        << "missing golden for " << p.filename()
        << " (regenerate with refit_flow --dump-cfg)";
    const refit::flow::FileCfg cfg =
        refit::flow::build_file_cfg(p.filename().generic_string(),
                                    read_file(p));
    std::ostringstream dump;
    refit::flow::dump_cfg(dump, cfg);
    EXPECT_EQ(dump.str(), read_file(golden))
        << "CFG drift — if intentional, refresh the golden with "
           "`refit_flow --dump-cfg " << p.filename().string() << "`";
  }
}

TEST(RefitFlow, SuppressionCoversOwnAndNextLineOnly) {
  const std::string src =
      "// header\n"
      "void f(Det& d, Xb& xb) {\n"
      "  // refit-flow: allow(unchecked-must-use)\n"
      "  d.detect(xb);\n"
      "  d.detect(xb);\n"
      "}\n";
  const auto findings = analyze("tests/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_EQ(findings[0].rule, "unchecked-must-use");
}

TEST(RefitFlow, PathExemptionsApply) {
  // The store owns its dirty flags; the pool owns its loop internals.
  const std::string mut =
      "// impl\nvoid touch(Store& s) { s.tile(0, 0).write(1, 2.0); }\n";
  EXPECT_TRUE(analyze("src/rcs/crossbar_store.cpp", mut).empty());
  EXPECT_FALSE(analyze("src/rcs/rcs_system.cpp", mut).empty());
}

TEST(RefitFlow, FindingKeyIsLineIndependent) {
  const std::string src =
      "// impl\nvoid touch(Store& s) { s.tile(0, 0).write(1, 2.0); }\n";
  const auto a = analyze("src/x.cpp", src);
  const auto b = analyze("src/x.cpp", "// pad\n" + src);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NE(a[0].line, b[0].line);
  EXPECT_EQ(a[0].key(), b[0].key());  // the ratchet never keys on lines
}

TEST(RefitFlow, BaselineRatchet) {
  std::istringstream base(
      "# comment\n"
      "\n"
      "mutation-without-invalidate src/x.cpp touch:s\n"
      "use-after-move src/gone.cpp f:v\n");
  const refit::flow::Baseline bl = refit::flow::Baseline::parse(base);
  refit::flow::Finding frozen;
  frozen.file = "src/x.cpp";
  frozen.rule = "mutation-without-invalidate";
  frozen.detail = "touch:s";
  refit::flow::Finding fresh = frozen;
  fresh.detail = "touch:other";
  const refit::flow::RatchetResult rr =
      refit::flow::apply_baseline({frozen, fresh}, bl);
  ASSERT_EQ(rr.frozen.size(), 1u);
  ASSERT_EQ(rr.fresh.size(), 1u);
  EXPECT_EQ(rr.fresh[0].detail, "touch:other");
  ASSERT_EQ(rr.stale.size(), 1u);
  EXPECT_EQ(rr.stale[0], "use-after-move src/gone.cpp f:v");
}

TEST(RefitFlow, LambdaParallelCalleeIsRecorded) {
  const std::string src =
      "void run(Pool& pool, std::vector<float>& out) {\n"
      "  pool.parallel_for(out.size(), [&](std::size_t b, std::size_t e) {\n"
      "    for (std::size_t i = b; i < e; ++i) out[i] = 0.0f;\n"
      "  });\n"
      "  auto plain = [&]() { return out.size(); };\n"
      "  (void)plain;\n"
      "}\n";
  const refit::flow::FileCfg cfg =
      refit::flow::build_file_cfg("tests/x.cpp", src);
  ASSERT_EQ(cfg.functions.size(), 3u);
  int parallel = 0, plain = 0;
  for (const auto& fn : cfg.functions) {
    if (!fn.is_lambda) continue;
    if (fn.parallel_callee == "parallel_for") ++parallel;
    if (fn.parallel_callee.empty()) ++plain;
  }
  EXPECT_EQ(parallel, 1);
  EXPECT_EQ(plain, 1);
}
