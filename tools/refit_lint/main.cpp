// refit-lint CLI: scans the given files/directories for violations of the
// REFIT project invariants (see lint.hpp) and reports them compiler-style
// (`path:line: [rule] message`) so editors and CI can jump to them.
//
// Usage:
//   refit_lint [--list-rules] [--json] [<file-or-dir>...]
//
// With no paths, the standard project roots are scanned: src tests bench
// examples tools. `--json` emits the findings as a JSON array of
// {file, line, rule, message} records (CI turns these into GitHub
// annotations); the human summary moves to stderr.
//
// Exit status: 0 = clean, 1 = findings, 2 = usage or I/O error.
// Directories are scanned recursively for .cpp/.hpp/.h/.cc/.hh files;
// directories named `testdata` or starting with `build` are skipped so the
// linter's own expected-findings fixtures never count against the tree.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh" || ext == ".cxx";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "testdata" || name.rfind("build", 0) == 0 ||
         name == ".git" || name == "third_party";
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  if (fs::is_regular_file(root)) {
    if (lintable_extension(root)) out.push_back(root);
    return;
  }
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable_extension(it->path()))
      out.push_back(it->path());
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The roots scanned when the CLI is invoked bare (matches check.sh/CI).
const char* const kDefaultRoots[] = {"src", "tests", "bench", "examples",
                                     "tools"};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool json = false;
  std::vector<std::string> roots;
  for (const std::string& a : args) {
    if (a == "--list-rules") {
      for (const auto& r : refit::lint::rules())
        std::cout << r.name << "\n    " << r.description << "\n";
      return 0;
    }
    if (a == "--json") {
      json = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "usage: refit_lint [--list-rules] [--json] "
                   "[<file-or-dir>...]\n";
      return 2;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty())
    for (const char* r : kDefaultRoots)
      if (fs::exists(r)) roots.emplace_back(r);
  if (roots.empty()) {
    std::cerr << "refit_lint: no inputs (run from the repo root or pass "
                 "paths)\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& a : roots) {
    if (!fs::exists(a)) {
      std::cerr << "refit_lint: no such file or directory: " << a << "\n";
      return 2;
    }
    collect(a, files);
  }
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  std::map<std::string, std::size_t> per_rule;
  std::ostream& human = json ? std::cerr : std::cout;
  if (json) std::cout << "[";
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::cerr << "refit_lint: cannot read " << f << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto findings =
        refit::lint::lint_source(f.generic_string(), ss.str());
    for (const auto& fd : findings) {
      if (json) {
        std::cout << (total ? ",\n" : "\n") << "  {\"file\": \""
                  << json_escape(fd.file) << "\", \"line\": " << fd.line
                  << ", \"rule\": \"" << json_escape(fd.rule)
                  << "\", \"message\": \"" << json_escape(fd.message)
                  << "\"}";
      } else {
        std::cout << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
                  << fd.message << "\n";
      }
      ++per_rule[fd.rule];
      ++total;
    }
  }
  if (json) std::cout << (total ? "\n]\n" : "]\n");

  if (total == 0) {
    human << "refit-lint: " << files.size() << " files clean\n";
    return 0;
  }
  human << "refit-lint: " << total << " finding(s) in " << files.size()
        << " files scanned:";
  for (const auto& [rule, count] : per_rule)
    human << " " << rule << "=" << count;
  human << "\n(suppress a deliberate use with `// refit-lint: "
           "allow(<rule>)` on or above the line)\n";
  return 1;
}
