// refit-lint CLI: scans the given files/directories for violations of the
// REFIT project invariants (see lint.hpp) and reports them compiler-style
// (`path:line: [rule] message`) so editors and CI can jump to them.
//
// Usage:
//   refit_lint [--list-rules] <file-or-dir>...
//
// Exit status: 0 = clean, 1 = findings, 2 = usage or I/O error.
// Directories are scanned recursively for .cpp/.hpp/.h/.cc/.hh files;
// directories named `testdata` or starting with `build` are skipped so the
// linter's own expected-findings fixtures never count against the tree.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh" || ext == ".cxx";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "testdata" || name.rfind("build", 0) == 0 ||
         name == ".git" || name == "third_party";
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  if (fs::is_regular_file(root)) {
    if (lintable_extension(root)) out.push_back(root);
    return;
  }
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable_extension(it->path()))
      out.push_back(it->path());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--list-rules") {
    for (const auto& r : refit::lint::rules())
      std::cout << r.name << "\n    " << r.description << "\n";
    return 0;
  }
  if (args.empty()) {
    std::cerr << "usage: refit_lint [--list-rules] <file-or-dir>...\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& a : args) {
    if (!fs::exists(a)) {
      std::cerr << "refit_lint: no such file or directory: " << a << "\n";
      return 2;
    }
    collect(a, files);
  }
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  std::map<std::string, std::size_t> per_rule;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::cerr << "refit_lint: cannot read " << f << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto findings =
        refit::lint::lint_source(f.generic_string(), ss.str());
    for (const auto& fd : findings) {
      std::cout << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
                << fd.message << "\n";
      ++per_rule[fd.rule];
      ++total;
    }
  }

  if (total == 0) {
    std::cout << "refit-lint: " << files.size() << " files clean\n";
    return 0;
  }
  std::cout << "refit-lint: " << total << " finding(s) in " << files.size()
            << " files scanned:";
  for (const auto& [rule, count] : per_rule)
    std::cout << " " << rule << "=" << count;
  std::cout << "\n(suppress a deliberate use with `// refit-lint: "
               "allow(<rule>)` on or above the line)\n";
  return 1;
}
