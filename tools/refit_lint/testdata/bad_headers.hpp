// Fixture: `#pragma once` appearing after another preprocessor line, plus
// `using namespace` at header scope.
#include <vector>
#pragma once
// EXPECT-LINT@4: pragma-once

using namespace std;  // EXPECT-LINT: using-namespace-header

inline int count_things(const std::vector<int>& v) {
  return static_cast<int>(v.size());
}
