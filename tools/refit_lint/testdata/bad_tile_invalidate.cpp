// Fixture: mutating a crossbar tile through the store without invalidate().
struct FakeTile {
  void write(int, int, double) {}
  void force_fault(int, int, int) {}
  void force_soft_fault(int, int, int, int) {}
  void strong_write(int, int, double) {}
  int rows() { return 4; }
};

struct FakeStore {
  FakeTile& tile(int, int) { return t_; }
  void invalidate() {}
  FakeTile t_;
};

void paired_mutation_is_fine(FakeStore& store) {
  store.tile(0, 0).force_fault(1, 1, 1);
  store.invalidate();
}

void read_only_tile_access_is_fine(FakeStore& store) {
  (void)store.tile(0, 0).rows();
}

void suppressed_mutation(FakeStore& store) {
  // refit-lint: allow(tile-invalidate)
  store.tile(0, 0).write(0, 0, 0.5);
}

// Padding so the mutations below have no invalidate() token within the
// 40-line forward window that the rule searches.
void unpaired_write(FakeStore& store) {
  store.tile(0, 0).write(0, 0, 0.5);  // EXPECT-LINT: tile-invalidate
}

void unpaired_force_fault(FakeStore* store) {
  store->tile(1, 1).force_fault(2, 2, 1);  // EXPECT-LINT: tile-invalidate
}

void unpaired_soft_fault(FakeStore& store) {
  store.tile(0, 1).force_soft_fault(3, 3, 1, 2);  // EXPECT-LINT: tile-invalidate
}

void unpaired_strong_write(FakeStore& store) {
  store.tile(1, 0).strong_write(0, 0, 0.5);  // EXPECT-LINT: tile-invalidate
}
