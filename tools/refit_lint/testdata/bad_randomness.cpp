// Fixture: ad-hoc randomness outside common/rng.
#include <cstdlib>
#include <random>

int c_rand() {
  return rand();  // EXPECT-LINT: randomness
}

void c_srand() {
  srand(42);  // EXPECT-LINT: randomness
}

int std_qualified_rand() {
  return std::rand();  // EXPECT-LINT: randomness
}

double mersenne() {
  std::mt19937 gen(123);  // EXPECT-LINT: randomness
  return static_cast<double>(gen());
}

unsigned hardware_entropy() {
  std::random_device rd;  // EXPECT-LINT: randomness
  return rd();
}

struct HasRandMember {
  int rand() { return 4; }
};

int member_named_rand_is_fine() {
  HasRandMember h;
  return h.rand();
}

int suppressed_rand() {
  return rand();  // refit-lint: allow(randomness)
}
