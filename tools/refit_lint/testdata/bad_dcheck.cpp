// Fixture: side effects inside REFIT_DCHECK, which vanish under NDEBUG.
#define REFIT_DCHECK(expr) ((void)0)
#define REFIT_DCHECK_MSG(expr, msg) ((void)0)

void increments(int i) {
  REFIT_DCHECK(++i < 10);  // EXPECT-LINT: dcheck-side-effect
}

void assigns(int x) {
  REFIT_DCHECK(x = 5);  // EXPECT-LINT: dcheck-side-effect
}

void compound_assigns(int x) {
  REFIT_DCHECK_MSG(x += 2, "oops");  // EXPECT-LINT: dcheck-side-effect
}

void comparisons_are_fine(int x, int y) {
  REFIT_DCHECK(x == 5);
  REFIT_DCHECK(x <= y && y >= 0);
  REFIT_DCHECK_MSG(x != y, "x=" << x);
}

void suppressed(int i) {
  REFIT_DCHECK(i-- > 0);  // refit-lint: allow(dcheck-side-effect)
}
