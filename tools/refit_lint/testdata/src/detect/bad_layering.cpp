// Fixture: a src/detect file reaching up into core/ (and sideways into
// data/), both inversions of the module layering. Includes of its own
// module, of lower layers, and of system headers are fine.
#include <vector>

#include "core/engine.hpp"     // EXPECT-LINT: layering
#include "data/dataset.hpp"    // EXPECT-LINT: layering
#include "detect/quiescent_detector.hpp"
#include "rcs/crossbar_store.hpp"
#include "common/check.hpp"

void f() {}
