// Fixture: src/obs is the one module allowed to read std::chrono clocks
// (it implements the Clock seam) and to use mutexes/atomics directly (the
// registry and tracer own their synchronization). Must lint clean.
#include <chrono>
#include <mutex>

#include "obs/clock.hpp"

std::mutex g_mu;

unsigned long long raw_now() {
  return static_cast<unsigned long long>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}
