// Fixture: src/obs owns the flight-recorder tail printer, so its stream
// writes are exempt from the obs-event rule (no expected findings).
#include <iostream>

namespace refit::obs {

void dump_tail_fixture() {
  std::cerr << "== flight recorder tail ==\n";
}

}  // namespace refit::obs
