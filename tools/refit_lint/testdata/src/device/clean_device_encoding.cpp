// Fixture: src/device owns the conductance-mutation primitives, so the
// identical calls that bad_device_encoding.cpp flags are silent here.
#include "rram/crossbar.hpp"

struct FakeCrossbar {
  void force_fault(int, int, int) {}
  void force_soft_fault(int, int, int, int) {}
  void strong_write(int, int, double) {}
  void drift_toward(double, double) {}
  void decay_soft_faults() {}
};

void device_layer_mutations(FakeCrossbar& xb) {
  xb.force_fault(0, 0, 1);
  xb.force_soft_fault(0, 0, 1, 2);
  xb.strong_write(1, 1, 0.5);
  xb.drift_toward(0.0, 0.01);
  xb.decay_soft_faults();
}
