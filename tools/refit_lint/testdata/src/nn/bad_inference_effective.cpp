// Fixture: effective() materialized on an inference path. Forward passes
// must go through WeightStore::forward_matmul so crossbar backends keep
// the fused per-tile kernel; only nn/weight_store may call effective()
// on this side.
#include "nn/weight_store.hpp"

namespace refit {

Tensor bad_forward(WeightStore& store, WeightStore* pstore, const Tensor& x) {
  Tensor a = matmul(x, store.effective());    // EXPECT-LINT: inference-effective
  Tensor b = matmul(x, pstore->effective());  // EXPECT-LINT: inference-effective
  return add(a, b);
}

Tensor good_forward(WeightStore& store, const Tensor& x) {
  // The sanctioned spelling: fused on RRAM backends, bit-identical.
  Tensor y = store.forward_matmul(x);
  // Backward-side reads use target(), which never materializes.
  const Tensor& w = store.target();
  (void)w;
  return y;
}

}  // namespace refit
