// Fixture: a src/rcs header including detect/ — the detector depends on
// the crossbar stores, never the other way around.
#pragma once

#include "detect/quiescent_detector.hpp"  // EXPECT-LINT: layering
#include "rram/faults.hpp"
#include "nn/weight_store.hpp"
