// Fixture: library modules writing status to the process streams instead
// of the structured event log (obs-event rule).
#include <iostream>

namespace refit {

void report_fault(int row, int col) {
  std::cout << "fault at " << row << "," << col << "\n";  // EXPECT-LINT: obs-event
}

void report_remap(int cost) {
  std::cerr << "remap cost " << cost << "\n";  // EXPECT-LINT: obs-event
}

void report_checkpoint(int iter) {
  // Suppressed: the annotation machinery itself must stay usable.
  // refit-lint: allow(obs-event)
  std::cerr << "checkpoint " << iter << "\n";
}

}  // namespace refit
