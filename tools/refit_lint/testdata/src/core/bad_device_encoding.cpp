// Fixture: core-layer code mutating raw conductance behind the encoding
// seam. Every Crossbar conductance mutator is banned outside src/device,
// src/rram, and rcs/crossbar_store.
struct FakeCrossbar {
  void force_fault(int, int, int) {}
  void force_soft_fault(int, int, int, int) {}
  void strong_write(int, int, double) {}
  void drift_toward(double, double) {}
  void decay_soft_faults() {}
};

void declarations_above_are_fine() {}

void direct_mutations(FakeCrossbar& xb, FakeCrossbar* p) {
  xb.force_fault(0, 0, 1);          // EXPECT-LINT: device-encoding
  xb.force_soft_fault(0, 0, 1, 2);  // EXPECT-LINT: device-encoding
  p->strong_write(1, 1, 0.5);       // EXPECT-LINT: device-encoding
  xb.drift_toward(0.0, 0.01);       // EXPECT-LINT: device-encoding
  p->decay_soft_faults();           // EXPECT-LINT: device-encoding
}

void suppressed_mutation(FakeCrossbar& xb) {
  // refit-lint: allow(device-encoding)
  xb.strong_write(0, 0, 0.25);
}
