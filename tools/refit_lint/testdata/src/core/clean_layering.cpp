// Fixture: core/ sits at the top of the layering and may include every
// module; a quoted include with no known module prefix (bench_util.hpp
// here) is outside the rule's scope. Must lint clean.
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/prune.hpp"
#include "data/dataset.hpp"
#include "detect/quiescent_detector.hpp"
#include "nn/network.hpp"
#include "rcs/rcs_system.hpp"
#include "rram/fault_map.hpp"
#include "tensor/tensor.hpp"

void g() {}
