// Fixture: a src/core file reading raw std::chrono clocks instead of the
// obs Clock seam. Every spelling — fully qualified, using-declaration,
// namespace alias — must be flagged; chrono conveniences that are not
// clocks (duration_cast, milliseconds) stay out of the rule's scope.
#include <chrono>

#include "obs/clock.hpp"

namespace sc = std::chrono;

void f() {
  auto t0 = std::chrono::steady_clock::now();            // EXPECT-LINT: obs-timing
  auto t1 = std::chrono::high_resolution_clock::now();   // EXPECT-LINT: obs-timing
  using std::chrono::steady_clock;                       // EXPECT-LINT: obs-timing
  auto t2 = sc::steady_clock::now();                     // EXPECT-LINT: obs-timing
  (void)t0;
  (void)t1;
  (void)t2;
  auto ms = std::chrono::milliseconds(5);  // not a clock: allowed
  (void)ms;
}
