// Fixture: a fully conforming header — zero expected findings. Exercises
// the lexer corners (raw strings, char literals, block comments, string
// contents that mention std::thread and rand() without using them).
#pragma once

#include <string>

namespace fixture {

/* A block comment mentioning std::mutex — comments never trigger rules. */
inline std::string banner() {
  return "std::thread and rand() in a string literal are fine";
}

inline std::string raw() {
  return R"(std::random_device inside a raw string, also fine)";
}

inline char quote() { return '"'; }

}  // namespace fixture
