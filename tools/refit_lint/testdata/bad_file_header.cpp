#include <cstddef>
// EXPECT-LINT@1: file-header
// (the include above means the file does not open with a purpose comment)

std::size_t zero() { return 0; }
