// Fixture: header with no include guard at all.
// EXPECT-LINT@1: pragma-once

inline int three() { return 3; }
