// Fixture: concurrency primitives outside common/thread_pool.
#include <thread>

void spawn_raw_thread() {
  std::thread t([] {});  // EXPECT-LINT: concurrency
  t.join();
}

void raw_mutex() {
  static std::mutex mu;  // EXPECT-LINT: concurrency
  (void)mu;
}

void raw_async() {
  auto f = std::async([] { return 1; });  // EXPECT-LINT: concurrency
  (void)f;
}

void raw_condvar() {
  std::condition_variable cv;  // EXPECT-LINT: concurrency
  (void)cv;
}

unsigned hw_query_is_fine() {
  return std::thread::hardware_concurrency();
}

void suppressed_mutex() {
  // refit-lint: allow(concurrency)
  static std::mutex deliberate;
  (void)deliberate;
}
