// refit-lint — REFIT-specific static analysis (see docs/tooling.md).
//
// A deliberately dependency-free token-level linter: no clang tooling, no
// external parser. It lexes C++ well enough to skip comments, strings and
// preprocessor lines, then pattern-matches the token stream against the
// project invariants that reviewers used to police by hand:
//
//   concurrency          std::thread / std::async / std::mutex … outside
//                        common/thread_pool (all fan-out goes through the
//                        pool so REFIT_THREADS and TSan cover it)
//   randomness           rand() / std::random_device / std::mt19937 …
//                        outside common/rng (every stochastic component
//                        must be reproducible from one seed)
//   tile-invalidate      mutating a crossbar tile via store.tile(..)
//                        without a nearby invalidate() (keeps the O(1)
//                        write/fault aggregates in sync)
//   using-namespace-header  `using namespace` in a header
//   dcheck-side-effect   ++/--/assignment inside REFIT_DCHECK(...), which
//                        compiles away under NDEBUG
//   pragma-once          headers must open with `#pragma once` before any
//                        code or other preprocessor line
//   file-header          every file starts with a `//` purpose comment
//   layering             #include pointing against the module dependency
//                        order (common → tensor → nn → rcs → detect →
//                        core; e.g. src/detect must not include core/)
//   device-encoding      direct Crossbar conductance-mutator calls
//                        (force_fault / force_soft_fault / strong_write /
//                        drift_toward / decay_soft_faults) outside the
//                        device-physics owners (src/device, src/rram,
//                        rcs/crossbar_store)
//
// Suppression: `// refit-lint: allow(rule[, rule…])` on the offending line
// or the line directly above; `// refit-lint: allow-file(rule)` within the
// first 10 lines disables a rule for the whole file.
#pragma once

#include <string>
#include <vector>

namespace refit::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Name + one-line description, for --list-rules and docs.
struct RuleInfo {
  const char* name;
  const char* description;
};

/// All rules the linter knows, in report order.
const std::vector<RuleInfo>& rules();

/// Lint one translation unit. `path` is used both for reporting and for
/// path-based exemptions (common/thread_pool, common/rng, rcs/crossbar_store
/// own the primitives their rules fence off). Findings are returned sorted
/// by line; suppressed findings are dropped.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);

}  // namespace refit::lint
