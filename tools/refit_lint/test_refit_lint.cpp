// Expected-findings self-test for refit-lint: every fixture under
// testdata/ is linted and the produced (line, rule) pairs must match the
// fixture's annotations exactly —
//
//   // EXPECT-LINT: <rule>        finding on this line
//   // EXPECT-LINT@<N>: <rule>    finding reported at line N (for rules
//                                 that anchor to line 1 or a pragma line)
//
// A fixture with no annotations asserts the linter is silent on it, so the
// clean fixtures guard against false positives as much as the bad ones
// guard against false negatives.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

using LineRule = std::pair<int, std::string>;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::multiset<LineRule> parse_expectations(const std::string& content) {
  std::multiset<LineRule> want;
  const std::regex at_line(R"(EXPECT-LINT@(\d+):\s*([a-z0-9-]+))");
  const std::regex same_line(R"(EXPECT-LINT:\s*([a-z0-9-]+))");
  std::istringstream ss(content);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    std::smatch m;
    if (std::regex_search(line, m, at_line))
      want.emplace(std::stoi(m[1]), m[2]);
    else if (std::regex_search(line, m, same_line))
      want.emplace(lineno, m[1]);
  }
  return want;
}

std::vector<fs::path> fixtures() {
  // Recursive: layering fixtures live under testdata/src/<module>/ so the
  // path-derived module matches what the rule sees on real sources.
  std::vector<fs::path> out;
  for (const auto& e :
       fs::recursive_directory_iterator(REFIT_LINT_TESTDATA_DIR))
    if (e.is_regular_file()) out.push_back(e.path());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

TEST(RefitLint, TestdataDirHasFixtures) {
  EXPECT_GE(fixtures().size(), 8u)
      << "testdata/ should hold at least one fixture per rule";
}

TEST(RefitLint, FixturesProduceExactlyTheAnnotatedFindings) {
  for (const fs::path& p : fixtures()) {
    SCOPED_TRACE(p.filename().string());
    const std::string content = read_file(p);
    const std::multiset<LineRule> want = parse_expectations(content);

    std::multiset<LineRule> got;
    for (const auto& f :
         refit::lint::lint_source(p.generic_string(), content))
      got.emplace(f.line, f.rule);

    for (const auto& [line, rule] : want)
      EXPECT_TRUE(got.count({line, rule}))
          << "expected finding [" << rule << "] at line " << line
          << " was not produced";
    for (const auto& [line, rule] : got)
      EXPECT_TRUE(want.count({line, rule}))
          << "unexpected finding [" << rule << "] at line " << line;
  }
}

TEST(RefitLint, EveryRuleIsCoveredByAFixture) {
  std::set<std::string> exercised;
  for (const fs::path& p : fixtures())
    for (const auto& [line, rule] : parse_expectations(read_file(p)))
      exercised.insert(rule);
  for (const auto& r : refit::lint::rules())
    EXPECT_TRUE(exercised.count(r.name))
        << "rule '" << r.name << "' has no expected-findings fixture";
}

TEST(RefitLint, PathExemptionsApply) {
  // The modules that own a primitive may use it freely.
  const std::string pool_src =
      "// thread pool impl\n#include <thread>\nstd::thread t; std::mutex m;\n";
  EXPECT_TRUE(
      refit::lint::lint_source("src/common/thread_pool.cpp", pool_src)
          .empty());
  const std::string rng_src = "// rng impl\nint x = rand();\n";
  EXPECT_TRUE(refit::lint::lint_source("src/common/rng.cpp", rng_src).empty());

  // common/log serializes with a mutex; src/obs owns both its own
  // synchronization and the raw std::chrono clocks behind the Clock seam.
  const std::string mutex_src = "// impl\n#include <mutex>\nstd::mutex m;\n";
  EXPECT_TRUE(
      refit::lint::lint_source("src/common/log.cpp", mutex_src).empty());
  EXPECT_TRUE(
      refit::lint::lint_source("src/obs/metrics.cpp", mutex_src).empty());
  const std::string clock_src =
      "// impl\nauto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(
      refit::lint::lint_source("src/obs/clock.cpp", clock_src).empty());
  // Files outside src/ (tests, benches) may read clocks directly.
  EXPECT_TRUE(refit::lint::lint_source("tests/x.cpp", clock_src).empty());

  // The same sources elsewhere are violations.
  EXPECT_FALSE(refit::lint::lint_source("src/nn/dense.cpp", pool_src).empty());
  EXPECT_FALSE(refit::lint::lint_source("src/nn/dense.cpp", rng_src).empty());
  EXPECT_FALSE(
      refit::lint::lint_source("src/nn/dense.cpp", clock_src).empty());

  // nn/weight_store hosts the sanctioned effective()-materializing fallback;
  // the identical call is a violation in any other nn/core file, and legal
  // outside the inference side entirely (rcs, detect, tests).
  const std::string eff_src = "// impl\nauto w = store->effective();\n";
  EXPECT_TRUE(
      refit::lint::lint_source("src/nn/weight_store.cpp", eff_src).empty());
  EXPECT_FALSE(
      refit::lint::lint_source("src/nn/dense.cpp", eff_src).empty());
  EXPECT_FALSE(
      refit::lint::lint_source("src/core/engine.cpp", eff_src).empty());
  EXPECT_TRUE(
      refit::lint::lint_source("src/rcs/crossbar_store.cpp", eff_src).empty());
  EXPECT_TRUE(refit::lint::lint_source("tests/x.cpp", eff_src).empty());
}

TEST(RefitLint, FileWideSuppression) {
  const std::string src =
      "// refit-lint: allow-file(randomness)\n"
      "int a = rand();\nint b = rand();\n";
  EXPECT_TRUE(refit::lint::lint_source("tests/x.cpp", src).empty());
}

TEST(RefitLint, SuppressionOnPreviousLineCoversOneLineOnly) {
  const std::string src =
      "// header\n"
      "// refit-lint: allow(randomness)\n"
      "int a = rand();\n"
      "int b = rand();\n";
  const auto findings = refit::lint::lint_source("tests/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_EQ(findings[0].rule, "randomness");
}

TEST(RefitLint, FindingsCarryFileRuleAndMessage) {
  const auto findings = refit::lint::lint_source(
      "tests/x.cpp", "// header\nint a = rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "tests/x.cpp");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "randomness");
  EXPECT_NE(findings[0].message.find("refit::Rng"), std::string::npos);
}
