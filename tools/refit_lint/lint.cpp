// Token-level rule engine behind refit-lint (see lint.hpp for the rule
// catalogue and suppression syntax). The lexer and the suppression parser
// live in tools/common/lexer.{hpp,cpp}, shared with the cross-TU
// refit-audit tool and the flow-sensitive refit-flow analyzer.
#include "lint.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/lexer.hpp"

namespace refit::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule helpers
// ---------------------------------------------------------------------------

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

const std::set<std::string> kConcurrencyNames = {
    "thread",        "jthread",
    "async",         "mutex",
    "timed_mutex",   "recursive_mutex",
    "recursive_timed_mutex",
    "shared_mutex",  "shared_timed_mutex",
    "condition_variable", "condition_variable_any",
};

const std::set<std::string> kStdEngineNames = {
    "mt19937",     "mt19937_64", "random_device", "default_random_engine",
    "minstd_rand", "minstd_rand0", "ranlux24", "ranlux48", "knuth_b",
};

const std::set<std::string> kCRandNames = {"rand", "srand", "drand48",
                                           "lrand48", "mrand48", "random"};

const std::set<std::string> kTileMutators = {"write", "force_fault",
                                             "force_soft_fault",
                                             "strong_write"};

// Conductance-mutating Crossbar members: callable only from the modules
// that own device physics (src/device, src/rram) and from the store that
// mediates them (rcs/crossbar_store). Everything else must go through the
// CellEncoding/DeviceNoiseModel seam so encodings stay swappable.
const std::set<std::string> kConductanceMutators = {
    "force_fault", "force_soft_fault", "strong_write",
    "drift_toward", "decay_soft_faults",
};

const std::set<std::string> kAssignOps = {"=",  "+=", "-=",  "*=",  "/=",
                                          "%=", "&=", "|=",  "^=",  "<<=",
                                          ">>=", "++", "--"};

/// Module layering: directory under src/ → modules it may include. A
/// module may always include itself; anything absent from its set is an
/// inverted (or skipped-layer) dependency. Mirrors the link graph in the
/// per-module CMakeLists and the diagram in docs/architecture.md.
const std::map<std::string, std::set<std::string>>& layer_deps() {
  static const std::map<std::string, std::set<std::string>> kDeps = {
      {"obs", {}},
      {"common", {"obs"}},
      {"tensor", {"common", "obs"}},
      {"nn", {"common", "tensor", "obs"}},
      {"rram", {"common", "obs"}},
      {"device", {"common", "rram", "obs"}},
      {"data", {"common", "tensor", "obs"}},
      {"rcs", {"common", "tensor", "nn", "rram", "device", "obs"}},
      {"detect",
       {"common", "tensor", "nn", "rram", "device", "rcs", "obs"}},
      {"core",
       {"common", "tensor", "nn", "rram", "device", "rcs", "data", "detect",
        "obs"}},
  };
  return kDeps;
}

/// The module a source file belongs to: the path component after the last
/// `src/` segment, when it names a known module ("" otherwise — files
/// outside src/, e.g. tests and benches, may include anything).
std::string module_of_path(const std::string& path) {
  const std::size_t p = path.rfind("src/");
  if (p == std::string::npos) return "";
  if (p > 0 && path[p - 1] != '/') return "";
  const std::size_t b = p + 4;
  const std::size_t e = path.find('/', b);
  if (e == std::string::npos) return "";
  const std::string mod = path.substr(b, e - b);
  return layer_deps().count(mod) ? mod : "";
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"concurrency",
       "std::thread/std::async/std::mutex and friends outside "
       "common/thread_pool (std::thread::hardware_concurrency is allowed)"},
      {"randomness",
       "rand()/std::random_device/std::mt19937 and other ad-hoc generators "
       "outside common/rng"},
      {"tile-invalidate",
       "store.tile(..).write/force_fault without a store invalidate() (or "
       "resync_counters()) within the next 40 lines"},
      {"using-namespace-header", "`using namespace` in a header"},
      {"dcheck-side-effect",
       "++/--/assignment inside REFIT_DCHECK / REFIT_DCHECK_MSG, which "
       "compile away under NDEBUG"},
      {"pragma-once",
       "header missing `#pragma once`, or `#pragma once` not before all "
       "other code/preprocessor lines"},
      {"file-header",
       "file does not start with a `//` purpose-comment header"},
      {"layering",
       "an #include pointing against the module dependency order (e.g. "
       "src/detect including core/, src/rcs including detect/)"},
      {"obs-timing",
       "std::chrono::steady_clock / high_resolution_clock in src/ outside "
       "src/obs — take timestamps through refit::obs::now_ns() or "
       "obs::Stopwatch so the Clock seam stays the single time source"},
      {"device-encoding",
       "direct conductance-mutator call (force_fault / force_soft_fault / "
       "strong_write / drift_toward / decay_soft_faults) outside src/device, "
       "src/rram, and rcs/crossbar_store — go through the CellEncoding / "
       "DeviceNoiseModel seam"},
      {"obs-event",
       "std::cout/std::cerr in src/ outside src/obs and common/log — emit "
       "fault/remap/checkpoint status through the structured event log "
       "(obs/events.hpp) or REFIT_LOG so run reports and the flight "
       "recorder see it"},
      {"inference-effective",
       "store.effective() / store->effective() on an inference path "
       "(src/nn, src/core) outside nn/weight_store — call "
       "WeightStore::forward_matmul so crossbar backends keep the fused "
       "kernel instead of materializing the effective matrix"},
  };
  return kRules;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content) {
  const LexResult lx = lex(content);
  const Suppressions sup = parse_suppressions(lx.comments, "refit-lint:");
  const std::vector<Token>& t = lx.tokens;

  const bool is_header = ends_with(path, ".hpp") || ends_with(path, ".h") ||
                         ends_with(path, ".hh");
  const std::string mod = module_of_path(path);
  // common/log serializes output with a mutex; the obs layer owns the
  // atomics/mutexes behind the metrics registry and the tracer.
  const bool owns_threads = path_contains(path, "common/thread_pool") ||
                            path_contains(path, "common/log") ||
                            path_contains(path, "src/obs/");
  const bool owns_rng = path_contains(path, "common/rng");
  const bool owns_tiles = path_contains(path, "rcs/crossbar_store");
  // src/device and src/rram own the conductance-mutation primitives; the
  // crossbar store mediates them for everyone else. Files outside src/
  // (tests, benches, tools) may drive them directly.
  const bool owns_device =
      mod.empty() || mod == "device" || mod == "rram" || owns_tiles;
  // nn/weight_store hosts the interface plus the portable forward_matmul
  // fallback, which is the one sanctioned effective()-materializing site on
  // the inference side.
  const bool inference_side =
      (mod == "nn" || mod == "core") && !path_contains(path, "nn/weight_store");
  // src/obs prints the flight-recorder tail itself and common/log owns the
  // serialized sink; every other src/ module goes through events/REFIT_LOG.
  const bool owns_streams =
      mod.empty() || mod == "obs" || path_contains(path, "common/log");
  // src/obs is the only module allowed to read a raw std::chrono clock —
  // everything else must go through the Clock seam (obs/clock.hpp) so
  // golden traces stay deterministic under ManualClock.
  const bool owns_clocks = mod.empty() || mod == "obs";

  std::vector<Finding> findings;
  auto report = [&](const std::string& rule, int line,
                    const std::string& message) {
    if (!sup.allows(rule, line)) findings.push_back({path, line, rule, message});
  };

  // --- file-header: first line must be a `//` comment -----------------------
  {
    std::size_t p = 0;
    while (p < content.size() &&
           (content[p] == ' ' || content[p] == '\t'))
      ++p;
    const bool ok = content.compare(p, 2, "//") == 0;
    if (!ok)
      report("file-header", 1,
             "file must start with a `//` comment describing its purpose");
  }

  // --- pragma-once ----------------------------------------------------------
  if (is_header) {
    int pragma_line = -1;
    int first_other_pp = -1;
    for (const PpLine& pp : lx.pp_lines) {
      const bool is_pragma_once =
          pp.text.compare(0, 6, "pragma") == 0 &&
          pp.text.find("once") != std::string::npos;
      if (is_pragma_once && pragma_line < 0)
        pragma_line = pp.line;
      else if (!is_pragma_once && first_other_pp < 0)
        first_other_pp = pp.line;
    }
    const int first_code = t.empty() ? -1 : t.front().line;
    if (pragma_line < 0) {
      report("pragma-once", 1, "header is missing `#pragma once`");
    } else {
      if (first_other_pp >= 0 && first_other_pp < pragma_line)
        report("pragma-once", pragma_line,
               "`#pragma once` must precede all other preprocessor lines");
      if (first_code >= 0 && first_code < pragma_line)
        report("pragma-once", pragma_line,
               "`#pragma once` must precede all code");
    }
  }

  // --- layering -------------------------------------------------------------
  {
    if (!mod.empty()) {
      const std::set<std::string>& allowed = layer_deps().at(mod);
      for (const PpLine& pp : lx.pp_lines) {
        if (pp.text.compare(0, 7, "include") != 0) continue;
        const std::size_t q1 = pp.text.find('"');
        if (q1 == std::string::npos) continue;  // <system> includes
        const std::size_t q2 = pp.text.find('"', q1 + 1);
        if (q2 == std::string::npos) continue;
        const std::string inc = pp.text.substr(q1 + 1, q2 - q1 - 1);
        const std::size_t slash = inc.find('/');
        if (slash == std::string::npos) continue;  // same-directory include
        const std::string dep = inc.substr(0, slash);
        if (!layer_deps().count(dep)) continue;  // not a module include
        if (dep == mod || allowed.count(dep)) continue;
        std::string deps_str;
        for (const std::string& d : allowed)
          deps_str += (deps_str.empty() ? "" : ", ") + d;
        report("layering", pp.line,
               "\"" + inc + "\" included from src/" + mod +
                   " inverts the module layering — " + mod +
                   " may depend only on {" +
                   (deps_str.empty() ? "nothing" : deps_str) + "}");
      }
    }
  }

  // --- token-stream rules ---------------------------------------------------
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind != TokKind::kIdent) continue;

    // std:: qualified names.
    if (tok.text == "std" && i + 2 < t.size() && t[i + 1].text == "::" &&
        t[i + 2].kind == TokKind::kIdent) {
      const std::string& name = t[i + 2].text;
      if (!owns_threads && kConcurrencyNames.count(name)) {
        // std::thread::hardware_concurrency is a pure query, not a
        // concurrency primitive — the bench harness records it.
        const bool is_hw_query =
            name == "thread" && i + 4 < t.size() && t[i + 3].text == "::" &&
            t[i + 4].text == "hardware_concurrency";
        if (!is_hw_query)
          report("concurrency", tok.line,
                 "std::" + name +
                     " outside common/thread_pool — route concurrency "
                     "through refit::ThreadPool");
      }
      if (!owns_rng && (kStdEngineNames.count(name) || name == "rand" ||
                        name == "srand")) {
        report("randomness", tok.line,
               "std::" + name +
                   " outside common/rng — draw from refit::Rng so runs "
                   "are reproducible from one seed");
      }
      // Library modules must not write status to the process streams:
      // the event log feeds run reports and the flight recorder, and
      // REFIT_LOG serializes through common/log. (Tests, benches, tools
      // and examples — mod empty — print freely.)
      if (!owns_streams && (name == "cout" || name == "cerr")) {
        report("obs-event", tok.line,
               "std::" + name +
                   " in src/" + mod +
                   " — emit status through the structured event log "
                   "(obs/events.hpp) or REFIT_LOG instead of the process "
                   "streams so run reports and the flight recorder see it");
      }
    }

    // Bare C rand()/srand()/drand48() calls. Excludes member access
    // (`h.rand()`), qualified names other than std:: (handled above), and
    // declarations (`int rand()` — previous token is a type name, i.e. an
    // identifier that is not a statement keyword).
    static const std::set<std::string> kCallPrefixKeywords = {
        "return", "throw", "case", "do", "else",
        "co_return", "co_await", "co_yield"};
    const bool looks_like_call =
        i == 0 || t[i - 1].kind != TokKind::kIdent ||
        kCallPrefixKeywords.count(t[i - 1].text) > 0;
    if (!owns_rng && kCRandNames.count(tok.text) && i + 1 < t.size() &&
        t[i + 1].text == "(" && looks_like_call &&
        (i == 0 || (t[i - 1].text != "." && t[i - 1].text != "::" &&
                    t[i - 1].text != "->"))) {
      report("randomness", tok.line,
             tok.text + "() outside common/rng — draw from refit::Rng so "
                        "runs are reproducible from one seed");
    }

    // tile(..).write(..) / tile(..).force_fault(..) without invalidate().
    if (!owns_tiles && tok.text == "tile" && i + 1 < t.size() &&
        t[i + 1].text == "(" && i > 0 &&
        (t[i - 1].text == "." || t[i - 1].text == "->")) {
      const std::size_t close = match_paren(t, i + 1);
      if (close != std::string::npos && close + 2 < t.size() &&
          t[close + 1].text == "." &&
          kTileMutators.count(t[close + 2].text)) {
        const int mut_line = t[close + 2].line;
        bool resynced = false;
        for (std::size_t j = close + 3; j < t.size(); ++j) {
          if (t[j].line > mut_line + 40) break;
          if (t[j].kind == TokKind::kIdent &&
              (t[j].text == "invalidate" || t[j].text == "resync_counters")) {
            resynced = true;
            break;
          }
        }
        if (!resynced)
          report("tile-invalidate", mut_line,
                 "tile()." + t[close + 2].text +
                     "() mutates device state behind the store — call "
                     "invalidate() afterwards to resync the cached "
                     "effective weights and O(1) counters");
      }
    }

    // Direct conductance mutation outside the device-physics owners.
    if (!owns_device && kConductanceMutators.count(tok.text) && i > 0 &&
        (t[i - 1].text == "." || t[i - 1].text == "->") && i + 1 < t.size() &&
        t[i + 1].text == "(") {
      report("device-encoding", tok.line,
             tok.text +
                 "() mutates raw conductance outside src/device — thread "
                 "the change through CellEncoding / DeviceNoiseModel (or "
                 "the store's pulse_physical) so encodings stay swappable");
    }

    // store.effective() / store->effective() on inference-side modules.
    // Matching only member-access call sites keeps override declarations
    // (`const Tensor& effective() override`) in new backends legal.
    if (inference_side && tok.text == "effective" && i > 0 &&
        (t[i - 1].text == "." || t[i - 1].text == "->") && i + 1 < t.size() &&
        t[i + 1].text == "(") {
      report("inference-effective", tok.line,
             "effective() materializes the full weight matrix — on "
             "inference paths call store->forward_matmul(x) so crossbar "
             "backends keep the fused per-tile kernel (backward passes "
             "read target(), not effective())");
    }

    // Raw std::chrono clocks in src/ outside obs. Matching the bare
    // identifier also catches `using std::chrono::steady_clock` and
    // namespace-alias spellings.
    if (!owns_clocks && (tok.text == "steady_clock" ||
                         tok.text == "high_resolution_clock")) {
      report("obs-timing", tok.line,
             "std::chrono::" + tok.text +
                 " outside src/obs — take timestamps through "
                 "refit::obs::now_ns() or obs::Stopwatch so ManualClock "
                 "test runs stay deterministic");
    }

    // using namespace in headers.
    if (is_header && tok.text == "using" && i + 1 < t.size() &&
        t[i + 1].text == "namespace") {
      report("using-namespace-header", tok.line,
             "`using namespace` in a header leaks into every includer");
    }

    // Side effects inside REFIT_DCHECK (compiled away under NDEBUG).
    if ((tok.text == "REFIT_DCHECK" || tok.text == "REFIT_DCHECK_MSG") &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      const std::size_t close = match_paren(t, i + 1);
      if (close != std::string::npos) {
        for (std::size_t j = i + 2; j < close; ++j) {
          if (t[j].kind == TokKind::kPunct && kAssignOps.count(t[j].text)) {
            report("dcheck-side-effect", t[j].line,
                   "`" + t[j].text + "` inside " + tok.text +
                       " — the argument is not evaluated under NDEBUG, so "
                       "side effects vanish in release builds");
            break;  // one finding per macro invocation is enough
          }
        }
        i = close;  // do not re-flag nested tokens
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

}  // namespace refit::lint
