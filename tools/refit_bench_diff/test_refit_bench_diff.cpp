// Tests for the noise-aware bench comparator (bench_diff.hpp). The
// artifacts are built inline from the same shapes as the checked-in
// BENCH_backend.json / BENCH_device.json.
#include "bench_diff.hpp"

#include <gtest/gtest.h>

#include <string>

namespace refit::tools {
namespace {

JsonValue parse(const std::string& text) {
  std::string err;
  auto v = json_parse(text, &err);
  EXPECT_TRUE(v.has_value()) << err;
  return std::move(*v);
}

/// A minimal backend-shaped artifact. `seconds` and `hash` are
/// substitutable so tests can inject drift.
std::string backend_artifact(const std::string& seconds,
                             const std::string& hash = "1600ad911520f812",
                             bool scaling_valid = true) {
  return std::string(R"({
    "bench": "backend_gemm",
    "provenance": {"cpu_model": "TestCPU", "compiler": "g++ 13",
                   "hardware_threads": 8},
    "scaling_valid": )") +
         (scaling_valid ? "true" : "false") + R"(,
    "gemm_output_hash": ")" +
         hash + R"(",
    "shape": {"m": 256, "n": 256, "k": 256},
    "results": [
      {"name": "gemm_simd", "threads": 1, "seconds": )" +
         seconds + R"(, "bit_identical": true, "gflops": 10.0}
    ]
  })";
}

TEST(BenchDiff, IdenticalArtifactsPass) {
  const JsonValue a = parse(backend_artifact("0.050"));
  const auto report = diff_bench(a, a);
  EXPECT_TRUE(report.pass);
  EXPECT_TRUE(report.timing_compared);
  EXPECT_EQ(report.rows_compared, 1u);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_NE(report.markdown().find("**PASS**"), std::string::npos);
}

TEST(BenchDiff, TimingWithinThresholdPasses) {
  const JsonValue base = parse(backend_artifact("0.050"));
  const JsonValue cand = parse(backend_artifact("0.055"));  // +10% < 15%
  EXPECT_TRUE(diff_bench(base, cand).pass);
}

// Acceptance: a 20% GEMM slowdown on a matching host must fail the gate.
TEST(BenchDiff, InjectedTwentyPercentSlowdownFails) {
  const JsonValue base = parse(backend_artifact("0.050"));
  const JsonValue cand = parse(backend_artifact("0.060"));  // +20% > 15%
  const auto report = diff_bench(base, cand);
  EXPECT_FALSE(report.pass);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].field, "seconds");
  EXPECT_EQ(report.findings[0].status, BenchDiffStatus::kFail);
  EXPECT_NEAR(report.findings[0].rel, 0.20, 1e-9);
  EXPECT_NE(report.markdown().find("**FAIL**"), std::string::npos);
  EXPECT_NE(report.json().find("\"pass\": false"), std::string::npos);
}

TEST(BenchDiff, ThresholdOverrideWidensGate) {
  const JsonValue base = parse(backend_artifact("0.050"));
  const JsonValue cand = parse(backend_artifact("0.060"));
  BenchDiffOptions opts;
  opts.thresholds["seconds"] = 0.25;
  EXPECT_TRUE(diff_bench(base, cand, opts).pass);
}

TEST(BenchDiff, DeterministicMismatchAlwaysFails) {
  const JsonValue base = parse(backend_artifact("0.050"));
  const JsonValue cand =
      parse(backend_artifact("0.050", "deadbeefdeadbeef"));
  const auto report = diff_bench(base, cand);
  EXPECT_FALSE(report.pass);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].field, "gemm_output_hash");
  EXPECT_EQ(report.findings[0].note, "deterministic field must match exactly");
}

TEST(BenchDiff, ProvenanceMismatchSkipsTimingButGatesDeterminism) {
  JsonValue base = parse(backend_artifact("0.050"));
  std::string other = backend_artifact("0.500", "deadbeefdeadbeef");
  other.replace(other.find("TestCPU"), 7, "OtherBox");
  const JsonValue cand = parse(other);
  const auto report = diff_bench(base, cand);
  EXPECT_FALSE(report.timing_compared);
  EXPECT_NE(report.timing_skip_reason.find("provenance differs"),
            std::string::npos);
  // 10x slower seconds: silently skipped (the summary banner explains
  // why). Wrong hash: still fatal.
  EXPECT_FALSE(report.pass);
  bool saw_hash_fail = false;
  for (const auto& f : report.findings) {
    EXPECT_NE(f.field, "seconds");
    if (f.field == "gemm_output_hash") {
      saw_hash_fail = true;
      EXPECT_EQ(f.status, BenchDiffStatus::kFail);
    }
  }
  EXPECT_TRUE(saw_hash_fail);
}

TEST(BenchDiff, TopLevelScalingInvalidSkipsAllTiming) {
  const JsonValue base = parse(backend_artifact("0.050"));
  const JsonValue cand =
      parse(backend_artifact("0.500", "1600ad911520f812", false));
  const auto report = diff_bench(base, cand);
  EXPECT_FALSE(report.timing_compared);
  EXPECT_NE(report.timing_skip_reason.find("scaling_valid"),
            std::string::npos);
  EXPECT_TRUE(report.pass);
  EXPECT_TRUE(report.findings.empty());  // skip is banner-only, not per-field
}

TEST(BenchDiff, RowScalingInvalidSkipsThatRowsTiming) {
  const std::string shell = R"({
    "bench": "b", "provenance": {"cpu_model": "A", "compiler": "B"},
    "scaling_valid": true,
    "results": [
      {"name": "steady", "threads": 1, "seconds": 0.1},
      {"name": "noisy", "threads": 4, "seconds": %S%,
       "scaling_valid": false}
    ]
  })";
  auto with_seconds = [&](const std::string& s) {
    std::string t = shell;
    t.replace(t.find("%S%"), 3, s);
    return parse(t);
  };
  const JsonValue base = with_seconds("0.1");
  const JsonValue cand = with_seconds("9.9");
  const auto report = diff_bench(base, cand);
  EXPECT_TRUE(report.pass);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].status, BenchDiffStatus::kSkipped);
  EXPECT_EQ(report.findings[0].note, "row stamped scaling_valid:false");
}

TEST(BenchDiff, MissingRowAndFieldAreDiagnosed) {
  const JsonValue base = parse(R"({
    "bench": "b", "provenance": {}, "scaling_valid": true,
    "results": [
      {"name": "kept", "threads": 1, "bit_identical": true, "gflops": 1.0},
      {"name": "dropped", "threads": 1, "seconds": 0.1}
    ]
  })");
  const JsonValue cand = parse(R"({
    "bench": "b", "provenance": {}, "scaling_valid": true,
    "results": [
      {"name": "kept", "threads": 1, "bit_identical": true},
      {"name": "added", "threads": 2, "seconds": 0.2}
    ]
  })");
  const auto report = diff_bench(base, cand);
  EXPECT_FALSE(report.pass);
  bool missing_field = false;
  bool missing_row = false;
  bool new_row_info = false;
  for (const auto& f : report.findings) {
    if (f.note == "field missing from candidate" && f.field == "gflops") {
      missing_field = true;
      EXPECT_NE(f.row.find("name=kept"), std::string::npos);
    }
    if (f.note == "row missing from candidate") {
      missing_row = true;
      EXPECT_NE(f.row.find("name=dropped"), std::string::npos);
    }
    if (f.note == "new row in candidate") {
      new_row_info = true;
      EXPECT_EQ(f.status, BenchDiffStatus::kInfo);
    }
  }
  EXPECT_TRUE(missing_field);
  EXPECT_TRUE(missing_row);
  EXPECT_TRUE(new_row_info);
}

TEST(BenchDiff, SpeedupFieldsUseWiderDefault) {
  EXPECT_DOUBLE_EQ(default_threshold("seconds"), 0.15);
  EXPECT_DOUBLE_EQ(default_threshold("speedup_vs_serial"), 0.30);
  EXPECT_TRUE(is_timing_field("frac_peak"));
  EXPECT_FALSE(is_timing_field("bit_identical"));
}

}  // namespace
}  // namespace refit::tools
