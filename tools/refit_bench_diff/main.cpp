// refit-bench-diff CLI: compare a freshly produced BENCH_*.json artifact
// against its checked-in baseline (see bench_diff.hpp for the gating
// rules: deterministic fields exact, timing fields thresholded and only
// on a matching, non-oversubscribed host).
//
// Usage:
//   refit_bench_diff --baseline FILE --candidate FILE [options]
//
//   --baseline FILE    checked-in artifact (also: --baseline=FILE)
//   --candidate FILE   freshly produced artifact (also: --candidate=FILE)
//   --threshold F=X    override the relative tolerance for timing field F
//                      (repeatable, e.g. --threshold seconds=0.25)
//   --json             machine output on stdout: {"pass": ..,
//                      "findings": [...]}; markdown summary on stderr
//
// Exit status: 0 = pass, 1 = regression findings, 2 = usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_diff.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Accepts "--flag VALUE" and "--flag=VALUE"; advances i for the former.
bool flag_value(int argc, char** argv, int& i, const std::string& name,
                std::string& out) {
  const std::string arg = argv[i];
  if (arg == name) {
    if (i + 1 >= argc) {
      std::cerr << "refit_bench_diff: " << name << " needs a value\n";
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  if (arg.rfind(name + "=", 0) == 0) {
    out = arg.substr(name.size() + 1);
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using refit::tools::BenchDiffOptions;
  using refit::tools::diff_bench;
  using refit::tools::is_timing_field;

  std::string baseline_path;
  std::string candidate_path;
  bool json_out = false;
  BenchDiffOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (flag_value(argc, argv, i, "--baseline", baseline_path)) continue;
    if (flag_value(argc, argv, i, "--candidate", candidate_path)) continue;
    if (flag_value(argc, argv, i, "--threshold", value)) {
      const std::size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "refit_bench_diff: --threshold wants field=x, got '"
                  << value << "'\n";
        return 2;
      }
      const std::string field = value.substr(0, eq);
      if (!is_timing_field(field)) {
        std::cerr << "refit_bench_diff: '" << field
                  << "' is not a timing field (deterministic fields always "
                     "compare exactly)\n";
        return 2;
      }
      opts.thresholds[field] = std::strtod(value.c_str() + eq + 1, nullptr);
      continue;
    }
    if (arg == "--json") {
      json_out = true;
      continue;
    }
    std::cerr << "refit_bench_diff: unknown argument '" << arg << "'\n";
    return 2;
  }
  if (baseline_path.empty() || candidate_path.empty()) {
    std::cerr << "usage: refit_bench_diff --baseline FILE --candidate FILE "
                 "[--threshold field=x]... [--json]\n";
    return 2;
  }

  std::string base_text;
  std::string cand_text;
  if (!read_file(baseline_path, base_text)) {
    std::cerr << "refit_bench_diff: cannot read " << baseline_path << "\n";
    return 2;
  }
  if (!read_file(candidate_path, cand_text)) {
    std::cerr << "refit_bench_diff: cannot read " << candidate_path << "\n";
    return 2;
  }
  std::string err;
  const auto base = refit::tools::json_parse(base_text, &err);
  if (!base) {
    std::cerr << "refit_bench_diff: " << baseline_path << ": " << err << "\n";
    return 2;
  }
  const auto cand = refit::tools::json_parse(cand_text, &err);
  if (!cand) {
    std::cerr << "refit_bench_diff: " << candidate_path << ": " << err << "\n";
    return 2;
  }

  const auto report = diff_bench(*base, *cand, opts);
  if (json_out) {
    std::cout << report.json();
    std::cerr << report.markdown();
  } else {
    std::cout << report.markdown();
  }
  return report.pass ? 0 : 1;
}
