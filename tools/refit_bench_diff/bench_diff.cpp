// Comparison engine behind refit-bench-diff (see bench_diff.hpp for the
// gating rules: deterministic fields exact, timing fields thresholded and
// only on a matching, non-oversubscribed host).
#include "bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace refit::tools {

namespace {

/// Fields that identify a result row (subset present varies by bench).
const char* const kKeyFields[] = {
    "name",       "family",     "encoding",       "program_sigma",
    "drift_rate", "tick_period", "soft_fault_rate", "threads",
};

/// Top-level fields outside the comparison surface: provenance describes
/// the host (it gates timing instead), scaling_valid stamps the run,
/// note is prose, results is diffed row by row.
const char* const kTopLevelSkip[] = {"provenance", "scaling_valid", "note",
                                     "results"};

bool is_key_field(const std::string& field) {
  for (const char* k : kKeyFields) {
    if (field == k) return true;
  }
  return false;
}

std::string row_key(const JsonValue& row) {
  std::string key;
  for (const char* k : kKeyFields) {
    if (const JsonValue* v = row.find(k)) {
      if (!key.empty()) key += ' ';
      key += k;
      key += '=';
      key += v->display();
    }
  }
  return key.empty() ? "(unkeyed row)" : key;
}

bool values_equal(const JsonValue& a, const JsonValue& b) {
  if (a.kind != b.kind) {
    // 1 vs 1.0 style formatting drift: numbers compare by value below,
    // but a kind mismatch otherwise is a real difference.
    return a.is_number() && b.is_number() && a.number == b.number;
  }
  switch (a.kind) {
    case JsonValue::Kind::kNull:
      return true;
    case JsonValue::Kind::kBool:
      return a.boolean == b.boolean;
    case JsonValue::Kind::kNumber:
      return a.number == b.number;
    case JsonValue::Kind::kString:
      return a.raw == b.raw;
    default:
      return a.display() == b.display();  // arrays/objects: not row data
  }
}

std::string fmt_rel(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", rel * 100.0);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

const char* status_name(BenchDiffStatus s) {
  switch (s) {
    case BenchDiffStatus::kFail:
      return "FAIL";
    case BenchDiffStatus::kSkipped:
      return "skipped";
    case BenchDiffStatus::kInfo:
      return "info";
  }
  return "?";
}

struct Differ {
  const BenchDiffOptions& opts;
  BenchDiffReport report;

  void add(std::string row, std::string field, std::string base,
           std::string cand, BenchDiffStatus status, std::string note,
           double rel = 0.0) {
    if (status == BenchDiffStatus::kFail) report.pass = false;
    report.findings.push_back({std::move(row), std::move(field),
                               std::move(base), std::move(cand), rel, status,
                               std::move(note)});
  }

  double threshold_for(const std::string& field) const {
    const auto it = opts.thresholds.find(field);
    return it != opts.thresholds.end() ? it->second
                                       : default_threshold(field);
  }

  void decide_timing_basis(const JsonValue& base, const JsonValue& cand) {
    const auto str_at = [](const JsonValue& doc, const char* key) {
      const JsonValue* prov = doc.find("provenance");
      const JsonValue* v = prov != nullptr ? prov->find(key) : nullptr;
      return v != nullptr ? v->display() : std::string();
    };
    const auto top_scaling_invalid = [](const JsonValue& doc) {
      const JsonValue* v = doc.find("scaling_valid");
      return v != nullptr && v->is_bool() && !v->boolean;
    };
    if (str_at(base, "cpu_model") != str_at(cand, "cpu_model") ||
        str_at(base, "compiler") != str_at(cand, "compiler")) {
      report.timing_skip_reason =
          "provenance differs (cpu_model/compiler) — timings not comparable";
      return;
    }
    if (top_scaling_invalid(base) || top_scaling_invalid(cand)) {
      report.timing_skip_reason =
          "scaling_valid:false (oversubscribed host) — timings informational";
      return;
    }
    report.timing_compared = true;
  }

  void diff_field(const std::string& row, bool row_timing_skipped,
                  const std::string& field, const JsonValue& base,
                  const JsonValue& cand) {
    ++report.fields_compared;
    if (is_timing_field(field)) {
      // Whole-artifact timing skip is announced once in the summary
      // banner; a finding per field would bury the real diffs.
      if (!report.timing_compared) return;
      if (row_timing_skipped) {
        add(row, field, base.display(), cand.display(),
            BenchDiffStatus::kSkipped, "row stamped scaling_valid:false");
        return;
      }
      const double denom = std::max(std::abs(base.number), 1e-12);
      const double rel = (cand.number - base.number) / denom;
      const double tol = threshold_for(field);
      if (std::abs(rel) > tol) {
        char note[64];
        std::snprintf(note, sizeof(note), "exceeds ±%.0f%% threshold",
                      tol * 100.0);
        add(row, field, base.display(), cand.display(),
            BenchDiffStatus::kFail, note, rel);
      }
      return;
    }
    if (!values_equal(base, cand)) {
      add(row, field, base.display(), cand.display(), BenchDiffStatus::kFail,
          "deterministic field must match exactly");
    }
  }

  void diff_row(const std::string& key, const JsonValue& base,
                const JsonValue& cand) {
    ++report.rows_compared;
    const auto row_scaling_invalid = [](const JsonValue& row) {
      const JsonValue* v = row.find("scaling_valid");
      return v != nullptr && v->is_bool() && !v->boolean;
    };
    const bool row_skip = row_scaling_invalid(base) || row_scaling_invalid(cand);
    for (const auto& [field, bval] : base.members) {
      if (is_key_field(field)) continue;
      if (field == "scaling_valid") continue;  // a stamp, not a result
      const JsonValue* cval = cand.find(field);
      if (cval == nullptr) {
        add(key, field, bval.display(), "-", BenchDiffStatus::kFail,
            "field missing from candidate");
        continue;
      }
      diff_field(key, row_skip, field, bval, *cval);
    }
    for (const auto& [field, cval] : cand.members) {
      if (is_key_field(field) || field == "scaling_valid") continue;
      if (base.find(field) == nullptr) {
        add(key, field, "-", cval.display(), BenchDiffStatus::kInfo,
            "new field in candidate");
      }
    }
  }

  void run(const JsonValue& base, const JsonValue& cand) {
    if (!base.is_object() || !cand.is_object()) {
      add("(top-level)", "(document)", base.display(), cand.display(),
          BenchDiffStatus::kFail, "artifact is not a JSON object");
      return;
    }
    decide_timing_basis(base, cand);

    const auto skip_top = [](const std::string& field) {
      for (const char* k : kTopLevelSkip) {
        if (field == k) return true;
      }
      return false;
    };
    for (const auto& [field, bval] : base.members) {
      if (skip_top(field)) continue;
      const JsonValue* cval = cand.find(field);
      if (cval == nullptr) {
        add("(top-level)", field, bval.display(), "-", BenchDiffStatus::kFail,
            "field missing from candidate");
        continue;
      }
      diff_field("(top-level)", false, field, bval, *cval);
    }

    const JsonValue* brows = base.find("results");
    const JsonValue* crows = cand.find("results");
    if (brows == nullptr || !brows->is_array() || crows == nullptr ||
        !crows->is_array()) {
      add("(top-level)", "results", brows != nullptr ? "present" : "-",
          crows != nullptr ? "present" : "-", BenchDiffStatus::kFail,
          "missing results array");
      return;
    }
    // Index candidate rows by key; keys are unique per artifact.
    std::vector<std::pair<std::string, const JsonValue*>> cindex;
    cindex.reserve(crows->items.size());
    for (const JsonValue& row : crows->items) {
      cindex.emplace_back(row_key(row), &row);
    }
    std::vector<bool> matched(cindex.size(), false);
    for (const JsonValue& brow : brows->items) {
      const std::string key = row_key(brow);
      const JsonValue* crow = nullptr;
      for (std::size_t i = 0; i < cindex.size(); ++i) {
        if (!matched[i] && cindex[i].first == key) {
          matched[i] = true;
          crow = cindex[i].second;
          break;
        }
      }
      if (crow == nullptr) {
        add(key, "(row)", "present", "-", BenchDiffStatus::kFail,
            "row missing from candidate");
        continue;
      }
      diff_row(key, brow, *crow);
    }
    for (std::size_t i = 0; i < cindex.size(); ++i) {
      if (!matched[i]) {
        add(cindex[i].first, "(row)", "-", "present", BenchDiffStatus::kInfo,
            "new row in candidate");
      }
    }
  }
};

}  // namespace

bool is_timing_field(const std::string& field) {
  return field == "seconds" || field == "gflops" || field == "frac_peak" ||
         field == "speedup_vs_serial" || field == "speedup_vs_naive";
}

double default_threshold(const std::string& field) {
  // Ratios of two timings carry twice the noise of one timing.
  if (field == "speedup_vs_serial" || field == "speedup_vs_naive") return 0.30;
  return 0.15;
}

BenchDiffReport diff_bench(const JsonValue& baseline,
                           const JsonValue& candidate,
                           const BenchDiffOptions& opts) {
  Differ d{opts, {}};
  d.run(baseline, candidate);
  return std::move(d.report);
}

std::string BenchDiffReport::markdown() const {
  std::string out = "## bench-diff\n\n";
  char line[160];
  std::snprintf(line, sizeof(line),
                "%s — %zu rows, %zu fields compared.\n",
                pass ? "**PASS**" : "**FAIL**", rows_compared,
                fields_compared);
  out += line;
  if (timing_compared) {
    out += "Timing fields gated against relative thresholds.\n";
  } else {
    out += "Timing fields informational: " + timing_skip_reason + "\n";
  }
  if (findings.empty()) {
    out += "\nNo differences beyond thresholds.\n";
    return out;
  }
  out += "\n| row | field | baseline | candidate | Δ | status | note |\n";
  out += "|---|---|---|---|---|---|---|\n";
  for (const BenchDiffFinding& f : findings) {
    out += "| " + f.row + " | " + f.field + " | " + f.baseline + " | " +
           f.candidate + " | " +
           (f.rel != 0.0 ? fmt_rel(f.rel) : std::string("-")) + " | " +
           status_name(f.status) + " | " + f.note + " |\n";
  }
  return out;
}

std::string BenchDiffReport::json() const {
  std::string out = "{\"pass\": ";
  out += pass ? "true" : "false";
  out += ", \"timing_compared\": ";
  out += timing_compared ? "true" : "false";
  out += ", \"rows_compared\": " + std::to_string(rows_compared);
  out += ", \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const BenchDiffFinding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"row\": \"" + json_escape(f.row) + "\", \"field\": \"" +
           json_escape(f.field) + "\", \"baseline\": \"" +
           json_escape(f.baseline) + "\", \"candidate\": \"" +
           json_escape(f.candidate) + "\", \"status\": \"" +
           status_name(f.status) + "\", \"note\": \"" + json_escape(f.note) +
           "\"}";
  }
  out += findings.empty() ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace refit::tools
