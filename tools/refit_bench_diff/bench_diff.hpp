// refit-bench-diff: noise-aware comparator for BENCH_*.json artifacts
// (docs/tooling.md, docs/observability.md).
//
// The bench artifacts mix two kinds of fields. *Deterministic* fields —
// gemm_output_hash, bit_identical, accuracies, precision/recall, counts —
// must match exactly on any host: they are the computation's contract.
// *Timing* fields — seconds, gflops, frac_peak, speedup_vs_* — measure
// the host, so they gate only within a relative threshold, and only when
// the comparison is meaningful at all: the two artifacts must carry the
// same cpu_model + compiler provenance, neither may be stamped
// scaling_valid:false at top level (an oversubscribed host produces
// garbage timings), and rows individually stamped scaling_valid:false
// are skipped. Everything else would make the ratchet flake.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace refit::tools {

struct BenchDiffOptions {
  /// Per-field relative tolerance overrides for timing fields
  /// (--threshold field=x). Unlisted fields use default_threshold().
  std::map<std::string, double> thresholds;
};

/// True for fields that measure the host rather than the computation.
bool is_timing_field(const std::string& field);

/// Built-in relative tolerance for a timing field.
double default_threshold(const std::string& field);

enum class BenchDiffStatus {
  kFail,     // deterministic mismatch, missing row/field, or over threshold
  kSkipped,  // timing field with no valid comparison basis
  kInfo,     // additions in the candidate (new rows/fields) — never fatal
};

struct BenchDiffFinding {
  std::string row;    // row key, or "(top-level)"
  std::string field;
  std::string baseline;   // display text ("-" when absent)
  std::string candidate;  // display text ("-" when absent)
  double rel = 0.0;       // relative delta (timing findings only)
  BenchDiffStatus status = BenchDiffStatus::kFail;
  std::string note;
};

struct BenchDiffReport {
  bool pass = true;             // no kFail findings
  bool timing_compared = false;
  std::string timing_skip_reason;  // set when timing_compared is false
  std::size_t rows_compared = 0;
  std::size_t fields_compared = 0;
  std::vector<BenchDiffFinding> findings;

  /// Human-facing markdown: summary paragraph + findings table.
  [[nodiscard]] std::string markdown() const;

  /// Machine output for CI annotation: {"pass": ..., "findings": [...]}.
  [[nodiscard]] std::string json() const;
};

/// Compare a candidate bench artifact against its checked-in baseline.
BenchDiffReport diff_bench(const JsonValue& baseline,
                           const JsonValue& candidate,
                           const BenchDiffOptions& opts = {});

}  // namespace refit::tools
