// Shared C++ token scanner behind the project's static-analysis tools
// (refit-lint's per-file rules, refit-audit's cross-TU passes, and
// refit-flow's CFG/dataflow analysis).
//
// This is deliberately not a parser: it lexes well enough to separate
// code from comments, strings and preprocessor lines, which is all the
// pattern-matching and flow rules need. All tools also share the
// in-source suppression syntax (`// <tag> allow(rule[, rule…])`),
// parameterised by tag so `refit-lint:`, `refit-audit:` and `refit-flow:`
// suppressions stay independent.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace refit::lint {

enum class TokKind { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Comment {
  std::string text;
  int line;
};

/// A preprocessor directive, captured whole (continuation lines folded).
struct PpLine {
  std::string text;  ///< directive without the leading '#', trimmed
  int line;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<PpLine> pp_lines;
};

[[nodiscard]] bool ident_start(char c);
[[nodiscard]] bool ident_char(char c);

/// Lex a whole translation unit. Never fails: malformed input degrades to
/// best-effort tokens, which is the right behavior for a linter.
[[nodiscard]] LexResult lex(const std::string& src);

/// Index of the matching `)` for the `(` at `open` (token index), or npos.
[[nodiscard]] std::size_t match_paren(const std::vector<Token>& toks,
                                      std::size_t open);
/// Same, for the `{` / `[` at `open` (closer chosen from the opener).
[[nodiscard]] std::size_t match_brace(const std::vector<Token>& toks,
                                      std::size_t open);

/// In-source rule suppressions, shared by both tools.
struct Suppressions {
  /// line → rules allowed on that line (and the line after it).
  std::map<int, std::set<std::string>> by_line;
  /// rules disabled for the entire file.
  std::set<std::string> file_wide;

  [[nodiscard]] bool allows(const std::string& rule, int line) const;
};

/// Parses `<tag> allow(a, b)` / `<tag> allow-file(a)` out of comment text;
/// `tag` is e.g. "refit-lint:" or "refit-audit:". allow-file only takes
/// effect within the first 10 lines of the file.
[[nodiscard]] Suppressions parse_suppressions(
    const std::vector<Comment>& comments, const std::string& tag);

}  // namespace refit::lint
