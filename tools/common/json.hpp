// Minimal JSON reader shared by the offline tools (refit_report,
// refit_bench_diff). Parses the full JSON grammar into a JsonValue tree;
// object members keep their source order (the BENCH_*.json diff walks
// fields in emission order for stable reports). Numbers keep both the
// parsed double and the raw source text, so a diff can print values
// exactly as they appear in the artifact.
//
// This is a reader for trusted, tool-generated files — on malformed input
// parse() returns std::nullopt with a one-line error, never throws.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace refit::tools {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;     // number: source text; string: decoded value
  std::vector<JsonValue> items;                             // array
  std::vector<std::pair<std::string, JsonValue>> members;   // object

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// The value as it should be shown to a human: raw text for numbers,
  /// decoded text for strings, true/false/null otherwise.
  [[nodiscard]] std::string display() const;
};

/// Parse one JSON document. On failure returns nullopt and, when `error`
/// is non-null, stores "offset N: message".
std::optional<JsonValue> json_parse(const std::string& text,
                                    std::string* error = nullptr);

/// Parse a JSONL payload: one JSON value per non-empty line. Lines that
/// fail to parse are skipped (counted in `bad_lines` when non-null).
std::vector<JsonValue> jsonl_parse(const std::string& text,
                                   std::size_t* bad_lines = nullptr);

}  // namespace refit::tools
