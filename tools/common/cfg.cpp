// Shared CFG construction (see cfg.hpp). Pass A walks the token stream
// once to find every function body (named definitions and lambdas, with
// their enclosing-call context); pass B parses each body into basic
// blocks with a recursive-descent statement walker.
#include "common/cfg.hpp"

#include <algorithm>
#include <ostream>
#include <set>

namespace refit::cfg {

namespace {

using refit::lint::match_brace;
using refit::lint::match_paren;
using refit::lint::Token;
using refit::lint::TokKind;

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

/// Identifiers that can directly precede a '(' without being a callee or a
/// function name (control flow, operators, specifiers).
const std::set<std::string>& non_function_idents() {
  static const std::set<std::string> kSet = {
      "if",       "while",    "for",          "switch",     "catch",
      "return",   "new",      "delete",       "sizeof",     "alignof",
      "alignas",  "decltype", "noexcept",     "constexpr",  "static_assert",
      "assert",   "operator", "throw",        "case",       "defined",
      "typeid",   "co_await", "co_return",    "co_yield",   "requires",
      "__asm__",  "asm",
  };
  return kSet;
}

/// Type-ish tokens allowed in a trailing-return type or specifier tail.
bool is_type_tail_token(const Token& t) {
  if (t.kind == TokKind::kIdent) return true;
  return is_punct(t, "::") || is_punct(t, "*") || is_punct(t, "&") ||
         is_punct(t, "&&") || is_punct(t, "<") || is_punct(t, ">") ||
         is_punct(t, ">>") || is_punct(t, ",");
}

/// From the token right after a parameter list's ')', skip specifiers
/// (const/noexcept/override/final/mutable/&/&&), a trailing return type,
/// and a ctor member-init list. Returns the index of the body's '{', or
/// npos when no body follows (declaration, expression, ...).
std::size_t find_body_brace(const std::vector<Token>& toks, std::size_t q) {
  const std::size_t n = toks.size();
  while (q < n) {
    const Token& t = toks[q];
    if (is_punct(t, "{")) return q;
    if (is_ident(t, "const") || is_ident(t, "noexcept") ||
        is_ident(t, "override") || is_ident(t, "final") ||
        is_ident(t, "mutable") || is_punct(t, "&") || is_punct(t, "&&")) {
      // noexcept(...) carries an argument.
      if (is_ident(t, "noexcept") && q + 1 < n && is_punct(toks[q + 1], "(")) {
        const std::size_t c = match_paren(toks, q + 1);
        if (c == std::string::npos) return std::string::npos;
        q = c + 1;
        continue;
      }
      ++q;
      continue;
    }
    if (is_punct(t, "->")) {
      // Trailing return type: skip type tokens up to '{' or a terminator.
      ++q;
      while (q < n && is_type_tail_token(toks[q])) ++q;
      continue;
    }
    if (is_punct(t, ":")) {
      // Ctor member-init list: `name(init)` / `name{init}` groups joined
      // by commas until the body brace.
      ++q;
      while (q < n) {
        if (is_punct(toks[q], "{")) {
          // Either an init group `member{...}` (preceded by an ident) or
          // the body itself.
          if (q > 0 && toks[q - 1].kind == TokKind::kIdent) {
            const std::size_t c = match_brace(toks, q);
            if (c == std::string::npos) return std::string::npos;
            q = c + 1;
            if (q < n && is_punct(toks[q], ",")) ++q;
            continue;
          }
          return q;
        }
        if (is_punct(toks[q], "(")) {
          const std::size_t c = match_paren(toks, q);
          if (c == std::string::npos) return std::string::npos;
          q = c + 1;
          if (q < n && is_punct(toks[q], ",")) ++q;
          continue;
        }
        if (toks[q].kind == TokKind::kIdent || is_punct(toks[q], "::") ||
            is_punct(toks[q], "<") || is_punct(toks[q], ">") ||
            is_punct(toks[q], ",") || is_punct(toks[q], "...")) {
          ++q;
          continue;
        }
        return std::string::npos;
      }
      return std::string::npos;
    }
    return std::string::npos;
  }
  return std::string::npos;
}

/// Declared names of a parameter list [lp+1, rp): per depth-0 comma
/// segment, the last identifier before any depth-0 '=' (default argument).
std::vector<std::string> param_names(const std::vector<Token>& toks,
                                     std::size_t lp, std::size_t rp) {
  std::vector<std::string> out;
  int depth = 0;
  std::string last_ident;
  bool in_default = false;
  for (std::size_t i = lp + 1; i < rp; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "<" || t.text == "[" || t.text == "{")
        ++depth;
      else if (t.text == ")" || t.text == ">" || t.text == "]" ||
               t.text == "}")
        --depth;
      else if (t.text == "=" && depth == 0)
        in_default = true;
      else if (t.text == "," && depth == 0) {
        if (!last_ident.empty()) out.push_back(last_ident);
        last_ident.clear();
        in_default = false;
      }
      continue;
    }
    if (t.kind == TokKind::kIdent && depth == 0 && !in_default)
      last_ident = t.text;
  }
  if (!last_ident.empty()) out.push_back(last_ident);
  return out;
}

/// True when the '[' at `i` opens a lambda introducer (not a subscript,
/// array declarator, or attribute).
bool is_lambda_start(const std::vector<Token>& toks, std::size_t i) {
  if (i + 1 < toks.size() && is_punct(toks[i + 1], "["))
    return false;  // [[attribute]]
  if (i > 0) {
    const Token& p = toks[i - 1];
    // After a value (identifier, ')', ']', literal) a '[' is a subscript
    // or an array declarator.
    if (p.kind == TokKind::kIdent && !is_ident(p, "return") &&
        !is_ident(p, "case") && !non_function_idents().count(p.text) &&
        p.text != "else" && p.text != "do")
      return false;
    if (is_punct(p, ")") || is_punct(p, "]") || p.kind == TokKind::kNumber ||
        p.kind == TokKind::kString)
      return false;
  }
  const std::size_t close = match_brace(toks, i);
  if (close == std::string::npos) return false;
  if (close + 1 >= toks.size()) return false;
  const Token& nxt = toks[close + 1];
  if (is_punct(nxt, "{")) return true;
  if (is_punct(nxt, "(")) {
    const std::size_t rp = match_paren(toks, close + 1);
    if (rp == std::string::npos) return false;
    return find_body_brace(toks, rp + 1) != std::string::npos;
  }
  // `[&] mutable { ... }` / `[&] -> T { ... }` (no parameter list).
  if (is_ident(nxt, "mutable") || is_punct(nxt, "->"))
    return find_body_brace(toks, close + 1) != std::string::npos;
  return false;
}

/// The thread-pool entry points the race rule watches.
bool is_parallel_entry(const std::string& name) {
  return name == "parallel_for" || name == "parallel_for_grained" ||
         name == "for_each_tile";
}

// ---------------------------------------------------------------------------
// Pass A: find every function body.
// ---------------------------------------------------------------------------

void find_functions(FileCfg& file) {
  const std::vector<Token>& toks = file.lex.tokens;
  const std::size_t n = toks.size();
  // Innermost-last stack of open function indices (by body_end).
  std::vector<std::size_t> fn_stack;
  // Names of the calls whose argument lists are currently open ("" for
  // grouping parens); the lambda-to-pool association reads this.
  std::vector<std::string> call_stack;

  for (std::size_t i = 0; i < n; ++i) {
    while (!fn_stack.empty() &&
           file.functions[fn_stack.back()].body_end <= i)
      fn_stack.pop_back();

    const Token& t = toks[i];
    if (is_punct(t, ")")) {
      if (!call_stack.empty()) call_stack.pop_back();
      continue;
    }
    if (is_punct(t, "(")) {
      std::string callee;
      if (i > 0 && toks[i - 1].kind == TokKind::kIdent &&
          !non_function_idents().count(toks[i - 1].text))
        callee = toks[i - 1].text;
      call_stack.push_back(callee);

      // Named function definition: `name ( params ) tail {`.
      if (callee.empty()) continue;
      const std::size_t rp = match_paren(toks, i);
      if (rp == std::string::npos) continue;
      const std::size_t lb = find_body_brace(toks, rp + 1);
      if (lb == std::string::npos) continue;
      const std::size_t rb = match_brace(toks, lb);
      if (rb == std::string::npos) continue;
      FunctionCfg fn;
      fn.name = callee;
      fn.line = toks[lb].line;
      fn.header_begin = i - 1;
      fn.body_begin = lb + 1;
      fn.body_end = rb;
      fn.params = param_names(toks, i, rp);
      fn.enclosing = fn_stack.empty() ? -1 : static_cast<int>(fn_stack.back());
      file.functions.push_back(std::move(fn));
      fn_stack.push_back(file.functions.size() - 1);
      continue;
    }
    if (is_punct(t, "[") && is_lambda_start(toks, i)) {
      const std::size_t close = match_brace(toks, i);
      std::size_t lp = std::string::npos, rp = std::string::npos;
      std::size_t after = close + 1;
      if (is_punct(toks[after], "(")) {
        lp = after;
        rp = match_paren(toks, after);
        if (rp == std::string::npos) continue;
        after = rp + 1;
      }
      const std::size_t lb = find_body_brace(toks, after);
      if (lb == std::string::npos) continue;
      const std::size_t rb = match_brace(toks, lb);
      if (rb == std::string::npos) continue;
      FunctionCfg fn;
      fn.name = "<lambda>";
      fn.line = toks[lb].line;
      fn.header_begin = i;
      fn.body_begin = lb + 1;
      fn.body_end = rb;
      fn.is_lambda = true;
      if (lp != std::string::npos) fn.params = param_names(toks, lp, rp);
      fn.enclosing = fn_stack.empty() ? -1 : static_cast<int>(fn_stack.back());
      for (auto it = call_stack.rbegin(); it != call_stack.rend(); ++it) {
        if (it->empty()) continue;
        if (is_parallel_entry(*it)) fn.parallel_callee = *it;
        break;  // innermost named call decides
      }
      file.functions.push_back(std::move(fn));
      fn_stack.push_back(file.functions.size() - 1);
      continue;
    }
  }
  // Functions sorted by body_begin (pass order already guarantees it for
  // same-start nesting; enforce for determinism).
  std::stable_sort(file.functions.begin(), file.functions.end(),
                   [](const FunctionCfg& a, const FunctionCfg& b) {
                     return a.body_begin < b.body_begin;
                   });
  // Re-point `enclosing` after the sort: the innermost strictly-containing
  // function wins (ranges nest, so the tightest container is correct).
  for (std::size_t i = 0; i < file.functions.size(); ++i) {
    int best = -1;
    for (std::size_t j = 0; j < file.functions.size(); ++j) {
      if (j == i) continue;
      const FunctionCfg& g = file.functions[j];
      const FunctionCfg& f = file.functions[i];
      if (g.body_begin <= f.body_begin && f.body_end <= g.body_end &&
          (g.body_begin < f.body_begin || f.body_end < g.body_end)) {
        if (best < 0 ||
            file.functions[best].body_begin < g.body_begin)
          best = static_cast<int>(j);
      }
    }
    file.functions[i].enclosing = best;
  }
}

// ---------------------------------------------------------------------------
// Pass B: parse one body into basic blocks.
// ---------------------------------------------------------------------------

class BodyParser {
 public:
  BodyParser(const std::vector<Token>& toks, FunctionCfg& fn)
      : t_(toks), fn_(fn) {
    fn_.blocks.clear();
    fn_.entry = new_block();    // 0
    fn_.exit_id = new_block();  // 1
    cur_ = fn_.entry;
  }

  void run() {
    parse_stmts(fn_.body_begin, fn_.body_end);
    edge(cur_, fn_.exit_id);
  }

 private:
  int new_block() {
    fn_.blocks.emplace_back();
    return static_cast<int>(fn_.blocks.size()) - 1;
  }
  void edge(int a, int b) {
    auto& s = fn_.blocks[a].succs;
    if (std::find(s.begin(), s.end(), b) == s.end()) s.push_back(b);
  }
  void add_stmt(int block, std::size_t first, std::size_t last) {
    if (first >= last) return;
    fn_.blocks[block].stmts.push_back({first, last, t_[first].line});
  }

  /// One past the end of a plain statement starting at `from`: the first
  /// ';' with all bracket depths at zero (consumed), or `to`.
  std::size_t stmt_end(std::size_t from, std::size_t to) const {
    int depth = 0;
    for (std::size_t i = from; i < to; ++i) {
      const Token& tk = t_[i];
      if (tk.kind != TokKind::kPunct) continue;
      if (tk.text == "(" || tk.text == "[" || tk.text == "{") ++depth;
      else if (tk.text == ")" || tk.text == "]" || tk.text == "}") --depth;
      else if (tk.text == ";" && depth == 0) return i + 1;
    }
    return to;
  }

  void parse_stmts(std::size_t from, std::size_t to) {
    std::size_t pos = from;
    while (pos < to) pos = parse_one(pos, to);
  }

  /// Parse the single statement at `pos`; returns one past its end.
  std::size_t parse_one(std::size_t pos, std::size_t to);

  const std::vector<Token>& t_;
  FunctionCfg& fn_;
  int cur_ = 0;
  std::vector<int> break_targets_;
  std::vector<int> continue_targets_;
};

std::size_t BodyParser::parse_one(std::size_t pos, std::size_t to) {
  const Token& tk = t_[pos];

  if (is_punct(tk, ";")) return pos + 1;

  if (is_punct(tk, "{")) {
    const std::size_t rb = match_brace(t_, pos);
    const std::size_t end = (rb == std::string::npos || rb > to) ? to : rb;
    parse_stmts(pos + 1, end);
    return end + 1 > to ? to : end + 1;
  }

  if (is_ident(tk, "if")) {
    std::size_t lp = pos + 1;
    if (lp < to && is_ident(t_[lp], "constexpr")) ++lp;
    if (lp >= to || !is_punct(t_[lp], "(")) return stmt_end(pos, to);
    const std::size_t rp = match_paren(t_, lp);
    if (rp == std::string::npos || rp >= to) return stmt_end(pos, to);
    add_stmt(cur_, lp + 1, rp);  // condition evaluates in the current block
    const int cond_block = cur_;
    const int then_block = new_block();
    const int join = new_block();
    edge(cond_block, then_block);
    cur_ = then_block;
    std::size_t next = parse_one(rp + 1, to);
    edge(cur_, join);
    if (next < to && is_ident(t_[next], "else")) {
      const int else_block = new_block();
      edge(cond_block, else_block);
      cur_ = else_block;
      next = parse_one(next + 1, to);
      edge(cur_, join);
    } else {
      edge(cond_block, join);
    }
    cur_ = join;
    return next;
  }

  if (is_ident(tk, "while")) {
    const std::size_t lp = pos + 1;
    if (lp >= to || !is_punct(t_[lp], "(")) return stmt_end(pos, to);
    const std::size_t rp = match_paren(t_, lp);
    if (rp == std::string::npos || rp >= to) return stmt_end(pos, to);
    const int head = new_block();
    edge(cur_, head);
    add_stmt(head, lp + 1, rp);
    const int body = new_block();
    const int after = new_block();
    edge(head, body);
    edge(head, after);
    break_targets_.push_back(after);
    continue_targets_.push_back(head);
    cur_ = body;
    const std::size_t next = parse_one(rp + 1, to);
    edge(cur_, head);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    cur_ = after;
    return next;
  }

  if (is_ident(tk, "do")) {
    const int body = new_block();
    edge(cur_, body);
    const int cond_block = new_block();
    const int after = new_block();
    break_targets_.push_back(after);
    continue_targets_.push_back(cond_block);
    cur_ = body;
    std::size_t next = parse_one(pos + 1, to);
    edge(cur_, cond_block);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    // `while (cond) ;`
    if (next < to && is_ident(t_[next], "while") && next + 1 < to &&
        is_punct(t_[next + 1], "(")) {
      const std::size_t rp = match_paren(t_, next + 1);
      if (rp != std::string::npos && rp < to) {
        add_stmt(cond_block, next + 2, rp);
        next = rp + 1;
        if (next < to && is_punct(t_[next], ";")) ++next;
      }
    }
    edge(cond_block, body);
    edge(cond_block, after);
    cur_ = after;
    return next;
  }

  if (is_ident(tk, "for")) {
    const std::size_t lp = pos + 1;
    if (lp >= to || !is_punct(t_[lp], "(")) return stmt_end(pos, to);
    const std::size_t rp = match_paren(t_, lp);
    if (rp == std::string::npos || rp >= to) return stmt_end(pos, to);
    // Classic three-clause or range-based? Look for a depth-0 ';'.
    std::size_t semi1 = std::string::npos, semi2 = std::string::npos;
    int depth = 0;
    for (std::size_t i = lp + 1; i < rp; ++i) {
      const Token& x = t_[i];
      if (x.kind != TokKind::kPunct) continue;
      if (x.text == "(" || x.text == "[" || x.text == "{") ++depth;
      else if (x.text == ")" || x.text == "]" || x.text == "}") --depth;
      else if (x.text == ";" && depth == 0) {
        if (semi1 == std::string::npos) semi1 = i;
        else if (semi2 == std::string::npos) semi2 = i;
      }
    }
    const int after = new_block();
    int head, inc_block;
    if (semi1 != std::string::npos) {
      add_stmt(cur_, lp + 1, semi1);  // init runs once, in the current block
      head = new_block();
      edge(cur_, head);
      const std::size_t cond_from = semi1 + 1;
      const std::size_t cond_to = semi2 == std::string::npos ? rp : semi2;
      add_stmt(head, cond_from, cond_to);
      inc_block = new_block();
      if (semi2 != std::string::npos) add_stmt(inc_block, semi2 + 1, rp);
      edge(inc_block, head);
    } else {
      head = new_block();
      edge(cur_, head);
      add_stmt(head, lp + 1, rp);  // `decl : range` as one statement
      inc_block = head;
    }
    const int body = new_block();
    edge(head, body);
    edge(head, after);
    break_targets_.push_back(after);
    continue_targets_.push_back(inc_block);
    cur_ = body;
    const std::size_t next = parse_one(rp + 1, to);
    edge(cur_, inc_block);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    cur_ = after;
    return next;
  }

  if (is_ident(tk, "switch")) {
    const std::size_t lp = pos + 1;
    if (lp >= to || !is_punct(t_[lp], "(")) return stmt_end(pos, to);
    const std::size_t rp = match_paren(t_, lp);
    if (rp == std::string::npos || rp + 1 >= to ||
        !is_punct(t_[rp + 1], "{"))
      return stmt_end(pos, to);
    const std::size_t rb = match_brace(t_, rp + 1);
    const std::size_t body_to = rb == std::string::npos ? to : rb;
    add_stmt(cur_, lp + 1, rp);
    const int head = cur_;
    const int after = new_block();
    break_targets_.push_back(after);
    bool saw_default = false;
    bool in_label = false;
    std::size_t p = rp + 2;
    while (p < body_to) {
      if (is_ident(t_[p], "case") || is_ident(t_[p], "default")) {
        saw_default = saw_default || is_ident(t_[p], "default");
        // Skip the label expression to its ':' (a lone ':', not '::').
        std::size_t c = p + 1;
        int d = 0;
        while (c < body_to) {
          const Token& x = t_[c];
          if (x.kind == TokKind::kPunct) {
            if (x.text == "(" || x.text == "[" || x.text == "{") ++d;
            else if (x.text == ")" || x.text == "]" || x.text == "}") --d;
            else if (x.text == ":" && d == 0) break;
          }
          ++c;
        }
        const int label_block = new_block();
        edge(head, label_block);
        if (in_label) edge(cur_, label_block);  // fallthrough
        cur_ = label_block;
        in_label = true;
        p = c + 1;
        continue;
      }
      if (!in_label) {
        // Statements before the first label are unreachable; park them in
        // a fresh block so the walker still sees them.
        cur_ = new_block();
        in_label = true;
      }
      p = parse_one(p, body_to);
    }
    if (in_label) edge(cur_, after);  // last label falls off the switch
    if (!saw_default) edge(head, after);
    break_targets_.pop_back();
    cur_ = after;
    return body_to + 1 > to ? to : body_to + 1;
  }

  if (is_ident(tk, "break") && !break_targets_.empty()) {
    add_stmt(cur_, pos, pos + 1);
    edge(cur_, break_targets_.back());
    cur_ = new_block();  // dead until the next join
    return stmt_end(pos, to);
  }

  if (is_ident(tk, "continue") && !continue_targets_.empty()) {
    add_stmt(cur_, pos, pos + 1);
    edge(cur_, continue_targets_.back());
    cur_ = new_block();
    return stmt_end(pos, to);
  }

  if (is_ident(tk, "return")) {
    const std::size_t end = stmt_end(pos, to);
    add_stmt(cur_, pos, end);
    edge(cur_, fn_.exit_id);
    cur_ = new_block();
    return end;
  }

  if (is_ident(tk, "try") && pos + 1 < to && is_punct(t_[pos + 1], "{")) {
    const int pre = cur_;
    const int try_block = new_block();
    const int join = new_block();
    edge(pre, try_block);
    cur_ = try_block;
    std::size_t next = parse_one(pos + 1, to);
    edge(cur_, join);
    while (next < to && is_ident(t_[next], "catch")) {
      std::size_t p = next + 1;
      const int handler = new_block();
      edge(pre, handler);  // the try body may transfer at any point
      if (p < to && is_punct(t_[p], "(")) {
        const std::size_t rp = match_paren(t_, p);
        if (rp == std::string::npos || rp >= to) break;
        add_stmt(handler, p + 1, rp);
        p = rp + 1;
      }
      cur_ = handler;
      next = parse_one(p, to);
      edge(cur_, join);
    }
    cur_ = join;
    return next;
  }

  // Everything else — declarations, expressions, local types, `goto`-free
  // ladders' plain rungs — is one statement up to the terminating ';'.
  const std::size_t end = stmt_end(pos, to);
  add_stmt(cur_, pos, end);
  return end;
}

}  // namespace

FileCfg build_file_cfg(const std::string& path, const std::string& content) {
  FileCfg file;
  file.path = path;
  file.lex = refit::lint::lex(content);
  find_functions(file);
  for (FunctionCfg& fn : file.functions) {
    BodyParser parser(file.lex.tokens, fn);
    parser.run();
  }
  return file;
}

bool in_nested_body(const FileCfg& file, int fn_index,
                    std::size_t token_index) {
  const FunctionCfg& fn = file.functions[fn_index];
  for (std::size_t j = 0; j < file.functions.size(); ++j) {
    if (static_cast<int>(j) == fn_index) continue;
    const FunctionCfg& g = file.functions[j];
    if (g.body_begin > fn.body_begin && g.body_end <= fn.body_end &&
        token_index >= g.body_begin && token_index < g.body_end)
      return true;
  }
  return false;
}

void dump_cfg(std::ostream& os, const FileCfg& file) {
  const std::vector<Token>& toks = file.lex.tokens;
  for (std::size_t i = 0; i < file.functions.size(); ++i) {
    const FunctionCfg& fn = file.functions[i];
    os << "function " << fn.name << " @" << fn.line;
    if (fn.is_lambda) {
      os << " lambda";
      if (!fn.parallel_callee.empty()) os << "(" << fn.parallel_callee << ")";
    }
    if (!fn.params.empty()) {
      os << " params(";
      for (std::size_t p = 0; p < fn.params.size(); ++p)
        os << (p ? ", " : "") << fn.params[p];
      os << ")";
    }
    os << "\n";
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      const BasicBlock& bb = fn.blocks[b];
      os << "  b" << b;
      if (static_cast<int>(b) == fn.entry) os << " entry";
      if (static_cast<int>(b) == fn.exit_id) os << " exit";
      if (!bb.succs.empty()) {
        os << " ->";
        for (const int s : bb.succs) os << " b" << s;
      }
      os << "\n";
      for (const Stmt& st : bb.stmts) {
        os << "    line " << st.line << ":";
        const std::size_t limit = std::min(st.last, st.first + 6);
        for (std::size_t k = st.first; k < limit; ++k)
          os << " " << toks[k].text;
        if (st.last > limit) os << " ...";
        os << "\n";
      }
    }
  }
}

}  // namespace refit::cfg
