// Shared intraprocedural control-flow graphs over the analyzer lexer
// (tools/common/lexer.hpp), consumed by refit-flow's per-function dataflow
// rules and refit-det's whole-program determinism taint analysis.
//
// build_file_cfg() lexes one translation unit, finds every function body
// (free functions, member functions, TEST bodies — anything of the shape
// `name(params) ... {`), and parses each body into a CFG of basic blocks:
//
//   - if/else, while, for (classic and range), do/while build the usual
//     diamond/loop shapes; `break`/`continue` edge to the innermost loop's
//     exit/header; `return` edges to the function's dedicated exit block;
//   - switch bodies get one block per `case`/`default` label, an edge from
//     the switch head to every label, and *fallthrough* edges between
//     consecutive label blocks unless the previous one ended in a jump;
//   - try/catch approximates: the try body may complete (edge to the join)
//     or transfer to each handler (edge from the block before the try);
//   - lambdas are extracted as nested functions with their own CFGs; the
//     enclosing statement keeps the lambda's tokens, and analyses skip the
//     nested body range via FunctionCfg::body_begin/body_end. A lambda
//     passed (possibly indirectly) to ThreadPool::parallel_for /
//     parallel_for_grained / TileGrid::for_each_tile records the callee in
//     parallel_callee — the hook the static race rule keys on.
//
// Statements are token ranges into the file-wide token vector, so analyses
// (refit-flow's flow.hpp, refit-det's det.hpp) can re-inspect any
// statement's tokens without re-lexing. The graph is deliberately
// syntax-directed and unresolved (no symbol table): good enough for the
// dataflow rules, cheap enough to run on every commit.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/lexer.hpp"

namespace refit::cfg {

/// One statement: tokens [first, last) of FileCfg::tokens. `line` is the
/// line of the first token (what findings anchor to).
struct Stmt {
  std::size_t first = 0;
  std::size_t last = 0;
  int line = 0;
};

/// A basic block: straight-line statements plus successor edges. Condition
/// expressions (if/while/for/switch heads) are ordinary statements at the
/// end of their block.
struct BasicBlock {
  std::vector<Stmt> stmts;
  std::vector<int> succs;
};

/// One function (or lambda) with its CFG. blocks[entry] is the entry,
/// blocks[exit_id] the single synthetic exit every return edges to.
struct FunctionCfg {
  std::string name;           ///< unqualified name; "<lambda>" for lambdas
  int line = 0;               ///< line of the body's opening brace
  std::size_t header_begin = 0;  ///< name token (named fn) / '[' (lambda)
  std::size_t body_begin = 0; ///< first token index inside the body braces
  std::size_t body_end = 0;   ///< one past the last body token
  std::vector<std::string> params;  ///< declared parameter names
  bool is_lambda = false;
  /// For lambdas: the innermost enclosing call the lambda is an argument
  /// of, when it is one of the thread-pool entry points ("parallel_for",
  /// "parallel_for_grained", "for_each_tile"); empty otherwise.
  std::string parallel_callee;
  /// Index (into FileCfg::functions) of the lexically enclosing function;
  /// -1 for file-scope functions.
  int enclosing = -1;
  std::vector<BasicBlock> blocks;
  int entry = 0;
  int exit_id = 1;
};

/// A whole translation unit, lexed once.
struct FileCfg {
  std::string path;
  refit::lint::LexResult lex;
  std::vector<FunctionCfg> functions;
};

/// Lex + CFG-build one file. Never fails: constructs the parser cannot
/// shape degrade to straight-line statements (linter, not compiler).
[[nodiscard]] FileCfg build_file_cfg(const std::string& path,
                                     const std::string& content);

/// Deterministic text dump of every function's CFG — the golden-fixture
/// format under testdata/cfg/ (one `function`/`block`/`succ` section per
/// entity, token texts elided down to per-statement line + first tokens).
void dump_cfg(std::ostream& os, const FileCfg& file);

/// True if the token range [first, last) of `stmts` overlaps the body of a
/// *nested* function of `fn` (analyses use this to skip lambda bodies when
/// reading an enclosing statement's tokens).
[[nodiscard]] bool in_nested_body(const FileCfg& file, int fn_index,
                                  std::size_t token_index);

}  // namespace refit::cfg
