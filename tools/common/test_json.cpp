// Tests for the shared JSON reader (tools/common/json.hpp).
#include "common/json.hpp"

#include <gtest/gtest.h>

namespace refit::tools {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json_parse("null")->is_null());
  EXPECT_TRUE(json_parse("true")->boolean);
  EXPECT_FALSE(json_parse("false")->boolean);
  EXPECT_DOUBLE_EQ(json_parse("-2.5e3")->number, -2500.0);
  EXPECT_EQ(json_parse("-2.5e3")->raw, "-2.5e3");
  EXPECT_EQ(json_parse("\"a\\nb\\\"c\"")->raw, "a\nb\"c");
}

TEST(Json, ObjectKeepsMemberOrderAndFinds) {
  const auto v = json_parse(R"({"z": 1, "a": {"nested": [1, 2, 3]}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  ASSERT_EQ(v->members.size(), 2u);
  EXPECT_EQ(v->members[0].first, "z");  // source order, not sorted
  EXPECT_EQ(v->members[1].first, "a");
  const JsonValue* nested = v->find("a");
  ASSERT_NE(nested, nullptr);
  const JsonValue* arr = nested->find("nested");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->items.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->items[2].number, 3.0);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(Json, RejectsMalformedWithOffsetError) {
  std::string err;
  EXPECT_FALSE(json_parse("{\"a\": }", &err).has_value());
  EXPECT_NE(err.find("offset"), std::string::npos);
  EXPECT_FALSE(json_parse("[1, 2", &err).has_value());
  EXPECT_FALSE(json_parse("{} trailing", &err).has_value());
  EXPECT_FALSE(json_parse("nope", &err).has_value());
}

TEST(Json, DisplayUsesRawNumberText) {
  const auto v = json_parse(R"({"seconds": 0.0572741})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("seconds")->display(), "0.0572741");
  EXPECT_EQ(json_parse("true")->display(), "true");
}

TEST(Json, JsonlSkipsBlankAndBadLines) {
  std::size_t bad = 0;
  const auto rows = jsonl_parse("{\"a\":1}\n\nnot json\n{\"b\":2}\n", &bad);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(bad, 1u);
  EXPECT_DOUBLE_EQ(rows[1].find("b")->number, 2.0);
}

}  // namespace
}  // namespace refit::tools
