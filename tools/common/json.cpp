// Recursive-descent JSON/JSONL reader behind tools/common/json.hpp:
// order-preserving objects, raw number/string text for lossless display.
#include "common/json.hpp"

#include <cctype>
#include <cstdlib>

namespace refit::tools {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::display() const {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return boolean ? "true" : "false";
    case Kind::kNumber:
    case Kind::kString:
      return raw;
    case Kind::kArray:
      return "[array]";
    case Kind::kObject:
      return "{object}";
  }
  return "?";
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = "offset " + std::to_string(pos) + ": " + msg;
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_string(std::string& out) {
    if (pos >= text.size() || text[pos] != '"') return fail("expected '\"'");
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return fail("dangling escape");
      const char e = text[pos++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          // Tool artifacts are ASCII; decode BMP escapes to '?' rather
          // than growing a full UTF-8 encoder.
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          pos += 4;
          out.push_back('?');
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        if (!consume(':')) return false;
        JsonValue v;
        if (!parse_value(v)) return false;
        out.members.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        JsonValue v;
        if (!parse_value(v)) return false;
        out.items.push_back(std::move(v));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return consume(']');
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.raw);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      out.kind = JsonValue::Kind::kNull;
      pos += 4;
      return true;
    }
    // Number.
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      if (std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
        digits = true;
      }
      ++pos;
    }
    if (!digits) {
      pos = start;
      return fail("unexpected token");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.raw = text.substr(start, pos - start);
    out.number = std::strtod(out.raw.c_str(), nullptr);
    return true;
  }
};

}  // namespace

std::optional<JsonValue> json_parse(const std::string& text,
                                    std::string* error) {
  Parser p{text, 0, {}};
  JsonValue v;
  if (!p.parse_value(v)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "offset " + std::to_string(p.pos) + ": trailing content";
    }
    return std::nullopt;
  }
  return v;
}

std::vector<JsonValue> jsonl_parse(const std::string& text,
                                   std::size_t* bad_lines) {
  std::vector<JsonValue> out;
  if (bad_lines != nullptr) *bad_lines = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) {
      if (end == text.size()) break;
      continue;
    }
    if (auto v = json_parse(line)) {
      out.push_back(std::move(*v));
    } else if (bad_lines != nullptr) {
      ++*bad_lines;
    }
    if (end == text.size()) break;
  }
  return out;
}

}  // namespace refit::tools
