// Token scanner + suppression parser shared by refit-lint and refit-audit
// (see lexer.hpp).
#include "common/lexer.hpp"

#include <cctype>
#include <sstream>

namespace refit::lint {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

namespace {

/// Multi-character punctuators, longest first (maximal munch) so that `==`
/// never lexes as two `=` and `<<=` never as `<<` `=`.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",
};

}  // namespace

LexResult lex(const std::string& src) {
  LexResult out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i)
      if (src[i] == '\n') ++line;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      at_line_start = true;
      advance(1);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back({src.substr(start, i - start), line});
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      const std::size_t start = i;
      advance(2);
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) advance(1);
      advance(2);
      out.comments.push_back({src.substr(start, i - start), start_line});
      continue;
    }
    // Preprocessor directive (only when '#' is the first glyph on the line).
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::string text;
      advance(1);
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          text += ' ';
          advance(2);
          continue;
        }
        if (src[i] == '\n') break;
        text += src[i];
        advance(1);
      }
      // Trim.
      const auto b = text.find_first_not_of(" \t");
      const auto e = text.find_last_not_of(" \t");
      out.pp_lines.push_back(
          {b == std::string::npos ? "" : text.substr(b, e - b + 1),
           start_line});
      continue;
    }
    at_line_start = false;
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, j);
      const int start_line = line;
      const std::size_t stop = end == std::string::npos ? n : end + closer.size();
      std::string text = src.substr(i, stop - i);
      advance(stop - i);
      out.tokens.push_back({TokKind::kString, std::move(text), start_line});
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      const std::size_t start = i;
      advance(1);
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n)
          advance(2);
        else
          advance(1);
      }
      advance(1);
      out.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                            src.substr(start, i - start), start_line});
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back(
          {TokKind::kIdent, src.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = i;
      while (i < n && (ident_char(src[i]) || src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P'))))
        ++i;
      out.tokens.push_back(
          {TokKind::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation, longest match first.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (src.compare(i, len, p) == 0) {
        out.tokens.push_back({TokKind::kPunct, p, line});
        advance(len);
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
      advance(1);
    }
  }
  return out;
}

std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i;
  }
  return std::string::npos;
}

std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  if (open >= toks.size()) return std::string::npos;
  const std::string& opener = toks[open].text;
  const std::string closer = opener == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == opener) ++depth;
    if (toks[i].text == closer && --depth == 0) return i;
  }
  return std::string::npos;
}

bool Suppressions::allows(const std::string& rule, int line) const {
  if (file_wide.count(rule) || file_wide.count("*")) return true;
  for (const int l : {line, line - 1}) {
    const auto it = by_line.find(l);
    if (it != by_line.end() &&
        (it->second.count(rule) || it->second.count("*")))
      return true;
  }
  return false;
}

Suppressions parse_suppressions(const std::vector<Comment>& comments,
                                const std::string& tag) {
  Suppressions sup;
  for (const Comment& cm : comments) {
    const std::size_t pos0 = cm.text.find(tag);
    if (pos0 == std::string::npos) continue;
    std::size_t pos = pos0 + tag.size();
    while (pos < cm.text.size()) {
      while (pos < cm.text.size() &&
             (std::isspace(static_cast<unsigned char>(cm.text[pos])) ||
              cm.text[pos] == ','))
        ++pos;
      std::size_t word_end = pos;
      while (word_end < cm.text.size() &&
             (ident_char(cm.text[word_end]) || cm.text[word_end] == '-'))
        ++word_end;
      const std::string verb = cm.text.substr(pos, word_end - pos);
      if (verb != "allow" && verb != "allow-file") break;
      const std::size_t open = cm.text.find('(', word_end);
      if (open == std::string::npos) break;
      const std::size_t close = cm.text.find(')', open);
      if (close == std::string::npos) break;
      std::string list = cm.text.substr(open + 1, close - open - 1);
      std::istringstream ls(list);
      std::string rule;
      while (std::getline(ls, rule, ',')) {
        const auto b = rule.find_first_not_of(" \t");
        const auto e = rule.find_last_not_of(" \t");
        if (b == std::string::npos) continue;
        rule = rule.substr(b, e - b + 1);
        if (verb == "allow-file" && cm.line <= 10)
          sup.file_wide.insert(rule);
        else
          sup.by_line[cm.line].insert(rule);
      }
      pos = close + 1;
    }
  }
  return sup;
}

}  // namespace refit::lint
