// Unit tests for the shared CFG builder (common/cfg.hpp), exercised
// directly rather than through refit-flow's golden dumps: block/edge
// structure for the loop and switch shapes, lambda extraction and
// parallel-callee association, and the statement token ranges the
// downstream analyses walk. refit-flow's testdata/cfg/ goldens pin the
// exact dump format; these tests pin the graph semantics.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/cfg.hpp"
#include "gtest/gtest.h"

namespace {

using refit::cfg::build_file_cfg;
using refit::cfg::FileCfg;
using refit::cfg::FunctionCfg;

const FunctionCfg* find_fn(const FileCfg& file, const std::string& name) {
  for (const FunctionCfg& fn : file.functions)
    if (fn.name == name) return &fn;
  return nullptr;
}

/// All blocks reachable from the entry.
std::set<int> reachable(const FunctionCfg& fn) {
  std::set<int> seen;
  std::vector<int> work = {fn.entry};
  while (!work.empty()) {
    const int b = work.back();
    work.pop_back();
    if (!seen.insert(b).second) continue;
    for (const int s : fn.blocks[b].succs) work.push_back(s);
  }
  return seen;
}

bool has_edge(const FunctionCfg& fn, int from, int to) {
  const auto& s = fn.blocks[from].succs;
  return std::find(s.begin(), s.end(), to) != s.end();
}

}  // namespace

TEST(ToolsCfg, StraightLineBodyIsEntryToExit) {
  const FileCfg file = build_file_cfg("t.cpp",
                                      "int f(int a) {\n"
                                      "  int b = a + 1;\n"
                                      "  return b;\n"
                                      "}\n");
  ASSERT_EQ(file.functions.size(), 1u);
  const FunctionCfg& fn = file.functions[0];
  EXPECT_EQ(fn.name, "f");
  ASSERT_EQ(fn.params.size(), 1u);
  EXPECT_EQ(fn.params[0], "a");
  // Entry holds both statements and the return edges to the exit.
  EXPECT_EQ(fn.blocks[fn.entry].stmts.size(), 2u);
  EXPECT_TRUE(has_edge(fn, fn.entry, fn.exit_id));
  EXPECT_TRUE(reachable(fn).count(fn.exit_id));
}

TEST(ToolsCfg, IfElseMakesADiamond) {
  const FileCfg file = build_file_cfg("t.cpp",
                                      "void f(bool c) {\n"
                                      "  if (c) { g(); } else { h(); }\n"
                                      "  tail();\n"
                                      "}\n");
  const FunctionCfg& fn = file.functions[0];
  // Entry (condition) has two successors: then and else arms.
  EXPECT_EQ(fn.blocks[fn.entry].succs.size(), 2u);
  // Both arms rejoin: some block with the tail() statement is reachable
  // from both successors of the entry.
  const int then_b = fn.blocks[fn.entry].succs[0];
  const int else_b = fn.blocks[fn.entry].succs[1];
  auto closure = [&fn](int from) {
    std::set<int> out;
    std::vector<int> work = {from};
    while (!work.empty()) {
      const int x = work.back();
      work.pop_back();
      if (!out.insert(x).second) continue;
      for (const int s : fn.blocks[x].succs) work.push_back(s);
    }
    return out;
  };
  const std::set<int> from_then = closure(then_b);
  const std::set<int> from_else = closure(else_b);
  std::set<int> join;
  std::set_intersection(from_then.begin(), from_then.end(), from_else.begin(),
                        from_else.end(), std::inserter(join, join.begin()));
  EXPECT_FALSE(join.empty()) << "then/else arms never rejoin";
}

TEST(ToolsCfg, WhileLoopHasBackEdgeAndExitEdge) {
  const FileCfg file = build_file_cfg("t.cpp",
                                      "void f(int n) {\n"
                                      "  while (n > 0) { --n; }\n"
                                      "}\n");
  const FunctionCfg& fn = file.functions[0];
  // Find the loop head: a block with the condition statement and two
  // successors (body + after).
  int head = -1;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b)
    if (fn.blocks[b].succs.size() == 2 && !fn.blocks[b].stmts.empty())
      head = static_cast<int>(b);
  ASSERT_GE(head, 0);
  const int body = fn.blocks[head].succs[0];
  EXPECT_TRUE(has_edge(fn, body, head)) << "loop body must edge back to head";
  EXPECT_TRUE(reachable(fn).count(fn.exit_id));
}

TEST(ToolsCfg, ForLoopBreakEdgesToAfterContinueToIncrement) {
  const FileCfg file =
      build_file_cfg("t.cpp",
                     "void f() {\n"
                     "  for (int i = 0; i < 4; ++i) {\n"
                     "    if (i == 1) continue;\n"
                     "    if (i == 2) break;\n"
                     "    work(i);\n"
                     "  }\n"
                     "  done();\n"
                     "}\n");
  const FunctionCfg& fn = file.functions[0];
  // The increment block holds `++i` and edges to the condition head.
  int inc = -1, head = -1;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    for (const auto& st : fn.blocks[b].stmts) {
      const auto& tok = file.lex.tokens[st.first];
      if (tok.text == "++") inc = static_cast<int>(b);
    }
  }
  ASSERT_GE(inc, 0);
  ASSERT_EQ(fn.blocks[inc].succs.size(), 1u);
  head = fn.blocks[inc].succs[0];
  // `continue` lands in the increment block; `break` skips past the head.
  bool continue_edge = false, break_bypasses_head = false;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    for (const auto& st : fn.blocks[b].stmts) {
      const auto& tok = file.lex.tokens[st.first];
      if (tok.text == "continue") continue_edge = has_edge(fn, b, inc);
      if (tok.text == "break")
        break_bypasses_head =
            !fn.blocks[b].succs.empty() && !has_edge(fn, b, head);
    }
  }
  EXPECT_TRUE(continue_edge);
  EXPECT_TRUE(break_bypasses_head);
}

TEST(ToolsCfg, SwitchEdgesHeadToEveryLabelWithFallthrough) {
  const FileCfg file = build_file_cfg("t.cpp",
                                      "void f(int k) {\n"
                                      "  switch (k) {\n"
                                      "    case 0: a(); break;\n"
                                      "    case 1: b();\n"  // falls through
                                      "    default: c();\n"
                                      "  }\n"
                                      "}\n");
  const FunctionCfg& fn = file.functions[0];
  // The switch head (entry, holding the `k` condition) must have >= 3
  // successors: one per label (no implicit exit edge — default exists).
  EXPECT_GE(fn.blocks[fn.entry].succs.size(), 3u);
  // Fallthrough: the case-1 block (holding b()) edges into the default
  // block (holding c()).
  int b_block = -1, c_block = -1;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b)
    for (const auto& st : fn.blocks[b].stmts) {
      const auto& tok = file.lex.tokens[st.first];
      if (tok.text == "b") b_block = static_cast<int>(b);
      if (tok.text == "c") c_block = static_cast<int>(b);
    }
  ASSERT_GE(b_block, 0);
  ASSERT_GE(c_block, 0);
  EXPECT_TRUE(has_edge(fn, b_block, c_block));
}

TEST(ToolsCfg, LambdaBecomesNestedFunctionWithEnclosingLink) {
  const FileCfg file =
      build_file_cfg("t.cpp",
                     "void outer() {\n"
                     "  auto add = [](int a, int b) { return a + b; };\n"
                     "  (void)add;\n"
                     "}\n");
  ASSERT_EQ(file.functions.size(), 2u);
  const FunctionCfg* outer = find_fn(file, "outer");
  const FunctionCfg* lambda = find_fn(file, "<lambda>");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(lambda, nullptr);
  EXPECT_TRUE(lambda->is_lambda);
  ASSERT_EQ(lambda->params.size(), 2u);
  EXPECT_EQ(lambda->params[0], "a");
  // enclosing points at the lexically containing function.
  const auto outer_idx = static_cast<int>(outer - file.functions.data());
  EXPECT_EQ(lambda->enclosing, outer_idx);
  // The lambda body tokens are nested inside outer's body range.
  EXPECT_GT(lambda->body_begin, outer->body_begin);
  EXPECT_LE(lambda->body_end, outer->body_end);
  EXPECT_TRUE(refit::cfg::in_nested_body(file, outer_idx, lambda->body_begin));
}

TEST(ToolsCfg, ParallelCalleeRecordedForPoolEntryPoints) {
  const FileCfg file = build_file_cfg(
      "t.cpp",
      "void run(Pool& pool, Grid& grid, std::vector<float>& out) {\n"
      "  pool.parallel_for(8, [&](std::size_t b, std::size_t e) {\n"
      "    out[b] = 1.0f;\n"
      "  });\n"
      "  grid.for_each_tile([&](Tile& t) { t.touch(); });\n"
      "  auto plain = [&]() { return out.size(); };\n"
      "  (void)plain;\n"
      "}\n");
  std::vector<std::string> callees;
  for (const FunctionCfg& fn : file.functions)
    if (fn.is_lambda) callees.push_back(fn.parallel_callee);
  ASSERT_EQ(callees.size(), 3u);
  EXPECT_EQ(std::count(callees.begin(), callees.end(), "parallel_for"), 1);
  EXPECT_EQ(std::count(callees.begin(), callees.end(), "for_each_tile"), 1);
  EXPECT_EQ(std::count(callees.begin(), callees.end(), ""), 1);
}

TEST(ToolsCfg, StatementTokenRangesRoundTrip) {
  const FileCfg file = build_file_cfg("t.cpp",
                                      "int g(int x) {\n"
                                      "  int y = x * 2;\n"
                                      "  return y;\n"
                                      "}\n");
  const FunctionCfg& fn = file.functions[0];
  // Reassembling the first statement's tokens gives the declaration back.
  const auto& st = fn.blocks[fn.entry].stmts[0];
  std::string text;
  for (std::size_t i = st.first; i < st.last; ++i)
    text += file.lex.tokens[i].text + " ";
  EXPECT_EQ(text, "int y = x * 2 ; ");
  EXPECT_EQ(st.line, 2);
}
