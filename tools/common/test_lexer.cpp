// Unit tests for the shared analyzer lexer (tools/common/lexer.{hpp,cpp}):
// token round-trips on the nastiest constructs the analyzers meet in the
// tree — raw strings, template argument lists, ctor-init lists — plus the
// bracket matchers and the shared suppression parser.
#include <string>
#include <vector>

#include "common/lexer.hpp"
#include "gtest/gtest.h"

namespace {

using refit::lint::Comment;
using refit::lint::lex;
using refit::lint::LexResult;
using refit::lint::match_brace;
using refit::lint::match_paren;
using refit::lint::parse_suppressions;
using refit::lint::Suppressions;
using refit::lint::Token;
using refit::lint::TokKind;

/// Reassemble the token texts in order — the round-trip check: lexing must
/// neither drop, merge, nor split any token of the constructs under test.
std::string joined(const LexResult& lr) {
  std::string out;
  for (const Token& t : lr.tokens) {
    if (!out.empty()) out += ' ';
    out += t.text;
  }
  return out;
}

TEST(Lexer, RawStringRoundTrip) {
  // The )" inside the raw string must not terminate it; only )x" does.
  const auto lr = lex("auto s = R\"x(a \"quoted\" )\" line\nstill)x\";\n");
  ASSERT_EQ(lr.tokens.size(), 5u);
  EXPECT_EQ(lr.tokens[3].kind, TokKind::kString);
  EXPECT_EQ(lr.tokens[3].text, "R\"x(a \"quoted\" )\" line\nstill)x\"");
  EXPECT_EQ(lr.tokens[4].text, ";");
  // Tokens after a multi-line raw string carry the advanced line number.
  EXPECT_EQ(lr.tokens[4].line, 2);
}

TEST(Lexer, TemplateArgumentsAndShifts) {
  // Maximal munch must keep >> as one token (the lexer is not a parser;
  // rules that match templates handle nesting themselves) and <<= intact.
  const auto lr = lex("std::map<int, std::vector<double>> m; x <<= 2;\n");
  EXPECT_EQ(joined(lr),
            "std :: map < int , std :: vector < double >> m ; x <<= 2 ;");
}

TEST(Lexer, CtorInitListTokens) {
  const std::string src =
      "Foo::Foo(int n) : a_(n), b_{n + 1}, c_(std::move(v)) {}\n";
  const auto lr = lex(src);
  EXPECT_EQ(joined(lr),
            "Foo :: Foo ( int n ) : a_ ( n ) , b_ { n + 1 } , c_ ( std :: "
            "move ( v ) ) { }");
}

TEST(Lexer, CommentsAndStringsDoNotTokenize) {
  const auto lr = lex(
      "int a; // trailing ++x\n"
      "/* block = y */ int b = \"no ++ here\"[0];\n");
  for (const Token& t : lr.tokens) {
    EXPECT_NE(t.text, "++");
  }
  ASSERT_EQ(lr.comments.size(), 2u);
  EXPECT_EQ(lr.comments[0].line, 1);
  EXPECT_EQ(lr.comments[1].line, 2);
}

TEST(Lexer, PreprocessorContinuationFoldsIntoOneLine) {
  const auto lr = lex("#define ADD(a, b) \\\n  ((a) + (b))\nint x;\n");
  ASSERT_EQ(lr.pp_lines.size(), 1u);
  EXPECT_EQ(lr.pp_lines[0].line, 1);
  EXPECT_NE(lr.pp_lines[0].text.find("((a) + (b))"), std::string::npos);
  // The folded body must not leak into the token stream.
  ASSERT_FALSE(lr.tokens.empty());
  EXPECT_EQ(lr.tokens[0].text, "int");
  EXPECT_EQ(lr.tokens[0].line, 3);
}

TEST(Lexer, NumbersWithExponentsAndSuffixes) {
  const auto lr = lex("double d = 1.5e-3; auto u = 0x1fULL; float f = 2.f;\n");
  std::vector<std::string> nums;
  for (const Token& t : lr.tokens)
    if (t.kind == TokKind::kNumber) nums.push_back(t.text);
  ASSERT_EQ(nums.size(), 3u);
  EXPECT_EQ(nums[0], "1.5e-3");
  EXPECT_EQ(nums[1], "0x1fULL");
  EXPECT_EQ(nums[2], "2.f");
}

TEST(Lexer, CharLiteralWithEscape) {
  const auto lr = lex("char c = '\\''; char d = 'x';\n");
  std::vector<std::string> chars;
  for (const Token& t : lr.tokens)
    if (t.kind == TokKind::kChar) chars.push_back(t.text);
  ASSERT_EQ(chars.size(), 2u);
  EXPECT_EQ(chars[0], "'\\''");
  EXPECT_EQ(chars[1], "'x'");
}

TEST(Lexer, MatchParenSkipsNesting) {
  const auto lr = lex("f(a, g(b, h(c)), d) + k(e)\n");
  // Token 1 is f's '('; its match is the ')' before '+'.
  ASSERT_EQ(lr.tokens[1].text, "(");
  const std::size_t close = match_paren(lr.tokens, 1);
  ASSERT_NE(close, std::string::npos);
  EXPECT_EQ(lr.tokens[close + 1].text, "+");
}

TEST(Lexer, MatchBraceHandlesBracesAndBrackets) {
  const auto lr = lex("{ int a[3] = {1, 2, 3}; } tail\n");
  const std::size_t close = match_brace(lr.tokens, 0);
  ASSERT_NE(close, std::string::npos);
  EXPECT_EQ(lr.tokens[close + 1].text, "tail");
  // '[' matches its ']'.
  std::size_t open_sq = 0;
  while (lr.tokens[open_sq].text != "[") ++open_sq;
  const std::size_t close_sq = match_brace(lr.tokens, open_sq);
  ASSERT_NE(close_sq, std::string::npos);
  EXPECT_EQ(lr.tokens[close_sq].text, "]");
}

TEST(Lexer, UnterminatedConstructsDegradeGracefully) {
  // Best-effort on malformed input: never crash, never loop.
  EXPECT_FALSE(lex("auto s = \"unterminated\n").tokens.empty());
  EXPECT_FALSE(lex("auto s = R\"(never closed\n").tokens.empty());
  // An unterminated block comment swallows the rest of the file — the
  // correct degradation (everything after /* *is* comment text).
  const auto lr = lex("/* never closed\nint x;");
  EXPECT_TRUE(lr.tokens.empty());
  EXPECT_EQ(lr.comments.size(), 1u);
}

TEST(Lexer, SuppressionsPerTagAreIndependent) {
  const std::vector<Comment> comments = {
      {"// refit-lint: allow(randomness)", 5},
      {"// refit-flow: allow(use-after-move, parallel-shared-write)", 9},
  };
  const Suppressions lint_sup = parse_suppressions(comments, "refit-lint:");
  EXPECT_TRUE(lint_sup.allows("randomness", 5));
  EXPECT_FALSE(lint_sup.allows("use-after-move", 9));

  const Suppressions flow_sup = parse_suppressions(comments, "refit-flow:");
  EXPECT_TRUE(flow_sup.allows("use-after-move", 9));
  EXPECT_TRUE(flow_sup.allows("parallel-shared-write", 9));
  // A suppression covers its own line and the next one only.
  EXPECT_TRUE(flow_sup.allows("use-after-move", 10));
  EXPECT_FALSE(flow_sup.allows("use-after-move", 11));
  EXPECT_FALSE(flow_sup.allows("randomness", 5));
}

TEST(Lexer, FileWideSuppressionOnlyInHeader) {
  const std::vector<Comment> early = {{"// refit-flow: allow-file(x)", 3}};
  EXPECT_TRUE(parse_suppressions(early, "refit-flow:").allows("x", 999));
  const std::vector<Comment> late = {{"// refit-flow: allow-file(x)", 42}};
  EXPECT_FALSE(parse_suppressions(late, "refit-flow:").allows("x", 999));
}

}  // namespace
